// pglo_server — the pglo socket server (pglo-wire-v1; DESIGN.md §16).
//
//   pglo_server [--host=ADDR] [--port=N] [--max-connections=N]
//               [--group-commit] [--blackbox-every=SECS] DBDIR
//
// Opens (creating on first use) the database under DBDIR, bootstraps the
// Inversion file system, and serves large-object and Inversion-path
// operations to pglo-wire-v1 clients — thread-per-connection, one engine
// Session per connection, admission control at --max-connections with a
// typed REJECT frame for the overflow.
//
// Every remote backend appears in the database's activity table, so the
// running server is observable exactly like embedded backends:
// --blackbox-every=SECS dumps the flight recorder to DBDIR/pglo_blackbox.json
// on that cadence, and a second terminal can watch live with
//
//   pglo_top --follow --activity DBDIR/pglo_blackbox.json
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain connections
// (in-flight transactions roll back), flush, close. Exit status: 0 clean
// shutdown, 1 startup/serve failure, 2 usage.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "db/database.h"
#include "inversion/inversion_fs.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host=ADDR] [--port=N] [--max-connections=N]\n"
               "          [--group-commit] [--blackbox-every=SECS] DBDIR\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pglo::ServerOptions server_options;
  std::string dir;
  bool group_commit = false;
  int blackbox_every = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--host=", 7) == 0) {
      server_options.host = a + 7;
    } else if (std::strncmp(a, "--port=", 7) == 0) {
      server_options.port = static_cast<uint16_t>(std::atoi(a + 7));
    } else if (std::strncmp(a, "--max-connections=", 18) == 0) {
      server_options.max_connections =
          static_cast<uint32_t>(std::atoi(a + 18));
    } else if (std::strcmp(a, "--group-commit") == 0) {
      group_commit = true;
    } else if (std::strncmp(a, "--blackbox-every=", 17) == 0) {
      blackbox_every = std::atoi(a + 17);
    } else if (a[0] == '-') {
      return Usage(argv[0]);
    } else if (dir.empty()) {
      dir = a;
    } else {
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);

  pglo::DatabaseOptions options;
  options.dir = dir;
  options.buffer_pool_frames = 4096;
  options.charge_devices = false;  // serve at wall speed; no 1992 device sim
  options.group_commit = group_commit;
  pglo::Database db;
  pglo::Status s = db.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(), s.ToString().c_str());
    return 1;
  }

  pglo::InversionFs inv(db.context(), &db.large_objects());
  {
    auto session = db.Connect();
    session->Begin();
    s = inv.Bootstrap(session->txn());
    if (s.ok()) s = session->Commit().status();
    if (!s.ok()) {
      std::fprintf(stderr, "inversion bootstrap: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  pglo::PgloServer server(&db, &inv, server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("pglo_server listening on %s:%u (max %u connections)%s\n",
              server_options.host.c_str(), server.port(),
              server_options.max_connections,
              group_commit ? ", group commit on" : "");
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  int since_dump = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (blackbox_every > 0 && ++since_dump >= blackbox_every * 5) {
      since_dump = 0;
      auto dump = db.DumpBlackbox("pglo_server periodic dump");
      if (!dump.ok()) {
        std::fprintf(stderr, "blackbox dump: %s\n",
                     dump.status().ToString().c_str());
      }
    }
  }

  std::printf("shutting down (%u connections draining)\n",
              server.active_connections());
  server.Stop();
  s = db.Close();
  if (!s.ok()) {
    std::fprintf(stderr, "close: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
