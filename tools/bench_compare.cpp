// bench_compare — regression checker for the BENCH_*.json files emitted by
// the benchmark harness (schema "pglo-bench-v1"; see DESIGN.md §9).
//
//   bench_compare --validate FILE
//       Validates FILE against the schema. Exit 0 when well-formed.
//
//   bench_compare [--tolerance=0.10] BASELINE NEW
//       Validates both files, then compares simulated times keyed on
//       (config, op). A row regresses when
//           new.simulated_seconds > base.simulated_seconds * (1 + tol)
//       or when a timed baseline row is missing from NEW (coverage loss).
//       Improvements, new rows, and counter/value drift are reported
//       informationally only. Exit 0 when no regression, 1 otherwise.
//
// Simulated time is deterministic, so the tolerance guards against real
// behavioural change (extra I/O, lost cache hits), not measurement noise;
// comparing a file against itself always exits 0.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"

using pglo::JsonValue;
using pglo::ParseJsonFile;
using pglo::Result;

namespace {

struct Row {
  std::string config;
  std::string op;
  double seconds = 0.0;
  bool has_seconds = false;
};

/// Validates the pglo-bench-v1 shape; appends human-readable problems.
bool Validate(const JsonValue& doc, const std::string& label,
              std::vector<std::string>* errors) {
  size_t before = errors->size();
  auto err = [&](const std::string& msg) {
    errors->push_back(label + ": " + msg);
  };
  if (!doc.is_object()) {
    err("top level is not an object");
    return false;
  }
  const JsonValue* schema = doc.Get("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != "pglo-bench-v1") {
    err("missing or unexpected \"schema\" (want \"pglo-bench-v1\")");
  }
  const JsonValue* bench = doc.Get("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value.empty()) {
    err("missing \"bench\" name");
  }
  const JsonValue* quick = doc.Get("quick");
  if (quick == nullptr || !quick->is_bool()) err("missing \"quick\" flag");

  std::vector<std::string> config_names;
  const JsonValue* configs = doc.Get("configs");
  if (configs == nullptr || !configs->is_array()) {
    err("missing \"configs\" array");
  } else {
    for (const JsonValue& c : configs->array) {
      const JsonValue* name = c.is_object() ? c.Get("name") : nullptr;
      if (name == nullptr || !name->is_string()) {
        err("config entry without a string \"name\"");
        continue;
      }
      config_names.push_back(name->string_value);
      for (const auto& [key, value] : c.object) {
        if (!value.is_string()) {
          err("config \"" + name->string_value + "\" field \"" + key +
              "\" is not a string");
        }
      }
    }
  }

  const JsonValue* results = doc.Get("results");
  if (results == nullptr || !results->is_array()) {
    err("missing \"results\" array");
  } else {
    for (const JsonValue& r : results->array) {
      if (!r.is_object()) {
        err("result entry is not an object");
        continue;
      }
      const JsonValue* config = r.Get("config");
      const JsonValue* op = r.Get("op");
      if (config == nullptr || !config->is_string() || op == nullptr ||
          !op->is_string()) {
        err("result entry without string \"config\"/\"op\"");
        continue;
      }
      bool known = false;
      for (const std::string& name : config_names) {
        if (name == config->string_value) known = true;
      }
      if (!known) {
        err("result references unknown config \"" + config->string_value +
            "\"");
      }
      const JsonValue* seconds = r.Get("simulated_seconds");
      if (seconds != nullptr &&
          (!seconds->is_number() || seconds->number < 0)) {
        err("result " + config->string_value + "/" + op->string_value +
            " has a non-numeric or negative \"simulated_seconds\"");
      }
      const JsonValue* values = r.Get("values");
      if (values != nullptr) {
        if (!values->is_object()) {
          err("result " + config->string_value + "/" + op->string_value +
              " \"values\" is not an object");
        } else {
          for (const auto& [key, value] : values->object) {
            if (!value.is_number()) {
              err("value \"" + key + "\" of " + config->string_value + "/" +
                  op->string_value + " is not a number");
            }
          }
        }
      }
    }
  }

  const JsonValue* counters = doc.Get("counters");
  if (counters != nullptr) {
    if (!counters->is_object()) {
      err("\"counters\" is not an object");
    } else {
      for (const auto& [config, table] : counters->object) {
        if (!table.is_object()) {
          err("counters for \"" + config + "\" is not an object");
          continue;
        }
        for (const auto& [name, value] : table.object) {
          if (!value.is_number()) {
            err("counter \"" + name + "\" of \"" + config +
                "\" is not a number");
          }
        }
      }
    }
  }
  return errors->size() == before;
}

std::vector<Row> Rows(const JsonValue& doc) {
  std::vector<Row> rows;
  const JsonValue* results = doc.Get("results");
  if (results == nullptr || !results->is_array()) return rows;
  for (const JsonValue& r : results->array) {
    if (!r.is_object()) continue;
    const JsonValue* config = r.Get("config");
    const JsonValue* op = r.Get("op");
    if (config == nullptr || op == nullptr) continue;
    Row row;
    row.config = config->string_value;
    row.op = op->string_value;
    const JsonValue* seconds = r.Get("simulated_seconds");
    if (seconds != nullptr && seconds->is_number()) {
      row.seconds = seconds->number;
      row.has_seconds = true;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

const Row* FindRow(const std::vector<Row>& rows, const Row& key) {
  for (const Row& row : rows) {
    if (row.config == key.config && row.op == key.op) return &row;
  }
  return nullptr;
}

Result<JsonValue> Load(const std::string& path,
                       std::vector<std::string>* errors) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) {
    errors->push_back(path + ": " + doc.status().ToString());
  }
  return doc;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --validate FILE\n"
               "       %s [--tolerance=0.10] BASELINE NEW\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate_only = false;
  double tolerance = 0.10;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0) {
      validate_only = true;
    } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      char* end = nullptr;
      tolerance = std::strtod(argv[i] + 12, &end);
      if (end == nullptr || *end != '\0' || tolerance < 0) {
        std::fprintf(stderr, "bad --tolerance value: %s\n", argv[i] + 12);
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage(argv[0]);
    } else {
      files.push_back(argv[i]);
    }
  }

  std::vector<std::string> errors;
  if (validate_only) {
    if (files.size() != 1) return Usage(argv[0]);
    Result<JsonValue> doc = Load(files[0], &errors);
    if (doc.ok()) Validate(doc.value(), files[0], &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "INVALID %s\n", e.c_str());
    }
    if (!errors.empty()) return 1;
    std::printf("%s: valid pglo-bench-v1\n", files[0].c_str());
    return 0;
  }

  if (files.size() != 2) return Usage(argv[0]);
  Result<JsonValue> base = Load(files[0], &errors);
  Result<JsonValue> next = Load(files[1], &errors);
  if (base.ok()) Validate(base.value(), files[0], &errors);
  if (next.ok()) Validate(next.value(), files[1], &errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "INVALID %s\n", e.c_str());
  }
  if (!errors.empty()) return 1;

  // Quick-scale results are not comparable to full-scale ones.
  const JsonValue* base_quick = base.value().Get("quick");
  const JsonValue* next_quick = next.value().Get("quick");
  if (base_quick->bool_value != next_quick->bool_value) {
    std::fprintf(stderr,
                 "cannot compare: %s is %s-scale, %s is %s-scale\n",
                 files[0].c_str(), base_quick->bool_value ? "quick" : "full",
                 files[1].c_str(), next_quick->bool_value ? "quick" : "full");
    return 1;
  }

  std::vector<Row> base_rows = Rows(base.value());
  std::vector<Row> next_rows = Rows(next.value());
  int regressions = 0;
  int compared = 0;
  for (const Row& b : base_rows) {
    if (!b.has_seconds) continue;
    const Row* n = FindRow(next_rows, b);
    if (n == nullptr || !n->has_seconds) {
      std::printf("REGRESSION %s / %s: present in baseline, missing from "
                  "%s\n",
                  b.config.c_str(), b.op.c_str(), files[1].c_str());
      ++regressions;
      continue;
    }
    ++compared;
    double limit = b.seconds * (1.0 + tolerance);
    double delta =
        b.seconds > 0 ? 100.0 * (n->seconds / b.seconds - 1.0) : 0.0;
    if (n->seconds > limit) {
      std::printf("REGRESSION %s / %s: %.4fs -> %.4fs (%+.1f%%, limit "
                  "+%.0f%%)\n",
                  b.config.c_str(), b.op.c_str(), b.seconds, n->seconds,
                  delta, 100.0 * tolerance);
      ++regressions;
    } else if (delta <= -1.0) {
      std::printf("improved   %s / %s: %.4fs -> %.4fs (%+.1f%%)\n",
                  b.config.c_str(), b.op.c_str(), b.seconds, n->seconds,
                  delta);
    }
  }
  for (const Row& n : next_rows) {
    if (n.has_seconds && FindRow(base_rows, n) == nullptr) {
      std::printf("new row    %s / %s: %.4fs (no baseline)\n",
                  n.config.c_str(), n.op.c_str(), n.seconds);
    }
  }

  // Informational physical-work drift: device seek counts and storage-
  // manager block reads explain *why* simulated times moved (e.g. vectored
  // I/O should show seeks falling alongside times), and the fragmentation
  // family — FSM hit/miss rates, versions relocated by compaction, pages
  // reclaimed by vacuum — explains churn-benchmark movement the same way.
  // Never affects the exit code.
  auto tracked = [](const std::string& name) {
    auto has = [&](const char* prefix, const char* suffix) {
      size_t plen = std::strlen(prefix);
      size_t slen = std::strlen(suffix);
      return name.size() > plen + slen && name.compare(0, plen, prefix) == 0 &&
             name.compare(name.size() - slen, slen, suffix) == 0;
    };
    return has("device.", ".seeks") || has("smgr.", ".blocks_read") ||
           name == "heap.fsm.hits" || name == "heap.fsm.misses" ||
           has("lo.", ".pages_relocated") || has("lo.", ".pages_reclaimed");
  };
  const JsonValue* base_counters = base.value().Get("counters");
  const JsonValue* next_counters = next.value().Get("counters");
  if (base_counters != nullptr && base_counters->is_object() &&
      next_counters != nullptr && next_counters->is_object()) {
    for (const auto& [config, table] : base_counters->object) {
      if (!table.is_object()) continue;
      const JsonValue* next_table = next_counters->Get(config);
      if (next_table == nullptr || !next_table->is_object()) continue;
      for (const auto& [name, value] : table.object) {
        if (!tracked(name) || !value.is_number()) continue;
        const JsonValue* next_value = next_table->Get(name);
        if (next_value == nullptr || !next_value->is_number()) continue;
        if (next_value->number == value.number) continue;
        double delta = value.number > 0
                           ? 100.0 * (next_value->number / value.number - 1.0)
                           : 0.0;
        std::printf("counter    %s / %s: %.0f -> %.0f (%+.1f%%)\n",
                    config.c_str(), name.c_str(), value.number,
                    next_value->number, delta);
      }
    }
  }

  if (regressions > 0) {
    std::printf("%d regression(s) over %d compared row(s)\n", regressions,
                compared);
    return 1;
  }
  std::printf("OK: %d row(s) within +%.0f%% of baseline\n", compared,
              100.0 * tolerance);
  return 0;
}
