// pglo_top — flight-recorder time-series viewer.
//
//   pglo_top [--events] [--slow-ops] [--activity] [--counter=NAME]
//            [--prometheus] [--limit=N] [--follow[=SECS]]
//            pglo_blackbox.json
//
// Renders a pglo-blackbox-v1 dump (written by Database on a simulated
// crash or failed Open, or on demand via Database::DumpBlackbox): a
// summary header, then the snapshot-delta time-series as a counters ×
// samples table — each column is one sampling tick, each cell the change
// in that counter since the previous tick. With no mode flag the top
// counters (by total movement) are shown; --counter=NAME plots one
// counter's series as a bar chart; --events prints the structured event
// log; --slow-ops prints each captured slow operation's span tree;
// --activity prints the dump's per-backend activity table
// (pg_stat_activity shape: one row per connected backend with its txn
// state and current wait); --prometheus re-emits the dump's final
// snapshot in Prometheus text exposition.
//
// --follow re-reads and re-renders the file every SECS wall seconds
// (default 2) until interrupted — "live" viewing of a recorder that a
// running process keeps dumping.
//
// Exit status: 0 ok, 1 unreadable/invalid dump, 2 usage.

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/stats.h"

using pglo::JsonValue;
using pglo::ParseJsonFile;
using pglo::Result;
using pglo::StatsSnapshot;

namespace {

struct Options {
  bool events = false;
  bool slow_ops = false;
  bool activity = false;
  bool prometheus = false;
  std::string counter;
  size_t limit = 12;      // counters rows in the table
  int follow_secs = 0;    // 0 = render once
  std::string path;
};

double SimSeconds(double ns) { return ns * 1e-9; }

void PrintHeader(const JsonValue& dump) {
  std::printf("pglo_top — %s\n", dump.GetString("reason", "?").c_str());
  std::printf("dumped at sim %.6f s\n",
              SimSeconds(dump.GetNumber("dumped_at_ns")));
  const JsonValue* ev = dump.Get("events");
  const JsonValue* deltas = dump.Get("snapshot_deltas");
  const JsonValue* slow = dump.Get("slow_ops");
  const JsonValue* trace = dump.Get("trace");
  std::printf(
      "events %.0f (%.0f dropped) · deltas %.0f · slow ops %.0f · spans "
      "%.0f\n\n",
      ev != nullptr ? ev->GetNumber("total") : 0.0,
      ev != nullptr ? ev->GetNumber("dropped") : 0.0,
      deltas != nullptr ? deltas->GetNumber("total") : 0.0,
      slow != nullptr ? slow->GetNumber("total") : 0.0,
      trace != nullptr ? trace->GetNumber("total") : 0.0);
}

/// The retained delta entries: each is {seq, sim_ns, counters{name: d}}.
const std::vector<JsonValue>* DeltaEntries(const JsonValue& dump) {
  const JsonValue* deltas = dump.Get("snapshot_deltas");
  if (deltas == nullptr) return nullptr;
  const JsonValue* entries = deltas->Get("entries");
  if (entries == nullptr || !entries->is_array()) return nullptr;
  return &entries->array;
}

void PrintTimeSeries(const JsonValue& dump, const Options& opt) {
  const std::vector<JsonValue>* entries = DeltaEntries(dump);
  if (entries == nullptr || entries->empty()) {
    std::printf("(no snapshot deltas retained)\n");
    return;
  }
  // Last few ticks fit a terminal; older ones scroll off like top(1).
  constexpr size_t kMaxCols = 8;
  size_t first = entries->size() > kMaxCols ? entries->size() - kMaxCols : 0;
  // Rank counters by total movement across the shown window.
  std::vector<std::pair<std::string, double>> totals;
  for (size_t i = first; i < entries->size(); ++i) {
    const JsonValue* counters = (*entries)[i].Get("counters");
    if (counters == nullptr) continue;
    for (const auto& [name, v] : counters->object) {
      auto it = std::find_if(totals.begin(), totals.end(),
                             [&](const auto& t) { return t.first == name; });
      if (it == totals.end()) {
        totals.emplace_back(name, v.number);
      } else {
        it->second += v.number;
      }
    }
  }
  std::sort(totals.begin(), totals.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (totals.size() > opt.limit) totals.resize(opt.limit);

  std::printf("%-36s", "counter / sim_s");
  for (size_t i = first; i < entries->size(); ++i) {
    std::printf(" %9.3f", SimSeconds((*entries)[i].GetNumber("sim_ns")));
  }
  std::printf("\n");
  for (const auto& [name, total] : totals) {
    std::printf("%-36s", name.c_str());
    for (size_t i = first; i < entries->size(); ++i) {
      const JsonValue* counters = (*entries)[i].Get("counters");
      const JsonValue* v =
          counters != nullptr ? counters->Get(name) : nullptr;
      if (v != nullptr) {
        std::printf(" %9.0f", v->number);
      } else {
        std::printf(" %9s", "-");
      }
    }
    std::printf("\n");
  }
  if (totals.empty()) std::printf("(all counters quiet in this window)\n");
}

void PrintOneCounter(const JsonValue& dump, const std::string& name) {
  const std::vector<JsonValue>* entries = DeltaEntries(dump);
  if (entries == nullptr || entries->empty()) {
    std::printf("(no snapshot deltas retained)\n");
    return;
  }
  double max = 0;
  for (const JsonValue& e : *entries) {
    const JsonValue* counters = e.Get("counters");
    const JsonValue* v = counters != nullptr ? counters->Get(name) : nullptr;
    if (v != nullptr) max = std::max(max, v->number);
  }
  std::printf("%s (per-tick delta, max %.0f)\n", name.c_str(), max);
  for (const JsonValue& e : *entries) {
    const JsonValue* counters = e.Get("counters");
    const JsonValue* v = counters != nullptr ? counters->Get(name) : nullptr;
    double val = v != nullptr ? v->number : 0.0;
    int bar = max > 0 ? static_cast<int>(val / max * 40) : 0;
    std::printf("%9.3f %10.0f |", SimSeconds(e.GetNumber("sim_ns")), val);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
}

void PrintEvents(const JsonValue& dump) {
  const JsonValue* ev = dump.Get("events");
  const JsonValue* entries = ev != nullptr ? ev->Get("entries") : nullptr;
  if (entries == nullptr || entries->array.empty()) {
    std::printf("(no events retained)\n");
    return;
  }
  std::printf("%6s %12s  %-18s %-12s %-12s %s\n", "seq", "sim_s", "type",
              "a", "b", "detail");
  for (const JsonValue& e : entries->array) {
    std::printf("%6.0f %12.6f  %-18s %-12.0f %-12.0f %s\n",
                e.GetNumber("seq"), SimSeconds(e.GetNumber("sim_ns")),
                e.GetString("type", "?").c_str(), e.GetNumber("a"),
                e.GetNumber("b"), e.GetString("detail").c_str());
  }
}

void PrintSpanTree(const JsonValue& node, int depth) {
  double dur =
      node.GetNumber("end_ns") - node.GetNumber("begin_ns");
  std::printf("%*s%-*s %12.3f ms\n", depth * 2, "",
              40 - depth * 2, node.GetString("name", "?").c_str(),
              dur * 1e-6);
  const JsonValue* children = node.Get("children");
  if (children == nullptr) return;
  for (const JsonValue& child : children->array) {
    PrintSpanTree(child, depth + 1);
  }
}

void PrintSlowOps(const JsonValue& dump) {
  const JsonValue* slow = dump.Get("slow_ops");
  const JsonValue* entries = slow != nullptr ? slow->Get("entries") : nullptr;
  if (entries == nullptr || entries->array.empty()) {
    std::printf("(no slow ops captured)\n");
    return;
  }
  std::printf("budget %.3f ms, %.0f captured in total\n\n",
              slow->GetNumber("budget_ns") * 1e-6, slow->GetNumber("total"));
  for (const JsonValue& op : entries->array) {
    std::printf("slow op #%.0f — %.3f ms\n", op.GetNumber("seq"),
                op.GetNumber("duration_ns") * 1e-6);
    const JsonValue* tree = op.Get("tree");
    if (tree != nullptr) PrintSpanTree(*tree, 1);
    std::printf("\n");
  }
}

/// pg_stat_activity over the dump's `backends` array: one row per backend
/// that was connected at the instant of the dump.
void PrintActivity(const JsonValue& dump) {
  const JsonValue* backends = dump.Get("backends");
  if (backends == nullptr || !backends->is_array()) {
    std::printf(
        "(no backends section in dump — recorded before wait "
        "instrumentation, or no sessions were connected)\n");
    return;
  }
  if (backends->array.empty()) {
    std::printf("(no backends connected at dump time)\n");
    return;
  }
  std::printf("%7s %-6s %8s %-26s %12s %8s %12s %6s %6s %6s\n", "backend",
              "state", "xid", "wait", "waiting_ms", "waits", "waited_ms",
              "begun", "commit", "abort");
  for (const JsonValue& b : backends->array) {
    bool in_txn = false;
    const JsonValue* t = b.Get("in_txn");
    if (t != nullptr) in_txn = t->bool_value;
    std::string wait = b.GetString("wait", "none");
    std::printf("%7.0f %-6s %8.0f %-26s %12.3f %8.0f %12.3f %6.0f %6.0f "
                "%6.0f\n",
                b.GetNumber("backend_id"), in_txn ? "txn" : "idle",
                b.GetNumber("xid"), wait.c_str(),
                b.GetNumber("waiting_ns") * 1e-6, b.GetNumber("waits"),
                b.GetNumber("waited_ns") * 1e-6, b.GetNumber("begun"),
                b.GetNumber("committed"), b.GetNumber("aborted"));
  }
}

/// Rebuilds a StatsSnapshot from the dump's final_snapshot object so the
/// exposition goes through the one real serializer.
void PrintPrometheus(const JsonValue& dump) {
  const JsonValue* snap = dump.Get("final_snapshot");
  if (snap == nullptr) {
    std::printf("(no final snapshot in dump)\n");
    return;
  }
  StatsSnapshot s;
  const JsonValue* counters = snap->Get("counters");
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->object) {
      s.counters.emplace_back(name, static_cast<uint64_t>(v.number));
    }
  }
  const JsonValue* hists = snap->Get("histograms");
  if (hists != nullptr) {
    for (const auto& [name, h] : hists->object) {
      StatsSnapshot::HistogramEntry e;
      e.name = name;
      e.count = static_cast<uint64_t>(h.GetNumber("count"));
      e.sum_ns = static_cast<uint64_t>(h.GetNumber("sum_ns"));
      e.min_ns = static_cast<uint64_t>(h.GetNumber("min_ns"));
      e.max_ns = static_cast<uint64_t>(h.GetNumber("max_ns"));
      e.p50_ns = static_cast<uint64_t>(h.GetNumber("p50_ns"));
      e.p99_ns = static_cast<uint64_t>(h.GetNumber("p99_ns"));
      s.histograms.push_back(std::move(e));
    }
  }
  std::fputs(s.ToPrometheus().c_str(), stdout);
}

int RenderOnce(const Options& opt) {
  Result<JsonValue> dump = ParseJsonFile(opt.path);
  if (!dump.ok()) {
    std::fprintf(stderr, "pglo_top: %s\n", dump.status().ToString().c_str());
    return 1;
  }
  if (dump.value().GetString("schema") != "pglo-blackbox-v1") {
    std::fprintf(stderr, "pglo_top: %s is not a pglo-blackbox-v1 dump\n",
                 opt.path.c_str());
    return 1;
  }
  if (opt.prometheus) {
    PrintPrometheus(dump.value());
    return 0;
  }
  PrintHeader(dump.value());
  if (opt.events) {
    PrintEvents(dump.value());
  } else if (opt.activity) {
    PrintActivity(dump.value());
  } else if (opt.slow_ops) {
    PrintSlowOps(dump.value());
  } else if (!opt.counter.empty()) {
    PrintOneCounter(dump.value(), opt.counter);
  } else {
    PrintTimeSeries(dump.value(), opt);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--events") == 0) {
      opt.events = true;
    } else if (std::strcmp(a, "--slow-ops") == 0) {
      opt.slow_ops = true;
    } else if (std::strcmp(a, "--activity") == 0) {
      opt.activity = true;
    } else if (std::strcmp(a, "--prometheus") == 0) {
      opt.prometheus = true;
    } else if (std::strncmp(a, "--counter=", 10) == 0) {
      opt.counter = a + 10;
    } else if (std::strncmp(a, "--limit=", 8) == 0) {
      opt.limit = static_cast<size_t>(std::strtoul(a + 8, nullptr, 10));
    } else if (std::strcmp(a, "--follow") == 0) {
      opt.follow_secs = 2;
    } else if (std::strncmp(a, "--follow=", 9) == 0) {
      opt.follow_secs = std::atoi(a + 9);
      if (opt.follow_secs <= 0) opt.follow_secs = 2;
    } else if (a[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--events] [--slow-ops] [--activity] "
                   "[--counter=NAME] [--prometheus] [--limit=N] "
                   "[--follow[=SECS]] pglo_blackbox.json\n",
                   argv[0]);
      return 2;
    } else {
      opt.path = a;
    }
  }
  if (opt.path.empty()) {
    std::fprintf(stderr, "pglo_top: no dump file given\n");
    return 2;
  }
  if (opt.follow_secs == 0) return RenderOnce(opt);
  for (;;) {
    // Clear screen between renders, like top(1); harmless when piped.
    std::printf("\033[H\033[2J");
    int rc = RenderOnce(opt);
    if (rc != 0) return rc;
    std::fflush(stdout);
    ::sleep(static_cast<unsigned>(opt.follow_secs));
  }
}
