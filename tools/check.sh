#!/bin/sh
# tools/check.sh [default|asan|all] — configure, build, and run the test
# suite under the named CMake preset (see CMakePresets.json). "all" runs the
# plain preset first, then the address+UB sanitizer preset.
#
# After the default-preset tests pass, a benchmark gate runs one small
# (--quick, 1/10th-scale) Figure 1 config, validates the emitted
# BENCH_figure1_quick.json against the pglo-bench-v1 schema, and compares
# its simulated times against the checked-in baseline in bench/baselines/
# with bench_compare's default 10% tolerance. Simulated time is
# deterministic, so any drift is a real behavioural change; regenerate the
# baseline deliberately (see bench/baselines/README.md) when one is
# intended.
set -eu

cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)"
}

bench_gate() {
  builddir="$1"
  baseline="bench/baselines/BENCH_figure1_quick.json"
  echo "== bench gate: figure1 --quick vs $baseline =="
  workdir="$(mktemp -d /tmp/pglo_bench_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_figure1_quick.json"
  "$builddir/bench/bench_figure1_storage" --quick --json="$out" \
      "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  "$builddir/tools/bench_compare" "$baseline" "$out"
  rm -rf "$workdir"
  trap - EXIT
}

case "${1:-default}" in
  default)
    run_preset default
    bench_gate build
    ;;
  asan)
    run_preset asan
    ;;
  all)
    run_preset default
    bench_gate build
    run_preset asan
    ;;
  *)
    echo "usage: $0 [default|asan|all]" >&2
    exit 2
    ;;
esac
