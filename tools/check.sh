#!/bin/sh
# tools/check.sh [default|asan|tsan|all|ci] — configure, build, and run the
# test suite under the named CMake preset (see CMakePresets.json). "all"
# runs the plain preset first, then the address+UB sanitizer preset.
# "tsan" builds the multi-backend smoke test under ThreadSanitizer and runs
# it: the engine's latching (buffer pool, commit log, group commit,
# relation latches — DESIGN.md §13) is exercised by K concurrent Sessions
# with every data race a hard failure.
#
# After the default-preset tests pass, a benchmark gate runs one small
# (--quick, 1/10th-scale) Figure 1 config, validates the emitted
# BENCH_figure1_quick.json against the pglo-bench-v1 schema, and compares
# its simulated times against the checked-in baseline in bench/baselines/
# with bench_compare's default 10% tolerance. Simulated time is
# deterministic, so any drift is a real behavioural change; regenerate the
# baseline deliberately (see bench/baselines/README.md) when one is
# intended.
#
# A crash-recovery gate follows: pglo_crashtest --quick sweeps a sample of
# injected crash points through the full workload replay + recovery
# verification (see DESIGN.md §11). Set PGLO_TEST_SEED to vary the seed;
# the default is the same fixed seed the unit tests use.
#
# An observability gate then proves the flight recorder and the wait
# instrumentation are free: bench_ablation_obs --quick runs the same
# workload with observability off and on, fails unless both report
# bit-identical simulated time (and the default config's wall overhead
# stays within 5%), and compares against the committed baseline.
#
# A fragmentation gate closes the loop on long-horizon churn:
# bench_fragmentation --quick must show sequential reads degrading >= 20%
# after the churn epochs and landing back within 10% of fresh after
# CompactAll + Vacuum, then bench_compare guards its simulated times
# against the committed baseline.
#
# A server gate smoke-runs the wire protocol end to end: bench_traffic
# --quick drives dozens of concurrent pglo-wire-v1 clients through an
# in-process PgloServer over loopback (DESIGN.md §16), failing on any
# transaction error; its JSON (and the committed baseline) are
# schema-validated, never numerically compared — latencies are wall clock.
#
# "ci" is the mode for unattended runs (.github/workflows/ci.yml): the full
# "all" sequence, with a per-test ctest timeout so a hung test fails the
# run instead of wedging it. PGLO_TEST_TIMEOUT overrides the default 600 s.
set -eu

cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  timeout="${2:-}"
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  if [ -n "$timeout" ]; then
    ctest --preset "$preset" -j "$(nproc)" --timeout "$timeout"
  else
    ctest --preset "$preset" -j "$(nproc)"
  fi
}

bench_gate() {
  builddir="$1"
  baseline="bench/baselines/BENCH_figure1_quick.json"
  echo "== bench gate: figure1 --quick vs $baseline =="
  workdir="$(mktemp -d /tmp/pglo_bench_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_figure1_quick.json"
  "$builddir/bench/bench_figure1_storage" --quick --json="$out" \
      "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  "$builddir/tools/bench_compare" "$baseline" "$out"
  rm -rf "$workdir"
  trap - EXIT
}

crashtest_gate() {
  builddir="$1"
  echo "== crashtest gate: pglo_crashtest --quick (seed ${PGLO_TEST_SEED:-42}) =="
  workdir="$(mktemp -d /tmp/pglo_crash_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  "$builddir/tools/pglo_crashtest" --quick --seed="${PGLO_TEST_SEED:-42}" \
      "$workdir/crashdb"
  rm -rf "$workdir"
  trap - EXIT
}

obs_gate() {
  builddir="$1"
  baseline="bench/baselines/BENCH_ablation_obs_quick.json"
  echo "== obs gate: bench_ablation_obs --quick vs $baseline =="
  workdir="$(mktemp -d /tmp/pglo_obs_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_ablation_obs_quick.json"
  # The bench itself exits non-zero if observability-on simulated time is
  # not bit-identical to observability-off, or if the default config's
  # wall overhead exceeds the gate; bench_compare then guards against
  # drift in the absolute simulated times.
  "$builddir/bench/bench_ablation_obs" --quick --gate-overhead-pct=5 \
      --json="$out" "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  "$builddir/tools/bench_compare" "$baseline" "$out"
  rm -rf "$workdir"
  trap - EXIT
}

fragmentation_gate() {
  builddir="$1"
  baseline="bench/baselines/BENCH_fragmentation_quick.json"
  echo "== fragmentation gate: bench_fragmentation --quick vs $baseline =="
  workdir="$(mktemp -d /tmp/pglo_frag_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_fragmentation_quick.json"
  # The bench gates its own shape: churn must degrade sequential reads by
  # >= 20% (the fragmentation problem manifests) and the post-compaction
  # read must land within 10% of the fresh read (online compaction
  # restores locality). bench_compare then guards the absolute simulated
  # times against the committed baseline.
  "$builddir/bench/bench_fragmentation" --quick \
      --gate-degradation-pct=20 --gate-restore-pct=10 \
      --json="$out" "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  "$builddir/tools/bench_compare" "$baseline" "$out"
  rm -rf "$workdir"
  trap - EXIT
}

concurrency_gate() {
  builddir="$1"
  echo "== concurrency gate: bench_concurrency --quick (schema-validated) =="
  workdir="$(mktemp -d /tmp/pglo_conc_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_concurrency_quick.json"
  # The bench enforces its own wall-clock scaling floor (exit non-zero when
  # 8 backends fail to beat 1 backend by the documented margin). Simulated
  # times under K>1 backends depend on thread interleaving, so the JSON is
  # schema-validated but not compared against a baseline — wall scaling is
  # the gated property here.
  "$builddir/bench/bench_concurrency" --quick --json="$out" \
      "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  rm -rf "$workdir"
  trap - EXIT
}

server_gate() {
  builddir="$1"
  baseline="bench/baselines/BENCH_traffic_quick.json"
  echo "== server gate: bench_traffic --quick (schema-validated) =="
  workdir="$(mktemp -d /tmp/pglo_server_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_traffic_quick.json"
  # The traffic generator gates its own shape (zero transaction errors
  # across the sweep; the bottom load rung must keep up). Its latencies
  # are wall-clock and machine-dependent, so — as with bench_concurrency —
  # both the fresh output and the committed baseline are schema-validated
  # but never numerically compared.
  "$builddir/bench/bench_traffic" --quick --json="$out" \
      "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  "$builddir/tools/bench_compare" --validate "$baseline"
  rm -rf "$workdir"
  trap - EXIT
}

tsan_smoke_gate() {
  # Build only the cross-thread smoke tests under ThreadSanitizer and run
  # them directly: a full TSan suite run is 10-20x slower than native.
  # concurrency_test exercises every engine cross-thread path (pool
  # latches, group-commit queue, commit-log sync split, relation latches,
  # session lifecycle); server_test adds the socket server's
  # thread-per-connection paths (accept/serve/stop handshakes, admission
  # control, cross-thread Shutdown, disconnect-abort).
  echo "== tsan smoke: concurrency_test + server_test under ThreadSanitizer =="
  cmake --preset tsan
  cmake --build --preset tsan --target concurrency_test server_test -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      build-tsan/tests/concurrency_test
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      build-tsan/tests/server_test
}

case "${1:-default}" in
  default)
    run_preset default
    bench_gate build
    obs_gate build
    crashtest_gate build
    concurrency_gate build
    fragmentation_gate build
    server_gate build
    ;;
  asan)
    run_preset asan
    crashtest_gate build-asan
    ;;
  tsan)
    tsan_smoke_gate
    ;;
  all)
    run_preset default
    bench_gate build
    obs_gate build
    crashtest_gate build
    concurrency_gate build
    fragmentation_gate build
    server_gate build
    run_preset asan
    crashtest_gate build-asan
    tsan_smoke_gate
    ;;
  ci)
    # Unattended mode: same coverage as "all", plus per-test timeouts so a
    # hung test fails fast instead of stalling the pipeline.
    timeout="${PGLO_TEST_TIMEOUT:-600}"
    run_preset default "$timeout"
    bench_gate build
    obs_gate build
    crashtest_gate build
    concurrency_gate build
    fragmentation_gate build
    server_gate build
    run_preset asan "$timeout"
    crashtest_gate build-asan
    tsan_smoke_gate
    ;;
  *)
    echo "usage: $0 [default|asan|tsan|all|ci]" >&2
    exit 2
    ;;
esac
