#!/bin/sh
# tools/check.sh [default|asan|all] — configure, build, and run the test
# suite under the named CMake preset (see CMakePresets.json). "all" runs the
# plain preset first, then the address+UB sanitizer preset.
set -eu

cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)"
}

case "${1:-default}" in
  default|asan)
    run_preset "$1"
    ;;
  all)
    run_preset default
    run_preset asan
    ;;
  *)
    echo "usage: $0 [default|asan|all]" >&2
    exit 2
    ;;
esac
