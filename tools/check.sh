#!/bin/sh
# tools/check.sh [default|asan|all] — configure, build, and run the test
# suite under the named CMake preset (see CMakePresets.json). "all" runs the
# plain preset first, then the address+UB sanitizer preset.
#
# After the default-preset tests pass, a benchmark gate runs one small
# (--quick, 1/10th-scale) Figure 1 config, validates the emitted
# BENCH_figure1_quick.json against the pglo-bench-v1 schema, and compares
# its simulated times against the checked-in baseline in bench/baselines/
# with bench_compare's default 10% tolerance. Simulated time is
# deterministic, so any drift is a real behavioural change; regenerate the
# baseline deliberately (see bench/baselines/README.md) when one is
# intended.
#
# A crash-recovery gate follows: pglo_crashtest --quick sweeps a sample of
# injected crash points through the full workload replay + recovery
# verification (see DESIGN.md §11). Set PGLO_TEST_SEED to vary the seed;
# the default is the same fixed seed the unit tests use.
#
# An observability gate then proves the flight recorder is free:
# bench_ablation_obs --quick runs the same workload with the recorder off
# and on, fails unless both report bit-identical simulated time, and
# compares against the committed baseline.
#
# "ci" is the mode for unattended runs (.github/workflows/ci.yml): the full
# "all" sequence, with a per-test ctest timeout so a hung test fails the
# run instead of wedging it. PGLO_TEST_TIMEOUT overrides the default 600 s.
set -eu

cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  timeout="${2:-}"
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  if [ -n "$timeout" ]; then
    ctest --preset "$preset" -j "$(nproc)" --timeout "$timeout"
  else
    ctest --preset "$preset" -j "$(nproc)"
  fi
}

bench_gate() {
  builddir="$1"
  baseline="bench/baselines/BENCH_figure1_quick.json"
  echo "== bench gate: figure1 --quick vs $baseline =="
  workdir="$(mktemp -d /tmp/pglo_bench_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_figure1_quick.json"
  "$builddir/bench/bench_figure1_storage" --quick --json="$out" \
      "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  "$builddir/tools/bench_compare" "$baseline" "$out"
  rm -rf "$workdir"
  trap - EXIT
}

crashtest_gate() {
  builddir="$1"
  echo "== crashtest gate: pglo_crashtest --quick (seed ${PGLO_TEST_SEED:-42}) =="
  workdir="$(mktemp -d /tmp/pglo_crash_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  "$builddir/tools/pglo_crashtest" --quick --seed="${PGLO_TEST_SEED:-42}" \
      "$workdir/crashdb"
  rm -rf "$workdir"
  trap - EXIT
}

obs_gate() {
  builddir="$1"
  baseline="bench/baselines/BENCH_ablation_obs_quick.json"
  echo "== obs gate: bench_ablation_obs --quick vs $baseline =="
  workdir="$(mktemp -d /tmp/pglo_obs_gate_XXXXXX)"
  trap 'rm -rf "$workdir"' EXIT
  out="$workdir/BENCH_ablation_obs_quick.json"
  # The bench itself exits non-zero if recorder-on simulated time is not
  # bit-identical to recorder-off; bench_compare then guards against drift
  # in the absolute simulated times.
  "$builddir/bench/bench_ablation_obs" --quick --json="$out" \
      "$workdir/db" > "$workdir/bench.log"
  "$builddir/tools/bench_compare" --validate "$out"
  "$builddir/tools/bench_compare" "$baseline" "$out"
  rm -rf "$workdir"
  trap - EXIT
}

case "${1:-default}" in
  default)
    run_preset default
    bench_gate build
    obs_gate build
    crashtest_gate build
    ;;
  asan)
    run_preset asan
    crashtest_gate build-asan
    ;;
  all)
    run_preset default
    bench_gate build
    obs_gate build
    crashtest_gate build
    run_preset asan
    crashtest_gate build-asan
    ;;
  ci)
    # Unattended mode: same coverage as "all", plus per-test timeouts so a
    # hung test fails fast instead of stalling the pipeline.
    timeout="${PGLO_TEST_TIMEOUT:-600}"
    run_preset default "$timeout"
    bench_gate build
    obs_gate build
    crashtest_gate build
    run_preset asan "$timeout"
    crashtest_gate build-asan
    ;;
  *)
    echo "usage: $0 [default|asan|all|ci]" >&2
    exit 2
    ;;
esac
