// pglo_crashtest — deterministic crash-recovery sweep.
//
//   pglo_crashtest [--seed=N] [--all-points | --sample=K | --point=N]
//                  [--txns=N] [--ops=N] [--no-torn] [--async-commit]
//                  [--quick] [--keep] [--verbose] [--trace=FILE] [dir]
//
// Replays a seeded workload (LO create/write/truncate/delete across all
// four implementations plus Inversion files, under concurrent transaction
// pairs) against a fault-injected database. A first run enumerates every
// stable-storage write as a crash point; then each selected point replays
// the identical prefix, power-fails at that write (with torn multi-block
// runs and torn log appends unless --no-torn), reopens, and verifies two
// oracles: every recovered object equals its last-committed image, and
// the fsck integrity sweep is clean. In-doubt commits (crash during the
// commit record) are resolved against the reopened commit log — either
// outcome is accepted, a mix of images never is.
//
// --trace=FILE (single-point mode) replays the point with device charging
// on and streams a Chrome trace of the run up to the crash tick to FILE —
// load it in chrome://tracing or Perfetto. Every failing point leaves its
// database directory behind with a pglo_blackbox.json flight-recorder
// dump; the report prints the path.
//
// --sample=K runs an evenly strided sample of at most K points.
// --quick is shorthand for a small bounded run (txns=4, sample=25) used
// as the CI gate. --async-commit opts into the deliberately broken
// synchronous_commit=false configuration, whose lost commits the sweep is
// expected to catch (exit status inverts: 0 iff failures were found).
// PGLO_TEST_SEED overrides the default seed when --seed is not given.
// Exit status: 0 = every point recovered cleanly, 1 = failures, 2 = usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/crash_harness.h"

using pglo::CrashHarness;
using pglo::CrashHarnessOptions;
using pglo::CrashHarnessReport;
using pglo::CrashPointResult;
using pglo::Result;

int main(int argc, char** argv) {
  CrashHarnessOptions opts;
  opts.dir = "/tmp/pglo_crashtest";
  if (const char* env = std::getenv("PGLO_TEST_SEED")) {
    opts.seed = std::strtoull(env, nullptr, 10);
  }
  uint64_t sample = 0;     // 0 = all points
  uint64_t one_point = 0;  // 0 = sweep
  bool expect_failures = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strcmp(a, "--all-points") == 0) {
      sample = 0;
    } else if (std::strncmp(a, "--sample=", 9) == 0) {
      sample = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--point=", 8) == 0) {
      one_point = std::strtoull(a + 8, nullptr, 10);
    } else if (std::strncmp(a, "--txns=", 7) == 0) {
      opts.num_txns = static_cast<uint32_t>(std::strtoul(a + 7, nullptr, 10));
    } else if (std::strncmp(a, "--ops=", 6) == 0) {
      opts.ops_per_txn =
          static_cast<uint32_t>(std::strtoul(a + 6, nullptr, 10));
    } else if (std::strcmp(a, "--no-torn") == 0) {
      opts.torn_writes = false;
    } else if (std::strcmp(a, "--async-commit") == 0) {
      opts.synchronous_commit = false;
      expect_failures = true;
    } else if (std::strcmp(a, "--quick") == 0) {
      opts.num_txns = 4;
      if (sample == 0) sample = 25;
    } else if (std::strcmp(a, "--keep") == 0) {
      opts.keep_dirs = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      opts.verbose = true;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      opts.trace_path = a + 8;
      // A trace of uncharged devices would put every span at t=0; charge
      // them. Crash points are write-count-indexed, so this changes
      // nothing about which write the power failure lands on.
      opts.charge_devices = true;
    } else if (a[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--seed=N] [--all-points|--sample=K|--point=N] "
                   "[--txns=N] [--ops=N] [--no-torn] [--async-commit] "
                   "[--quick] [--keep] [--verbose] [--trace=FILE] [dir]\n",
                   argv[0]);
      return 2;
    } else {
      opts.dir = a;
    }
  }

  CrashHarness harness(opts);
  if (one_point != 0) {
    opts.keep_dirs = true;  // single-point mode is for post-mortems
    CrashHarness single(opts);
    CrashPointResult r = single.RunCrashPoint(one_point);
    std::printf("point %llu: %s\n", static_cast<unsigned long long>(r.point),
                r.ok() ? "ok" : r.failure.c_str());
    if (!r.blackbox.empty()) {
      std::printf("blackbox: %s\n", r.blackbox.c_str());
    }
    if (!opts.trace_path.empty()) {
      std::printf("trace: %s\n", opts.trace_path.c_str());
    }
    return r.ok() ? 0 : 1;
  }

  Result<CrashHarnessReport> report = harness.RunAll(sample);
  if (!report.ok()) {
    std::fprintf(stderr, "crashtest harness error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("seed %llu: %s\n", static_cast<unsigned long long>(opts.seed),
              report.value().ToString().c_str());
  bool clean = report.value().ok();
  if (expect_failures) {
    std::printf("%s\n",
                clean ? "async-commit regression NOT caught (unexpected)"
                      : "async-commit regression caught (expected)");
    return clean ? 1 : 0;
  }
  return clean ? 0 : 1;
}
