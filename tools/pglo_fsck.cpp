// pglo_fsck — offline database check & maintenance tool.
//
//   pglo_fsck <dbdir> [--vacuum <horizon|now>] [--list] [--stats]
//             [--stats-json[=FILE]] [--profile] [--check-fsm]
//
// Runs the full integrity sweep (every object streamed, every B-tree
// validated, every touched page checksum-verified). With --vacuum,
// reclaims versions deleted at or before the given commit tick ("now"
// uses the latest tick — keeps no history). With --list, prints the large
// object catalog. With --stats, dumps the observability registry after the
// sweep — every counter and latency histogram the run incremented, which
// shows the physical cost (block I/O, cache behaviour, device work) of the
// check itself. --stats-json emits the same registry as JSON (to stdout,
// or to FILE with --stats-json=FILE) for scripted consumption. --profile
// attaches the operation profiler for the duration of the sweep and prints
// EXPLAIN-style per-operation attribution afterwards. --check-fsm validates
// every free-space-map entry against the actual page images; drift (stale
// buckets, missing free-page stamps) is reported as a repairable warning —
// the map is advisory, so drift is never corruption and never fails the
// check.

#include <cstdio>
#include <cstring>
#include <string>

#include "db/check.h"
#include "db/database.h"
#include "obs/profiler.h"
#include "storage/buffer_pool.h"
#include "storage/free_space_map.h"

using pglo::CheckIntegrity;
using pglo::Database;
using pglo::DatabaseOptions;
using pglo::IntegrityReport;
using pglo::LoManager;
using pglo::StorageKindToString;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <dbdir> [--vacuum <horizon|now>] [--list] "
                 "[--stats] [--stats-json[=FILE]] [--profile] "
                 "[--check-fsm]\n",
                 argv[0]);
    return 2;
  }
  std::string dir = argv[1];
  bool do_vacuum = false;
  bool do_list = false;
  bool do_stats = false;
  bool do_stats_json = false;
  bool do_profile = false;
  bool do_check_fsm = false;
  std::string stats_json_path;  // empty = stdout
  uint64_t horizon = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vacuum") == 0 && i + 1 < argc) {
      do_vacuum = true;
      ++i;
      horizon = std::strcmp(argv[i], "now") == 0
                    ? ~0ull  // resolved after open
                    : std::strtoull(argv[i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--list") == 0) {
      do_list = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      do_stats = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      do_stats_json = true;
    } else if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
      do_stats_json = true;
      stats_json_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      do_profile = true;
    } else if (std::strcmp(argv[i], "--check-fsm") == 0) {
      do_check_fsm = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  Database db;
  DatabaseOptions options;
  options.dir = dir;
  pglo::Status s = db.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
                 s.ToString().c_str());
    return 1;
  }

  auto session = db.Connect();
  if (do_list) {
    pglo::Transaction* txn = session->Begin();
    auto objects = db.large_objects().List(txn);
    if (!objects.ok()) {
      std::fprintf(stderr, "list failed: %s\n",
                   objects.status().ToString().c_str());
      return 1;
    }
    std::printf("%8s %-10s %-6s %-6s %12s\n", "oid", "kind", "codec",
                "smgr", "bytes");
    for (const LoManager::ObjectInfo& obj : objects.value()) {
      auto fp = db.large_objects().Footprint(txn, obj.oid);
      std::printf("%8u %-10s %-6s %-6d %12llu%s\n", obj.oid,
                  std::string(StorageKindToString(obj.spec.kind)).c_str(),
                  obj.spec.codec.empty() ? "-" : obj.spec.codec.c_str(),
                  obj.spec.smgr,
                  fp.ok() ? static_cast<unsigned long long>(
                                fp.value().total())
                          : 0ull,
                  fp.ok() ? "" : " (footprint unavailable)");
    }
    s = session->Abort();
    if (!s.ok()) {
      std::fprintf(stderr, "abort failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (do_vacuum) {
    if (horizon == ~0ull) horizon = db.Now();
    auto removed = db.large_objects().Vacuum(horizon);
    if (!removed.ok()) {
      std::fprintf(stderr, "vacuum failed: %s\n",
                   removed.status().ToString().c_str());
      return 1;
    }
    std::printf("vacuum (horizon %llu): reclaimed %llu dead versions\n",
                static_cast<unsigned long long>(horizon),
                static_cast<unsigned long long>(removed.value()));
  }

  if (do_check_fsm) {
    pglo::FreeSpaceMap* fsm = db.pool().fsm();
    size_t tracked = fsm->EntryCount();
    auto fsm_report = fsm->CheckAgainstStorage(/*fix=*/false);
    if (!fsm_report.ok()) {
      std::fprintf(stderr, "fsm check failed to run: %s\n",
                   fsm_report.status().ToString().c_str());
      return 1;
    }
    const pglo::FsmCheckReport& fr = fsm_report.value();
    std::printf("free-space map: %zu entries tracked, %llu checked\n",
                tracked,
                static_cast<unsigned long long>(fr.entries_checked));
    if (fr.clean()) {
      std::printf("free-space map: clean (no drift)\n");
    } else {
      // Drift is a repairable warning, not corruption: the map is advisory
      // and every consumer re-verifies pages before use. Repair happens
      // automatically on the next crash-recovery open, or with --vacuum
      // (Vacuum re-registers the truth).
      std::printf(
          "free-space map: WARNING drift detected (%llu stale, %llu "
          "orphaned) — repairable, not corruption\n",
          static_cast<unsigned long long>(fr.entries_repaired),
          static_cast<unsigned long long>(fr.entries_dropped));
      for (const std::string& note : fr.notes) {
        std::printf("  %s\n", note.c_str());
      }
    }
  }

  pglo::Profiler profiler;
  if (do_profile) {
    if (db.stats_registry() == nullptr) {
      std::fprintf(stderr, "--profile requires stats to be enabled\n");
      return 2;
    }
    db.stats_registry()->SetTraceSink(&profiler);
  }
  auto report = CheckIntegrity(&db);
  if (do_profile) db.stats_registry()->SetTraceSink(nullptr);
  if (!report.ok()) {
    std::fprintf(stderr, "check failed to run: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.value().ToString().c_str());
  if (do_stats) {
    std::printf("--- observability registry ---\n%s",
                db.Stats().ToString().c_str());
  }
  if (do_profile) {
    std::printf("--- integrity sweep profile ---\n%s",
                profiler.ToString().c_str());
  }
  if (do_stats_json) {
    std::string json = db.Stats().ToJson();
    if (stats_json_path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      FILE* f = std::fopen(stats_json_path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", stats_json_path.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
  s = db.Close();
  if (!s.ok()) {
    std::fprintf(stderr, "close failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return report.value().ok() ? 0 : 1;
}
