// pglo_fsck — offline database check & maintenance tool.
//
//   pglo_fsck <dbdir> [--vacuum <horizon|now>] [--list] [--stats]
//
// Runs the full integrity sweep (every object streamed, every B-tree
// validated, every touched page checksum-verified). With --vacuum,
// reclaims versions deleted at or before the given commit tick ("now"
// uses the latest tick — keeps no history). With --list, prints the large
// object catalog. With --stats, dumps the observability registry after the
// sweep — every counter and latency histogram the run incremented, which
// shows the physical cost (block I/O, cache behaviour, device work) of the
// check itself.

#include <cstdio>
#include <cstring>
#include <string>

#include "db/check.h"
#include "db/database.h"

using pglo::CheckIntegrity;
using pglo::Database;
using pglo::DatabaseOptions;
using pglo::IntegrityReport;
using pglo::LoManager;
using pglo::StorageKindToString;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s <dbdir> [--vacuum <horizon|now>] [--list] [--stats]\n",
        argv[0]);
    return 2;
  }
  std::string dir = argv[1];
  bool do_vacuum = false;
  bool do_list = false;
  bool do_stats = false;
  uint64_t horizon = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vacuum") == 0 && i + 1 < argc) {
      do_vacuum = true;
      ++i;
      horizon = std::strcmp(argv[i], "now") == 0
                    ? ~0ull  // resolved after open
                    : std::strtoull(argv[i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--list") == 0) {
      do_list = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      do_stats = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  Database db;
  DatabaseOptions options;
  options.dir = dir;
  pglo::Status s = db.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
                 s.ToString().c_str());
    return 1;
  }

  if (do_list) {
    pglo::Transaction* txn = db.Begin();
    auto objects = db.large_objects().List(txn);
    if (!objects.ok()) {
      std::fprintf(stderr, "list failed: %s\n",
                   objects.status().ToString().c_str());
      return 1;
    }
    std::printf("%8s %-10s %-6s %-6s %12s\n", "oid", "kind", "codec",
                "smgr", "bytes");
    for (const LoManager::ObjectInfo& obj : objects.value()) {
      auto fp = db.large_objects().Footprint(txn, obj.oid);
      std::printf("%8u %-10s %-6s %-6d %12llu%s\n", obj.oid,
                  std::string(StorageKindToString(obj.spec.kind)).c_str(),
                  obj.spec.codec.empty() ? "-" : obj.spec.codec.c_str(),
                  obj.spec.smgr,
                  fp.ok() ? static_cast<unsigned long long>(
                                fp.value().total())
                          : 0ull,
                  fp.ok() ? "" : " (footprint unavailable)");
    }
    s = db.Abort(txn);
    if (!s.ok()) {
      std::fprintf(stderr, "abort failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (do_vacuum) {
    if (horizon == ~0ull) horizon = db.Now();
    auto removed = db.large_objects().Vacuum(horizon);
    if (!removed.ok()) {
      std::fprintf(stderr, "vacuum failed: %s\n",
                   removed.status().ToString().c_str());
      return 1;
    }
    std::printf("vacuum (horizon %llu): reclaimed %llu dead versions\n",
                static_cast<unsigned long long>(horizon),
                static_cast<unsigned long long>(removed.value()));
  }

  auto report = CheckIntegrity(&db);
  if (!report.ok()) {
    std::fprintf(stderr, "check failed to run: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.value().ToString().c_str());
  if (do_stats) {
    std::printf("--- observability registry ---\n%s",
                db.Stats().ToString().c_str());
  }
  s = db.Close();
  if (!s.ok()) {
    std::fprintf(stderr, "close failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return report.value().ok() ? 0 : 1;
}
