#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace pglo {

using wire::Frame;
using wire::FrameType;

/// One open byte-stream handle: either a LoDescriptor (owned by the
/// LoManager, auto-closed at transaction end) or an InversionFile (owned
/// here). Both expose the same Read/Write/Seek surface, so LO_READ/WRITE/
/// SEEK/CLOSE work identically on handles of either origin.
struct StreamHandle {
  LoDescriptor* lo = nullptr;
  std::unique_ptr<InversionFile> inv;
};

struct PgloServer::ConnState {
  std::unique_ptr<Session> session;
  std::unordered_map<uint32_t, StreamHandle> handles;
  uint32_t next_handle = 1;

  /// Transaction end (commit consumed it / abort) invalidates every open
  /// handle: LoDescriptors were already freed by the LoManager's
  /// transaction-finish hook (the raw pointers must only be dropped, never
  /// dereferenced), and InversionFiles are destroyed here.
  void DropHandlesOnTxnEnd() {
    for (auto& [id, h] : handles) h.lo = nullptr;
    handles.clear();
    next_handle = 1;
  }
};

PgloServer::PgloServer(Database* db, InversionFs* inv, ServerOptions options)
    : db_(db), inv_(inv), options_(std::move(options)) {
  StatsRegistry* stats = db_->stats_registry();
  if (stats != nullptr) {
    c_accepted_ = stats->counter("server.conns.accepted");
    c_rejected_ = stats->counter("server.conns.rejected");
    c_closed_ = stats->counter("server.conns.closed");
    c_frames_in_ = stats->counter("server.frames.in");
    c_frames_out_ = stats->counter("server.frames.out");
    c_disconnect_aborts_ = stats->counter("server.txns.disconnect_aborts");
  }
}

PgloServer::~PgloServer() { Stop(); }

Status PgloServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  PGLO_ASSIGN_OR_RETURN(
      listen_fd_, net::Listen(options_.host, options_.port, options_.backlog));
  PGLO_ASSIGN_OR_RETURN(port_, net::LocalPort(listen_fd_));
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread(&PgloServer::AcceptLoop, this);
  return Status::OK();
}

void PgloServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown() unblocks the accept thread but only reads the fd; the
  // close and the fd reset wait until after the join so the accept thread
  // never observes them.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Unblock and join every live connection. Shutdown (not Close) here:
  // the connection thread owns the fd and closes it on exit.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->io->Shutdown();
  }
  std::vector<std::unique_ptr<Conn>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(conns_);
  }
  for (auto& conn : drained) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void PgloServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void PgloServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR) continue;
      return;  // listener gone
    }
    ReapFinished();
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    uint32_t active = active_.load(std::memory_order_relaxed);
    if (active >= options_.max_connections) {
      // Admission control: one typed backpressure frame, then the door.
      // The engine never sees the connection; the client sees WHY (load
      // and limit) instead of a silent reset, and can back off.
      net::FrameConn io(fd);
      Status s = io.Send(wire::MakeReject(
          active, options_.max_connections,
          "server at max_connections; retry later"));
      (void)s;  // a vanished rejected client changes nothing
      StatInc(c_rejected_);
      continue;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    StatInc(c_accepted_);
    auto conn = std::make_unique<Conn>();
    conn->io = std::make_unique<net::FrameConn>(fd);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread(&PgloServer::Serve, this, raw);
  }
}

void PgloServer::Serve(Conn* conn) {
  net::FrameConn& io = *conn->io;
  ConnState st;

  // Handshake: the first frame must be HELLO with our protocol version.
  Result<Frame> first = io.Recv();
  bool handshook = false;
  if (first.ok()) {
    StatInc(c_frames_in_);
    const Frame& f = first.value();
    if (f.type != FrameType::kHello) {
      (void)io.Send(wire::MakeError(Status::InvalidArgument(
          "expected HELLO, got " + std::string(FrameTypeName(f.type)))));
    } else if (f.u32_a != wire::kProtocolVersion) {
      (void)io.Send(wire::MakeError(Status::NotSupported(
          "protocol version " + std::to_string(f.u32_a) +
          " unsupported (server speaks " +
          std::to_string(wire::kProtocolVersion) + ")")));
    } else {
      // Connect here, on the serving thread: the Session constructor
      // publishes this thread's WaitSlot, so the remote backend's waits
      // land in its own activity row.
      st.session = db_->Connect();
      Status s = io.Send(wire::MakeHelloOk(st.session->backend_id()));
      if (s.ok()) {
        StatInc(c_frames_out_);
        handshook = true;
      }
    }
  }

  while (handshook) {
    Result<Frame> req = io.Recv();
    if (!req.ok()) {
      if (!req.status().IsIOError()) {
        // Framing violation: name it for the peer, then hang up — frame
        // boundaries are unrecoverable after garbage.
        (void)io.Send(wire::MakeError(req.status()));
      }
      break;
    }
    StatInc(c_frames_in_);
    if (req.value().type == FrameType::kBye) {
      if (io.Send(Frame{}).ok()) StatInc(c_frames_out_);  // kOk
      break;
    }
    bool fatal = false;
    Frame reply = Dispatch(st, req.value(), &fatal);
    if (!io.Send(reply).ok()) break;
    StatInc(c_frames_out_);
    if (fatal) break;
  }

  // Backend exit: roll back an in-flight transaction (counted — this is
  // the dropped-connection path the fault tests assert on), then free the
  // session and with it the activity slot.
  if (st.session != nullptr && st.session->in_txn()) {
    StatInc(c_disconnect_aborts_);
    Status s = st.session->Abort();
    if (!s.ok()) {
      PGLO_LOG(Error) << "abort on disconnect failed: " << s.ToString();
    }
    st.DropHandlesOnTxnEnd();
  }
  st.session.reset();
  io.Close();
  StatInc(c_closed_);
  active_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

namespace {

/// Reply for an engine Status: kOk or a typed kError carrying the code.
Frame StatusReply(const Status& s) {
  return s.ok() ? Frame{} : wire::MakeError(s);
}

Frame ErrorReply(const Status& s) { return wire::MakeError(s); }

Status NoTxn() {
  return Status::InvalidArgument("no transaction in progress (BEGIN first)");
}

}  // namespace

Frame PgloServer::Dispatch(ConnState& st, const Frame& req, bool* fatal) {
  *fatal = false;
  Session& session = *st.session;
  switch (req.type) {
    case FrameType::kHello: {
      *fatal = true;
      return ErrorReply(Status::InvalidArgument("duplicate HELLO"));
    }

    case FrameType::kBegin: {
      if (session.in_txn()) {
        return ErrorReply(Status::InvalidArgument(
            "transaction already in progress (one per session)"));
      }
      if (req.u64 != 0) {
        session.BeginAsOf(req.u64);
      } else {
        session.Begin();
      }
      return Frame{};
    }

    case FrameType::kCommit: {
      if (!session.in_txn()) return ErrorReply(NoTxn());
      Result<CommitTime> tick = session.Commit();
      if (!tick.ok()) return ErrorReply(tick.status());  // txn still open
      st.DropHandlesOnTxnEnd();
      return wire::MakeU64Reply(tick.value());
    }

    case FrameType::kAbort: {
      if (!session.in_txn()) return ErrorReply(NoTxn());
      Status s = session.Abort();
      st.DropHandlesOnTxnEnd();  // consumed even on a failed abort record
      return StatusReply(s);
    }

    case FrameType::kLoCreate: {
      Result<Oid> oid = session.CreateLo(wire::SpecOf(req));
      if (!oid.ok()) return ErrorReply(oid.status());
      return wire::MakeU64Reply(oid.value());
    }

    case FrameType::kLoOpen: {
      Result<LoDescriptor*> desc = session.OpenLo(req.u64, req.u8_a != 0);
      if (!desc.ok()) return ErrorReply(desc.status());
      uint32_t h = st.next_handle++;
      st.handles[h].lo = desc.value();
      return wire::MakeHandleOp(FrameType::kHandleReply, h);
    }

    case FrameType::kLoRead: {
      auto it = st.handles.find(req.u32_a);
      if (it == st.handles.end()) {
        return ErrorReply(Status::NotFound("no such handle"));
      }
      Result<Bytes> data = it->second.lo != nullptr
                               ? it->second.lo->Read(req.u32_b)
                               : it->second.inv->Read(req.u32_b);
      if (!data.ok()) return ErrorReply(data.status());
      return wire::MakeDataReply(std::move(data).value());
    }

    case FrameType::kLoWrite: {
      auto it = st.handles.find(req.u32_a);
      if (it == st.handles.end()) {
        return ErrorReply(Status::NotFound("no such handle"));
      }
      Status s = it->second.lo != nullptr
                     ? it->second.lo->Write(Slice(req.data))
                     : it->second.inv->Write(Slice(req.data));
      return StatusReply(s);
    }

    case FrameType::kLoSeek: {
      auto it = st.handles.find(req.u32_a);
      if (it == st.handles.end()) {
        return ErrorReply(Status::NotFound("no such handle"));
      }
      Whence whence = static_cast<Whence>(req.u8_a);
      Result<uint64_t> pos =
          it->second.lo != nullptr ? it->second.lo->Seek(req.i64, whence)
                                   : it->second.inv->Seek(req.i64, whence);
      if (!pos.ok()) return ErrorReply(pos.status());
      return wire::MakeU64Reply(pos.value());
    }

    case FrameType::kLoClose: {
      auto it = st.handles.find(req.u32_a);
      if (it == st.handles.end()) {
        return ErrorReply(Status::NotFound("no such handle"));
      }
      Status s;
      if (it->second.lo != nullptr) s = session.CloseLo(it->second.lo);
      st.handles.erase(it);  // InversionFile: destruction is the close
      return StatusReply(s);
    }

    case FrameType::kInvCreate:
    case FrameType::kInvOpen:
    case FrameType::kInvMkdir:
    case FrameType::kInvRemove: {
      if (inv_ == nullptr) {
        return ErrorReply(
            Status::NotSupported("server runs without Inversion"));
      }
      if (!session.in_txn()) return ErrorReply(NoTxn());
      Transaction* txn = session.txn();
      if (req.type == FrameType::kInvCreate) {
        std::string path(req.data.begin(), req.data.end());
        Result<FileId> id = inv_->Create(txn, path, wire::SpecOf(req));
        if (!id.ok()) return ErrorReply(id.status());
        return wire::MakeU64Reply(id.value());
      }
      if (req.type == FrameType::kInvOpen) {
        Result<std::unique_ptr<InversionFile>> file =
            inv_->Open(txn, req.text, req.u8_a != 0);
        if (!file.ok()) return ErrorReply(file.status());
        uint32_t h = st.next_handle++;
        st.handles[h].inv = std::move(file).value();
        return wire::MakeHandleOp(FrameType::kHandleReply, h);
      }
      if (req.type == FrameType::kInvMkdir) {
        Result<FileId> id = inv_->MkDir(txn, req.text);
        if (!id.ok()) return ErrorReply(id.status());
        return wire::MakeU64Reply(id.value());
      }
      return StatusReply(inv_->Remove(txn, req.text));
    }

    case FrameType::kBye:
    case FrameType::kHelloOk:
    case FrameType::kReject:
    case FrameType::kOk:
    case FrameType::kU64Reply:
    case FrameType::kHandleReply:
    case FrameType::kDataReply:
    case FrameType::kError:
      break;
  }
  *fatal = true;
  return ErrorReply(Status::InvalidArgument(
      std::string(FrameTypeName(req.type)) + " is not a request"));
}

}  // namespace pglo
