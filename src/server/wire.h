#ifndef PGLO_SERVER_WIRE_H_
#define PGLO_SERVER_WIRE_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "lo/byte_stream.h"
#include "lo/large_object.h"

namespace pglo {
namespace wire {

/// pglo-wire-v1 — the binary protocol between a pglo client and the socket
/// server (DESIGN.md §16).
///
/// Every message is one length-prefixed frame:
///
///   [u32 len][u8 type][payload: len-1 bytes]        (all little-endian)
///
/// `len` counts the type byte plus the payload, never the length word
/// itself, so the smallest legal frame (`len` = 1) is a bare type byte.
/// Within a payload:
///   - fixed-width integers are little-endian (u8/u32/u64/i64),
///   - strings and byte blobs are a u32 length followed by that many bytes.
///
/// The codec is strict in both directions: decode rejects unknown types,
/// over-long frames, payloads that run short, and payloads with trailing
/// bytes — each with a typed Status rather than a crash or an over-read —
/// and a frame truncated mid-header or mid-payload reports "need more
/// bytes" so a stream reader knows to keep reading rather than fail.
constexpr uint32_t kProtocolVersion = 1;

/// Hard ceiling on `len`. Bounds server-side allocation per frame before a
/// single payload byte is read: a LO_WRITE carrying 16 MiB of data fits,
/// a length word of garbage does not.
constexpr uint32_t kMaxFrameLen = (16u << 20) + 64;

/// Payload cap for one LO_READ/LO_WRITE data blob (16 MiB). Larger
/// transfers are client-side loops; bounding one frame bounds one buffer.
constexpr uint32_t kMaxDataBytes = 16u << 20;

enum class FrameType : uint8_t {
  // Client → server requests.
  kHello = 0x01,      ///< u32 version, string client_name
  kBye = 0x02,        ///< (empty) — polite disconnect; server replies kOk
  kBegin = 0x03,      ///< u64 as_of (0 = read-write transaction at now)
  kCommit = 0x04,     ///< (empty) → kU64Reply commit tick
  kAbort = 0x05,      ///< (empty) → kOk
  kLoCreate = 0x06,   ///< u8 kind, u8 smgr, u32 chunk, u32 max_seg, string codec
  kLoOpen = 0x07,     ///< u64 oid, u8 writable → kHandleReply
  kLoRead = 0x08,     ///< u32 handle, u32 n → kDataReply
  kLoWrite = 0x09,    ///< u32 handle, bytes data → kOk
  kLoSeek = 0x0A,     ///< u32 handle, i64 off, u8 whence → kU64Reply position
  kLoClose = 0x0B,    ///< u32 handle → kOk
  kInvCreate = 0x0C,  ///< string path, u8 kind, u8 smgr, u32 chunk, u32 max_seg, string codec → kU64Reply file id
  kInvOpen = 0x0D,    ///< string path, u8 writable → kHandleReply
  kInvMkdir = 0x0E,   ///< string path → kU64Reply file id
  kInvRemove = 0x0F,  ///< string path → kOk

  // Server → client replies.
  kHelloOk = 0x81,    ///< u32 version, u32 backend_id
  kReject = 0x82,     ///< u32 active, u32 max, string message (admission)
  kOk = 0x83,         ///< (empty)
  kU64Reply = 0x84,   ///< u64 value (oid / position / commit tick / file id)
  kHandleReply = 0x85,///< u32 handle
  kDataReply = 0x86,  ///< bytes data
  kError = 0x87,      ///< u8 StatusCode (never kOk), string message
};

/// True when `t` names a frame type the codec knows how to decode.
bool IsKnownFrameType(uint8_t t);
const char* FrameTypeName(FrameType t);

/// One decoded (or to-be-encoded) frame. A tagged bag of fields: which
/// fields are meaningful depends on `type` (see the enum comments). Unused
/// fields are value-initialized so frames compare equal field-by-field in
/// round-trip tests.
struct Frame {
  FrameType type = FrameType::kOk;

  uint32_t u32_a = 0;   ///< version / handle / active / n
  uint32_t u32_b = 0;   ///< backend_id / max / read size
  uint64_t u64 = 0;     ///< oid / as_of / value / file id
  int64_t i64 = 0;      ///< seek offset
  uint8_t u8_a = 0;     ///< kind / writable / whence / StatusCode
  uint8_t u8_b = 0;     ///< smgr
  uint32_t chunk_size = 0;
  uint32_t max_segment = 0;
  std::string text;     ///< client_name / codec / path / message
  Bytes data;           ///< LO_WRITE / DATA payload

  bool operator==(const Frame& o) const {
    return type == o.type && u32_a == o.u32_a && u32_b == o.u32_b &&
           u64 == o.u64 && i64 == o.i64 && u8_a == o.u8_a && u8_b == o.u8_b &&
           chunk_size == o.chunk_size && max_segment == o.max_segment &&
           text == o.text && data == o.data;
  }
  bool operator!=(const Frame& o) const { return !(*this == o); }
};

// --- convenience constructors -------------------------------------------

Frame MakeHello(const std::string& client_name);
Frame MakeHelloOk(uint32_t backend_id);
Frame MakeReject(uint32_t active, uint32_t max, const std::string& message);
Frame MakeBegin(uint64_t as_of = 0);
Frame MakeLoCreate(const LoSpec& spec);
Frame MakeLoOpen(uint64_t oid, bool writable);
Frame MakeLoRead(uint32_t handle, uint32_t n);
Frame MakeLoWrite(uint32_t handle, Slice data);
Frame MakeLoSeek(uint32_t handle, int64_t off, Whence whence);
Frame MakeHandleOp(FrameType type, uint32_t handle);  ///< kLoClose
Frame MakeInvCreate(const std::string& path, const LoSpec& spec);
Frame MakeInvOpen(const std::string& path, bool writable);
Frame MakePathOp(FrameType type, const std::string& path);  ///< mkdir/remove
Frame MakeU64Reply(uint64_t value);
Frame MakeDataReply(Bytes data);
Frame MakeError(const Status& error);

/// The LoSpec carried by a kLoCreate / kInvCreate frame.
LoSpec SpecOf(const Frame& f);
/// The Status carried by a kError frame.
Status ErrorOf(const Frame& f);

// --- codec ---------------------------------------------------------------

/// Serializes `f` as one complete frame (length word included).
Bytes EncodeFrame(const Frame& f);

/// Outcome of decoding a byte stream's prefix.
enum class DecodeOutcome {
  kFrame,     ///< one complete frame decoded; *consumed bytes were used
  kNeedMore,  ///< the buffer holds a truncated (but so far legal) frame
  kBadFrame,  ///< the bytes can never become a legal frame; see *error
};

/// Attempts to decode one frame from the front of `in`.
///
///   kFrame:    `*out` is the frame, `*consumed` the bytes it occupied.
///   kNeedMore: `*consumed` is 0; append more bytes and retry.
///   kBadFrame: `*error` is a typed decode error (kInvalidArgument for
///              structural violations, kNotSupported for unknown frame
///              types). The connection should be torn down: frame
///              boundaries are unrecoverable after a framing error.
///
/// Never reads beyond `in`, never throws, never crashes on adversarial
/// bytes — the wire fuzz test runs this under ASan against random input.
DecodeOutcome DecodeFrame(Slice in, Frame* out, size_t* consumed,
                          Status* error);

/// Strict payload decode used by DecodeFrame once framing is resolved:
/// `payload` is the frame body after the type byte. Exposed for tests.
Result<Frame> DecodePayload(FrameType type, Slice payload);

}  // namespace wire
}  // namespace pglo

#endif  // PGLO_SERVER_WIRE_H_
