#include "server/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pglo {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Result<int> Listen(const std::string& host, uint16_t port, int backlog) {
  PGLO_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> Dial(const std::string& host, uint16_t port) {
  PGLO_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status FrameConn::Send(const wire::Frame& frame) {
  Bytes encoded = wire::EncodeFrame(frame);
  size_t sent = 0;
  while (sent < encoded.size()) {
    ssize_t n = ::send(fd(), encoded.data() + sent, encoded.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<wire::Frame> FrameConn::Recv() {
  for (;;) {
    wire::Frame frame;
    size_t consumed = 0;
    Status error;
    wire::DecodeOutcome outcome = wire::DecodeFrame(
        Slice(buf_.data() + pos_, buf_.size() - pos_), &frame, &consumed,
        &error);
    if (outcome == wire::DecodeOutcome::kFrame) {
      pos_ += consumed;
      // Reclaim the consumed prefix once nothing is buffered past it —
      // the common case, since requests are strictly ping-pong.
      if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
      }
      return frame;
    }
    if (outcome == wire::DecodeOutcome::kBadFrame) return error;

    // kNeedMore: pull another chunk off the socket.
    if (pos_ > 0) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
      pos_ = 0;
    }
    size_t at = buf_.size();
    buf_.resize(at + 65536);
    ssize_t n = ::recv(fd(), buf_.data() + at, 65536, 0);
    if (n < 0 && errno == EINTR) {
      buf_.resize(at);
      continue;
    }
    if (n <= 0) {
      buf_.resize(at);
      if (n == 0 && buf_.empty()) {
        return Status::IOError("connection closed by peer");
      }
      return n == 0 ? Status::IOError("connection closed mid-frame")
                    : Errno("recv");
    }
    buf_.resize(at + static_cast<size_t>(n));
  }
}

void FrameConn::Shutdown() {
  int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void FrameConn::Close() {
  int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

}  // namespace net
}  // namespace pglo
