#ifndef PGLO_SERVER_SERVER_H_
#define PGLO_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "inversion/inversion_fs.h"
#include "server/net.h"
#include "server/wire.h"

namespace pglo {

/// Construction parameters for a PgloServer.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port() after Start().
  uint16_t port = 0;
  /// Admission control: connections past this limit receive one REJECT
  /// frame (current load, limit, message) and are closed without ever
  /// touching the engine — backpressure, not queueing (DESIGN.md §16).
  uint32_t max_connections = 64;
  int backlog = 128;
};

/// The pglo socket server: pglo-wire-v1 over TCP, one thread and one
/// engine Session per connection — the 1993 process-per-backend model,
/// with threads for processes (item 1's thread-safe engine makes that
/// legal from day one).
///
/// Lifecycle per connection:
///   HELLO → Session created (the backend appears in the Database's
///   activity table, so `pglo_top --activity` shows remote backends) →
///   request/reply loop → BYE or EOF → in-progress transaction aborted,
///   session destroyed (activity slot freed).
///
/// Engine errors are replies (kError with the engine's StatusCode), not
/// disconnects; protocol violations (garbage framing, HELLO twice) answer
/// with kError where possible and close, since frame boundaries are
/// unrecoverable. Stop() is graceful: the listener closes first, then
/// every live connection is shut down and joined — in-flight transactions
/// roll back exactly as a dropped connection would.
///
/// Counters (in the Database's StatsRegistry, `server.*`):
///   server.conns.accepted / .rejected / .closed
///   server.frames.in / .out
///   server.txns.disconnect_aborts — transactions rolled back because the
///     peer vanished mid-transaction (the fault-injection test's signal).
class PgloServer {
 public:
  /// `inv` may be null: Inversion path ops then answer kNotSupported.
  /// Both borrowed; must outlive the server.
  PgloServer(Database* db, InversionFs* inv, ServerOptions options = {});
  ~PgloServer();
  PgloServer(const PgloServer&) = delete;
  PgloServer& operator=(const PgloServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Graceful shutdown: stop accepting, shut down every live connection,
  /// join all threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Live connection count (post-HELLO or mid-handshake).
  uint32_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    std::unique_ptr<net::FrameConn> io;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Per-connection protocol state, owned by the connection's thread.
  struct ConnState;

  void AcceptLoop();
  void Serve(Conn* conn);
  /// Handles one request; returns the reply. Sets *fatal when the
  /// connection must close after the reply (protocol violation).
  wire::Frame Dispatch(ConnState& st, const wire::Frame& req, bool* fatal);
  /// Joins finished connection threads (called from the accept loop and
  /// Stop; never from a connection thread).
  void ReapFinished();

  Database* db_;
  InversionFs* inv_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint32_t> active_{0};

  mutable std::mutex mu_;  ///< guards conns_
  std::vector<std::unique_ptr<Conn>> conns_;

  // Null when the Database runs without stats.
  Counter* c_accepted_ = nullptr;
  Counter* c_rejected_ = nullptr;
  Counter* c_closed_ = nullptr;
  Counter* c_frames_in_ = nullptr;
  Counter* c_frames_out_ = nullptr;
  Counter* c_disconnect_aborts_ = nullptr;
};

}  // namespace pglo

#endif  // PGLO_SERVER_SERVER_H_
