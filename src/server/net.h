#ifndef PGLO_SERVER_NET_H_
#define PGLO_SERVER_NET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "server/wire.h"

namespace pglo {
namespace net {

/// Thin POSIX TCP helpers shared by the pglo server and client: a socket
/// is just a carrier for pglo-wire-v1 frames, so everything here speaks
/// whole frames. All calls are blocking; Stop-style cancellation works by
/// shutdown(2) on the fd from another thread, which makes the blocked
/// recv/send return and the typed error surface.

/// Creates a listening TCP socket bound to host:port (port 0 = kernel
/// picks an ephemeral port; read it back with LocalPort). SO_REUSEADDR is
/// set so test servers can rebind immediately.
Result<int> Listen(const std::string& host, uint16_t port, int backlog);

/// The locally bound port of a socket (after Listen with port 0).
Result<uint16_t> LocalPort(int fd);

/// Connects to host:port; returns the connected fd with TCP_NODELAY set
/// (frames are small and latency-sensitive).
Result<int> Dial(const std::string& host, uint16_t port);

/// A buffered, framed connection over one connected fd. Owns the fd:
/// closes it on destruction. Send/Recv are whole-frame operations; Recv
/// buffers partial reads internally until DecodeFrame has one complete
/// frame. Not thread-safe — one thread drives a connection (Shutdown is
/// the exception: it may be called from any thread to unblock I/O).
class FrameConn {
 public:
  explicit FrameConn(int fd) : fd_(fd) {}
  ~FrameConn() { Close(); }
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  /// Sends one encoded frame (handles short writes; MSG_NOSIGNAL so a dead
  /// peer yields a Status, not SIGPIPE).
  Status Send(const wire::Frame& frame);

  /// Receives the next frame. Typed failures:
  ///   kIOError        — peer closed (clean EOF or reset) or socket error
  ///   kInvalidArgument/kNotSupported — framing/decoding violation (the
  ///                     connection is unrecoverable; tear it down)
  Result<wire::Frame> Recv();

  /// Unblocks any thread stuck in Send/Recv by half-closing both
  /// directions. Safe to call from another thread; Close still required.
  void Shutdown();

  void Close();
  int fd() const { return fd_.load(std::memory_order_relaxed); }

 private:
  // Atomic because Shutdown (and fd()) may run on another thread while
  // the owner is inside Send/Recv/Close.
  std::atomic<int> fd_;
  Bytes buf_;       ///< undecoded bytes carried across Recv calls
  size_t pos_ = 0;  ///< consumed prefix of buf_
};

}  // namespace net
}  // namespace pglo

#endif  // PGLO_SERVER_NET_H_
