#include "server/wire.h"

#include <cstring>

namespace pglo {
namespace wire {

namespace {

/// Bounds-checked sequential reader over one payload slice. Every getter
/// fails (and stays failed) instead of reading past the end; Done() then
/// rejects trailing bytes, so a payload decodes iff it is exactly the
/// fields the frame type specifies.
class Reader {
 public:
  explicit Reader(Slice in) : in_(in) {}

  bool U8(uint8_t* v) {
    if (failed_ || in_.size() - pos_ < 1) return Fail();
    *v = in_[pos_++];
    return true;
  }
  bool U32(uint32_t* v) {
    if (failed_ || in_.size() - pos_ < 4) return Fail();
    *v = DecodeFixed32(in_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (failed_ || in_.size() - pos_ < 8) return Fail();
    *v = DecodeFixed64(in_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    std::memcpy(v, &u, sizeof(u));
    return true;
  }
  bool Blob(size_t cap, Bytes* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (n > cap || in_.size() - pos_ < n) return Fail();
    v->assign(in_.data() + pos_, in_.data() + pos_ + n);
    pos_ += n;
    return true;
  }
  bool Str(size_t cap, std::string* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (n > cap || in_.size() - pos_ < n) return Fail();
    v->assign(reinterpret_cast<const char*>(in_.data()) + pos_, n);
    pos_ += n;
    return true;
  }
  /// True when the whole payload was consumed without a short read.
  bool Done() const { return !failed_ && pos_ == in_.size(); }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }
  Slice in_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// Appends fixed-width / length-prefixed fields to a growing buffer.
class Writer {
 public:
  explicit Writer(Bytes* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) {
    size_t at = out_->size();
    out_->resize(at + 4);
    EncodeFixed32(out_->data() + at, v);
  }
  void U64(uint64_t v) {
    size_t at = out_->size();
    out_->resize(at + 8);
    EncodeFixed64(out_->data() + at, v);
  }
  void I64(int64_t v) {
    uint64_t u;
    std::memcpy(&u, &v, sizeof(v));
    U64(u);
  }
  void Blob(Slice v) {
    U32(static_cast<uint32_t>(v.size()));
    out_->insert(out_->end(), v.data(), v.data() + v.size());
  }
  void Str(const std::string& v) { Blob(Slice(std::string_view(v))); }

 private:
  Bytes* out_;
};

/// Payload caps for the string fields; generous but bounded, so a hostile
/// length prefix cannot demand a giant allocation.
constexpr size_t kMaxString = 4096;

constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kUnavailable);
constexpr uint8_t kMaxStorageKind = static_cast<uint8_t>(StorageKind::kVSegment);
constexpr uint8_t kMaxWhence = static_cast<uint8_t>(Whence::kEnd);

Status BadPayload(FrameType t, const char* what) {
  return Status::InvalidArgument(std::string("wire: bad ") +
                                 FrameTypeName(t) + " payload: " + what);
}

}  // namespace

bool IsKnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kBye:
    case FrameType::kBegin:
    case FrameType::kCommit:
    case FrameType::kAbort:
    case FrameType::kLoCreate:
    case FrameType::kLoOpen:
    case FrameType::kLoRead:
    case FrameType::kLoWrite:
    case FrameType::kLoSeek:
    case FrameType::kLoClose:
    case FrameType::kInvCreate:
    case FrameType::kInvOpen:
    case FrameType::kInvMkdir:
    case FrameType::kInvRemove:
    case FrameType::kHelloOk:
    case FrameType::kReject:
    case FrameType::kOk:
    case FrameType::kU64Reply:
    case FrameType::kHandleReply:
    case FrameType::kDataReply:
    case FrameType::kError:
      return true;
  }
  return false;
}

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kBye: return "BYE";
    case FrameType::kBegin: return "BEGIN";
    case FrameType::kCommit: return "COMMIT";
    case FrameType::kAbort: return "ABORT";
    case FrameType::kLoCreate: return "LO_CREATE";
    case FrameType::kLoOpen: return "LO_OPEN";
    case FrameType::kLoRead: return "LO_READ";
    case FrameType::kLoWrite: return "LO_WRITE";
    case FrameType::kLoSeek: return "LO_SEEK";
    case FrameType::kLoClose: return "LO_CLOSE";
    case FrameType::kInvCreate: return "INV_CREATE";
    case FrameType::kInvOpen: return "INV_OPEN";
    case FrameType::kInvMkdir: return "INV_MKDIR";
    case FrameType::kInvRemove: return "INV_REMOVE";
    case FrameType::kHelloOk: return "HELLO_OK";
    case FrameType::kReject: return "REJECT";
    case FrameType::kOk: return "OK";
    case FrameType::kU64Reply: return "U64";
    case FrameType::kHandleReply: return "HANDLE";
    case FrameType::kDataReply: return "DATA";
    case FrameType::kError: return "ERROR";
  }
  return "?";
}

Frame MakeHello(const std::string& client_name) {
  Frame f;
  f.type = FrameType::kHello;
  f.u32_a = kProtocolVersion;
  f.text = client_name;
  return f;
}

Frame MakeHelloOk(uint32_t backend_id) {
  Frame f;
  f.type = FrameType::kHelloOk;
  f.u32_a = kProtocolVersion;
  f.u32_b = backend_id;
  return f;
}

Frame MakeReject(uint32_t active, uint32_t max, const std::string& message) {
  Frame f;
  f.type = FrameType::kReject;
  f.u32_a = active;
  f.u32_b = max;
  f.text = message;
  return f;
}

Frame MakeBegin(uint64_t as_of) {
  Frame f;
  f.type = FrameType::kBegin;
  f.u64 = as_of;
  return f;
}

Frame MakeLoCreate(const LoSpec& spec) {
  Frame f;
  f.type = FrameType::kLoCreate;
  f.u8_a = static_cast<uint8_t>(spec.kind);
  f.u8_b = spec.smgr;
  f.chunk_size = spec.chunk_size;
  f.max_segment = spec.max_segment;
  f.text = spec.codec;
  return f;
}

Frame MakeLoOpen(uint64_t oid, bool writable) {
  Frame f;
  f.type = FrameType::kLoOpen;
  f.u64 = oid;
  f.u8_a = writable ? 1 : 0;
  return f;
}

Frame MakeLoRead(uint32_t handle, uint32_t n) {
  Frame f;
  f.type = FrameType::kLoRead;
  f.u32_a = handle;
  f.u32_b = n;
  return f;
}

Frame MakeLoWrite(uint32_t handle, Slice data) {
  Frame f;
  f.type = FrameType::kLoWrite;
  f.u32_a = handle;
  f.data = data.ToBytes();
  return f;
}

Frame MakeLoSeek(uint32_t handle, int64_t off, Whence whence) {
  Frame f;
  f.type = FrameType::kLoSeek;
  f.u32_a = handle;
  f.i64 = off;
  f.u8_a = static_cast<uint8_t>(whence);
  return f;
}

Frame MakeHandleOp(FrameType type, uint32_t handle) {
  Frame f;
  f.type = type;
  f.u32_a = handle;
  return f;
}

Frame MakeInvCreate(const std::string& path, const LoSpec& spec) {
  Frame f = MakeLoCreate(spec);
  f.type = FrameType::kInvCreate;
  f.text = spec.codec;
  // Path travels in `data` so codec keeps the `text` slot — two strings.
  f.data.assign(path.begin(), path.end());
  return f;
}

Frame MakeInvOpen(const std::string& path, bool writable) {
  Frame f;
  f.type = FrameType::kInvOpen;
  f.text = path;
  f.u8_a = writable ? 1 : 0;
  return f;
}

Frame MakePathOp(FrameType type, const std::string& path) {
  Frame f;
  f.type = type;
  f.text = path;
  return f;
}

Frame MakeU64Reply(uint64_t value) {
  Frame f;
  f.type = FrameType::kU64Reply;
  f.u64 = value;
  return f;
}

Frame MakeDataReply(Bytes data) {
  Frame f;
  f.type = FrameType::kDataReply;
  f.data = std::move(data);
  return f;
}

Frame MakeError(const Status& error) {
  Frame f;
  f.type = FrameType::kError;
  f.u8_a = static_cast<uint8_t>(error.code());
  f.text = std::string(error.message());
  return f;
}

LoSpec SpecOf(const Frame& f) {
  LoSpec spec;
  spec.kind = static_cast<StorageKind>(f.u8_a);
  spec.smgr = f.u8_b;
  spec.chunk_size = f.chunk_size;
  spec.max_segment = f.max_segment;
  // Both create frames keep codec in `text`; INV_CREATE's path travels in
  // `data` (see MakeInvCreate) and is not part of the spec.
  spec.codec = f.text;
  return spec;
}

Status ErrorOf(const Frame& f) {
  return Status(static_cast<StatusCode>(f.u8_a), f.text);
}

Bytes EncodeFrame(const Frame& f) {
  Bytes out;
  out.resize(4);  // length word backpatched below
  Writer w(&out);
  w.U8(static_cast<uint8_t>(f.type));
  switch (f.type) {
    case FrameType::kHello:
      w.U32(f.u32_a);
      w.Str(f.text);
      break;
    case FrameType::kBye:
    case FrameType::kCommit:
    case FrameType::kAbort:
    case FrameType::kOk:
      break;
    case FrameType::kBegin:
      w.U64(f.u64);
      break;
    case FrameType::kLoCreate:
      w.U8(f.u8_a);
      w.U8(f.u8_b);
      w.U32(f.chunk_size);
      w.U32(f.max_segment);
      w.Str(f.text);
      break;
    case FrameType::kLoOpen:
      w.U64(f.u64);
      w.U8(f.u8_a);
      break;
    case FrameType::kLoRead:
      w.U32(f.u32_a);
      w.U32(f.u32_b);
      break;
    case FrameType::kLoWrite:
      w.U32(f.u32_a);
      w.Blob(Slice(f.data));
      break;
    case FrameType::kLoSeek:
      w.U32(f.u32_a);
      w.I64(f.i64);
      w.U8(f.u8_a);
      break;
    case FrameType::kLoClose:
    case FrameType::kHandleReply:
      w.U32(f.u32_a);
      break;
    case FrameType::kInvCreate:
      w.Blob(Slice(f.data));  // path
      w.U8(f.u8_a);
      w.U8(f.u8_b);
      w.U32(f.chunk_size);
      w.U32(f.max_segment);
      w.Str(f.text);  // codec
      break;
    case FrameType::kInvOpen:
      w.Str(f.text);
      w.U8(f.u8_a);
      break;
    case FrameType::kInvMkdir:
    case FrameType::kInvRemove:
      w.Str(f.text);
      break;
    case FrameType::kHelloOk:
      w.U32(f.u32_a);
      w.U32(f.u32_b);
      break;
    case FrameType::kReject:
      w.U32(f.u32_a);
      w.U32(f.u32_b);
      w.Str(f.text);
      break;
    case FrameType::kU64Reply:
      w.U64(f.u64);
      break;
    case FrameType::kDataReply:
      w.Blob(Slice(f.data));
      break;
    case FrameType::kError:
      w.U8(f.u8_a);
      w.Str(f.text);
      break;
  }
  EncodeFixed32(out.data(), static_cast<uint32_t>(out.size() - 4));
  return out;
}

Result<Frame> DecodePayload(FrameType type, Slice payload) {
  Frame f;
  f.type = type;
  Reader r(payload);
  bool ok = true;
  switch (type) {
    case FrameType::kHello:
      ok = r.U32(&f.u32_a) && r.Str(kMaxString, &f.text);
      break;
    case FrameType::kBye:
    case FrameType::kCommit:
    case FrameType::kAbort:
    case FrameType::kOk:
      break;
    case FrameType::kBegin:
      ok = r.U64(&f.u64);
      break;
    case FrameType::kLoCreate:
      ok = r.U8(&f.u8_a) && r.U8(&f.u8_b) && r.U32(&f.chunk_size) &&
           r.U32(&f.max_segment) && r.Str(kMaxString, &f.text);
      if (ok && f.u8_a > kMaxStorageKind) {
        return BadPayload(type, "storage kind out of range");
      }
      break;
    case FrameType::kLoOpen:
      ok = r.U64(&f.u64) && r.U8(&f.u8_a);
      if (ok && f.u8_a > 1) return BadPayload(type, "writable flag not 0/1");
      break;
    case FrameType::kLoRead:
      ok = r.U32(&f.u32_a) && r.U32(&f.u32_b);
      if (ok && f.u32_b > kMaxDataBytes) {
        return BadPayload(type, "read size over limit");
      }
      break;
    case FrameType::kLoWrite:
      ok = r.U32(&f.u32_a) && r.Blob(kMaxDataBytes, &f.data);
      break;
    case FrameType::kLoSeek:
      ok = r.U32(&f.u32_a) && r.I64(&f.i64) && r.U8(&f.u8_a);
      if (ok && f.u8_a > kMaxWhence) {
        return BadPayload(type, "whence out of range");
      }
      break;
    case FrameType::kLoClose:
    case FrameType::kHandleReply:
      ok = r.U32(&f.u32_a);
      break;
    case FrameType::kInvCreate:
      ok = r.Blob(kMaxString, &f.data) && r.U8(&f.u8_a) && r.U8(&f.u8_b) &&
           r.U32(&f.chunk_size) && r.U32(&f.max_segment) &&
           r.Str(kMaxString, &f.text);
      if (ok && f.u8_a > kMaxStorageKind) {
        return BadPayload(type, "storage kind out of range");
      }
      break;
    case FrameType::kInvOpen:
      ok = r.Str(kMaxString, &f.text) && r.U8(&f.u8_a);
      if (ok && f.u8_a > 1) return BadPayload(type, "writable flag not 0/1");
      break;
    case FrameType::kInvMkdir:
    case FrameType::kInvRemove:
      ok = r.Str(kMaxString, &f.text);
      break;
    case FrameType::kHelloOk:
      ok = r.U32(&f.u32_a) && r.U32(&f.u32_b);
      break;
    case FrameType::kReject:
      ok = r.U32(&f.u32_a) && r.U32(&f.u32_b) && r.Str(kMaxString, &f.text);
      break;
    case FrameType::kU64Reply:
      ok = r.U64(&f.u64);
      break;
    case FrameType::kDataReply:
      ok = r.Blob(kMaxDataBytes, &f.data);
      break;
    case FrameType::kError:
      ok = r.U8(&f.u8_a) && r.Str(kMaxString, &f.text);
      if (ok && (f.u8_a == 0 || f.u8_a > kMaxStatusCode)) {
        return BadPayload(type, "status code out of range");
      }
      break;
  }
  if (!ok) return BadPayload(type, "short field");
  if (!r.Done()) return BadPayload(type, "trailing bytes");
  return f;
}

DecodeOutcome DecodeFrame(Slice in, Frame* out, size_t* consumed,
                          Status* error) {
  *consumed = 0;
  if (in.size() < 4) return DecodeOutcome::kNeedMore;
  uint32_t len = DecodeFixed32(in.data());
  if (len < 1 || len > kMaxFrameLen) {
    *error = Status::InvalidArgument(
        "wire: frame length " + std::to_string(len) + " outside [1, " +
        std::to_string(kMaxFrameLen) + "]");
    return DecodeOutcome::kBadFrame;
  }
  if (in.size() - 4 < len) return DecodeOutcome::kNeedMore;
  uint8_t type = in[4];
  if (!IsKnownFrameType(type)) {
    *error = Status::NotSupported("wire: unknown frame type " +
                                  std::to_string(static_cast<int>(type)));
    return DecodeOutcome::kBadFrame;
  }
  Result<Frame> frame =
      DecodePayload(static_cast<FrameType>(type), in.Sub(5, len - 1));
  if (!frame.ok()) {
    *error = frame.status();
    return DecodeOutcome::kBadFrame;
  }
  *out = std::move(frame).value();
  *consumed = 4 + static_cast<size_t>(len);
  return DecodeOutcome::kFrame;
}

}  // namespace wire
}  // namespace pglo
