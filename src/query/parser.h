#ifndef PGLO_QUERY_PARSER_H_
#define PGLO_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "query/lexer.h"

namespace pglo {
namespace query {

/// Recursive-descent parser for the POSTQUEL-like dialect used in the
/// paper's examples:
///
///   create EMP (name = text, picture = image) storage = "disk"
///   append EMP (name = "Joe", picture = "/usr/joe")
///   retrieve (EMP.picture) where EMP.name = "Joe"
///   retrieve (clip(EMP.picture, "0,0,20,20"::rect)) where EMP.name = "Mike"
///   retrieve (result = newfilename())
///   replace EMP (name = "Michael") where EMP.name = "Mike"
///   delete EMP where EMP.name = "Joe"
///   destroy EMP
///   create large type image (input = lzss, output = lzss,
///                            storage = v-segment)
///
/// Statements may be separated by ';'.
class Parser {
 public:
  /// Parses one or more statements.
  static Result<std::vector<Stmt>> Parse(const std::string& input);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool MatchSymbol(const std::string& symbol);
  bool MatchKeyword(const std::string& keyword);
  bool PeekKeyword(const std::string& keyword) const;
  Status ExpectSymbol(const std::string& symbol);
  Result<std::string> ExpectIdent(const std::string& what);

  Result<Stmt> ParseStatement();
  Result<Stmt> ParseCreate();
  Result<Stmt> ParseCreateLargeType();
  Result<Stmt> ParseAppend();
  Result<Stmt> ParseRetrieve();
  Result<Stmt> ParseReplace();
  Result<Stmt> ParseDelete();
  Result<Stmt> ParseDestroy();
  Result<Stmt> ParseDefineIndex();
  Result<Stmt> ParseRemoveIndex();
  Result<std::vector<Assignment>> ParseAssignments();

  // Expression grammar, lowest precedence first:
  //   or_expr  := and_expr (OR and_expr)*
  //   and_expr := cmp_expr (AND cmp_expr)*
  //   cmp_expr := add_expr ((= | != | < | <= | > | >=) add_expr)?
  //   add_expr := mul_expr ((+|-) mul_expr)*
  //   mul_expr := cast_expr ((*|/) cast_expr)*
  //   cast_expr := primary (:: ident)*
  //   primary  := literal | ident[(args)] | ident.ident | ( or_expr )
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseCast();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace query
}  // namespace pglo

#endif  // PGLO_QUERY_PARSER_H_
