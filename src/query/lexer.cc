#include "query/lexer.h"

#include <cctype>

namespace pglo {
namespace query {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // "--" starts a comment running to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      out.push_back({TokenKind::kIdent, input.substr(start, i - start),
                     start});
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])) &&
                (out.empty() || out.back().kind == TokenKind::kSymbol))) {
      // A '-' begins a negative literal only after a symbol (else it is
      // the binary minus).
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') {
          if (is_float) break;  // second dot ends the number
          if (i + 1 >= n ||
              !std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            break;  // "1." followed by non-digit: stop before the dot
          }
          is_float = true;
        }
        ++i;
      }
      out.push_back({is_float ? TokenKind::kFloat : TokenKind::kInteger,
                     input.substr(start, i - start), start});
    } else if (c == '"') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\\' && i + 1 < n) {
          value.push_back(input[i + 1]);
          i += 2;
        } else if (input[i] == '"') {
          ++i;
          closed = true;
          break;
        } else {
          value.push_back(input[i++]);
        }
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(start));
      }
      out.push_back({TokenKind::kString, std::move(value), start});
    } else {
      // Multi-character symbols first.
      auto two = input.substr(i, 2);
      if (two == "::" || two == "!=" || two == "<=" || two == ">=") {
        out.push_back({TokenKind::kSymbol, two, start});
        i += 2;
      } else if (std::string("(),.=<>+-*/;").find(c) != std::string::npos) {
        out.push_back({TokenKind::kSymbol, std::string(1, c), start});
        ++i;
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at " +
                                       std::to_string(start));
      }
    }
  }
  out.push_back({TokenKind::kEnd, "", n});
  return out;
}

}  // namespace query
}  // namespace pglo
