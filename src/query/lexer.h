#ifndef PGLO_QUERY_LEXER_H_
#define PGLO_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace pglo {
namespace query {

enum class TokenKind {
  kIdent,    ///< identifiers and keywords (case-insensitive keywords)
  kString,   ///< "double-quoted literal"
  kInteger,
  kFloat,
  kSymbol,   ///< punctuation / operators, value holds the symbol text
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< raw text (identifier lowered for keywords check)
  size_t offset = 0;  ///< byte position, for error messages
};

/// Tokenizes a query string. Symbols recognized: ( ) , . = != < <= > >=
/// + - * / :: ;
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace query
}  // namespace pglo

#endif  // PGLO_QUERY_LEXER_H_
