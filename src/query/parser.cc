#include "query/parser.h"

#include <algorithm>

#include "types/builtin_types.h"

namespace pglo {
namespace query {

namespace {
std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinaryOp;
  e->func = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}
}  // namespace

bool Parser::MatchSymbol(const std::string& symbol) {
  if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::PeekKeyword(const std::string& keyword) const {
  return Peek().kind == TokenKind::kIdent && Lower(Peek().text) == keyword;
}

bool Parser::MatchKeyword(const std::string& keyword) {
  if (PeekKeyword(keyword)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectSymbol(const std::string& symbol) {
  if (!MatchSymbol(symbol)) {
    return Status::InvalidArgument("expected '" + symbol + "' at offset " +
                                   std::to_string(Peek().offset));
  }
  return Status::OK();
}

Result<std::string> Parser::ExpectIdent(const std::string& what) {
  if (Peek().kind != TokenKind::kIdent) {
    return Status::InvalidArgument("expected " + what + " at offset " +
                                   std::to_string(Peek().offset));
  }
  return Advance().text;
}

Result<std::vector<Stmt>> Parser::Parse(const std::string& input) {
  PGLO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  std::vector<Stmt> stmts;
  while (!parser.AtEnd()) {
    PGLO_ASSIGN_OR_RETURN(Stmt stmt, parser.ParseStatement());
    stmts.push_back(std::move(stmt));
    while (parser.MatchSymbol(";")) {
    }
  }
  if (stmts.empty()) {
    return Status::InvalidArgument("empty query");
  }
  return stmts;
}

Result<Stmt> Parser::ParseStatement() {
  if (MatchKeyword("create")) return ParseCreate();
  if (MatchKeyword("append")) return ParseAppend();
  if (MatchKeyword("retrieve")) return ParseRetrieve();
  if (MatchKeyword("replace")) return ParseReplace();
  if (MatchKeyword("delete")) return ParseDelete();
  if (MatchKeyword("destroy")) return ParseDestroy();
  if (MatchKeyword("define")) return ParseDefineIndex();
  if (MatchKeyword("remove")) return ParseRemoveIndex();
  return Status::InvalidArgument("unknown statement at offset " +
                                 std::to_string(Peek().offset));
}

Result<Stmt> Parser::ParseDefineIndex() {
  // define index <name> on <Class> (<field>)
  if (!MatchKeyword("index")) {
    return Status::InvalidArgument("expected 'index' after 'define'");
  }
  Stmt stmt;
  stmt.kind = Stmt::Kind::kDefineIndex;
  PGLO_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdent("index name"));
  if (!MatchKeyword("on")) {
    return Status::InvalidArgument("expected 'on' in define index");
  }
  PGLO_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent("class name"));
  PGLO_RETURN_IF_ERROR(ExpectSymbol("("));
  PGLO_ASSIGN_OR_RETURN(stmt.index_field, ExpectIdent("field name"));
  PGLO_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

Result<Stmt> Parser::ParseRemoveIndex() {
  if (!MatchKeyword("index")) {
    return Status::InvalidArgument("expected 'index' after 'remove'");
  }
  Stmt stmt;
  stmt.kind = Stmt::Kind::kRemoveIndex;
  PGLO_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdent("index name"));
  return stmt;
}

Result<Stmt> Parser::ParseCreate() {
  if (MatchKeyword("large")) {
    if (!MatchKeyword("type")) {
      return Status::InvalidArgument("expected 'type' after 'create large'");
    }
    return ParseCreateLargeType();
  }
  Stmt stmt;
  stmt.kind = Stmt::Kind::kCreateClass;
  PGLO_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent("class name"));
  PGLO_RETURN_IF_ERROR(ExpectSymbol("("));
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(std::string field, ExpectIdent("field name"));
    PGLO_RETURN_IF_ERROR(ExpectSymbol("="));
    PGLO_ASSIGN_OR_RETURN(std::string type, ExpectIdent("type name"));
    stmt.schema.emplace_back(field, type);
    if (!MatchSymbol(",")) break;
  }
  PGLO_RETURN_IF_ERROR(ExpectSymbol(")"));
  // Optional: storage = "disk" | "main-memory" | "worm" (§7).
  if (MatchKeyword("storage")) {
    PGLO_RETURN_IF_ERROR(ExpectSymbol("="));
    if (Peek().kind != TokenKind::kString &&
        Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected storage manager name");
    }
    stmt.storage_manager = Advance().text;
  }
  return stmt;
}

Result<Stmt> Parser::ParseCreateLargeType() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kCreateLargeType;
  PGLO_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent("type name"));
  PGLO_RETURN_IF_ERROR(ExpectSymbol("("));
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(std::string key, ExpectIdent("parameter name"));
    PGLO_RETURN_IF_ERROR(ExpectSymbol("="));
    std::string value;
    if (Peek().kind == TokenKind::kIdent ||
        Peek().kind == TokenKind::kString) {
      value = Advance().text;
      // storage kinds may be written f-chunk / v-segment / u-file / p-file
      while (MatchSymbol("-")) {
        PGLO_ASSIGN_OR_RETURN(std::string rest, ExpectIdent("name"));
        value += "-" + rest;
      }
    } else {
      return Status::InvalidArgument("expected value for " + key);
    }
    std::string lkey = Lower(key);
    if (lkey == "input") {
      stmt.input_fn = value;
    } else if (lkey == "output") {
      stmt.output_fn = value;
    } else if (lkey == "storage") {
      stmt.storage_kind = value;
    } else {
      return Status::InvalidArgument("unknown large type parameter: " + key);
    }
    if (!MatchSymbol(",")) break;
  }
  PGLO_RETURN_IF_ERROR(ExpectSymbol(")"));
  return stmt;
}

Result<std::vector<Assignment>> Parser::ParseAssignments() {
  PGLO_RETURN_IF_ERROR(ExpectSymbol("("));
  std::vector<Assignment> out;
  for (;;) {
    Assignment a;
    PGLO_ASSIGN_OR_RETURN(a.field, ExpectIdent("field name"));
    PGLO_RETURN_IF_ERROR(ExpectSymbol("="));
    PGLO_ASSIGN_OR_RETURN(a.expr, ParseExpr());
    out.push_back(std::move(a));
    if (!MatchSymbol(",")) break;
  }
  PGLO_RETURN_IF_ERROR(ExpectSymbol(")"));
  return out;
}

Result<Stmt> Parser::ParseAppend() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kAppend;
  PGLO_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent("class name"));
  PGLO_ASSIGN_OR_RETURN(stmt.assignments, ParseAssignments());
  return stmt;
}

Result<Stmt> Parser::ParseRetrieve() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kRetrieve;
  if (MatchKeyword("into")) {
    PGLO_ASSIGN_OR_RETURN(stmt.into_class, ExpectIdent("class name"));
  }
  PGLO_RETURN_IF_ERROR(ExpectSymbol("("));
  for (;;) {
    Target t;
    // `name = expr` or a bare expression; disambiguate by lookahead.
    if (Peek().kind == TokenKind::kIdent &&
        tokens_[pos_ + 1].kind == TokenKind::kSymbol &&
        tokens_[pos_ + 1].text == "=") {
      t.name = Advance().text;
      Advance();  // '='
    }
    PGLO_ASSIGN_OR_RETURN(t.expr, ParseExpr());
    stmt.targets.push_back(std::move(t));
    if (!MatchSymbol(",")) break;
  }
  PGLO_RETURN_IF_ERROR(ExpectSymbol(")"));
  if (MatchKeyword("where")) {
    PGLO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  // Time travel: `as of <commit tick>` (§6.3/§6.4).
  if (MatchKeyword("as")) {
    if (!MatchKeyword("of")) {
      return Status::InvalidArgument("expected 'of' after 'as'");
    }
    if (Peek().kind != TokenKind::kInteger) {
      return Status::InvalidArgument("expected commit tick after 'as of'");
    }
    int64_t tick;
    if (!ParseInt64(Advance().text, &tick) || tick < 0) {
      return Status::InvalidArgument("bad commit tick");
    }
    stmt.as_of = static_cast<uint64_t>(tick);
    stmt.has_as_of = true;
  }
  return stmt;
}

Result<Stmt> Parser::ParseReplace() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kReplace;
  PGLO_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent("class name"));
  PGLO_ASSIGN_OR_RETURN(stmt.assignments, ParseAssignments());
  if (MatchKeyword("where")) {
    PGLO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<Stmt> Parser::ParseDelete() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kDelete;
  PGLO_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent("class name"));
  if (MatchKeyword("where")) {
    PGLO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<Stmt> Parser::ParseDestroy() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kDestroy;
  PGLO_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdent("class name"));
  return stmt;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  PGLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("or")) {
    PGLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary("or", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  PGLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
  while (MatchKeyword("and")) {
    PGLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
    lhs = MakeBinary("and", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseComparison() {
  PGLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  for (const char* op : {"=", "!=", "<=", ">=", "<", ">"}) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == op) {
      Advance();
      PGLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  PGLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    if (MatchSymbol("+")) {
      PGLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary("+", std::move(lhs), std::move(rhs));
    } else if (MatchSymbol("-")) {
      PGLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary("-", std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  PGLO_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCast());
  for (;;) {
    if (MatchSymbol("*")) {
      PGLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCast());
      lhs = MakeBinary("*", std::move(lhs), std::move(rhs));
    } else if (MatchSymbol("/")) {
      PGLO_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCast());
      lhs = MakeBinary("/", std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseCast() {
  PGLO_ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
  while (MatchSymbol("::")) {
    PGLO_ASSIGN_OR_RETURN(std::string type, ExpectIdent("type name"));
    auto cast = std::make_unique<Expr>();
    cast->kind = Expr::Kind::kCast;
    cast->cast_type = std::move(type);
    cast->operand = std::move(operand);
    operand = std::move(cast);
  }
  return operand;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  if (tok.kind == TokenKind::kInteger) {
    int64_t v;
    if (!ParseInt64(Advance().text, &v)) {
      return Status::InvalidArgument("bad integer literal");
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kConst;
    e->constant = Datum::Int4(static_cast<int32_t>(v));
    return e;
  }
  if (tok.kind == TokenKind::kFloat) {
    double v;
    if (!ParseDouble(Advance().text, &v)) {
      return Status::InvalidArgument("bad float literal");
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kConst;
    e->constant = Datum::Float8(v);
    return e;
  }
  if (tok.kind == TokenKind::kString) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kConst;
    e->constant = Datum::Text(Advance().text);
    return e;
  }
  if (tok.kind == TokenKind::kSymbol && tok.text == "(") {
    Advance();
    PGLO_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    PGLO_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  if (tok.kind == TokenKind::kIdent) {
    std::string name = Advance().text;
    if (MatchSymbol("(")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kFuncCall;
      e->func = std::move(name);
      if (!MatchSymbol(")")) {
        for (;;) {
          PGLO_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
          if (!MatchSymbol(",")) break;
        }
        PGLO_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kFieldRef;
    if (MatchSymbol(".")) {
      e->class_name = std::move(name);
      PGLO_ASSIGN_OR_RETURN(e->field, ExpectIdent("field name"));
    } else {
      e->field = std::move(name);
    }
    return e;
  }
  return Status::InvalidArgument("unexpected token at offset " +
                                 std::to_string(tok.offset));
}

}  // namespace query
}  // namespace pglo
