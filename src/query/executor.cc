#include "query/executor.h"

#include <cstring>
#include <map>

#include "common/logging.h"

namespace pglo {
namespace query {

namespace {
/// Reserved relation file of the class catalog.
constexpr Oid kClassCatalogRelfile = 11;
constexpr uint8_t kCatalogSmgr = kSmgrDisk;

// Datum wire tags (independent of the type system, so rows survive
// process restarts even for re-registered user types).
enum DatumTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt4 = 2,
  kTagFloat8 = 3,
  kTagText = 4,
  kTagOid = 5,
  kTagRect = 6,
  kTagLo = 7,
  kTagBytes = 8,
};

void EncodeDatum(const Datum& d, Bytes* out) {
  if (d.is_null()) {
    out->push_back(kTagNull);
  } else if (d.is_bool()) {
    out->push_back(kTagBool);
    out->push_back(d.as_bool() ? 1 : 0);
  } else if (d.is_int4()) {
    out->push_back(kTagInt4);
    PutFixed32(out, static_cast<uint32_t>(d.as_int4()));
  } else if (d.is_float8()) {
    out->push_back(kTagFloat8);
    uint64_t bits;
    double v = d.as_float8();
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(out, bits);
  } else if (d.is_text()) {
    out->push_back(kTagText);
    PutLengthPrefixed(out, Slice(d.as_text()));
  } else if (d.is_oid()) {
    out->push_back(kTagOid);
    PutFixed32(out, d.as_oid());
  } else if (d.is_rect()) {
    out->push_back(kTagRect);
    const RectValue& r = d.as_rect();
    PutFixed32(out, static_cast<uint32_t>(r.x));
    PutFixed32(out, static_cast<uint32_t>(r.y));
    PutFixed32(out, static_cast<uint32_t>(r.w));
    PutFixed32(out, static_cast<uint32_t>(r.h));
  } else if (d.is_lo()) {
    out->push_back(kTagLo);
    PutFixed32(out, d.as_lo().oid);
  } else {
    out->push_back(kTagBytes);
    PutLengthPrefixed(out, Slice(d.as_bytes()));
  }
}

}  // namespace

Result<size_t> Executor::ClassInfo::FieldIndex(
    const std::string& field) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field) return i;
  }
  return Status::NotFound("class " + name + " has no field " + field);
}

Executor::Executor(const DbContext& ctx, LoManager* lo, TypeRegistry* types,
                   FunctionRegistry* fns)
    : ctx_(ctx),
      lo_(lo),
      types_(types),
      fns_(fns),
      catalog_(ctx.pool, RelFileId{kCatalogSmgr, kClassCatalogRelfile}),
      indexes_(ctx) {}

Status Executor::Bootstrap() {
  PGLO_RETURN_IF_ERROR(indexes_.Bootstrap());
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, ctx_.smgrs->Get(kCatalogSmgr));
  if (smgr->FileExists(kClassCatalogRelfile)) return Status::OK();
  return HeapClass::Create(ctx_.pool,
                           RelFileId{kCatalogSmgr, kClassCatalogRelfile});
}

FunctionContext Executor::MakeFunctionContext(Transaction* txn) {
  FunctionContext fctx;
  fctx.db = ctx_;
  fctx.lo = lo_;
  fctx.types = types_;
  fctx.txn = txn;
  return fctx;
}

// --------------------------------------------------------------------------
// Row codec

Bytes Executor::EncodeRow(const std::vector<Datum>& row) {
  Bytes out;
  PutFixed16(&out, static_cast<uint16_t>(row.size()));
  for (const Datum& d : row) EncodeDatum(d, &out);
  return out;
}

Result<std::vector<Datum>> Executor::DecodeRow(const ClassInfo& cls,
                                               Slice image) {
  std::vector<Datum> row;
  size_t pos = 0;
  auto need = [&](size_t n) -> Status {
    if (pos + n > image.size()) return Status::Corruption("short row image");
    return Status::OK();
  };
  PGLO_RETURN_IF_ERROR(need(2));
  uint16_t nfields = DecodeFixed16(image.data());
  pos = 2;
  if (nfields != cls.fields.size()) {
    return Status::Corruption("row arity does not match class schema");
  }
  row.reserve(nfields);
  for (uint16_t i = 0; i < nfields; ++i) {
    PGLO_RETURN_IF_ERROR(need(1));
    uint8_t tag = image[pos++];
    Oid ftype = cls.fields[i].type_oid;
    switch (tag) {
      case kTagNull:
        row.push_back(Datum::Null(ftype));
        break;
      case kTagBool:
        PGLO_RETURN_IF_ERROR(need(1));
        row.push_back(Datum::Bool(image[pos++] != 0));
        break;
      case kTagInt4:
        PGLO_RETURN_IF_ERROR(need(4));
        row.push_back(Datum::Int4(
            static_cast<int32_t>(DecodeFixed32(image.data() + pos))));
        pos += 4;
        break;
      case kTagFloat8: {
        PGLO_RETURN_IF_ERROR(need(8));
        uint64_t bits = DecodeFixed64(image.data() + pos);
        pos += 8;
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        row.push_back(Datum::Float8(v));
        break;
      }
      case kTagText: {
        PGLO_RETURN_IF_ERROR(need(4));
        uint32_t len = DecodeFixed32(image.data() + pos);
        pos += 4;
        PGLO_RETURN_IF_ERROR(need(len));
        row.push_back(
            Datum::Text(image.Sub(pos, len).ToString()));
        pos += len;
        break;
      }
      case kTagOid:
        PGLO_RETURN_IF_ERROR(need(4));
        row.push_back(Datum::OidVal(DecodeFixed32(image.data() + pos)));
        pos += 4;
        break;
      case kTagRect: {
        PGLO_RETURN_IF_ERROR(need(16));
        RectValue r;
        r.x = static_cast<int32_t>(DecodeFixed32(image.data() + pos));
        r.y = static_cast<int32_t>(DecodeFixed32(image.data() + pos + 4));
        r.w = static_cast<int32_t>(DecodeFixed32(image.data() + pos + 8));
        r.h = static_cast<int32_t>(DecodeFixed32(image.data() + pos + 12));
        pos += 16;
        row.push_back(Datum::Rect(r));
        break;
      }
      case kTagLo:
        PGLO_RETURN_IF_ERROR(need(4));
        row.push_back(Datum::LargeObject(
            ftype, LoRef{DecodeFixed32(image.data() + pos)}));
        pos += 4;
        break;
      case kTagBytes: {
        PGLO_RETURN_IF_ERROR(need(4));
        uint32_t len = DecodeFixed32(image.data() + pos);
        pos += 4;
        PGLO_RETURN_IF_ERROR(need(len));
        row.push_back(Datum::UserBytes(ftype, image.Sub(pos, len).ToBytes()));
        pos += len;
        break;
      }
      default:
        return Status::Corruption("unknown datum tag");
    }
  }
  return row;
}

// --------------------------------------------------------------------------
// Class catalog

Result<Executor::ClassInfo> Executor::LookupClass(Transaction* txn,
                                                  const std::string& name) {
  HeapScan scan(&catalog_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    ByteReader reader{Slice(payload)};
    Slice cname;
    uint32_t relfile;
    uint16_t smgr, nfields;
    if (!reader.GetLengthPrefixed(&cname) || !reader.GetFixed32(&relfile) ||
        !reader.GetFixed16(&smgr) || !reader.GetFixed16(&nfields)) {
      return Status::Corruption("bad class catalog record");
    }
    if (cname.ToStringView() != name) continue;
    ClassInfo info;
    info.name = name;
    info.file = RelFileId{static_cast<uint8_t>(smgr), relfile};
    for (uint16_t i = 0; i < nfields; ++i) {
      Slice fname, ftype;
      if (!reader.GetLengthPrefixed(&fname) ||
          !reader.GetLengthPrefixed(&ftype)) {
        return Status::Corruption("bad class catalog record");
      }
      FieldInfo field;
      field.name = fname.ToString();
      field.type_name = ftype.ToString();
      PGLO_ASSIGN_OR_RETURN(const TypeRegistry::TypeInfo* tinfo,
                            types_->ByName(field.type_name));
      field.type_oid = tinfo->oid;
      info.fields.push_back(std::move(field));
    }
    return info;
  }
  return Status::NotFound("no class named " + name);
}

Result<QueryResult> Executor::ExecCreateClass(Transaction* txn,
                                              const Stmt& stmt) {
  if (LookupClass(txn, stmt.class_name).ok()) {
    return Status::AlreadyExists("class exists: " + stmt.class_name);
  }
  uint8_t smgr = kSmgrDisk;
  if (!stmt.storage_manager.empty()) {
    if (stmt.storage_manager == "disk") {
      smgr = kSmgrDisk;
    } else if (stmt.storage_manager == "main-memory" ||
               stmt.storage_manager == "memory") {
      smgr = kSmgrMemory;
    } else if (stmt.storage_manager == "worm") {
      smgr = kSmgrWorm;
    } else {
      return Status::InvalidArgument("unknown storage manager: " +
                                     stmt.storage_manager);
    }
  }
  // Validate field types now.
  for (const auto& [field, type] : stmt.schema) {
    PGLO_RETURN_IF_ERROR(types_->ByName(type).status());
  }
  Oid relfile = ctx_.oids->Allocate();
  PGLO_RETURN_IF_ERROR(HeapClass::Create(ctx_.pool, RelFileId{smgr, relfile}));
  Bytes record;
  PutLengthPrefixed(&record, Slice(stmt.class_name));
  PutFixed32(&record, relfile);
  PutFixed16(&record, smgr);
  PutFixed16(&record, static_cast<uint16_t>(stmt.schema.size()));
  for (const auto& [field, type] : stmt.schema) {
    PutLengthPrefixed(&record, Slice(field));
    PutLengthPrefixed(&record, Slice(type));
  }
  PGLO_RETURN_IF_ERROR(catalog_.Insert(txn, Slice(record)).status());
  QueryResult result;
  result.affected = 1;
  return result;
}

Result<QueryResult> Executor::ExecCreateLargeType(Transaction* txn,
                                                  const Stmt& stmt) {
  (void)txn;
  if (stmt.input_fn != stmt.output_fn) {
    return Status::InvalidArgument(
        "input and output conversion routines must name the same codec");
  }
  LoSpec spec;
  spec.codec = stmt.input_fn == "none" ? "" : stmt.input_fn;
  if (!stmt.storage_kind.empty()) {
    PGLO_ASSIGN_OR_RETURN(spec.kind,
                          StorageKindFromString(stmt.storage_kind));
  }
  PGLO_RETURN_IF_ERROR(
      types_->RegisterLargeType(stmt.class_name, spec).status());
  QueryResult result;
  result.affected = 1;
  return result;
}

// --------------------------------------------------------------------------
// Expression evaluation

void Executor::CollectClasses(const Expr& expr,
                              std::vector<std::string>* out) {
  switch (expr.kind) {
    case Expr::Kind::kFieldRef:
      if (!expr.class_name.empty()) out->push_back(expr.class_name);
      break;
    case Expr::Kind::kFuncCall:
    case Expr::Kind::kBinaryOp:
      for (const ExprPtr& arg : expr.args) CollectClasses(*arg, out);
      break;
    case Expr::Kind::kCast:
      CollectClasses(*expr.operand, out);
      break;
    case Expr::Kind::kConst:
      break;
  }
}

Result<std::string> Executor::FindRangeClass(const Stmt& stmt) const {
  if (!stmt.class_name.empty()) return stmt.class_name;
  std::vector<std::string> classes;
  for (const Target& t : stmt.targets) CollectClasses(*t.expr, &classes);
  if (stmt.where != nullptr) CollectClasses(*stmt.where, &classes);
  if (classes.empty()) return std::string();
  for (const std::string& c : classes) {
    if (c != classes.front()) {
      return Status::NotSupported(
          "multi-class queries are not supported in this reproduction");
    }
  }
  return classes.front();
}

Result<Datum> Executor::Eval(Transaction* txn, const Expr& expr,
                             const RowContext& row) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.constant;
    case Expr::Kind::kFieldRef: {
      if (row.cls == nullptr) {
        return Status::InvalidArgument("field reference outside a scan: " +
                                       expr.field);
      }
      if (!expr.class_name.empty() && expr.class_name != row.cls->name) {
        return Status::InvalidArgument("unknown range variable: " +
                                       expr.class_name);
      }
      PGLO_ASSIGN_OR_RETURN(size_t idx, row.cls->FieldIndex(expr.field));
      return (*row.row)[idx];
    }
    case Expr::Kind::kFuncCall: {
      std::vector<Datum> args;
      std::vector<Oid> arg_types;
      args.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        PGLO_ASSIGN_OR_RETURN(Datum v, Eval(txn, *arg, row));
        arg_types.push_back(v.type());
        args.push_back(std::move(v));
      }
      PGLO_ASSIGN_OR_RETURN(const FunctionRegistry::FunctionInfo* fn,
                            fns_->Resolve(expr.func, arg_types));
      FunctionContext fctx = MakeFunctionContext(txn);
      return fn->fn(fctx, args);
    }
    case Expr::Kind::kBinaryOp:
      return EvalBinary(txn, expr, row);
    case Expr::Kind::kCast:
      return EvalCast(txn, expr, row);
  }
  return Status::Internal("unreachable expression kind");
}

Result<Datum> Executor::EvalCast(Transaction* txn, const Expr& expr,
                                 const RowContext& row) {
  PGLO_ASSIGN_OR_RETURN(Datum value, Eval(txn, *expr.operand, row));
  PGLO_ASSIGN_OR_RETURN(const TypeRegistry::TypeInfo* target,
                        types_->ByName(expr.cast_type));
  if (value.type() == target->oid) return value;
  // Render to text (the type's external form), then run the target's
  // input routine — exactly the ADT conversion model of §3.
  std::string text;
  if (value.is_text()) {
    text = value.as_text();
  } else if (value.is_null()) {
    return Datum::Null(target->oid);
  } else {
    PGLO_ASSIGN_OR_RETURN(const TypeRegistry::TypeInfo* source,
                          types_->ByOid(value.type()));
    PGLO_ASSIGN_OR_RETURN(text, source->output(value));
  }
  return target->input(target->oid, text);
}

namespace {
Result<int> CompareDatums(const Datum& a, const Datum& b) {
  if (a.is_text() && b.is_text()) {
    int c = a.as_text().compare(b.as_text());
    return c < 0 ? -1 : c == 0 ? 0 : 1;
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  // A large object compares by its name (oid); accept a numeric literal
  // on the other side — `EMP.picture = 1002` is how queries name objects.
  if (a.is_lo() || b.is_lo()) {
    auto oid_of = [](const Datum& d) -> Result<int64_t> {
      if (d.is_lo()) return static_cast<int64_t>(d.as_lo().oid);
      return d.ToInt64();
    };
    PGLO_ASSIGN_OR_RETURN(int64_t x, oid_of(a));
    PGLO_ASSIGN_OR_RETURN(int64_t y, oid_of(b));
    return x < y ? -1 : x == y ? 0 : 1;
  }
  PGLO_ASSIGN_OR_RETURN(double x, a.ToDouble());
  PGLO_ASSIGN_OR_RETURN(double y, b.ToDouble());
  return x < y ? -1 : x == y ? 0 : 1;
}
}  // namespace

Result<Datum> Executor::EvalBinary(Transaction* txn, const Expr& expr,
                                   const RowContext& row) {
  const std::string& op = expr.func;
  if (op == "and" || op == "or") {
    PGLO_ASSIGN_OR_RETURN(Datum lhs, Eval(txn, *expr.args[0], row));
    if (!lhs.is_bool()) {
      return Status::InvalidArgument("'" + op + "' expects booleans");
    }
    if (op == "and" && !lhs.as_bool()) return Datum::Bool(false);
    if (op == "or" && lhs.as_bool()) return Datum::Bool(true);
    PGLO_ASSIGN_OR_RETURN(Datum rhs, Eval(txn, *expr.args[1], row));
    if (!rhs.is_bool()) {
      return Status::InvalidArgument("'" + op + "' expects booleans");
    }
    return Datum::Bool(rhs.as_bool());
  }

  PGLO_ASSIGN_OR_RETURN(Datum lhs, Eval(txn, *expr.args[0], row));
  PGLO_ASSIGN_OR_RETURN(Datum rhs, Eval(txn, *expr.args[1], row));

  if (op == "=" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
      op == ">=") {
    // Comparisons against a null value never hold (two-valued
    // simplification of SQL's unknown: the row is simply excluded).
    if (lhs.is_null() || rhs.is_null()) return Datum::Bool(false);
    Result<int> cmp = CompareDatums(lhs, rhs);
    if (cmp.ok()) {
      int c = cmp.value();
      if (op == "=") return Datum::Bool(c == 0);
      if (op == "!=") return Datum::Bool(c != 0);
      if (op == "<") return Datum::Bool(c < 0);
      if (op == "<=") return Datum::Bool(c <= 0);
      if (op == ">") return Datum::Bool(c > 0);
      return Datum::Bool(c >= 0);
    }
    // fall through to user operators
  } else if (op == "+" || op == "-" || op == "*" || op == "/") {
    if (lhs.is_int4() && rhs.is_int4()) {
      int64_t a = lhs.as_int4(), b = rhs.as_int4();
      if (op == "/" && b == 0) {
        return Status::InvalidArgument("division by zero");
      }
      int64_t v = op == "+"   ? a + b
                  : op == "-" ? a - b
                  : op == "*" ? a * b
                              : a / b;
      if (v < INT32_MIN || v > INT32_MAX) {
        return Status::OutOfRange("int4 overflow");
      }
      return Datum::Int4(static_cast<int32_t>(v));
    }
    Result<double> a = lhs.ToDouble();
    Result<double> b = rhs.ToDouble();
    if (a.ok() && b.ok()) {
      if (op == "/" && b.value() == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      double v = op == "+"   ? a.value() + b.value()
                 : op == "-" ? a.value() - b.value()
                 : op == "*" ? a.value() * b.value()
                             : a.value() / b.value();
      return Datum::Float8(v);
    }
    if (op == "+" && lhs.is_text() && rhs.is_text()) {
      return Datum::Text(lhs.as_text() + rhs.as_text());
    }
    // fall through to user operators
  }

  // User-defined operator dispatch through the function manager.
  Result<const FunctionRegistry::FunctionInfo*> fn =
      fns_->ResolveOperator(op, lhs.type(), rhs.type());
  if (!fn.ok()) {
    return Status::InvalidArgument("no operator '" + op +
                                   "' for these operand types");
  }
  FunctionContext fctx = MakeFunctionContext(txn);
  return fn.value()->fn(fctx, {lhs, rhs});
}

// --------------------------------------------------------------------------
// DML

Result<Datum> Executor::CoerceForField(Transaction* txn,
                                       const FieldInfo& field, Datum value) {
  PGLO_ASSIGN_OR_RETURN(const TypeRegistry::TypeInfo* tinfo,
                        types_->ByOid(field.type_oid));
  if (value.is_null()) return Datum::Null(field.type_oid);
  if (tinfo->is_large) {
    if (value.is_lo()) {
      // A function result may be a temporary object (§5); storing it into
      // a class makes it permanent.
      PGLO_RETURN_IF_ERROR(lo_->Promote(txn, value.as_lo().oid));
      return Datum::LargeObject(field.type_oid, value.as_lo());
    }
    if (value.is_oid() || value.is_int4()) {
      Oid oid = value.is_oid() ? value.as_oid()
                               : static_cast<Oid>(value.as_int4());
      PGLO_RETURN_IF_ERROR(lo_->Promote(txn, oid));
      return Datum::LargeObject(field.type_oid, LoRef{oid});
    }
    if (value.is_text()) {
      // §6.1/§6.2: `append EMP (..., picture = "/usr/joe")` — a path
      // literal creates (or adopts) the file-backed object. For file
      // storage kinds the literal is a UNIX file path; otherwise a fresh
      // object of the type's storage kind is created, to be filled via
      // lo_write or a descriptor.
      LoSpec spec = tinfo->lo_spec;
      if (spec.kind == StorageKind::kUserFile) {
        spec.ufile_path = value.as_text();
      }
      PGLO_ASSIGN_OR_RETURN(Oid oid, lo_->Create(txn, spec));
      return Datum::LargeObject(field.type_oid, LoRef{oid});
    }
    return Status::InvalidArgument("cannot coerce value into large field " +
                                   field.name);
  }
  if (value.type() == field.type_oid) return value;
  if (value.is_text()) {
    return tinfo->input(tinfo->oid, value.as_text());
  }
  // int4 -> float8 widening.
  if (field.type_oid == type_oids::kFloat8 && value.is_int4()) {
    return Datum::Float8(value.as_int4());
  }
  if (field.type_oid == type_oids::kInt4 && value.is_float8()) {
    return Datum::Int4(static_cast<int32_t>(value.as_float8()));
  }
  if (field.type_oid == type_oids::kOid && value.is_int4()) {
    return Datum::OidVal(static_cast<Oid>(value.as_int4()));
  }
  return Status::InvalidArgument("type mismatch for field " + field.name);
}

Result<QueryResult> Executor::ExecAppend(Transaction* txn, const Stmt& stmt) {
  PGLO_ASSIGN_OR_RETURN(ClassInfo cls, LookupClass(txn, stmt.class_name));
  std::vector<Datum> row(cls.fields.size());
  for (size_t i = 0; i < cls.fields.size(); ++i) {
    row[i] = Datum::Null(cls.fields[i].type_oid);
  }
  RowContext no_row;
  for (const Assignment& a : stmt.assignments) {
    PGLO_ASSIGN_OR_RETURN(size_t idx, cls.FieldIndex(a.field));
    PGLO_ASSIGN_OR_RETURN(Datum value, Eval(txn, *a.expr, no_row));
    PGLO_ASSIGN_OR_RETURN(row[idx],
                          CoerceForField(txn, cls.fields[idx], value));
  }
  HeapClass heap(ctx_.pool, cls.file);
  PGLO_ASSIGN_OR_RETURN(Tid tid, heap.Insert(txn, Slice(EncodeRow(row))));
  PGLO_RETURN_IF_ERROR(MaintainIndexes(txn, cls, row, tid));
  QueryResult result;
  result.affected = 1;
  return result;
}

Status Executor::MaintainIndexes(Transaction* txn, const ClassInfo& cls,
                                 const std::vector<Datum>& row, Tid tid) {
  PGLO_ASSIGN_OR_RETURN(std::vector<IndexCatalog::IndexInfo> infos,
                        indexes_.ForClass(txn, cls.name));
  for (const IndexCatalog::IndexInfo& info : infos) {
    PGLO_ASSIGN_OR_RETURN(size_t idx, cls.FieldIndex(info.field));
    PGLO_RETURN_IF_ERROR(indexes_.InsertEntry(info, row[idx], tid));
  }
  return Status::OK();
}

Result<std::optional<std::vector<Tid>>> Executor::TryIndexCandidates(
    Transaction* txn, const ClassInfo& cls, const Expr* where) {
  if (where == nullptr) return std::optional<std::vector<Tid>>();
  // Walk the top-level AND conjuncts collecting `field <op> <const expr>`
  // constraints: equality, lower bounds (>, >=), and upper bounds (<, <=).
  struct Constraint {
    const Expr* eq = nullptr;
    const Expr* lower = nullptr;
    const Expr* upper = nullptr;
  };
  std::map<std::string, Constraint> constraints;
  std::vector<const Expr*> conjuncts = {where};
  while (!conjuncts.empty()) {
    const Expr* e = conjuncts.back();
    conjuncts.pop_back();
    if (e->kind != Expr::Kind::kBinaryOp) continue;
    if (e->func == "and") {
      conjuncts.push_back(e->args[0].get());
      conjuncts.push_back(e->args[1].get());
      continue;
    }
    const bool is_eq = e->func == "=";
    const bool is_gt = e->func == ">" || e->func == ">=";
    const bool is_lt = e->func == "<" || e->func == "<=";
    if (!is_eq && !is_gt && !is_lt) continue;
    for (int flip = 0; flip < 2; ++flip) {
      const Expr* field_side = flip ? e->args[1].get() : e->args[0].get();
      const Expr* value_side = flip ? e->args[0].get() : e->args[1].get();
      if (field_side->kind != Expr::Kind::kFieldRef) continue;
      std::vector<std::string> classes;
      CollectClasses(*value_side, &classes);
      if (!classes.empty()) continue;  // not a constant expression
      Constraint& c = constraints[field_side->field];
      if (is_eq) {
        c.eq = value_side;
      } else if ((is_gt && flip == 0) || (is_lt && flip == 1)) {
        c.lower = value_side;  // field > v  (or v < field)
      } else {
        c.upper = value_side;  // field < v  (or v > field)
      }
      break;
    }
  }
  if (constraints.empty()) return std::optional<std::vector<Tid>>();

  PGLO_ASSIGN_OR_RETURN(std::vector<IndexCatalog::IndexInfo> infos,
                        indexes_.ForClass(txn, cls.name));
  auto const_key = [&](const std::string& field,
                       const Expr* value_expr) -> Result<Datum> {
    RowContext no_row;
    PGLO_ASSIGN_OR_RETURN(Datum value, Eval(txn, *value_expr, no_row));
    // Coerce the literal the same way appends do, so the key encoding
    // matches what was stored.
    PGLO_ASSIGN_OR_RETURN(size_t idx, cls.FieldIndex(field));
    return CoerceForLookup(txn, cls.fields[idx], value);
  };

  // Equality constraints first (most selective), then ranges.
  for (bool want_eq : {true, false}) {
    for (const auto& [field, c] : constraints) {
      if (want_eq != (c.eq != nullptr)) continue;
      if (!want_eq && c.lower == nullptr && c.upper == nullptr) continue;
      for (const IndexCatalog::IndexInfo& info : infos) {
        if (info.field != field) continue;
        if (c.eq != nullptr) {
          PGLO_ASSIGN_OR_RETURN(Datum value, const_key(field, c.eq));
          if (value.is_null()) {
            return std::optional<std::vector<Tid>>(std::vector<Tid>{});
          }
          PGLO_ASSIGN_OR_RETURN(std::vector<Tid> tids,
                                indexes_.LookupCandidates(info, value));
          return std::optional<std::vector<Tid>>(std::move(tids));
        }
        // Range scan: the encoded bounds are inclusive supersets (strict
        // bounds and text-prefix truncation are handled by the recheck).
        uint64_t low_key = 0, high_key = ~0ull;
        if (c.lower != nullptr) {
          PGLO_ASSIGN_OR_RETURN(Datum v, const_key(field, c.lower));
          if (v.is_null()) continue;
          Result<uint64_t> k = IndexCatalog::EncodeKey(v);
          if (!k.ok()) continue;
          low_key = k.value();
        }
        if (c.upper != nullptr) {
          PGLO_ASSIGN_OR_RETURN(Datum v, const_key(field, c.upper));
          if (v.is_null()) continue;
          Result<uint64_t> k = IndexCatalog::EncodeKey(v);
          if (!k.ok()) continue;
          high_key = k.value();
        }
        PGLO_ASSIGN_OR_RETURN(
            std::vector<Tid> tids,
            indexes_.RangeCandidates(info, low_key, high_key));
        return std::optional<std::vector<Tid>>(std::move(tids));
      }
    }
  }
  return std::optional<std::vector<Tid>>();
}

Result<Datum> Executor::CoerceForLookup(Transaction* txn,
                                        const FieldInfo& field, Datum value) {
  (void)txn;
  if (value.type() == field.type_oid || value.is_null()) return value;
  PGLO_ASSIGN_OR_RETURN(const TypeRegistry::TypeInfo* tinfo,
                        types_->ByOid(field.type_oid));
  if (tinfo->is_large) {
    if (value.is_oid()) {
      return Datum::LargeObject(field.type_oid, LoRef{value.as_oid()});
    }
    if (value.is_int4()) {
      return Datum::LargeObject(field.type_oid,
                                LoRef{static_cast<Oid>(value.as_int4())});
    }
    return value;
  }
  if (value.is_text()) return tinfo->input(tinfo->oid, value.as_text());
  if (field.type_oid == type_oids::kFloat8 && value.is_int4()) {
    return Datum::Float8(value.as_int4());
  }
  return value;
}

namespace {
/// Aggregate functions recognized in retrieve target lists.
enum class AggKind { kNone, kCount, kSum, kMin, kMax, kAvg };

AggKind AggKindOf(const Expr& expr) {
  if (expr.kind != Expr::Kind::kFuncCall || expr.args.size() != 1) {
    return AggKind::kNone;
  }
  if (expr.func == "count") return AggKind::kCount;
  if (expr.func == "sum") return AggKind::kSum;
  if (expr.func == "min") return AggKind::kMin;
  if (expr.func == "max") return AggKind::kMax;
  if (expr.func == "avg") return AggKind::kAvg;
  return AggKind::kNone;
}

struct AggState {
  AggKind kind = AggKind::kNone;
  uint64_t count = 0;
  double sum = 0;
  bool all_int = true;
  bool has_best = false;
  Datum best;
};
}  // namespace

Result<QueryResult> Executor::ExecRetrieve(Transaction* txn,
                                           const Stmt& stmt) {
  // `as of N` runs the scan under a historical snapshot (§6.3's time
  // travel, POSTQUEL's EMP["epoch"]). The auxiliary transaction is
  // read-only and is always aborted (aborting a reader costs nothing).
  if (stmt.has_as_of && !suppress_as_of_) {
    Transaction* historical = ctx_.txns->BeginAsOf(stmt.as_of);
    suppress_as_of_ = true;
    Result<QueryResult> result = ExecRetrieve(historical, stmt);
    suppress_as_of_ = false;
    PGLO_RETURN_IF_ERROR(ctx_.txns->Abort(historical));
    return result;
  }
  PGLO_ASSIGN_OR_RETURN(std::string class_name, FindRangeClass(stmt));
  QueryResult result;
  // Column labels.
  for (size_t i = 0; i < stmt.targets.size(); ++i) {
    const Target& t = stmt.targets[i];
    if (!t.name.empty()) {
      result.columns.push_back(t.name);
    } else if (t.expr->kind == Expr::Kind::kFieldRef) {
      result.columns.push_back(t.expr->field);
    } else if (t.expr->kind == Expr::Kind::kFuncCall) {
      result.columns.push_back(t.expr->func);
    } else {
      result.columns.push_back("column" + std::to_string(i + 1));
    }
  }
  result.column_types.assign(stmt.targets.size(), kInvalidOid);

  // Aggregate mode: if any target is count/sum/min/max/avg(expr), all must
  // be, and the retrieve produces one summary row.
  std::vector<AggState> aggs(stmt.targets.size());
  bool aggregate_mode = false;
  {
    size_t n_agg = 0;
    for (size_t i = 0; i < stmt.targets.size(); ++i) {
      aggs[i].kind = AggKindOf(*stmt.targets[i].expr);
      if (aggs[i].kind != AggKind::kNone) ++n_agg;
    }
    if (n_agg > 0 && n_agg != stmt.targets.size()) {
      return Status::NotSupported(
          "mixing aggregates and plain targets is not supported");
    }
    aggregate_mode = n_agg > 0;
  }

  auto emit = [&](const RowContext& row) -> Status {
    if (stmt.where != nullptr) {
      PGLO_ASSIGN_OR_RETURN(Datum qual, Eval(txn, *stmt.where, row));
      if (!qual.is_bool()) {
        return Status::InvalidArgument("where clause is not boolean");
      }
      if (!qual.as_bool()) return Status::OK();
    }
    if (aggregate_mode) {
      for (size_t i = 0; i < stmt.targets.size(); ++i) {
        PGLO_ASSIGN_OR_RETURN(
            Datum v, Eval(txn, *stmt.targets[i].expr->args[0], row));
        if (v.is_null()) continue;  // aggregates skip nulls
        AggState& agg = aggs[i];
        ++agg.count;
        switch (agg.kind) {
          case AggKind::kCount:
            break;
          case AggKind::kSum:
          case AggKind::kAvg: {
            PGLO_ASSIGN_OR_RETURN(double x, v.ToDouble());
            agg.sum += x;
            if (!v.is_int4()) agg.all_int = false;
            break;
          }
          case AggKind::kMin:
          case AggKind::kMax: {
            if (!agg.has_best) {
              agg.best = v;
              agg.has_best = true;
            } else {
              PGLO_ASSIGN_OR_RETURN(int cmp, CompareDatums(v, agg.best));
              if ((agg.kind == AggKind::kMin && cmp < 0) ||
                  (agg.kind == AggKind::kMax && cmp > 0)) {
                agg.best = v;
              }
            }
            break;
          }
          case AggKind::kNone:
            break;
        }
      }
      return Status::OK();
    }
    std::vector<Datum> out;
    out.reserve(stmt.targets.size());
    for (size_t i = 0; i < stmt.targets.size(); ++i) {
      PGLO_ASSIGN_OR_RETURN(Datum v, Eval(txn, *stmt.targets[i].expr, row));
      if (result.column_types[i] == kInvalidOid) {
        result.column_types[i] = v.type();
      }
      out.push_back(std::move(v));
    }
    result.rows.push_back(std::move(out));
    return Status::OK();
  };

  if (class_name.empty()) {
    // Constant query, e.g. `retrieve (result = newfilename())`.
    RowContext no_row;
    PGLO_RETURN_IF_ERROR(emit(no_row));
  } else {
    PGLO_ASSIGN_OR_RETURN(ClassInfo cls, LookupClass(txn, class_name));
    HeapClass heap(ctx_.pool, cls.file);
    PGLO_ASSIGN_OR_RETURN(std::optional<std::vector<Tid>> candidates,
                          TryIndexCandidates(txn, cls, stmt.where.get()));
    if (candidates.has_value()) {
      // Index-assisted scan: probe candidates, apply visibility, and
      // re-evaluate the full qualification (entries are a superset).
      for (Tid tid : *candidates) {
        Result<Bytes> payload = heap.Get(txn, tid);
        if (!payload.ok()) {
          if (payload.status().IsNotFound()) continue;  // dead version
          return payload.status();
        }
        PGLO_ASSIGN_OR_RETURN(std::vector<Datum> row,
                              DecodeRow(cls, Slice(payload.value())));
        RowContext rctx{&cls, &row};
        PGLO_RETURN_IF_ERROR(emit(rctx));
      }
    } else {
      HeapScan scan(&heap, txn);
      Tid tid;
      Bytes payload;
      for (;;) {
        PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
        if (!more) break;
        PGLO_ASSIGN_OR_RETURN(std::vector<Datum> row,
                              DecodeRow(cls, Slice(payload)));
        RowContext rctx{&cls, &row};
        PGLO_RETURN_IF_ERROR(emit(rctx));
      }
    }
  }

  if (aggregate_mode) {
    std::vector<Datum> summary;
    summary.reserve(aggs.size());
    for (AggState& agg : aggs) {
      switch (agg.kind) {
        case AggKind::kCount:
          summary.push_back(Datum::Int4(static_cast<int32_t>(agg.count)));
          break;
        case AggKind::kSum:
          if (agg.all_int && agg.sum >= INT32_MIN && agg.sum <= INT32_MAX) {
            summary.push_back(Datum::Int4(static_cast<int32_t>(agg.sum)));
          } else {
            summary.push_back(Datum::Float8(agg.sum));
          }
          break;
        case AggKind::kAvg:
          summary.push_back(agg.count == 0
                                ? Datum::Null(type_oids::kFloat8)
                                : Datum::Float8(agg.sum /
                                                static_cast<double>(
                                                    agg.count)));
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          summary.push_back(agg.has_best ? agg.best : Datum());
          break;
        case AggKind::kNone:
          break;
      }
    }
    for (size_t i = 0; i < summary.size(); ++i) {
      result.column_types[i] = summary[i].type();
    }
    result.rows.push_back(std::move(summary));
  }

  if (!stmt.into_class.empty()) {
    PGLO_RETURN_IF_ERROR(MaterializeInto(txn, stmt.into_class, &result));
  }
  result.affected = result.rows.size();
  return result;
}

Status Executor::MaterializeInto(Transaction* txn,
                                 const std::string& class_name,
                                 QueryResult* result) {
  // POSTQUEL's retrieve-into: create a class shaped like the result and
  // fill it. The schema is inferred from the first row's datum types, so
  // an empty result cannot be materialized.
  if (result->rows.empty()) {
    return Status::InvalidArgument(
        "retrieve into cannot infer a schema from an empty result");
  }
  if (LookupClass(txn, class_name).ok()) {
    return Status::AlreadyExists("class exists: " + class_name);
  }
  Stmt create;
  create.kind = Stmt::Kind::kCreateClass;
  create.class_name = class_name;
  for (size_t i = 0; i < result->columns.size(); ++i) {
    Oid type = result->rows[0][i].type();
    PGLO_ASSIGN_OR_RETURN(const TypeRegistry::TypeInfo* tinfo,
                          types_->ByOid(type));
    create.schema.emplace_back(result->columns[i], tinfo->name);
  }
  PGLO_RETURN_IF_ERROR(ExecCreateClass(txn, create).status());
  PGLO_ASSIGN_OR_RETURN(ClassInfo cls, LookupClass(txn, class_name));
  HeapClass heap(ctx_.pool, cls.file);
  for (std::vector<Datum>& row : result->rows) {
    // Coerce per field (this is also what promotes temporary large
    // objects being persisted into the new class, §5).
    for (size_t i = 0; i < row.size(); ++i) {
      PGLO_ASSIGN_OR_RETURN(row[i],
                            CoerceForField(txn, cls.fields[i], row[i]));
    }
    PGLO_RETURN_IF_ERROR(heap.Insert(txn, Slice(EncodeRow(row))).status());
  }
  return Status::OK();
}

Result<QueryResult> Executor::ExecReplace(Transaction* txn,
                                          const Stmt& stmt) {
  PGLO_ASSIGN_OR_RETURN(ClassInfo cls, LookupClass(txn, stmt.class_name));
  HeapClass heap(ctx_.pool, cls.file);
  // Materialize matches first so the scan does not chase its own updates.
  std::vector<std::pair<Tid, std::vector<Datum>>> matches;
  {
    HeapScan scan(&heap, txn);
    Tid tid;
    Bytes payload;
    for (;;) {
      PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
      if (!more) break;
      PGLO_ASSIGN_OR_RETURN(std::vector<Datum> row,
                            DecodeRow(cls, Slice(payload)));
      if (stmt.where != nullptr) {
        RowContext rctx{&cls, &row};
        PGLO_ASSIGN_OR_RETURN(Datum qual, Eval(txn, *stmt.where, rctx));
        if (!qual.is_bool() || !qual.as_bool()) continue;
      }
      matches.emplace_back(tid, std::move(row));
    }
  }
  for (auto& [tid, row] : matches) {
    RowContext rctx{&cls, &row};
    std::vector<Datum> updated = row;
    for (const Assignment& a : stmt.assignments) {
      PGLO_ASSIGN_OR_RETURN(size_t idx, cls.FieldIndex(a.field));
      PGLO_ASSIGN_OR_RETURN(Datum value, Eval(txn, *a.expr, rctx));
      PGLO_ASSIGN_OR_RETURN(updated[idx],
                            CoerceForField(txn, cls.fields[idx], value));
    }
    PGLO_ASSIGN_OR_RETURN(Tid new_tid,
                          heap.Update(txn, tid, Slice(EncodeRow(updated))));
    PGLO_RETURN_IF_ERROR(MaintainIndexes(txn, cls, updated, new_tid));
  }
  QueryResult result;
  result.affected = matches.size();
  return result;
}

Result<QueryResult> Executor::ExecDelete(Transaction* txn, const Stmt& stmt) {
  PGLO_ASSIGN_OR_RETURN(ClassInfo cls, LookupClass(txn, stmt.class_name));
  HeapClass heap(ctx_.pool, cls.file);
  std::vector<Tid> doomed;
  {
    HeapScan scan(&heap, txn);
    Tid tid;
    Bytes payload;
    for (;;) {
      PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
      if (!more) break;
      if (stmt.where != nullptr) {
        PGLO_ASSIGN_OR_RETURN(std::vector<Datum> row,
                              DecodeRow(cls, Slice(payload)));
        RowContext rctx{&cls, &row};
        PGLO_ASSIGN_OR_RETURN(Datum qual, Eval(txn, *stmt.where, rctx));
        if (!qual.is_bool() || !qual.as_bool()) continue;
      }
      doomed.push_back(tid);
    }
  }
  for (Tid tid : doomed) {
    PGLO_RETURN_IF_ERROR(heap.Delete(txn, tid));
  }
  QueryResult result;
  result.affected = doomed.size();
  return result;
}

Result<QueryResult> Executor::ExecDestroy(Transaction* txn,
                                          const Stmt& stmt) {
  // Remove the catalog row (MVCC — the class data stays reachable through
  // time travel; its file is not physically dropped here).
  HeapScan scan(&catalog_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    ByteReader reader{Slice(payload)};
    Slice cname;
    if (!reader.GetLengthPrefixed(&cname)) {
      return Status::Corruption("bad class catalog record");
    }
    if (cname.ToStringView() == stmt.class_name) {
      PGLO_RETURN_IF_ERROR(catalog_.Delete(txn, tid));
      QueryResult result;
      result.affected = 1;
      return result;
    }
  }
  return Status::NotFound("no class named " + stmt.class_name);
}

Result<QueryResult> Executor::ExecDefineIndex(Transaction* txn,
                                              const Stmt& stmt) {
  PGLO_ASSIGN_OR_RETURN(ClassInfo cls, LookupClass(txn, stmt.class_name));
  PGLO_ASSIGN_OR_RETURN(size_t field_idx, cls.FieldIndex(stmt.index_field));
  // Collect the class's current visible rows to back-fill the index.
  std::vector<std::pair<Tid, Datum>> existing;
  HeapClass heap(ctx_.pool, cls.file);
  HeapScan scan(&heap, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(std::vector<Datum> row,
                          DecodeRow(cls, Slice(payload)));
    existing.emplace_back(tid, row[field_idx]);
  }
  PGLO_RETURN_IF_ERROR(indexes_
                           .Define(txn, stmt.index_name, stmt.class_name,
                                   stmt.index_field, existing)
                           .status());
  QueryResult result;
  result.affected = existing.size();
  return result;
}

Result<QueryResult> Executor::ExecRemoveIndex(Transaction* txn,
                                              const Stmt& stmt) {
  PGLO_RETURN_IF_ERROR(indexes_.Remove(txn, stmt.index_name));
  QueryResult result;
  result.affected = 1;
  return result;
}

Result<QueryResult> Executor::Execute(Transaction* txn, const Stmt& stmt) {
  switch (stmt.kind) {
    case Stmt::Kind::kCreateClass:
      return ExecCreateClass(txn, stmt);
    case Stmt::Kind::kCreateLargeType:
      return ExecCreateLargeType(txn, stmt);
    case Stmt::Kind::kAppend:
      return ExecAppend(txn, stmt);
    case Stmt::Kind::kRetrieve:
      return ExecRetrieve(txn, stmt);
    case Stmt::Kind::kReplace:
      return ExecReplace(txn, stmt);
    case Stmt::Kind::kDelete:
      return ExecDelete(txn, stmt);
    case Stmt::Kind::kDestroy:
      return ExecDestroy(txn, stmt);
    case Stmt::Kind::kDefineIndex:
      return ExecDefineIndex(txn, stmt);
    case Stmt::Kind::kRemoveIndex:
      return ExecRemoveIndex(txn, stmt);
  }
  return Status::Internal("unreachable statement kind");
}

Result<std::string> QueryResult::ToString(const TypeRegistry& types) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  if (!columns.empty()) out += "\n";
  for (const std::vector<Datum>& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      if (row[i].is_null()) {
        out += "(null)";
        continue;
      }
      Result<const TypeRegistry::TypeInfo*> tinfo = types.ByOid(row[i].type());
      if (tinfo.ok() && tinfo.value()->output) {
        PGLO_ASSIGN_OR_RETURN(std::string text, tinfo.value()->output(row[i]));
        out += text;
      } else {
        out += "(?)";
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace query
}  // namespace pglo
