#include "query/secondary_index.h"

#include <cstring>

namespace pglo {
namespace query {

namespace {
/// Reserved relation file of the index catalog (see the other reserved
/// oids: 10 LO catalog, 11 class catalog, 12–14 Inversion).
constexpr Oid kIndexCatalogRelfile = 15;
constexpr uint8_t kCatalogSmgr = kSmgrDisk;

Bytes EncodeInfo(const IndexCatalog::IndexInfo& info) {
  Bytes out;
  PutLengthPrefixed(&out, Slice(info.name));
  PutLengthPrefixed(&out, Slice(info.class_name));
  PutLengthPrefixed(&out, Slice(info.field));
  out.push_back(info.btree_file.smgr_id);
  PutFixed32(&out, info.btree_file.relfile);
  return out;
}

Result<IndexCatalog::IndexInfo> DecodeInfo(Slice image) {
  IndexCatalog::IndexInfo info;
  ByteReader reader{image};
  Slice name, cls, field;
  if (!reader.GetLengthPrefixed(&name) || !reader.GetLengthPrefixed(&cls) ||
      !reader.GetLengthPrefixed(&field) || reader.remaining() < 5) {
    return Status::Corruption("bad index catalog record");
  }
  info.name = name.ToString();
  info.class_name = cls.ToString();
  info.field = field.ToString();
  const uint8_t* tail = image.data() + image.size() - 5;
  info.btree_file.smgr_id = tail[0];
  info.btree_file.relfile = DecodeFixed32(tail + 1);
  return info;
}
}  // namespace

IndexCatalog::IndexCatalog(const DbContext& ctx)
    : ctx_(ctx),
      catalog_(ctx.pool, RelFileId{kCatalogSmgr, kIndexCatalogRelfile}) {}

Status IndexCatalog::Bootstrap() {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, ctx_.smgrs->Get(kCatalogSmgr));
  if (smgr->FileExists(kIndexCatalogRelfile)) return Status::OK();
  return HeapClass::Create(ctx_.pool,
                           RelFileId{kCatalogSmgr, kIndexCatalogRelfile});
}

Result<uint64_t> IndexCatalog::EncodeKey(const Datum& value) {
  if (value.is_int4()) {
    // Shift into unsigned space so order is preserved.
    return static_cast<uint64_t>(static_cast<int64_t>(value.as_int4())) +
           (1ull << 31);
  }
  if (value.is_oid()) return static_cast<uint64_t>(value.as_oid());
  if (value.is_bool()) return static_cast<uint64_t>(value.as_bool());
  if (value.is_float8()) {
    // IEEE-754 total-order trick: flip all bits of negatives, set the top
    // bit of non-negatives.
    uint64_t bits;
    double v = value.as_float8();
    std::memcpy(&bits, &v, sizeof(bits));
    return (bits & (1ull << 63)) ? ~bits : (bits | (1ull << 63));
  }
  if (value.is_text()) {
    // Big-endian 8-byte prefix: preserves order, truncates (collisions are
    // fine — index scans re-check the actual value).
    const std::string& s = value.as_text();
    uint64_t key = 0;
    for (size_t i = 0; i < 8; ++i) {
      key = (key << 8) |
            (i < s.size() ? static_cast<uint8_t>(s[i]) : 0);
    }
    return key;
  }
  if (value.is_lo()) return static_cast<uint64_t>(value.as_lo().oid);
  return Status::NotSupported("field type is not indexable");
}

Result<IndexCatalog::IndexInfo> IndexCatalog::Define(
    Transaction* txn, const std::string& index_name,
    const std::string& class_name, const std::string& field,
    const std::vector<std::pair<Tid, Datum>>& existing_rows) {
  // Uniqueness of the index name.
  {
    HeapScan scan(&catalog_, txn);
    Tid tid;
    Bytes payload;
    for (;;) {
      PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
      if (!more) break;
      PGLO_ASSIGN_OR_RETURN(IndexInfo info, DecodeInfo(Slice(payload)));
      if (info.name == index_name) {
        return Status::AlreadyExists("index exists: " + index_name);
      }
    }
  }
  IndexInfo info;
  info.name = index_name;
  info.class_name = class_name;
  info.field = field;
  info.btree_file = RelFileId{kCatalogSmgr, ctx_.oids->Allocate()};
  PGLO_RETURN_IF_ERROR(Btree::Create(ctx_.pool, info.btree_file));
  // Back-fill from the class's current contents.
  for (const auto& [tid, value] : existing_rows) {
    if (value.is_null()) continue;
    PGLO_RETURN_IF_ERROR(InsertEntry(info, value, tid));
  }
  PGLO_RETURN_IF_ERROR(
      catalog_.Insert(txn, Slice(EncodeInfo(info))).status());
  return info;
}

Status IndexCatalog::Remove(Transaction* txn, const std::string& index_name) {
  HeapScan scan(&catalog_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(IndexInfo info, DecodeInfo(Slice(payload)));
    if (info.name == index_name) {
      return catalog_.Delete(txn, tid);
    }
  }
  return Status::NotFound("no index named " + index_name);
}

Result<std::vector<IndexCatalog::IndexInfo>> IndexCatalog::ForClass(
    Transaction* txn, const std::string& class_name) {
  std::vector<IndexInfo> out;
  HeapScan scan(&catalog_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(IndexInfo info, DecodeInfo(Slice(payload)));
    if (info.class_name == class_name) out.push_back(std::move(info));
  }
  return out;
}

Status IndexCatalog::InsertEntry(const IndexInfo& index, const Datum& value,
                                 Tid tid) {
  if (value.is_null()) return Status::OK();
  PGLO_ASSIGN_OR_RETURN(uint64_t key, EncodeKey(value));
  Btree tree(ctx_.pool, index.btree_file);
  return tree.InsertIfAbsent(key, tid);
}

Result<std::vector<Tid>> IndexCatalog::LookupCandidates(
    const IndexInfo& index, const Datum& value) {
  PGLO_ASSIGN_OR_RETURN(uint64_t key, EncodeKey(value));
  return RangeCandidates(index, key, key);
}

Result<std::vector<Tid>> IndexCatalog::RangeCandidates(
    const IndexInfo& index, uint64_t low_key, uint64_t high_key) {
  Btree tree(ctx_.pool, index.btree_file);
  std::vector<Tid> tids;
  PGLO_ASSIGN_OR_RETURN(Btree::Iterator it, tree.Seek(low_key));
  while (it.valid() && it.key() <= high_key) {
    tids.push_back(it.tid());
    PGLO_RETURN_IF_ERROR(it.Next());
  }
  return tids;
}

}  // namespace query
}  // namespace pglo
