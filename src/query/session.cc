#include "query/session.h"

#include "common/logging.h"
#include "query/parser.h"

namespace pglo {
namespace query {

Session::Session(Database* db)
    : db_(db),
      types_(&db->oids()),
      executor_(db->context(), &db->large_objects(), &types_, &fns_) {
  RegisterBuiltinFunctions(&fns_);
  Status s = executor_.Bootstrap();
  if (!s.ok()) {
    PGLO_LOG(Error) << "query catalog bootstrap failed: " << s.ToString();
  }
}

Result<QueryResult> Session::Run(Transaction* txn, const std::string& text) {
  PGLO_ASSIGN_OR_RETURN(std::vector<Stmt> stmts, Parser::Parse(text));
  QueryResult last;
  for (const Stmt& stmt : stmts) {
    PGLO_ASSIGN_OR_RETURN(last, executor_.Execute(txn, stmt));
  }
  return last;
}

Result<QueryResult> Session::Run(const std::string& text) {
  Transaction* txn = db_->Begin();
  Result<QueryResult> result = Run(txn, text);
  if (result.ok()) {
    Result<CommitTime> commit = db_->Commit(txn);
    if (!commit.ok()) return commit.status();
  } else {
    Status abort_status = db_->Abort(txn);
    (void)abort_status;
  }
  return result;
}

}  // namespace query
}  // namespace pglo
