#ifndef PGLO_QUERY_SECONDARY_INDEX_H_
#define PGLO_QUERY_SECONDARY_INDEX_H_

#include <string>
#include <vector>

#include "btree/btree.h"
#include "db/context.h"
#include "heap/heap_class.h"
#include "types/datum.h"

namespace pglo {
namespace query {

/// Secondary (B-tree) indexes over class fields.
///
/// §3 motivates large ADTs partly because "indexing BLOBs can also be
/// supported" once values live inside the DBMS. This module provides the
/// machinery: `define index <name> on <Class> (<field>)` builds a B-tree
/// over an order-preserving 64-bit encoding of the field, the executor
/// maintains it on append/replace, and equality qualifications use it
/// instead of a full scan.
///
/// Index entries are a *superset* filter: the encoding truncates (text
/// keys index an 8-byte prefix) and old versions keep their entries, so
/// every index scan re-fetches the tuple, applies MVCC visibility, and
/// re-evaluates the full qualification — exactly how POSTGRES treated
/// secondary indexes under no-overwrite storage.
class IndexCatalog {
 public:
  struct IndexInfo {
    std::string name;
    std::string class_name;
    std::string field;
    RelFileId btree_file;
  };

  explicit IndexCatalog(const DbContext& ctx);

  /// Creates the index catalog class on first use (idempotent).
  Status Bootstrap();

  /// Defines an index and back-fills it from the class's visible rows.
  /// `field_values` supplies (tid, field datum) for each existing row.
  Result<IndexInfo> Define(
      Transaction* txn, const std::string& index_name,
      const std::string& class_name, const std::string& field,
      const std::vector<std::pair<Tid, Datum>>& existing_rows);

  /// Removes the index definition (the B-tree file is reclaimed lazily).
  Status Remove(Transaction* txn, const std::string& index_name);

  /// All indexes defined on `class_name` (visible to `txn`).
  Result<std::vector<IndexInfo>> ForClass(Transaction* txn,
                                          const std::string& class_name);

  /// Inserts an entry for a new row version. Null datums are not indexed.
  Status InsertEntry(const IndexInfo& index, const Datum& value, Tid tid);

  /// Candidate tids whose indexed field *may* equal `value` (callers must
  /// re-check visibility and the actual value).
  Result<std::vector<Tid>> LookupCandidates(const IndexInfo& index,
                                            const Datum& value);

  /// Candidate tids whose encoded key lies in [low_key, high_key]. The
  /// encoding is order-preserving (monotone for truncating text keys), so
  /// this is a superset of any value range — callers re-check.
  Result<std::vector<Tid>> RangeCandidates(const IndexInfo& index,
                                           uint64_t low_key,
                                           uint64_t high_key);

  /// Order-preserving 64-bit key for an indexable datum; NotSupported for
  /// datum kinds that cannot be indexed (null handled by callers).
  static Result<uint64_t> EncodeKey(const Datum& value);

 private:
  DbContext ctx_;
  HeapClass catalog_;
};

}  // namespace query
}  // namespace pglo

#endif  // PGLO_QUERY_SECONDARY_INDEX_H_
