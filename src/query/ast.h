#ifndef PGLO_QUERY_AST_H_
#define PGLO_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "lo/large_object.h"
#include "types/datum.h"

namespace pglo {
namespace query {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node of the POSTQUEL-like language.
struct Expr {
  enum class Kind {
    kConst,     ///< typed literal (int4 / float8 / text)
    kFieldRef,  ///< Class.field or bare field
    kFuncCall,  ///< f(args...) — dispatched through the function manager
    kBinaryOp,  ///< op in {=, !=, <, <=, >, >=, +, -, *, /, and, or}
    kCast,      ///< expr::type — runs the target type's input routine
  };

  Kind kind;

  // kConst
  Datum constant;

  // kFieldRef
  std::string class_name;  // may be empty (bare field)
  std::string field;

  // kFuncCall / kBinaryOp (op symbol in `func`)
  std::string func;
  std::vector<ExprPtr> args;

  // kCast
  std::string cast_type;
  ExprPtr operand;
};

/// One element of a retrieve target list: `name = expr` or a bare expr.
struct Target {
  std::string name;  ///< output column label (derived if empty)
  ExprPtr expr;
};

/// `field = expr` in append/replace.
struct Assignment {
  std::string field;
  ExprPtr expr;
};

/// A parsed statement.
struct Stmt {
  enum class Kind {
    kCreateClass,      ///< create C (f = type, ...) [storage = "name"]
    kAppend,           ///< append C (f = expr, ...)
    kRetrieve,         ///< retrieve (targets) [where qual]
    kReplace,          ///< replace C (f = expr, ...) [where qual]
    kDelete,           ///< delete C [where qual]
    kDestroy,          ///< destroy C
    kCreateLargeType,  ///< create large type T (input=..., output=...,
                       ///<                      storage = kind)
    kDefineIndex,      ///< define index I on C (field)
    kRemoveIndex,      ///< remove index I
  };

  Kind kind;
  std::string class_name;  // or type name for kCreateLargeType

  // kCreateClass
  std::vector<std::pair<std::string, std::string>> schema;  // field, type
  std::string storage_manager;  ///< §7: "allocated to any of these storage
                                ///< managers, using a parameter in the
                                ///< create command"

  // kAppend / kReplace
  std::vector<Assignment> assignments;

  // kRetrieve
  std::vector<Target> targets;
  /// `retrieve into NEWCLASS (...)`: materialize the result rows into a
  /// freshly created class (POSTQUEL's retrieve-into).
  std::string into_class;

  // qualification (kRetrieve/kReplace/kDelete)
  ExprPtr where;

  // kRetrieve time travel: `retrieve (...) [where ...] as of <tick>`.
  // 0 = none (current snapshot). POSTQUEL spelled this EMP["epoch"];
  // the clause form keeps the grammar simple.
  uint64_t as_of = 0;
  bool has_as_of = false;

  // kCreateLargeType
  std::string input_fn;   ///< compression conversion routine
  std::string output_fn;  ///< uncompression conversion routine
  std::string storage_kind;

  // kDefineIndex / kRemoveIndex
  std::string index_name;
  std::string index_field;
};

}  // namespace query
}  // namespace pglo

#endif  // PGLO_QUERY_AST_H_
