#ifndef PGLO_QUERY_SESSION_H_
#define PGLO_QUERY_SESSION_H_

#include <memory>
#include <string>

#include "db/database.h"
#include "query/executor.h"

namespace pglo {
namespace query {

/// A query-language session against a Database: parses POSTQUEL-like text,
/// runs it, and returns rows.
///
/// The session owns the in-process type and function registries (types and
/// functions were "dynamically loaded" per backend in POSTGRES; here they
/// are re-registered per session — persistent state lives in the class
/// catalog and the heaps).
class Session {
 public:
  explicit Session(Database* db);

  /// Runs statements in their own transaction (auto-commit). Multiple
  /// ';'-separated statements share one transaction; the result of the
  /// last statement is returned.
  Result<QueryResult> Run(const std::string& text);

  /// Runs statements under a caller-managed transaction. Use with
  /// db->BeginAsOf(t) for time-travel queries.
  Result<QueryResult> Run(Transaction* txn, const std::string& text);

  TypeRegistry& types() { return types_; }
  FunctionRegistry& functions() { return fns_; }
  Executor& executor() { return executor_; }

 private:
  Database* db_;
  TypeRegistry types_;
  FunctionRegistry fns_;
  Executor executor_;
};

}  // namespace query
}  // namespace pglo

#endif  // PGLO_QUERY_SESSION_H_
