#ifndef PGLO_QUERY_EXECUTOR_H_
#define PGLO_QUERY_EXECUTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "db/context.h"
#include "heap/heap_class.h"
#include "lo/lo_manager.h"
#include "query/ast.h"
#include "query/secondary_index.h"
#include "types/fmgr.h"
#include "types/type_registry.h"

namespace pglo {
namespace query {

/// Result of a retrieve (other statements report affected-row counts).
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Oid> column_types;
  std::vector<std::vector<Datum>> rows;
  uint64_t affected = 0;

  /// Renders a plain-text table using the types' output routines.
  Result<std::string> ToString(const TypeRegistry& types) const;
};

/// Executes parsed statements against the database: class catalog
/// maintenance, heap scans with qualification, function-manager dispatch,
/// and the large-ADT conveniences of §4/§5 (file-path literals for u-file
/// fields, automatic promotion of temporary large objects stored into a
/// class).
class Executor {
 public:
  Executor(const DbContext& ctx, LoManager* lo, TypeRegistry* types,
           FunctionRegistry* fns);

  /// Creates the class catalog on first use (idempotent).
  Status Bootstrap();

  Result<QueryResult> Execute(Transaction* txn, const Stmt& stmt);

  /// Schema lookup, exposed for tests and the session layer.
  struct FieldInfo {
    std::string name;
    std::string type_name;
    Oid type_oid = kInvalidOid;
  };
  struct ClassInfo {
    std::string name;
    RelFileId file;
    std::vector<FieldInfo> fields;
    Result<size_t> FieldIndex(const std::string& field) const;
  };
  Result<ClassInfo> LookupClass(Transaction* txn, const std::string& name);

 private:
  struct RowContext {
    const ClassInfo* cls = nullptr;
    const std::vector<Datum>* row = nullptr;
  };

  Result<QueryResult> ExecCreateClass(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecCreateLargeType(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecAppend(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecRetrieve(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecReplace(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecDelete(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecDestroy(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecDefineIndex(Transaction* txn, const Stmt& stmt);
  Result<QueryResult> ExecRemoveIndex(Transaction* txn, const Stmt& stmt);

  /// retrieve-into: creates `class_name` shaped like `result` and inserts
  /// the rows (coerced per field).
  Status MaterializeInto(Transaction* txn, const std::string& class_name,
                         QueryResult* result);

  /// Adds an entry to every index of `cls` for a newly inserted row
  /// version at `tid`.
  Status MaintainIndexes(Transaction* txn, const ClassInfo& cls,
                         const std::vector<Datum>& row, Tid tid);

  /// When the qualification contains an equality conjunct
  /// `Class.field = <constant>` on an indexed field, returns the index
  /// candidates to probe instead of a full scan; nullopt otherwise.
  Result<std::optional<std::vector<Tid>>> TryIndexCandidates(
      Transaction* txn, const ClassInfo& cls, const Expr* where);

  Result<Datum> Eval(Transaction* txn, const Expr& expr,
                     const RowContext& row);
  Result<Datum> EvalBinary(Transaction* txn, const Expr& expr,
                           const RowContext& row);
  Result<Datum> EvalCast(Transaction* txn, const Expr& expr,
                         const RowContext& row);

  /// Coerces a constant the way CoerceForField would, but without side
  /// effects (no object creation/promotion) — used to build index keys
  /// that match stored values.
  Result<Datum> CoerceForLookup(Transaction* txn, const FieldInfo& field,
                                Datum value);

  /// Coerces an evaluated value into field `field` of a class — this is
  /// where a text literal becomes a u-file large object (§6.1's
  /// `append EMP (..., picture = "/usr/joe")`) and where temporary large
  /// objects stored into a class are promoted to permanence.
  Result<Datum> CoerceForField(Transaction* txn, const FieldInfo& field,
                               Datum value);

  /// Which single class does this statement range over? Derived from the
  /// explicit class (append/replace/delete) or the field references
  /// (retrieve).
  Result<std::string> FindRangeClass(const Stmt& stmt) const;
  static void CollectClasses(const Expr& expr,
                             std::vector<std::string>* out);

  static Bytes EncodeRow(const std::vector<Datum>& row);
  Result<std::vector<Datum>> DecodeRow(const ClassInfo& cls, Slice image);

  FunctionContext MakeFunctionContext(Transaction* txn);

  DbContext ctx_;
  LoManager* lo_;
  TypeRegistry* types_;
  FunctionRegistry* fns_;
  HeapClass catalog_;
  IndexCatalog indexes_;
  /// Re-entrancy guard for the `as of` clause (the historical re-execution
  /// must run the same Stmt without re-entering the time-travel branch).
  bool suppress_as_of_ = false;
};

}  // namespace query
}  // namespace pglo

#endif  // PGLO_QUERY_EXECUTOR_H_
