#include "smgr/mm_smgr.h"

#include <cstring>

namespace pglo {

Status MainMemorySmgr::CreateFile(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(relfile)) {
    return Status::AlreadyExists("relation file already exists");
  }
  files_[relfile];  // default-construct an empty block vector
  return Status::OK();
}

Status MainMemorySmgr::DropFile(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(relfile) == 0) {
    return Status::NotFound("relation file does not exist");
  }
  return Status::OK();
}

bool MainMemorySmgr::FileExists(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(relfile) != 0;
}

Result<BlockNumber> MainMemorySmgr::NumBlocks(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  return static_cast<BlockNumber>(it->second.size());
}

Status MainMemorySmgr::ReadBlock(Oid relfile, BlockNumber block,
                                 uint8_t* buf) {
  TraceSpan span(stat_registry_, stat_read_ns_, span_read_name_);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  if (block >= it->second.size()) {
    return Status::OutOfRange("block beyond end of file");
  }
  std::memcpy(buf, it->second[block].get(), kPageSize);
  if (device_ != nullptr) device_->ChargeRead(block, 1);
  StatInc(stat_blocks_read_);
  return Status::OK();
}

Status MainMemorySmgr::WriteBlock(Oid relfile, BlockNumber block,
                                  const uint8_t* buf) {
  TraceSpan span(stat_registry_, stat_write_ns_, span_write_name_);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  auto& blocks = it->second;
  if (block > blocks.size()) {
    return Status::InvalidArgument("write would leave a hole in the file");
  }
  if (block == blocks.size()) {
    blocks.emplace_back(std::make_unique<uint8_t[]>(kPageSize));
  }
  std::memcpy(blocks[block].get(), buf, kPageSize);
  if (device_ != nullptr) device_->ChargeWrite(block, 1);
  StatInc(stat_blocks_written_);
  return Status::OK();
}

Status MainMemorySmgr::ReadBlocks(Oid relfile, BlockNumber start,
                                  uint32_t nblocks, uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  if (nblocks == 1) return ReadBlock(relfile, start, buf);
  TraceSpan span(stat_registry_, stat_read_ns_, span_read_name_);
  span.AddDetail(nblocks);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  if (static_cast<size_t>(start) + nblocks > it->second.size()) {
    return Status::OutOfRange("read run extends beyond end of file");
  }
  for (uint32_t i = 0; i < nblocks; ++i) {
    std::memcpy(buf + static_cast<size_t>(i) * kPageSize,
                it->second[start + i].get(), kPageSize);
  }
  // One bus transaction for the whole run: the per-op setup cost is paid
  // once, which is the entire win on this device.
  if (device_ != nullptr) device_->ChargeRead(start, nblocks);
  StatAdd(stat_blocks_read_, nblocks);
  NoteCoalescedRun(nblocks);
  return Status::OK();
}

Status MainMemorySmgr::WriteBlocks(Oid relfile, BlockNumber start,
                                   uint32_t nblocks, const uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  if (nblocks == 1) return WriteBlock(relfile, start, buf);
  TraceSpan span(stat_registry_, stat_write_ns_, span_write_name_);
  span.AddDetail(nblocks);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  auto& blocks = it->second;
  if (start > blocks.size()) {
    return Status::InvalidArgument("write would leave a hole in the file");
  }
  for (uint32_t i = 0; i < nblocks; ++i) {
    BlockNumber block = start + i;
    if (block == blocks.size()) {
      blocks.emplace_back(std::make_unique<uint8_t[]>(kPageSize));
    }
    std::memcpy(blocks[block].get(),
                buf + static_cast<size_t>(i) * kPageSize, kPageSize);
  }
  if (device_ != nullptr) device_->ChargeWrite(start, nblocks);
  StatAdd(stat_blocks_written_, nblocks);
  NoteCoalescedRun(nblocks);
  return Status::OK();
}

Result<uint64_t> MainMemorySmgr::StorageBytes(Oid relfile) {
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks(relfile));
  return static_cast<uint64_t>(nblocks) * kPageSize;
}

}  // namespace pglo
