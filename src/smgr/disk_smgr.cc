#include "smgr/disk_smgr.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pglo {

DiskSmgr::DiskSmgr(std::string dir, DeviceModel* device)
    : dir_(std::move(dir)), device_(device) {
  ::mkdir(dir_.c_str(), 0755);  // best effort; Open errors surface later
}

DiskSmgr::~DiskSmgr() {
  for (auto& [oid, fd] : fds_) {
    ::close(fd);
  }
}

std::string DiskSmgr::PathFor(Oid relfile) const {
  return dir_ + "/" + std::to_string(relfile) + ".rel";
}

Result<int> DiskSmgr::GetFd(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(relfile);
  if (it != fds_.end()) return it->second;
  int fd = ::open(PathFor(relfile).c_str(), O_RDWR, 0644);
  if (fd < 0) {
    return Status::NotFound("relation file " + std::to_string(relfile) +
                            " does not exist");
  }
  fds_[relfile] = fd;
  return fd;
}

Status DiskSmgr::CreateFile(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  int fd = ::open(PathFor(relfile).c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("relation file already exists");
    }
    return Status::IOError("create failed: " +
                           std::string(std::strerror(errno)));
  }
  fds_[relfile] = fd;
  return Status::OK();
}

Status DiskSmgr::DropFile(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fds_.find(relfile);
  if (it != fds_.end()) {
    ::close(it->second);
    fds_.erase(it);
  }
  if (::unlink(PathFor(relfile).c_str()) != 0) {
    return Status::NotFound("relation file does not exist");
  }
  return Status::OK();
}

bool DiskSmgr::FileExists(Oid relfile) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fds_.count(relfile)) return true;
  }
  struct stat st;
  return ::stat(PathFor(relfile).c_str(), &st) == 0;
}

Result<BlockNumber> DiskSmgr::NumBlocks(Oid relfile) {
  PGLO_ASSIGN_OR_RETURN(int fd, GetFd(relfile));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("fstat failed");
  }
  return static_cast<BlockNumber>(st.st_size / kPageSize);
}

Status DiskSmgr::ReadBlock(Oid relfile, BlockNumber block, uint8_t* buf) {
  TraceSpan span(stat_registry_, stat_read_ns_, span_read_name_);
  PGLO_ASSIGN_OR_RETURN(int fd, GetFd(relfile));
  ssize_t n = ::pread(fd, buf, kPageSize,
                      static_cast<off_t>(block) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short read of block " + std::to_string(block));
  }
  if (device_ != nullptr) device_->ChargeRead(PhysicalBlock(relfile, block), 1);
  StatInc(stat_blocks_read_);
  return Status::OK();
}

Status DiskSmgr::WriteBlock(Oid relfile, BlockNumber block,
                            const uint8_t* buf) {
  TraceSpan span(stat_registry_, stat_write_ns_, span_write_name_);
  PGLO_ASSIGN_OR_RETURN(int fd, GetFd(relfile));
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks(relfile));
  if (block > nblocks) {
    return Status::InvalidArgument("write would leave a hole in the file");
  }
  ssize_t n = ::pwrite(fd, buf, kPageSize,
                       static_cast<off_t>(block) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short write of block " + std::to_string(block));
  }
  if (device_ != nullptr) {
    device_->ChargeWrite(PhysicalBlock(relfile, block), 1);
  }
  StatInc(stat_blocks_written_);
  return Status::OK();
}

Status DiskSmgr::ReadBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                            uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  if (nblocks == 1) return ReadBlock(relfile, start, buf);
  TraceSpan span(stat_registry_, stat_read_ns_, span_read_name_);
  span.AddDetail(nblocks);
  PGLO_ASSIGN_OR_RETURN(int fd, GetFd(relfile));
  PGLO_ASSIGN_OR_RETURN(BlockNumber file_blocks, NumBlocks(relfile));
  if (start + nblocks > file_blocks) {
    return Status::OutOfRange("read run extends beyond end of file");
  }
  size_t bytes = static_cast<size_t>(nblocks) * kPageSize;
  ssize_t n = ::pread(fd, buf, bytes, static_cast<off_t>(start) * kPageSize);
  if (n != static_cast<ssize_t>(bytes)) {
    return Status::IOError("short read of run at block " +
                           std::to_string(start));
  }
  if (device_ != nullptr) {
    device_->ChargeRead(PhysicalBlock(relfile, start), nblocks);
  }
  StatAdd(stat_blocks_read_, nblocks);
  NoteCoalescedRun(nblocks);
  return Status::OK();
}

Status DiskSmgr::WriteBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                             const uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  if (nblocks == 1) return WriteBlock(relfile, start, buf);
  TraceSpan span(stat_registry_, stat_write_ns_, span_write_name_);
  span.AddDetail(nblocks);
  PGLO_ASSIGN_OR_RETURN(int fd, GetFd(relfile));
  PGLO_ASSIGN_OR_RETURN(BlockNumber file_blocks, NumBlocks(relfile));
  if (start > file_blocks) {
    return Status::InvalidArgument("write would leave a hole in the file");
  }
  size_t bytes = static_cast<size_t>(nblocks) * kPageSize;
  ssize_t n = ::pwrite(fd, buf, bytes, static_cast<off_t>(start) * kPageSize);
  if (n != static_cast<ssize_t>(bytes)) {
    return Status::IOError("short write of run at block " +
                           std::to_string(start));
  }
  if (device_ != nullptr) {
    device_->ChargeWrite(PhysicalBlock(relfile, start), nblocks);
  }
  StatAdd(stat_blocks_written_, nblocks);
  NoteCoalescedRun(nblocks);
  return Status::OK();
}

Status DiskSmgr::Sync(Oid relfile) {
  PGLO_ASSIGN_OR_RETURN(int fd, GetFd(relfile));
  if (::fdatasync(fd) != 0) {
    return Status::IOError("fdatasync failed");
  }
  return Status::OK();
}

Result<uint64_t> DiskSmgr::StorageBytes(Oid relfile) {
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks(relfile));
  return static_cast<uint64_t>(nblocks) * kPageSize;
}

}  // namespace pglo
