#include "smgr/smgr_registry.h"

namespace pglo {

Status SmgrRegistry::Register(uint8_t id,
                              std::unique_ptr<StorageManager> smgr) {
  if (id >= kMaxStorageManagers) {
    return Status::InvalidArgument("storage manager slot out of range");
  }
  if (table_[id] != nullptr) {
    return Status::AlreadyExists("storage manager slot occupied");
  }
  table_[id] = std::move(smgr);
  return Status::OK();
}

Status SmgrRegistry::Unregister(uint8_t id) {
  if (id >= kMaxStorageManagers || table_[id] == nullptr) {
    return Status::NotFound("no storage manager in slot");
  }
  table_[id].reset();
  return Status::OK();
}

Result<StorageManager*> SmgrRegistry::Get(uint8_t id) const {
  if (id >= kMaxStorageManagers || table_[id] == nullptr) {
    return Status::NotFound("no storage manager in slot");
  }
  return table_[id].get();
}

}  // namespace pglo
