#ifndef PGLO_SMGR_SMGR_H_
#define PGLO_SMGR_SMGR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/stats.h"
#include "storage/page.h"

namespace pglo {

/// The storage manager abstraction of §7.
///
/// "Our abstraction is modelled after the UNIX file system switch, and any
/// user can define a new storage manager by writing and registering a small
/// set of interface routines." A storage manager owns a namespace of
/// relation files (identified by Oid) made of kPageSize blocks. Three
/// implementations ship with pglo — magnetic disk, main memory (NVRAM), and
/// WORM optical jukebox — and users may register more via SmgrRegistry.
class StorageManager {
 public:
  virtual ~StorageManager() = default;

  /// Creates an empty relation file.
  virtual Status CreateFile(Oid relfile) = 0;

  /// Removes a relation file and its storage.
  virtual Status DropFile(Oid relfile) = 0;

  virtual bool FileExists(Oid relfile) = 0;

  /// Current length of the file in blocks.
  virtual Result<BlockNumber> NumBlocks(Oid relfile) = 0;

  /// Reads block `block` into `buf` (kPageSize bytes).
  virtual Status ReadBlock(Oid relfile, BlockNumber block, uint8_t* buf) = 0;

  /// Writes block `block` from `buf`. Writing at block == NumBlocks extends
  /// the file by one block; writing further out is an error.
  virtual Status WriteBlock(Oid relfile, BlockNumber block,
                            const uint8_t* buf) = 0;

  /// Reads `nblocks` consecutive blocks starting at `start` into `buf`
  /// (`nblocks * kPageSize` bytes). The run must lie entirely within the
  /// file. A zero-length run is a no-op. On error the buffer contents are
  /// unspecified. The default loops over ReadBlock so third-party storage
  /// managers keep working unchanged; the built-in smgrs override it to
  /// charge their device once for the whole run.
  virtual Status ReadBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                            uint8_t* buf) {
    for (uint32_t i = 0; i < nblocks; ++i) {
      PGLO_RETURN_IF_ERROR(
          ReadBlock(relfile, start + i, buf + static_cast<size_t>(i) *
                                                  kPageSize));
    }
    return Status::OK();
  }

  /// Writes `nblocks` consecutive blocks starting at `start` from `buf`.
  /// Like WriteBlock, a run starting at or below NumBlocks may extend the
  /// file contiguously; a run starting past the append frontier is an
  /// error (it would leave a hole). A zero-length run is a no-op. On error
  /// a prefix of the run may have been written. Default loops over
  /// WriteBlock; built-in smgrs override with one coalesced device charge.
  virtual Status WriteBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                             const uint8_t* buf) {
    for (uint32_t i = 0; i < nblocks; ++i) {
      PGLO_RETURN_IF_ERROR(
          WriteBlock(relfile, start + i, buf + static_cast<size_t>(i) *
                                                   kPageSize));
    }
    return Status::OK();
  }

  /// Forces previously written blocks of the file to stable storage.
  virtual Status Sync(Oid relfile) = 0;

  /// Bytes of underlying storage consumed by the file (used by Figure 1).
  virtual Result<uint64_t> StorageBytes(Oid relfile) = 0;

  virtual std::string name() const = 0;

  /// Mirrors block I/O accounting into `registry` counters named
  /// `smgr.<name>.{blocks_read,blocks_written,coalesced_runs}`, histograms
  /// `smgr.<name>.{read_ns,write_ns}`, and trace spans
  /// `smgr.<name>.{read,write}` around each block access (the span detail
  /// payload of a vectored access is the run length). Implementations bump
  /// the protected counters and open the spans in their block routines;
  /// overrides may bind additional implementation-specific counters. Null
  /// registry = unbound (no overhead).
  virtual void BindStats(StatsRegistry* registry) {
    if (registry == nullptr) return;
    stat_registry_ = registry;
    stat_blocks_read_ = registry->counter("smgr." + name() + ".blocks_read");
    stat_blocks_written_ =
        registry->counter("smgr." + name() + ".blocks_written");
    stat_coalesced_runs_ =
        registry->counter("smgr." + name() + ".coalesced_runs");
    stat_read_ns_ = registry->histogram("smgr." + name() + ".read_ns");
    stat_write_ns_ = registry->histogram("smgr." + name() + ".write_ns");
    span_read_name_ = "smgr." + name() + ".read";
    span_write_name_ = "smgr." + name() + ".write";
  }

 protected:
  /// Accounting shared by every native ReadBlocks/WriteBlocks: one
  /// coalesced run of `nblocks` blocks (only runs of ≥ 2 count).
  void NoteCoalescedRun(uint32_t nblocks) {
    if (nblocks >= 2) StatInc(stat_coalesced_runs_);
  }

  StatsRegistry* stat_registry_ = nullptr;
  Counter* stat_blocks_read_ = nullptr;
  Counter* stat_blocks_written_ = nullptr;
  Counter* stat_coalesced_runs_ = nullptr;
  Histogram* stat_read_ns_ = nullptr;
  Histogram* stat_write_ns_ = nullptr;
  std::string span_read_name_;
  std::string span_write_name_;
};

/// Well-known storage manager slots. The registry accepts arbitrary ids;
/// these three are the ones POSTGRES Version 4 shipped (§7).
enum SmgrId : uint8_t {
  kSmgrDisk = 0,    ///< magnetic disk, a thin veneer on the file system
  kSmgrMemory = 1,  ///< non-volatile main memory
  kSmgrWorm = 2,    ///< optical WORM jukebox with a magnetic-disk cache
};

}  // namespace pglo

#endif  // PGLO_SMGR_SMGR_H_
