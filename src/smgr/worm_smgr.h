#ifndef PGLO_SMGR_WORM_SMGR_H_
#define PGLO_SMGR_WORM_SMGR_H_

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/device_model.h"
#include "obs/event_log.h"
#include "smgr/smgr.h"
#include "storage/page.h"

namespace pglo {

class FaultInjector;

struct WormSmgrStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_fills = 0;  ///< async write-behind installs into the cache
  uint64_t optical_reads = 0;
  uint64_t optical_writes = 0;
  uint64_t relocations = 0;  ///< rewrites of a logical block (wasted platter)
};

/// WORM optical jukebox storage manager (§7, [OLSO91]).
///
/// The optical platter is write-once: a logical block that is rewritten is
/// *relocated* to a freshly burned optical block and the old copy becomes
/// dead platter space (this is how the device extensibility work handled
/// POSTGRES's no-overwrite pages on tertiary storage). A logical→optical
/// relocation map is kept durable in a sidecar file.
///
/// "The WORM storage manager in POSTGRES maintains a magnetic disk cache of
/// optical disk blocks" (§9.3): reads probe an LRU block cache charged at
/// magnetic-disk rates; only misses pay the jukebox's seek and transfer
/// costs. This cache is what makes f-chunk on WORM dramatically beat a raw
/// jukebox reader on random and 80/20 workloads (Figure 3).
class WormSmgr : public StorageManager {
 public:
  /// `optical_device` prices jukebox accesses, `cache_device` prices the
  /// magnetic cache (either may be null to skip charging).
  /// `cache_blocks` is the cache capacity in 8 KB blocks.
  WormSmgr(std::string dir, DeviceModel* optical_device,
           DeviceModel* cache_device, size_t cache_blocks);
  ~WormSmgr() override;

  /// Opens the optical store and replays the relocation map.
  Status Open();

  Status CreateFile(Oid relfile) override;
  Status DropFile(Oid relfile) override;
  bool FileExists(Oid relfile) override;
  Result<BlockNumber> NumBlocks(Oid relfile) override;
  Status ReadBlock(Oid relfile, BlockNumber block, uint8_t* buf) override;
  Status WriteBlock(Oid relfile, BlockNumber block,
                    const uint8_t* buf) override;
  /// Serves the run from the cache where resident; cache misses are grouped
  /// into maximal consecutive-*optical* sub-runs, each charged to the
  /// jukebox once, and the cache is filled with every block of each
  /// sub-run.
  Status ReadBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                    uint8_t* buf) override;
  /// Burns the run onto consecutive optical blocks with one jukebox charge;
  /// write-once semantics are per block (rewritten logicals relocate).
  Status WriteBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                     const uint8_t* buf) override;
  Status Sync(Oid relfile) override;
  /// Platter bytes ever burned for this file, including relocated (dead)
  /// blocks — write-once media cannot reclaim them.
  Result<uint64_t> StorageBytes(Oid relfile) override;
  std::string name() const override { return "worm"; }

  /// Copy, not reference: concurrent backends mutate the counters.
  WormSmgrStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = WormSmgrStats();
  }

  /// Base block I/O counters plus the §9.3 cache/jukebox breakdown.
  void BindStats(StatsRegistry* registry) override {
    StorageManager::BindStats(registry);
    if (registry == nullptr) return;
    c_cache_hits_ = registry->counter("smgr.worm.cache_hits");
    c_cache_misses_ = registry->counter("smgr.worm.cache_misses");
    c_optical_reads_ = registry->counter("smgr.worm.optical_reads");
    c_optical_writes_ = registry->counter("smgr.worm.optical_writes");
    c_relocations_ = registry->counter("smgr.worm.relocations");
  }
  /// Empties the magnetic-disk cache (benchmarks use this to cold-start).
  void DropCache();

  /// Installs crash/corruption hooks on the burner and the relocation-map
  /// appender. WormSmgr is not wrapped in FaultyStorageManager (that would
  /// double-count its internal writes), so it consults the injector
  /// directly: the burn and the map append are separate write ticks, which
  /// is exactly the window the write-once relocation crash test targets.
  /// Must be set before Open(). Null detaches.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Structured-event sink; Open() reports relocation-map repairs
  /// (kRecoveryRepair) through it. Must be set before Open(). Null = silent.
  void SetEventLog(EventLog* events) { events_ = events; }

  /// Optical blocks burned but never recorded in the relocation map — the
  /// leak a crash between burn and map append leaves behind. Dead platter
  /// space, not corruption: no logical block points at them. Reported by
  /// fsck as an informational count.
  uint64_t OrphanedBlocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_optical_ - mapped_burn_records_;
  }

 private:
  static constexpr uint32_t kNoOptical = 0xffffffffu;

  struct FileState {
    std::vector<uint32_t> map;     ///< logical block -> optical block
    uint64_t blocks_burned = 0;    ///< total optical blocks ever written
    bool dropped = false;
  };

  struct CacheKey {
    Oid relfile;
    BlockNumber block;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.relfile) << 32) |
                                   k.block);
    }
  };
  struct CacheEntry {
    std::vector<uint8_t> data;
    std::list<CacheKey>::iterator lru_pos;
    uint64_t disk_slot = 0;  ///< simulated position in the staging area
  };

  Status AppendMapRecord(Oid relfile, BlockNumber logical, uint32_t optical);
  Status ReadOptical(uint32_t optical, uint8_t* buf);
  Status ReadOpticalRun(uint32_t optical, uint32_t nblocks, uint8_t* buf);
  Status BurnOptical(uint32_t optical, const uint8_t* buf);
  Status BurnOpticalRun(uint32_t optical, uint32_t nblocks,
                        const uint8_t* buf);
  void CacheInsert(Oid relfile, BlockNumber block, const uint8_t* buf);
  bool CacheLookup(Oid relfile, BlockNumber block, uint8_t* buf);
  void CacheErase(Oid relfile, BlockNumber block);

  std::string dir_;
  DeviceModel* optical_device_;
  DeviceModel* cache_device_;
  size_t cache_capacity_;

  // One lock over the relocation map, the optical append frontier, the
  // magnetic cache, and the stats — every operation touches several of
  // them (a read probes the cache then fills it; a write burns, appends a
  // map record, and updates the file map), so finer locks would have to be
  // held together anyway. Public entry points take it; private helpers
  // assume it.
  mutable std::mutex mu_;

  int optical_fd_ = -1;
  int map_fd_ = -1;
  uint32_t next_optical_ = 0;
  /// Data records in the relocation map, i.e. burns that were durably
  /// mapped. next_optical_ minus this = orphaned blocks.
  uint64_t mapped_burn_records_ = 0;
  FaultInjector* injector_ = nullptr;
  EventLog* events_ = nullptr;
  std::unordered_map<Oid, FileState> files_;

  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> cache_lru_;  ///< front = least recently used
  /// Fill rotor: the staging area is written like a circular log, so
  /// consecutive cache fills land on consecutive magnetic-disk blocks.
  uint64_t cache_fill_rotor_ = 0;

  WormSmgrStats stats_;
  Counter* c_cache_hits_ = nullptr;
  Counter* c_cache_misses_ = nullptr;
  Counter* c_optical_reads_ = nullptr;
  Counter* c_optical_writes_ = nullptr;
  Counter* c_relocations_ = nullptr;
};

}  // namespace pglo

#endif  // PGLO_SMGR_WORM_SMGR_H_
