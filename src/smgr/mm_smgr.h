#ifndef PGLO_SMGR_MM_SMGR_H_
#define PGLO_SMGR_MM_SMGR_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "device/device_model.h"
#include "smgr/smgr.h"

namespace pglo {

/// Main-memory storage manager: "allows relational data to be stored in
/// non-volatile random-access memory" (§7). Blocks live in process memory;
/// the battery-backed-RAM assumption makes them count as stable storage, so
/// Sync is a no-op. Accesses are charged to a MemoryDeviceModel.
class MainMemorySmgr : public StorageManager {
 public:
  explicit MainMemorySmgr(DeviceModel* device) : device_(device) {}

  Status CreateFile(Oid relfile) override;
  Status DropFile(Oid relfile) override;
  bool FileExists(Oid relfile) override;
  Result<BlockNumber> NumBlocks(Oid relfile) override;
  Status ReadBlock(Oid relfile, BlockNumber block, uint8_t* buf) override;
  Status WriteBlock(Oid relfile, BlockNumber block,
                    const uint8_t* buf) override;
  Status ReadBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                    uint8_t* buf) override;
  Status WriteBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                     const uint8_t* buf) override;
  Status Sync(Oid relfile) override { (void)relfile; return Status::OK(); }
  Result<uint64_t> StorageBytes(Oid relfile) override;
  std::string name() const override { return "main-memory"; }

 private:
  using Block = std::unique_ptr<uint8_t[]>;
  DeviceModel* device_;
  // Blocks live in process memory, so unlike the fd-based smgrs every
  // access touches shared structures; one lock covers them all.
  std::mutex mu_;
  std::unordered_map<Oid, std::vector<Block>> files_;
};

}  // namespace pglo

#endif  // PGLO_SMGR_MM_SMGR_H_
