#include "smgr/worm_smgr.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "fault/fault_injector.h"

namespace pglo {

namespace {
// Map record: relfile u32 | logical u32 | optical u32 | crc u32.
constexpr size_t kMapRecordSize = 16;
constexpr uint32_t kMarkerLogical = 0xffffffffu;
constexpr uint32_t kMarkerCreate = 0;
constexpr uint32_t kMarkerDrop = 0xffffffffu;
}  // namespace

WormSmgr::WormSmgr(std::string dir, DeviceModel* optical_device,
                   DeviceModel* cache_device, size_t cache_blocks)
    : dir_(std::move(dir)),
      optical_device_(optical_device),
      cache_device_(cache_device),
      cache_capacity_(cache_blocks) {}

WormSmgr::~WormSmgr() {
  if (optical_fd_ >= 0) ::close(optical_fd_);
  if (map_fd_ >= 0) ::close(map_fd_);
}

Status WormSmgr::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string optical_path = dir_ + "/worm.optical";
  std::string map_path = dir_ + "/worm.map";
  optical_fd_ = ::open(optical_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (optical_fd_ < 0) {
    return Status::IOError("cannot open optical store: " +
                           std::string(std::strerror(errno)));
  }
  map_fd_ = ::open(map_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (map_fd_ < 0) {
    return Status::IOError("cannot open worm map: " +
                           std::string(std::strerror(errno)));
  }
  off_t optical_size = ::lseek(optical_fd_, 0, SEEK_END);
  next_optical_ = static_cast<uint32_t>(optical_size / kPageSize);

  files_.clear();
  mapped_burn_records_ = 0;
  uint8_t rec[kMapRecordSize];
  off_t pos = 0;
  for (;;) {
    ssize_t n = ::pread(map_fd_, rec, kMapRecordSize, pos);
    if (n == 0) break;
    if (n != static_cast<ssize_t>(kMapRecordSize)) {
      if (::ftruncate(map_fd_, pos) != 0) {
        return Status::IOError("worm map truncate failed");
      }
      if (events_ != nullptr) {
        events_->Append(EventType::kRecoveryRepair,
                        "worm.map: truncated short tail record",
                        static_cast<uint64_t>(pos));
      }
      break;
    }
    uint32_t stored_crc = DecodeFixed32(rec + 12);
    if (crc32c::Unmask(stored_crc) != crc32c::Value(rec, 12)) {
      if (::ftruncate(map_fd_, pos) != 0) {
        return Status::IOError("worm map truncate failed");
      }
      if (events_ != nullptr) {
        events_->Append(EventType::kRecoveryRepair,
                        "worm.map: truncated record with bad crc",
                        static_cast<uint64_t>(pos));
      }
      break;
    }
    Oid relfile = DecodeFixed32(rec);
    uint32_t logical = DecodeFixed32(rec + 4);
    uint32_t optical = DecodeFixed32(rec + 8);
    if (logical == kMarkerLogical) {
      if (optical == kMarkerCreate) {
        files_[relfile];  // (re)create empty
      } else if (optical == kMarkerDrop) {
        files_.erase(relfile);
      }
    } else {
      FileState& fs = files_[relfile];
      if (logical >= fs.map.size()) {
        fs.map.resize(logical + 1, kNoOptical);
      }
      fs.map[logical] = optical;
      ++fs.blocks_burned;  // every map record is one burned optical block
      ++mapped_burn_records_;
    }
    pos += kMapRecordSize;
  }
  return Status::OK();
}

Status WormSmgr::AppendMapRecord(Oid relfile, BlockNumber logical,
                                 uint32_t optical) {
  uint8_t rec[kMapRecordSize];
  EncodeFixed32(rec, relfile);
  EncodeFixed32(rec + 4, logical);
  EncodeFixed32(rec + 8, optical);
  EncodeFixed32(rec + 12, crc32c::Mask(crc32c::Value(rec, 12)));
  off_t end = ::lseek(map_fd_, 0, SEEK_END);
  if (end < 0) return Status::IOError("worm map append failed");
  if (injector_ != nullptr) {
    auto outcome = injector_->OnAppend("worm.map", kMapRecordSize);
    if (!outcome.status.ok()) {
      // Byte-torn map tail; Open's CRC replay truncates it away, leaving
      // the already-burned optical block orphaned.
      if (outcome.applied > 0 &&
          ::pwrite(map_fd_, rec, outcome.applied, end) !=
              static_cast<ssize_t>(outcome.applied)) {
        return Status::IOError("worm map torn append failed");
      }
      return outcome.status;
    }
  }
  if (::pwrite(map_fd_, rec, kMapRecordSize, end) !=
      static_cast<ssize_t>(kMapRecordSize)) {
    return Status::IOError("worm map append failed");
  }
  if (logical != kMarkerLogical) ++mapped_burn_records_;
  return Status::OK();
}

Status WormSmgr::ReadOptical(uint32_t optical, uint8_t* buf) {
  ssize_t n = ::pread(optical_fd_, buf, kPageSize,
                      static_cast<off_t>(optical) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("optical read failed");
  }
  ++stats_.optical_reads;
  StatInc(c_optical_reads_);
  if (optical_device_ != nullptr) optical_device_->ChargeRead(optical, 1);
  return Status::OK();
}

Status WormSmgr::ReadOpticalRun(uint32_t optical, uint32_t nblocks,
                                uint8_t* buf) {
  size_t bytes = static_cast<size_t>(nblocks) * kPageSize;
  ssize_t n = ::pread(optical_fd_, buf, bytes,
                      static_cast<off_t>(optical) * kPageSize);
  if (n != static_cast<ssize_t>(bytes)) {
    return Status::IOError("optical read failed");
  }
  stats_.optical_reads += nblocks;
  StatAdd(c_optical_reads_, nblocks);
  if (optical_device_ != nullptr) {
    optical_device_->ChargeRead(optical, nblocks);
  }
  return Status::OK();
}

Status WormSmgr::BurnOptical(uint32_t optical, const uint8_t* buf) {
  return BurnOpticalRun(optical, 1, buf);
}

Status WormSmgr::BurnOpticalRun(uint32_t optical, uint32_t nblocks,
                                const uint8_t* buf) {
  const uint8_t* src = buf;
  uint32_t apply = nblocks;
  std::vector<uint8_t> scratch;
  Status injected;
  if (injector_ != nullptr) {
    auto outcome = injector_->OnWrite("worm.burn", nblocks);
    injected = outcome.status;
    if (!injected.ok()) {
      // Crash mid-burn: a block-aligned prefix made it onto the platter
      // (or nothing, for a transient error) — either way the run's map
      // records are never appended, so the burned prefix is orphaned.
      apply = outcome.applied < nblocks ? outcome.applied : nblocks;
    } else if (outcome.corrupt && outcome.corrupt_block < nblocks) {
      scratch.assign(buf, buf + static_cast<size_t>(nblocks) * kPageSize);
      size_t bit =
          static_cast<size_t>(outcome.corrupt_block) * kPageSize * 8 +
          outcome.corrupt_bit % (kPageSize * 8);
      scratch[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      src = scratch.data();
    }
  }
  if (apply > 0) {
    size_t bytes = static_cast<size_t>(apply) * kPageSize;
    ssize_t n = ::pwrite(optical_fd_, src, bytes,
                         static_cast<off_t>(optical) * kPageSize);
    if (n != static_cast<ssize_t>(bytes)) {
      return Status::IOError("optical write failed");
    }
  }
  if (!injected.ok()) return injected;
  stats_.optical_writes += nblocks;
  StatAdd(c_optical_writes_, nblocks);
  if (optical_device_ != nullptr) {
    optical_device_->ChargeWrite(optical, nblocks);
  }
  return Status::OK();
}

void WormSmgr::CacheInsert(Oid relfile, BlockNumber block,
                           const uint8_t* buf) {
  if (cache_capacity_ == 0) return;
  CacheKey key{relfile, block};
  uint64_t slot;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    std::memcpy(it->second.data.data(), buf, kPageSize);
    cache_lru_.erase(it->second.lru_pos);
    cache_lru_.push_back(key);
    it->second.lru_pos = std::prev(cache_lru_.end());
    slot = it->second.disk_slot;
  } else {
    while (cache_.size() >= cache_capacity_) {
      cache_.erase(cache_lru_.front());
      cache_lru_.pop_front();
    }
    CacheEntry entry;
    entry.data.assign(buf, buf + kPageSize);
    cache_lru_.push_back(key);
    entry.lru_pos = std::prev(cache_lru_.end());
    // The staging area is written like a circular log: consecutive fills
    // land on consecutive magnetic blocks, so streaming fills stay cheap.
    slot = cache_fill_rotor_;
    cache_fill_rotor_ = (cache_fill_rotor_ + 1) % (cache_capacity_ + 1);
    entry.disk_slot = slot;
    cache_.emplace(key, std::move(entry));
  }
  // Fills are write-behind: the staging disk streams them asynchronously,
  // overlapped with the (far slower) optical transfer, so they do not
  // lengthen the caller's elapsed time. Only synchronous cache *reads*
  // charge the magnetic disk (see CacheLookup). The `slot` bookkeeping
  // still records where the block lives for those reads.
  (void)slot;
  ++stats_.cache_fills;
}

bool WormSmgr::CacheLookup(Oid relfile, BlockNumber block, uint8_t* buf) {
  CacheKey key{relfile, block};
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  std::memcpy(buf, it->second.data.data(), kPageSize);
  cache_lru_.erase(it->second.lru_pos);
  cache_lru_.push_back(key);
  it->second.lru_pos = std::prev(cache_lru_.end());
  if (cache_device_ != nullptr) {
    cache_device_->ChargeRead(it->second.disk_slot, 1);
  }
  return true;
}

void WormSmgr::CacheErase(Oid relfile, BlockNumber block) {
  CacheKey key{relfile, block};
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  cache_lru_.erase(it->second.lru_pos);
  cache_.erase(it);
}

void WormSmgr::DropCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  cache_lru_.clear();
}

Status WormSmgr::CreateFile(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(relfile)) {
    return Status::AlreadyExists("relation file already exists");
  }
  PGLO_RETURN_IF_ERROR(AppendMapRecord(relfile, kMarkerLogical,
                                       kMarkerCreate));
  files_[relfile];
  return Status::OK();
}

Status WormSmgr::DropFile(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  // Platter space cannot be reclaimed; only the map entry is retired.
  PGLO_RETURN_IF_ERROR(AppendMapRecord(relfile, kMarkerLogical, kMarkerDrop));
  for (BlockNumber b = 0; b < it->second.map.size(); ++b) {
    CacheErase(relfile, b);
  }
  files_.erase(it);
  return Status::OK();
}

bool WormSmgr::FileExists(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(relfile) != 0;
}

Result<BlockNumber> WormSmgr::NumBlocks(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  return static_cast<BlockNumber>(it->second.map.size());
}

Status WormSmgr::ReadBlock(Oid relfile, BlockNumber block, uint8_t* buf) {
  TraceSpan span(stat_registry_, stat_read_ns_, span_read_name_);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  if (block >= it->second.map.size() ||
      it->second.map[block] == kNoOptical) {
    return Status::OutOfRange("block beyond end of file");
  }
  StatInc(stat_blocks_read_);
  if (CacheLookup(relfile, block, buf)) {
    ++stats_.cache_hits;
    StatInc(c_cache_hits_);
    return Status::OK();
  }
  ++stats_.cache_misses;
  StatInc(c_cache_misses_);
  PGLO_RETURN_IF_ERROR(ReadOptical(it->second.map[block], buf));
  CacheInsert(relfile, block, buf);
  return Status::OK();
}

Status WormSmgr::ReadBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                            uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  if (nblocks == 1) return ReadBlock(relfile, start, buf);
  TraceSpan span(stat_registry_, stat_read_ns_, span_read_name_);
  span.AddDetail(nblocks);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  const FileState& fs = it->second;
  if (static_cast<size_t>(start) + nblocks > fs.map.size()) {
    return Status::OutOfRange("read run extends beyond end of file");
  }
  for (uint32_t i = 0; i < nblocks; ++i) {
    if (fs.map[start + i] == kNoOptical) {
      return Status::OutOfRange("block beyond end of file");
    }
  }
  StatAdd(stat_blocks_read_, nblocks);
  NoteCoalescedRun(nblocks);
  uint32_t i = 0;
  while (i < nblocks) {
    BlockNumber block = start + i;
    uint8_t* dst = buf + static_cast<size_t>(i) * kPageSize;
    if (CacheLookup(relfile, block, dst)) {
      ++stats_.cache_hits;
      StatInc(c_cache_hits_);
      ++i;
      continue;
    }
    // Miss: extend over following misses while their optical blocks stay
    // consecutive, then pay the jukebox once for the whole sub-run.
    uint32_t optical = fs.map[block];
    uint32_t run = 1;
    while (i + run < nblocks &&
           fs.map[start + i + run] == optical + run &&
           cache_.find(CacheKey{relfile, start + i + run}) == cache_.end()) {
      ++run;
    }
    stats_.cache_misses += run;
    StatAdd(c_cache_misses_, run);
    PGLO_RETURN_IF_ERROR(ReadOpticalRun(optical, run, dst));
    for (uint32_t k = 0; k < run; ++k) {
      CacheInsert(relfile, block + k, dst + static_cast<size_t>(k) *
                                                kPageSize);
    }
    i += run;
  }
  return Status::OK();
}

Status WormSmgr::WriteBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                             const uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  if (nblocks == 1) return WriteBlock(relfile, start, buf);
  TraceSpan span(stat_registry_, stat_write_ns_, span_write_name_);
  span.AddDetail(nblocks);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  FileState& fs = it->second;
  if (start > fs.map.size()) {
    return Status::InvalidArgument("write would leave a hole in the file");
  }
  uint32_t first_optical = next_optical_;
  next_optical_ += nblocks;
  PGLO_RETURN_IF_ERROR(BurnOpticalRun(first_optical, nblocks, buf));
  for (uint32_t i = 0; i < nblocks; ++i) {
    BlockNumber block = start + i;
    uint32_t optical = first_optical + i;
    PGLO_RETURN_IF_ERROR(AppendMapRecord(relfile, block, optical));
    if (block == fs.map.size()) {
      fs.map.push_back(optical);
    } else {
      ++stats_.relocations;  // write-once: old block becomes dead platter
      StatInc(c_relocations_);
      fs.map[block] = optical;
    }
    ++fs.blocks_burned;
    CacheInsert(relfile, block,
                buf + static_cast<size_t>(i) * kPageSize);
  }
  StatAdd(stat_blocks_written_, nblocks);
  NoteCoalescedRun(nblocks);
  return Status::OK();
}

Status WormSmgr::WriteBlock(Oid relfile, BlockNumber block,
                            const uint8_t* buf) {
  TraceSpan span(stat_registry_, stat_write_ns_, span_write_name_);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  FileState& fs = it->second;
  if (block > fs.map.size()) {
    return Status::InvalidArgument("write would leave a hole in the file");
  }
  uint32_t optical = next_optical_++;
  PGLO_RETURN_IF_ERROR(BurnOptical(optical, buf));
  PGLO_RETURN_IF_ERROR(AppendMapRecord(relfile, block, optical));
  if (block == fs.map.size()) {
    fs.map.push_back(optical);
  } else {
    ++stats_.relocations;  // write-once: old block becomes dead platter
    StatInc(c_relocations_);
    fs.map[block] = optical;
  }
  ++fs.blocks_burned;
  StatInc(stat_blocks_written_);
  CacheInsert(relfile, block, buf);
  return Status::OK();
}

Status WormSmgr::Sync(Oid relfile) {
  (void)relfile;
  std::lock_guard<std::mutex> lock(mu_);
  if (::fdatasync(optical_fd_) != 0 || ::fdatasync(map_fd_) != 0) {
    return Status::IOError("worm sync failed");
  }
  return Status::OK();
}

Result<uint64_t> WormSmgr::StorageBytes(Oid relfile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(relfile);
  if (it == files_.end()) {
    return Status::NotFound("relation file does not exist");
  }
  return it->second.blocks_burned * static_cast<uint64_t>(kPageSize);
}

}  // namespace pglo
