#ifndef PGLO_SMGR_DISK_SMGR_H_
#define PGLO_SMGR_DISK_SMGR_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "device/device_model.h"
#include "smgr/smgr.h"

namespace pglo {

/// Magnetic disk storage manager: "a thin veneer on top of the UNIX file
/// system" (§7). Each relation file is a host file `<dir>/<oid>.rel`.
///
/// Every block access is also charged to an optional DeviceModel. For the
/// seek model, relation files are laid out at widely separated simulated
/// disk positions, so intra-file access can be sequential while switching
/// files pays a seek — the same locality structure a real disk gives
/// separately allocated files.
class DiskSmgr : public StorageManager {
 public:
  /// `device` may be null, in which case no simulated time is charged.
  DiskSmgr(std::string dir, DeviceModel* device);
  ~DiskSmgr() override;

  Status CreateFile(Oid relfile) override;
  Status DropFile(Oid relfile) override;
  bool FileExists(Oid relfile) override;
  Result<BlockNumber> NumBlocks(Oid relfile) override;
  Status ReadBlock(Oid relfile, BlockNumber block, uint8_t* buf) override;
  Status WriteBlock(Oid relfile, BlockNumber block,
                    const uint8_t* buf) override;
  Status ReadBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                    uint8_t* buf) override;
  Status WriteBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                     const uint8_t* buf) override;
  Status Sync(Oid relfile) override;
  Result<uint64_t> StorageBytes(Oid relfile) override;
  std::string name() const override { return "disk"; }

 private:
  std::string PathFor(Oid relfile) const;
  Result<int> GetFd(Oid relfile);
  uint64_t PhysicalBlock(Oid relfile, BlockNumber block) const {
    // Files live ~8 GB apart in simulated disk-address space.
    return static_cast<uint64_t>(relfile) * (1ull << 20) + block;
  }

  std::string dir_;
  DeviceModel* device_;
  // Guards fds_ only. Block data moves via pread/pwrite on stable fds, so
  // concurrent transfers need no lock; ordering of writes to one file is
  // the caller's job (the buffer pool serializes its writebacks).
  std::mutex mu_;
  std::unordered_map<Oid, int> fds_;
};

}  // namespace pglo

#endif  // PGLO_SMGR_DISK_SMGR_H_
