#ifndef PGLO_SMGR_SMGR_REGISTRY_H_
#define PGLO_SMGR_SMGR_REGISTRY_H_

#include <array>
#include <memory>

#include "common/result.h"
#include "fault/retry.h"
#include "smgr/smgr.h"

namespace pglo {

/// Table-driven storage manager switch (§7).
///
/// Classes (and therefore large objects and Inversion files) name the
/// storage manager that holds them by slot id; all page traffic is routed
/// through this table. Registering a new StorageManager implementation in a
/// free slot makes it usable by every layer above — including Inversion
/// files, which is the advantage §10 claims over Starburst.
class SmgrRegistry {
 public:
  static constexpr size_t kMaxStorageManagers = 16;

  SmgrRegistry() = default;
  SmgrRegistry(const SmgrRegistry&) = delete;
  SmgrRegistry& operator=(const SmgrRegistry&) = delete;

  /// Installs `smgr` in slot `id`. Fails if the slot is occupied.
  Status Register(uint8_t id, std::unique_ptr<StorageManager> smgr);

  /// Removes the storage manager in slot `id` (used by tests).
  Status Unregister(uint8_t id);

  /// Resolves a slot id; NotFound if empty.
  Result<StorageManager*> Get(uint8_t id) const;

  bool Has(uint8_t id) const {
    return id < kMaxStorageManagers && table_[id] != nullptr;
  }

  /// Retry policy callers of the switch apply to transient block-I/O
  /// failures. Defaults to a single attempt (no retries) until Database
  /// configures it.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  std::array<std::unique_ptr<StorageManager>, kMaxStorageManagers> table_;
  RetryPolicy retry_policy_;
};

}  // namespace pglo

#endif  // PGLO_SMGR_SMGR_REGISTRY_H_
