#ifndef PGLO_TXN_TRANSACTION_H_
#define PGLO_TXN_TRANSACTION_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "txn/snapshot.h"
#include "txn/xid.h"

namespace pglo {

class TxnManager;

/// A unit of atomic work. Obtained from TxnManager::Begin (or BeginAsOf for
/// read-only time travel); finished with Commit or Abort exactly once.
///
/// Writes made under a transaction stamp new tuple versions with its XID;
/// they become visible to others only after Commit durably appends to the
/// commit log. Abort costs nothing on the data pages — the versions simply
/// remain stamped with an aborted XID and are invisible forever.
class Transaction {
 public:
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Xid xid() const { return xid_; }
  const Snapshot& snapshot() const { return snapshot_; }
  bool read_only() const { return snapshot_.historical(); }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kInProgress; }

  /// Registers a callback run at the end of the transaction; `committed`
  /// tells the callback which way it ended. Used for temporary large object
  /// garbage collection (§5) and descriptor cleanup.
  void OnFinish(std::function<void(bool committed)> cb) {
    finish_callbacks_.push_back(std::move(cb));
  }

 private:
  friend class TxnManager;
  Transaction(Xid xid, Snapshot snapshot)
      : xid_(xid), snapshot_(snapshot) {}

  Xid xid_;
  Snapshot snapshot_;
  TxnState state_ = TxnState::kInProgress;
  std::vector<std::function<void(bool)>> finish_callbacks_;
};

}  // namespace pglo

#endif  // PGLO_TXN_TRANSACTION_H_
