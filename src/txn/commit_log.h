#ifndef PGLO_TXN_COMMIT_LOG_H_
#define PGLO_TXN_COMMIT_LOG_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "txn/xid.h"

namespace pglo {

class FaultInjector;

/// Persistent transaction status log.
///
/// POSTGRES's no-overwrite storage system needs no undo/redo log: a tuple's
/// visibility is decided by looking up its xmin/xmax in this log. Commit is
/// therefore a single durable append here (after forcing the transaction's
/// dirty pages), and abort requires no data-page work at all.
///
/// The log is an append-only host file of fixed-size records, each CRC
/// protected; it is replayed into memory at open. A transaction with no
/// record (e.g. one cut off by a crash) is treated as aborted.
class CommitLog {
 public:
  CommitLog() = default;
  ~CommitLog();
  CommitLog(const CommitLog&) = delete;
  CommitLog& operator=(const CommitLog&) = delete;

  /// Opens (creating if necessary) the log at `path` and replays it.
  Status Open(const std::string& path);
  Status Close();

  /// Durably records `xid` as committed at the next commit-time tick, which
  /// is returned. The caller must have forced the transaction's pages first.
  Result<CommitTime> RecordCommit(Xid xid);

  /// Durably records `xid` as aborted.
  Status RecordAbort(Xid xid);

  /// Notes `xid` as in progress (memory only — a crash forgets it, which
  /// correctly demotes it to aborted).
  void RecordBegin(Xid xid) {
    entries_[xid] = Entry{TxnState::kInProgress, kInvalidCommitTime};
  }

  /// Status of `xid`. Unknown transactions are reported kAborted — exactly
  /// the crash-recovery rule that makes no-overwrite storage atomic.
  TxnState GetState(Xid xid) const;

  /// Commit time of `xid`; kInvalidCommitTime unless committed.
  CommitTime GetCommitTime(Xid xid) const;

  /// Current value of the commit-time counter (the tick of the most recent
  /// commit). Snapshots taken at this value see all committed data.
  CommitTime Now() const { return next_commit_time_ - 1; }

  /// Highest XID that has any record; used to restart the XID allocator.
  Xid MaxRecordedXid() const { return max_xid_; }

  /// Record size on disk, exposed so crash tests can place truncation
  /// points exactly on and inside record edges.
  static size_t RecordSize();

  /// Installs the crash/torn-append hooks. Null detaches.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// When false, AppendRecord skips fdatasync — a deliberately broken
  /// configuration (the regression the crash harness must catch): records
  /// appended since the last sync are registered with the fault injector
  /// as volatile and vanish at the next simulated power failure.
  void SetSynchronous(bool synchronous) { synchronous_ = synchronous; }

 private:
  struct Entry {
    TxnState state;
    CommitTime commit_time;
  };

  Status AppendRecord(Xid xid, TxnState state, CommitTime time);

  int fd_ = -1;
  std::string path_;
  std::unordered_map<Xid, Entry> entries_;
  CommitTime next_commit_time_ = 1;
  Xid max_xid_ = kInvalidXid;
  FaultInjector* injector_ = nullptr;
  bool synchronous_ = true;
  uint64_t synced_size_ = 0;  ///< bytes known durable (fsynced) on disk
};

}  // namespace pglo

#endif  // PGLO_TXN_COMMIT_LOG_H_
