#ifndef PGLO_TXN_COMMIT_LOG_H_
#define PGLO_TXN_COMMIT_LOG_H_

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/wait_event.h"
#include "txn/xid.h"

namespace pglo {

class FaultInjector;

/// Persistent transaction status log.
///
/// POSTGRES's no-overwrite storage system needs no undo/redo log: a tuple's
/// visibility is decided by looking up its xmin/xmax in this log. Commit is
/// therefore a single durable append here (after forcing the transaction's
/// dirty pages), and abort requires no data-page work at all.
///
/// The log is an append-only host file of fixed-size records, each CRC
/// protected; it is replayed into memory at open. A transaction with no
/// record (e.g. one cut off by a crash) is treated as aborted.
///
/// Thread-safe, with the durability syscall kept OFF the hot mutex: `mu_`
/// serializes appends and protects the in-memory map (visibility checks hit
/// GetState/GetCommitTime on every tuple), while the fdatasync that makes a
/// record durable runs afterwards under a separate `sync_mu_`. Because
/// fdatasync covers the whole file, a committer first checks whether a later
/// caller's sync already reached its append ("piggybacking") and skips the
/// syscall if so. Consequences, documented in DESIGN.md §13:
///   - other backends never block on a ~100µs+ fsync just to check txn
///     status — the syscall overlaps their work;
///   - a commit becomes VISIBLE (in-memory state) slightly before it is
///     durable, but RecordCommit does not RETURN until it is durable, and
///     any reader that goes on to commit appends after it — so the reader's
///     own sync covers it and no durable state can depend on a lost commit;
///   - single-stream behaviour is unchanged: with no concurrent syncs the
///     piggyback check never fires and every record syncs itself, 1:1.
class CommitLog {
 public:
  CommitLog() = default;
  ~CommitLog();
  CommitLog(const CommitLog&) = delete;
  CommitLog& operator=(const CommitLog&) = delete;

  /// Opens (creating if necessary) the log at `path` and replays it.
  Status Open(const std::string& path);
  Status Close();

  /// Durably records `xid` as committed at the next commit-time tick, which
  /// is returned. The caller must have forced the transaction's pages first.
  Result<CommitTime> RecordCommit(Xid xid);

  /// Group commit (DESIGN.md §13): durably records every xid in one append
  /// — N records, one pwrite, one fdatasync — at consecutive commit-time
  /// ticks. Fills `times_out` (parallel to `xids`) and returns the first
  /// tick. The caller must have forced every member's pages first.
  Result<CommitTime> RecordCommitBatch(const std::vector<Xid>& xids,
                                       std::vector<CommitTime>* times_out);

  /// Durably records `xid` as aborted.
  Status RecordAbort(Xid xid);

  /// Notes `xid` as in progress (memory only — a crash forgets it, which
  /// correctly demotes it to aborted).
  void RecordBegin(Xid xid) {
    WaitLockGuard lock(mu_, wp_mutex_);
    entries_[xid] = Entry{TxnState::kInProgress, kInvalidCommitTime};
  }

  /// Status of `xid`. Unknown transactions are reported kAborted — exactly
  /// the crash-recovery rule that makes no-overwrite storage atomic.
  TxnState GetState(Xid xid) const;

  /// Commit time of `xid`; kInvalidCommitTime unless committed.
  CommitTime GetCommitTime(Xid xid) const;

  /// Current value of the commit-time counter (the tick of the most recent
  /// commit). Snapshots taken at this value see all committed data.
  CommitTime Now() const {
    WaitLockGuard lock(mu_, wp_mutex_);
    return next_commit_time_ - 1;
  }

  /// Highest XID that has any record; used to restart the XID allocator.
  Xid MaxRecordedXid() const {
    WaitLockGuard lock(mu_, wp_mutex_);
    return max_xid_;
  }

  /// Number of fdatasync calls issued on the log — the figure of merit
  /// group commit improves (N concurrent commits, one sync).
  uint64_t fsync_count() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }

  /// Record size on disk, exposed so crash tests can place truncation
  /// points exactly on and inside record edges.
  static size_t RecordSize();

  /// Installs the crash/torn-append hooks. Null detaches.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// When false, AppendRecord skips fdatasync — a deliberately broken
  /// configuration (the regression the crash harness must catch): records
  /// appended since the last sync are registered with the fault injector
  /// as volatile and vanish at the next simulated power failure.
  void SetSynchronous(bool synchronous) { synchronous_ = synchronous; }

  /// Wait instrumentation (DESIGN.md §14): acquisitions of `mu_` report
  /// under `clog.mutex` (the visibility hot path), and the sync side —
  /// `sync_mu_` plus the fdatasync syscall itself — under `clog.fsync`.
  /// Configuration-time only.
  void BindWaits(const WaitStatsTable* waits) {
    if (waits == nullptr) return;
    wp_mutex_ = waits->point(WaitEvent::kClogMutex);
    wp_fsync_ = waits->point(WaitEvent::kClogFsync);
  }

 private:
  struct Entry {
    TxnState state;
    CommitTime commit_time;
  };

  /// Appends `nbytes` of already-encoded records (no sync — see SyncTo).
  /// Assumes mu_ is held. `*end_out` receives the file size after the
  /// append, the durability target to pass to SyncTo.
  Status AppendEncodedLocked(const uint8_t* buf, size_t nbytes,
                             uint64_t* end_out);
  Status AppendRecordLocked(Xid xid, TxnState state, CommitTime time,
                            uint64_t* end_out);

  /// Makes the log durable through byte `target`, without holding mu_.
  /// Skips the fdatasync when a concurrent caller's sync already covered
  /// `target`; no-op when the log is configured non-synchronous.
  Status SyncTo(uint64_t target);

  mutable std::mutex mu_;  ///< entries_, counters, and file appends
  std::mutex sync_mu_;     ///< serializes fdatasync; never nests inside mu_
  const WaitPoint* wp_mutex_ = nullptr;
  const WaitPoint* wp_fsync_ = nullptr;
  int fd_ = -1;
  std::string path_;
  std::unordered_map<Xid, Entry> entries_;
  CommitTime next_commit_time_ = 1;
  Xid max_xid_ = kInvalidXid;
  FaultInjector* injector_ = nullptr;
  bool synchronous_ = true;
  std::atomic<uint64_t> fsyncs_{0};
  /// File size after the latest append (advances under mu_).
  std::atomic<uint64_t> appended_size_{0};
  /// Bytes known durable (fsynced) on disk (advances under sync_mu_).
  std::atomic<uint64_t> synced_size_{0};
};

}  // namespace pglo

#endif  // PGLO_TXN_COMMIT_LOG_H_
