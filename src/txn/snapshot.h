#ifndef PGLO_TXN_SNAPSHOT_H_
#define PGLO_TXN_SNAPSHOT_H_

#include "txn/commit_log.h"
#include "txn/xid.h"

namespace pglo {

/// Visibility rules over no-overwrite tuples.
///
/// A snapshot sees a tuple version iff its inserter is visible and its
/// deleter (if any) is not:
///   * "current" snapshots (as_of == kLatestTime) see the transaction's own
///     writes plus everything committed no later than the snapshot tick;
///   * "time travel" snapshots (§6.3/§6.4) see exactly the versions that
///     were committed as of tick `as_of`, and never the caller's own
///     in-progress writes.
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(const CommitLog* clog, Xid my_xid, CommitTime snap_time,
           CommitTime as_of = kLatestTime)
      : clog_(clog), my_xid_(my_xid), snap_time_(snap_time), as_of_(as_of) {}

  bool historical() const { return as_of_ != kLatestTime; }
  CommitTime as_of() const { return as_of_; }
  Xid xid() const { return my_xid_; }

  /// Whether a tuple stamped (xmin, xmax) is visible to this snapshot.
  bool IsVisible(Xid xmin, Xid xmax) const {
    return InserterVisible(xmin) && !DeleterVisible(xmax);
  }

  /// Commit-log state of `xid` (used for write-conflict detection).
  TxnState StateOf(Xid xid) const { return clog_->GetState(xid); }

 private:
  CommitTime Horizon() const {
    return historical() ? as_of_ : snap_time_;
  }

  bool InserterVisible(Xid xmin) const {
    if (xmin == kInvalidXid) return false;
    if (!historical() && xmin == my_xid_) return true;
    if (clog_->GetState(xmin) != TxnState::kCommitted) return false;
    return clog_->GetCommitTime(xmin) <= Horizon();
  }

  bool DeleterVisible(Xid xmax) const {
    if (xmax == kInvalidXid) return false;
    if (!historical() && xmax == my_xid_) return true;
    if (clog_->GetState(xmax) != TxnState::kCommitted) return false;
    return clog_->GetCommitTime(xmax) <= Horizon();
  }

  const CommitLog* clog_ = nullptr;
  Xid my_xid_ = kInvalidXid;
  CommitTime snap_time_ = 0;
  CommitTime as_of_ = kLatestTime;
};

}  // namespace pglo

#endif  // PGLO_TXN_SNAPSHOT_H_
