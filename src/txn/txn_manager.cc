#include "txn/txn_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

namespace pglo {

namespace {
constexpr Xid kXidCrashSlack = 1024;

/// Upper bound on the group-commit leader's gather wait. The ratchet in
/// CommitGrouped normally exits long before this; the cap only bites when
/// the committer population just shrank (end of a workload pass).
constexpr auto kGroupCommitGatherCap = std::chrono::microseconds(1000);
}  // namespace

TxnManager::~TxnManager() {
  if (xid_fd_ >= 0) ::close(xid_fd_);
}

Status TxnManager::OpenXidFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  xid_fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (xid_fd_ < 0) {
    return Status::IOError("cannot open xid file: " +
                           std::string(std::strerror(errno)));
  }
  uint8_t buf[4];
  if (::pread(xid_fd_, buf, sizeof(buf), 0) == sizeof(buf)) {
    Xid persisted = DecodeFixed32(buf) + kXidCrashSlack;
    if (persisted > next_xid_) next_xid_ = persisted;
  }
  return Status::OK();
}

Xid TxnManager::AllocateXidLocked() {
  Xid xid = next_xid_++;
  if (xid_fd_ >= 0) {
    uint8_t buf[4];
    EncodeFixed32(buf, next_xid_);
    // Best effort, no fsync: the slack added at open covers lost writes.
    ssize_t n = ::pwrite(xid_fd_, buf, sizeof(buf), 0);
    (void)n;
  }
  return xid;
}

Transaction* TxnManager::Track(std::unique_ptr<Transaction> txn) {
  Transaction* raw = txn.get();
  std::lock_guard<std::mutex> lock(mu_);
  active_[raw] = std::move(txn);
  return raw;
}

bool TxnManager::IsActive(Transaction* txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Membership first: a stale pointer (double commit, use after commit)
  // must be rejected without ever dereferencing it.
  auto it = active_.find(txn);
  return it != active_.end() && it->second->active();
}

Transaction* TxnManager::Begin() {
  Xid xid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    xid = AllocateXidLocked();
  }
  clog_->RecordBegin(xid);
  if (events_ != nullptr) events_->Append(EventType::kTxnBegin, "", xid);
  Snapshot snap(clog_, xid, clog_->Now());
  return Track(std::unique_ptr<Transaction>(new Transaction(xid, snap)));
}

Transaction* TxnManager::BeginAsOf(CommitTime as_of) {
  Xid xid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    xid = AllocateXidLocked();
  }
  clog_->RecordBegin(xid);
  if (events_ != nullptr) {
    events_->Append(EventType::kTxnBegin, "as-of", xid, as_of);
  }
  Snapshot snap(clog_, xid, clog_->Now(), as_of);
  return Track(std::unique_ptr<Transaction>(new Transaction(xid, snap)));
}

void TxnManager::Finish(Transaction* txn, bool committed) {
  for (auto& cb : txn->finish_callbacks_) {
    cb(committed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(txn);  // destroys the Transaction
}

Status TxnManager::ForceAll() {
  // Force policy: all of this transaction's versions must be stable before
  // the commit record. Flushing everything is coarse but correct (and
  // under group commit, one flush covers the whole batch).
  PGLO_RETURN_IF_ERROR(pool_->FlushAll());
  for (auto& hook : force_hooks_) {
    PGLO_RETURN_IF_ERROR(hook());
  }
  return Status::OK();
}

Result<CommitTime> TxnManager::Commit(Transaction* txn) {
  PGLO_CHECK(txn != nullptr);
  if (!IsActive(txn)) {
    return Status::InvalidArgument("transaction already finished");
  }
  return group_commit_ ? CommitGrouped(txn) : CommitSingle(txn);
}

Result<CommitTime> TxnManager::CommitSingle(Transaction* txn) {
  WaitLockGuard commit_lock(commit_mu_, wp_commit_serialize_);
  PGLO_RETURN_IF_ERROR(ForceAll());
  PGLO_ASSIGN_OR_RETURN(CommitTime time, clog_->RecordCommit(txn->xid()));
  if (events_ != nullptr) {
    events_->Append(EventType::kTxnCommit, "", txn->xid(), time);
  }
  txn->state_ = TxnState::kCommitted;
  Finish(txn, /*committed=*/true);
  return time;
}

Result<CommitTime> TxnManager::CommitGrouped(Transaction* txn) {
  PendingCommit req{txn};
  std::unique_lock<std::mutex> lk(gc_mu_);
  gc_queue_.push_back(&req);
  gc_cv_.notify_all();  // a gathering leader may be waiting for arrivals
  // Followers wait while a leader round is in flight; the leader may
  // commit us (done) or finish a round that predates our enqueue (then we
  // take over leadership for the queue we are part of).
  if (gc_leader_active_ && !req.done) {
    WaitGuard wait(wp_gc_follower_);
    while (gc_leader_active_ && !req.done) {
      gc_cv_.wait(lk);
    }
  }
  if (req.done) return req.result;
  gc_leader_active_ = true;
  // Gather: draining the instant the first committer arrives yields
  // batches of 1–2 under load, because the other backends are still in
  // their (serialized) CPU work when the leader starts the sync path.
  // Wait — bounded — for the queue to reach the previous batch's size.
  // The ratchet self-tunes to the live committer count: an uncontended
  // stream has gc_last_batch_ <= 1 and never waits, so single-session
  // commit latency is unchanged; when the population shrinks, one capped
  // wait re-learns the smaller batch.
  if (gc_last_batch_ > 1 && gc_queue_.size() < gc_last_batch_) {
    WaitGuard wait(wp_gc_gather_);
    auto deadline = std::chrono::steady_clock::now() + kGroupCommitGatherCap;
    while (gc_queue_.size() < gc_last_batch_) {
      if (gc_cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
  }
  std::vector<PendingCommit*> batch(gc_queue_.begin(), gc_queue_.end());
  gc_queue_.clear();
  group_sizes_.push_back(static_cast<uint32_t>(batch.size()));
  gc_last_batch_ = batch.size();
  lk.unlock();

  // One force pass makes every batch member's pages stable, then one
  // batched append commits them all at consecutive ticks.
  Status force = ForceAll();
  std::vector<CommitTime> times;
  Status append = force;
  if (force.ok()) {
    std::vector<Xid> xids;
    xids.reserve(batch.size());
    for (PendingCommit* p : batch) xids.push_back(p->txn->xid());
    append = clog_->RecordCommitBatch(xids, &times).status();
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    PendingCommit* p = batch[i];
    if (append.ok()) {
      if (events_ != nullptr) {
        events_->Append(EventType::kTxnCommit, "group", p->txn->xid(),
                        times[i]);
      }
      p->txn->state_ = TxnState::kCommitted;
      Finish(p->txn, /*committed=*/true);
      p->result = times[i];
    } else {
      // The batch failed as a unit (flush or append error). Every member
      // stays active; callers may retry or abort individually.
      p->result = append;
    }
  }

  lk.lock();
  gc_leader_active_ = false;
  Result<CommitTime> my_result = req.result;
  for (PendingCommit* p : batch) p->done = true;
  gc_cv_.notify_all();
  return my_result;
}

Status TxnManager::Abort(Transaction* txn) {
  PGLO_CHECK(txn != nullptr);
  if (!IsActive(txn)) {
    return Status::InvalidArgument("transaction already finished");
  }
  PGLO_RETURN_IF_ERROR(clog_->RecordAbort(txn->xid()));
  if (events_ != nullptr) events_->Append(EventType::kTxnAbort, "", txn->xid());
  txn->state_ = TxnState::kAborted;
  Finish(txn, /*committed=*/false);
  return Status::OK();
}

}  // namespace pglo
