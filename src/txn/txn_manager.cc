#include "txn/txn_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"

namespace pglo {

namespace {
constexpr Xid kXidCrashSlack = 1024;
}  // namespace

TxnManager::~TxnManager() {
  if (xid_fd_ >= 0) ::close(xid_fd_);
}

Status TxnManager::OpenXidFile(const std::string& path) {
  xid_fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (xid_fd_ < 0) {
    return Status::IOError("cannot open xid file: " +
                           std::string(std::strerror(errno)));
  }
  uint8_t buf[4];
  if (::pread(xid_fd_, buf, sizeof(buf), 0) == sizeof(buf)) {
    Xid persisted = DecodeFixed32(buf) + kXidCrashSlack;
    if (persisted > next_xid_) next_xid_ = persisted;
  }
  return Status::OK();
}

Xid TxnManager::AllocateXid() {
  Xid xid = next_xid_++;
  if (xid_fd_ >= 0) {
    uint8_t buf[4];
    EncodeFixed32(buf, next_xid_);
    // Best effort, no fsync: the slack added at open covers lost writes.
    ssize_t n = ::pwrite(xid_fd_, buf, sizeof(buf), 0);
    (void)n;
  }
  return xid;
}

Transaction* TxnManager::Track(std::unique_ptr<Transaction> txn) {
  Transaction* raw = txn.get();
  active_[raw] = std::move(txn);
  return raw;
}

Transaction* TxnManager::Begin() {
  Xid xid = AllocateXid();
  clog_->RecordBegin(xid);
  if (events_ != nullptr) events_->Append(EventType::kTxnBegin, "", xid);
  Snapshot snap(clog_, xid, clog_->Now());
  return Track(std::unique_ptr<Transaction>(new Transaction(xid, snap)));
}

Transaction* TxnManager::BeginAsOf(CommitTime as_of) {
  Xid xid = AllocateXid();
  clog_->RecordBegin(xid);
  if (events_ != nullptr) {
    events_->Append(EventType::kTxnBegin, "as-of", xid, as_of);
  }
  Snapshot snap(clog_, xid, clog_->Now(), as_of);
  return Track(std::unique_ptr<Transaction>(new Transaction(xid, snap)));
}

void TxnManager::Finish(Transaction* txn, bool committed) {
  for (auto& cb : txn->finish_callbacks_) {
    cb(committed);
  }
  active_.erase(txn);  // destroys the Transaction
}

Result<CommitTime> TxnManager::Commit(Transaction* txn) {
  PGLO_CHECK(txn != nullptr);
  if (!txn->active()) {
    return Status::InvalidArgument("transaction already finished");
  }
  // Force policy: all of this transaction's versions must be stable before
  // the commit record. Flushing everything is coarse but correct.
  PGLO_RETURN_IF_ERROR(pool_->FlushAll());
  for (auto& hook : force_hooks_) {
    PGLO_RETURN_IF_ERROR(hook());
  }
  PGLO_ASSIGN_OR_RETURN(CommitTime time, clog_->RecordCommit(txn->xid()));
  if (events_ != nullptr) {
    events_->Append(EventType::kTxnCommit, "", txn->xid(), time);
  }
  txn->state_ = TxnState::kCommitted;
  Finish(txn, /*committed=*/true);
  return time;
}

Status TxnManager::Abort(Transaction* txn) {
  PGLO_CHECK(txn != nullptr);
  if (!txn->active()) {
    return Status::InvalidArgument("transaction already finished");
  }
  PGLO_RETURN_IF_ERROR(clog_->RecordAbort(txn->xid()));
  if (events_ != nullptr) events_->Append(EventType::kTxnAbort, "", txn->xid());
  txn->state_ = TxnState::kAborted;
  Finish(txn, /*committed=*/false);
  return Status::OK();
}

}  // namespace pglo
