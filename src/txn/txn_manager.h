#ifndef PGLO_TXN_TXN_MANAGER_H_
#define PGLO_TXN_TXN_MANAGER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/event_log.h"
#include "obs/wait_event.h"
#include "storage/buffer_pool.h"
#include "txn/commit_log.h"
#include "txn/transaction.h"

namespace pglo {

/// Allocates XIDs and drives the commit protocol.
///
/// Commit protocol (force-at-commit, no WAL — the POSTGRES storage system):
///   1. flush every dirty buffer (the transaction's new tuple versions
///      reach stable storage),
///   2. durably append the commit record.
/// A crash between the steps leaves the XID unrecorded, which the commit
/// log reports as aborted, so the flushed-but-uncommitted versions are
/// invisible: atomicity without undo.
///
/// Thread-safe: backends (Sessions) begin, commit, and abort concurrently.
/// Commits serialize — the force policy flushes the whole pool, so there
/// is nothing to overlap — either behind a plain mutex (default, preserving
/// the single-stream sequence exactly) or through the group-commit queue
/// (SetGroupCommit), where one leader flushes once and appends every
/// waiting committer's record in a single pwrite + fdatasync.
class TxnManager {
 public:
  TxnManager(CommitLog* clog, BufferPool* pool)
      : clog_(clog), pool_(pool) {}
  ~TxnManager();
  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Restores the XID allocator after reopening a database.
  void RestoreNextXid() {
    std::lock_guard<std::mutex> lock(mu_);
    Xid max = clog_->MaxRecordedXid();
    if (max >= next_xid_) next_xid_ = max + 1;
  }

  /// Persists the XID high-water mark to `path` (written without fsync on
  /// every Begin; a slack is added at open). Without this, an XID handed
  /// to a transaction that crashed before writing any commit-log record
  /// could be reissued — and the crashed transaction's tuples would look
  /// like the new transaction's own writes.
  Status OpenXidFile(const std::string& path);

  /// Enables group commit (DESIGN.md §13). Configuration-time only; off by
  /// default, which keeps single-stream commit behavior bit-identical.
  void SetGroupCommit(bool enabled) { group_commit_ = enabled; }
  bool group_commit() const { return group_commit_; }

  /// Starts a read-write transaction with a "current" snapshot.
  Transaction* Begin();

  /// Starts a read-only time-travel transaction whose reads observe the
  /// database exactly as committed at tick `as_of`.
  Transaction* BeginAsOf(CommitTime as_of);

  /// Commits: forces dirty pages, then durably records the commit.
  /// Returns the transaction's commit time and destroys the Transaction on
  /// success. A pointer that is not an in-progress transaction of this
  /// manager (double commit, use after commit) is rejected without being
  /// dereferenced.
  Result<CommitTime> Commit(Transaction* txn);

  /// Aborts: records the abort; data pages are untouched.
  Status Abort(Transaction* txn);

  /// The latest commit tick — the "now" that time-travel queries address.
  CommitTime Now() const { return clog_->Now(); }

  /// Registers an extra force-at-commit step, run after the buffer-pool
  /// flush and before the commit record. Database uses this to sync
  /// non-pool stores (the simulated UNIX file system) that hold committed
  /// large-object data. Configuration-time only.
  void AddCommitForceHook(std::function<Status()> hook) {
    force_hooks_.push_back(std::move(hook));
  }

  /// Structured-event sink for the transaction lifecycle (begin, commit,
  /// abort). Null = silent. Configuration-time only.
  void BindEventLog(EventLog* events) { events_ = events; }

  /// Wait instrumentation (DESIGN.md §14): the single-commit serializer
  /// reports under `txn.commit_serialize`, the group-commit queue under
  /// `clog.group_commit.follower` (waiting out a leader's round) and
  /// `clog.group_commit.gather` (the leader's bounded refill wait).
  /// Configuration-time only.
  void BindWaits(const WaitStatsTable* waits) {
    if (waits == nullptr) return;
    wp_commit_serialize_ = waits->point(WaitEvent::kTxnCommitSerialize);
    wp_gc_follower_ = waits->point(WaitEvent::kGroupCommitFollower);
    wp_gc_gather_ = waits->point(WaitEvent::kGroupCommitGather);
  }

  const CommitLog& commit_log() const { return *clog_; }
  size_t active_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.size();
  }

  /// Commit batches the group-commit path has formed: groups.size() is the
  /// number of leader rounds, each value the number of transactions that
  /// round committed with one flush + one log append. Empty when group
  /// commit is off. Read at quiescence.
  const std::vector<uint32_t>& group_sizes() const { return group_sizes_; }

 private:
  struct PendingCommit {
    Transaction* txn;
    bool done = false;
    Result<CommitTime> result{Status::Internal("commit pending")};
  };

  Transaction* Track(std::unique_ptr<Transaction> txn);
  /// Runs finish callbacks and destroys the transaction. Must NOT be
  /// called with mu_ held (callbacks reach into other subsystems).
  void Finish(Transaction* txn, bool committed);
  Xid AllocateXidLocked();
  bool IsActive(Transaction* txn) const;
  /// The force-at-commit steps: pool flush + registered hooks.
  Status ForceAll();
  Result<CommitTime> CommitSingle(Transaction* txn);
  Result<CommitTime> CommitGrouped(Transaction* txn);

  CommitLog* clog_;
  BufferPool* pool_;
  mutable std::mutex mu_;  ///< next_xid_, xid file, active_
  Xid next_xid_ = kFirstNormalXid;
  int xid_fd_ = -1;
  std::unordered_map<Transaction*, std::unique_ptr<Transaction>> active_;
  std::vector<std::function<Status()>> force_hooks_;
  EventLog* events_ = nullptr;
  const WaitPoint* wp_commit_serialize_ = nullptr;
  const WaitPoint* wp_gc_follower_ = nullptr;
  const WaitPoint* wp_gc_gather_ = nullptr;

  bool group_commit_ = false;
  std::mutex commit_mu_;  ///< serializes the non-grouped commit sequence
  // Group-commit queue (guarded by gc_mu_): committers enqueue themselves;
  // whoever finds no leader running becomes leader and commits the whole
  // queue in one force + one batched log append.
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  std::deque<PendingCommit*> gc_queue_;
  bool gc_leader_active_ = false;
  /// Size of the previous batch (guarded by gc_mu_). The next leader
  /// gathers — briefly waits for the queue to refill to this size — before
  /// draining, so steady-state batches track the live committer count
  /// instead of collapsing to whoever raced in first.
  size_t gc_last_batch_ = 0;
  std::vector<uint32_t> group_sizes_;  ///< guarded by gc_mu_
};

}  // namespace pglo

#endif  // PGLO_TXN_TXN_MANAGER_H_
