#ifndef PGLO_TXN_TXN_MANAGER_H_
#define PGLO_TXN_TXN_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/event_log.h"
#include "storage/buffer_pool.h"
#include "txn/commit_log.h"
#include "txn/transaction.h"

namespace pglo {

/// Allocates XIDs and drives the commit protocol.
///
/// Commit protocol (force-at-commit, no WAL — the POSTGRES storage system):
///   1. flush every dirty buffer (the transaction's new tuple versions
///      reach stable storage),
///   2. durably append the commit record.
/// A crash between the steps leaves the XID unrecorded, which the commit
/// log reports as aborted, so the flushed-but-uncommitted versions are
/// invisible: atomicity without undo.
class TxnManager {
 public:
  TxnManager(CommitLog* clog, BufferPool* pool)
      : clog_(clog), pool_(pool) {}
  ~TxnManager();
  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Restores the XID allocator after reopening a database.
  void RestoreNextXid() {
    Xid max = clog_->MaxRecordedXid();
    if (max >= next_xid_) next_xid_ = max + 1;
  }

  /// Persists the XID high-water mark to `path` (written without fsync on
  /// every Begin; a slack is added at open). Without this, an XID handed
  /// to a transaction that crashed before writing any commit-log record
  /// could be reissued — and the crashed transaction's tuples would look
  /// like the new transaction's own writes.
  Status OpenXidFile(const std::string& path);

  /// Starts a read-write transaction with a "current" snapshot.
  Transaction* Begin();

  /// Starts a read-only time-travel transaction whose reads observe the
  /// database exactly as committed at tick `as_of`.
  Transaction* BeginAsOf(CommitTime as_of);

  /// Commits: forces dirty pages, then durably records the commit.
  /// Returns the transaction's commit time.
  Result<CommitTime> Commit(Transaction* txn);

  /// Aborts: records the abort; data pages are untouched.
  Status Abort(Transaction* txn);

  /// The latest commit tick — the "now" that time-travel queries address.
  CommitTime Now() const { return clog_->Now(); }

  /// Registers an extra force-at-commit step, run after the buffer-pool
  /// flush and before the commit record. Database uses this to sync
  /// non-pool stores (the simulated UNIX file system) that hold committed
  /// large-object data.
  void AddCommitForceHook(std::function<Status()> hook) {
    force_hooks_.push_back(std::move(hook));
  }

  /// Structured-event sink for the transaction lifecycle (begin, commit,
  /// abort). Null = silent.
  void BindEventLog(EventLog* events) { events_ = events; }

  const CommitLog& commit_log() const { return *clog_; }
  size_t active_count() const { return active_.size(); }

 private:
  Transaction* Track(std::unique_ptr<Transaction> txn);
  void Finish(Transaction* txn, bool committed);
  Xid AllocateXid();

  CommitLog* clog_;
  BufferPool* pool_;
  Xid next_xid_ = kFirstNormalXid;
  int xid_fd_ = -1;
  std::unordered_map<Transaction*, std::unique_ptr<Transaction>> active_;
  std::vector<std::function<Status()>> force_hooks_;
  EventLog* events_ = nullptr;
};

}  // namespace pglo

#endif  // PGLO_TXN_TXN_MANAGER_H_
