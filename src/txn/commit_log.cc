#include "txn/commit_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "fault/fault_injector.h"

namespace pglo {

namespace {
// Record: xid u32 | state u8 | pad u8[3] | commit_time u64 | crc u32
constexpr size_t kRecordSize = 20;

void EncodeRecord(uint8_t* buf, Xid xid, TxnState state, CommitTime time) {
  std::memset(buf, 0, kRecordSize);
  EncodeFixed32(buf, xid);
  buf[4] = static_cast<uint8_t>(state);
  EncodeFixed64(buf + 8, time);
  uint32_t crc = crc32c::Value(buf, kRecordSize - 4);
  EncodeFixed32(buf + kRecordSize - 4, crc32c::Mask(crc));
}

bool DecodeRecord(const uint8_t* buf, Xid* xid, TxnState* state,
                  CommitTime* time) {
  uint32_t stored = DecodeFixed32(buf + kRecordSize - 4);
  if (crc32c::Unmask(stored) != crc32c::Value(buf, kRecordSize - 4)) {
    return false;
  }
  *xid = DecodeFixed32(buf);
  *state = static_cast<TxnState>(buf[4]);
  *time = DecodeFixed64(buf + 8);
  return true;
}
}  // namespace

CommitLog::~CommitLog() {
  if (fd_ >= 0) {
    Status s = Close();
    (void)s;
  }
}

size_t CommitLog::RecordSize() { return kRecordSize; }

Status CommitLog::Open(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open commit log " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  entries_.clear();
  next_commit_time_ = 1;
  max_xid_ = kInvalidXid;
  // Bootstrap transaction is implicitly committed at time 0 so catalog rows
  // are visible to every snapshot.
  entries_[kBootstrapXid] = Entry{TxnState::kCommitted, 0};

  uint8_t rec[kRecordSize];
  off_t pos = 0;
  for (;;) {
    ssize_t n = ::pread(fd_, rec, kRecordSize, pos);
    if (n == 0) break;
    if (n != static_cast<ssize_t>(kRecordSize)) {
      // Torn tail from a crash mid-append: truncate it away.
      if (::ftruncate(fd_, pos) != 0) {
        return Status::IOError("commit log truncate failed");
      }
      break;
    }
    Xid xid;
    TxnState state;
    CommitTime time;
    if (!DecodeRecord(rec, &xid, &state, &time)) {
      if (::ftruncate(fd_, pos) != 0) {
        return Status::IOError("commit log truncate failed");
      }
      break;
    }
    entries_[xid] = Entry{state, time};
    if (xid > max_xid_) max_xid_ = xid;
    if (state == TxnState::kCommitted && time >= next_commit_time_) {
      next_commit_time_ = time + 1;
    }
    pos += kRecordSize;
  }
  // Everything that survived replay is durable by definition.
  appended_size_.store(static_cast<uint64_t>(pos), std::memory_order_relaxed);
  synced_size_.store(static_cast<uint64_t>(pos), std::memory_order_relaxed);
  return Status::OK();
}

Status CommitLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return Status::OK();
}

Status CommitLog::AppendEncodedLocked(const uint8_t* buf, size_t nbytes,
                                      uint64_t* end_out) {
  if (fd_ < 0) return Status::Internal("commit log not open");
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Status::IOError("commit log seek failed");
  if (injector_ != nullptr) {
    auto outcome = injector_->OnAppend("clog", nbytes);
    if (!outcome.status.ok()) {
      // A crash mid-append leaves a byte prefix of the append — possibly
      // none (clean edge), possibly all of it (durable commit the caller
      // never learned about; the harness resolves these from the replayed
      // log after reopen). For a batch, a prefix of whole records means a
      // prefix of the group survived — exactly what a real torn group
      // commit leaves.
      if (outcome.applied > 0 &&
          ::pwrite(fd_, buf, outcome.applied, end) !=
              static_cast<ssize_t>(outcome.applied)) {
        return Status::IOError("commit log torn append failed");
      }
      return outcome.status;
    }
  }
  if (::pwrite(fd_, buf, nbytes, end) != static_cast<ssize_t>(nbytes)) {
    return Status::IOError("commit log append failed");
  }
  *end_out = static_cast<uint64_t>(end) + nbytes;
  appended_size_.store(*end_out, std::memory_order_release);
  if (!synchronous_ && injector_ != nullptr) {
    // Unsynced tail: a power failure would truncate the log back to the
    // last synced size, silently aborting these "committed" transactions.
    injector_->NoteUnsynced(path_, synced_size_.load(std::memory_order_acquire));
  }
  return Status::OK();
}

Status CommitLog::AppendRecordLocked(Xid xid, TxnState state, CommitTime time,
                                     uint64_t* end_out) {
  uint8_t rec[kRecordSize];
  EncodeRecord(rec, xid, state, time);
  return AppendEncodedLocked(rec, kRecordSize, end_out);
}

Status CommitLog::SyncTo(uint64_t target) {
  if (!synchronous_) return Status::OK();
  WaitLockGuard sync_lock(sync_mu_, wp_fsync_);
  if (synced_size_.load(std::memory_order_acquire) >= target) {
    // A concurrent caller synced past our append — piggyback on its
    // fdatasync (the syscall covers the whole file).
    return Status::OK();
  }
  // Snapshot the append frontier BEFORE the syscall: everything appended up
  // to here is covered, anything appended during the sync may not be.
  uint64_t upto = appended_size_.load(std::memory_order_acquire);
  int rc;
  {
    // The syscall is the blocking episode that matters: the committer that
    // pays the fdatasync (instead of piggybacking) stalls right here.
    WaitGuard sync_wait(wp_fsync_, /*count_acquire=*/false);
    rc = ::fdatasync(fd_);
  }
  if (rc != 0) {
    return Status::IOError("commit log sync failed");
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  synced_size_.store(upto, std::memory_order_release);
  if (injector_ != nullptr) injector_->ClearUnsynced(path_);
  return Status::OK();
}

Result<CommitTime> CommitLog::RecordCommit(Xid xid) {
  CommitTime time;
  uint64_t end = 0;
  {
    WaitLockGuard lock(mu_, wp_mutex_);
    time = next_commit_time_;
    PGLO_RETURN_IF_ERROR(
        AppendRecordLocked(xid, TxnState::kCommitted, time, &end));
    entries_[xid] = Entry{TxnState::kCommitted, time};
    next_commit_time_ = time + 1;
    if (xid > max_xid_) max_xid_ = xid;
  }
  // Durability outside mu_: other backends keep resolving visibility while
  // this commit's fdatasync is in flight.
  PGLO_RETURN_IF_ERROR(SyncTo(end));
  return time;
}

Result<CommitTime> CommitLog::RecordCommitBatch(
    const std::vector<Xid>& xids, std::vector<CommitTime>* times_out) {
  if (xids.empty()) return Status::InvalidArgument("empty commit batch");
  CommitTime first;
  uint64_t end = 0;
  {
    WaitLockGuard lock(mu_, wp_mutex_);
    first = next_commit_time_;
    std::vector<uint8_t> buf(xids.size() * kRecordSize);
    for (size_t i = 0; i < xids.size(); ++i) {
      EncodeRecord(buf.data() + i * kRecordSize, xids[i],
                   TxnState::kCommitted, first + i);
    }
    PGLO_RETURN_IF_ERROR(AppendEncodedLocked(buf.data(), buf.size(), &end));
    times_out->clear();
    times_out->reserve(xids.size());
    for (size_t i = 0; i < xids.size(); ++i) {
      CommitTime time = first + i;
      entries_[xids[i]] = Entry{TxnState::kCommitted, time};
      if (xids[i] > max_xid_) max_xid_ = xids[i];
      times_out->push_back(time);
    }
    next_commit_time_ = first + xids.size();
  }
  PGLO_RETURN_IF_ERROR(SyncTo(end));
  return first;
}

Status CommitLog::RecordAbort(Xid xid) {
  uint64_t end = 0;
  {
    WaitLockGuard lock(mu_, wp_mutex_);
    PGLO_RETURN_IF_ERROR(
        AppendRecordLocked(xid, TxnState::kAborted, kInvalidCommitTime, &end));
    entries_[xid] = Entry{TxnState::kAborted, kInvalidCommitTime};
    if (xid > max_xid_) max_xid_ = xid;
  }
  // An abort lost to a crash is still an abort (no record == aborted), but
  // syncing keeps the injector's durable/volatile bookkeeping exact; under
  // concurrency it piggybacks on commit syncs instead of paying its own.
  PGLO_RETURN_IF_ERROR(SyncTo(end));
  return Status::OK();
}

TxnState CommitLog::GetState(Xid xid) const {
  WaitLockGuard lock(mu_, wp_mutex_);
  auto it = entries_.find(xid);
  if (it == entries_.end()) return TxnState::kAborted;
  return it->second.state;
}

CommitTime CommitLog::GetCommitTime(Xid xid) const {
  WaitLockGuard lock(mu_, wp_mutex_);
  auto it = entries_.find(xid);
  if (it == entries_.end() || it->second.state != TxnState::kCommitted) {
    return kInvalidCommitTime;
  }
  return it->second.commit_time;
}

}  // namespace pglo
