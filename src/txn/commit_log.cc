#include "txn/commit_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "fault/fault_injector.h"

namespace pglo {

namespace {
// Record: xid u32 | state u8 | pad u8[3] | commit_time u64 | crc u32
constexpr size_t kRecordSize = 20;

void EncodeRecord(uint8_t* buf, Xid xid, TxnState state, CommitTime time) {
  std::memset(buf, 0, kRecordSize);
  EncodeFixed32(buf, xid);
  buf[4] = static_cast<uint8_t>(state);
  EncodeFixed64(buf + 8, time);
  uint32_t crc = crc32c::Value(buf, kRecordSize - 4);
  EncodeFixed32(buf + kRecordSize - 4, crc32c::Mask(crc));
}

bool DecodeRecord(const uint8_t* buf, Xid* xid, TxnState* state,
                  CommitTime* time) {
  uint32_t stored = DecodeFixed32(buf + kRecordSize - 4);
  if (crc32c::Unmask(stored) != crc32c::Value(buf, kRecordSize - 4)) {
    return false;
  }
  *xid = DecodeFixed32(buf);
  *state = static_cast<TxnState>(buf[4]);
  *time = DecodeFixed64(buf + 8);
  return true;
}
}  // namespace

CommitLog::~CommitLog() {
  if (fd_ >= 0) {
    Status s = Close();
    (void)s;
  }
}

size_t CommitLog::RecordSize() { return kRecordSize; }

Status CommitLog::Open(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open commit log " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  entries_.clear();
  next_commit_time_ = 1;
  max_xid_ = kInvalidXid;
  // Bootstrap transaction is implicitly committed at time 0 so catalog rows
  // are visible to every snapshot.
  entries_[kBootstrapXid] = Entry{TxnState::kCommitted, 0};

  uint8_t rec[kRecordSize];
  off_t pos = 0;
  for (;;) {
    ssize_t n = ::pread(fd_, rec, kRecordSize, pos);
    if (n == 0) break;
    if (n != static_cast<ssize_t>(kRecordSize)) {
      // Torn tail from a crash mid-append: truncate it away.
      if (::ftruncate(fd_, pos) != 0) {
        return Status::IOError("commit log truncate failed");
      }
      break;
    }
    Xid xid;
    TxnState state;
    CommitTime time;
    if (!DecodeRecord(rec, &xid, &state, &time)) {
      if (::ftruncate(fd_, pos) != 0) {
        return Status::IOError("commit log truncate failed");
      }
      break;
    }
    entries_[xid] = Entry{state, time};
    if (xid > max_xid_) max_xid_ = xid;
    if (state == TxnState::kCommitted && time >= next_commit_time_) {
      next_commit_time_ = time + 1;
    }
    pos += kRecordSize;
  }
  // Everything that survived replay is durable by definition.
  synced_size_ = static_cast<uint64_t>(pos);
  return Status::OK();
}

Status CommitLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return Status::OK();
}

Status CommitLog::AppendRecord(Xid xid, TxnState state, CommitTime time) {
  if (fd_ < 0) return Status::Internal("commit log not open");
  uint8_t rec[kRecordSize];
  EncodeRecord(rec, xid, state, time);
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Status::IOError("commit log seek failed");
  if (injector_ != nullptr) {
    auto outcome = injector_->OnAppend("clog", kRecordSize);
    if (!outcome.status.ok()) {
      // A crash mid-append leaves a byte prefix of the record — possibly
      // none (clean edge), possibly all of it (durable commit the caller
      // never learned about; the harness resolves these from the replayed
      // log after reopen).
      if (outcome.applied > 0 &&
          ::pwrite(fd_, rec, outcome.applied, end) !=
              static_cast<ssize_t>(outcome.applied)) {
        return Status::IOError("commit log torn append failed");
      }
      return outcome.status;
    }
  }
  if (::pwrite(fd_, rec, kRecordSize, end) !=
      static_cast<ssize_t>(kRecordSize)) {
    return Status::IOError("commit log append failed");
  }
  if (synchronous_) {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError("commit log sync failed");
    }
    synced_size_ = static_cast<uint64_t>(end) + kRecordSize;
    if (injector_ != nullptr) injector_->ClearUnsynced(path_);
  } else if (injector_ != nullptr) {
    // Unsynced tail: a power failure would truncate the log back to the
    // last synced size, silently aborting these "committed" transactions.
    injector_->NoteUnsynced(path_, synced_size_);
  }
  return Status::OK();
}

Result<CommitTime> CommitLog::RecordCommit(Xid xid) {
  CommitTime time = next_commit_time_;
  PGLO_RETURN_IF_ERROR(AppendRecord(xid, TxnState::kCommitted, time));
  entries_[xid] = Entry{TxnState::kCommitted, time};
  next_commit_time_ = time + 1;
  if (xid > max_xid_) max_xid_ = xid;
  return time;
}

Status CommitLog::RecordAbort(Xid xid) {
  PGLO_RETURN_IF_ERROR(
      AppendRecord(xid, TxnState::kAborted, kInvalidCommitTime));
  entries_[xid] = Entry{TxnState::kAborted, kInvalidCommitTime};
  if (xid > max_xid_) max_xid_ = xid;
  return Status::OK();
}

TxnState CommitLog::GetState(Xid xid) const {
  auto it = entries_.find(xid);
  if (it == entries_.end()) return TxnState::kAborted;
  return it->second.state;
}

CommitTime CommitLog::GetCommitTime(Xid xid) const {
  auto it = entries_.find(xid);
  if (it == entries_.end() || it->second.state != TxnState::kCommitted) {
    return kInvalidCommitTime;
  }
  return it->second.commit_time;
}

}  // namespace pglo
