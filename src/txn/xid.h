#ifndef PGLO_TXN_XID_H_
#define PGLO_TXN_XID_H_

#include <cstdint>

namespace pglo {

/// Transaction identifier.
using Xid = uint32_t;

constexpr Xid kInvalidXid = 0;
/// The bootstrap transaction that creates system catalogs; always committed.
constexpr Xid kBootstrapXid = 1;
/// First XID handed to user transactions.
constexpr Xid kFirstNormalXid = 2;

/// Logical commit time. The commit log assigns each committing transaction
/// the next tick of a monotonic counter; "time travel" queries address
/// these ticks. (The 1993 system used wall-clock commit times; a logical
/// counter is equivalent and deterministic.)
using CommitTime = uint64_t;

constexpr CommitTime kInvalidCommitTime = 0;
/// Snapshot time meaning "now" (no historical bound).
constexpr CommitTime kLatestTime = ~0ull;

enum class TxnState : uint8_t {
  kInProgress = 0,
  kCommitted = 1,
  kAborted = 2,
};

}  // namespace pglo

#endif  // PGLO_TXN_XID_H_
