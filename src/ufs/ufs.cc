#include "ufs/ufs.h"

#include <cstring>

#include "common/logging.h"

namespace pglo {

UnixFileSystem::UnixFileSystem(DeviceModel* device, Params params)
    : device_(device),
      params_(params),
      cache_(device, params.cache_blocks) {}

Status UnixFileSystem::WriteSuperblock() {
  uint8_t block[kPageSize] = {};
  EncodeFixed32(block, kMagic);
  EncodeFixed32(block + 4, params_.capacity_blocks);
  EncodeFixed32(block + 8, params_.num_inodes);
  return cache_.Write(0, block);
}

Status UnixFileSystem::ReadSuperblock() {
  uint8_t block[kPageSize];
  PGLO_RETURN_IF_ERROR(cache_.Read(0, block));
  if (DecodeFixed32(block) != kMagic) {
    return Status::Corruption("not a ufs file system");
  }
  params_.capacity_blocks = DecodeFixed32(block + 4);
  params_.num_inodes = DecodeFixed32(block + 8);
  return Status::OK();
}

Status UnixFileSystem::Format(const std::string& backing_path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_RETURN_IF_ERROR(cache_.Open(backing_path));
  PGLO_RETURN_IF_ERROR(WriteSuperblock());
  uint8_t zero[kPageSize] = {};
  for (uint32_t b = BitmapStart(); b < DataStart(); ++b) {
    PGLO_RETURN_IF_ERROR(cache_.Write(b, zero));
  }
  // Mark metadata blocks as allocated in the bitmap.
  mounted_ = true;
  for (uint32_t b = 0; b < DataStart(); ++b) {
    uint32_t bitmap_block = BitmapStart() + b / (kPageSize * 8);
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(bitmap_block, buf));
    uint32_t bit = b % (kPageSize * 8);
    buf[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    PGLO_RETURN_IF_ERROR(cache_.Write(bitmap_block, buf));
  }
  // Root directory inode.
  UfsInode root;
  root.set_in_use(true);
  PGLO_RETURN_IF_ERROR(StoreInode(kRootInode, root));
  alloc_hint_ = DataStart();
  // mkfs writes through: the fresh file system must survive a crash that
  // happens before the first explicit Sync.
  return cache_.Flush();
}

Status UnixFileSystem::Mount(const std::string& backing_path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_RETURN_IF_ERROR(cache_.Open(backing_path));
  PGLO_RETURN_IF_ERROR(ReadSuperblock());
  mounted_ = true;
  alloc_hint_ = DataStart();
  return Status::OK();
}

Result<UfsInode> UnixFileSystem::LoadInode(uint32_t ino) {
  if (ino >= params_.num_inodes) {
    return Status::InvalidArgument("inode number out of range");
  }
  uint32_t block = InodeTableStart() + ino * UfsInode::kSize / kPageSize;
  uint32_t offset = ino * UfsInode::kSize % kPageSize;
  uint8_t buf[kPageSize];
  PGLO_RETURN_IF_ERROR(cache_.Read(block, buf));
  return UfsInode::Decode(buf + offset);
}

Status UnixFileSystem::StoreInode(uint32_t ino, const UfsInode& inode) {
  if (ino >= params_.num_inodes) {
    return Status::InvalidArgument("inode number out of range");
  }
  uint32_t block = InodeTableStart() + ino * UfsInode::kSize / kPageSize;
  uint32_t offset = ino * UfsInode::kSize % kPageSize;
  uint8_t buf[kPageSize];
  PGLO_RETURN_IF_ERROR(cache_.Read(block, buf));
  inode.EncodeTo(buf + offset);
  return cache_.Write(block, buf);
}

Result<uint32_t> UnixFileSystem::AllocInode() {
  for (uint32_t ino = 1; ino < params_.num_inodes; ++ino) {
    PGLO_ASSIGN_OR_RETURN(UfsInode inode, LoadInode(ino));
    if (!inode.in_use()) return ino;
  }
  return Status::ResourceExhausted("out of inodes");
}

Result<uint32_t> UnixFileSystem::AllocBlock() {
  uint32_t bits_per_block = kPageSize * 8;
  uint32_t start = alloc_hint_ < DataStart() ? DataStart() : alloc_hint_;
  for (uint32_t attempt = 0; attempt < params_.capacity_blocks; ++attempt) {
    uint32_t b = start + attempt;
    if (b >= params_.capacity_blocks) {
      b = DataStart() + (b - params_.capacity_blocks);
      if (b >= start) break;  // wrapped fully
    }
    uint32_t bitmap_block = BitmapStart() + b / bits_per_block;
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(bitmap_block, buf));
    uint32_t bit = b % bits_per_block;
    if (!(buf[bit / 8] & (1u << (bit % 8)))) {
      buf[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
      PGLO_RETURN_IF_ERROR(cache_.Write(bitmap_block, buf));
      alloc_hint_ = b + 1;
      return b;
    }
  }
  return Status::ResourceExhausted("file system full");
}

Status UnixFileSystem::FreeBlock(uint32_t block) {
  uint32_t bits_per_block = kPageSize * 8;
  uint32_t bitmap_block = BitmapStart() + block / bits_per_block;
  uint8_t buf[kPageSize];
  PGLO_RETURN_IF_ERROR(cache_.Read(bitmap_block, buf));
  uint32_t bit = block % bits_per_block;
  buf[bit / 8] &= static_cast<uint8_t>(~(1u << (bit % 8)));
  PGLO_RETURN_IF_ERROR(cache_.Write(bitmap_block, buf));
  if (block < alloc_hint_) alloc_hint_ = block;
  return Status::OK();
}

Result<uint32_t> UnixFileSystem::MapBlock(UfsInode* inode, bool* inode_dirty,
                                          uint64_t logical, bool alloc) {
  if (logical < UfsInode::kNumDirect) {
    uint32_t phys = inode->direct[logical];
    if (phys == UfsInode::kNoBlock && alloc) {
      PGLO_ASSIGN_OR_RETURN(phys, AllocBlock());
      inode->direct[logical] = phys;
      *inode_dirty = true;
    }
    return phys;
  }
  logical -= UfsInode::kNumDirect;

  auto load_ptr = [&](uint32_t indirect_block,
                      uint32_t index) -> Result<uint32_t> {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(indirect_block, buf));
    return DecodeFixed32(buf + 4 * index);
  };
  auto store_ptr = [&](uint32_t indirect_block, uint32_t index,
                       uint32_t value) -> Status {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(indirect_block, buf));
    EncodeFixed32(buf + 4 * index, value);
    return cache_.Write(indirect_block, buf);
  };
  auto alloc_zeroed = [&]() -> Result<uint32_t> {
    PGLO_ASSIGN_OR_RETURN(uint32_t b, AllocBlock());
    uint8_t zero[kPageSize] = {};
    PGLO_RETURN_IF_ERROR(cache_.Write(b, zero));
    return b;
  };

  if (logical < kPtrsPerBlock) {
    if (inode->single_indirect == UfsInode::kNoBlock) {
      if (!alloc) return UfsInode::kNoBlock;
      PGLO_ASSIGN_OR_RETURN(inode->single_indirect, alloc_zeroed());
      *inode_dirty = true;
    }
    PGLO_ASSIGN_OR_RETURN(
        uint32_t phys,
        load_ptr(inode->single_indirect, static_cast<uint32_t>(logical)));
    if (phys == UfsInode::kNoBlock && alloc) {
      PGLO_ASSIGN_OR_RETURN(phys, AllocBlock());
      PGLO_RETURN_IF_ERROR(store_ptr(inode->single_indirect,
                                     static_cast<uint32_t>(logical), phys));
    }
    return phys;
  }
  logical -= kPtrsPerBlock;

  if (logical < static_cast<uint64_t>(kPtrsPerBlock) * kPtrsPerBlock) {
    if (inode->double_indirect == UfsInode::kNoBlock) {
      if (!alloc) return UfsInode::kNoBlock;
      PGLO_ASSIGN_OR_RETURN(inode->double_indirect, alloc_zeroed());
      *inode_dirty = true;
    }
    uint32_t outer = static_cast<uint32_t>(logical / kPtrsPerBlock);
    uint32_t inner = static_cast<uint32_t>(logical % kPtrsPerBlock);
    PGLO_ASSIGN_OR_RETURN(uint32_t level1,
                          load_ptr(inode->double_indirect, outer));
    if (level1 == UfsInode::kNoBlock) {
      if (!alloc) return UfsInode::kNoBlock;
      PGLO_ASSIGN_OR_RETURN(level1, alloc_zeroed());
      PGLO_RETURN_IF_ERROR(store_ptr(inode->double_indirect, outer, level1));
    }
    PGLO_ASSIGN_OR_RETURN(uint32_t phys, load_ptr(level1, inner));
    if (phys == UfsInode::kNoBlock && alloc) {
      PGLO_ASSIGN_OR_RETURN(phys, AllocBlock());
      PGLO_RETURN_IF_ERROR(store_ptr(level1, inner, phys));
    }
    return phys;
  }
  return Status::OutOfRange("file exceeds maximum ufs size");
}

Result<size_t> UnixFileSystem::ReadAt(uint32_t ino, uint64_t off, size_t n,
                                      uint8_t* buf) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  TraceSpan span(registry_, h_read_ns_, "ufs.read");
  PGLO_ASSIGN_OR_RETURN(UfsInode inode, LoadInode(ino));
  if (!inode.in_use()) return Status::NotFound("inode not in use");
  if (off >= inode.size) return static_cast<size_t>(0);
  n = static_cast<size_t>(std::min<uint64_t>(n, inode.size - off));
  size_t done = 0;
  bool inode_dirty = false;
  while (done < n) {
    uint64_t logical = (off + done) / kPageSize;
    uint32_t in_block = static_cast<uint32_t>((off + done) % kPageSize);
    size_t take = std::min<size_t>(n - done, kPageSize - in_block);
    PGLO_ASSIGN_OR_RETURN(uint32_t phys,
                          MapBlock(&inode, &inode_dirty, logical, false));
    if (phys == UfsInode::kNoBlock) {
      std::memset(buf + done, 0, take);  // hole
    } else {
      uint8_t block[kPageSize];
      PGLO_RETURN_IF_ERROR(cache_.Read(phys, block));
      std::memcpy(buf + done, block + in_block, take);
    }
    done += take;
  }
  return done;
}

Status UnixFileSystem::WriteAt(uint32_t ino, uint64_t off, Slice data) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  TraceSpan span(registry_, h_write_ns_, "ufs.write");
  PGLO_ASSIGN_OR_RETURN(UfsInode inode, LoadInode(ino));
  if (!inode.in_use()) return Status::NotFound("inode not in use");
  size_t done = 0;
  bool inode_dirty = false;
  while (done < data.size()) {
    uint64_t logical = (off + done) / kPageSize;
    uint32_t in_block = static_cast<uint32_t>((off + done) % kPageSize);
    size_t take = std::min<size_t>(data.size() - done, kPageSize - in_block);
    // A partial write into a block that already exists must
    // read-modify-write; a freshly allocated block starts as zeros (its
    // recycled on-disk contents belong to a dead file and must not leak).
    PGLO_ASSIGN_OR_RETURN(uint32_t existing,
                          MapBlock(&inode, &inode_dirty, logical, false));
    PGLO_ASSIGN_OR_RETURN(uint32_t phys,
                          MapBlock(&inode, &inode_dirty, logical, true));
    uint8_t block[kPageSize];
    if (take == kPageSize) {
      // Full-block write: no read-modify-write needed.
      std::memcpy(block, data.data() + done, kPageSize);
    } else if (existing == UfsInode::kNoBlock) {
      std::memset(block, 0, kPageSize);
      std::memcpy(block + in_block, data.data() + done, take);
    } else {
      PGLO_RETURN_IF_ERROR(cache_.Read(phys, block));
      std::memcpy(block + in_block, data.data() + done, take);
    }
    PGLO_RETURN_IF_ERROR(cache_.Write(phys, block));
    done += take;
  }
  if (off + data.size() > inode.size) {
    inode.size = off + data.size();
    inode_dirty = true;
  }
  if (inode_dirty) {
    PGLO_RETURN_IF_ERROR(StoreInode(ino, inode));
  }
  return Status::OK();
}

Status UnixFileSystem::ClearMapping(UfsInode* inode, uint64_t logical) {
  auto clear_ptr = [&](uint32_t indirect_block, uint32_t index) -> Status {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(indirect_block, buf));
    uint32_t phys = DecodeFixed32(buf + 4 * index);
    if (phys != UfsInode::kNoBlock) {
      PGLO_RETURN_IF_ERROR(FreeBlock(phys));
      EncodeFixed32(buf + 4 * index, UfsInode::kNoBlock);
      PGLO_RETURN_IF_ERROR(cache_.Write(indirect_block, buf));
    }
    return Status::OK();
  };
  if (logical < UfsInode::kNumDirect) {
    if (inode->direct[logical] != UfsInode::kNoBlock) {
      PGLO_RETURN_IF_ERROR(FreeBlock(inode->direct[logical]));
      inode->direct[logical] = UfsInode::kNoBlock;
    }
    return Status::OK();
  }
  logical -= UfsInode::kNumDirect;
  if (logical < kPtrsPerBlock) {
    if (inode->single_indirect == UfsInode::kNoBlock) return Status::OK();
    return clear_ptr(inode->single_indirect,
                     static_cast<uint32_t>(logical));
  }
  logical -= kPtrsPerBlock;
  if (inode->double_indirect == UfsInode::kNoBlock) return Status::OK();
  uint32_t outer = static_cast<uint32_t>(logical / kPtrsPerBlock);
  uint32_t inner = static_cast<uint32_t>(logical % kPtrsPerBlock);
  uint8_t buf[kPageSize];
  PGLO_RETURN_IF_ERROR(cache_.Read(inode->double_indirect, buf));
  uint32_t level1 = DecodeFixed32(buf + 4 * outer);
  if (level1 == UfsInode::kNoBlock) return Status::OK();
  return clear_ptr(level1, inner);
}

Status UnixFileSystem::FreeFileBlocks(UfsInode* inode) {
  for (size_t i = 0; i < UfsInode::kNumDirect; ++i) {
    if (inode->direct[i] != UfsInode::kNoBlock) {
      PGLO_RETURN_IF_ERROR(FreeBlock(inode->direct[i]));
      inode->direct[i] = UfsInode::kNoBlock;
    }
  }
  auto free_indirect = [&](uint32_t indirect) -> Status {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(indirect, buf));
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      uint32_t ptr = DecodeFixed32(buf + 4 * i);
      if (ptr != UfsInode::kNoBlock) {
        PGLO_RETURN_IF_ERROR(FreeBlock(ptr));
      }
    }
    return FreeBlock(indirect);
  };
  if (inode->single_indirect != UfsInode::kNoBlock) {
    PGLO_RETURN_IF_ERROR(free_indirect(inode->single_indirect));
    inode->single_indirect = UfsInode::kNoBlock;
  }
  if (inode->double_indirect != UfsInode::kNoBlock) {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(inode->double_indirect, buf));
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      uint32_t level1 = DecodeFixed32(buf + 4 * i);
      if (level1 != UfsInode::kNoBlock) {
        PGLO_RETURN_IF_ERROR(free_indirect(level1));
      }
    }
    PGLO_RETURN_IF_ERROR(FreeBlock(inode->double_indirect));
    inode->double_indirect = UfsInode::kNoBlock;
  }
  inode->size = 0;
  return Status::OK();
}

Status UnixFileSystem::Truncate(uint32_t ino, uint64_t size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_ASSIGN_OR_RETURN(UfsInode inode, LoadInode(ino));
  if (!inode.in_use()) return Status::NotFound("inode not in use");
  if (size == 0) {
    PGLO_RETURN_IF_ERROR(FreeFileBlocks(&inode));
  } else if (size < inode.size) {
    // Free whole blocks past the new end and clear their mappings so a
    // later re-extension reads zeros (and the freed blocks can be reused
    // by other files without dangling pointers). Partial last block keeps
    // its stale tail bytes masked by `size`.
    uint64_t first_dead = (size + kPageSize - 1) / kPageSize;
    uint64_t last = (inode.size + kPageSize - 1) / kPageSize;
    for (uint64_t b = first_dead; b < last; ++b) {
      PGLO_RETURN_IF_ERROR(ClearMapping(&inode, b));
    }
    // Zero the tail of a partial final block so that re-extending the file
    // reads zeros there, not stale bytes.
    if (size % kPageSize != 0) {
      bool dirty = false;
      PGLO_ASSIGN_OR_RETURN(
          uint32_t phys,
          MapBlock(&inode, &dirty, size / kPageSize, false));
      if (phys != UfsInode::kNoBlock) {
        uint8_t buf[kPageSize];
        PGLO_RETURN_IF_ERROR(cache_.Read(phys, buf));
        std::memset(buf + size % kPageSize, 0, kPageSize - size % kPageSize);
        PGLO_RETURN_IF_ERROR(cache_.Write(phys, buf));
      }
    }
  }
  inode.size = size;
  return StoreInode(ino, inode);
}

Result<std::vector<UnixFileSystem::DirEntry>>
UnixFileSystem::LoadDirectory() {
  PGLO_ASSIGN_OR_RETURN(UfsInode root, LoadInode(kRootInode));
  Bytes data(root.size);
  if (root.size > 0) {
    PGLO_ASSIGN_OR_RETURN(
        size_t n, ReadAt(kRootInode, 0, data.size(), data.data()));
    if (n != data.size()) return Status::Corruption("short directory read");
  }
  std::vector<DirEntry> entries;
  ByteReader reader{Slice(data)};
  while (!reader.exhausted()) {
    Slice name;
    uint32_t ino;
    if (!reader.GetLengthPrefixed(&name) || !reader.GetFixed32(&ino)) {
      return Status::Corruption("bad directory entry");
    }
    entries.push_back({name.ToString(), ino});
  }
  return entries;
}

Status UnixFileSystem::StoreDirectory(const std::vector<DirEntry>& entries) {
  Bytes data;
  for (const DirEntry& e : entries) {
    PutLengthPrefixed(&data, Slice(e.name));
    PutFixed32(&data, e.ino);
  }
  PGLO_RETURN_IF_ERROR(Truncate(kRootInode, 0));
  if (!data.empty()) {
    PGLO_RETURN_IF_ERROR(WriteAt(kRootInode, 0, Slice(data)));
  }
  return Status::OK();
}

Result<uint32_t> UnixFileSystem::Create(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (name.empty()) return Status::InvalidArgument("empty file name");
  PGLO_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDirectory());
  for (const DirEntry& e : entries) {
    if (e.name == name) return Status::AlreadyExists("file exists: " + name);
  }
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  UfsInode inode;
  inode.set_in_use(true);
  PGLO_RETURN_IF_ERROR(StoreInode(ino, inode));
  entries.push_back({name, ino});
  PGLO_RETURN_IF_ERROR(StoreDirectory(entries));
  return ino;
}

Result<uint32_t> UnixFileSystem::Lookup(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDirectory());
  for (const DirEntry& e : entries) {
    if (e.name == name) return e.ino;
  }
  return Status::NotFound("no such file: " + name);
}

Status UnixFileSystem::Remove(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDirectory());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].name == name) {
      PGLO_ASSIGN_OR_RETURN(UfsInode inode, LoadInode(entries[i].ino));
      PGLO_RETURN_IF_ERROR(FreeFileBlocks(&inode));
      inode.set_in_use(false);
      PGLO_RETURN_IF_ERROR(StoreInode(entries[i].ino, inode));
      entries.erase(entries.begin() + i);
      return StoreDirectory(entries);
    }
  }
  return Status::NotFound("no such file: " + name);
}

Result<std::vector<std::string>> UnixFileSystem::List() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, LoadDirectory());
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const DirEntry& e : entries) names.push_back(e.name);
  return names;
}

Result<uint64_t> UnixFileSystem::FileSize(uint32_t ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_ASSIGN_OR_RETURN(UfsInode inode, LoadInode(ino));
  if (!inode.in_use()) return Status::NotFound("inode not in use");
  return inode.size;
}

Result<uint64_t> UnixFileSystem::AllocatedBytes(uint32_t ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PGLO_ASSIGN_OR_RETURN(UfsInode inode, LoadInode(ino));
  if (!inode.in_use()) return Status::NotFound("inode not in use");
  uint64_t blocks = 0;
  for (size_t i = 0; i < UfsInode::kNumDirect; ++i) {
    if (inode.direct[i] != UfsInode::kNoBlock) ++blocks;
  }
  auto count_indirect = [&](uint32_t indirect) -> Result<uint64_t> {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(indirect, buf));
    uint64_t n = 1;  // the indirect block itself
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      if (DecodeFixed32(buf + 4 * i) != UfsInode::kNoBlock) ++n;
    }
    return n;
  };
  if (inode.single_indirect != UfsInode::kNoBlock) {
    PGLO_ASSIGN_OR_RETURN(uint64_t n, count_indirect(inode.single_indirect));
    blocks += n;
  }
  if (inode.double_indirect != UfsInode::kNoBlock) {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(inode.double_indirect, buf));
    blocks += 1;
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      uint32_t level1 = DecodeFixed32(buf + 4 * i);
      if (level1 != UfsInode::kNoBlock) {
        PGLO_ASSIGN_OR_RETURN(uint64_t n, count_indirect(level1));
        blocks += n;
      }
    }
  }
  return blocks * kPageSize;
}

Result<uint32_t> UnixFileSystem::FreeBlocks() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint32_t bits_per_block = kPageSize * 8;
  uint32_t free = 0;
  for (uint32_t bb = 0; bb < BitmapBlocks(); ++bb) {
    uint8_t buf[kPageSize];
    PGLO_RETURN_IF_ERROR(cache_.Read(BitmapStart() + bb, buf));
    uint32_t base = bb * bits_per_block;
    uint32_t limit = std::min(params_.capacity_blocks, base + bits_per_block);
    for (uint32_t b = std::max(base, DataStart()); b < limit; ++b) {
      uint32_t bit = b - base;
      if (!(buf[bit / 8] & (1u << (bit % 8)))) ++free;
    }
  }
  return free;
}

Status UnixFileSystem::Sync() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return cache_.Flush();
}

}  // namespace pglo
