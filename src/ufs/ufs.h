#ifndef PGLO_UFS_UFS_H_
#define PGLO_UFS_UFS_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "device/device_model.h"
#include "ufs/block_cache.h"
#include "ufs/inode.h"

namespace pglo {

/// Miniature UNIX (Berkeley FFS-style) file system over a simulated disk.
///
/// This is the "native file system" baseline of §9: the u-file and
/// POSTGRES-file ADT implementations store large objects here, and Figure
/// 2's first two columns measure it. It has a superblock, a block
/// allocation bitmap, an inode table with direct/single/double-indirect
/// pointers, a flat root directory, and an OS-style write-back buffer
/// cache — so it pays the same physical costs (indirect-block fetches,
/// read-modify-write of partial blocks) a real 1992 file system paid.
///
/// Not a POSIX implementation: one directory, no permissions, no links.
/// Those are orthogonal to every measured effect.
class UnixFileSystem {
 public:
  struct Params {
    uint32_t capacity_blocks = 65536;  ///< 512 MB at 8 KB blocks
    uint32_t num_inodes = 512;
    size_t cache_blocks = 128;         ///< OS buffer cache size
  };

  /// `device` may be null (no simulated-time charging).
  UnixFileSystem(DeviceModel* device, Params params);
  explicit UnixFileSystem(DeviceModel* device)
      : UnixFileSystem(device, Params()) {}

  /// Creates a fresh file system in host file `backing_path`.
  Status Format(const std::string& backing_path);

  /// Mounts an existing file system from `backing_path`.
  Status Mount(const std::string& backing_path);

  /// Creates an empty file; returns its inode number.
  Result<uint32_t> Create(const std::string& name);

  /// Resolves a name to an inode number.
  Result<uint32_t> Lookup(const std::string& name);

  /// Removes a file and frees its blocks.
  Status Remove(const std::string& name);

  /// Names of all files (excluding the root directory itself).
  Result<std::vector<std::string>> List();

  Result<uint64_t> FileSize(uint32_t ino);

  /// Reads up to `n` bytes at `off`; returns bytes read (short at EOF).
  Result<size_t> ReadAt(uint32_t ino, uint64_t off, size_t n, uint8_t* buf);

  /// Writes `data` at `off`, growing the file as needed. Unwritten gaps
  /// read as zeros.
  Status WriteAt(uint32_t ino, uint64_t off, Slice data);

  /// Shrinks or grows the file to `size` (growing leaves a hole).
  Status Truncate(uint32_t ino, uint64_t size);

  /// Flushes the buffer cache and fsyncs the backing file.
  Status Sync();

  /// Drops all cached state without writing back (crash simulation).
  void CrashDiscard() {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    cache_.CrashDiscard();
  }

  /// Logical size of the file (what Figure 1 reports for u-file/p-file —
  /// inodes and indirect blocks are "owned by the directory", per §9.1).
  Result<uint64_t> LogicalBytes(uint32_t ino) { return FileSize(ino); }

  /// Physical bytes actually allocated, counting data + indirect blocks.
  Result<uint64_t> AllocatedBytes(uint32_t ino);

  /// Free data blocks remaining.
  Result<uint32_t> FreeBlocks();

  const UfsBlockCache& cache() const { return cache_; }

  /// Forwards to the buffer cache's per-access CPU charge.
  void SetAccessCost(CpuCostModel* cpu, uint64_t instructions) {
    cache_.SetAccessCost(cpu, instructions);
  }

  /// Forwards the sequential read-ahead window to the buffer cache.
  void SetReadAhead(uint32_t pages) { cache_.SetReadAhead(pages); }

  /// Forwards crash/transient hooks to the buffer cache's backing store.
  void SetFaultInjector(FaultInjector* injector) {
    cache_.SetFaultInjector(injector);
  }

  /// Forwards the transient-error retry policy to the buffer cache.
  void SetRetryPolicy(const RetryPolicy& policy) {
    cache_.SetRetryPolicy(policy);
  }

  /// Forwards to the buffer cache's stats binding (`ufs.*` counters) and
  /// binds `ufs.{read,write}` trace spans with `ufs.{read_ns,write_ns}`
  /// histograms around ReadAt/WriteAt.
  void BindStats(StatsRegistry* registry) {
    cache_.BindStats(registry);
    if (registry == nullptr) return;
    registry_ = registry;
    h_read_ns_ = registry->histogram("ufs.read_ns");
    h_write_ns_ = registry->histogram("ufs.write_ns");
  }

 private:
  static constexpr uint32_t kMagic = 0x55465331;  // "UFS1"
  static constexpr uint32_t kPtrsPerBlock = kPageSize / 4;
  static constexpr uint32_t kRootInode = 0;

  // Layout computed from params:
  uint32_t BitmapStart() const { return 1; }
  uint32_t BitmapBlocks() const {
    return (params_.capacity_blocks + kPageSize * 8 - 1) / (kPageSize * 8);
  }
  uint32_t InodeTableStart() const { return BitmapStart() + BitmapBlocks(); }
  uint32_t InodeTableBlocks() const {
    return (params_.num_inodes * UfsInode::kSize + kPageSize - 1) / kPageSize;
  }
  uint32_t DataStart() const { return InodeTableStart() + InodeTableBlocks(); }

  Status WriteSuperblock();
  Status ReadSuperblock();

  Result<UfsInode> LoadInode(uint32_t ino);
  Status StoreInode(uint32_t ino, const UfsInode& inode);
  Result<uint32_t> AllocInode();

  Result<uint32_t> AllocBlock();
  Status FreeBlock(uint32_t block);

  /// Maps a logical file block to a physical block. When `alloc` is true,
  /// missing mappings (and indirect blocks) are allocated; otherwise 0 is
  /// returned for holes.
  Result<uint32_t> MapBlock(UfsInode* inode, bool* inode_dirty,
                            uint64_t logical, bool alloc);

  /// Frees every block of the file (data + indirect).
  Status FreeFileBlocks(UfsInode* inode);

  /// Frees the block mapped at `logical` and clears its pointer (direct or
  /// indirect), so the range reads as a hole afterwards.
  Status ClearMapping(UfsInode* inode, uint64_t logical);

  // Root directory entries, serialized into inode 0's data.
  struct DirEntry {
    std::string name;
    uint32_t ino;
  };
  Result<std::vector<DirEntry>> LoadDirectory();
  Status StoreDirectory(const std::vector<DirEntry>& entries);

  DeviceModel* device_;
  Params params_;
  // Serializes whole file-system operations. Recursive because directory
  // maintenance reuses the public ReadAt/WriteAt/Truncate paths (e.g.
  // Create → StoreDirectory → WriteAt).
  mutable std::recursive_mutex mu_;
  UfsBlockCache cache_;
  StatsRegistry* registry_ = nullptr;
  Histogram* h_read_ns_ = nullptr;
  Histogram* h_write_ns_ = nullptr;
  bool mounted_ = false;
  uint32_t alloc_hint_ = 0;  ///< rotor for the bitmap scan
};

}  // namespace pglo

#endif  // PGLO_UFS_UFS_H_
