#ifndef PGLO_UFS_INODE_H_
#define PGLO_UFS_INODE_H_

#include <cstdint>
#include <cstring>

#include "common/bytes.h"

namespace pglo {

/// On-disk inode of the simulated Berkeley-FFS-style file system.
///
/// 128 bytes: flags u32 | size u64 | 12 direct block pointers |
/// single-indirect | double-indirect | reserved. With 8 KB blocks and
/// 4-byte pointers this addresses 12 + 2048 + 2048² blocks (≈32 GB),
/// comfortably past the benchmark's 51.2 MB objects — which is the point:
/// the native baseline pays real indirect-block traffic, as the paper's
/// Dynix file system did.
struct UfsInode {
  static constexpr size_t kSize = 128;
  static constexpr size_t kNumDirect = 12;
  static constexpr uint32_t kNoBlock = 0;  // physical 0 is the superblock

  uint32_t flags = 0;  ///< bit 0: in use
  uint64_t size = 0;
  uint32_t direct[kNumDirect] = {};
  uint32_t single_indirect = kNoBlock;
  uint32_t double_indirect = kNoBlock;

  bool in_use() const { return flags & 1; }
  void set_in_use(bool v) { flags = v ? (flags | 1) : (flags & ~1u); }

  void EncodeTo(uint8_t* dst) const {
    std::memset(dst, 0, kSize);
    EncodeFixed32(dst, flags);
    EncodeFixed64(dst + 4, size);
    for (size_t i = 0; i < kNumDirect; ++i) {
      EncodeFixed32(dst + 12 + 4 * i, direct[i]);
    }
    EncodeFixed32(dst + 60, single_indirect);
    EncodeFixed32(dst + 64, double_indirect);
  }

  static UfsInode Decode(const uint8_t* src) {
    UfsInode ino;
    ino.flags = DecodeFixed32(src);
    ino.size = DecodeFixed64(src + 4);
    for (size_t i = 0; i < kNumDirect; ++i) {
      ino.direct[i] = DecodeFixed32(src + 12 + 4 * i);
    }
    ino.single_indirect = DecodeFixed32(src + 60);
    ino.double_indirect = DecodeFixed32(src + 64);
    return ino;
  }
};

}  // namespace pglo

#endif  // PGLO_UFS_INODE_H_
