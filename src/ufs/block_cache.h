#ifndef PGLO_UFS_BLOCK_CACHE_H_
#define PGLO_UFS_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "device/cpu_cost.h"
#include "device/device_model.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "obs/stats.h"
#include "storage/page.h"

namespace pglo {

/// Write-back LRU block cache over a host backing file: the "operating
/// system buffer cache" of the simulated UNIX file system. Device-model
/// charges happen only on cache misses and write-backs, exactly as a real
/// buffer cache hides disk traffic.
class UfsBlockCache {
 public:
  /// `device` may be null (no time charging).
  UfsBlockCache(DeviceModel* device, size_t capacity_blocks);
  ~UfsBlockCache();

  /// Opens (creating if necessary) the backing host file.
  Status Open(const std::string& path);

  /// Charges `instructions` of simulated CPU per block access — the OS
  /// buffer cache's lookup/copy cost, mirroring BufferPool::SetAccessCost
  /// so the native-file-system baseline pays comparable CPU per hop.
  void SetAccessCost(CpuCostModel* cpu, uint64_t instructions) {
    cpu_ = cpu;
    access_instructions_ = instructions;
  }

  /// Sequential read-ahead window in blocks, mirroring the buffer pool's:
  /// a miss on the physical block the detector expected next pulls the
  /// whole window from the backing store with one device command, clipped
  /// to the written extent of the backing file. Any value > 0 also
  /// coalesces adjacent dirty blocks into vectored write-backs; 0 keeps
  /// the historical one-command-per-block behaviour.
  void SetReadAhead(uint32_t pages) { readahead_pages_ = pages; }

  /// Installs crash/transient hooks on the backing-store accesses (the
  /// UFS's "raw device"). Torn vectored write-backs apply a block-aligned
  /// prefix. No corruption injection here: the backing file holds raw user
  /// bytes with no checksum to catch a flip, so an injected flip would be
  /// indistinguishable from workload data. Null detaches.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Retry policy for transient backing-store failures, mirroring the
  /// buffer pool's. Defaults to a single attempt.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }

  /// Mirrors cache and backing-store accounting into `registry` counters
  /// under `ufs.*`. Null registry = unbound (no overhead).
  void BindStats(StatsRegistry* registry) {
    if (registry == nullptr) return;
    c_hits_ = registry->counter("ufs.cache.hits");
    c_misses_ = registry->counter("ufs.cache.misses");
    c_blocks_read_ = registry->counter("ufs.blocks_read");
    c_blocks_written_ = registry->counter("ufs.blocks_written");
  }

  /// Copies block `block` into `buf`, reading through on a miss.
  Status Read(uint32_t block, uint8_t* buf);

  /// Installs new contents for `block` (dirty in cache; written back on
  /// eviction or Flush). Extends the backing file as needed.
  Status Write(uint32_t block, const uint8_t* buf);

  /// Writes back all dirty blocks and fsyncs the backing file.
  Status Flush();

  /// Drops the entire cache, losing dirty blocks (crash simulation).
  void CrashDiscard();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;
  };

  Status ReadBacking(uint32_t block, uint8_t* buf);
  Status WriteBacking(uint32_t block, const uint8_t* buf);
  /// One device command for `nblocks` consecutive backing blocks.
  Status ReadBackingRun(uint32_t block, uint32_t nblocks, uint8_t* buf);
  Status WriteBackingRun(uint32_t block, uint32_t nblocks,
                         const uint8_t* buf);
  /// Writes back a sorted list of dirty cached blocks, coalescing
  /// consecutive runs when read-ahead is enabled.
  Status WriteBackSorted(const std::vector<uint32_t>& sorted);
  Status EvictIfFull();
  void Touch(uint32_t block, Entry& e);

  DeviceModel* device_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_policy_;
  CpuCostModel* cpu_ = nullptr;
  uint64_t access_instructions_ = 0;
  size_t capacity_;
  int fd_ = -1;
  uint32_t readahead_pages_ = 0;
  uint32_t next_expected_ = 0;   ///< sequential detector on physical blocks
  uint32_t streak_ = 0;          ///< consecutive misses on next_expected_
  uint32_t backing_blocks_ = 0;  ///< written extent; read-ahead never
                                 ///< charges for virgin (all-zero) blocks
  /// Separate staging buffers: eviction (and thus a coalesced write-back)
  /// can fire while prefetched data is still being copied out of the read
  /// buffer.
  std::vector<uint8_t> scratch_;
  std::vector<uint8_t> write_scratch_;
  std::unordered_map<uint32_t, Entry> cache_;
  std::list<uint32_t> lru_;  // front = least recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  Counter* c_hits_ = nullptr;
  Counter* c_misses_ = nullptr;
  Counter* c_blocks_read_ = nullptr;
  Counter* c_blocks_written_ = nullptr;
};

}  // namespace pglo

#endif  // PGLO_UFS_BLOCK_CACHE_H_
