#include "ufs/block_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace pglo {

UfsBlockCache::UfsBlockCache(DeviceModel* device, size_t capacity_blocks)
    : device_(device), capacity_(capacity_blocks > 0 ? capacity_blocks : 1) {}

UfsBlockCache::~UfsBlockCache() {
  Status s = Flush();
  (void)s;
  if (fd_ >= 0) ::close(fd_);
}

Status UfsBlockCache::Open(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open ufs backing file: " +
                           std::string(std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd_, &st) == 0) {
    backing_blocks_ = static_cast<uint32_t>(
        (static_cast<uint64_t>(st.st_size) + kPageSize - 1) / kPageSize);
  }
  return Status::OK();
}

Status UfsBlockCache::ReadBacking(uint32_t block, uint8_t* buf) {
  if (injector_ != nullptr) {
    PGLO_RETURN_IF_ERROR(RetryTransient(
        retry_policy_, [&] { return injector_->OnRead("ufs", 1); }));
  }
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(block) * kPageSize);
  if (n < 0) return Status::IOError("ufs backing read failed");
  // Blocks past EOF read as zeros (fresh allocation).
  if (n < static_cast<ssize_t>(kPageSize)) {
    std::memset(buf + n, 0, kPageSize - n);
  }
  if (device_ != nullptr) device_->ChargeRead(block, 1);
  StatInc(c_blocks_read_);
  return Status::OK();
}

Status UfsBlockCache::WriteBacking(uint32_t block, const uint8_t* buf) {
  return WriteBackingRun(block, 1, buf);
}

Status UfsBlockCache::ReadBackingRun(uint32_t block, uint32_t nblocks,
                                     uint8_t* buf) {
  if (injector_ != nullptr) {
    PGLO_RETURN_IF_ERROR(RetryTransient(
        retry_policy_, [&] { return injector_->OnRead("ufs", nblocks); }));
  }
  size_t bytes = static_cast<size_t>(nblocks) * kPageSize;
  ssize_t n = ::pread(fd_, buf, bytes, static_cast<off_t>(block) * kPageSize);
  if (n < 0) return Status::IOError("ufs backing read failed");
  if (n < static_cast<ssize_t>(bytes)) {
    std::memset(buf + n, 0, bytes - n);
  }
  if (device_ != nullptr) device_->ChargeRead(block, nblocks);
  StatAdd(c_blocks_read_, nblocks);
  return Status::OK();
}

Status UfsBlockCache::WriteBackingRun(uint32_t block, uint32_t nblocks,
                                      const uint8_t* buf) {
  uint32_t apply = nblocks;
  if (injector_ != nullptr) {
    FaultInjector::WriteOutcome outcome;
    Status s = RetryTransient(retry_policy_, [&] {
      outcome = injector_->OnWrite("ufs", nblocks);
      return outcome.status;
    });
    if (!s.ok()) {
      // Crash (or exhausted transient): a block-aligned prefix of the
      // write-back may have reached the platter.
      apply = outcome.applied < nblocks ? outcome.applied : nblocks;
      if (apply > 0) {
        size_t bytes = static_cast<size_t>(apply) * kPageSize;
        if (::pwrite(fd_, buf, bytes,
                     static_cast<off_t>(block) * kPageSize) !=
            static_cast<ssize_t>(bytes)) {
          return Status::IOError("ufs backing torn write failed");
        }
        if (block + apply > backing_blocks_) backing_blocks_ = block + apply;
      }
      return s;
    }
  }
  size_t bytes = static_cast<size_t>(nblocks) * kPageSize;
  ssize_t n = ::pwrite(fd_, buf, bytes, static_cast<off_t>(block) * kPageSize);
  if (n != static_cast<ssize_t>(bytes)) {
    return Status::IOError("ufs backing write failed");
  }
  if (device_ != nullptr) device_->ChargeWrite(block, nblocks);
  StatAdd(c_blocks_written_, nblocks);
  if (block + nblocks > backing_blocks_) backing_blocks_ = block + nblocks;
  return Status::OK();
}

Status UfsBlockCache::WriteBackSorted(const std::vector<uint32_t>& sorted) {
  if (readahead_pages_ == 0) {
    for (uint32_t block : sorted) {
      Entry& e = cache_[block];
      PGLO_RETURN_IF_ERROR(WriteBacking(block, e.data.data()));
      e.dirty = false;
    }
    return Status::OK();
  }
  constexpr size_t kMaxWriteRun = 64;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    while (j < sorted.size() && j - i < kMaxWriteRun &&
           sorted[j] == sorted[j - 1] + 1) {
      ++j;
    }
    uint32_t run = static_cast<uint32_t>(j - i);
    if (run == 1) {
      Entry& e = cache_[sorted[i]];
      PGLO_RETURN_IF_ERROR(WriteBacking(sorted[i], e.data.data()));
      e.dirty = false;
    } else {
      write_scratch_.resize(static_cast<size_t>(run) * kPageSize);
      for (uint32_t k = 0; k < run; ++k) {
        std::memcpy(
            write_scratch_.data() + static_cast<size_t>(k) * kPageSize,
            cache_[sorted[i + k]].data.data(), kPageSize);
      }
      PGLO_RETURN_IF_ERROR(
          WriteBackingRun(sorted[i], run, write_scratch_.data()));
      for (uint32_t k = 0; k < run; ++k) {
        cache_[sorted[i + k]].dirty = false;
      }
    }
    i = j;
  }
  return Status::OK();
}

void UfsBlockCache::Touch(uint32_t block, Entry& e) {
  lru_.erase(e.lru_pos);
  lru_.push_back(block);
  e.lru_pos = std::prev(lru_.end());
}

Status UfsBlockCache::EvictIfFull() {
  while (cache_.size() >= capacity_) {
    uint32_t victim = lru_.front();
    lru_.pop_front();
    auto it = cache_.find(victim);
    if (it->second.dirty) {
      // Clean a sorted batch of cold dirty blocks along with the victim —
      // the OS buffer cache's clustered write-behind, without which a
      // mixed read/write workload would pay a head seek per eviction.
      constexpr size_t kBatch = 64;
      std::vector<uint32_t> batch;
      batch.push_back(victim);
      for (auto lru_it = lru_.begin();
           lru_it != lru_.end() && batch.size() < kBatch; ++lru_it) {
        if (cache_[*lru_it].dirty) batch.push_back(*lru_it);
      }
      std::sort(batch.begin(), batch.end());
      PGLO_RETURN_IF_ERROR(WriteBackSorted(batch));
    }
    cache_.erase(victim);
  }
  return Status::OK();
}

Status UfsBlockCache::Read(uint32_t block, uint8_t* buf) {
  if (cpu_ != nullptr && access_instructions_ > 0) {
    cpu_->ChargeInstructions(access_instructions_);
  }
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    ++hits_;
    StatInc(c_hits_);
    Touch(block, it->second);
    std::memcpy(buf, it->second.data.data(), kPageSize);
    return Status::OK();
  }
  ++misses_;
  StatInc(c_misses_);
  // Sequential detector, mirroring the buffer pool's: the second
  // consecutive miss on the block expected next confirms a scan and widens
  // into a vectored backing read, ramping (2, 4, 8, ...) toward the
  // window, clipped at the written extent and at the first cached block.
  uint32_t run = 1;
  if (readahead_pages_ > 1) {
    if (block == next_expected_) {
      streak_ = std::min<uint32_t>(streak_ + 1, 32);
    } else {
      streak_ = 0;
    }
    if (streak_ >= 2 && block < backing_blocks_) {
      uint32_t window = 2;
      for (uint32_t s = 2; s < streak_ && window < readahead_pages_; ++s) {
        window *= 2;
      }
      run = static_cast<uint32_t>(std::min<uint64_t>(
          std::min<uint32_t>(window, readahead_pages_),
          backing_blocks_ - block));
      for (uint32_t k = 1; k < run; ++k) {
        if (cache_.count(block + k) != 0) {
          run = k;
          break;
        }
      }
    }
    next_expected_ = block + run;
  }
  if (run == 1) {
    PGLO_RETURN_IF_ERROR(ReadBacking(block, buf));
  } else {
    scratch_.resize(static_cast<size_t>(run) * kPageSize);
    PGLO_RETURN_IF_ERROR(ReadBackingRun(block, run, scratch_.data()));
    std::memcpy(buf, scratch_.data(), kPageSize);
  }
  for (uint32_t k = 0; k < run; ++k) {
    PGLO_RETURN_IF_ERROR(EvictIfFull());
    Entry e;
    const uint8_t* src =
        (run == 1) ? buf : scratch_.data() + static_cast<size_t>(k) * kPageSize;
    e.data.assign(src, src + kPageSize);
    lru_.push_back(block + k);
    e.lru_pos = std::prev(lru_.end());
    cache_.emplace(block + k, std::move(e));
  }
  return Status::OK();
}

Status UfsBlockCache::Write(uint32_t block, const uint8_t* buf) {
  if (cpu_ != nullptr && access_instructions_ > 0) {
    cpu_->ChargeInstructions(access_instructions_);
  }
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    Touch(block, it->second);
    std::memcpy(it->second.data.data(), buf, kPageSize);
    it->second.dirty = true;
    return Status::OK();
  }
  PGLO_RETURN_IF_ERROR(EvictIfFull());
  Entry e;
  e.data.assign(buf, buf + kPageSize);
  e.dirty = true;
  lru_.push_back(block);
  e.lru_pos = std::prev(lru_.end());
  cache_.emplace(block, std::move(e));
  return Status::OK();
}

Status UfsBlockCache::Flush() {
  if (fd_ < 0) return Status::OK();
  std::vector<uint32_t> dirty;
  for (auto& [block, e] : cache_) {
    if (e.dirty) dirty.push_back(block);
  }
  std::sort(dirty.begin(), dirty.end());  // clustered writeback
  PGLO_RETURN_IF_ERROR(WriteBackSorted(dirty));
  if (::fdatasync(fd_) != 0) return Status::IOError("ufs fsync failed");
  return Status::OK();
}

void UfsBlockCache::CrashDiscard() {
  cache_.clear();
  lru_.clear();
  next_expected_ = 0;
  streak_ = 0;
}

}  // namespace pglo
