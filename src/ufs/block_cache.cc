#include "ufs/block_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace pglo {

UfsBlockCache::UfsBlockCache(DeviceModel* device, size_t capacity_blocks)
    : device_(device), capacity_(capacity_blocks > 0 ? capacity_blocks : 1) {}

UfsBlockCache::~UfsBlockCache() {
  Status s = Flush();
  (void)s;
  if (fd_ >= 0) ::close(fd_);
}

Status UfsBlockCache::Open(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("cannot open ufs backing file: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status UfsBlockCache::ReadBacking(uint32_t block, uint8_t* buf) {
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(block) * kPageSize);
  if (n < 0) return Status::IOError("ufs backing read failed");
  // Blocks past EOF read as zeros (fresh allocation).
  if (n < static_cast<ssize_t>(kPageSize)) {
    std::memset(buf + n, 0, kPageSize - n);
  }
  if (device_ != nullptr) device_->ChargeRead(block, 1);
  StatInc(c_blocks_read_);
  return Status::OK();
}

Status UfsBlockCache::WriteBacking(uint32_t block, const uint8_t* buf) {
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(block) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("ufs backing write failed");
  }
  if (device_ != nullptr) device_->ChargeWrite(block, 1);
  StatInc(c_blocks_written_);
  return Status::OK();
}

void UfsBlockCache::Touch(uint32_t block, Entry& e) {
  lru_.erase(e.lru_pos);
  lru_.push_back(block);
  e.lru_pos = std::prev(lru_.end());
}

Status UfsBlockCache::EvictIfFull() {
  while (cache_.size() >= capacity_) {
    uint32_t victim = lru_.front();
    lru_.pop_front();
    auto it = cache_.find(victim);
    if (it->second.dirty) {
      // Clean a sorted batch of cold dirty blocks along with the victim —
      // the OS buffer cache's clustered write-behind, without which a
      // mixed read/write workload would pay a head seek per eviction.
      constexpr size_t kBatch = 64;
      std::vector<uint32_t> batch;
      batch.push_back(victim);
      for (auto lru_it = lru_.begin();
           lru_it != lru_.end() && batch.size() < kBatch; ++lru_it) {
        if (cache_[*lru_it].dirty) batch.push_back(*lru_it);
      }
      std::sort(batch.begin(), batch.end());
      for (uint32_t block : batch) {
        Entry& e = cache_[block];
        PGLO_RETURN_IF_ERROR(WriteBacking(block, e.data.data()));
        e.dirty = false;
      }
    }
    cache_.erase(victim);
  }
  return Status::OK();
}

Status UfsBlockCache::Read(uint32_t block, uint8_t* buf) {
  if (cpu_ != nullptr && access_instructions_ > 0) {
    cpu_->ChargeInstructions(access_instructions_);
  }
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    ++hits_;
    StatInc(c_hits_);
    Touch(block, it->second);
    std::memcpy(buf, it->second.data.data(), kPageSize);
    return Status::OK();
  }
  ++misses_;
  StatInc(c_misses_);
  PGLO_RETURN_IF_ERROR(ReadBacking(block, buf));
  PGLO_RETURN_IF_ERROR(EvictIfFull());
  Entry e;
  e.data.assign(buf, buf + kPageSize);
  lru_.push_back(block);
  e.lru_pos = std::prev(lru_.end());
  cache_.emplace(block, std::move(e));
  return Status::OK();
}

Status UfsBlockCache::Write(uint32_t block, const uint8_t* buf) {
  if (cpu_ != nullptr && access_instructions_ > 0) {
    cpu_->ChargeInstructions(access_instructions_);
  }
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    Touch(block, it->second);
    std::memcpy(it->second.data.data(), buf, kPageSize);
    it->second.dirty = true;
    return Status::OK();
  }
  PGLO_RETURN_IF_ERROR(EvictIfFull());
  Entry e;
  e.data.assign(buf, buf + kPageSize);
  e.dirty = true;
  lru_.push_back(block);
  e.lru_pos = std::prev(lru_.end());
  cache_.emplace(block, std::move(e));
  return Status::OK();
}

Status UfsBlockCache::Flush() {
  if (fd_ < 0) return Status::OK();
  std::vector<uint32_t> dirty;
  for (auto& [block, e] : cache_) {
    if (e.dirty) dirty.push_back(block);
  }
  std::sort(dirty.begin(), dirty.end());  // clustered writeback
  for (uint32_t block : dirty) {
    Entry& e = cache_[block];
    PGLO_RETURN_IF_ERROR(WriteBacking(block, e.data.data()));
    e.dirty = false;
  }
  if (::fdatasync(fd_) != 0) return Status::IOError("ufs fsync failed");
  return Status::OK();
}

void UfsBlockCache::CrashDiscard() {
  cache_.clear();
  lru_.clear();
}

}  // namespace pglo
