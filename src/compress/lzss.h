#ifndef PGLO_COMPRESS_LZSS_H_
#define PGLO_COMPRESS_LZSS_H_

#include "compress/compressor.h"

namespace pglo {

/// LZSS sliding-window codec: the expensive/strong algorithm of §9.2
/// (≈20 instructions per byte; ≈50 % reduction on the benchmark's frame
/// data).
///
/// 4 KB window, 3..66 byte matches, hash-chained match search. Format:
/// groups of 8 tokens preceded by a flag byte (bit set = copy token).
///   literal:  1 raw byte
///   copy:     offset:12 len-3:6 packed into 18 bits -> stored as 3 bytes
///             (offset u12 | len u6 padded to 24 bits)
class LzssCompressor : public Compressor {
 public:
  std::string name() const override { return "lzss"; }
  Status Compress(Slice input, Bytes* output) const override;
  Status Decompress(Slice input, size_t raw_size,
                    Bytes* output) const override;
  double compress_instr_per_byte() const override { return 20.0; }
  double decompress_instr_per_byte() const override { return 6.0; }
};

}  // namespace pglo

#endif  // PGLO_COMPRESS_LZSS_H_
