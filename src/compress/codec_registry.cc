#include "compress/codec_registry.h"

#include "compress/lzss.h"
#include "compress/rle.h"

namespace pglo {

CodecRegistry::CodecRegistry() {
  codecs_["rle"] = std::make_unique<RleCompressor>();
  codecs_["lzss"] = std::make_unique<LzssCompressor>();
}

Status CodecRegistry::Register(std::unique_ptr<Compressor> codec) {
  std::string name = codec->name();
  if (name.empty() || name == "none") {
    return Status::InvalidArgument("reserved codec name");
  }
  auto [it, inserted] = codecs_.emplace(name, std::move(codec));
  if (!inserted) return Status::AlreadyExists("codec already registered");
  return Status::OK();
}

Result<const Compressor*> CodecRegistry::Get(const std::string& name) const {
  if (name.empty() || name == "none") {
    return static_cast<const Compressor*>(nullptr);
  }
  auto it = codecs_.find(name);
  if (it == codecs_.end()) return Status::NotFound("unknown codec " + name);
  return static_cast<const Compressor*>(it->second.get());
}

}  // namespace pglo
