#include "compress/rle.h"

namespace pglo {

namespace {
constexpr uint8_t kOpLiteral = 0x00;
constexpr uint8_t kOpRun = 0x01;
constexpr size_t kMinRun = 4;
constexpr size_t kMaxLen = 0xffff;

void EmitLiteral(const uint8_t* data, size_t n, Bytes* out) {
  while (n > 0) {
    size_t take = std::min(n, kMaxLen);
    out->push_back(kOpLiteral);
    PutFixed16(out, static_cast<uint16_t>(take));
    out->insert(out->end(), data, data + take);
    data += take;
    n -= take;
  }
}

void EmitRun(uint8_t byte, size_t n, Bytes* out) {
  while (n > 0) {
    size_t take = std::min(n, kMaxLen);
    out->push_back(kOpRun);
    PutFixed16(out, static_cast<uint16_t>(take));
    out->push_back(byte);
    n -= take;
  }
}
}  // namespace

Status RleCompressor::Compress(Slice input, Bytes* output) const {
  const uint8_t* p = input.data();
  size_t n = input.size();
  size_t lit_start = 0;
  size_t i = 0;
  while (i < n) {
    size_t run = 1;
    while (i + run < n && p[i + run] == p[i] && run < kMaxLen) ++run;
    if (run >= kMinRun) {
      if (i > lit_start) EmitLiteral(p + lit_start, i - lit_start, output);
      EmitRun(p[i], run, output);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  if (n > lit_start) EmitLiteral(p + lit_start, n - lit_start, output);
  return Status::OK();
}

Status RleCompressor::Decompress(Slice input, size_t raw_size,
                                 Bytes* output) const {
  size_t start = output->size();
  const uint8_t* p = input.data();
  size_t n = input.size();
  size_t i = 0;
  while (i < n) {
    if (i + 3 > n) return Status::Corruption("truncated RLE op");
    uint8_t op = p[i];
    uint16_t len = DecodeFixed16(p + i + 1);
    i += 3;
    if (op == kOpLiteral) {
      if (i + len > n) return Status::Corruption("truncated RLE literal");
      output->insert(output->end(), p + i, p + i + len);
      i += len;
    } else if (op == kOpRun) {
      if (i + 1 > n) return Status::Corruption("truncated RLE run");
      output->insert(output->end(), len, p[i]);
      i += 1;
    } else {
      return Status::Corruption("bad RLE opcode");
    }
  }
  if (output->size() - start != raw_size) {
    return Status::Corruption("RLE raw size mismatch");
  }
  return Status::OK();
}

}  // namespace pglo
