#ifndef PGLO_COMPRESS_COMPRESSOR_H_
#define PGLO_COMPRESS_COMPRESSOR_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace pglo {

/// A user-defined conversion routine pair in the sense of §3/§6: the input
/// routine compresses a value on its way into the database, the output
/// routine uncompresses on the way out. Large ADTs apply these per chunk
/// (f-chunk) or per segment (v-segment), which is what enables "fast random
/// access to compressed data" and just-in-time conversion.
///
/// Each codec advertises a CPU price in instructions per byte; the
/// benchmark harness charges that price to the simulated CPU, mirroring how
/// §9.2 characterizes its two algorithms (8 instr/byte for ~30 %,
/// 20 instr/byte for ~50 % on the paper's frame data).
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;

  /// Compresses `input`, appending to `output`. May expand on
  /// incompressible data; callers keep the raw form when that happens.
  virtual Status Compress(Slice input, Bytes* output) const = 0;

  /// Decompresses `input` (produced by Compress) appending to `output`.
  /// `raw_size` is the exact original size, known from the caller's
  /// framing.
  virtual Status Decompress(Slice input, size_t raw_size,
                            Bytes* output) const = 0;

  /// Simulated CPU price of Compress, per input byte.
  virtual double compress_instr_per_byte() const = 0;
  /// Simulated CPU price of Decompress, per output byte.
  virtual double decompress_instr_per_byte() const = 0;
};

}  // namespace pglo

#endif  // PGLO_COMPRESS_COMPRESSOR_H_
