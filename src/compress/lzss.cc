#include "compress/lzss.h"

#include <array>
#include <cstring>

namespace pglo {

namespace {
constexpr size_t kWindow = 4096;       // 12-bit offsets
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = kMinMatch + 63;  // 6-bit length field
constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = 1 << kHashBits;

inline uint32_t Hash3(const uint8_t* p) {
  uint32_t v = p[0] | (p[1] << 8) | (p[2] << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}
}  // namespace

Status LzssCompressor::Compress(Slice input, Bytes* output) const {
  const uint8_t* p = input.data();
  const size_t n = input.size();

  // head[h] = most recent position with hash h; prev[] chains earlier ones.
  std::array<int32_t, kHashSize> head;
  head.fill(-1);
  std::vector<int32_t> prev(n, -1);

  size_t i = 0;
  size_t flag_pos = 0;
  int bit = 8;  // forces a fresh flag byte on the first token
  auto begin_token = [&](bool is_copy) {
    if (bit == 8) {
      flag_pos = output->size();
      output->push_back(0);
      bit = 0;
    }
    if (is_copy) (*output)[flag_pos] |= static_cast<uint8_t>(1u << bit);
    ++bit;
  };

  while (i < n) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (i + kMinMatch <= n) {
      uint32_t h = Hash3(p + i);
      int32_t cand = head[h];
      int probes = 16;
      while (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow &&
             probes-- > 0) {
        size_t off = i - static_cast<size_t>(cand);
        size_t len = 0;
        size_t max_len = std::min(kMaxMatch, n - i);
        while (len < max_len && p[cand + len] == p[i + len]) ++len;
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_off = off;
          if (len == kMaxMatch) break;
        }
        cand = prev[cand];
      }
    }
    if (best_len >= kMinMatch) {
      begin_token(true);
      // offset-1 in 12 bits, (len - kMinMatch) in 6 bits => 18 bits in 3 B.
      uint32_t packed = (static_cast<uint32_t>(best_off - 1) << 6) |
                        static_cast<uint32_t>(best_len - kMinMatch);
      output->push_back(static_cast<uint8_t>(packed & 0xff));
      output->push_back(static_cast<uint8_t>((packed >> 8) & 0xff));
      output->push_back(static_cast<uint8_t>((packed >> 16) & 0xff));
      // Index every position covered by the match.
      size_t end = i + best_len;
      while (i < end) {
        if (i + kMinMatch <= n) {
          uint32_t h = Hash3(p + i);
          prev[i] = head[h];
          head[h] = static_cast<int32_t>(i);
        }
        ++i;
      }
    } else {
      begin_token(false);
      output->push_back(p[i]);
      if (i + kMinMatch <= n) {
        uint32_t h = Hash3(p + i);
        prev[i] = head[h];
        head[h] = static_cast<int32_t>(i);
      }
      ++i;
    }
  }
  return Status::OK();
}

Status LzssCompressor::Decompress(Slice input, size_t raw_size,
                                  Bytes* output) const {
  size_t out_start = output->size();
  const uint8_t* p = input.data();
  const size_t n = input.size();
  size_t i = 0;
  uint8_t flags = 0;
  int bit = 8;
  while (output->size() - out_start < raw_size) {
    if (bit == 8) {
      if (i >= n) return Status::Corruption("truncated LZSS stream");
      flags = p[i++];
      bit = 0;
    }
    bool is_copy = (flags >> bit) & 1;
    ++bit;
    if (is_copy) {
      if (i + 3 > n) return Status::Corruption("truncated LZSS copy");
      uint32_t packed = p[i] | (p[i + 1] << 8) | (p[i + 2] << 16);
      i += 3;
      size_t len = (packed & 0x3f) + kMinMatch;
      size_t off = (packed >> 6) + 1;
      size_t cur = output->size();
      if (off > cur - out_start) {
        return Status::Corruption("LZSS offset before window start");
      }
      for (size_t k = 0; k < len; ++k) {
        output->push_back((*output)[cur - off + k]);
      }
    } else {
      if (i >= n) return Status::Corruption("truncated LZSS literal");
      output->push_back(p[i++]);
    }
  }
  if (output->size() - out_start != raw_size) {
    return Status::Corruption("LZSS raw size mismatch");
  }
  return Status::OK();
}

}  // namespace pglo
