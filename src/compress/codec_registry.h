#ifndef PGLO_COMPRESS_CODEC_REGISTRY_H_
#define PGLO_COMPRESS_CODEC_REGISTRY_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "compress/compressor.h"

namespace pglo {

/// Named codec table. `create large type ... (input = ..., output = ...)`
/// resolves its conversion-routine pair here; users may register their own
/// type-specific compressors ("photographs, satellite images, audio
/// streams, video streams, and documents ... will require tailored
/// compression strategies", §3).
///
/// The built-ins "rle" and "lzss" are pre-registered, plus "none".
class CodecRegistry {
 public:
  CodecRegistry();

  /// Adds `codec` under its own name. Fails on duplicates.
  Status Register(std::unique_ptr<Compressor> codec);

  /// Looks a codec up by name; "" and "none" return nullptr (no
  /// conversion), which callers treat as identity.
  Result<const Compressor*> Get(const std::string& name) const;

  bool Has(const std::string& name) const { return codecs_.count(name) != 0; }

 private:
  std::map<std::string, std::unique_ptr<Compressor>> codecs_;
};

}  // namespace pglo

#endif  // PGLO_COMPRESS_CODEC_REGISTRY_H_
