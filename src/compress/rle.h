#ifndef PGLO_COMPRESS_RLE_H_
#define PGLO_COMPRESS_RLE_H_

#include "compress/compressor.h"

namespace pglo {

/// Byte-oriented run-length codec: the cheap/weak algorithm of §9.2
/// (≈8 instructions per byte; ≈30 % reduction on the benchmark's
/// video-frame data, whose redundancy is run-shaped).
///
/// Format: a sequence of ops.
///   0x00 len u16  lit...   literal run of `len` bytes
///   0x01 len u16  byte     repeated byte, `len` copies
/// Runs shorter than 4 bytes are folded into literals.
class RleCompressor : public Compressor {
 public:
  std::string name() const override { return "rle"; }
  Status Compress(Slice input, Bytes* output) const override;
  Status Decompress(Slice input, size_t raw_size,
                    Bytes* output) const override;
  double compress_instr_per_byte() const override { return 8.0; }
  double decompress_instr_per_byte() const override { return 4.0; }
};

}  // namespace pglo

#endif  // PGLO_COMPRESS_RLE_H_
