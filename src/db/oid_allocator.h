#ifndef PGLO_DB_OID_ALLOCATOR_H_
#define PGLO_DB_OID_ALLOCATOR_H_

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/page.h"

namespace pglo {

/// Persistent monotonically increasing Oid source.
///
/// The high-water mark is written (without fsync) on every allocation; on
/// reopen a slack of kCrashSlack is added so that Oids handed out just
/// before an unsynced crash are never reissued.
class OidAllocator {
 public:
  static constexpr Oid kFirstUserOid = 1000;
  static constexpr Oid kCrashSlack = 1024;

  OidAllocator() = default;
  ~OidAllocator() {
    if (fd_ >= 0) ::close(fd_);
  }
  OidAllocator(const OidAllocator&) = delete;
  OidAllocator& operator=(const OidAllocator&) = delete;

  Status Open(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu_);
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
      return Status::IOError("cannot open oid file: " +
                             std::string(std::strerror(errno)));
    }
    uint8_t buf[8];
    ssize_t n = ::pread(fd_, buf, sizeof(buf), 0);
    if (n == sizeof(buf)) {
      next_ = static_cast<Oid>(DecodeFixed64(buf)) + kCrashSlack;
    } else {
      next_ = kFirstUserOid;
    }
    return Persist();
  }

  Oid Allocate() {
    std::lock_guard<std::mutex> lock(mu_);
    Oid oid = next_++;
    Status s = Persist();
    (void)s;  // best effort; slack covers a lost write
    return oid;
  }

  Oid peek_next() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }

 private:
  /// Assumes mu_ is held.
  Status Persist() {
    uint8_t buf[8];
    EncodeFixed64(buf, next_);
    if (::pwrite(fd_, buf, sizeof(buf), 0) != sizeof(buf)) {
      return Status::IOError("oid persist failed");
    }
    return Status::OK();
  }

  mutable std::mutex mu_;  ///< concurrent backends allocate during LO create
  int fd_ = -1;
  Oid next_ = kFirstUserOid;
};

}  // namespace pglo

#endif  // PGLO_DB_OID_ALLOCATOR_H_
