#include "db/session.h"

#include "common/logging.h"
#include "db/database.h"

namespace pglo {

Session::Session(Database* db, uint32_t backend_id)
    : db_(db), backend_id_(backend_id) {
  slot_ = db_->activity().Acquire(backend_id_);
  PublishThread();
}

Session::~Session() {
  if (txn_ != nullptr) {
    // Connection dropped mid-transaction: roll back, like a backend exit.
    Status s = db_->Abort(txn_);
    if (!s.ok()) {
      PGLO_LOG(Error) << "session abort at destruction failed: "
                      << s.ToString();
    }
    txn_ = nullptr;
  }
  if (slot_ != nullptr) {
    if (CurrentWaitSlot() == &slot_->wait) SetCurrentWaitSlot(nullptr);
    db_->activity().Release(slot_);
    slot_ = nullptr;
  }
}

void Session::PublishThread() {
  if (slot_ != nullptr) SetCurrentWaitSlot(&slot_->wait);
}

void Session::MirrorStats() {
  if (slot_ == nullptr) return;
  slot_->begun.store(stats_.begun, std::memory_order_relaxed);
  slot_->committed.store(stats_.committed, std::memory_order_relaxed);
  slot_->aborted.store(stats_.aborted, std::memory_order_relaxed);
}

Transaction* Session::Begin() {
  PGLO_CHECK(txn_ == nullptr);  // one transaction per session at a time
  PublishThread();
  txn_ = db_->txns().Begin();
  ++stats_.begun;
  if (slot_ != nullptr) {
    slot_->xid.store(txn_->xid(), std::memory_order_relaxed);
    slot_->in_txn.store(1, std::memory_order_release);
    MirrorStats();
  }
  return txn_;
}

Transaction* Session::BeginAsOf(CommitTime as_of) {
  PGLO_CHECK(txn_ == nullptr);
  PublishThread();
  txn_ = db_->txns().BeginAsOf(as_of);
  ++stats_.begun;
  if (slot_ != nullptr) {
    slot_->xid.store(txn_->xid(), std::memory_order_relaxed);
    slot_->in_txn.store(1, std::memory_order_release);
    MirrorStats();
  }
  return txn_;
}

Status Session::RequireTxn() const {
  if (txn_ == nullptr) {
    return Status::InvalidArgument(
        "session has no transaction in progress (Begin() first; Commit() "
        "consumes the transaction)");
  }
  return Status::OK();
}

Result<CommitTime> Session::Commit() {
  PGLO_RETURN_IF_ERROR(RequireTxn());
  PGLO_ASSIGN_OR_RETURN(CommitTime time, db_->Commit(txn_));
  txn_ = nullptr;  // consumed only on success; on error the caller aborts
  ++stats_.committed;
  if (slot_ != nullptr) {
    slot_->in_txn.store(0, std::memory_order_release);
    slot_->xid.store(0, std::memory_order_relaxed);
    MirrorStats();
  }
  return time;
}

Status Session::Abort() {
  PGLO_RETURN_IF_ERROR(RequireTxn());
  Status s = db_->Abort(txn_);
  // Even a failed abort record leaves the transaction unusable.
  txn_ = nullptr;
  ++stats_.aborted;
  if (slot_ != nullptr) {
    slot_->in_txn.store(0, std::memory_order_release);
    slot_->xid.store(0, std::memory_order_relaxed);
    MirrorStats();
  }
  return s;
}

Result<Oid> Session::CreateLo(const LoSpec& spec) {
  PGLO_RETURN_IF_ERROR(RequireTxn());
  return db_->large_objects().Create(txn_, spec);
}

Result<LoDescriptor*> Session::OpenLo(Oid oid, bool writable) {
  PGLO_RETURN_IF_ERROR(RequireTxn());
  PGLO_ASSIGN_OR_RETURN(LoDescriptor * desc,
                        db_->large_objects().Open(txn_, oid, writable));
  ++stats_.lo_opens;
  return desc;
}

Status Session::CloseLo(LoDescriptor* desc) {
  return db_->large_objects().Close(desc);
}

Result<bool> Session::ExistsLo(Oid oid) {
  PGLO_RETURN_IF_ERROR(RequireTxn());
  return db_->large_objects().Exists(txn_, oid);
}

}  // namespace pglo
