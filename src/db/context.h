#ifndef PGLO_DB_CONTEXT_H_
#define PGLO_DB_CONTEXT_H_

#include "compress/codec_registry.h"
#include "db/oid_allocator.h"
#include "device/cpu_cost.h"
#include "device/sim_clock.h"
#include "obs/stats.h"
#include "smgr/smgr_registry.h"
#include "storage/buffer_pool.h"
#include "txn/commit_log.h"
#include "txn/txn_manager.h"
#include "ufs/ufs.h"

namespace pglo {

/// Borrowed handles to the database's shared services, passed to the
/// subsystems (large objects, Inversion, query) so they need not depend on
/// the Database class itself. All pointers are owned by Database and
/// outlive every subsystem.
struct DbContext {
  SimClock* clock = nullptr;
  CpuCostModel* cpu = nullptr;
  SmgrRegistry* smgrs = nullptr;
  BufferPool* pool = nullptr;
  CommitLog* clog = nullptr;
  TxnManager* txns = nullptr;
  UnixFileSystem* ufs = nullptr;
  CodecRegistry* codecs = nullptr;
  OidAllocator* oids = nullptr;
  /// Observability registry; null when stats are disabled — every consumer
  /// must tolerate null and skip its instrumentation.
  StatsRegistry* stats = nullptr;
};

}  // namespace pglo

#endif  // PGLO_DB_CONTEXT_H_
