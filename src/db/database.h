#ifndef PGLO_DB_DATABASE_H_
#define PGLO_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>

#include "db/context.h"
#include "db/session.h"
#include "fault/fault_injector.h"
#include "lo/lo_manager.h"
#include "obs/flight_recorder.h"
#include "obs/wait_event.h"
#include "smgr/disk_smgr.h"
#include "smgr/mm_smgr.h"
#include "smgr/worm_smgr.h"

namespace pglo {

/// Construction parameters for a Database.
struct DatabaseOptions {
  /// Host directory holding all persistent state.
  std::string dir;

  size_t buffer_pool_frames = 256;

  /// Sequential read-ahead window, in pages, for the buffer pool and the
  /// simulated UNIX file system's block cache. A detected sequential scan
  /// faults up to this many blocks with one vectored device command, and
  /// adjacent dirty pages are written back as coalesced runs. 0 disables
  /// all vectored I/O, restoring the historical per-block command
  /// sequence (and its exact simulated times).
  uint32_t readahead_pages = 8;

  /// Device timing models; set `charge_devices` false to run without
  /// simulated-time accounting (unit tests).
  bool charge_devices = true;
  DiskModelParams disk_params;
  WormModelParams worm_params;
  MemoryModelParams memory_params;
  double cpu_mips = 10.0;
  /// Simulated instructions charged per page/block cache access (buffer
  /// pool and OS buffer cache alike). 0 = no per-access CPU accounting.
  uint64_t page_access_instructions = 0;

  /// Magnetic-disk cache in front of the WORM jukebox, in 8 KB blocks
  /// (§9.3). 1250 blocks = 10 MB.
  size_t worm_cache_blocks = 1250;

  /// The simulated UNIX file system hosting u-file / p-file objects.
  UnixFileSystem::Params ufs_params;

  /// When true, every layer reports its physical operations into a
  /// StatsRegistry readable via Database::Stats(). Stats never advance the
  /// simulated clock, so reported times are identical either way.
  bool enable_stats = true;

  /// When true (and stats are enabled), a FlightRecorder is installed in
  /// the registry's recorder slot for the life of the instance: rolling
  /// trace tail, periodic snapshot deltas, slow-op capture, and the typed
  /// event log. On SimulateCrashAndReopen or a failed Open the recorder
  /// dumps to `blackbox_path`. Like stats, never advances the clock.
  bool enable_flight_recorder = true;
  FlightRecorderOptions recorder_options;

  /// When true (and stats are enabled), every blocking point — pool latch,
  /// pin waits, relation latches, commit-log mutexes and fdatasync, the
  /// group-commit queue, retry backoff — reports per-class acquire and
  /// contention counters plus wall-time wait histograms (`wait.*`), and
  /// each Session publishes a live WaitSlot into the per-backend activity
  /// view (DESIGN.md §14). Wall time only: wait instrumentation never
  /// advances the simulated clock.
  bool enable_wait_instrumentation = true;

  /// Contended waits at/above this wall duration also append a
  /// kWaitContended event to the flight recorder's ring (when it is on),
  /// so black-box dumps name the stalls that mattered. 0 records every
  /// contended wait — diagnostic mode, noisy under real contention.
  uint64_t wait_event_threshold_ns = 1000000;

  /// Black-box dump file name, relative to `dir`. Empty disables the
  /// automatic crash/failed-open dump (DumpBlackbox still works).
  std::string blackbox_path = "pglo_blackbox.json";

  /// When set, every stable-storage write in the instance (smgr blocks,
  /// UFS backing store, WORM burns, commit-log and relocation-map appends)
  /// is routed through this injector, enabling crash-at-Nth-write, torn
  /// writes, bit corruption, and transient errors. Null (the default)
  /// leaves every layer on its unwrapped fast path. Borrowed; must outlive
  /// the Database.
  FaultInjector* fault_injector = nullptr;

  /// When false, the commit log skips its fdatasync — a deliberately
  /// broken configuration whose lost commits the crash harness must catch
  /// (only meaningful with a fault injector installed).
  bool synchronous_commit = true;

  /// Group commit (DESIGN.md §13): concurrent committers batch behind one
  /// leader — one buffer-pool flush and one commit-log append + fdatasync
  /// commit the whole group. Off by default; single-session runs with it
  /// off reproduce the historical commit sequence bit-identically.
  bool group_commit = false;

  /// Transient-I/O retry policy applied in the buffer pool and the UFS
  /// block cache. Total attempts (not retries); must exceed the plan's
  /// transient_max_burst for forward progress under injection.
  uint32_t io_retry_attempts = 4;
  uint64_t io_retry_backoff_ns = 200000;
};

/// One POSTGRES-style database instance: storage managers, buffer pool,
/// transaction system, large objects, and the simulated UNIX file system —
/// everything §6–§9 measures, behind one handle.
///
/// Multi-backend: the engine below is internally synchronized, so K
/// threads may work concurrently — one Session each (Connect()). Open,
/// Close, SimulateCrashAndReopen, and stats resets are control-plane
/// operations: callers quiesce the backends first, exactly as the 1993
/// postmaster did.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens (creating on first use) the database under options.dir.
  Status Open(const DatabaseOptions& options);

  /// Flushes everything and shuts down cleanly.
  Status Close();

  /// Drops every volatile structure (buffer pool, OS cache, WORM cache)
  /// without flushing, then reopens from stable storage — a power failure.
  Status SimulateCrashAndReopen();

  // --- backends ---------------------------------------------------------
  /// Opens a backend connection. Each concurrent thread gets its own
  /// Session; the session handles transaction lifecycle and per-backend
  /// accounting. Destroy the session (or let it go out of scope) to
  /// disconnect; an in-progress transaction is then aborted.
  std::unique_ptr<Session> Connect() {
    return std::unique_ptr<Session>(
        new Session(this, next_backend_id_.fetch_add(1) + 1));
  }

  // --- transactions ---------------------------------------------------
  // Deprecated direct transaction control — prefer Connect() + Session,
  // which rejects use-after-commit and attributes work per backend. Kept
  // as shims because single-stream callers predate the Session API; each
  // Begin bumps the `db.deprecated_txn_api` counter so stragglers show up
  // in any stats snapshot. (Commit/Abort stay uncounted: Session routes
  // through them for the LO garbage-collection step.)
  Transaction* Begin();
  Transaction* BeginAsOf(CommitTime as_of);
  /// Commits and then runs large-object garbage collection (§5).
  Result<CommitTime> Commit(Transaction* txn);
  Status Abort(Transaction* txn);
  CommitTime Now() const { return txns_->Now(); }

  // --- subsystems -----------------------------------------------------
  LoManager& large_objects() { return *lo_; }
  UnixFileSystem& ufs() { return *ufs_; }
  SimClock& clock() { return *clock_; }
  CpuCostModel& cpu() { return *cpu_; }
  BufferPool& pool() { return *pool_; }
  SmgrRegistry& smgrs() { return *smgrs_; }
  CodecRegistry& codecs() { return *codecs_; }
  OidAllocator& oids() { return *oids_; }
  TxnManager& txns() { return *txns_; }
  WormSmgr* worm() { return worm_; }
  MagneticDiskModel* disk_device() { return disk_device_.get(); }
  MagneticDiskModel* ufs_device() { return ufs_device_.get(); }
  WormJukeboxModel* worm_device() { return worm_device_.get(); }

  /// Borrowed handles for subsystems built on top (Inversion, query).
  const DbContext& context() const { return ctx_; }

  // --- observability ---------------------------------------------------
  /// Point-in-time copy of every counter/histogram; empty snapshot when
  /// stats are disabled.
  StatsSnapshot Stats() const {
    return stats_ != nullptr ? stats_->Snapshot() : StatsSnapshot{};
  }
  /// Null when options.enable_stats is false.
  StatsRegistry* stats_registry() { return stats_.get(); }
  /// The wait-event table; null when wait instrumentation (or stats) is
  /// off. Components are already bound — this accessor serves tests and
  /// tools that want direct WaitPoint access.
  const WaitStatsTable* waits() const { return waits_.get(); }
  /// The live per-backend activity table (always present; rows exist only
  /// while Sessions are connected).
  BackendActivity& activity() { return activity_; }
  /// The always-on flight recorder; null when disabled (or stats off).
  FlightRecorder* recorder() { return recorder_.get(); }
  /// Appends a structured event to the recorder's log; no-op when the
  /// recorder is off. For layers above the Database (Inversion, query,
  /// benches) that want their milestones in the black box.
  void LogEvent(EventType type, std::string detail, uint64_t a = 0,
                uint64_t b = 0) {
    if (recorder_ != nullptr) {
      recorder_->events().Append(type, std::move(detail), a, b);
    }
  }
  /// Serializes the recorder to the instance's black-box file and returns
  /// its path. Fails when the recorder is off.
  Result<std::string> DumpBlackbox(const std::string& reason);
  /// Full path of the black-box dump file ("" when disabled).
  std::string blackbox_file() const {
    if (options_.blackbox_path.empty()) return std::string();
    std::string dir = options_.dir;
    // Normalize so "dir/" + "/name" style options never produce "//".
    while (!dir.empty() && dir.back() == '/') dir.pop_back();
    return dir + "/" + options_.blackbox_path;
  }
  /// Zeroes every counter and histogram (no-op when disabled).
  void ResetStats() {
    if (stats_ != nullptr) stats_->Reset();
  }

  bool is_open() const { return open_; }
  const DatabaseOptions& options() const { return options_; }
  /// True when the current open is a crash recovery (SimulateCrashAndReopen
  /// rather than a clean Open).
  bool recovered_from_crash() const { return recovered_from_crash_; }

 private:
  Status OpenInternal(bool after_crash);
  Status OpenBody(bool after_crash);
  void TearDown(bool crash);

  DatabaseOptions options_;
  bool open_ = false;
  bool recovered_from_crash_ = false;
  std::atomic<uint32_t> next_backend_id_{0};
  /// Directory fd lent to the buffer pool for commit-time syncfs.
  int dir_fd_ = -1;

  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<CpuCostModel> cpu_;
  std::unique_ptr<StatsRegistry> stats_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<WaitStatsTable> waits_;
  /// Lives across reopens (sessions are quiesced around control-plane
  /// operations, but the table itself is cheap to keep).
  BackendActivity activity_;
  Counter* c_deprecated_txn_api_ = nullptr;
  std::unique_ptr<MagneticDiskModel> disk_device_;
  std::unique_ptr<MagneticDiskModel> ufs_device_;
  std::unique_ptr<MagneticDiskModel> worm_cache_device_;
  std::unique_ptr<WormJukeboxModel> worm_device_;
  std::unique_ptr<MemoryDeviceModel> memory_device_;
  std::unique_ptr<SmgrRegistry> smgrs_;
  WormSmgr* worm_ = nullptr;  // owned by smgrs_
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<CommitLog> clog_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<UnixFileSystem> ufs_;
  std::unique_ptr<CodecRegistry> codecs_;
  std::unique_ptr<OidAllocator> oids_;
  std::unique_ptr<LoManager> lo_;
  DbContext ctx_;
};

}  // namespace pglo

#endif  // PGLO_DB_DATABASE_H_
