#ifndef PGLO_DB_CHECK_H_
#define PGLO_DB_CHECK_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace pglo {

class Database;

/// Result of an offline integrity sweep.
struct IntegrityReport {
  uint64_t objects_checked = 0;   ///< large objects opened and probed
  uint64_t btrees_checked = 0;    ///< index structures validated
  uint64_t entries_checked = 0;   ///< total index entries walked
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
  std::string ToString() const;
};

/// Walks the whole database verifying invariants:
///   * every LO catalog entry instantiates, reports a size, and its first
///     and last bytes are readable (which transitively checksums the
///     touched pages — the buffer pool rejects corrupted page images);
///   * every f-chunk / v-segment index passes Btree::CheckStructure;
///   * object footprints are computable (storage managers agree the
///     backing files exist).
/// Problems are collected rather than failed-fast, so one corrupt object
/// does not mask others.
Result<IntegrityReport> CheckIntegrity(Database* db);

}  // namespace pglo

#endif  // PGLO_DB_CHECK_H_
