#ifndef PGLO_DB_CHECK_H_
#define PGLO_DB_CHECK_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace pglo {

class Database;

/// Result of an offline integrity sweep.
struct IntegrityReport {
  uint64_t objects_checked = 0;   ///< large objects opened and probed
  uint64_t btrees_checked = 0;    ///< index structures validated
  uint64_t entries_checked = 0;   ///< total index entries walked
  /// WORM optical blocks burned but absent from the relocation map —
  /// dead platter space left by a crash between burn and map append.
  /// Informational, not a problem: no logical block points at them, so
  /// write-once semantics make the leak benign (and unreclaimable).
  uint64_t worm_orphaned_blocks = 0;
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
  std::string ToString() const;
};

/// Walks the whole database verifying invariants:
///   * every LO catalog entry instantiates, reports a size, and its first
///     and last bytes are readable (which transitively checksums the
///     touched pages — the buffer pool rejects corrupted page images);
///   * every f-chunk / v-segment index passes Btree::CheckStructure;
///   * object footprints are computable (storage managers agree the
///     backing files exist).
/// Problems are collected rather than failed-fast, so one corrupt object
/// does not mask others.
Result<IntegrityReport> CheckIntegrity(Database* db);

}  // namespace pglo

#endif  // PGLO_DB_CHECK_H_
