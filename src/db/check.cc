#include "db/check.h"

#include "btree/btree.h"
#include "db/database.h"

namespace pglo {

std::string IntegrityReport::ToString() const {
  std::string out = "integrity: " + std::to_string(objects_checked) +
                    " objects, " + std::to_string(btrees_checked) +
                    " btrees (" + std::to_string(entries_checked) +
                    " entries)";
  if (worm_orphaned_blocks > 0) {
    out += ", " + std::to_string(worm_orphaned_blocks) +
           " orphaned WORM block(s)";
  }
  if (problems.empty()) {
    out += " — OK";
  } else {
    out += " — " + std::to_string(problems.size()) + " problem(s):";
    for (const std::string& p : problems) {
      out += "\n  " + p;
    }
  }
  return out;
}

Result<IntegrityReport> CheckIntegrity(Database* db) {
  IntegrityReport report;
  if (db->worm() != nullptr) {
    report.worm_orphaned_blocks = db->worm()->OrphanedBlocks();
  }
  std::unique_ptr<Session> session = db->Connect();
  Transaction* txn = session->Begin();
  PGLO_ASSIGN_OR_RETURN(std::vector<LoManager::ObjectInfo> objects,
                        db->large_objects().List(txn));

  auto note = [&](Oid oid, const std::string& what, const Status& s) {
    report.problems.push_back("lo " + std::to_string(oid) + ": " + what +
                              ": " + s.ToString());
  };

  for (const LoManager::ObjectInfo& obj : objects) {
    ++report.objects_checked;
    // 1. Instantiate and probe the object's readable surface.
    Result<std::unique_ptr<LargeObject>> lo =
        db->large_objects().Instantiate(txn, obj.oid);
    if (!lo.ok()) {
      note(obj.oid, "instantiate", lo.status());
      continue;
    }
    Result<uint64_t> size = lo.value()->Size(txn);
    if (!size.ok()) {
      note(obj.oid, "size", size.status());
      continue;
    }
    // Stream the entire object: every chunk decodes, every touched page's
    // checksum verifies.
    if (*size > 0) {
      Bytes buf(64 * 1024);
      uint64_t off = 0;
      while (off < *size) {
        size_t want = static_cast<size_t>(
            std::min<uint64_t>(buf.size(), *size - off));
        Result<size_t> n = lo.value()->Read(txn, off, want, buf.data());
        if (!n.ok()) {
          note(obj.oid, "read at " + std::to_string(off), n.status());
          break;
        }
        if (n.value() != want) {
          note(obj.oid, "read at " + std::to_string(off),
               Status::Corruption("short read"));
          break;
        }
        off += n.value();
      }
    }
    Result<LargeObject::StorageFootprint> fp = lo.value()->Footprint();
    if (!fp.ok()) {
      note(obj.oid, "footprint", fp.status());
    }
    // 2. Validate the index structures by storage kind.
    std::vector<RelFileId> btrees;
    if (obj.spec.kind == StorageKind::kFChunk && obj.files.index != 0) {
      btrees.push_back(RelFileId{obj.spec.smgr, obj.files.index});
    } else if (obj.spec.kind == StorageKind::kVSegment) {
      if (obj.files.seg_index != 0) {
        btrees.push_back(RelFileId{obj.spec.smgr, obj.files.seg_index});
      }
      if (obj.files.inner_index != 0) {
        btrees.push_back(RelFileId{obj.spec.smgr, obj.files.inner_index});
      }
    }
    for (RelFileId file : btrees) {
      Btree tree(&db->pool(), file);
      Result<uint64_t> entries = tree.CheckStructure();
      ++report.btrees_checked;
      if (!entries.ok()) {
        note(obj.oid, "btree " + std::to_string(file.relfile),
             entries.status());
      } else {
        report.entries_checked += entries.value();
      }
    }
  }
  PGLO_RETURN_IF_ERROR(session->Abort());
  return report;
}

}  // namespace pglo
