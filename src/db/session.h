#ifndef PGLO_DB_SESSION_H_
#define PGLO_DB_SESSION_H_

#include <cstdint>

#include "common/result.h"
#include "lo/lo_manager.h"
#include "obs/wait_event.h"
#include "txn/transaction.h"
#include "txn/xid.h"

namespace pglo {

class Database;

/// Per-backend work counters, owned (and only ever written) by the
/// session's thread — read them after the backend joins.
struct SessionStats {
  uint64_t begun = 0;      ///< transactions started
  uint64_t committed = 0;  ///< successful commits
  uint64_t aborted = 0;    ///< explicit aborts + failed commits rolled back
  uint64_t lo_opens = 0;   ///< large-object descriptors opened
};

/// One backend's connection to a Database — the multi-backend analogue of
/// the 1993 system's per-client backend process. Obtain via
/// Database::Connect(); use from ONE thread at a time (sessions are the
/// unit of concurrency: K threads → K sessions, never a shared session).
///
/// A session runs at most one transaction at a time. Commit() consumes the
/// transaction: the Transaction* obtained from Begin() is invalid
/// afterwards, and a second Commit()/Abort() without a new Begin() is
/// rejected rather than touching freed state.
///
/// The engine below (buffer pool, commit log, access methods) is shared
/// and internally synchronized; everything a session does interleaves
/// safely with other sessions' work.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Starts a read-write transaction. The session must not already have
  /// one in progress.
  Transaction* Begin();

  /// Starts a read-only time-travel transaction as of commit tick `as_of`.
  Transaction* BeginAsOf(CommitTime as_of);

  /// Commits the session's transaction (running large-object garbage
  /// collection afterwards, like Database::Commit) and consumes it. On
  /// success returns the commit tick. On failure the transaction is still
  /// open — Abort() it or retry.
  Result<CommitTime> Commit();

  /// Aborts and consumes the session's transaction.
  Status Abort();

  /// The in-progress transaction, or null between transactions. Pass this
  /// to APIs that take an explicit Transaction*.
  Transaction* txn() const { return txn_; }
  bool in_txn() const { return txn_ != nullptr; }

  // --- large objects under the session's transaction -------------------
  /// Creates a large object; requires an in-progress transaction.
  Result<Oid> CreateLo(const LoSpec& spec);
  /// Opens a descriptor under the session's transaction; closed
  /// automatically when the transaction ends.
  Result<LoDescriptor*> OpenLo(Oid oid, bool writable);
  Status CloseLo(LoDescriptor* desc);
  /// True if `oid` names a large object visible to the session's
  /// transaction.
  Result<bool> ExistsLo(Oid oid);

  Database& db() { return *db_; }
  /// Small dense id (1, 2, 3, ...) for logs and per-backend reporting.
  uint32_t backend_id() const { return backend_id_; }
  const SessionStats& stats() const { return stats_; }

  /// The session's row in the Database's activity table — current wait
  /// class, cumulative waits, txn state — readable by a monitor thread
  /// while the session works (every field is atomic).
  const BackendSlot* activity_slot() const { return slot_; }

 private:
  friend class Database;
  Session(Database* db, uint32_t backend_id);

  /// The session's transaction must be in-progress; shared error otherwise.
  Status RequireTxn() const;

  /// Installs the session's WaitSlot as the calling thread's current slot.
  /// Called at construction and on every Begin, so a session constructed on
  /// one thread and driven from another (Connect on main, work on a worker)
  /// publishes its waits from the thread that actually blocks.
  void PublishThread();
  /// Mirrors the non-atomic SessionStats into the activity slot's atomics.
  void MirrorStats();

  Database* db_;
  uint32_t backend_id_;
  Transaction* txn_ = nullptr;
  SessionStats stats_;
  BackendSlot* slot_ = nullptr;  ///< owned by the Database's activity table
};

}  // namespace pglo

#endif  // PGLO_DB_SESSION_H_
