#include "db/database.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>

#include "common/logging.h"
#include "fault/faulty_smgr.h"
#include "fault/retry.h"
#include "storage/free_space_map.h"

namespace pglo {

namespace {
/// Reserved relfile for the free-space-map sidecar on the disk manager.
/// Fixed relfiles in use elsewhere: 10 = LO catalog, 11 = class catalog,
/// 12-14 = Inversion DIRECTORY/STORAGE/FILESTAT, 15 = index catalog,
/// 16 = Inversion directory index. User relations start at Oid 1000.
constexpr Oid kFsmRelfile = 17;
}  // namespace

Database::Database() = default;

Database::~Database() {
  if (open_) {
    Status s = Close();
    if (!s.ok()) {
      PGLO_LOG(Error) << "database close failed: " << s.ToString();
    }
  }
}

Status Database::Open(const DatabaseOptions& options) {
  if (open_) return Status::InvalidArgument("database already open");
  options_ = options;
  if (options_.dir.empty()) {
    return Status::InvalidArgument("DatabaseOptions.dir is required");
  }
  // mkdir -p: create every missing component of the path.
  for (size_t i = 1; i <= options_.dir.size(); ++i) {
    if (i == options_.dir.size() || options_.dir[i] == '/') {
      ::mkdir(options_.dir.substr(0, i).c_str(), 0755);
    }
  }
  return OpenInternal(/*after_crash=*/false);
}

Status Database::OpenInternal(bool after_crash) {
  Status s = OpenBody(after_crash);
  if (!s.ok()) {
    // An unclean Open is exactly what the black box exists for: whatever
    // the recorder captured before the failure (the recovery-start event,
    // injected faults, repairs attempted) is the post-mortem.
    if (recorder_ != nullptr && !options_.blackbox_path.empty()) {
      Status dump = recorder_->DumpToFile(blackbox_file(),
                                          "open-failed: " + s.ToString());
      if (!dump.ok()) {
        PGLO_LOG(Error) << "blackbox dump failed: " << dump.ToString();
      }
    }
  }
  return s;
}

Status Database::OpenBody(bool after_crash) {
  // A database whose very first commit (the catalog bootstrap) never
  // became durable has no committed state at all: everything under dir is
  // scratch from the interrupted creation, and half-created files (a
  // partially formatted ufs.img, a catalog heap whose relation files were
  // never flushed) cannot be reopened. Wipe and re-initialize.
  bool wiped = false;
  {
    struct stat st;
    const std::string clog_path = options_.dir + "/clog";
    if (::stat(clog_path.c_str(), &st) == 0 &&
        st.st_size < static_cast<off_t>(CommitLog::RecordSize())) {
      std::error_code ec;
      for (const auto& entry :
           std::filesystem::directory_iterator(options_.dir, ec)) {
        // The black-box dump is post-mortem evidence of the interrupted
        // creation, not half-created database state: it survives the wipe.
        if (!options_.blackbox_path.empty() &&
            entry.path().filename() == options_.blackbox_path) {
          continue;
        }
        std::filesystem::remove_all(entry.path(), ec);
      }
      wiped = true;
    }
  }
  recovered_from_crash_ = after_crash;
  clock_ = std::make_unique<SimClock>();
  cpu_ = std::make_unique<CpuCostModel>(clock_.get(), options_.cpu_mips);
  if (options_.enable_stats) {
    stats_ = std::make_unique<StatsRegistry>();
    stats_->SetClock(clock_.get());
  }
  EventLog* events = nullptr;
  if (stats_ != nullptr && options_.enable_flight_recorder) {
    recorder_ = std::make_unique<FlightRecorder>(options_.recorder_options,
                                                 stats_.get());
    stats_->SetRecorder(recorder_.get());
    events = &recorder_->events();
    if (after_crash) events->Append(EventType::kRecoveryStart, "");
    if (wiped) {
      events->Append(EventType::kRecoveryRepair,
                     "wiped half-created database");
    }
  }
  if (recorder_ != nullptr) recorder_->SetActivity(&activity_);
  if (stats_ != nullptr && options_.enable_wait_instrumentation) {
    waits_ = std::make_unique<WaitStatsTable>();
    waits_->Bind(stats_.get(), events, options_.wait_event_threshold_ns);
  }
  if (stats_ != nullptr) {
    c_deprecated_txn_api_ = stats_->counter("db.deprecated_txn_api");
  }

  DeviceModel* disk_dev = nullptr;
  DeviceModel* ufs_dev = nullptr;
  DeviceModel* worm_cache_dev = nullptr;
  DeviceModel* worm_dev = nullptr;
  DeviceModel* mem_dev = nullptr;
  if (options_.charge_devices) {
    disk_device_ = std::make_unique<MagneticDiskModel>(clock_.get(),
                                                       options_.disk_params);
    ufs_device_ = std::make_unique<MagneticDiskModel>(clock_.get(),
                                                      options_.disk_params);
    worm_cache_device_ = std::make_unique<MagneticDiskModel>(
        clock_.get(), options_.disk_params);
    worm_device_ = std::make_unique<WormJukeboxModel>(clock_.get(),
                                                      options_.worm_params);
    memory_device_ = std::make_unique<MemoryDeviceModel>(
        clock_.get(), options_.memory_params);
    disk_dev = disk_device_.get();
    ufs_dev = ufs_device_.get();
    worm_cache_dev = worm_cache_device_.get();
    worm_dev = worm_device_.get();
    mem_dev = memory_device_.get();
    if (stats_ != nullptr) {
      disk_device_->BindStats(stats_.get(), "disk");
      ufs_device_->BindStats(stats_.get(), "ufs");
      worm_cache_device_->BindStats(stats_.get(), "worm-cache");
      worm_device_->BindStats(stats_.get(), "worm");
      memory_device_->BindStats(stats_.get(), "nvram");
    }
  }

  FaultInjector* injector = options_.fault_injector;
  if (injector != nullptr && stats_ != nullptr) {
    injector->BindStats(stats_.get());
  }
  if (injector != nullptr) injector->BindEventLog(events);
  // With an injector installed, the disk and memory managers get the
  // FaultyStorageManager decorator. The WORM manager consults the injector
  // directly instead (its burn and map-append are distinct crash points a
  // wrapper at the block interface could not separate).
  auto maybe_faulty =
      [injector](std::unique_ptr<StorageManager> smgr)
      -> std::unique_ptr<StorageManager> {
    if (injector == nullptr) return smgr;
    return std::make_unique<FaultyStorageManager>(std::move(smgr), injector);
  };

  smgrs_ = std::make_unique<SmgrRegistry>();
  if (injector != nullptr || options_.io_retry_attempts > 1) {
    RetryPolicy policy;
    policy.max_attempts = options_.io_retry_attempts;
    policy.backoff_start_ns = options_.io_retry_backoff_ns;
    policy.clock = clock_.get();
    if (stats_ != nullptr) {
      policy.retries = stats_->counter("fault.io_retries");
    }
    policy.events = events;
    if (waits_ != nullptr) {
      policy.wait = waits_->point(WaitEvent::kIoRetryBackoff);
    }
    smgrs_->SetRetryPolicy(policy);
  }
  PGLO_RETURN_IF_ERROR(smgrs_->Register(
      kSmgrDisk, maybe_faulty(std::make_unique<DiskSmgr>(
                     options_.dir + "/disk", disk_dev))));
  PGLO_RETURN_IF_ERROR(smgrs_->Register(
      kSmgrMemory, maybe_faulty(std::make_unique<MainMemorySmgr>(mem_dev))));
  auto worm = std::make_unique<WormSmgr>(options_.dir, worm_dev,
                                         worm_cache_dev,
                                         options_.worm_cache_blocks);
  worm->SetFaultInjector(injector);
  worm->SetEventLog(events);
  PGLO_RETURN_IF_ERROR(worm->Open());
  worm_ = worm.get();
  PGLO_RETURN_IF_ERROR(smgrs_->Register(kSmgrWorm, std::move(worm)));
  if (stats_ != nullptr) {
    for (uint8_t id : {kSmgrDisk, kSmgrMemory, kSmgrWorm}) {
      Result<StorageManager*> smgr = smgrs_->Get(id);
      if (smgr.ok()) smgr.value()->BindStats(stats_.get());
    }
  }

  pool_ = std::make_unique<BufferPool>(smgrs_.get(),
                                       options_.buffer_pool_frames);
  if (stats_ != nullptr) pool_->BindStats(stats_.get());
  pool_->BindWaits(waits_.get());
  pool_->SetEventLog(events);
  pool_->SetReadAhead(options_.readahead_pages);
  // Commit-time force-to-disk syncs the whole filesystem in one syscall
  // (the database directory holds every data file): with K backends each
  // owning relation files, per-file fdatasyncs would cost a commit batch
  // 2K serial journal commits; one syncfs costs one.
  dir_fd_ = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd_ >= 0) pool_->SetSyncFile(dir_fd_);
  if (options_.charge_devices && options_.page_access_instructions > 0) {
    pool_->SetAccessCost(cpu_.get(), options_.page_access_instructions);
  }

  // Persistent free-space map (DESIGN.md §15). The sidecar is created only
  // once Vacuum registers entries, so fresh never-vacuumed databases never
  // see the file and stay bit-identical. The map is advisory, so neither a
  // failed load nor a failed post-crash validation may fail the open —
  // both degrade to an empty map.
  pool_->fsm()->SetBackingFile(RelFileId{kSmgrDisk, kFsmRelfile});
  if (stats_ != nullptr) pool_->fsm()->BindStats(stats_.get());
  if (!pool_->fsm()->Load().ok()) pool_->fsm()->ForgetAll();
  if (after_crash) {
    Result<FsmCheckReport> fsm_check =
        pool_->fsm()->CheckAgainstStorage(/*fix=*/true);
    if (!fsm_check.ok()) {
      pool_->fsm()->ForgetAll();
    } else if (fsm_check.value().entries_checked > 0 && events != nullptr) {
      events->Append(EventType::kRecoveryFsmRebuild, "fsm",
                     fsm_check.value().entries_repaired,
                     fsm_check.value().entries_dropped);
    }
  }

  // Fresh database iff there is no commit log yet.
  struct stat st;
  bool fresh = ::stat((options_.dir + "/clog").c_str(), &st) != 0;

  clog_ = std::make_unique<CommitLog>();
  clog_->SetFaultInjector(injector);
  clog_->SetSynchronous(options_.synchronous_commit);
  clog_->BindWaits(waits_.get());
  PGLO_RETURN_IF_ERROR(clog_->Open(options_.dir + "/clog"));
  txns_ = std::make_unique<TxnManager>(clog_.get(), pool_.get());
  txns_->SetGroupCommit(options_.group_commit);
  txns_->BindEventLog(events);
  txns_->BindWaits(waits_.get());
  txns_->RestoreNextXid();
  PGLO_RETURN_IF_ERROR(txns_->OpenXidFile(options_.dir + "/xid"));

  oids_ = std::make_unique<OidAllocator>();
  PGLO_RETURN_IF_ERROR(oids_->Open(options_.dir + "/oids"));

  ufs_ = std::make_unique<UnixFileSystem>(ufs_dev, options_.ufs_params);
  ufs_->SetFaultInjector(injector);
  if (injector != nullptr || options_.io_retry_attempts > 1) {
    RetryPolicy ufs_policy;
    ufs_policy.max_attempts = options_.io_retry_attempts;
    ufs_policy.backoff_start_ns = options_.io_retry_backoff_ns;
    ufs_policy.clock = clock_.get();
    if (stats_ != nullptr) {
      ufs_policy.retries = stats_->counter("fault.io_retries");
    }
    ufs_policy.events = events;
    if (waits_ != nullptr) {
      ufs_policy.wait = waits_->point(WaitEvent::kIoRetryBackoff);
    }
    ufs_->SetRetryPolicy(ufs_policy);
  }
  // Force-at-commit covers the simulated UNIX file system too: u-file and
  // p-file bytes live outside the buffer pool, so without this sync a
  // committed write could evaporate with the OS cache at the next crash.
  txns_->AddCommitForceHook([this] { return ufs_->Sync(); });
  ufs_->SetReadAhead(options_.readahead_pages);
  if (options_.charge_devices && options_.page_access_instructions > 0) {
    ufs_->SetAccessCost(cpu_.get(), options_.page_access_instructions);
  }
  if (stats_ != nullptr) ufs_->BindStats(stats_.get());
  if (fresh) {
    PGLO_RETURN_IF_ERROR(ufs_->Format(options_.dir + "/ufs.img"));
  } else {
    PGLO_RETURN_IF_ERROR(ufs_->Mount(options_.dir + "/ufs.img"));
  }

  codecs_ = std::make_unique<CodecRegistry>();

  ctx_ = DbContext{clock_.get(), cpu_.get(),  smgrs_.get(),
                   pool_.get(),  clog_.get(), txns_.get(),
                   ufs_.get(),   codecs_.get(), oids_.get(),
                   stats_.get()};

  lo_ = std::make_unique<LoManager>(ctx_);
  if (fresh) {
    Transaction* boot = txns_->Begin();
    PGLO_RETURN_IF_ERROR(lo_->Bootstrap(boot));
    PGLO_RETURN_IF_ERROR(txns_->Commit(boot).status());
  }

  open_ = true;
  return Status::OK();
}

void Database::TearDown(bool crash) {
  if (crash) {
    // Volatile state evaporates: nothing may be flushed.
    if (pool_ != nullptr) pool_->CrashDiscardAll();
    if (ufs_ != nullptr) ufs_->CrashDiscard();
    if (worm_ != nullptr) worm_->DropCache();
  }
  // The injector is borrowed and outlives us; its event-log binding must
  // not outlive the recorder it points into.
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->BindEventLog(nullptr);
  }
  // Destruction order: consumers before providers.
  lo_.reset();
  codecs_.reset();
  ufs_.reset();
  oids_.reset();
  txns_.reset();
  clog_.reset();
  pool_.reset();
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
    dir_fd_ = -1;
  }
  worm_ = nullptr;
  smgrs_.reset();
  memory_device_.reset();
  worm_device_.reset();
  worm_cache_device_.reset();
  ufs_device_.reset();
  disk_device_.reset();
  if (stats_ != nullptr) stats_->SetRecorder(nullptr);
  recorder_.reset();
  waits_.reset();
  c_deprecated_txn_api_ = nullptr;
  stats_.reset();
  cpu_.reset();
  clock_.reset();
  ctx_ = DbContext{};
  open_ = false;
}

Status Database::Close() {
  if (!open_) return Status::OK();
  // Persist the free-space map before the final flush so its sidecar pages
  // ride the same durability pass as everything else.
  PGLO_RETURN_IF_ERROR(pool_->fsm()->Persist());
  PGLO_RETURN_IF_ERROR(pool_->FlushAll());
  PGLO_RETURN_IF_ERROR(ufs_->Sync());
  TearDown(/*crash=*/false);
  return Status::OK();
}

Result<std::string> Database::DumpBlackbox(const std::string& reason) {
  if (recorder_ == nullptr) {
    return Status::InvalidArgument("flight recorder is not enabled");
  }
  std::string path = blackbox_file();
  if (path.empty()) path = options_.dir + "/pglo_blackbox.json";
  PGLO_RETURN_IF_ERROR(recorder_->DumpToFile(path, reason));
  return path;
}

Status Database::SimulateCrashAndReopen() {
  if (!open_) return Status::InvalidArgument("database not open");
  // Serialize the black box before the "power" goes: the dump is the
  // flight recorder's whole point — the history leading up to this crash.
  if (recorder_ != nullptr && !options_.blackbox_path.empty()) {
    Status dump = recorder_->DumpToFile(blackbox_file(), "simulated-crash");
    if (!dump.ok()) {
      PGLO_LOG(Error) << "blackbox dump failed: " << dump.ToString();
    }
  }
  TearDown(/*crash=*/true);
  if (options_.fault_injector != nullptr) {
    // Unsynced log tails (e.g. synchronous_commit=false appends) do not
    // survive the power failure.
    PGLO_RETURN_IF_ERROR(options_.fault_injector->ApplyVolatileLoss());
  }
  return OpenInternal(/*after_crash=*/true);
}

Transaction* Database::Begin() {
  StatInc(c_deprecated_txn_api_);
  return txns_->Begin();
}

Transaction* Database::BeginAsOf(CommitTime as_of) {
  StatInc(c_deprecated_txn_api_);
  return txns_->BeginAsOf(as_of);
}

Result<CommitTime> Database::Commit(Transaction* txn) {
  PGLO_ASSIGN_OR_RETURN(CommitTime time, txns_->Commit(txn));
  PGLO_RETURN_IF_ERROR(lo_->CollectGarbage());
  return time;
}

Status Database::Abort(Transaction* txn) {
  PGLO_RETURN_IF_ERROR(txns_->Abort(txn));
  return lo_->CollectGarbage();
}

}  // namespace pglo
