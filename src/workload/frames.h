#ifndef PGLO_WORKLOAD_FRAMES_H_
#define PGLO_WORKLOAD_FRAMES_H_

#include "common/bytes.h"
#include "common/random.h"

namespace pglo {

/// Synthetic video-frame workload for the §9 benchmark.
///
/// The paper's 51.2 MB object is "logically considered a group of 12,500
/// frames, each of size 4096 bytes", and its two compression algorithms
/// achieve ~30 % (8 instr/byte) and ~50 % (20 instr/byte) on that data. We
/// do not have the authors' frames, so this generator synthesizes frames
/// whose redundancy structure lets the real codecs land at the same marks:
///   * run-shaped redundancy (flat image regions) — both RLE and LZSS
///     remove it;
///   * back-reference redundancy (repeated textures) — only LZSS removes
///     it;
///   * incompressible noise.
/// The default mix is calibrated so RleCompressor reduces a frame by ≈30 %
/// and LzssCompressor by ≈50 %, reproducing the paper's codec pair.
struct FrameParams {
  size_t frame_size = 4096;
  // Calibrated (see tests/compress_test.cc) so that over the benchmark
  // object RleCompressor reduces ≈30 % and LzssCompressor ≈53 %, the
  // paper's two algorithms. The strong codec sits a few points past 50 %
  // deliberately: two compressed 8000-byte chunks fit one 8 KB page only
  // when each shrinks below ~49.2 % of raw (page/tuple headers eat the
  // rest), and Figure 1's "50 % halves the storage" requires nearly every
  // chunk to pair — so the paper's 50 % algorithm must also have cleared
  // that bar with margin on most chunks.
  double run_fraction = 0.15;   ///< probability mass of flat runs
  double copy_fraction = 0.32;  ///< probability mass of repeated texture
  uint32_t min_run = 16, max_run = 64;
  uint32_t min_copy = 24, max_copy = 64;
  uint32_t min_noise = 8, max_noise = 24;
};

/// Deterministically generates frame `index` of the benchmark object.
/// Frames differ (so replaced frames are distinguishable) but share the
/// same statistics.
Bytes MakeFrame(uint64_t seed, uint64_t index, const FrameParams& params);

/// Measured reduction (1 - compressed/raw) of a codec over `n` frames.
class Compressor;
double MeasureReduction(const Compressor& codec, uint64_t seed, int n,
                        const FrameParams& params);

}  // namespace pglo

#endif  // PGLO_WORKLOAD_FRAMES_H_
