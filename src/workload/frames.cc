#include "workload/frames.h"

#include "compress/compressor.h"

namespace pglo {

Bytes MakeFrame(uint64_t seed, uint64_t index, const FrameParams& params) {
  // Mix the frame index into the seed so each frame is distinct yet
  // reproducible.
  Random rng(seed * 0x9e3779b97f4a7c15ull + index + 1);
  Bytes frame;
  frame.reserve(params.frame_size);
  while (frame.size() < params.frame_size) {
    double dice = rng.NextDouble();
    size_t remaining = params.frame_size - frame.size();
    if (dice < params.run_fraction) {
      size_t run = std::min<size_t>(
          rng.Range(params.min_run, params.max_run), remaining);
      frame.insert(frame.end(), run, static_cast<uint8_t>(rng.Next()));
    } else if (dice < params.run_fraction + params.copy_fraction &&
               frame.size() > params.max_copy) {
      size_t len = std::min<size_t>(
          rng.Range(params.min_copy, params.max_copy), remaining);
      size_t src = rng.Uniform(frame.size() - len);
      // Self-copy of an earlier region: LZSS finds it, RLE cannot.
      for (size_t i = 0; i < len; ++i) frame.push_back(frame[src + i]);
    } else {
      size_t lit = std::min<size_t>(
          rng.Range(params.min_noise, params.max_noise), remaining);
      for (size_t i = 0; i < lit; ++i) {
        frame.push_back(static_cast<uint8_t>(rng.Next()));
      }
    }
  }
  return frame;
}

double MeasureReduction(const Compressor& codec, uint64_t seed, int n,
                        const FrameParams& params) {
  uint64_t raw = 0, compressed = 0;
  for (int i = 0; i < n; ++i) {
    Bytes frame = MakeFrame(seed, i, params);
    Bytes out;
    Status s = codec.Compress(Slice(frame), &out);
    if (!s.ok()) return 0.0;
    raw += frame.size();
    compressed += std::min(out.size(), frame.size());
  }
  return 1.0 - static_cast<double>(compressed) / static_cast<double>(raw);
}

}  // namespace pglo
