#include "inversion/inversion_fs.h"

#include "common/logging.h"

namespace pglo {

namespace {
// Reserved relation files for the metadata classes (on the disk smgr).
constexpr Oid kDirectoryRelfile = 12;
constexpr Oid kStorageRelfile = 13;
constexpr Oid kFilestatRelfile = 14;
// (15 is the query layer's index catalog.)
constexpr Oid kDirIndexRelfile = 16;
constexpr uint8_t kMetaSmgr = kSmgrDisk;
}  // namespace

// ---------------------------------------------------------------------------
// InversionFile

Status InversionFile::MarkDirty() {
  if (!dirty_) {
    dirty_ = true;
    // Stamp mtime on first mutation under this handle (not per write — one
    // FILESTAT version per open-for-write, not per I/O).
    PGLO_RETURN_IF_ERROR(fs_->TouchMtime(txn_, file_id_));
  }
  return Status::OK();
}

Result<size_t> InversionFile::Read(size_t n, uint8_t* buf) {
  TraceSpan span(fs_->ctx_.stats, fs_->h_file_read_, "inversion.file.read");
  return cursor_.Read(n, buf);
}

Result<Bytes> InversionFile::Read(size_t n) {
  TraceSpan span(fs_->ctx_.stats, fs_->h_file_read_, "inversion.file.read");
  return cursor_.Read(n);
}

Status InversionFile::Write(Slice data) {
  TraceSpan span(fs_->ctx_.stats, fs_->h_file_write_, "inversion.file.write");
  if (!writable_) {
    return Status::PermissionDenied("file opened read-only");
  }
  PGLO_RETURN_IF_ERROR(cursor_.Write(data));
  return MarkDirty();
}

Status InversionFile::Truncate(uint64_t size) {
  if (!writable_) {
    return Status::PermissionDenied("file opened read-only");
  }
  PGLO_RETURN_IF_ERROR(MarkDirty());
  return cursor_.Truncate(size);
}

// ---------------------------------------------------------------------------
// Record codecs

Bytes InversionFs::EncodeDir(const DirRecord& r) {
  Bytes out;
  PutLengthPrefixed(&out, Slice(r.name));
  PutFixed64(&out, r.file_id);
  PutFixed64(&out, r.parent);
  out.push_back(r.is_dir ? 1 : 0);
  return out;
}

Result<InversionFs::DirRecord> InversionFs::DecodeDir(Slice image) {
  DirRecord r;
  ByteReader reader{image};
  Slice name;
  uint64_t file_id, parent;
  if (!reader.GetLengthPrefixed(&name) || !reader.GetFixed64(&file_id) ||
      !reader.GetFixed64(&parent) || reader.remaining() < 1) {
    return Status::Corruption("bad DIRECTORY record");
  }
  r.name = name.ToString();
  r.file_id = file_id;
  r.parent = parent;
  r.is_dir = image[image.size() - 1] != 0;
  return r;
}

Bytes InversionFs::EncodeStorage(FileId id, Oid lo) {
  Bytes out;
  PutFixed64(&out, id);
  PutFixed32(&out, lo);
  return out;
}

Result<std::pair<FileId, Oid>> InversionFs::DecodeStorage(Slice image) {
  ByteReader reader{image};
  uint64_t id;
  uint32_t lo;
  if (!reader.GetFixed64(&id) || !reader.GetFixed32(&lo)) {
    return Status::Corruption("bad STORAGE record");
  }
  return std::make_pair(id, lo);
}

Bytes InversionFs::EncodeStat(const StatInfo& st) {
  Bytes out;
  PutFixed64(&out, st.file_id);
  PutFixed32(&out, st.owner);
  PutFixed16(&out, st.mode);
  PutFixed64(&out, st.ctime_ns);
  PutFixed64(&out, st.mtime_ns);
  return out;
}

Result<InversionFs::StatInfo> InversionFs::DecodeStat(Slice image) {
  StatInfo st;
  ByteReader reader{image};
  uint64_t file_id, ctime, mtime;
  uint32_t owner;
  uint16_t mode;
  if (!reader.GetFixed64(&file_id) || !reader.GetFixed32(&owner) ||
      !reader.GetFixed16(&mode) || !reader.GetFixed64(&ctime) ||
      !reader.GetFixed64(&mtime)) {
    return Status::Corruption("bad FILESTAT record");
  }
  st.file_id = file_id;
  st.owner = owner;
  st.mode = mode;
  st.ctime_ns = ctime;
  st.mtime_ns = mtime;
  return st;
}

// ---------------------------------------------------------------------------
// InversionFs

InversionFs::InversionFs(const DbContext& ctx, LoManager* lo)
    : ctx_(ctx),
      lo_(lo),
      directory_(ctx.pool, RelFileId{kMetaSmgr, kDirectoryRelfile}),
      storage_(ctx.pool, RelFileId{kMetaSmgr, kStorageRelfile}),
      filestat_(ctx.pool, RelFileId{kMetaSmgr, kFilestatRelfile}),
      dir_index_(ctx.pool, RelFileId{kMetaSmgr, kDirIndexRelfile}) {
  if (ctx_.stats != nullptr) {
    c_path_resolutions_ = ctx_.stats->counter("inversion.path_resolutions");
    c_index_probes_ = ctx_.stats->counter("inversion.index_probes");
    h_resolve_ = ctx_.stats->histogram("inversion.resolve_ns");
    h_file_read_ = ctx_.stats->histogram("inversion.file.read_ns");
    h_file_write_ = ctx_.stats->histogram("inversion.file.write_ns");
    dir_index_.BindStats(ctx_.stats);
  }
}

uint64_t InversionFs::DirKey(FileId parent, const std::string& name) {
  // FNV-1a over the name, mixed with the parent id.
  uint64_t h = 1469598103934665603ull ^ parent;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Status InversionFs::IndexDirEntry(const DirRecord& rec, Tid tid) {
  return dir_index_.InsertIfAbsent(DirKey(rec.parent, rec.name), tid);
}

Status InversionFs::Bootstrap(Transaction* txn) {
  // Every step is individually idempotent so that a crash anywhere inside
  // a previous bootstrap (files created but empty, index half-built, root
  // record missing) is repaired by simply running Bootstrap again. The
  // old short-circuit on the first file's existence left every later step
  // unfinished forever after a mid-bootstrap crash.
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, ctx_.smgrs->Get(kMetaSmgr));
  for (Oid relfile :
       {kDirectoryRelfile, kStorageRelfile, kFilestatRelfile}) {
    if (!smgr->FileExists(relfile)) {
      PGLO_RETURN_IF_ERROR(
          HeapClass::Create(ctx_.pool, RelFileId{kMetaSmgr, relfile}));
    }
  }
  if (smgr->FileExists(kDirIndexRelfile)) {
    // A b-tree needs its meta and root pages; fewer means the previous
    // bootstrap crashed between CreateFile and flushing them. Rebuild from
    // scratch — the index is empty at this point in bootstrap anyway.
    PGLO_ASSIGN_OR_RETURN(BlockNumber blocks,
                          smgr->NumBlocks(kDirIndexRelfile));
    if (blocks < 2) {
      ctx_.pool->DiscardFile(RelFileId{kMetaSmgr, kDirIndexRelfile},
                             /*discard_dirty=*/true);
      PGLO_RETURN_IF_ERROR(smgr->DropFile(kDirIndexRelfile));
      PGLO_RETURN_IF_ERROR(
          Btree::Create(ctx_.pool, RelFileId{kMetaSmgr, kDirIndexRelfile}));
    }
  } else {
    PGLO_RETURN_IF_ERROR(
        Btree::Create(ctx_.pool, RelFileId{kMetaSmgr, kDirIndexRelfile}));
  }
  // Root directory: "/" with file-id 1, parent 0.
  Result<std::pair<DirRecord, Tid>> existing_root =
      LookupIn(txn, kInvalidFileId, "/");
  if (existing_root.ok()) return Status::OK();
  if (!existing_root.status().IsNotFound()) return existing_root.status();
  DirRecord root{"/", kRootFileId, kInvalidFileId, /*is_dir=*/true};
  PGLO_ASSIGN_OR_RETURN(Tid root_tid,
                        directory_.Insert(txn, Slice(EncodeDir(root))));
  PGLO_RETURN_IF_ERROR(IndexDirEntry(root, root_tid));
  StatInfo st;
  st.file_id = kRootFileId;
  st.is_dir = true;
  st.mode = 0755;
  st.ctime_ns = st.mtime_ns = NowNs();
  PGLO_RETURN_IF_ERROR(filestat_.Insert(txn, Slice(EncodeStat(st))).status());
  return Status::OK();
}

Result<std::vector<std::string>> InversionFs::SplitPath(
    const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (j == i) return Status::InvalidArgument("empty path component");
    parts.push_back(path.substr(i, j - i));
    i = j + 1;
  }
  return parts;
}

Result<std::pair<InversionFs::DirRecord, Tid>> InversionFs::LookupIn(
    Transaction* txn, FileId parent, const std::string& name) {
  // Index probe: candidates are (possibly colliding or stale) tuple
  // addresses; visibility and the actual (parent, name) are rechecked.
  StatInc(c_index_probes_);
  PGLO_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                        dir_index_.Lookup(DirKey(parent, name)));
  for (uint64_t packed : candidates) {
    Tid tid = Btree::UnpackTid(packed);
    Result<Bytes> payload = directory_.Get(txn, tid);
    if (!payload.ok()) {
      if (payload.status().IsNotFound()) continue;  // invisible version
      return payload.status();
    }
    Result<DirRecord> rec = DecodeDir(Slice(payload.value()));
    if (!rec.ok()) continue;  // recycled slot
    if (rec.value().parent == parent && rec.value().name == name) {
      return std::make_pair(std::move(rec).value(), tid);
    }
  }
  return Status::NotFound("no such file or directory: " + name);
}

Result<std::pair<InversionFs::DirRecord, Tid>> InversionFs::Resolve(
    Transaction* txn, const std::string& path) {
  TraceSpan span(ctx_.stats, h_resolve_, "inversion.resolve");
  StatInc(c_path_resolutions_);
  PGLO_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  DirRecord current{"/", kRootFileId, kInvalidFileId, true};
  Tid tid{0, 0};  // root's tid is never needed by callers that mutate
  for (const std::string& part : parts) {
    if (!current.is_dir) {
      return Status::InvalidArgument("not a directory in path: " + path);
    }
    PGLO_ASSIGN_OR_RETURN(auto found, LookupIn(txn, current.file_id, part));
    current = found.first;
    tid = found.second;
  }
  return std::make_pair(current, tid);
}

Result<std::pair<FileId, std::string>> InversionFs::ResolveParent(
    Transaction* txn, const std::string& path) {
  TraceSpan span(ctx_.stats, h_resolve_, "inversion.resolve_parent");
  StatInc(c_path_resolutions_);
  PGLO_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Status::InvalidArgument("cannot operate on the root directory");
  }
  std::string leaf = parts.back();
  parts.pop_back();
  FileId parent = kRootFileId;
  for (const std::string& part : parts) {
    PGLO_ASSIGN_OR_RETURN(auto found, LookupIn(txn, parent, part));
    if (!found.first.is_dir) {
      return Status::InvalidArgument("not a directory in path: " + path);
    }
    parent = found.first.file_id;
  }
  return std::make_pair(parent, leaf);
}

Result<FileId> InversionFs::MkDir(Transaction* txn, const std::string& path) {
  PGLO_ASSIGN_OR_RETURN(auto parent_leaf, ResolveParent(txn, path));
  auto [parent, leaf] = parent_leaf;
  if (LookupIn(txn, parent, leaf).ok()) {
    return Status::AlreadyExists("path exists: " + path);
  }
  FileId id = ctx_.oids->Allocate();
  DirRecord rec{leaf, id, parent, /*is_dir=*/true};
  PGLO_ASSIGN_OR_RETURN(Tid dir_tid,
                        directory_.Insert(txn, Slice(EncodeDir(rec))));
  PGLO_RETURN_IF_ERROR(IndexDirEntry(rec, dir_tid));
  StatInfo st;
  st.file_id = id;
  st.is_dir = true;
  st.mode = 0755;
  st.ctime_ns = st.mtime_ns = NowNs();
  PGLO_RETURN_IF_ERROR(filestat_.Insert(txn, Slice(EncodeStat(st))).status());
  return id;
}

Result<FileId> InversionFs::Create(Transaction* txn, const std::string& path,
                                   const LoSpec& spec) {
  PGLO_ASSIGN_OR_RETURN(auto parent_leaf, ResolveParent(txn, path));
  auto [parent, leaf] = parent_leaf;
  if (LookupIn(txn, parent, leaf).ok()) {
    return Status::AlreadyExists("path exists: " + path);
  }
  PGLO_ASSIGN_OR_RETURN(Oid lo_oid, lo_->Create(txn, spec));
  FileId id = ctx_.oids->Allocate();
  DirRecord rec{leaf, id, parent, /*is_dir=*/false};
  PGLO_ASSIGN_OR_RETURN(Tid dir_tid,
                        directory_.Insert(txn, Slice(EncodeDir(rec))));
  PGLO_RETURN_IF_ERROR(IndexDirEntry(rec, dir_tid));
  PGLO_RETURN_IF_ERROR(
      storage_.Insert(txn, Slice(EncodeStorage(id, lo_oid))).status());
  StatInfo st;
  st.file_id = id;
  st.mode = 0644;
  st.ctime_ns = st.mtime_ns = NowNs();
  PGLO_RETURN_IF_ERROR(filestat_.Insert(txn, Slice(EncodeStat(st))).status());
  return id;
}

Result<std::pair<Oid, Tid>> InversionFs::FindStorage(Transaction* txn,
                                                     FileId id) {
  HeapScan scan(&storage_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(auto rec, DecodeStorage(Slice(payload)));
    if (rec.first == id) return std::make_pair(rec.second, tid);
  }
  return Status::NotFound("no STORAGE record for file");
}

Result<std::pair<InversionFs::StatInfo, Tid>> InversionFs::FindStat(
    Transaction* txn, FileId id) {
  HeapScan scan(&filestat_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(StatInfo st, DecodeStat(Slice(payload)));
    if (st.file_id == id) return std::make_pair(st, tid);
  }
  return Status::NotFound("no FILESTAT record for file");
}

Result<std::unique_ptr<InversionFile>> InversionFs::Open(
    Transaction* txn, const std::string& path, bool writable) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  if (found.first.is_dir) {
    return Status::InvalidArgument("is a directory: " + path);
  }
  PGLO_ASSIGN_OR_RETURN(auto storage, FindStorage(txn, found.first.file_id));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        lo_->Instantiate(txn, storage.first));
  return std::unique_ptr<InversionFile>(new InversionFile(
      this, txn, found.first.file_id, std::move(lo), writable));
}

Status InversionFs::Remove(Transaction* txn, const std::string& path) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  if (found.first.is_dir) {
    return Status::InvalidArgument("is a directory: " + path);
  }
  FileId id = found.first.file_id;
  PGLO_RETURN_IF_ERROR(directory_.Delete(txn, found.second));
  PGLO_ASSIGN_OR_RETURN(auto storage, FindStorage(txn, id));
  PGLO_RETURN_IF_ERROR(storage_.Delete(txn, storage.second));
  PGLO_ASSIGN_OR_RETURN(auto st, FindStat(txn, id));
  PGLO_RETURN_IF_ERROR(filestat_.Delete(txn, st.second));
  return lo_->Unlink(txn, storage.first, /*destroy_storage=*/true);
}

Status InversionFs::RmDir(Transaction* txn, const std::string& path) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  if (!found.first.is_dir) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  if (found.first.file_id == kRootFileId) {
    return Status::InvalidArgument("cannot remove the root directory");
  }
  PGLO_ASSIGN_OR_RETURN(std::vector<DirEntryInfo> entries,
                        ReadDir(txn, path));
  if (!entries.empty()) {
    return Status::InvalidArgument("directory not empty: " + path);
  }
  PGLO_RETURN_IF_ERROR(directory_.Delete(txn, found.second));
  PGLO_ASSIGN_OR_RETURN(auto st, FindStat(txn, found.first.file_id));
  return filestat_.Delete(txn, st.second);
}

Status InversionFs::Rename(Transaction* txn, const std::string& from,
                           const std::string& to) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, from));
  if (found.first.file_id == kRootFileId) {
    return Status::InvalidArgument("cannot rename the root directory");
  }
  PGLO_ASSIGN_OR_RETURN(auto dest, ResolveParent(txn, to));
  auto [new_parent, new_leaf] = dest;
  if (LookupIn(txn, new_parent, new_leaf).ok()) {
    return Status::AlreadyExists("destination exists: " + to);
  }
  DirRecord rec = found.first;
  rec.name = new_leaf;
  rec.parent = new_parent;
  PGLO_ASSIGN_OR_RETURN(
      Tid new_tid, directory_.Update(txn, found.second, Slice(EncodeDir(rec))));
  return IndexDirEntry(rec, new_tid);
}

Result<InversionFs::StatInfo> InversionFs::Stat(Transaction* txn,
                                                const std::string& path) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  PGLO_ASSIGN_OR_RETURN(auto st, FindStat(txn, found.first.file_id));
  StatInfo info = st.first;
  info.is_dir = found.first.is_dir;
  if (!found.first.is_dir) {
    PGLO_ASSIGN_OR_RETURN(auto storage, FindStorage(txn, found.first.file_id));
    info.large_object = storage.first;
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          lo_->Instantiate(txn, storage.first));
    PGLO_ASSIGN_OR_RETURN(info.size, lo->Size(txn));
  }
  return info;
}

Result<std::vector<InversionFs::DirEntryInfo>> InversionFs::ReadDir(
    Transaction* txn, const std::string& path) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  if (!found.first.is_dir) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  std::vector<DirEntryInfo> out;
  HeapScan scan(&directory_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(DirRecord rec, DecodeDir(Slice(payload)));
    if (rec.parent == found.first.file_id && rec.file_id != kRootFileId) {
      out.push_back({rec.name, rec.file_id, rec.is_dir});
    }
  }
  return out;
}

Result<bool> InversionFs::Exists(Transaction* txn, const std::string& path) {
  Result<std::pair<DirRecord, Tid>> found = Resolve(txn, path);
  if (found.ok()) return true;
  if (found.status().IsNotFound()) return false;
  return found.status();
}

Result<Oid> InversionFs::LargeObjectOf(Transaction* txn,
                                       const std::string& path) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  if (found.first.is_dir) {
    return Status::InvalidArgument("is a directory: " + path);
  }
  PGLO_ASSIGN_OR_RETURN(auto storage, FindStorage(txn, found.first.file_id));
  return storage.first;
}

Status InversionFs::SetMode(Transaction* txn, const std::string& path,
                            uint16_t mode) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  PGLO_ASSIGN_OR_RETURN(auto st, FindStat(txn, found.first.file_id));
  StatInfo info = st.first;
  info.mode = mode;
  return filestat_.Update(txn, st.second, Slice(EncodeStat(info))).status();
}

Status InversionFs::SetOwner(Transaction* txn, const std::string& path,
                             uint32_t owner) {
  PGLO_ASSIGN_OR_RETURN(auto found, Resolve(txn, path));
  PGLO_ASSIGN_OR_RETURN(auto st, FindStat(txn, found.first.file_id));
  StatInfo info = st.first;
  info.owner = owner;
  return filestat_.Update(txn, st.second, Slice(EncodeStat(info))).status();
}

Status InversionFs::TouchMtime(Transaction* txn, FileId file_id) {
  PGLO_ASSIGN_OR_RETURN(auto st, FindStat(txn, file_id));
  StatInfo info = st.first;
  info.mtime_ns = NowNs();
  return filestat_.Update(txn, st.second, Slice(EncodeStat(info))).status();
}

}  // namespace pglo
