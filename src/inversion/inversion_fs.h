#ifndef PGLO_INVERSION_INVERSION_FS_H_
#define PGLO_INVERSION_INVERSION_FS_H_

#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "db/context.h"
#include "heap/heap_class.h"
#include "lo/lo_manager.h"

namespace pglo {

/// File identifier within Inversion (never reused).
using FileId = uint64_t;
constexpr FileId kInvalidFileId = 0;
constexpr FileId kRootFileId = 1;

/// An open Inversion file: read/write/seek over the backing large object.
/// The seek pointer is a SeekableCursor over the object's ByteStream. The
/// first write under the handle stamps the FILESTAT modification time.
class InversionFile {
 public:
  Result<size_t> Read(size_t n, uint8_t* buf);
  Result<Bytes> Read(size_t n);
  Status Write(Slice data);
  Result<uint64_t> Seek(int64_t off, Whence whence) {
    return cursor_.Seek(off, whence);
  }
  uint64_t Tell() const { return cursor_.Tell(); }
  Result<uint64_t> Size() { return cursor_.Size(); }
  Status Truncate(uint64_t size);

  FileId file_id() const { return file_id_; }

 private:
  friend class InversionFs;
  InversionFile(class InversionFs* fs, Transaction* txn, FileId file_id,
                std::unique_ptr<LargeObject> lo, bool writable)
      : fs_(fs), txn_(txn), file_id_(file_id), lo_(std::move(lo)),
        stream_(lo_.get(), txn), cursor_(&stream_), writable_(writable) {}

  /// Stamps FILESTAT.mtime on the first mutation under this handle.
  Status MarkDirty();

  class InversionFs* fs_;
  Transaction* txn_;
  FileId file_id_;
  std::unique_ptr<LargeObject> lo_;
  LoByteStream stream_;
  SeekableCursor cursor_;
  bool writable_;
  bool dirty_ = false;
};

/// §8 — the Inversion file system: "POSTGRES exports a file system
/// interface to conventional application programs... Because the file
/// system is supported on top of the DBMS, we have called it the Inversion
/// file system."
///
/// Metadata lives in three no-overwrite classes, exactly as the paper
/// specifies:
///   STORAGE   (file-id, large-object)
///   DIRECTORY (file-name, file-id, parent-file-id)
///   FILESTAT  (file-id, owner, mode, times)
/// and file contents are ordinary large ADTs, so "security, transactions,
/// time travel and compression are readily available" — an aborted
/// transaction rolls back file writes *and* namespace changes, and a
/// historical snapshot shows the file tree as of any commit tick. Because
/// metadata is in classes, the query layer can search DIRECTORY like any
/// other class.
class InversionFs {
 public:
  struct StatInfo {
    FileId file_id = kInvalidFileId;
    bool is_dir = false;
    uint64_t size = 0;
    Oid large_object = kInvalidOid;  ///< kInvalidOid for directories
    uint32_t owner = 0;
    uint16_t mode = 0644;
    uint64_t ctime_ns = 0;  ///< simulated time at creation
    uint64_t mtime_ns = 0;  ///< simulated time of last close-after-write
  };

  struct DirEntryInfo {
    std::string name;
    FileId file_id;
    bool is_dir;
  };

  InversionFs(const DbContext& ctx, LoManager* lo);

  /// Creates the three metadata classes and the root directory; run once
  /// per database (idempotent).
  Status Bootstrap(Transaction* txn);

  /// Creates a directory. Parent directories must exist.
  Result<FileId> MkDir(Transaction* txn, const std::string& path);

  /// Creates an empty file backed by a large object built from `spec`
  /// ("Inversion can use either the f-chunk or v-segment large object
  /// implementations for file storage", §10 — u-file/p-file work too).
  Result<FileId> Create(Transaction* txn, const std::string& path,
                        const LoSpec& spec);

  /// Opens a file for reading (and writing when `writable`).
  Result<std::unique_ptr<InversionFile>> Open(Transaction* txn,
                                              const std::string& path,
                                              bool writable);

  /// Removes a file; its storage is reclaimed at commit.
  Status Remove(Transaction* txn, const std::string& path);

  /// Removes an empty directory.
  Status RmDir(Transaction* txn, const std::string& path);

  /// Moves/renames a file or directory.
  Status Rename(Transaction* txn, const std::string& from,
                const std::string& to);

  Result<StatInfo> Stat(Transaction* txn, const std::string& path);

  Result<std::vector<DirEntryInfo>> ReadDir(Transaction* txn,
                                            const std::string& path);

  /// True if the path resolves.
  Result<bool> Exists(Transaction* txn, const std::string& path);

  /// The backing large object of a file (for Footprint / direct access).
  Result<Oid> LargeObjectOf(Transaction* txn, const std::string& path);

  /// Updates FILESTAT.mtime (called by InversionFile on dirty close).
  Status TouchMtime(Transaction* txn, FileId file_id);

  /// chmod/chown over the FILESTAT class — §8: "a separate class,
  /// FILESTAT, stores file access and modification times, the owner's
  /// user id, and similar information." Being ordinary tuples, permission
  /// changes are transactional and time-traveled like everything else.
  Status SetMode(Transaction* txn, const std::string& path, uint16_t mode);
  Status SetOwner(Transaction* txn, const std::string& path, uint32_t owner);

  /// Direct handles to the metadata classes so the query layer can scan
  /// them ("a user can use the query language to perform searches on the
  /// DIRECTORY class", §8).
  HeapClass& directory_class() { return directory_; }
  HeapClass& storage_class() { return storage_; }
  HeapClass& filestat_class() { return filestat_; }

 private:
  struct DirRecord {
    std::string name;
    FileId file_id = kInvalidFileId;
    FileId parent = kInvalidFileId;
    bool is_dir = false;
  };

  static Bytes EncodeDir(const DirRecord& r);
  static Result<DirRecord> DecodeDir(Slice image);
  static Bytes EncodeStorage(FileId id, Oid lo);
  static Result<std::pair<FileId, Oid>> DecodeStorage(Slice image);
  static Bytes EncodeStat(const StatInfo& st);
  static Result<StatInfo> DecodeStat(Slice image);

  /// Splits "/a/b/c"; rejects empty components.
  static Result<std::vector<std::string>> SplitPath(const std::string& path);

  /// Finds the entry `name` in directory `parent` via the (parent, name)
  /// hash index on DIRECTORY (candidates are rechecked against the actual
  /// record, so hash collisions and stale entries are harmless).
  Result<std::pair<DirRecord, Tid>> LookupIn(Transaction* txn, FileId parent,
                                             const std::string& name);

  /// Hash key for the DIRECTORY index.
  static uint64_t DirKey(FileId parent, const std::string& name);

  /// Adds an index entry for a (new) DIRECTORY tuple version.
  Status IndexDirEntry(const DirRecord& rec, Tid tid);

  /// Resolves a full path to its directory record.
  Result<std::pair<DirRecord, Tid>> Resolve(Transaction* txn,
                                            const std::string& path);

  /// Resolves the parent directory of `path`, returning (parent id, leaf
  /// name).
  Result<std::pair<FileId, std::string>> ResolveParent(
      Transaction* txn, const std::string& path);

  Result<std::pair<StatInfo, Tid>> FindStat(Transaction* txn, FileId id);
  Result<std::pair<Oid, Tid>> FindStorage(Transaction* txn, FileId id);

  uint64_t NowNs() const { return ctx_.clock->NowNanos(); }

  DbContext ctx_;
  LoManager* lo_;
  HeapClass directory_;
  HeapClass storage_;
  HeapClass filestat_;
  Btree dir_index_;  ///< hash(parent, name) -> DIRECTORY tuple address
  // Observability (null when ctx.stats is null).
  friend class InversionFile;  // reads the file-I/O histograms below
  Counter* c_path_resolutions_ = nullptr;
  Counter* c_index_probes_ = nullptr;
  Histogram* h_resolve_ = nullptr;
  Histogram* h_file_read_ = nullptr;
  Histogram* h_file_write_ = nullptr;
};

}  // namespace pglo

#endif  // PGLO_INVERSION_INVERSION_FS_H_
