#ifndef PGLO_BTREE_BTREE_H_
#define PGLO_BTREE_BTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace pglo {

/// Persistent B+tree mapping uint64 keys to Tids, duplicates allowed.
///
/// This is the "secondary btree index on the data blocks" that f-chunk
/// maintains on chunk sequence numbers (§6.3) and that v-segment maintains
/// on segment locations (§6.4). Because the heap below is no-overwrite, an
/// updated chunk simply gains a second index entry; readers fetch every
/// entry for a key and let heap visibility pick the right version, so the
/// index itself needs no versioning.
///
/// Layout: block 0 is a meta page (root pointer, height); other blocks are
/// nodes holding sorted fixed-size entries. Internal entries carry the
/// minimum (key, value) of their child subtree; the first entry of a node
/// acts as negative infinity. Leaves are chained left-to-right for range
/// scans. Deletion is by simple entry removal (pages are never merged —
/// acceptable for an index whose workload is insert/lookup heavy, and
/// documented behaviour of the reproduction).
///
/// Multi-backend: every public operation (and iterator step) holds the
/// index file's exclusive relation latch from the pool's RelLatchRegistry
/// — the same coarse granularity HeapClass uses, and a deliberate match
/// for the 1993 lock table rather than per-page latch crabbing. The latch
/// is re-entrant, so an iterator obtained under Seek() may keep stepping
/// while its owner holds other latches. Callers that latch a heap class
/// and its index acquire heap first, index second (see DESIGN.md §13).
class Btree {
 public:
  /// Packed (block, slot) value payload.
  static uint64_t PackTid(Tid tid) {
    return (static_cast<uint64_t>(tid.block) << 16) | tid.slot;
  }
  static Tid UnpackTid(uint64_t v) {
    return Tid{static_cast<BlockNumber>(v >> 16),
               static_cast<uint16_t>(v & 0xffff)};
  }

  Btree(BufferPool* pool, RelFileId file) : pool_(pool), file_(file) {}

  /// Binds a `btree.descend` trace span (with a `btree.descend_ns`
  /// histogram) around every root-to-leaf descent, so profiler trees show
  /// index navigation separately from the page accesses it causes. Null
  /// registry = unbound (no overhead).
  void BindStats(StatsRegistry* registry) {
    if (registry == nullptr) return;
    registry_ = registry;
    h_descend_ns_ = registry->histogram("btree.descend_ns");
  }

  /// Creates the backing relation file with an empty tree (meta + one leaf).
  static Status Create(BufferPool* pool, RelFileId file);

  /// Inserts entry (key, value). Duplicate (key, value) pairs are allowed
  /// and stored once each.
  Status Insert(uint64_t key, uint64_t value);
  Status Insert(uint64_t key, Tid tid) { return Insert(key, PackTid(tid)); }

  /// Idempotent insert: an already-present (key, value) entry is OK. Used
  /// by index maintenance after in-place tuple updates, where the tuple
  /// address (and hence the index entry) may not have changed.
  Status InsertIfAbsent(uint64_t key, uint64_t value) {
    Status s = Insert(key, value);
    return s.IsAlreadyExists() ? Status::OK() : s;
  }
  Status InsertIfAbsent(uint64_t key, Tid tid) {
    return InsertIfAbsent(key, PackTid(tid));
  }

  /// Removes one exact (key, value) entry. NotFound if absent.
  Status Delete(uint64_t key, uint64_t value);

  /// Collects the values of every entry with exactly `key`.
  Result<std::vector<uint64_t>> Lookup(uint64_t key);

  /// Height of the tree (1 = just a leaf root).
  Result<uint32_t> Height();

  /// Total entries (walks the leaf chain; O(n), for tests/benchmarks).
  Result<uint64_t> CountEntries();

  /// Number of blocks in the index file (Figure 1 reports index bytes).
  Result<BlockNumber> NumBlocks();

  /// Structural invariant check (used by Database::CheckIntegrity and
  /// tests): node magic, in-node entry ordering, child level decrease,
  /// parent bounds containing child minima, and globally sorted leaf
  /// chain. Returns the total entry count on success.
  Result<uint64_t> CheckStructure();

  /// Vacuum-time page merging: absorbs underfull nodes into their left
  /// siblings (bottom-up, within each parent), collapses a single-child
  /// root chain, and returns emptied pages to the pool's free-space map
  /// for reuse by the next node allocation. Returns the number of pages
  /// freed. The sibling-chain skip in the read path stays as the fallback
  /// for entries left behind by plain Delete between merge passes.
  Result<uint64_t> MergeUnderfull();

  class Iterator;
  /// Positions an iterator at the first entry with key >= `key`.
  Result<Iterator> Seek(uint64_t key);
  /// Positions an iterator at the smallest entry.
  Result<Iterator> SeekFirst();

  /// Forward iterator over (key, value) entries in order.
  class Iterator {
   public:
    bool valid() const { return valid_; }
    uint64_t key() const { return key_; }
    uint64_t value() const { return value_; }
    Tid tid() const { return UnpackTid(value_); }

    /// Advances; clears valid() at the end of the index.
    Status Next();

   private:
    friend class Btree;
    Iterator(Btree* tree, BlockNumber block, uint16_t index)
        : tree_(tree), block_(block), index_(index) {}
    Status LoadCurrent();

    Btree* tree_ = nullptr;
    BlockNumber block_ = kInvalidBlock;
    uint16_t index_ = 0;
    bool valid_ = false;
    uint64_t key_ = 0;
    uint64_t value_ = 0;
  };

 private:
  friend class Iterator;

  struct PathEntry {
    BlockNumber block;
    uint16_t index;  // descent position in the internal node
  };

  Result<BlockNumber> RootBlock();
  Status SetRoot(BlockNumber root, uint32_t height);
  /// New-node allocation: recycles a page from the free-space map's
  /// free-page list when one exists (verified by its stamp), otherwise
  /// extends the file.
  Result<PageHandle> AllocateNode(BlockNumber* block_out);
  /// Post-order merge pass over the subtree rooted at `block`.
  Status MergeSubtree(BlockNumber block, uint64_t* freed);
  /// Descends to the leaf that should contain (key, value); fills `path`
  /// with the internal nodes visited (top-down) when non-null.
  Result<BlockNumber> DescendToLeaf(uint64_t key, uint64_t value,
                                    std::vector<PathEntry>* path);
  Status InsertIntoParent(std::vector<PathEntry>* path, uint64_t sep_key,
                          uint64_t sep_value, BlockNumber right_child);

  BufferPool* pool_;
  RelFileId file_;
  StatsRegistry* registry_ = nullptr;
  Histogram* h_descend_ns_ = nullptr;
};

}  // namespace pglo

#endif  // PGLO_BTREE_BTREE_H_
