#include "btree/btree.h"

#include "btree/btree_page.h"
#include "common/logging.h"
#include "storage/free_space_map.h"

namespace pglo {

Status Btree::Create(BufferPool* pool, RelFileId file) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, pool->smgrs()->Get(file.smgr_id));
  PGLO_RETURN_IF_ERROR(smgr->CreateFile(file.relfile));
  BlockNumber meta_block, root_block;
  {
    PGLO_ASSIGN_OR_RETURN(PageHandle meta_handle,
                          pool->NewPage(file, &meta_block));
    PGLO_CHECK(meta_block == 0);
    PGLO_ASSIGN_OR_RETURN(PageHandle root_handle,
                          pool->NewPage(file, &root_block));
    BtreeNode root(root_handle.data());
    root.Init(/*level=*/0);
    root_handle.MarkDirty();
    BtreeMeta meta(meta_handle.data());
    meta.Init(root_block, /*height=*/1);
    meta_handle.MarkDirty();
  }
  return Status::OK();
}

Result<BlockNumber> Btree::RootBlock() {
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, 0}));
  BtreeMeta meta(handle.data());
  if (!meta.IsValid()) return Status::Corruption("bad btree meta page (smgr=" + std::to_string(file_.smgr_id) + " relfile=" + std::to_string(file_.relfile) + ")");
  return meta.root();
}

Status Btree::SetRoot(BlockNumber root, uint32_t height) {
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, 0}));
  BtreeMeta meta(handle.data());
  if (!meta.IsValid()) return Status::Corruption("bad btree meta page (smgr=" + std::to_string(file_.smgr_id) + " relfile=" + std::to_string(file_.relfile) + ")");
  meta.Set(root, height);
  handle.MarkDirty();
  return Status::OK();
}

Result<PageHandle> Btree::AllocateNode(BlockNumber* block_out) {
  Result<BlockNumber> reuse = pool_->fsm()->TakeFreePage(file_);
  if (reuse.ok()) {
    Result<PageHandle> handle = pool_->GetPage({file_, reuse.value()});
    if (handle.ok() && FreeSpaceMap::IsFreePage(handle.value().data())) {
      *block_out = reuse.value();
      return handle;
    }
    // Entry without the stamp (post-crash drift): already removed by
    // TakeFreePage, so just fall through and extend the file.
  }
  return pool_->NewPage(file_, block_out);
}

Result<uint32_t> Btree::Height() {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, 0}));
  BtreeMeta meta(handle.data());
  if (!meta.IsValid()) return Status::Corruption("bad btree meta page (smgr=" + std::to_string(file_.smgr_id) + " relfile=" + std::to_string(file_.relfile) + ")");
  return meta.height();
}

Result<BlockNumber> Btree::DescendToLeaf(uint64_t key, uint64_t value,
                                         std::vector<PathEntry>* path) {
  TraceSpan span(registry_, h_descend_ns_, "btree.descend");
  PGLO_ASSIGN_OR_RETURN(BlockNumber block, RootBlock());
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, block}));
    BtreeNode node(handle.data());
    if (!node.IsValid()) return Status::Corruption("bad btree node");
    if (node.is_leaf()) return block;
    if (node.nkeys() == 0) return Status::Corruption("empty internal node");
    // Child whose minimum bound is the last one <= (key, value). Entry 0 is
    // the (0, 0) sentinel (negative infinity), so UpperBound is always >= 1.
    uint16_t idx = node.UpperBound(key, value);
    PGLO_CHECK(idx > 0);
    --idx;
    if (path != nullptr) path->push_back({block, idx});
    block = node.ChildAt(idx);
  }
}

Status Btree::InsertIntoParent(std::vector<PathEntry>* path, uint64_t sep_key,
                               uint64_t sep_value, BlockNumber right_child) {
  // Bubble splits upward along the recorded descent path.
  while (!path->empty()) {
    PathEntry at = path->back();
    path->pop_back();
    PGLO_ASSIGN_OR_RETURN(PageHandle handle,
                          pool_->GetPage({file_, at.block}));
    BtreeNode node(handle.data());
    uint16_t pos = node.UpperBound(sep_key, sep_value);
    if (node.nkeys() < node.capacity()) {
      node.InsertInternalEntry(pos, sep_key, sep_value, right_child);
      handle.MarkDirty();
      return Status::OK();
    }
    // Split this internal node.
    BlockNumber new_block;
    PGLO_ASSIGN_OR_RETURN(PageHandle new_handle, AllocateNode(&new_block));
    BtreeNode new_node(new_handle.data());
    new_node.Init(node.level());
    uint16_t mid = node.nkeys() / 2;
    node.MoveUpperHalf(mid, &new_node);
    new_node.set_right_sibling(node.right_sibling());
    node.set_right_sibling(new_block);
    // Route the pending entry into the proper half.
    uint64_t boundary_key = new_node.KeyAt(0);
    uint64_t boundary_value = new_node.ValueAt(0);
    bool goes_right =
        (sep_key > boundary_key) ||
        (sep_key == boundary_key && sep_value >= boundary_value);
    BtreeNode& dst = goes_right ? new_node : node;
    uint16_t dpos = dst.UpperBound(sep_key, sep_value);
    dst.InsertInternalEntry(dpos, sep_key, sep_value, right_child);
    handle.MarkDirty();
    new_handle.MarkDirty();
    // Continue with the new node's minimum as the separator to push up.
    sep_key = boundary_key;
    sep_value = boundary_value;
    right_child = new_block;
  }
  // The root itself split: grow the tree.
  PGLO_ASSIGN_OR_RETURN(BlockNumber old_root, RootBlock());
  PGLO_ASSIGN_OR_RETURN(uint32_t height, Height());
  BlockNumber new_root_block;
  PGLO_ASSIGN_OR_RETURN(PageHandle root_handle, AllocateNode(&new_root_block));
  BtreeNode new_root(root_handle.data());
  {
    PGLO_ASSIGN_OR_RETURN(PageHandle old_handle,
                          pool_->GetPage({file_, old_root}));
    BtreeNode old_node(old_handle.data());
    new_root.Init(static_cast<uint16_t>(old_node.level() + 1));
    // Entry 0 is the negative-infinity sentinel: (0, 0) compares <= every
    // possible target, so UpperBound-based descent can always step left of
    // the first real separator.
    new_root.InsertInternalEntry(0, 0, 0, old_root);
  }
  new_root.InsertInternalEntry(1, sep_key, sep_value, right_child);
  root_handle.MarkDirty();
  return SetRoot(new_root_block, height + 1);
}

Status Btree::Insert(uint64_t key, uint64_t value) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  std::vector<PathEntry> path;
  PGLO_ASSIGN_OR_RETURN(BlockNumber leaf_block,
                        DescendToLeaf(key, value, &path));
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, leaf_block}));
  BtreeNode leaf(handle.data());
  uint16_t pos = leaf.LowerBound(key, value);
  if (pos < leaf.nkeys() && leaf.KeyAt(pos) == key &&
      leaf.ValueAt(pos) == value) {
    return Status::AlreadyExists("duplicate (key, value) entry");
  }
  if (leaf.nkeys() < leaf.capacity()) {
    leaf.InsertLeafEntry(pos, key, value);
    handle.MarkDirty();
    return Status::OK();
  }
  // Split the leaf.
  BlockNumber new_block;
  PGLO_ASSIGN_OR_RETURN(PageHandle new_handle, AllocateNode(&new_block));
  BtreeNode new_leaf(new_handle.data());
  new_leaf.Init(/*level=*/0);
  uint16_t mid = leaf.nkeys() / 2;
  leaf.MoveUpperHalf(mid, &new_leaf);
  new_leaf.set_right_sibling(leaf.right_sibling());
  leaf.set_right_sibling(new_block);
  uint64_t boundary_key = new_leaf.KeyAt(0);
  uint64_t boundary_value = new_leaf.ValueAt(0);
  bool goes_right = (key > boundary_key) ||
                    (key == boundary_key && value >= boundary_value);
  BtreeNode& dst = goes_right ? new_leaf : leaf;
  uint16_t dpos = dst.LowerBound(key, value);
  dst.InsertLeafEntry(dpos, key, value);
  handle.MarkDirty();
  new_handle.MarkDirty();
  return InsertIntoParent(&path, boundary_key, boundary_value, new_block);
}

Status Btree::Delete(uint64_t key, uint64_t value) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  PGLO_ASSIGN_OR_RETURN(BlockNumber leaf_block,
                        DescendToLeaf(key, value, nullptr));
  // The entry may sit in a right sibling when equal keys straddle nodes.
  BlockNumber block = leaf_block;
  while (block != kInvalidBlock) {
    PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, block}));
    BtreeNode leaf(handle.data());
    uint16_t pos = leaf.LowerBound(key, value);
    if (pos < leaf.nkeys()) {
      if (leaf.KeyAt(pos) == key && leaf.ValueAt(pos) == value) {
        leaf.RemoveEntry(pos);
        handle.MarkDirty();
        return Status::OK();
      }
      return Status::NotFound("btree entry not found");
    }
    block = leaf.right_sibling();
  }
  return Status::NotFound("btree entry not found");
}

Result<std::vector<uint64_t>> Btree::Lookup(uint64_t key) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  std::vector<uint64_t> out;
  PGLO_ASSIGN_OR_RETURN(Iterator it, Seek(key));
  while (it.valid() && it.key() == key) {
    out.push_back(it.value());
    PGLO_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Result<Btree::Iterator> Btree::Seek(uint64_t key) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  PGLO_ASSIGN_OR_RETURN(BlockNumber leaf_block, DescendToLeaf(key, 0, nullptr));
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, leaf_block}));
  BtreeNode leaf(handle.data());
  uint16_t pos = leaf.LowerBound(key, 0);
  Iterator it(this, leaf_block, pos);
  PGLO_RETURN_IF_ERROR(it.LoadCurrent());
  return it;
}

Result<Btree::Iterator> Btree::SeekFirst() { return Seek(0); }

Status Btree::Iterator::LoadCurrent() {
  RelLatchGuard latch(tree_->pool_->rel_latches(), tree_->file_, WaitEvent::kLatchRelBtree);
  for (;;) {
    if (block_ == kInvalidBlock) {
      valid_ = false;
      return Status::OK();
    }
    PGLO_ASSIGN_OR_RETURN(PageHandle handle,
                          tree_->pool_->GetPage({tree_->file_, block_}));
    BtreeNode leaf(handle.data());
    if (index_ < leaf.nkeys()) {
      key_ = leaf.KeyAt(index_);
      value_ = leaf.ValueAt(index_);
      valid_ = true;
      return Status::OK();
    }
    block_ = leaf.right_sibling();
    index_ = 0;
  }
}

Status Btree::Iterator::Next() {
  PGLO_CHECK(valid_);
  ++index_;
  return LoadCurrent();
}

Result<uint64_t> Btree::CountEntries() {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  PGLO_ASSIGN_OR_RETURN(Iterator it, SeekFirst());
  uint64_t count = 0;
  while (it.valid()) {
    ++count;
    PGLO_RETURN_IF_ERROR(it.Next());
  }
  return count;
}

Result<uint64_t> Btree::CheckStructure() {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  PGLO_ASSIGN_OR_RETURN(BlockNumber root, RootBlock());
  PGLO_ASSIGN_OR_RETURN(uint32_t height, Height());
  // Recursive subtree check: every node's entries sorted; every child's
  // minimum entry >= the parent entry's bound (entry 0 of the root level
  // is the -infinity sentinel and is exempt); levels decrease by one.
  struct Walker {
    Btree* tree;
    Status status = Status::OK();

    void Check(BlockNumber block, uint32_t expected_level, uint64_t min_key,
               uint64_t min_val, bool unbounded) {
      if (!status.ok()) return;
      Result<PageHandle> handle =
          tree->pool_->GetPage({tree->file_, block});
      if (!handle.ok()) {
        status = handle.status();
        return;
      }
      BtreeNode node(handle.value().data());
      if (!node.IsValid()) {
        status = Status::Corruption("bad btree node magic");
        return;
      }
      if (node.level() != expected_level) {
        status = Status::Corruption("btree level mismatch");
        return;
      }
      uint16_t n = node.nkeys();
      for (uint16_t i = 1; i < n; ++i) {
        uint64_t pk = node.KeyAt(i - 1), pv = node.ValueAt(i - 1);
        uint64_t k = node.KeyAt(i), v = node.ValueAt(i);
        if (pk > k || (pk == k && pv >= v)) {
          status = Status::Corruption("btree entries out of order");
          return;
        }
      }
      if (!unbounded && n > 0) {
        uint64_t k = node.KeyAt(0), v = node.ValueAt(0);
        if (k < min_key || (k == min_key && v < min_val)) {
          status = Status::Corruption("btree child below parent bound");
          return;
        }
      }
      if (node.is_leaf()) return;
      if (n == 0) {
        status = Status::Corruption("empty internal node");
        return;
      }
      for (uint16_t i = 0; i < n; ++i) {
        // Entry 0 of any internal node inherits its caller's bound.
        bool child_unbounded = (i == 0) && unbounded;
        uint64_t bk = i == 0 ? min_key : node.KeyAt(i);
        uint64_t bv = i == 0 ? min_val : node.ValueAt(i);
        Check(node.ChildAt(i), expected_level - 1, bk, bv, child_unbounded);
        if (!status.ok()) return;
      }
    }
  };
  Walker walker{this};
  walker.Check(root, height - 1, 0, 0, /*unbounded=*/true);
  PGLO_RETURN_IF_ERROR(walker.status);

  // Leaf chain: globally sorted, and its count matches an iterator walk.
  uint64_t count = 0;
  PGLO_ASSIGN_OR_RETURN(Iterator it, SeekFirst());
  bool have_prev = false;
  uint64_t pk = 0, pv = 0;
  while (it.valid()) {
    if (have_prev &&
        (pk > it.key() || (pk == it.key() && pv >= it.value()))) {
      return Status::Corruption("leaf chain out of order");
    }
    pk = it.key();
    pv = it.value();
    have_prev = true;
    ++count;
    PGLO_RETURN_IF_ERROR(it.Next());
  }
  return count;
}

Status Btree::MergeSubtree(BlockNumber block, uint64_t* freed) {
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, block}));
  BtreeNode node(handle.data());
  if (!node.IsValid()) return Status::Corruption("bad btree node");
  if (node.is_leaf()) return Status::OK();
  if (node.nkeys() == 0) return Status::Corruption("empty internal node");
  // Post-order: merge grandchildren first so this pass sees the children's
  // final fill levels.
  for (uint16_t i = 0; i < node.nkeys(); ++i) {
    PGLO_RETURN_IF_ERROR(MergeSubtree(node.ChildAt(i), freed));
  }
  // Pairwise pass over this node's children: absorb the right child into
  // the left when the result leaves headroom (merging two half-full
  // siblings into one brim-full node would just split again on the next
  // insert). Empty children are always absorbed.
  bool dirtied = false;
  uint16_t i = 0;
  while (i + 1 < node.nkeys()) {
    BlockNumber left_block = node.ChildAt(i);
    BlockNumber right_block = node.ChildAt(i + 1);
    PGLO_ASSIGN_OR_RETURN(PageHandle left_handle,
                          pool_->GetPage({file_, left_block}));
    PGLO_ASSIGN_OR_RETURN(PageHandle right_handle,
                          pool_->GetPage({file_, right_block}));
    BtreeNode left(left_handle.data());
    BtreeNode right(right_handle.data());
    if (!left.IsValid() || !right.IsValid()) {
      return Status::Corruption("bad btree node");
    }
    uint16_t cap = left.capacity();
    uint32_t combined =
        static_cast<uint32_t>(left.nkeys()) + right.nkeys();
    bool either_empty = left.nkeys() == 0 || right.nkeys() == 0;
    bool underfull = left.nkeys() < cap / 2 || right.nkeys() < cap / 2;
    if (either_empty || (underfull && combined <= cap - cap / 4)) {
      left.AppendFrom(&right);
      left.set_right_sibling(right.right_sibling());
      left_handle.MarkDirty();
      // Stamp the emptied page and hand it to the free-space map; the
      // next split reuses it instead of extending the file.
      FreeSpaceMap::StampFreePage(right_handle.data());
      right_handle.MarkDirty();
      pool_->fsm()->RecordFreePage(file_, right_block);
      node.RemoveEntry(i + 1);
      dirtied = true;
      ++*freed;
      // Stay at i: the new neighbour may be absorbable too.
    } else {
      ++i;
    }
  }
  if (dirtied) handle.MarkDirty();
  return Status::OK();
}

Result<uint64_t> Btree::MergeUnderfull() {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelBtree);
  uint64_t freed = 0;
  PGLO_ASSIGN_OR_RETURN(BlockNumber root, RootBlock());
  PGLO_RETURN_IF_ERROR(MergeSubtree(root, &freed));
  // Collapse a root chain: an internal root left with a single child just
  // forwards every descent, so shrink the tree instead.
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(BlockNumber r, RootBlock());
    PGLO_ASSIGN_OR_RETURN(uint32_t height, Height());
    PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, r}));
    BtreeNode node(handle.data());
    if (!node.IsValid()) return Status::Corruption("bad btree node");
    if (node.is_leaf() || node.nkeys() != 1) break;
    BlockNumber child = node.ChildAt(0);
    FreeSpaceMap::StampFreePage(handle.data());
    handle.MarkDirty();
    handle.Release();
    pool_->fsm()->RecordFreePage(file_, r);
    PGLO_RETURN_IF_ERROR(SetRoot(child, height - 1));
    ++freed;
  }
  return freed;
}

Result<BlockNumber> Btree::NumBlocks() { return pool_->NumBlocks(file_); }

}  // namespace pglo
