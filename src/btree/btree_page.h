#ifndef PGLO_BTREE_BTREE_PAGE_H_
#define PGLO_BTREE_BTREE_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "storage/page.h"

namespace pglo {

/// Raw fixed-entry node format for Btree (not a SlottedPage: B-tree entries
/// are fixed width, so a sorted array with memmove insertion is simpler and
/// denser than slot indirection).
///
/// Node header (16 bytes):
///   magic u16 | level u16 (0 = leaf) | nkeys u16 | pad u16 |
///   right_sibling u32 | reserved u32
/// Entries follow, sorted by (key, value):
///   leaf:     key u64 | value u64                  (16 bytes)
///   internal: key u64 | value u64 | child u32 |pad (24 bytes)
/// Internal entry i holds the minimum (key, value) of child i's subtree;
/// entry 0's bound is treated as -infinity during descent.
class BtreeNode {
 public:
  static constexpr uint16_t kMagic = 0x4254;  // "BT"
  static constexpr uint32_t kHeaderSize = 16;
  static constexpr uint32_t kLeafEntrySize = 16;
  static constexpr uint32_t kInternalEntrySize = 24;

  static constexpr uint16_t LeafCapacity() {
    return (kPageSize - kHeaderSize) / kLeafEntrySize;
  }
  static constexpr uint16_t InternalCapacity() {
    return (kPageSize - kHeaderSize) / kInternalEntrySize;
  }

  explicit BtreeNode(uint8_t* buf) : buf_(buf) {}

  void Init(uint16_t level) {
    std::memset(buf_, 0, kPageSize);
    EncodeFixed16(buf_, kMagic);
    EncodeFixed16(buf_ + 2, level);
    EncodeFixed16(buf_ + 4, 0);
    EncodeFixed32(buf_ + 8, kInvalidBlock);
  }

  bool IsValid() const { return DecodeFixed16(buf_) == kMagic; }
  uint16_t level() const { return DecodeFixed16(buf_ + 2); }
  bool is_leaf() const { return level() == 0; }
  uint16_t nkeys() const { return DecodeFixed16(buf_ + 4); }
  void set_nkeys(uint16_t n) { EncodeFixed16(buf_ + 4, n); }
  BlockNumber right_sibling() const { return DecodeFixed32(buf_ + 8); }
  void set_right_sibling(BlockNumber b) { EncodeFixed32(buf_ + 8, b); }

  uint16_t capacity() const {
    return is_leaf() ? LeafCapacity() : InternalCapacity();
  }
  uint32_t entry_size() const {
    return is_leaf() ? kLeafEntrySize : kInternalEntrySize;
  }

  uint64_t KeyAt(uint16_t i) const { return DecodeFixed64(EntryPtr(i)); }
  uint64_t ValueAt(uint16_t i) const {
    return DecodeFixed64(EntryPtr(i) + 8);
  }
  BlockNumber ChildAt(uint16_t i) const {
    return DecodeFixed32(EntryPtr(i) + 16);
  }

  /// First index whose (key, value) >= (key, value); nkeys() if none.
  uint16_t LowerBound(uint64_t key, uint64_t value) const {
    uint16_t lo = 0, hi = nkeys();
    while (lo < hi) {
      uint16_t mid = (lo + hi) / 2;
      uint64_t k = KeyAt(mid);
      if (k < key || (k == key && ValueAt(mid) < value)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First index whose (key, value) > (key, value); nkeys() if none.
  /// Internal-node descent uses UpperBound(target) - 1 so that the (0, 0)
  /// sentinel in entry 0 (which compares <= every possible target) acts as
  /// negative infinity and equal separators resolve to the rightmost one.
  uint16_t UpperBound(uint64_t key, uint64_t value) const {
    uint16_t lo = 0, hi = nkeys();
    while (lo < hi) {
      uint16_t mid = (lo + hi) / 2;
      uint64_t k = KeyAt(mid);
      if (k < key || (k == key && ValueAt(mid) <= value)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Inserts a leaf entry at sorted position `i`.
  void InsertLeafEntry(uint16_t i, uint64_t key, uint64_t value) {
    ShiftRight(i);
    uint8_t* p = EntryPtr(i);
    EncodeFixed64(p, key);
    EncodeFixed64(p + 8, value);
    set_nkeys(nkeys() + 1);
  }

  /// Inserts an internal entry at sorted position `i`.
  void InsertInternalEntry(uint16_t i, uint64_t key, uint64_t value,
                           BlockNumber child) {
    ShiftRight(i);
    uint8_t* p = EntryPtr(i);
    EncodeFixed64(p, key);
    EncodeFixed64(p + 8, value);
    EncodeFixed32(p + 16, child);
    set_nkeys(nkeys() + 1);
  }

  /// Removes the entry at index `i`.
  void RemoveEntry(uint16_t i) {
    uint32_t es = entry_size();
    std::memmove(EntryPtr(i), EntryPtr(i) + es,
                 static_cast<size_t>(nkeys() - i - 1) * es);
    set_nkeys(nkeys() - 1);
  }

  /// Moves entries [from, nkeys) into `dst` (same level, must be empty).
  void MoveUpperHalf(uint16_t from, BtreeNode* dst) {
    uint16_t n = nkeys();
    uint32_t es = entry_size();
    uint16_t moved = n - from;
    std::memcpy(dst->EntryPtr(0), EntryPtr(from),
                static_cast<size_t>(moved) * es);
    dst->set_nkeys(moved);
    set_nkeys(from);
  }

  /// Appends every entry of `src` (same level; combined count must fit)
  /// and empties `src` — the page-merge inverse of MoveUpperHalf.
  void AppendFrom(BtreeNode* src) {
    uint32_t es = entry_size();
    std::memcpy(EntryPtr(nkeys()), src->EntryPtr(0),
                static_cast<size_t>(src->nkeys()) * es);
    set_nkeys(nkeys() + src->nkeys());
    src->set_nkeys(0);
  }

 private:
  uint8_t* EntryPtr(uint16_t i) {
    return buf_ + kHeaderSize + static_cast<size_t>(i) * entry_size();
  }
  const uint8_t* EntryPtr(uint16_t i) const {
    return buf_ + kHeaderSize + static_cast<size_t>(i) * entry_size();
  }
  void ShiftRight(uint16_t i) {
    uint32_t es = entry_size();
    std::memmove(EntryPtr(i) + es, EntryPtr(i),
                 static_cast<size_t>(nkeys() - i) * es);
  }

  uint8_t* buf_;
};

/// Meta page (block 0): magic u32 | root u32 | height u32.
class BtreeMeta {
 public:
  static constexpr uint32_t kMagic = 0x42545245;  // "BTRE"

  explicit BtreeMeta(uint8_t* buf) : buf_(buf) {}

  void Init(BlockNumber root, uint32_t height) {
    std::memset(buf_, 0, kPageSize);
    EncodeFixed32(buf_, kMagic);
    Set(root, height);
  }
  bool IsValid() const { return DecodeFixed32(buf_) == kMagic; }
  BlockNumber root() const { return DecodeFixed32(buf_ + 4); }
  uint32_t height() const { return DecodeFixed32(buf_ + 8); }
  void Set(BlockNumber root, uint32_t height) {
    EncodeFixed32(buf_ + 4, root);
    EncodeFixed32(buf_ + 8, height);
  }

 private:
  uint8_t* buf_;
};

}  // namespace pglo

#endif  // PGLO_BTREE_BTREE_PAGE_H_
