#ifndef PGLO_FAULT_FAULT_INJECTOR_H_
#define PGLO_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/status.h"
#include "obs/event_log.h"
#include "obs/stats.h"

namespace pglo {

/// A seeded description of the faults one run should experience. All
/// randomness (torn-append lengths, transient draws, corruption targets)
/// flows from `seed`, so a plan replays identically every time.
struct FaultPlan {
  uint64_t seed = 1;

  /// Crash when the Nth physical write is attempted: writes 1..N-1 reach
  /// stable storage, write N (and everything after it) does not. Block
  /// writes count one tick per block; record appends (commit log, WORM
  /// relocation map) count one tick regardless of size. 0 = never crash.
  uint64_t crash_after_writes = 0;

  /// When the crash lands inside a vectored multi-block run, apply the
  /// block-aligned prefix that "made it to the platter" (torn write). A
  /// crash on a record append applies a seed-chosen byte prefix of the
  /// record — possibly none, possibly all of it. When false, the
  /// interrupted run/record is dropped whole.
  bool torn_writes = true;

  /// Per-10000 probability that a block read or write fails with
  /// Status::Unavailable (a transient device error the retry policy must
  /// absorb). Record appends are exempt: transience is a device property
  /// and the log files model stable storage directly.
  uint32_t transient_error_rate = 0;

  /// A site never fails more than this many times consecutively, so a
  /// bounded retry policy with max_attempts > transient_max_burst always
  /// succeeds eventually.
  uint32_t transient_max_burst = 2;

  /// Per-10000 probability that a written block has one bit flipped on its
  /// way to the platter — detectable by the page-checksum path on the next
  /// read-in. Applied by FaultyStorageManager and the WORM burner only.
  uint32_t corrupt_block_rate = 0;
};

/// Deterministic fault-injection hub. One injector is shared by every
/// wrapped layer of a database instance (storage managers, the UFS block
/// cache, the commit log, the WORM burner); each layer consults it before
/// touching stable storage. Disarmed, every hook is a cheap pass-through,
/// so an installed-but-idle injector does not perturb behaviour.
///
/// Fault model (mirrored in DESIGN.md §11): individual 8 KB block writes
/// are atomic; vectored runs tear at block boundaries; small record
/// appends tear at byte boundaries; a completed simulated write is durable
/// (host-file pwrite stands in for stable storage). Volatile-loss of
/// unsynced appends is modelled separately via NoteUnsynced /
/// ApplyVolatileLoss, which exists to catch durability regressions such as
/// skipping the commit-log fsync.
class FaultInjector {
 public:
  struct WriteOutcome {
    Status status;        ///< OK, Unavailable (transient), or injected crash
    uint32_t applied = 0; ///< blocks of the run that reached stable storage
    bool corrupt = false;
    uint32_t corrupt_block = 0;  ///< index within the run
    uint32_t corrupt_bit = 0;    ///< bit offset within that block
  };
  struct AppendOutcome {
    Status status;
    size_t applied = 0;  ///< bytes of the record that reached stable storage
  };

  FaultInjector() : rng_(1) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Starts counting writes under `plan`. Resets the write counter, the
  /// crash latch, and the transient burst state.
  void Arm(const FaultPlan& plan) {
    plan_ = plan;
    rng_ = Random(plan.seed);
    armed_ = true;
    crashed_ = false;
    writes_seen_ = 0;
    bursts_.clear();
  }

  /// Stops injecting. The write counter and crash latch stay readable (the
  /// harness inspects them after tearing a run down).
  void Disarm() { armed_ = false; }

  bool armed() const { return armed_; }
  bool crashed() const { return crashed_; }
  uint64_t writes_seen() const { return writes_seen_; }

  /// Consulted before a run of `nblocks` physical block writes at `site`.
  WriteOutcome OnWrite(const char* site, uint32_t nblocks);

  /// Consulted before a block read; transient errors and the post-crash
  /// blackout apply, nothing else.
  Status OnRead(const char* site, uint32_t nblocks);

  /// Consulted before appending one `nbytes` record to a log file at
  /// `site`. Counts a single write tick; tears at byte granularity.
  AppendOutcome OnAppend(const char* site, size_t nbytes);

  /// Registers that `path` holds appended bytes beyond `durable_size` that
  /// were never fsynced. The first registration per path wins: that is the
  /// stable prefix a crash would expose. Cleared by ClearUnsynced once the
  /// file is synced.
  void NoteUnsynced(const std::string& path, uint64_t durable_size);
  void ClearUnsynced(const std::string& path);

  /// The power-failure half of the model: truncates every file registered
  /// via NoteUnsynced back to its durable prefix. Called by
  /// Database::SimulateCrashAndReopen between teardown and recovery.
  Status ApplyVolatileLoss();

  /// Canonical status for an injected crash; every layer returns exactly
  /// this so callers can tell a simulated power failure from a real error.
  static Status CrashStatus(const char* site) {
    return Status::IOError(std::string(kCrashPrefix) + site);
  }
  static bool IsInjectedCrash(const Status& s) {
    return s.IsIOError() && s.message().rfind(kCrashPrefix, 0) == 0;
  }

  /// Optional `fault.*` accounting. Null registry = unbound.
  void BindStats(StatsRegistry* registry) {
    if (registry == nullptr) return;
    c_crashes_ = registry->counter("fault.injected_crashes");
    c_transients_ = registry->counter("fault.transient_errors");
    c_corruptions_ = registry->counter("fault.corruptions");
  }

  /// Structured-event sink for injected faults (kCrashInjected,
  /// kTransientError, kCorruptionInjected). The injector is borrowed and
  /// outlives the Database, so Database::TearDown re-binds null before the
  /// recorder that owns the log is destroyed.
  void BindEventLog(EventLog* events) { events_ = events; }

 private:
  static constexpr const char* kCrashPrefix = "injected crash: ";

  /// Draws the transient decision for one operation at `site`; returns
  /// true when the op should fail with Unavailable this attempt.
  bool DrawTransient(const char* site);

  FaultPlan plan_;
  Random rng_;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t writes_seen_ = 0;
  std::unordered_map<std::string, uint32_t> bursts_;
  std::map<std::string, uint64_t> unsynced_;  ///< path -> durable size
  Counter* c_crashes_ = nullptr;
  Counter* c_transients_ = nullptr;
  Counter* c_corruptions_ = nullptr;
  EventLog* events_ = nullptr;
};

}  // namespace pglo

#endif  // PGLO_FAULT_FAULT_INJECTOR_H_
