#ifndef PGLO_FAULT_RETRY_H_
#define PGLO_FAULT_RETRY_H_

#include <cstdint>
#include <utility>

#include "common/status.h"
#include "device/sim_clock.h"
#include "obs/event_log.h"
#include "obs/stats.h"
#include "obs/wait_event.h"

namespace pglo {

/// Bounded retry-with-backoff for transient (kUnavailable) device errors.
/// Held by value in the smgr switch and the UFS; the default single attempt
/// makes the policy a no-op until Database wires a real one up.
struct RetryPolicy {
  uint32_t max_attempts = 1;          ///< total attempts, not retries
  uint64_t backoff_start_ns = 200000; ///< simulated wait before attempt 2
  uint32_t backoff_multiplier = 2;    ///< exponential growth per retry
  SimClock* clock = nullptr;          ///< advanced by each backoff wait
  Counter* retries = nullptr;         ///< optional "fault.io_retries" counter
  EventLog* events = nullptr;         ///< optional kIoRetry event sink
  /// Optional `io.retry.backoff` wait point. Unlike every other wait class
  /// this one records SIMULATED ns — the backoff is a clock advance, not a
  /// blocked thread — so its histogram is comparable to the device charges
  /// it punishes.
  const WaitPoint* wait = nullptr;
};

/// Runs `op` (a callable returning Status) up to policy.max_attempts times,
/// retrying only kUnavailable and charging simulated backoff time between
/// attempts. Any other status — including an injected crash — propagates
/// immediately; the last transient status propagates when attempts run out.
template <typename Op>
Status RetryTransient(const RetryPolicy& policy, Op&& op) {
  uint64_t backoff = policy.backoff_start_ns;
  uint32_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  Status s;
  for (uint32_t attempt = 1;; ++attempt) {
    s = op();
    if (!s.IsUnavailable() || attempt >= attempts) return s;
    StatInc(policy.retries);
    if (policy.events != nullptr) {
      policy.events->Append(EventType::kIoRetry, std::string(s.message()),
                            attempt);
    }
    if (policy.clock != nullptr) policy.clock->Advance(backoff);
    RecordSimWait(policy.wait, backoff);
    backoff *= policy.backoff_multiplier;
  }
}

}  // namespace pglo

#endif  // PGLO_FAULT_RETRY_H_
