#ifndef PGLO_FAULT_FAULTY_SMGR_H_
#define PGLO_FAULT_FAULTY_SMGR_H_

#include <memory>
#include <string>
#include <utility>

#include "fault/fault_injector.h"
#include "smgr/smgr.h"

namespace pglo {

/// A StorageManager decorator that consults a FaultInjector before every
/// block operation on the wrapped manager. Reports the inner manager's
/// name, so stats, traces, and the smgr switch see an unchanged identity;
/// with the injector disarmed every call is a plain forward.
///
/// Faults modelled here:
///  - crash-at-Nth-write: the interrupted vectored run is applied as a
///    block-aligned prefix (torn write) or dropped whole, then every later
///    call fails with the injected-crash status;
///  - transient errors: Unavailable before the inner call, leaving the
///    inner state untouched, so a retry succeeds cleanly;
///  - bit corruption: a seed-chosen bit of one block of a written run is
///    flipped on its way down, for the page-checksum path to catch later.
///
/// CreateFile/DropFile count one write tick each (file metadata is a
/// physical update too — a crash point there exercises bootstrap paths
/// that create files before filling them). Reads only fail, never mutate.
class FaultyStorageManager : public StorageManager {
 public:
  FaultyStorageManager(std::unique_ptr<StorageManager> inner,
                       FaultInjector* injector)
      : inner_(std::move(inner)),
        injector_(injector),
        site_("smgr." + inner_->name()) {}

  Status CreateFile(Oid relfile) override;
  Status DropFile(Oid relfile) override;
  bool FileExists(Oid relfile) override { return inner_->FileExists(relfile); }
  Result<BlockNumber> NumBlocks(Oid relfile) override {
    return inner_->NumBlocks(relfile);
  }
  Status ReadBlock(Oid relfile, BlockNumber block, uint8_t* buf) override;
  Status WriteBlock(Oid relfile, BlockNumber block,
                    const uint8_t* buf) override;
  Status ReadBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                    uint8_t* buf) override;
  Status WriteBlocks(Oid relfile, BlockNumber start, uint32_t nblocks,
                     const uint8_t* buf) override;
  Status Sync(Oid relfile) override;
  Result<uint64_t> StorageBytes(Oid relfile) override {
    return inner_->StorageBytes(relfile);
  }
  std::string name() const override { return inner_->name(); }
  void BindStats(StatsRegistry* registry) override {
    inner_->BindStats(registry);
  }

  StorageManager* inner() { return inner_.get(); }

 private:
  /// Applies `outcome` to a write of `nblocks` at `start`: forwards the
  /// applied prefix (with the corrupt bit flipped in a scratch copy when
  /// requested) and returns the injected status.
  Status ApplyWrite(Oid relfile, BlockNumber start, uint32_t nblocks,
                    const uint8_t* buf,
                    const FaultInjector::WriteOutcome& outcome);

  std::unique_ptr<StorageManager> inner_;
  FaultInjector* injector_;
  std::string site_;
};

}  // namespace pglo

#endif  // PGLO_FAULT_FAULTY_SMGR_H_
