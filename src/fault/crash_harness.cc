#include "fault/crash_harness.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <memory>
#include <optional>

#include "common/logging.h"
#include "common/random.h"
#include "db/check.h"
#include "db/database.h"
#include "fault/fault_injector.h"
#include "inversion/inversion_fs.h"
#include "obs/trace_export.h"

namespace pglo {
namespace {

constexpr int kNumSlots = 8;
// Objects stay small enough that every per-object b-tree remains a single
// leaf: index splits are not atomic against a crash between the two page
// writes, an orthogonal (and documented) gap this harness does not probe.
constexpr uint64_t kMaxObjectBytes = 32 * 1024;

bool IsInversionSlot(int s) { return s >= 6; }
// u-file / p-file overwrite UFS bytes in place (non-transactional): only
// the setup transaction mutates them, later ops degrade to verify/delete.
bool IsFileBacked(int s) { return s == 4 || s == 5; }

const char* SlotName(int s) {
  static const char* kNames[kNumSlots] = {
      "fchunk/disk", "fchunk/worm",   "vsegment/disk+rle", "vsegment/worm",
      "ufile",       "postgres-file", "inversion:/h/f0",   "inversion:/h/f1"};
  return kNames[s];
}

void RemoveTree(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

struct ObjState {
  bool exists = false;
  Bytes data;
};

using Model = std::array<ObjState, kNumSlots>;

/// One deterministic replay of the workload against one database
/// directory. All decisions flow from Random(seed) consulting only the
/// in-memory model, so two Replayers with the same options execute
/// byte-identical I/O prefixes regardless of where one of them crashes.
class Replayer {
 public:
  Replayer(const CrashHarnessOptions& opts, std::string dir,
           FaultInjector* injector)
      : opts_(opts), dir_(std::move(dir)), injector_(injector),
        rng_(opts.seed) {
    inv_paths_[6] = "/h/f0";
    inv_paths_[7] = "/h/f1";
    dopts_.dir = dir_;
    dopts_.charge_devices = opts_.charge_devices;
    dopts_.buffer_pool_frames = 64;  // small pool: evictions mid-txn
    dopts_.fault_injector = injector_;
    dopts_.synchronous_commit = opts_.synchronous_commit;
  }

  Status OpenDb() {
    db_ = std::make_unique<Database>();
    PGLO_RETURN_IF_ERROR(db_->Open(dopts_));
    inv_ = std::make_unique<InversionFs>(db_->context(),
                                         &db_->large_objects());
    return Status::OK();
  }

  /// The whole workload: setup transaction, then concurrent pairs, with a
  /// maintenance pass (Vacuum + CompactAll + Vacuum) after each pair.
  /// Returns the injected-crash status as soon as the crash fires.
  Status Replay() {
    PGLO_RETURN_IF_ERROR(Setup());
    uint32_t pairs = std::max<uint32_t>(1, opts_.num_txns / 2);
    for (uint32_t p = 0; p < pairs; ++p) {
      PGLO_RETURN_IF_ERROR(RunPair(p));
      PGLO_RETURN_IF_ERROR(Maintain());
    }
    return Status::OK();
  }

  /// Power-cycle after an injected crash and resolve any in-doubt commit
  /// against the reopened commit log.
  Status Recover() {
    if (db_->is_open()) {
      injector_->Disarm();
      PGLO_RETURN_IF_ERROR(db_->SimulateCrashAndReopen());
    } else {
      // The crash landed inside Database::Open. Destroy the half-built
      // instance while the injector is still armed-and-crashed, so
      // destructor-path flushes (the UFS block cache flushes on teardown)
      // cannot leak post-crash state to disk; then reopen cleanly.
      db_.reset();
      injector_->Disarm();
      PGLO_RETURN_IF_ERROR(injector_->ApplyVolatileLoss());
      db_ = std::make_unique<Database>();
      PGLO_RETURN_IF_ERROR(db_->Open(dopts_));
    }
    inv_ = std::make_unique<InversionFs>(db_->context(),
                                         &db_->large_objects());
    if (in_doubt_.has_value()) {
      // The crash interrupted a commit: the log record either became
      // durable or it did not. The reopened commit log is the authority.
      had_in_doubt_ = true;
      if (db_->txns().commit_log().GetState(in_doubt_->xid) ==
          TxnState::kCommitted) {
        committed_ = std::move(in_doubt_->model);
        if (in_doubt_->setup) inv_ready_ = true;
      }
      in_doubt_.reset();
    }
    return Status::OK();
  }

  /// Oracle 1: every slot matches its last-committed image. Oracle 2:
  /// CheckIntegrity reports zero problems.
  Status Verify() {
    Transaction* txn = db_->Begin();
    Status s = VerifySlots(txn);
    Status ab = db_->Abort(txn);
    PGLO_RETURN_IF_ERROR(s);
    PGLO_RETURN_IF_ERROR(ab);
    PGLO_ASSIGN_OR_RETURN(IntegrityReport rep, CheckIntegrity(db_.get()));
    if (!rep.ok()) return Status::Corruption("fsck: " + rep.ToString());
    return Status::OK();
  }

  Status CloseDb() { return db_->Close(); }

  bool had_in_doubt() const { return had_in_doubt_; }

  /// Streams this replay's spans to `sink` (no-op when stats are off).
  /// Valid until the next crash/reopen discards the registry.
  void AttachTraceSink(TraceSink* sink) {
    if (db_ != nullptr && db_->stats_registry() != nullptr) {
      db_->stats_registry()->SetTraceSink(sink);
    }
  }

  /// Best-effort black-box dump of a still-open instance — used for
  /// failure modes that never pass through SimulateCrashAndReopen (which
  /// dumps on its own).
  void DumpBlackboxIfOpen(const std::string& reason) {
    if (db_ != nullptr && db_->is_open()) {
      Result<std::string> r = db_->DumpBlackbox(reason);
      (void)r;
    }
  }

 private:
  struct TxnRun {
    Transaction* txn = nullptr;
    Model view;              // committed state + this txn's own effects
    std::vector<int> slots;  // disjoint partition within the pair
  };

  struct InDoubt {
    Xid xid = 0;
    Model model;  // what `committed_` becomes if the record survived
    bool setup = false;
  };

  Status Setup() {
    TxnRun tr;
    tr.txn = db_->Begin();
    tr.view = committed_;
    PGLO_RETURN_IF_ERROR(inv_->Bootstrap(tr.txn));
    PGLO_RETURN_IF_ERROR(inv_->MkDir(tr.txn, "/h").status());
    for (int s = 0; s < kNumSlots; ++s) {
      tr.slots.push_back(s);
      PGLO_RETURN_IF_ERROR(CreateSlot(tr.txn, s));
      Bytes init = rng_.RandomBytes(rng_.Range(1, 16000));
      PGLO_RETURN_IF_ERROR(WriteSlot(tr.txn, s, 0, init));
      tr.view[s].exists = true;
      tr.view[s].data = std::move(init);
    }
    return FinishTxn(tr, /*force_commit=*/true, /*setup=*/true);
  }

  /// Maintenance between transaction pairs: Vacuum (whose final act
  /// persists the free-space map sidecar) and online compaction, then a
  /// second Vacuum to reclaim the versions compaction vacated. All three
  /// mutate only physical placement — every committed image is unchanged —
  /// so the model needs no update. The point of running them mid-workload
  /// is that their stable-storage writes (FSM sidecar pages, relocated
  /// chunk inserts, index flips, reclaim rewrites) become enumerable crash
  /// points like any other write, probing recovery across FSM and
  /// compaction ticks.
  Status Maintain() {
    PGLO_RETURN_IF_ERROR(db_->large_objects().Vacuum(db_->Now()).status());
    PGLO_RETURN_IF_ERROR(db_->large_objects().CompactAll().status());
    return db_->large_objects().Vacuum(db_->Now()).status();
  }

  Status RunPair(uint32_t pair) {
    TxnRun t0, t1;
    t0.txn = db_->Begin();
    t1.txn = db_->Begin();
    t0.view = committed_;
    t1.view = committed_;
    for (int s = 0; s < kNumSlots; ++s) {
      ((s + static_cast<int>(pair)) % 2 == 0 ? t0 : t1).slots.push_back(s);
    }
    // Round-robin interleave so both transactions have work in flight
    // when the crash fires.
    for (uint32_t k = 0; k < 2 * opts_.ops_per_txn; ++k) {
      TxnRun& tr = (k % 2 == 0) ? t0 : t1;
      int slot = tr.slots[rng_.Uniform(tr.slots.size())];
      PGLO_RETURN_IF_ERROR(DoOp(tr, slot));
    }
    PGLO_RETURN_IF_ERROR(FinishTxn(t0, /*force_commit=*/false, false));
    return FinishTxn(t1, /*force_commit=*/false, false);
  }

  Status DoOp(TxnRun& tr, int slot) {
    ObjState& st = tr.view[slot];
    uint64_t pick = rng_.Uniform(100);
    if (!st.exists) {
      // Deleted under this view: the slot must stay gone.
      PGLO_ASSIGN_OR_RETURN(bool exists, ExistsSlot(tr.txn, slot));
      if (exists) {
        return Status::Internal(std::string("model mismatch: deleted slot ") +
                                SlotName(slot) + " still resolves");
      }
      return Status::OK();
    }
    // File-backed kinds live in the simulated UFS, which has no crash
    // recovery of its own (the documented caveat): committed state is
    // durable via the commit-time Sync, but a crash while uncommitted
    // UFS metadata is mid-flush can tear the root directory. So after
    // setup these slots are read-verified only — writes, truncates AND
    // deletes (a delete rewrites the UFS directory at GC time) all
    // degrade to verification.
    if (IsFileBacked(slot) && pick < 90) pick = 90;
    if (pick < 45) {  // overwrite at a random in-bounds offset
      uint64_t off = rng_.Uniform(st.data.size() + 1);
      size_t len = static_cast<size_t>(rng_.Range(1, 6000));
      if (off + len > kMaxObjectBytes) {
        len = static_cast<size_t>(kMaxObjectBytes - off);
      }
      if (len == 0) len = 1;
      Bytes data = rng_.RandomBytes(len);
      PGLO_RETURN_IF_ERROR(WriteSlot(tr.txn, slot, off, data));
      if (off + len > st.data.size()) st.data.resize(off + len);
      std::copy(data.begin(), data.end(),
                st.data.begin() + static_cast<ptrdiff_t>(off));
      return Status::OK();
    }
    if (pick < 65) {  // append
      size_t len = static_cast<size_t>(rng_.Range(1, 4000));
      if (st.data.size() + len > kMaxObjectBytes) {
        len = static_cast<size_t>(kMaxObjectBytes - st.data.size());
      }
      if (len > 0) {
        uint64_t off = st.data.size();
        Bytes data = rng_.RandomBytes(len);
        PGLO_RETURN_IF_ERROR(WriteSlot(tr.txn, slot, off, data));
        st.data.insert(st.data.end(), data.begin(), data.end());
        return Status::OK();
      }
      // Object is full — fall through to verification instead.
    } else if (pick < 85) {  // truncate to a random smaller size
      uint64_t nsize = rng_.Uniform(st.data.size() + 1);
      PGLO_RETURN_IF_ERROR(TruncateSlot(tr.txn, slot, nsize));
      st.data.resize(nsize);
      return Status::OK();
    } else if (pick < 90) {  // delete (terminal for the slot)
      PGLO_RETURN_IF_ERROR(DeleteSlot(tr.txn, slot));
      st.exists = false;
      st.data.clear();
      return Status::OK();
    }
    // Read-verify against the transaction's own view.
    PGLO_ASSIGN_OR_RETURN(uint64_t size, SizeSlot(tr.txn, slot));
    if (size != st.data.size()) {
      return Status::Internal(std::string("model mismatch: slot ") +
                              SlotName(slot) + " size " +
                              std::to_string(size) + " != " +
                              std::to_string(st.data.size()));
    }
    PGLO_ASSIGN_OR_RETURN(Bytes got, ReadSlot(tr.txn, slot, size));
    if (got != st.data) {
      return Status::Internal(std::string("model mismatch: slot ") +
                              SlotName(slot) + " content diverged in-txn");
    }
    return Status::OK();
  }

  Status FinishTxn(TxnRun& tr, bool force_commit, bool setup) {
    if (!force_commit && rng_.Uniform(100) >= 70) {
      // Abort. A crash during the abort leaves the transaction aborted
      // either way (no commit record), so the model needs no update.
      return db_->Abort(tr.txn);
    }
    Xid xid = tr.txn->xid();
    Result<CommitTime> r = db_->Commit(tr.txn);
    if (r.ok()) {
      Fold(tr, setup);
      return Status::OK();
    }
    if (FaultInjector::IsInjectedCrash(r.status())) {
      // The commit record may have landed in full before the tear (or the
      // crash hit post-commit garbage collection). Stash both possible
      // worlds; Recover() asks the reopened commit log which one is real.
      InDoubt d;
      d.xid = xid;
      d.model = committed_;
      for (int s : tr.slots) d.model[s] = std::move(tr.view[s]);
      d.setup = setup;
      in_doubt_ = std::move(d);
    }
    return r.status();
  }

  void Fold(TxnRun& tr, bool setup) {
    for (int s : tr.slots) committed_[s] = std::move(tr.view[s]);
    if (setup) inv_ready_ = true;
  }

  // --- slot accessors over the two surfaces ----------------------------

  Status CreateSlot(Transaction* txn, int s) {
    LoSpec spec;
    switch (s) {
      case 0: spec.kind = StorageKind::kFChunk; spec.smgr = kSmgrDisk; break;
      case 1: spec.kind = StorageKind::kFChunk; spec.smgr = kSmgrWorm; break;
      case 2:
        spec.kind = StorageKind::kVSegment;
        spec.smgr = kSmgrDisk;
        spec.codec = "rle";
        break;
      case 3: spec.kind = StorageKind::kVSegment; spec.smgr = kSmgrWorm; break;
      case 4:
        spec.kind = StorageKind::kUserFile;
        spec.ufile_path = "u0.dat";
        break;
      case 5: spec.kind = StorageKind::kPostgresFile; break;
      case 6: spec.kind = StorageKind::kFChunk; spec.smgr = kSmgrDisk; break;
      case 7: spec.kind = StorageKind::kVSegment; spec.smgr = kSmgrDisk; break;
    }
    if (IsInversionSlot(s)) {
      return inv_->Create(txn, inv_paths_[s], spec).status();
    }
    PGLO_ASSIGN_OR_RETURN(Oid oid, db_->large_objects().Create(txn, spec));
    oids_[s] = oid;
    return Status::OK();
  }

  Status WriteSlot(Transaction* txn, int s, uint64_t off, const Bytes& data) {
    if (IsInversionSlot(s)) {
      PGLO_ASSIGN_OR_RETURN(std::unique_ptr<InversionFile> fh,
                            inv_->Open(txn, inv_paths_[s], /*writable=*/true));
      PGLO_RETURN_IF_ERROR(
          fh->Seek(static_cast<int64_t>(off), Whence::kSet).status());
      return fh->Write(Slice(data));
    }
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          db_->large_objects().Instantiate(txn, oids_[s]));
    return lo->Write(txn, off, Slice(data));
  }

  Status TruncateSlot(Transaction* txn, int s, uint64_t size) {
    if (IsInversionSlot(s)) {
      PGLO_ASSIGN_OR_RETURN(std::unique_ptr<InversionFile> fh,
                            inv_->Open(txn, inv_paths_[s], /*writable=*/true));
      return fh->Truncate(size);
    }
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          db_->large_objects().Instantiate(txn, oids_[s]));
    return lo->Truncate(txn, size);
  }

  Status DeleteSlot(Transaction* txn, int s) {
    if (IsInversionSlot(s)) return inv_->Remove(txn, inv_paths_[s]);
    return db_->large_objects().Unlink(txn, oids_[s]);
  }

  Result<bool> ExistsSlot(Transaction* txn, int s) {
    if (IsInversionSlot(s)) return inv_->Exists(txn, inv_paths_[s]);
    return db_->large_objects().Exists(txn, oids_[s]);
  }

  Result<uint64_t> SizeSlot(Transaction* txn, int s) {
    if (IsInversionSlot(s)) {
      PGLO_ASSIGN_OR_RETURN(std::unique_ptr<InversionFile> fh,
                            inv_->Open(txn, inv_paths_[s], /*writable=*/false));
      return fh->Size();
    }
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          db_->large_objects().Instantiate(txn, oids_[s]));
    return lo->Size(txn);
  }

  Result<Bytes> ReadSlot(Transaction* txn, int s, uint64_t size) {
    Bytes buf(static_cast<size_t>(size));
    if (size == 0) return buf;
    if (IsInversionSlot(s)) {
      PGLO_ASSIGN_OR_RETURN(std::unique_ptr<InversionFile> fh,
                            inv_->Open(txn, inv_paths_[s], /*writable=*/false));
      PGLO_ASSIGN_OR_RETURN(size_t n,
                            fh->Read(static_cast<size_t>(size), buf.data()));
      if (n != size) return Status::Corruption("short inversion read");
      return buf;
    }
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          db_->large_objects().Instantiate(txn, oids_[s]));
    PGLO_ASSIGN_OR_RETURN(
        size_t n, lo->Read(txn, 0, static_cast<size_t>(size), buf.data()));
    if (n != size) return Status::Corruption("short lo read");
    return buf;
  }

  Status VerifySlots(Transaction* txn) {
    for (int s = 0; s < kNumSlots; ++s) {
      const ObjState& st = committed_[s];
      if (IsInversionSlot(s)) {
        // Without a committed bootstrap the metadata classes themselves
        // are unreachable; nothing of Inversion survived, which is the
        // correct recovered state.
        if (!inv_ready_) continue;
      } else if (oids_[s] == kInvalidOid) {
        continue;  // the replay crashed before the slot was even created
      }
      PGLO_ASSIGN_OR_RETURN(bool exists, ExistsSlot(txn, s));
      if (exists != st.exists) {
        return Status::Internal(
            std::string("recovery mismatch: slot ") + SlotName(s) +
            (st.exists ? " missing after crash (committed create/write lost)"
                       : " resolves after crash (committed delete lost)"));
      }
      if (!st.exists) continue;
      PGLO_ASSIGN_OR_RETURN(uint64_t size, SizeSlot(txn, s));
      if (size != st.data.size()) {
        return Status::Internal(
            std::string("recovery mismatch: slot ") + SlotName(s) + " size " +
            std::to_string(size) + " != committed " +
            std::to_string(st.data.size()));
      }
      PGLO_ASSIGN_OR_RETURN(Bytes got, ReadSlot(txn, s, size));
      if (got != st.data) {
        size_t at = 0;
        while (at < got.size() && got[at] == st.data[at]) ++at;
        return Status::Internal(
            std::string("recovery mismatch: slot ") + SlotName(s) +
            " diverges from committed image at byte " + std::to_string(at));
      }
    }
    return Status::OK();
  }

  const CrashHarnessOptions& opts_;
  std::string dir_;
  FaultInjector* injector_;
  Random rng_;
  DatabaseOptions dopts_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InversionFs> inv_;

  Model committed_{};
  std::array<Oid, kNumSlots> oids_{};  // all kInvalidOid until created
  std::array<std::string, kNumSlots> inv_paths_{};
  bool inv_ready_ = false;  // setup (bootstrap + creates) committed
  std::optional<InDoubt> in_doubt_;
  bool had_in_doubt_ = false;
};

FaultPlan MakePlan(const CrashHarnessOptions& opts, uint64_t crash_after) {
  FaultPlan plan;
  plan.seed = opts.seed;
  plan.crash_after_writes = crash_after;
  plan.torn_writes = opts.torn_writes;
  plan.transient_error_rate = opts.transient_error_rate;
  return plan;
}

std::string BlackboxIfExists(const std::string& dir) {
  std::string path = dir + "/pglo_blackbox.json";
  std::error_code ec;
  return std::filesystem::exists(path, ec) ? path : std::string();
}

}  // namespace

std::string CrashHarnessReport::ToString() const {
  std::string out = "crash sweep: " + std::to_string(total_points) +
                    " point(s), " + std::to_string(points_run) + " run, " +
                    std::to_string(points_crashed) + " crashed, " +
                    std::to_string(in_doubt_commits) + " in-doubt commit(s)";
  if (failures.empty()) {
    out += " — OK";
  } else {
    out += " — " + std::to_string(failures.size()) + " FAILURE(S):";
    for (const CrashPointResult& f : failures) {
      out += "\n  point " + std::to_string(f.point) + ": " + f.failure;
      if (!f.blackbox.empty()) out += "\n    blackbox: " + f.blackbox;
    }
  }
  return out;
}

Result<uint64_t> CrashHarness::CountCrashPoints() {
  std::string dir = opts_.dir + "/count";
  RemoveTree(dir);
  FaultInjector injector;
  injector.Arm(MakePlan(opts_, /*crash_after=*/0));
  Replayer replay(opts_, dir, &injector);
  PGLO_RETURN_IF_ERROR(replay.OpenDb());
  PGLO_RETURN_IF_ERROR(replay.Replay());
  // Capture the tick count before verification: verify-time evictions
  // would otherwise enumerate points the per-point replays never reach.
  uint64_t points = injector.writes_seen();
  injector.Disarm();
  // Sanity-check the harness itself: with no crash, the final state must
  // already satisfy both oracles.
  PGLO_RETURN_IF_ERROR(replay.Verify());
  PGLO_RETURN_IF_ERROR(replay.CloseDb());
  if (!opts_.keep_dirs) RemoveTree(dir);
  if (points == 0) return Status::Internal("workload produced no writes");
  return points;
}

CrashPointResult CrashHarness::RunCrashPoint(uint64_t point) {
  CrashPointResult res;
  res.point = point;
  std::string dir = opts_.dir + "/pt" + std::to_string(point);
  RemoveTree(dir);
  FaultInjector injector;
  injector.Arm(MakePlan(opts_, point));
  Replayer replay(opts_, dir, &injector);
  Status s = replay.OpenDb();
  // Optional Chrome trace of the replay up to the crash tick (--trace).
  std::unique_ptr<ChromeTraceWriter> trace;
  if (s.ok() && !opts_.trace_path.empty()) {
    Result<std::unique_ptr<ChromeTraceWriter>> tw =
        ChromeTraceWriter::Open(opts_.trace_path);
    if (tw.ok()) {
      trace = std::move(tw.value());
      trace->BeginProcess("crash-point-" + std::to_string(point));
      replay.AttachTraceSink(trace.get());
    } else if (opts_.verbose) {
      PGLO_LOG(Error) << "cannot open trace file: " << tw.status().ToString();
    }
  }
  if (s.ok()) s = replay.Replay();
  // The spans after recovery belong to a fresh registry the writer is no
  // longer attached to; everything up to the crash is already streamed.
  if (trace != nullptr) {
    Status ts = trace->Finish();
    if (!ts.ok()) PGLO_LOG(Error) << "trace finish: " << ts.ToString();
    trace.reset();
  }
  // The replay may run to completion even though the crash fired: a crash
  // during post-commit garbage collection is tolerated by design (the
  // commit record is already durable; storage reclaim is best-effort), so
  // the injector's latch — not the replay status — is the authority.
  if (!injector.crashed()) {
    res.failure = s.ok()
                      ? "crash point never fired; workload ran to completion"
                      : "replay failed before the crash: " + s.ToString();
    replay.DumpBlackboxIfOpen(res.failure);
    res.blackbox = BlackboxIfExists(dir);
    return res;
  }
  res.crash_fired = true;
  // From here on the black box is already on disk: either
  // SimulateCrashAndReopen wrote it on the way down, or the failed Open
  // did. Failing paths only need to point at it.
  s = replay.Recover();
  if (!s.ok()) {
    res.failure = "recovery failed: " + s.ToString();
    res.blackbox = BlackboxIfExists(dir);
    return res;
  }
  res.in_doubt_commit = replay.had_in_doubt();
  s = replay.Verify();
  if (!s.ok()) {
    res.failure = s.ToString();
    res.blackbox = BlackboxIfExists(dir);
    return res;
  }
  s = replay.CloseDb();
  if (!s.ok()) {
    res.failure = "post-recovery close failed: " + s.ToString();
    res.blackbox = BlackboxIfExists(dir);
    return res;
  }
  if (!opts_.keep_dirs) RemoveTree(dir);
  return res;
}

Result<CrashHarnessReport> CrashHarness::RunAll(uint64_t max_points) {
  CrashHarnessReport report;
  PGLO_ASSIGN_OR_RETURN(report.total_points, CountCrashPoints());
  uint64_t stride = 1;
  if (max_points > 0 && report.total_points > max_points) {
    stride = (report.total_points + max_points - 1) / max_points;
  }
  for (uint64_t p = 1; p <= report.total_points; p += stride) {
    CrashPointResult r = RunCrashPoint(p);
    ++report.points_run;
    if (r.crash_fired) ++report.points_crashed;
    if (r.in_doubt_commit) ++report.in_doubt_commits;
    if (opts_.verbose) {
      PGLO_LOG(Info) << "crash point " << p << "/" << report.total_points
                     << (r.ok() ? " ok" : (" FAIL: " + r.failure));
    }
    if (!r.ok()) report.failures.push_back(std::move(r));
  }
  return report;
}

}  // namespace pglo
