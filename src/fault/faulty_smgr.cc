#include "fault/faulty_smgr.h"

#include <cstring>
#include <vector>

namespace pglo {

Status FaultyStorageManager::CreateFile(Oid relfile) {
  auto outcome = injector_->OnWrite(site_.c_str(), 1);
  // File creation is all-or-nothing metadata: on any injected failure the
  // file simply does not come into existence.
  if (!outcome.status.ok()) return outcome.status;
  return inner_->CreateFile(relfile);
}

Status FaultyStorageManager::DropFile(Oid relfile) {
  auto outcome = injector_->OnWrite(site_.c_str(), 1);
  if (!outcome.status.ok()) return outcome.status;
  return inner_->DropFile(relfile);
}

Status FaultyStorageManager::ReadBlock(Oid relfile, BlockNumber block,
                                       uint8_t* buf) {
  PGLO_RETURN_IF_ERROR(injector_->OnRead(site_.c_str(), 1));
  return inner_->ReadBlock(relfile, block, buf);
}

Status FaultyStorageManager::ReadBlocks(Oid relfile, BlockNumber start,
                                        uint32_t nblocks, uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  PGLO_RETURN_IF_ERROR(injector_->OnRead(site_.c_str(), nblocks));
  return inner_->ReadBlocks(relfile, start, nblocks, buf);
}

Status FaultyStorageManager::ApplyWrite(
    Oid relfile, BlockNumber start, uint32_t nblocks, const uint8_t* buf,
    const FaultInjector::WriteOutcome& outcome) {
  uint32_t apply = outcome.status.ok() ? nblocks : outcome.applied;
  if (apply > nblocks) apply = nblocks;
  if (apply > 0) {
    if (outcome.corrupt && outcome.corrupt_block < apply) {
      std::vector<uint8_t> scratch(static_cast<size_t>(apply) * kPageSize);
      std::memcpy(scratch.data(), buf, scratch.size());
      size_t bit = static_cast<size_t>(outcome.corrupt_block) * kPageSize * 8 +
                   outcome.corrupt_bit % (kPageSize * 8);
      scratch[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      PGLO_RETURN_IF_ERROR(
          inner_->WriteBlocks(relfile, start, apply, scratch.data()));
    } else {
      PGLO_RETURN_IF_ERROR(inner_->WriteBlocks(relfile, start, apply, buf));
    }
  }
  return outcome.status;
}

Status FaultyStorageManager::WriteBlock(Oid relfile, BlockNumber block,
                                        const uint8_t* buf) {
  auto outcome = injector_->OnWrite(site_.c_str(), 1);
  return ApplyWrite(relfile, block, 1, buf, outcome);
}

Status FaultyStorageManager::WriteBlocks(Oid relfile, BlockNumber start,
                                         uint32_t nblocks,
                                         const uint8_t* buf) {
  if (nblocks == 0) return Status::OK();
  auto outcome = injector_->OnWrite(site_.c_str(), nblocks);
  return ApplyWrite(relfile, start, nblocks, buf, outcome);
}

Status FaultyStorageManager::Sync(Oid relfile) {
  // Disarmed the injector is a pass-through like every other hook; the
  // crash latch stays readable for the harness but must not fail syncs
  // issued after recovery.
  if (injector_->armed() && injector_->crashed()) {
    return FaultInjector::CrashStatus(site_.c_str());
  }
  return inner_->Sync(relfile);
}

}  // namespace pglo
