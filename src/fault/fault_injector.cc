#include "fault/fault_injector.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/stats.h"

namespace pglo {

bool FaultInjector::DrawTransient(const char* site) {
  if (plan_.transient_error_rate == 0) return false;
  uint32_t& burst = bursts_[site];
  if (burst >= plan_.transient_max_burst) {
    // The site has exhausted its burst budget: this attempt is guaranteed to
    // succeed, so a retry policy with max_attempts > transient_max_burst
    // always converges.
    burst = 0;
    return false;
  }
  if (rng_.Uniform(10000) < plan_.transient_error_rate) {
    ++burst;
    StatInc(c_transients_);
    if (events_ != nullptr) {
      events_->Append(EventType::kTransientError, site, burst);
    }
    return true;
  }
  burst = 0;
  return false;
}

FaultInjector::WriteOutcome FaultInjector::OnWrite(const char* site,
                                                   uint32_t nblocks) {
  WriteOutcome out;
  out.applied = nblocks;
  if (!armed_) return out;
  if (crashed_) {
    out.status = CrashStatus(site);
    out.applied = 0;
    return out;
  }
  if (DrawTransient(site)) {
    out.status = Status::Unavailable(std::string("injected transient: ") + site);
    out.applied = 0;
    return out;
  }
  uint64_t before = writes_seen_;
  writes_seen_ += nblocks;
  if (plan_.crash_after_writes != 0 && before < plan_.crash_after_writes &&
      plan_.crash_after_writes <= before + nblocks) {
    // The crash lands on block (crash_after_writes - before) of this run:
    // the blocks before it are already on the platter, the Nth never
    // completes.
    crashed_ = true;
    StatInc(c_crashes_);
    if (events_ != nullptr) {
      events_->Append(EventType::kCrashInjected, site,
                      plan_.crash_after_writes);
    }
    out.status = CrashStatus(site);
    out.applied = plan_.torn_writes
                      ? static_cast<uint32_t>(plan_.crash_after_writes - 1 -
                                              before)
                      : 0;
    return out;
  }
  if (plan_.corrupt_block_rate != 0 &&
      rng_.Uniform(10000) < plan_.corrupt_block_rate) {
    out.corrupt = true;
    out.corrupt_block = static_cast<uint32_t>(rng_.Uniform(nblocks));
    // Any bit of the 8K block; the page checksum covers them all.
    out.corrupt_bit = static_cast<uint32_t>(rng_.Uniform(8192 * 8));
    StatInc(c_corruptions_);
    if (events_ != nullptr) {
      events_->Append(EventType::kCorruptionInjected, site, out.corrupt_block,
                      out.corrupt_bit);
    }
  }
  return out;
}

Status FaultInjector::OnRead(const char* site, uint32_t nblocks) {
  (void)nblocks;
  if (!armed_) return Status::OK();
  if (crashed_) return CrashStatus(site);
  if (DrawTransient(site)) {
    return Status::Unavailable(std::string("injected transient: ") + site);
  }
  return Status::OK();
}

FaultInjector::AppendOutcome FaultInjector::OnAppend(const char* site,
                                                     size_t nbytes) {
  AppendOutcome out;
  out.applied = nbytes;
  if (!armed_) return out;
  if (crashed_) {
    out.status = CrashStatus(site);
    out.applied = 0;
    return out;
  }
  // One tick regardless of record size: an append is one logical write.
  // No transient draw — the log files model stable storage directly, and a
  // spurious Unavailable on a commit record would turn into a false abort.
  uint64_t before = writes_seen_;
  writes_seen_ += 1;
  if (plan_.crash_after_writes != 0 && before < plan_.crash_after_writes &&
      plan_.crash_after_writes <= before + 1) {
    crashed_ = true;
    StatInc(c_crashes_);
    if (events_ != nullptr) {
      events_->Append(EventType::kCrashInjected, site,
                      plan_.crash_after_writes);
    }
    out.status = CrashStatus(site);
    // Byte-granular tear: 0 = the record never started (clean edge),
    // nbytes = the record landed whole but the caller died before learning
    // so (an in-doubt commit the harness must resolve from the log).
    out.applied = plan_.torn_writes ? rng_.Uniform(nbytes + 1) : 0;
    return out;
  }
  return out;
}

void FaultInjector::NoteUnsynced(const std::string& path,
                                 uint64_t durable_size) {
  // First registration wins: durable_size at first unsynced append is the
  // prefix a power failure would preserve.
  unsynced_.emplace(path, durable_size);
}

void FaultInjector::ClearUnsynced(const std::string& path) {
  unsynced_.erase(path);
}

Status FaultInjector::ApplyVolatileLoss() {
  for (const auto& [path, durable_size] : unsynced_) {
    if (::truncate(path.c_str(), static_cast<off_t>(durable_size)) != 0) {
      return Status::IOError("volatile-loss truncate of " + path + ": " +
                             std::strerror(errno));
    }
  }
  unsynced_.clear();
  return Status::OK();
}

}  // namespace pglo
