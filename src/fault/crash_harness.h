#ifndef PGLO_FAULT_CRASH_HARNESS_H_
#define PGLO_FAULT_CRASH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace pglo {

/// Configuration for one crash-recovery sweep.
struct CrashHarnessOptions {
  /// Host scratch directory. Each crash point runs in its own
  /// subdirectory (`pt<N>`), removed again on success unless `keep_dirs`.
  std::string dir;

  uint64_t seed = 42;

  /// Workload shape: transactions run in concurrent pairs over disjoint
  /// slot partitions, `ops_per_txn` operations each, committing 70% of
  /// the time. The first (setup) transaction always commits in the
  /// no-crash run; under injection it may crash like any other.
  uint32_t num_txns = 10;
  uint32_t ops_per_txn = 3;

  /// Forwarded into the FaultPlan: torn multi-block/append tails, and a
  /// per-10000 transient I/O error rate (exercises the retry policy
  /// underneath the workload — transients never add crash points).
  bool torn_writes = true;
  uint32_t transient_error_rate = 0;

  /// Forwarded into DatabaseOptions. `false` is the deliberately broken
  /// no-fsync commit configuration: the sweep is then EXPECTED to report
  /// failures (lost commits), which is how the regression test proves the
  /// harness has teeth.
  bool synchronous_commit = true;

  /// Keep per-point database directories for post-mortem inspection.
  bool keep_dirs = false;

  bool verbose = false;

  /// When non-empty, single-point replays stream their spans to this
  /// Chrome trace file — the run up to the crash tick, visualized. Only
  /// meaningful together with charge_devices (an uncharged run's spans all
  /// sit at simulated time zero).
  std::string trace_path;

  /// Charge device timing models during replay. Off by default: crash
  /// points are write-count-indexed, so timing changes nothing, and the
  /// sweep runs faster without it. Turned on for traced replays.
  bool charge_devices = false;
};

/// Outcome of replaying the workload against one crash point.
struct CrashPointResult {
  uint64_t point = 0;
  /// The injected crash actually fired during replay (it must: every
  /// enumerated point lies inside the no-crash run's write sequence).
  bool crash_fired = false;
  /// The crash hit a commit whose log record may or may not have become
  /// durable; the verdict was read back from the commit log after reopen.
  bool in_doubt_commit = false;
  /// Empty when both oracles passed: every surviving object matches its
  /// last-committed image, and pglo_fsck-style CheckIntegrity is clean.
  std::string failure;
  /// Path of the flight recorder's black-box dump (pglo_blackbox.json)
  /// when one was produced — set for every failing point, whose directory
  /// is always kept.
  std::string blackbox;

  bool ok() const { return failure.empty(); }
};

struct CrashHarnessReport {
  uint64_t total_points = 0;   ///< enumerated from the no-crash run
  uint64_t points_run = 0;
  uint64_t points_crashed = 0;
  uint64_t in_doubt_commits = 0;
  std::vector<CrashPointResult> failures;

  bool ok() const { return points_run > 0 && failures.empty(); }
  std::string ToString() const;
};

/// Deterministic crash-recovery sweep (ISSUE 5 tentpole).
///
/// The harness drives one fixed seeded workload — LO create / write /
/// truncate / delete across all four implementations (f-chunk, v-segment,
/// u-file, p-file) on disk and WORM, plus two Inversion files, under
/// concurrent transaction pairs — against a FaultInjector-instrumented
/// Database. A first armed-but-never-crashing run counts every stable
/// write tick (the crash points) and sanity-checks the final state; then
/// each selected point N replays the identical prefix, crashes at the
/// N-th write, recovers via Database::SimulateCrashAndReopen (or a fresh
/// Open when the crash landed inside Open itself), and checks two
/// oracles:
///
///   1. a differential in-memory model that knows which transactions
///      committed — every recovered object must equal its last-committed
///      image byte for byte (commits caught mid-crash are resolved
///      against the reopened commit log, so either outcome is accepted
///      for in-doubt transactions, but never a mix of images);
///   2. CheckIntegrity (the pglo_fsck sweep) must report zero problems.
///
/// Replay determinism: the op stream is generated from Random(seed)
/// consulting only the in-memory model, so a run that crashes at tick N
/// has executed the exact prefix of the no-crash run. File-backed kinds
/// (u-file / p-file) overwrite in place and are therefore only mutated in
/// the setup transaction and deleted/verified afterwards — the documented
/// non-transactional caveat of those kinds.
class CrashHarness {
 public:
  explicit CrashHarness(const CrashHarnessOptions& opts) : opts_(opts) {}

  /// Runs the workload to completion under a counting (never-crashing)
  /// injector, verifies the final state against both oracles, and returns
  /// the number of enumerable crash points.
  Result<uint64_t> CountCrashPoints();

  /// Replays the workload, crashing at the `point`-th stable write
  /// (1-based), then recovers and verifies. Infrastructure errors and
  /// oracle violations both land in `failure`.
  CrashPointResult RunCrashPoint(uint64_t point);

  /// Enumerates all crash points and runs each (max_points == 0), or an
  /// evenly strided sample of at most `max_points` of them.
  Result<CrashHarnessReport> RunAll(uint64_t max_points = 0);

 private:
  CrashHarnessOptions opts_;
};

}  // namespace pglo

#endif  // PGLO_FAULT_CRASH_HARNESS_H_
