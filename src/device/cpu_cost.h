#ifndef PGLO_DEVICE_CPU_COST_H_
#define PGLO_DEVICE_CPU_COST_H_

#include <atomic>
#include <cstdint>

#include "device/sim_clock.h"

namespace pglo {

/// Charges CPU work to the simulated clock at a configured MIPS rate.
///
/// §9.2 of the paper prices its compression algorithms in instructions per
/// byte (8 instr/byte for the ~30 % codec, 20 instr/byte for the ~50 %
/// codec). A Sequent Symmetry CPU of the era executes on the order of
/// 10 MIPS; that default lets the instr/byte constants reproduce the
/// paper's relative slowdowns.
class CpuCostModel {
 public:
  explicit CpuCostModel(SimClock* clock, double mips = 10.0)
      : clock_(clock), mips_(mips) {}

  /// Charges `instructions` of simulated CPU time. Safe to call from
  /// concurrent backends: the instruction total and the clock advance are
  /// both atomic adds.
  void ChargeInstructions(uint64_t instructions) {
    instructions_.fetch_add(instructions, std::memory_order_relaxed);
    uint64_t ns =
        static_cast<uint64_t>(static_cast<double>(instructions) /
                              (mips_ * 1e6) * 1e9);
    clock_->Advance(ns);
  }

  /// Convenience: cost per byte times byte count.
  void ChargePerByte(double instr_per_byte, uint64_t bytes) {
    ChargeInstructions(
        static_cast<uint64_t>(instr_per_byte * static_cast<double>(bytes)));
  }

  uint64_t total_instructions() const {
    return instructions_.load(std::memory_order_relaxed);
  }
  double mips() const { return mips_; }
  void set_mips(double mips) { mips_ = mips; }

 private:
  SimClock* clock_;
  double mips_;
  std::atomic<uint64_t> instructions_{0};
};

}  // namespace pglo

#endif  // PGLO_DEVICE_CPU_COST_H_
