#ifndef PGLO_DEVICE_SIM_CLOCK_H_
#define PGLO_DEVICE_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace pglo {

/// Accumulates simulated elapsed time.
///
/// The paper's evaluation ran on a 1992 Sequent Symmetry with era-appropriate
/// disks and an optical WORM jukebox. We cannot reproduce that testbed, so
/// every block transfer and every charged CPU instruction advances a
/// SimClock instead; benchmarks report simulated seconds. Wall-clock time
/// never enters a measurement, which also makes benchmark output
/// deterministic.
///
/// The counter is atomic so that concurrent backends can charge work against
/// one shared clock: each Advance is a fetch_add, so the total charged is
/// exact regardless of interleaving. A single execution stream observes the
/// same values as the pre-atomic clock.
class SimClock {
 public:
  SimClock() = default;

  /// Advances the clock by `ns` simulated nanoseconds.
  void Advance(uint64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AdvanceSeconds(double s) {
    Advance(static_cast<uint64_t>(s * 1e9));
  }

  uint64_t NowNanos() const { return now_ns_.load(std::memory_order_relaxed); }
  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_{0};
};

/// Scoped stopwatch over a SimClock; Elapsed* report simulated time since
/// construction (or the last Restart).
class SimTimer {
 public:
  explicit SimTimer(const SimClock* clock)
      : clock_(clock), start_ns_(clock->NowNanos()) {}

  void Restart() { start_ns_ = clock_->NowNanos(); }
  uint64_t ElapsedNanos() const { return clock_->NowNanos() - start_ns_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  const SimClock* clock_;
  uint64_t start_ns_;
};

}  // namespace pglo

#endif  // PGLO_DEVICE_SIM_CLOCK_H_
