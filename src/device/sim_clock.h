#ifndef PGLO_DEVICE_SIM_CLOCK_H_
#define PGLO_DEVICE_SIM_CLOCK_H_

#include <cstdint>

namespace pglo {

/// Accumulates simulated elapsed time.
///
/// The paper's evaluation ran on a 1992 Sequent Symmetry with era-appropriate
/// disks and an optical WORM jukebox. We cannot reproduce that testbed, so
/// every block transfer and every charged CPU instruction advances a
/// SimClock instead; benchmarks report simulated seconds. Wall-clock time
/// never enters a measurement, which also makes benchmark output
/// deterministic.
class SimClock {
 public:
  SimClock() = default;

  /// Advances the clock by `ns` simulated nanoseconds.
  void Advance(uint64_t ns) { now_ns_ += ns; }
  void AdvanceSeconds(double s) {
    now_ns_ += static_cast<uint64_t>(s * 1e9);
  }

  uint64_t NowNanos() const { return now_ns_; }
  double NowSeconds() const { return static_cast<double>(now_ns_) * 1e-9; }

  void Reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

/// Scoped stopwatch over a SimClock; Elapsed* report simulated time since
/// construction (or the last Restart).
class SimTimer {
 public:
  explicit SimTimer(const SimClock* clock)
      : clock_(clock), start_ns_(clock->NowNanos()) {}

  void Restart() { start_ns_ = clock_->NowNanos(); }
  uint64_t ElapsedNanos() const { return clock_->NowNanos() - start_ns_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  const SimClock* clock_;
  uint64_t start_ns_;
};

}  // namespace pglo

#endif  // PGLO_DEVICE_SIM_CLOCK_H_
