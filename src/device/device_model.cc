#include "device/device_model.h"

namespace pglo {

namespace {
constexpr double kMsToNs = 1e6;

uint64_t TransferNanos(uint64_t nblocks, uint32_t block_size,
                       double mb_per_s) {
  double bytes = static_cast<double>(nblocks) * block_size;
  double seconds = bytes / (mb_per_s * 1024.0 * 1024.0);
  return static_cast<uint64_t>(seconds * 1e9);
}

/// Per-command overhead + streaming transfer for one `nblocks` command.
///
/// Calibrated so a single-block command costs exactly
/// TransferNanos(1, transfer_mb_per_s): the overhead is the difference
/// between the effective single-block rate and the media rate, so
/// pre-vectored-I/O charge sequences (always one block per command) price
/// bit-identically. A streaming rate at or below the effective rate
/// degenerates to the plain per-block pricing.
uint64_t CommandNanos(uint64_t nblocks, uint32_t block_size,
                      double transfer_mb_per_s, double streaming_mb_per_s) {
  if (streaming_mb_per_s <= transfer_mb_per_s) {
    return TransferNanos(nblocks, block_size, transfer_mb_per_s);
  }
  uint64_t per_command =
      TransferNanos(1, block_size, transfer_mb_per_s) -
      TransferNanos(1, block_size, streaming_mb_per_s);
  return per_command + TransferNanos(nblocks, block_size, streaming_mb_per_s);
}
}  // namespace

void MagneticDiskModel::Charge(uint64_t block, uint64_t nblocks) {
  uint64_t ns = 0;
  if (block != next_sequential_block_) {
    NoteSeek();
    uint64_t distance = block > next_sequential_block_
                            ? block - next_sequential_block_
                            : next_sequential_block_ - block;
    double seek_ms = (next_sequential_block_ != ~0ull &&
                      distance <= params_.near_seek_blocks)
                         ? params_.track_to_track_ms
                         : params_.avg_seek_ms;
    ns += static_cast<uint64_t>(
        (seek_ms + params_.rotational_latency_ms) * kMsToNs);
  }
  ns += CommandNanos(nblocks, params_.block_size, params_.transfer_mb_per_s,
                     params_.streaming_mb_per_s);
  next_sequential_block_ = block + nblocks;
  NoteBusy(ns);
  clock_->Advance(ns);
}

void MagneticDiskModel::ChargeRead(uint64_t block, uint64_t nblocks) {
  TraceSpan span(registry_, h_read_, span_read_name_);
  // Declared after `span`, so the lock is released before the span completes
  // and the recorder sink never runs under the device mutex.
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seeks_before = stats_.seeks;
  NoteRead(nblocks);
  Charge(block, nblocks);
  span.AddDetail(stats_.seeks - seeks_before);
}

void MagneticDiskModel::ChargeWrite(uint64_t block, uint64_t nblocks) {
  TraceSpan span(registry_, h_write_, span_write_name_);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seeks_before = stats_.seeks;
  NoteWrite(nblocks);
  Charge(block, nblocks);
  span.AddDetail(stats_.seeks - seeks_before);
}

void WormJukeboxModel::Charge(uint64_t block, uint64_t nblocks) {
  uint64_t ns = 0;
  uint64_t platter = block / params_.platter_blocks;
  if (platter != current_platter_) {
    if (current_platter_ != ~0ull) {
      ns += static_cast<uint64_t>(params_.platter_switch_ms * kMsToNs);
    }
    current_platter_ = platter;
    next_sequential_block_ = ~0ull;  // a platter exchange loses position
  }
  if (block != next_sequential_block_) {
    NoteSeek();
    bool near = next_sequential_block_ != ~0ull &&
                block > next_sequential_block_ &&
                block - next_sequential_block_ <= params_.near_seek_blocks;
    ns += static_cast<uint64_t>(
        (near ? params_.near_seek_ms : params_.seek_ms) * kMsToNs);
  }
  ns += CommandNanos(nblocks, params_.block_size, params_.transfer_mb_per_s,
                     params_.streaming_mb_per_s);
  next_sequential_block_ = block + nblocks;
  NoteBusy(ns);
  clock_->Advance(ns);
}

void WormJukeboxModel::ChargeRead(uint64_t block, uint64_t nblocks) {
  TraceSpan span(registry_, h_read_, span_read_name_);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seeks_before = stats_.seeks;
  NoteRead(nblocks);
  Charge(block, nblocks);
  span.AddDetail(stats_.seeks - seeks_before);
}

void WormJukeboxModel::ChargeWrite(uint64_t block, uint64_t nblocks) {
  TraceSpan span(registry_, h_write_, span_write_name_);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seeks_before = stats_.seeks;
  NoteWrite(nblocks);
  Charge(block, nblocks);
  span.AddDetail(stats_.seeks - seeks_before);
}

void MemoryDeviceModel::Charge(uint64_t nblocks) {
  uint64_t ns = static_cast<uint64_t>(params_.per_op_us * 1e3) +
                TransferNanos(nblocks, params_.block_size,
                              params_.transfer_mb_per_s);
  NoteBusy(ns);
  clock_->Advance(ns);
}

void MemoryDeviceModel::ChargeRead(uint64_t block, uint64_t nblocks) {
  (void)block;
  TraceSpan span(registry_, h_read_, span_read_name_);
  std::lock_guard<std::mutex> lock(mu_);
  NoteRead(nblocks);
  Charge(nblocks);
}

void MemoryDeviceModel::ChargeWrite(uint64_t block, uint64_t nblocks) {
  (void)block;
  TraceSpan span(registry_, h_write_, span_write_name_);
  std::lock_guard<std::mutex> lock(mu_);
  NoteWrite(nblocks);
  Charge(nblocks);
}

}  // namespace pglo
