#ifndef PGLO_DEVICE_DEVICE_MODEL_H_
#define PGLO_DEVICE_DEVICE_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "device/sim_clock.h"
#include "obs/stats.h"

namespace pglo {

/// Counters exposed by every device model; used by tests and EXPERIMENTS.md
/// to explain elapsed-time results in terms of physical operations.
struct DeviceStats {
  uint64_t reads = 0;        ///< read operations
  uint64_t writes = 0;       ///< write operations
  uint64_t blocks_read = 0;  ///< blocks transferred in
  uint64_t blocks_written = 0;
  uint64_t seeks = 0;        ///< repositionings (non-sequential accesses)
  uint64_t busy_ns = 0;      ///< total simulated device time charged
};

/// Timing model for a block-addressed storage device.
///
/// A DeviceModel does not store data — storage managers and the simulated
/// UNIX file system keep the actual bytes — it only *prices* accesses and
/// advances the shared SimClock. A positional model is kept per device:
/// accessing the block that follows the previous access is sequential
/// (no seek); anything else pays the seek + rotational charge.
///
/// Each ChargeRead/ChargeWrite call is one device *command*. Commands carry
/// a fixed per-command overhead (controller/command processing plus, on
/// rotating media, the rotation lost between back-to-back single-block
/// commands), so a multi-block command streaming `nblocks` at the media
/// rate is cheaper than `nblocks` single-block commands even when those are
/// perfectly sequential. The per-command overhead is calibrated so that a
/// single-block command costs exactly `block_size / transfer_mb_per_s` —
/// the effective per-command rate the pre-vectored-I/O model charged —
/// which keeps per-block charge sequences bit-identical across the
/// introduction of vectored I/O.
class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  /// Charges the clock for reading `nblocks` starting at `block`.
  virtual void ChargeRead(uint64_t block, uint64_t nblocks) = 0;
  /// Charges the clock for writing `nblocks` starting at `block`.
  virtual void ChargeWrite(uint64_t block, uint64_t nblocks) = 0;

  virtual uint32_t block_size() const = 0;
  virtual std::string name() const = 0;

  /// Copy, not reference: Charge* calls from other backends mutate the
  /// counters concurrently, so callers get a coherent point-in-time view.
  DeviceStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats();
  }

  /// Mirrors per-op accounting into `registry` counters named
  /// `device.<label>.{seeks,blocks_read,blocks_written,busy_ns}`, plus
  /// `device.<label>.{read_ns,write_ns}` histograms and trace spans named
  /// `device.<label>.{read,write}` (the leaves of every profiler tree; their
  /// detail payload is the seek count of the charge). Call once at setup; a
  /// null registry leaves the device unbound (no overhead).
  void BindStats(StatsRegistry* registry, const std::string& label) {
    if (registry == nullptr) return;
    registry_ = registry;
    c_seeks_ = registry->counter("device." + label + ".seeks");
    c_blocks_read_ = registry->counter("device." + label + ".blocks_read");
    c_blocks_written_ =
        registry->counter("device." + label + ".blocks_written");
    c_busy_ns_ = registry->counter("device." + label + ".busy_ns");
    h_read_ = registry->histogram("device." + label + ".read_ns");
    h_write_ = registry->histogram("device." + label + ".write_ns");
    span_read_name_ = "device." + label + ".read";
    span_write_name_ = "device." + label + ".write";
  }

 protected:
  // Span plumbing for subclasses' ChargeRead/ChargeWrite.
  StatsRegistry* registry_ = nullptr;
  Histogram* h_read_ = nullptr;
  Histogram* h_write_ = nullptr;
  std::string span_read_name_;
  std::string span_write_name_;

  void NoteRead(uint64_t nblocks) {
    ++stats_.reads;
    stats_.blocks_read += nblocks;
    StatAdd(c_blocks_read_, nblocks);
  }
  void NoteWrite(uint64_t nblocks) {
    ++stats_.writes;
    stats_.blocks_written += nblocks;
    StatAdd(c_blocks_written_, nblocks);
  }
  void NoteSeek() {
    ++stats_.seeks;
    StatInc(c_seeks_);
  }
  void NoteBusy(uint64_t ns) {
    stats_.busy_ns += ns;
    StatAdd(c_busy_ns_, ns);
  }

  DeviceStats stats_;

  // Serializes each device command: the positional model (sequential-vs-seek
  // detection) and DeviceStats are read-modify-write state. Subclasses hold
  // it across NoteRead/NoteWrite + Charge so seek accounting is coherent.
  mutable std::mutex mu_;

 private:
  Counter* c_seeks_ = nullptr;
  Counter* c_blocks_read_ = nullptr;
  Counter* c_blocks_written_ = nullptr;
  Counter* c_busy_ns_ = nullptr;
};

/// Magnetic disk parameters (defaults are a circa-1992 5.25" SCSI drive of
/// the class attached to the paper's Sequent Symmetry: ~13 ms average seek,
/// 3600–5400 RPM, ~1.5–2.5 MB/s media rate).
struct DiskModelParams {
  uint32_t block_size = 8192;
  double avg_seek_ms = 13.0;
  double track_to_track_ms = 2.5;
  double rotational_latency_ms = 7.0;  ///< half a revolution at ~4300 RPM
  /// Effective rate of a *single-block command*: media rate degraded by the
  /// per-command SCSI processing and the rotation slipped between
  /// back-to-back commands.
  double transfer_mb_per_s = 2.0;
  /// Media (streaming) rate achieved inside one multi-block command, where
  /// nothing interrupts the platter. The gap between this and
  /// `transfer_mb_per_s` defines the per-command overhead; values at or
  /// below `transfer_mb_per_s` disable the distinction.
  double streaming_mb_per_s = 3.0;
  /// Accesses within this many blocks of the previous position are charged
  /// a track-to-track seek instead of an average seek.
  uint64_t near_seek_blocks = 64;
};

/// Seek/rotate/transfer model for a magnetic disk.
class MagneticDiskModel : public DeviceModel {
 public:
  MagneticDiskModel(SimClock* clock, DiskModelParams params = {})
      : clock_(clock), params_(params) {}

  void ChargeRead(uint64_t block, uint64_t nblocks) override;
  void ChargeWrite(uint64_t block, uint64_t nblocks) override;

  uint32_t block_size() const override { return params_.block_size; }
  std::string name() const override { return "magnetic-disk"; }

 private:
  void Charge(uint64_t block, uint64_t nblocks);

  SimClock* clock_;
  DiskModelParams params_;
  uint64_t next_sequential_block_ = ~0ull;
};

/// Optical WORM jukebox parameters. The paper used a (local or remote)
/// optical disk jukebox; random access pays a long head/platter
/// repositioning, sequential streaming is respectable, and §9.3 notes the
/// measured device delivered only ~1/4 of its specified raw throughput —
/// the default transfer rate reflects the measured device.
struct WormModelParams {
  uint32_t block_size = 8192;
  /// Optical head repositioning + media settle. Early-90s jukebox-resident
  /// WORM drives took several hundred milliseconds to reposition —
  /// an order of magnitude past a magnetic disk, which is what makes the
  /// magnetic-disk block cache decisive in §9.3.
  double seek_ms = 300.0;
  /// Effective rate of a single-block command — the paper's *measured*
  /// throughput, "approximately one-quarter of the rated speed of the
  /// drive". Most of that gap is per-command settle, which is exactly what
  /// a per-block access pattern pays on every block.
  double transfer_mb_per_s = 0.65;
  /// Rated streaming rate inside one multi-block command (the spec'd
  /// throughput the measured per-block pattern could not reach). Values at
  /// or below `transfer_mb_per_s` disable the distinction.
  double streaming_mb_per_s = 2.6;
  /// Small forward gaps (interleaved metadata blocks in an otherwise
  /// streaming read) are absorbed by the drive's read-ahead at a settle
  /// cost, not a full head reposition.
  uint64_t near_seek_blocks = 512;
  double near_seek_ms = 25.0;
  /// Accesses farther than this from the current position occasionally
  /// require a platter exchange in the jukebox.
  uint64_t platter_blocks = 128 * 1024;  ///< ~1 GB platter side at 8 KB
  double platter_switch_ms = 4000.0;
};

/// Timing model for a write-once optical jukebox. Write-once *enforcement*
/// lives in the WORM storage manager; this class only prices the physics.
class WormJukeboxModel : public DeviceModel {
 public:
  WormJukeboxModel(SimClock* clock, WormModelParams params = {})
      : clock_(clock), params_(params) {}

  void ChargeRead(uint64_t block, uint64_t nblocks) override;
  void ChargeWrite(uint64_t block, uint64_t nblocks) override;

  uint32_t block_size() const override { return params_.block_size; }
  std::string name() const override { return "worm-jukebox"; }

 private:
  void Charge(uint64_t block, uint64_t nblocks);

  SimClock* clock_;
  WormModelParams params_;
  uint64_t next_sequential_block_ = ~0ull;
  uint64_t current_platter_ = ~0ull;
};

/// Battery-backed RAM ("non-volatile random-access memory" in §7): uniform
/// access, no positional component.
struct MemoryModelParams {
  uint32_t block_size = 8192;
  double transfer_mb_per_s = 40.0;
  double per_op_us = 2.0;  ///< bus/setup cost per operation
};

class MemoryDeviceModel : public DeviceModel {
 public:
  MemoryDeviceModel(SimClock* clock, MemoryModelParams params = {})
      : clock_(clock), params_(params) {}

  void ChargeRead(uint64_t block, uint64_t nblocks) override;
  void ChargeWrite(uint64_t block, uint64_t nblocks) override;

  uint32_t block_size() const override { return params_.block_size; }
  std::string name() const override { return "nvram"; }

 private:
  void Charge(uint64_t nblocks);

  SimClock* clock_;
  MemoryModelParams params_;
};

}  // namespace pglo

#endif  // PGLO_DEVICE_DEVICE_MODEL_H_
