#include "obs/wait_event.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace pglo {

const char* WaitEventName(WaitEvent e) {
  switch (e) {
    case WaitEvent::kNone:
      return "none";
    case WaitEvent::kLatchBufPool:
      return "latch.bufpool";
    case WaitEvent::kLatchRelHeap:
      return "latch.rel.heap";
    case WaitEvent::kLatchRelBtree:
      return "latch.rel.btree";
    case WaitEvent::kLatchRelOther:
      return "latch.rel.other";
    case WaitEvent::kBufPoolPinWait:
      return "bufpool.pin_wait";
    case WaitEvent::kBufPoolDataSync:
      return "bufpool.data_sync";
    case WaitEvent::kClogMutex:
      return "clog.mutex";
    case WaitEvent::kClogFsync:
      return "clog.fsync";
    case WaitEvent::kTxnCommitSerialize:
      return "txn.commit_serialize";
    case WaitEvent::kGroupCommitFollower:
      return "clog.group_commit.follower";
    case WaitEvent::kGroupCommitGather:
      return "clog.group_commit.gather";
    case WaitEvent::kIoRetryBackoff:
      return "io.retry.backoff";
    case WaitEvent::kNumWaitEvents:
      break;
  }
  return "invalid";
}

uint64_t WaitWallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
thread_local WaitSlot* g_current_wait_slot = nullptr;
}  // namespace

void SetCurrentWaitSlot(WaitSlot* slot) { g_current_wait_slot = slot; }

WaitSlot* CurrentWaitSlot() { return g_current_wait_slot; }

void WaitStatsTable::Bind(StatsRegistry* stats, EventLog* events,
                          uint64_t event_threshold_ns) {
  if (stats == nullptr) return;
  for (size_t i = 1; i < static_cast<size_t>(WaitEvent::kNumWaitEvents); ++i) {
    WaitEvent e = static_cast<WaitEvent>(i);
    std::string base = std::string("wait.") + WaitEventName(e);
    points_[i].event = e;
    points_[i].acquires = stats->counter(base + ".acquires");
    points_[i].contended = stats->counter(base + ".contended");
    points_[i].wait_ns = stats->histogram(base + "_ns");
    points_[i].events = events;
    points_[i].event_threshold_ns = event_threshold_ns;
  }
  bound_ = true;
}

BackendSlot* BackendActivity::Acquire(uint32_t backend_id) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendSlot* slot = nullptr;
  for (auto& s : slots_) {
    if (s->backend_id.load(std::memory_order_relaxed) == 0) {
      slot = s.get();
      break;
    }
  }
  if (slot == nullptr) {
    slots_.push_back(std::make_unique<BackendSlot>());
    slot = slots_.back().get();
  }
  slot->in_txn.store(0, std::memory_order_relaxed);
  slot->xid.store(0, std::memory_order_relaxed);
  slot->begun.store(0, std::memory_order_relaxed);
  slot->committed.store(0, std::memory_order_relaxed);
  slot->aborted.store(0, std::memory_order_relaxed);
  slot->wait.Reset();
  slot->wait.set_backend_id(backend_id);
  // Publish last: a monitor seeing the id sees an initialized slot.
  slot->backend_id.store(backend_id, std::memory_order_release);
  return slot;
}

void BackendActivity::Release(BackendSlot* slot) {
  if (slot == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  slot->backend_id.store(0, std::memory_order_release);
}

std::vector<BackendActivityRow> BackendActivity::Snapshot() const {
  std::vector<BackendActivityRow> rows;
  uint64_t now = WaitWallNowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(slots_.size());
    for (const auto& s : slots_) {
      uint32_t id = s->backend_id.load(std::memory_order_acquire);
      if (id == 0) continue;
      BackendActivityRow row;
      row.backend_id = id;
      row.in_txn = s->in_txn.load(std::memory_order_relaxed) != 0;
      row.xid = s->xid.load(std::memory_order_relaxed);
      row.begun = s->begun.load(std::memory_order_relaxed);
      row.committed = s->committed.load(std::memory_order_relaxed);
      row.aborted = s->aborted.load(std::memory_order_relaxed);
      WaitSlot::Reading r = s->wait.Read();
      row.wait_event = r.event;
      if (r.event != WaitEvent::kNone && now > r.start_ns) {
        row.waiting_ns = now - r.start_ns;
      }
      row.waits = s->wait.waits();
      row.waited_ns = s->wait.waited_ns();
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const BackendActivityRow& a, const BackendActivityRow& b) {
              return a.backend_id < b.backend_id;
            });
  return rows;
}

size_t BackendActivity::live_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& s : slots_) {
    if (s->backend_id.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

}  // namespace pglo
