#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace pglo {

namespace {

uint64_t Duration(uint64_t begin_ns, uint64_t end_ns) {
  return end_ns >= begin_ns ? end_ns - begin_ns : 0;
}

void SpanNodeToJson(const FlightRecorder::SpanNode& node, JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->String(node.name);
  w->Key("begin_ns");
  w->Uint(node.begin_ns);
  w->Key("end_ns");
  w->Uint(node.end_ns);
  if (node.detail != 0) {
    w->Key("detail");
    w->Uint(node.detail);
  }
  if (!node.children.empty()) {
    w->Key("children");
    w->BeginArray();
    for (const FlightRecorder::SpanNode& child : node.children) {
      SpanNodeToJson(child, w);
    }
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options,
                               StatsRegistry* registry)
    : options_(options),
      registry_(registry),
      events_(options.event_capacity) {
  if (options_.trace_capacity == 0) options_.trace_capacity = 1;
  if (options_.delta_capacity == 0) options_.delta_capacity = 1;
  if (options_.slow_op_capacity == 0) options_.slow_op_capacity = 1;
  trace_ring_.reserve(options_.trace_capacity);
  if (registry_ != nullptr) {
    events_.SetClock(registry_->clock());
    next_sample_ns_ = options_.snapshot_interval_ns;
  }
}

void FlightRecorder::OnSpan(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordSpanRing(event);
  if (options_.slow_op_budget_ns > 0) BuildSlowOpTree(event);
  // Sampling only on top-level completions: a delta then always describes
  // a whole number of operations, and the check is one compare per op.
  if (event.depth == 0) MaybeSample(event.end_ns);
}

void FlightRecorder::RecordSpanRing(const TraceEvent& event) {
  ++total_spans_;
  RecordedSpan* slot;
  if (trace_ring_.size() < options_.trace_capacity) {
    trace_ring_.emplace_back();
    slot = &trace_ring_.back();
  } else {
    slot = &trace_ring_[trace_head_];
    // Hot path (every span, always on): branch, not modulo.
    if (++trace_head_ == options_.trace_capacity) trace_head_ = 0;
  }
  slot->name.assign(event.name.data(), event.name.size());
  slot->begin_ns = event.begin_ns;
  slot->end_ns = event.end_ns;
  slot->detail = event.detail;
  slot->depth = event.depth;
}

void FlightRecorder::BuildSlowOpTree(const TraceEvent& event) {
  // Same completion-order discipline as Profiler::OnSpan: everything at
  // the pending tail that is deeper and began no earlier is our direct or
  // transitive child.
  SpanNode node;
  node.name.assign(event.name.data(), event.name.size());
  node.begin_ns = event.begin_ns;
  node.end_ns = event.end_ns;
  node.detail = event.detail;
  while (!pending_.empty() && pending_depth_.back() > event.depth &&
         pending_.back().begin_ns >= event.begin_ns) {
    node.children.push_back(std::move(pending_.back()));
    pending_.pop_back();
    pending_depth_.pop_back();
  }
  std::reverse(node.children.begin(), node.children.end());

  if (event.depth != 0) {
    pending_.push_back(std::move(node));
    pending_depth_.push_back(event.depth);
    return;
  }
  pending_.clear();
  pending_depth_.clear();
  uint64_t dur = Duration(event.begin_ns, event.end_ns);
  // Strictly over budget: an op landing exactly on the budget is within
  // it, and must not be captured (tested boundary).
  if (dur <= options_.slow_op_budget_ns) return;
  SlowOp op;
  op.seq = total_slow_ops_++;
  op.root = std::move(node);
  if (slow_ops_.size() < options_.slow_op_capacity) {
    slow_ops_.push_back(std::move(op));
  } else {
    slow_ops_[slow_head_] = std::move(op);
    slow_head_ = (slow_head_ + 1) % options_.slow_op_capacity;
  }
  events_.Append(EventType::kSlowOp, std::string(event.name), dur,
                 options_.slow_op_budget_ns);
}

void FlightRecorder::MaybeSample(uint64_t now_ns) {
  if (registry_ == nullptr || options_.snapshot_interval_ns == 0) return;
  if (now_ns < next_sample_ns_) return;
  SampleDelta(now_ns);
  // Skip whole missed intervals instead of emitting a burst of empty
  // deltas after a long op.
  uint64_t interval = options_.snapshot_interval_ns;
  next_sample_ns_ += ((now_ns - next_sample_ns_) / interval + 1) * interval;
}

void FlightRecorder::ForceSample() {
  if (registry_ == nullptr) return;
  uint64_t now =
      registry_->clock() != nullptr ? registry_->clock()->NowNanos() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  SampleDelta(now);
}

void FlightRecorder::SampleDelta(uint64_t now_ns) {
  StatsSnapshot cur = registry_->Snapshot();
  SnapshotDelta delta;
  delta.seq = total_deltas_++;
  delta.sim_ns = now_ns;

  // Both snapshots iterate sorted by name; a merge walk yields sorted
  // non-zero deltas. Counters absent from prev are new (delta = value).
  size_t pi = 0;
  for (const auto& [name, value] : cur.counters) {
    while (pi < prev_snapshot_.counters.size() &&
           prev_snapshot_.counters[pi].first < name) {
      ++pi;
    }
    uint64_t prev = 0;
    if (pi < prev_snapshot_.counters.size() &&
        prev_snapshot_.counters[pi].first == name) {
      prev = prev_snapshot_.counters[pi].second;
    }
    if (value > prev) delta.counters.emplace_back(name, value - prev);
  }
  size_t hi = 0;
  for (const StatsSnapshot::HistogramEntry& h : cur.histograms) {
    while (hi < prev_snapshot_.histograms.size() &&
           prev_snapshot_.histograms[hi].name < h.name) {
      ++hi;
    }
    uint64_t prev_count = 0;
    uint64_t prev_sum = 0;
    if (hi < prev_snapshot_.histograms.size() &&
        prev_snapshot_.histograms[hi].name == h.name) {
      prev_count = prev_snapshot_.histograms[hi].count;
      prev_sum = prev_snapshot_.histograms[hi].sum_ns;
    }
    if (h.count > prev_count) {
      delta.counters.emplace_back(h.name + ".count", h.count - prev_count);
      if (h.sum_ns > prev_sum) {
        delta.counters.emplace_back(h.name + ".sum_ns", h.sum_ns - prev_sum);
      }
    }
  }
  std::sort(delta.counters.begin(), delta.counters.end());

  prev_snapshot_ = std::move(cur);
  if (deltas_.size() < options_.delta_capacity) {
    deltas_.push_back(std::move(delta));
  } else {
    deltas_[delta_head_] = std::move(delta);
    delta_head_ = (delta_head_ + 1) % options_.delta_capacity;
  }
}

std::vector<FlightRecorder::RecordedSpan> FlightRecorder::TraceTailLocked()
    const {
  std::vector<RecordedSpan> out;
  out.reserve(trace_ring_.size());
  for (size_t i = 0; i < trace_ring_.size(); ++i) {
    out.push_back(trace_ring_[(trace_head_ + i) % trace_ring_.size()]);
  }
  return out;
}

std::vector<FlightRecorder::RecordedSpan> FlightRecorder::TraceTail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TraceTailLocked();
}

std::vector<FlightRecorder::SnapshotDelta> FlightRecorder::DeltasLocked()
    const {
  std::vector<SnapshotDelta> out;
  out.reserve(deltas_.size());
  for (size_t i = 0; i < deltas_.size(); ++i) {
    out.push_back(deltas_[(delta_head_ + i) % deltas_.size()]);
  }
  return out;
}

std::vector<FlightRecorder::SnapshotDelta> FlightRecorder::Deltas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return DeltasLocked();
}

std::vector<FlightRecorder::SlowOp> FlightRecorder::SlowOpsLocked() const {
  std::vector<SlowOp> out;
  out.reserve(slow_ops_.size());
  for (size_t i = 0; i < slow_ops_.size(); ++i) {
    out.push_back(slow_ops_[(slow_head_ + i) % slow_ops_.size()]);
  }
  return out;
}

std::vector<FlightRecorder::SlowOp> FlightRecorder::SlowOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SlowOpsLocked();
}

std::string FlightRecorder::ToJson(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("pglo-blackbox-v1");
  w.Key("reason");
  w.String(reason);
  uint64_t now =
      registry_ != nullptr && registry_->clock() != nullptr
          ? registry_->clock()->NowNanos()
          : 0;
  w.Key("dumped_at_ns");
  w.Uint(now);

  w.Key("events");
  events_.ToJson(&w);

  if (activity_ != nullptr) {
    // pg_stat_activity at the instant of the dump: one row per connected
    // backend, including the wait class it was blocked on (if any).
    w.Key("backends");
    w.BeginArray();
    for (const BackendActivityRow& row : activity_->Snapshot()) {
      w.BeginObject();
      w.Key("backend_id");
      w.Uint(row.backend_id);
      w.Key("in_txn");
      w.Bool(row.in_txn);
      w.Key("xid");
      w.Uint(row.xid);
      w.Key("begun");
      w.Uint(row.begun);
      w.Key("committed");
      w.Uint(row.committed);
      w.Key("aborted");
      w.Uint(row.aborted);
      w.Key("wait");
      w.String(WaitEventName(row.wait_event));
      w.Key("waiting_ns");
      w.Uint(row.waiting_ns);
      w.Key("waits");
      w.Uint(row.waits);
      w.Key("waited_ns");
      w.Uint(row.waited_ns);
      w.EndObject();
    }
    w.EndArray();
  }

  w.Key("snapshot_deltas");
  w.BeginObject();
  w.Key("total");
  w.Uint(total_deltas_);
  w.Key("interval_ns");
  w.Uint(options_.snapshot_interval_ns);
  w.Key("entries");
  w.BeginArray();
  for (const SnapshotDelta& d : DeltasLocked()) {
    w.BeginObject();
    w.Key("seq");
    w.Uint(d.seq);
    w.Key("sim_ns");
    w.Uint(d.sim_ns);
    w.Key("counters");
    w.BeginObject();
    for (const auto& [name, value] : d.counters) {
      w.Key(name);
      w.Uint(value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("slow_ops");
  w.BeginObject();
  w.Key("budget_ns");
  w.Uint(options_.slow_op_budget_ns);
  w.Key("total");
  w.Uint(total_slow_ops_);
  w.Key("entries");
  w.BeginArray();
  for (const SlowOp& op : SlowOpsLocked()) {
    w.BeginObject();
    w.Key("seq");
    w.Uint(op.seq);
    w.Key("duration_ns");
    w.Uint(Duration(op.root.begin_ns, op.root.end_ns));
    w.Key("tree");
    SpanNodeToJson(op.root, &w);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("trace");
  w.BeginObject();
  w.Key("total");
  w.Uint(total_spans_);
  w.Key("entries");
  w.BeginArray();
  for (const RecordedSpan& span : TraceTailLocked()) {
    w.BeginObject();
    w.Key("name");
    w.String(span.name);
    w.Key("begin_ns");
    w.Uint(span.begin_ns);
    w.Key("end_ns");
    w.Uint(span.end_ns);
    w.Key("depth");
    w.Uint(span.depth);
    if (span.detail != 0) {
      w.Key("detail");
      w.Uint(span.detail);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  if (registry_ != nullptr) {
    // Raw document splice: StatsSnapshot::ToJson emits a complete object.
    w.Key("final_snapshot");
    w.Raw(registry_->Snapshot().ToJson());
  }
  w.EndObject();
  return std::move(w).Take();
}

Status FlightRecorder::DumpToFile(const std::string& path,
                                  const std::string& reason) {
  // Serialize whole dumps: two backends post-morteming at once must not
  // interleave truncate-and-write cycles on the same file. (Distinct from
  // mu_, which ToJson/ForceSample take internally.)
  std::lock_guard<std::mutex> dump_lock(dump_mu_);
  // The forced sample is the "last pre-crash delta": whatever changed
  // since the previous tick is in the dump even when simulated time never
  // advanced far enough to trigger periodic sampling.
  ForceSample();
  events_.Append(EventType::kCrashDump, reason, events_.total_appended());
  std::string doc = ToJson(reason);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  if (std::fclose(f) != 0 || n != doc.size()) {
    return Status::IOError("error writing " + path);
  }
  return Status::OK();
}

}  // namespace pglo
