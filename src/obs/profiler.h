#ifndef PGLO_OBS_PROFILER_H_
#define PGLO_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats.h"

namespace pglo {

/// Per-operation attribution profiler (the EXPLAIN ANALYZE of the simulator).
///
/// PR 1 gave every layer TraceSpans; this turns their completion stream back
/// into span trees and answers "where did this operation's simulated time
/// go?". Attach a Profiler as the registry's TraceSink, run a workload, then
/// render:
///
///   lo.fchunk.read           calls=2500 total=41.234 ms self=3.112 ms
///     -> bufpool             calls=5000 12.003 ms
///     -> device.disk         calls=38   26.119 ms (38 seeks)
///
/// Reconstruction exploits the span discipline: spans are strictly nested
/// and a TraceSink sees them at *completion*, innermost first. The profiler
/// keeps completed spans pending until an enclosing span (lower depth,
/// earlier begin) completes and adopts them; a depth-0 completion closes an
/// operation tree, which is immediately folded into the per-op aggregate, so
/// memory stays bounded by tree width rather than workload length.
///
/// Attribution is by *self* time: each span's duration minus its direct
/// children's, credited to the span's layer (its name minus the final dotted
/// component — "bufpool.get" → "bufpool", "device.disk.read" →
/// "device.disk"). Self times of all spans in a tree sum exactly to the
/// root's duration, so per-layer columns always add up.
class Profiler : public TraceSink {
 public:
  /// Self-time and call count credited to one layer under one operation.
  struct LayerStat {
    uint64_t calls = 0;
    uint64_t self_ns = 0;
    uint64_t detail = 0;  ///< summed TraceEvent::detail (seeks for device.*)
  };

  /// Aggregate over every completed tree rooted at the same span name.
  struct OpProfile {
    uint64_t calls = 0;
    uint64_t total_ns = 0;  ///< sum of root span durations
    uint64_t self_ns = 0;   ///< root time not covered by any child span
    uint64_t detail = 0;    ///< detail recorded on the root spans themselves
    Histogram latency;      ///< distribution of root span durations
    // Sorted map: deterministic render order.
    std::map<std::string, LayerStat> layers;

    /// Sum of all per-layer self times; by construction ≤ total_ns.
    uint64_t ChildNs() const;
  };

  void OnSpan(const TraceEvent& event) override;

  /// Aggregates keyed by root span name ("lo.fchunk.read", ...).
  const std::map<std::string, OpProfile>& profiles() const { return profiles_; }

  /// Profile for one operation; null if that root span never completed.
  const OpProfile* Find(const std::string& op) const;

  /// EXPLAIN-ANALYZE-style report of every profiled operation.
  std::string ToString() const;

  /// Machine-readable form of the same report:
  /// {"ops": {name: {calls, total_ns, self_ns, p50_ns, p99_ns,
  ///                 layers: {layer: {calls, self_ns, detail}}}}}.
  std::string ToJson() const;

  /// Drops all aggregates and any incomplete pending spans.
  void Reset();

  /// Attribution key for a span name: everything before the final dotted
  /// component ("smgr.disk.read" → "smgr.disk"); the name itself when it has
  /// no dot.
  static std::string LayerOf(std::string_view span_name);

 private:
  struct Node {
    std::string name;  // copied: the event's string_view dies with OnSpan
    uint64_t begin_ns = 0;
    uint64_t end_ns = 0;
    uint64_t detail = 0;
    uint32_t depth = 0;
    std::vector<Node> children;  // begin-time order
  };

  void Aggregate(const Node& root);
  void AttributeSubtree(const Node& node, OpProfile* profile);

  std::vector<Node> pending_;  // completed spans awaiting an enclosing span
  std::map<std::string, OpProfile> profiles_;
};

}  // namespace pglo

#endif  // PGLO_OBS_PROFILER_H_
