#ifndef PGLO_OBS_FLIGHT_RECORDER_H_
#define PGLO_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/event_log.h"
#include "obs/stats.h"
#include "obs/wait_event.h"

namespace pglo {

/// Sizing and thresholds for one FlightRecorder (DESIGN.md §12).
struct FlightRecorderOptions {
  /// Most recent completed trace spans retained in the span ring.
  size_t trace_capacity = 1024;
  /// Structured events retained (see EventLog).
  size_t event_capacity = 1024;
  /// StatsSnapshot deltas retained in the time-series ring.
  size_t delta_capacity = 256;
  /// Slow-operation span trees retained.
  size_t slow_op_capacity = 16;
  /// Simulated-time distance between snapshot-delta samples. Sampling is
  /// driven by top-level span completions, so a tick lands on the first
  /// operation boundary after the interval elapses — never mid-span.
  uint64_t snapshot_interval_ns = 1'000'000'000;  // 1 simulated second
  /// A top-level operation strictly exceeding this simulated duration has
  /// its full span tree captured. 0 disables slow-op capture (and its
  /// tree-building bookkeeping) entirely.
  uint64_t slow_op_budget_ns = 0;
};

/// Always-on, bounded-memory black box over the StatsRegistry/TraceSink
/// spine (ISSUE 6 tentpole).
///
/// PR 1's stats and PR 2's profiler are pull-based: numbers exist when a
/// bench asks for them, and they die with the process when a crash harness
/// pulls the plug. The flight recorder inverts that: it is installed for
/// the life of the Database in the registry's dedicated recorder slot
/// (independent of the attachable TraceSink benches use), continuously
/// retaining
///
///   1. the most recent N completed TraceSpans (a rolling trace tail),
///   2. periodic StatsSnapshot *deltas* sampled on simulated-time ticks —
///      a rolling time-series of every counter and histogram,
///   3. full span trees of operations that blew a simulated-time budget
///      (the Profiler's nesting discipline, applied selectively), so a p99
///      outlier is explainable after the fact, not just countable,
///   4. a typed structured EventLog (txn lifecycle, fault injections,
///      recovery repairs, read-ahead ramps, retry bursts).
///
/// Everything lives in fixed-size rings: memory is bounded regardless of
/// workload length, and the retained tail is exactly the history leading
/// up to whatever went wrong. On a crash (or a failed Open) the whole
/// recorder serializes to `pglo_blackbox.json` (DumpToFile), which the
/// crash harness attaches to every failing crash point.
///
/// Like every obs component, the recorder never advances the SimClock, so
/// recorder-on and recorder-off runs report bit-identical simulated times
/// (proven by bench_ablation_obs).
class FlightRecorder : public TraceSink {
 public:
  /// One retained completed span (TraceEvent with the name copied out of
  /// its transient string_view).
  struct RecordedSpan {
    std::string name;
    uint64_t begin_ns = 0;
    uint64_t end_ns = 0;
    uint64_t detail = 0;
    uint32_t depth = 0;
  };

  /// One sampled counter/histogram delta since the previous sample.
  /// Histograms contribute `<name>.count` and `<name>.sum_ns` rows, so the
  /// whole time-series is uniformly (name, delta) pairs, sorted by name.
  struct SnapshotDelta {
    uint64_t seq = 0;
    uint64_t sim_ns = 0;
    std::vector<std::pair<std::string, uint64_t>> counters;
  };

  /// A captured slow operation: the full reconstructed span tree.
  struct SpanNode {
    std::string name;
    uint64_t begin_ns = 0;
    uint64_t end_ns = 0;
    uint64_t detail = 0;
    std::vector<SpanNode> children;
  };
  struct SlowOp {
    uint64_t seq = 0;  ///< capture index (total_slow_ops_ at capture time)
    SpanNode root;
  };

  /// `registry` is consulted (never owned) for snapshot sampling; its
  /// clock stamps events and drives the tick schedule.
  FlightRecorder(const FlightRecorderOptions& options,
                 StatsRegistry* registry);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// TraceSink: ring-appends the span; builds slow-op trees when a budget
  /// is set; samples a snapshot delta when a depth-0 completion crosses
  /// the sampling interval.
  void OnSpan(const TraceEvent& event) override;

  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// Lends the recorder the live per-backend activity table, so every
  /// black-box dump carries a pg_stat_activity-style `backends` section:
  /// who was connected, in what txn state, and what each backend was
  /// waiting on at the instant of the dump. Borrowed; must outlive the
  /// recorder (the Database owns both).
  void SetActivity(const BackendActivity* activity) { activity_ = activity; }

  const FlightRecorderOptions& options() const { return options_; }

  /// Retained spans, oldest first.
  std::vector<RecordedSpan> TraceTail() const;
  uint64_t total_spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_spans_;
  }

  /// Retained snapshot deltas, oldest first.
  std::vector<SnapshotDelta> Deltas() const;
  uint64_t total_deltas() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_deltas_;
  }

  /// Unconditionally samples a delta now (the "last pre-crash delta" every
  /// black-box dump must carry, regardless of whether simulated time ever
  /// advanced — fault-injection runs often hold the clock at zero).
  void ForceSample();

  /// Captured slow operations, oldest first.
  std::vector<SlowOp> SlowOps() const;
  uint64_t total_slow_ops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_slow_ops_;
  }

  /// Serializes the whole recorder (schema "pglo-blackbox-v1"): events,
  /// snapshot-delta time-series, slow ops, trace tail, and a final full
  /// snapshot. `reason` records why the dump was taken.
  std::string ToJson(const std::string& reason);

  /// ForceSample + ToJson + atomic-enough write to `path` (truncate +
  /// rename is overkill for a post-mortem artifact; a torn dump is still
  /// more evidence than none).
  Status DumpToFile(const std::string& path, const std::string& reason);

 private:
  // *Locked helpers assume mu_ is held by the caller.
  void RecordSpanRing(const TraceEvent& event);
  void BuildSlowOpTree(const TraceEvent& event);
  void MaybeSample(uint64_t now_ns);
  void SampleDelta(uint64_t now_ns);
  std::vector<RecordedSpan> TraceTailLocked() const;
  std::vector<SnapshotDelta> DeltasLocked() const;
  std::vector<SlowOp> SlowOpsLocked() const;

  FlightRecorderOptions options_;
  StatsRegistry* registry_;
  const BackendActivity* activity_ = nullptr;
  EventLog events_;

  // Guards every ring and the slow-op pending stack. Concurrent backends
  // complete spans simultaneously; one lock keeps ring indices and the
  // adoption discipline coherent. EventLog has its own lock (always
  // acquired after mu_ when both are taken).
  mutable std::mutex mu_;
  // Serializes DumpToFile invocations (file truncate + write); outermost,
  // taken before mu_.
  std::mutex dump_mu_;

  // Span ring.
  std::vector<RecordedSpan> trace_ring_;
  size_t trace_head_ = 0;
  uint64_t total_spans_ = 0;

  // Snapshot-delta ring + the previous full snapshot it diffs against.
  std::vector<SnapshotDelta> deltas_;
  size_t delta_head_ = 0;
  uint64_t total_deltas_ = 0;
  uint64_t next_sample_ns_ = 0;
  StatsSnapshot prev_snapshot_;

  // Slow-op capture (Profiler-style pending adoption).
  std::vector<SpanNode> pending_;
  std::vector<uint32_t> pending_depth_;
  std::vector<SlowOp> slow_ops_;
  size_t slow_head_ = 0;
  uint64_t total_slow_ops_ = 0;
};

}  // namespace pglo

#endif  // PGLO_OBS_FLIGHT_RECORDER_H_
