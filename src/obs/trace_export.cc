#include "obs/trace_export.h"

#include "common/json.h"

namespace pglo {

Result<std::unique_ptr<ChromeTraceWriter>> ChromeTraceWriter::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot create trace file " + path);
  }
  std::fputs("{\"traceEvents\":[", file);
  return std::unique_ptr<ChromeTraceWriter>(new ChromeTraceWriter(file));
}

ChromeTraceWriter::~ChromeTraceWriter() {
  if (file_ != nullptr) {
    // Best effort on the implicit path; callers wanting the error call
    // Finish() themselves.
    Status s = Finish();
    (void)s;
  }
}

void ChromeTraceWriter::Emit(const std::string& json) {
  if (!first_event_) std::fputc(',', file_);
  first_event_ = false;
  std::fputc('\n', file_);
  std::fputs(json.c_str(), file_);
}

void ChromeTraceWriter::BeginProcess(const std::string& name) {
  ++pid_;
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("process_name");
  w.Key("ph");
  w.String("M");
  w.Key("pid");
  w.Int(pid_);
  w.Key("tid");
  w.Int(0);
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.EndObject();
  w.EndObject();
  Emit(w.str());
}

void ChromeTraceWriter::OnSpan(const TraceEvent& event) {
  if (pid_ == 0) BeginProcess("pglo");  // spans before any explicit track
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(event.name);
  w.Key("cat");
  w.String("sim");
  w.Key("ph");
  w.String("X");
  // Trace-event timestamps are microseconds; keep sub-µs as fractions.
  w.Key("ts");
  w.Double(static_cast<double>(event.begin_ns) / 1000.0);
  w.Key("dur");
  w.Double(static_cast<double>(event.end_ns - event.begin_ns) / 1000.0);
  w.Key("pid");
  w.Int(pid_);
  w.Key("tid");
  w.Int(0);
  w.Key("args");
  w.BeginObject();
  w.Key("depth");
  w.Uint(event.depth);
  if (event.detail != 0) {
    w.Key("detail");
    w.Uint(event.detail);
  }
  w.EndObject();
  w.EndObject();
  Emit(w.str());
}

Status ChromeTraceWriter::Finish() {
  if (file_ == nullptr) return Status::OK();
  std::fputs("\n]}\n", file_);
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("error closing trace file");
  return Status::OK();
}

}  // namespace pglo
