#include "obs/stats.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace pglo {

namespace {

// Index of the most significant set bit (0 for value 0/1).
size_t BucketFor(uint64_t ns) {
  size_t b = 0;
  while (ns > 1) {
    ns >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void Histogram::Record(uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  buckets_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::PercentileNs(double p) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * total);
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      // Upper bound of bucket i, clamped to the observed max.
      uint64_t bound = i + 1 >= 64 ? ~0ull : (1ull << (i + 1)) - 1;
      return std::min(bound, max_ns());
    }
  }
  return max_ns();
}

uint64_t StatsSnapshot::Value(std::string_view name) const {
  auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != counters.end() && it->first == name) return it->second;
  return 0;
}

uint64_t StatsSnapshot::SumPrefix(std::string_view prefix) const {
  uint64_t sum = 0;
  for (const auto& [name, value] : counters) {
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      sum += value;
    }
  }
  return sum;
}

std::string StatsSnapshot::ToString() const {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-40s %16llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const HistogramEntry& h : histograms) {
    if (h.count == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-40s n=%-10llu mean=%.3fms p50=%.3fms p99=%.3fms "
                  "max=%.3fms\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<double>(h.sum_ns) / h.count * 1e-6,
                  static_cast<double>(h.p50_ns) * 1e-6,
                  static_cast<double>(h.p99_ns) * 1e-6,
                  static_cast<double>(h.max_ns) * 1e-6);
    out += buf;
  }
  return out;
}

namespace {

// Indices into `v` ordered by the name `key` extracts. Snapshot() already
// yields sorted vectors (std::map iteration), but ToJson/ToPrometheus must
// stay byte-stable even for snapshots assembled by hand, so they sort an
// index rather than trusting the container.
template <typename V, typename KeyFn>
std::vector<size_t> SortedIndex(const V& v, KeyFn key) {
  std::vector<size_t> idx(v.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return key(v[a]) < key(v[b]); });
  return idx;
}

}  // namespace

std::string StatsSnapshot::ToJson() const {
  std::vector<size_t> cidx =
      SortedIndex(counters, [](const auto& c) -> const std::string& {
        return c.first;
      });
  std::vector<size_t> hidx = SortedIndex(
      histograms,
      [](const HistogramEntry& h) -> const std::string& { return h.name; });
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (size_t i : cidx) {
    const auto& [name, value] = counters[i];
    if (value == 0) continue;
    w.Key(name);
    w.Uint(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (size_t i : hidx) {
    const HistogramEntry& h = histograms[i];
    if (h.count == 0) continue;
    w.Key(h.name);
    w.BeginObject();
    w.Key("count");
    w.Uint(h.count);
    w.Key("sum_ns");
    w.Uint(h.sum_ns);
    w.Key("min_ns");
    w.Uint(h.min_ns);
    w.Key("max_ns");
    w.Uint(h.max_ns);
    w.Key("p50_ns");
    w.Uint(h.p50_ns);
    w.Key("p99_ns");
    w.Uint(h.p99_ns);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted convention maps
// dots (and any other byte) to underscores under a pglo_ namespace prefix.
std::string PromName(const std::string& name) {
  std::string out = "pglo_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

std::string StatsSnapshot::ToPrometheus() const {
  // Sort by the SANITIZED name, not the raw one: '-' < '.' < '_' in ASCII,
  // so raw order diverges from emitted order once names mixing separators
  // exist (e.g. "worm-cache.*" vs "worm.hits" vs "wait.*"). The exposition
  // must be byte-stable AND sorted as the scraper sees it.
  std::vector<size_t> cidx = SortedIndex(
      counters, [](const auto& c) -> std::string { return PromName(c.first); });
  std::vector<size_t> hidx = SortedIndex(
      histograms,
      [](const HistogramEntry& h) -> std::string { return PromName(h.name); });
  std::string out;
  for (size_t i : cidx) {
    const auto& [name, value] = counters[i];
    if (value == 0) continue;
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    AppendUint(&out, value);
    out += '\n';
  }
  for (size_t i : hidx) {
    const HistogramEntry& h = histograms[i];
    if (h.count == 0) continue;
    std::string prom = PromName(h.name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} ";
    AppendUint(&out, h.p50_ns);
    out += '\n';
    out += prom + "{quantile=\"0.99\"} ";
    AppendUint(&out, h.p99_ns);
    out += '\n';
    out += prom + "_sum ";
    AppendUint(&out, h.sum_ns);
    out += '\n';
    out += prom + "_count ";
    AppendUint(&out, h.count);
    out += '\n';
  }
  return out;
}

Counter* StatsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* StatsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

StatsSnapshot StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(names_mu_);
  StatsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    StatsSnapshot::HistogramEntry e;
    e.name = name;
    e.count = hist->count();
    e.sum_ns = hist->sum_ns();
    e.min_ns = hist->min_ns();
    e.max_ns = hist->max_ns();
    e.p50_ns = hist->PercentileNs(50.0);
    e.p99_ns = hist->PercentileNs(99.0);
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(names_mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace pglo
