#include "obs/event_log.h"

#include "common/json.h"

namespace pglo {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kTxnBegin:
      return "txn.begin";
    case EventType::kTxnCommit:
      return "txn.commit";
    case EventType::kTxnAbort:
      return "txn.abort";
    case EventType::kCrashInjected:
      return "fault.crash";
    case EventType::kTransientError:
      return "fault.transient";
    case EventType::kCorruptionInjected:
      return "fault.corruption";
    case EventType::kIoRetry:
      return "fault.retry";
    case EventType::kRecoveryStart:
      return "recovery.start";
    case EventType::kRecoveryRepair:
      return "recovery.repair";
    case EventType::kReadAheadRamp:
      return "readahead.ramp";
    case EventType::kSlowOp:
      return "slow_op.captured";
    case EventType::kCrashDump:
      return "recorder.dump";
    case EventType::kWaitContended:
      return "wait.contended";
    case EventType::kRecoveryFsmRebuild:
      return "recovery.fsm_rebuild";
  }
  return "unknown";
}

void EventLog::Append(EventType type, std::string detail, uint64_t a,
                      uint64_t b) {
  StructuredEvent ev;
  ev.type = type;
  ev.sim_ns = clock_ != nullptr ? clock_->NowNanos() : 0;
  ev.a = a;
  ev.b = b;
  ev.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<StructuredEvent> EventLog::EventsLocked() const {
  std::vector<StructuredEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<StructuredEvent> EventLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EventsLocked();
}

size_t EventLog::CountOf(EventType type) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const StructuredEvent& ev : ring_) {
    if (ev.type == type) ++n;
  }
  return n;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
}

void EventLog::ToJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("total");
  w->Uint(next_seq_);
  w->Key("dropped");
  w->Uint(next_seq_ - ring_.size());
  w->Key("entries");
  w->BeginArray();
  for (const StructuredEvent& ev : EventsLocked()) {
    w->BeginObject();
    w->Key("seq");
    w->Uint(ev.seq);
    w->Key("sim_ns");
    w->Uint(ev.sim_ns);
    w->Key("type");
    w->String(EventTypeName(ev.type));
    if (!ev.detail.empty()) {
      w->Key("detail");
      w->String(ev.detail);
    }
    if (ev.a != 0) {
      w->Key("a");
      w->Uint(ev.a);
    }
    if (ev.b != 0) {
      w->Key("b");
      w->Uint(ev.b);
    }
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace pglo
