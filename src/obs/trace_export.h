#ifndef PGLO_OBS_TRACE_EXPORT_H_
#define PGLO_OBS_TRACE_EXPORT_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/stats.h"

namespace pglo {

/// Streams completed spans to a Chrome trace-event file (the JSON object
/// format: {"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
///
/// Each span becomes one complete ("ph":"X") event with microsecond
/// timestamps taken from the SimClock, so the trace visualizes *simulated*
/// time. Benches run several configurations, each against a fresh Database
/// whose clock restarts at zero; BeginProcess() opens a new pid with a
/// process_name metadata event per configuration so their timelines render
/// as separate tracks instead of overlapping.
class ChromeTraceWriter : public TraceSink {
 public:
  /// Creates/truncates `path` and writes the stream header.
  static Result<std::unique_ptr<ChromeTraceWriter>> Open(
      const std::string& path);

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;
  ~ChromeTraceWriter() override;

  /// Starts a new track: subsequent spans carry a fresh pid labeled `name`.
  void BeginProcess(const std::string& name);

  void OnSpan(const TraceEvent& event) override;

  /// Writes the closing bracket and closes the file. Called by the
  /// destructor if not called explicitly; explicit calls surface I/O errors.
  Status Finish();

 private:
  explicit ChromeTraceWriter(std::FILE* file) : file_(file) {}

  void Emit(const std::string& json);

  std::FILE* file_;
  int pid_ = 0;
  bool first_event_ = true;
};

/// Fans one span stream out to several sinks; the registry holds a single
/// TraceSink pointer, and benches want both a Profiler and a trace file.
class TeeSink : public TraceSink {
 public:
  /// Null sinks are accepted and ignored, so callers can pass optional
  /// sinks unconditionally.
  void Add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  bool empty() const { return sinks_.empty(); }

  void OnSpan(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) sink->OnSpan(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace pglo

#endif  // PGLO_OBS_TRACE_EXPORT_H_
