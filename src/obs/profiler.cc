#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace pglo {

namespace {

uint64_t Duration(uint64_t begin_ns, uint64_t end_ns) {
  return end_ns >= begin_ns ? end_ns - begin_ns : 0;
}

void AppendMs(std::string* out, const char* label, uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.3f ms", label,
                static_cast<double>(ns) * 1e-6);
  *out += buf;
}

}  // namespace

std::string Profiler::LayerOf(std::string_view span_name) {
  size_t dot = span_name.rfind('.');
  if (dot == std::string_view::npos) return std::string(span_name);
  return std::string(span_name.substr(0, dot));
}

uint64_t Profiler::OpProfile::ChildNs() const {
  uint64_t sum = 0;
  for (const auto& [layer, stat] : layers) sum += stat.self_ns;
  return sum;
}

void Profiler::OnSpan(const TraceEvent& event) {
  Node node;
  node.name = std::string(event.name);
  node.begin_ns = event.begin_ns;
  node.end_ns = event.end_ns;
  node.detail = event.detail;
  node.depth = event.depth;

  // Spans complete innermost-first, so every already-completed descendant of
  // this span is sitting at the tail of pending_: deeper, and begun no
  // earlier than us. Adopt them. Popping walks the tail backwards, so
  // reverse afterwards to restore begin-time order.
  while (!pending_.empty() && pending_.back().depth > node.depth &&
         pending_.back().begin_ns >= node.begin_ns) {
    node.children.push_back(std::move(pending_.back()));
    pending_.pop_back();
  }
  std::reverse(node.children.begin(), node.children.end());

  if (node.depth == 0) {
    Aggregate(node);
    // Nothing outer is live, and future spans all begin from now on — any
    // still-pending span can never be adopted. Drop orphans so an
    // instrumentation gap cannot leak memory across operations.
    pending_.clear();
  } else {
    pending_.push_back(std::move(node));
  }
}

void Profiler::Aggregate(const Node& root) {
  OpProfile& profile = profiles_[root.name];
  uint64_t dur = Duration(root.begin_ns, root.end_ns);
  uint64_t child_sum = 0;
  for (const Node& child : root.children) {
    child_sum += Duration(child.begin_ns, child.end_ns);
  }
  profile.calls += 1;
  profile.total_ns += dur;
  profile.self_ns += dur >= child_sum ? dur - child_sum : 0;
  profile.detail += root.detail;
  profile.latency.Record(dur);
  for (const Node& child : root.children) {
    AttributeSubtree(child, &profile);
  }
}

void Profiler::AttributeSubtree(const Node& node, OpProfile* profile) {
  uint64_t dur = Duration(node.begin_ns, node.end_ns);
  uint64_t child_sum = 0;
  for (const Node& child : node.children) {
    child_sum += Duration(child.begin_ns, child.end_ns);
  }
  LayerStat& layer = profile->layers[LayerOf(node.name)];
  layer.calls += 1;
  layer.self_ns += dur >= child_sum ? dur - child_sum : 0;
  layer.detail += node.detail;
  for (const Node& child : node.children) {
    AttributeSubtree(child, profile);
  }
}

const Profiler::OpProfile* Profiler::Find(const std::string& op) const {
  auto it = profiles_.find(op);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::string Profiler::ToString() const {
  std::string out;
  char buf[160];
  for (const auto& [name, p] : profiles_) {
    std::snprintf(buf, sizeof(buf), "%-32s calls=%-8llu ", name.c_str(),
                  static_cast<unsigned long long>(p.calls));
    out += buf;
    AppendMs(&out, "total", p.total_ns);
    out += ' ';
    AppendMs(&out, "self", p.self_ns);
    out += ' ';
    AppendMs(&out, "p50", p.latency.PercentileNs(50.0));
    out += ' ';
    AppendMs(&out, "p99", p.latency.PercentileNs(99.0));
    out += '\n';
    for (const auto& [layer, stat] : p.layers) {
      std::snprintf(buf, sizeof(buf), "  -> %-29s calls=%-8llu %.3f ms",
                    layer.c_str(), static_cast<unsigned long long>(stat.calls),
                    static_cast<double>(stat.self_ns) * 1e-6);
      out += buf;
      if (stat.detail != 0) {
        std::snprintf(buf, sizeof(buf), " (%llu seeks)",
                      static_cast<unsigned long long>(stat.detail));
        out += buf;
      }
      out += '\n';
    }
  }
  return out;
}

std::string Profiler::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("ops");
  w.BeginObject();
  for (const auto& [name, p] : profiles_) {
    w.Key(name);
    w.BeginObject();
    w.Key("calls");
    w.Uint(p.calls);
    w.Key("total_ns");
    w.Uint(p.total_ns);
    w.Key("self_ns");
    w.Uint(p.self_ns);
    w.Key("p50_ns");
    w.Uint(p.latency.PercentileNs(50.0));
    w.Key("p99_ns");
    w.Uint(p.latency.PercentileNs(99.0));
    if (p.detail != 0) {
      w.Key("detail");
      w.Uint(p.detail);
    }
    w.Key("layers");
    w.BeginObject();
    for (const auto& [layer, stat] : p.layers) {
      w.Key(layer);
      w.BeginObject();
      w.Key("calls");
      w.Uint(stat.calls);
      w.Key("self_ns");
      w.Uint(stat.self_ns);
      if (stat.detail != 0) {
        w.Key("detail");
        w.Uint(stat.detail);
      }
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

void Profiler::Reset() {
  pending_.clear();
  profiles_.clear();
}

}  // namespace pglo
