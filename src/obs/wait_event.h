#ifndef PGLO_OBS_WAIT_EVENT_H_
#define PGLO_OBS_WAIT_EVENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/event_log.h"
#include "obs/stats.h"

namespace pglo {

/// Wait-state observability (DESIGN.md §14) — the pg_stat_activity shape.
///
/// Every point where a backend can block (pool latch, pin-wait cv, relation
/// latches, commit-log mutexes, fsync, group-commit queue, retry backoff)
/// reports into this taxonomy: per-class acquire/contended counters and
/// wall-time wait histograms in the StatsRegistry, a per-backend WaitSlot
/// exposing "what is backend N waiting on right now", and a rare structured
/// event for waits long enough to matter in a post-mortem.
///
/// Two rules keep this subsystem honest:
///   1. Wall time, not simulated time. Blocking on a latch never advances
///      the SimClock (only device charges do), so wait durations are
///      measured with the steady clock. The one exception is
///      `io.retry.backoff`, whose "wait" IS a simulated-clock advance; its
///      histogram records the simulated backoff instead. Nothing here ever
///      advances the SimClock, so simulated times stay bit-identical with
///      instrumentation on or off.
///   2. The uncontended path stays near-free. A WaitLock on a free mutex is
///      one relaxed counter increment plus a try_lock; the steady clock is
///      read only after the try_lock has already failed.
enum class WaitEvent : uint8_t {
  kNone = 0,             ///< not waiting (WaitSlot idle value)
  kLatchBufPool,         ///< latch.bufpool — the buffer pool's one mutex
  kLatchRelHeap,         ///< latch.rel.heap — per-relation latch, heap AM
  kLatchRelBtree,        ///< latch.rel.btree — per-relation latch, B-tree AM
  kLatchRelOther,        ///< latch.rel.other — relation latch, unnamed caller
  kBufPoolPinWait,       ///< bufpool.pin_wait — flush waiting for a pin drop
  kBufPoolDataSync,      ///< bufpool.data_sync — commit-time syncfs(2)
  kClogMutex,            ///< clog.mutex — commit-log record/visibility mutex
  kClogFsync,            ///< clog.fsync — commit-log fdatasync (incl. piggyback)
  kTxnCommitSerialize,   ///< txn.commit_serialize — single-commit serializer
  kGroupCommitFollower,  ///< clog.group_commit.follower — waiting on a leader
  kGroupCommitGather,    ///< clog.group_commit.gather — leader's refill wait
  kIoRetryBackoff,       ///< io.retry.backoff — simulated transient-IO backoff
  kNumWaitEvents
};

/// Stable lowercase dotted class name ("latch.bufpool", ...); "none" for
/// kNone. Stats names derive from it: counters `wait.<class>.acquires` /
/// `wait.<class>.contended`, histogram `wait.<class>_ns`.
const char* WaitEventName(WaitEvent e);

/// Monotonic wall-clock nanoseconds (steady clock). Wait durations are real
/// time by design — see the header comment.
uint64_t WaitWallNowNs();

/// Published "what am I waiting on right now" state for one backend.
///
/// The current wait is packed into ONE atomic word — event class in the top
/// 8 bits, wall start tick in the low 56 (2^56 ns ≈ 26 months of uptime) —
/// so a monitoring thread's single load can never observe a torn pair
/// (event from one wait, start tick from another). Begin/End are
/// release-stores; Read is an acquire-load.
class WaitSlot {
 public:
  static constexpr uint64_t kStartMask = (uint64_t{1} << 56) - 1;

  struct Reading {
    WaitEvent event = WaitEvent::kNone;
    uint64_t start_ns = 0;  ///< wall tick the wait began; 0 when idle
  };

  void BeginWait(WaitEvent e, uint64_t wall_start_ns) {
    state_.store((static_cast<uint64_t>(e) << 56) | (wall_start_ns & kStartMask),
                 std::memory_order_release);
  }
  void EndWait(uint64_t waited_ns) {
    state_.store(0, std::memory_order_release);
    waits_.fetch_add(1, std::memory_order_relaxed);
    waited_ns_.fetch_add(waited_ns, std::memory_order_relaxed);
  }

  Reading Read() const {
    uint64_t s = state_.load(std::memory_order_acquire);
    return {static_cast<WaitEvent>(s >> 56), s & kStartMask};
  }

  /// Cumulative contended-wait episodes / wall ns over the slot's lifetime.
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }
  uint64_t waited_ns() const {
    return waited_ns_.load(std::memory_order_relaxed);
  }

  void set_backend_id(uint32_t id) {
    backend_id_.store(id, std::memory_order_relaxed);
  }
  uint32_t backend_id() const {
    return backend_id_.load(std::memory_order_relaxed);
  }

  void Reset() {
    state_.store(0, std::memory_order_relaxed);
    waits_.store(0, std::memory_order_relaxed);
    waited_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> state_{0};
  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> waited_ns_{0};
  std::atomic<uint32_t> backend_id_{0};
};

/// The calling thread's published WaitSlot. Session installs its backend's
/// slot here (at construction and on every Begin, covering sessions handed
/// across threads); deep engine code — pool, commit log — publishes waits
/// through it without ever seeing a Session. Threads without a slot still
/// feed the aggregate counters; they just have no activity row.
void SetCurrentWaitSlot(WaitSlot* slot);
WaitSlot* CurrentWaitSlot();

/// Pre-resolved instrumentation for one wait class. Components hold a
/// `const WaitPoint*`; null (unbound — stats off, or a bare component in a
/// unit test) means the raw uninstrumented path.
struct WaitPoint {
  WaitEvent event = WaitEvent::kNone;
  Counter* acquires = nullptr;   ///< wait.<class>.acquires
  Counter* contended = nullptr;  ///< wait.<class>.contended
  Histogram* wait_ns = nullptr;  ///< wait.<class>_ns (wall; sim for backoff)
  EventLog* events = nullptr;    ///< sink for rare kWaitContended events
  uint64_t event_threshold_ns = 0;  ///< min wall wait to emit an event
};

/// One WaitPoint per taxonomy class, resolved against a StatsRegistry once
/// at Database open. Owned by Database; components receive `point(...)`
/// pointers, which stay valid for the table's lifetime.
class WaitStatsTable {
 public:
  /// Resolves every class's counters/histogram. `events` (nullable) receives
  /// kWaitContended for waits at/above `event_threshold_ns` wall ns.
  void Bind(StatsRegistry* stats, EventLog* events,
            uint64_t event_threshold_ns);

  /// Null for kNone or before Bind, so callers can pass the result straight
  /// into components.
  const WaitPoint* point(WaitEvent e) const {
    if (!bound_ || e == WaitEvent::kNone || e >= WaitEvent::kNumWaitEvents) {
      return nullptr;
    }
    return &points_[static_cast<size_t>(e)];
  }
  bool bound() const { return bound_; }

 private:
  WaitPoint points_[static_cast<size_t>(WaitEvent::kNumWaitEvents)];
  bool bound_ = false;
};

/// RAII around an actual blocking episode: counts it contended, publishes
/// the thread's WaitSlot, and on exit records the wall wait into the class
/// histogram (plus a structured event when it crossed the threshold).
/// Construct only AFTER deciding the path blocks (failed try_lock, cv wait
/// about to happen) — the constructor reads the wall clock.
class WaitGuard {
 public:
  /// `count_acquire` also bumps `.acquires` — the cv-style points, where
  /// there is no separate uncontended acquisition to count.
  explicit WaitGuard(const WaitPoint* wp, bool count_acquire = true) {
    if (wp == nullptr || wp->contended == nullptr) return;
    wp_ = wp;
    if (count_acquire) StatInc(wp->acquires);
    wp->contended->Inc();
    begin_ns_ = WaitWallNowNs();
    slot_ = CurrentWaitSlot();
    if (slot_ != nullptr) slot_->BeginWait(wp->event, begin_ns_);
  }
  ~WaitGuard() {
    if (wp_ == nullptr) return;
    uint64_t waited = WaitWallNowNs() - begin_ns_;
    if (wp_->wait_ns != nullptr) wp_->wait_ns->Record(waited);
    if (slot_ != nullptr) slot_->EndWait(waited);
    if (wp_->events != nullptr && waited >= wp_->event_threshold_ns) {
      wp_->events->Append(EventType::kWaitContended, WaitEventName(wp_->event),
                          waited,
                          slot_ != nullptr ? slot_->backend_id() : 0);
    }
  }
  WaitGuard(const WaitGuard&) = delete;
  WaitGuard& operator=(const WaitGuard&) = delete;

 private:
  const WaitPoint* wp_ = nullptr;
  WaitSlot* slot_ = nullptr;
  uint64_t begin_ns_ = 0;
};

/// Instrumented mutex acquisition. Uncontended: one relaxed increment and a
/// try_lock. Contended: full WaitGuard around the blocking lock(). Unbound:
/// a plain lock().
template <typename Mutex>
inline void WaitLock(Mutex& mu, const WaitPoint* wp) {
  if (wp == nullptr || wp->acquires == nullptr) {
    mu.lock();
    return;
  }
  wp->acquires->Inc();
  if (mu.try_lock()) return;
  WaitGuard guard(wp, /*count_acquire=*/false);
  mu.lock();
}

/// lock_guard with wait instrumentation on the way in.
class WaitLockGuard {
 public:
  WaitLockGuard(std::mutex& mu, const WaitPoint* wp) : mu_(mu) {
    WaitLock(mu_, wp);
  }
  ~WaitLockGuard() { mu_.unlock(); }
  WaitLockGuard(const WaitLockGuard&) = delete;
  WaitLockGuard& operator=(const WaitLockGuard&) = delete;

 private:
  std::mutex& mu_;
};

/// Records a simulated-time wait (the retry backoff path, where "waiting"
/// is a SimClock advance, not a blocked thread). No WaitSlot publication —
/// there is no blocked interval for a monitor to observe.
inline void RecordSimWait(const WaitPoint* wp, uint64_t sim_ns) {
  if (wp == nullptr || wp->contended == nullptr) return;
  StatInc(wp->acquires);
  wp->contended->Inc();
  if (wp->wait_ns != nullptr) wp->wait_ns->Record(sim_ns);
}

/// One backend's row in the activity view (the pg_stat_activity shape).
struct BackendActivityRow {
  uint32_t backend_id = 0;
  bool in_txn = false;
  uint64_t xid = 0;  ///< current transaction's XID; 0 when idle
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  WaitEvent wait_event = WaitEvent::kNone;  ///< current wait; kNone = running
  uint64_t waiting_ns = 0;  ///< wall ns in the current wait so far
  uint64_t waits = 0;       ///< cumulative contended waits
  uint64_t waited_ns = 0;   ///< cumulative wall ns spent waiting
};

/// One live backend's published state. All fields are atomics (or the
/// atomic WaitSlot), so the monitor reads without stopping the backend;
/// backend_id 0 marks a free slot.
struct BackendSlot {
  std::atomic<uint32_t> backend_id{0};
  std::atomic<uint8_t> in_txn{0};
  std::atomic<uint64_t> xid{0};
  std::atomic<uint64_t> begun{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  WaitSlot wait;
};

/// The per-Database table of live backends. Sessions acquire a slot at
/// construction and release it at destruction; slots are pooled (a freed
/// slot is reused) so the table stops growing at the high-water session
/// count. Snapshot() is the monitor's read: lock-free against backends,
/// serialized only against slot-table growth.
class BackendActivity {
 public:
  BackendActivity() = default;
  BackendActivity(const BackendActivity&) = delete;
  BackendActivity& operator=(const BackendActivity&) = delete;

  BackendSlot* Acquire(uint32_t backend_id);
  void Release(BackendSlot* slot);

  /// Rows for every live backend, sorted by backend id. `waiting_ns` is
  /// computed against the wall clock at snapshot time.
  std::vector<BackendActivityRow> Snapshot() const;

  size_t live_count() const;

 private:
  mutable std::mutex mu_;  ///< guards slots_ growth and acquire/release
  std::vector<std::unique_ptr<BackendSlot>> slots_;
};

}  // namespace pglo

#endif  // PGLO_OBS_WAIT_EVENT_H_
