#ifndef PGLO_OBS_STATS_H_
#define PGLO_OBS_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "device/sim_clock.h"

namespace pglo {

/// Cross-layer observability (§9 made self-reporting).
///
/// The paper's entire argument is quantitative — I/O counts, storage
/// overheads, elapsed times per large-object implementation — yet a bench
/// harness can only observe a layer from the outside. This subsystem lets
/// every layer the paper measures report its own physical operations:
/// device models register seeks and transfers, the buffer pool its hit
/// rate, each storage manager its block I/O, each large-object
/// implementation its per-op counts and codec time.
///
/// Design constraints, in order:
///   1. Near-zero overhead. A Counter increment is one add on a pre-resolved
///      pointer; layers resolve their counters once at construction, never
///      per operation. When stats are disabled the layer holds a null
///      registry and skips even that.
///   2. Simulated time only. Histograms and trace spans are stamped against
///      the shared SimClock, never the wall clock, so recorded latencies are
///      exactly the simulated seconds the benchmarks report and output is
///      deterministic.
///   3. No clock interference. Nothing here ever *advances* the clock, so a
///      run with stats on reports identical simulated times to a run with
///      stats off.

/// A named monotonic counter. Obtained from (and owned by) a StatsRegistry;
/// the pointer is stable for the registry's lifetime, so hot paths hold it
/// and increment without any lookup. Increments are relaxed atomic adds, so
/// concurrent backends can share one counter without losing updates.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Inc() { value_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram over simulated nanoseconds: power-of-two buckets
/// (bucket i counts samples in [2^i, 2^(i+1))), plus exact count/sum/min/max.
///
/// All fields are relaxed atomics: concurrent Records never lose samples,
/// and min/max converge via CAS. A snapshot taken while backends are
/// recording may observe fields from slightly different instants (count from
/// before a Record, sum from after) — acceptable for monitoring output, and
/// impossible in a single execution stream.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t ns);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ns() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min_ns() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  uint64_t max_ns() const { return max_.load(std::memory_order_relaxed); }
  double mean_ns() const {
    uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum_ns()) / c;
  }
  /// Upper bound of the bucket holding the p-th percentile sample
  /// (p in [0, 100]); 0 when empty.
  uint64_t PercentileNs(double p) const;

  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// One completed trace span, delivered to a TraceSink.
struct TraceEvent {
  std::string_view name;
  uint64_t begin_ns = 0;  ///< simulated time at span entry
  uint64_t end_ns = 0;    ///< simulated time at span exit
  uint32_t depth = 0;     ///< nesting depth (0 = outermost live span)
  uint64_t detail = 0;    ///< span-specific payload (e.g. seeks for device.*)
};

/// Receives every completed span while attached. Attaching a sink is the
/// expensive mode (per-span virtual call); with no sink, spans only stamp
/// their histogram.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpan(const TraceEvent& event) = 0;
};

/// Point-in-time copy of every counter and histogram, for printing and for
/// delta arithmetic in tests and benchmarks.
struct StatsSnapshot {
  struct HistogramEntry {
    std::string name;
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    uint64_t min_ns = 0;
    uint64_t max_ns = 0;
    uint64_t p50_ns = 0;
    uint64_t p99_ns = 0;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;  ///< sorted by name
  std::vector<HistogramEntry> histograms;                  ///< sorted by name

  /// Value of counter `name`; 0 when absent (absent and never-incremented
  /// are indistinguishable, which is what delta arithmetic wants).
  uint64_t Value(std::string_view name) const;

  /// Sum of every counter whose name starts with `prefix`.
  uint64_t SumPrefix(std::string_view prefix) const;

  /// Human-readable table of all non-zero counters and histograms.
  std::string ToString() const;

  /// Machine-readable form: {"counters": {name: value, ...},
  /// "histograms": {name: {count, sum_ns, min_ns, max_ns, p50_ns, p99_ns}}}.
  /// Zero-valued counters and empty histograms are omitted, matching
  /// ToString, so diffs between snapshots stay small. Keys are emitted in
  /// sorted order, so two snapshots with equal contents serialize to
  /// byte-identical documents (committed BENCH_*.json files diff cleanly).
  std::string ToJson() const;

  /// Prometheus text exposition (version 0.0.4). Counter names are
  /// sanitized to [a-zA-Z0-9_] and prefixed `pglo_`; histograms become
  /// summaries with p50/p99 quantiles plus _count and _sum series. Zero
  /// counters and empty histograms are omitted, matching ToJson.
  std::string ToPrometheus() const;
};

/// Process-wide (per-Database) registry of named counters and histograms.
///
/// Names are dotted paths, `<layer>.<instance?>.<metric>`:
///   device.disk.seeks, bufpool.hits, smgr.worm.blocks_read,
///   lo.fchunk.bytes_read, inversion.path_resolutions.
/// Layers resolve counters once at bind/construction time; the returned
/// pointers stay valid for the registry's lifetime.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// The clock trace spans stamp against. Spans are no-ops until set.
  void SetClock(const SimClock* clock) { clock_ = clock; }
  const SimClock* clock() const { return clock_; }

  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// The attachable sink benches and profilers install per run. Distinct
  /// from the recorder slot below: a bench calling SetTraceSink must not
  /// silently detach the always-on flight recorder.
  void SetTraceSink(TraceSink* sink) { sink_ = sink; }
  TraceSink* trace_sink() const { return sink_; }

  /// The always-on recorder slot, installed for the life of the Database.
  /// Both sinks (when present) see every completed span.
  void SetRecorder(TraceSink* recorder) { recorder_ = recorder; }
  TraceSink* recorder() const { return recorder_; }

  StatsSnapshot Snapshot() const;

  /// Zeroes every counter and histogram (pointers stay valid).
  void Reset();

 private:
  friend class TraceSpan;

  // Span nesting depth is a per-thread property: each backend thread has
  // its own stack of live spans, so the counter is thread_local (one
  // backend observes exactly the sequence the per-registry counter gave).
  static uint32_t& SpanDepthTls() {
    static thread_local uint32_t depth = 0;
    return depth;
  }

  uint32_t EnterSpan() { return SpanDepthTls()++; }
  void ExitSpan(std::string_view name, uint64_t begin_ns, uint64_t end_ns,
                uint32_t depth, uint64_t detail) {
    SpanDepthTls() = depth;
    if (sink_ != nullptr || recorder_ != nullptr) {
      TraceEvent event{name, begin_ns, end_ns, depth, detail};
      if (sink_ != nullptr) sink_->OnSpan(event);
      if (recorder_ != nullptr) recorder_->OnSpan(event);
    }
  }

  const SimClock* clock_ = nullptr;
  TraceSink* sink_ = nullptr;
  TraceSink* recorder_ = nullptr;
  // Guards name → counter/histogram creation; resolved pointers are stable
  // and lock-free to use.
  mutable std::mutex names_mu_;
  // std::map: ordered iteration gives sorted snapshots; unique_ptr gives
  // stable Counter/Histogram addresses across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Scoped operation trace: stamps begin/end against the registry's SimClock,
/// records the simulated duration into `hist` (when non-null), and reports
/// the completed span to the attached TraceSink (when one is attached).
/// With a null registry — stats disabled — construction and destruction do
/// nothing at all.
class TraceSpan {
 public:
  TraceSpan(StatsRegistry* registry, Histogram* hist, std::string_view name)
      : registry_(registry) {
    if (registry_ == nullptr || registry_->clock() == nullptr) {
      registry_ = nullptr;
      return;
    }
    hist_ = hist;
    name_ = name;
    begin_ns_ = registry_->clock()->NowNanos();
    depth_ = registry_->EnterSpan();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (registry_ == nullptr) return;
    uint64_t end_ns = registry_->clock()->NowNanos();
    if (hist_ != nullptr) hist_->Record(end_ns - begin_ns_);
    registry_->ExitSpan(name_, begin_ns_, end_ns, depth_, detail_);
  }

  /// Attaches a span-specific payload (reported via TraceEvent::detail);
  /// device spans use it for the seek count of the charge. No-op when the
  /// span is disabled.
  void AddDetail(uint64_t n) {
    if (registry_ != nullptr) detail_ += n;
  }

  /// True when the span is live (stats enabled); guards any work done only
  /// to compute a detail payload.
  bool active() const { return registry_ != nullptr; }

 private:
  StatsRegistry* registry_;
  Histogram* hist_ = nullptr;
  std::string_view name_;
  uint64_t begin_ns_ = 0;
  uint64_t detail_ = 0;
  uint32_t depth_ = 0;
};

/// Increment helpers tolerating unbound (null) counters, so hot paths can
/// stay branch-light: `StatInc(stat_hits_);`
inline void StatInc(Counter* c) {
  if (c != nullptr) c->Inc();
}
inline void StatAdd(Counter* c, uint64_t n) {
  if (c != nullptr) c->Add(n);
}

}  // namespace pglo

#endif  // PGLO_OBS_STATS_H_
