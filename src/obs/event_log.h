#ifndef PGLO_OBS_EVENT_LOG_H_
#define PGLO_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "device/sim_clock.h"

namespace pglo {

class JsonWriter;

/// Taxonomy of structured events (DESIGN.md §12). One enum, not free-form
/// strings, so consumers (pglo_top, tests, post-mortem tooling) can filter
/// without parsing and a typo cannot silently create a new event kind.
enum class EventType : uint8_t {
  kTxnBegin = 0,       ///< a=xid
  kTxnCommit,          ///< a=xid, b=commit time
  kTxnAbort,           ///< a=xid
  kCrashInjected,      ///< detail=site, a=write tick that crashed
  kTransientError,     ///< detail=site, a=burst length so far
  kCorruptionInjected, ///< detail=site, a=block index, b=bit offset
  kIoRetry,            ///< detail=site, a=attempt number
  kRecoveryStart,      ///< reopen after a (simulated) power failure
  kRecoveryRepair,     ///< detail=what was repaired
  kReadAheadRamp,      ///< detail=layer, a=window reached, b=start block
  kSlowOp,             ///< detail=root span, a=duration ns, b=budget ns
  kCrashDump,          ///< the recorder serialized itself; a=event total
  kWaitContended,      ///< detail=wait class, a=wall wait ns, b=backend id
  kRecoveryFsmRebuild, ///< a=entries repaired, b=entries dropped
};

/// Stable lowercase dotted name for an event type ("txn.begin", ...).
const char* EventTypeName(EventType type);

/// One structured event. `a` and `b` are type-specific numeric arguments
/// (see EventType); `detail` is a short site/operation label.
struct StructuredEvent {
  EventType type = EventType::kTxnBegin;
  uint64_t seq = 0;     ///< monotonically increasing append index
  uint64_t sim_ns = 0;  ///< simulated time at append
  uint64_t a = 0;
  uint64_t b = 0;
  std::string detail;
};

/// Bounded ring of structured events — the typed replacement for ad-hoc
/// logging across txn, fault, recovery, and read-ahead paths. Appends are
/// O(1) and never allocate once the ring has wrapped (slots are reused);
/// when full, the oldest event is overwritten, so the log always holds the
/// most recent `capacity` events leading up to whatever went wrong.
///
/// Appends and reads are internally serialized, so concurrent backends can
/// share one log; events interleave in append order.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Events are stamped against this clock; unset = stamped 0.
  void SetClock(const SimClock* clock) { clock_ = clock; }

  void Append(EventType type, std::string detail, uint64_t a = 0,
              uint64_t b = 0);

  size_t capacity() const { return capacity_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }
  /// Total events ever appended (retained + overwritten).
  uint64_t total_appended() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_;
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_ - ring_.size();
  }

  /// Retained events, oldest first.
  std::vector<StructuredEvent> Events() const;

  /// Count of retained events of `type`.
  size_t CountOf(EventType type) const;

  void Clear();

  /// {"total": N, "dropped": N, "entries": [{seq, sim_ns, type, detail,
  ///  a, b}, ...]} — entries oldest first.
  void ToJson(JsonWriter* w) const;

 private:
  std::vector<StructuredEvent> EventsLocked() const;

  const SimClock* clock_ = nullptr;
  size_t capacity_;
  mutable std::mutex mu_;
  size_t head_ = 0;  ///< slot the next append writes (once wrapped)
  uint64_t next_seq_ = 0;
  std::vector<StructuredEvent> ring_;
};

}  // namespace pglo

#endif  // PGLO_OBS_EVENT_LOG_H_
