#include "heap/heap_class.h"

#include <cstring>

#include "common/logging.h"
#include "storage/free_space_map.h"

namespace pglo {

Status HeapClass::Create(BufferPool* pool, RelFileId file) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, pool->smgrs()->Get(file.smgr_id));
  return smgr->CreateFile(file.relfile);
}

Result<BlockNumber> HeapClass::NumBlocks() const {
  // Overlay-aware: includes pages appended in the pool but not yet
  // materialized in the storage manager.
  return pool_->NumBlocks(file_);
}

Result<Tid> HeapClass::Insert(Transaction* txn, Slice payload) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelHeap);
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (txn->read_only()) {
    return Status::PermissionDenied("time-travel transactions are read-only");
  }
  if (payload.size() > MaxPayload()) {
    return Status::InvalidArgument("tuple payload exceeds page capacity");
  }
  Bytes image = MakeTupleImage(TupleHeader{txn->xid(), kInvalidXid}, payload);

  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks());
  // Candidate pages: the hint, then the last page, then the free-space
  // map, then a fresh page.
  BlockNumber candidates[2] = {kInvalidBlock, kInvalidBlock};
  int ncand = 0;
  if (insert_hint_ != kInvalidBlock && insert_hint_ < nblocks) {
    candidates[ncand++] = insert_hint_;
  }
  if (nblocks > 0 && (ncand == 0 || candidates[0] != nblocks - 1)) {
    candidates[ncand++] = nblocks - 1;
  }
  return InsertImage(image, candidates, ncand, /*use_fsm=*/true);
}

Result<Tid> HeapClass::InsertAppend(Transaction* txn, Slice payload) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelHeap);
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (txn->read_only()) {
    return Status::PermissionDenied("time-travel transactions are read-only");
  }
  if (payload.size() > MaxPayload()) {
    return Status::InvalidArgument("tuple payload exceeds page capacity");
  }
  Bytes image = MakeTupleImage(TupleHeader{txn->xid(), kInvalidXid}, payload);

  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks());
  BlockNumber candidates[1] = {kInvalidBlock};
  int ncand = 0;
  if (nblocks > 0) candidates[ncand++] = nblocks - 1;
  return InsertImage(image, candidates, ncand, /*use_fsm=*/false);
}

Result<Tid> HeapClass::InsertImage(Slice image, const BlockNumber* candidates,
                                   int ncand, bool use_fsm) {
  for (int i = 0; i < ncand; ++i) {
    PGLO_ASSIGN_OR_RETURN(PageHandle handle,
                          pool_->GetPage({file_, candidates[i]}));
    SlottedPage page(handle.data());
    if (!page.IsInitialized()) continue;
    Result<uint16_t> slot = page.AddItem(image);
    if (slot.ok()) {
      handle.MarkDirty();
      pool_->fsm()->UpdateIfTracked(file_, candidates[i], page.FreeSpace());
      insert_hint_ = candidates[i];
      return Tid{candidates[i], slot.value()};
    }
  }
  if (use_fsm) {
    FreeSpaceMap* fsm = pool_->fsm();
    uint32_t needed =
        static_cast<uint32_t>(image.size()) + SlottedPage::kSlotSize;
    // The map is advisory: verify each suggestion by actually trying the
    // insert and discard entries that over-promise. Bounded so a badly
    // drifted map cannot turn one insert into a file scan.
    for (int attempt = 0; attempt < 8; ++attempt) {
      Result<BlockNumber> cand = fsm->FindPage(file_, needed);
      if (!cand.ok()) break;
      BlockNumber b = cand.value();
      bool already_probed = false;
      for (int i = 0; i < ncand; ++i) {
        if (candidates[i] == b) already_probed = true;
      }
      if (!already_probed) {
        PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, b}));
        SlottedPage page(handle.data());
        if (page.IsInitialized()) {
          Result<uint16_t> slot = page.AddItem(image);
          if (slot.ok()) {
            handle.MarkDirty();
            fsm->NoteHit();
            fsm->UpdateIfTracked(file_, b, page.FreeSpace());
            insert_hint_ = b;
            return Tid{b, slot.value()};
          }
        }
      }
      fsm->RemoveEntry(file_, b);
    }
    fsm->NoteMiss();
  }
  BlockNumber new_block;
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->NewPage(file_, &new_block));
  SlottedPage page(handle.data());
  page.Init();
  PGLO_ASSIGN_OR_RETURN(uint16_t slot, page.AddItem(image));
  handle.MarkDirty();
  insert_hint_ = new_block;
  return Tid{new_block, slot};
}

Status HeapClass::Delete(Transaction* txn, Tid tid) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelHeap);
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (txn->read_only()) {
    return Status::PermissionDenied("time-travel transactions are read-only");
  }
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, tid.block}));
  SlottedPage page(handle.data());
  PGLO_ASSIGN_OR_RETURN(Slice item, page.GetItem(tid.slot));
  if (item.size() < TupleHeader::kSize) {
    return Status::Corruption("tuple shorter than its header");
  }
  TupleHeader header = TupleHeader::Decode(item.data());
  if (!txn->snapshot().IsVisible(header.xmin, header.xmax)) {
    return Status::NotFound("tuple version not visible");
  }
  // A stale xmax from an aborted deleter may be overwritten. Any other
  // foreign xmax (in progress, or committed after our snapshot) is a
  // write-write conflict: first updater wins.
  if (header.xmax != kInvalidXid && header.xmax != txn->xid()) {
    TxnState deleter = txn->snapshot().StateOf(header.xmax);
    if (deleter != TxnState::kAborted) {
      return Status::Aborted("write-write conflict on tuple");
    }
  }
  header.xmax = txn->xid();
  // In-place stamp: same length, so OverwriteItem cannot fail for size.
  Bytes image(item.size());
  std::memcpy(image.data(), item.data(), item.size());
  header.EncodeTo(image.data());
  PGLO_RETURN_IF_ERROR(page.OverwriteItem(tid.slot, image));
  handle.MarkDirty();
  return Status::OK();
}

Result<Tid> HeapClass::Update(Transaction* txn, Tid tid, Slice payload) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelHeap);
  // Updating a version this same transaction created (and nobody deleted)
  // replaces it physically: intermediate states within one transaction are
  // not part of history, so keeping them would only bloat storage. This is
  // what lets bulk-loading a large object leave exactly one version per
  // chunk.
  if (txn->active() && !txn->read_only() &&
      payload.size() <= MaxPayload()) {
    PGLO_ASSIGN_OR_RETURN(PageHandle handle,
                          pool_->GetPage({file_, tid.block}));
    SlottedPage page(handle.data());
    Result<Slice> item = page.GetItem(tid.slot);
    if (item.ok() && item.value().size() >= TupleHeader::kSize) {
      TupleHeader header = TupleHeader::Decode(item.value().data());
      if (header.xmin == txn->xid() && header.xmax == kInvalidXid) {
        Bytes image = MakeTupleImage(header, payload);
        if (image.size() <= item.value().size()) {
          PGLO_RETURN_IF_ERROR(page.OverwriteItem(tid.slot, image));
          handle.MarkDirty();
          return tid;
        }
        // Larger replacement: physically retire the old copy (it can never
        // be visible to anyone else) and insert fresh, same page if it
        // fits.
        PGLO_RETURN_IF_ERROR(page.DeleteItem(tid.slot));
        handle.MarkDirty();
        Result<uint16_t> slot = page.AddItem(image);
        if (slot.ok()) {
          pool_->fsm()->UpdateIfTracked(file_, tid.block, page.FreeSpace());
          return Tid{tid.block, slot.value()};
        }
        pool_->fsm()->UpdateIfTracked(file_, tid.block,
                                      page.FreeSpaceAfterCompact());
        handle.Release();
        return Insert(txn, payload);
      }
    }
  }
  PGLO_RETURN_IF_ERROR(Delete(txn, tid));
  return Insert(txn, payload);
}

Result<Bytes> HeapClass::Get(Transaction* txn, Tid tid) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelHeap);
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, tid.block}));
  SlottedPage page(handle.data());
  PGLO_ASSIGN_OR_RETURN(Slice item, page.GetItem(tid.slot));
  if (item.size() < TupleHeader::kSize) {
    return Status::Corruption("tuple shorter than its header");
  }
  TupleHeader header = TupleHeader::Decode(item.data());
  if (!txn->snapshot().IsVisible(header.xmin, header.xmax)) {
    return Status::NotFound("tuple version not visible");
  }
  Slice payload = item.Sub(TupleHeader::kSize, item.size());
  return payload.ToBytes();
}

Result<std::pair<TupleHeader, Bytes>> HeapClass::GetAnyVersion(Tid tid) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelHeap);
  PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, tid.block}));
  SlottedPage page(handle.data());
  PGLO_ASSIGN_OR_RETURN(Slice item, page.GetItem(tid.slot));
  if (item.size() < TupleHeader::kSize) {
    return Status::Corruption("tuple shorter than its header");
  }
  TupleHeader header = TupleHeader::Decode(item.data());
  return std::make_pair(header,
                        item.Sub(TupleHeader::kSize, item.size()).ToBytes());
}

Result<uint64_t> HeapClass::Vacuum(const CommitLog& clog, CommitTime horizon,
                                   uint64_t* pages_emptied) {
  RelLatchGuard latch(pool_->rel_latches(), file_, WaitEvent::kLatchRelHeap);
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks());
  uint64_t removed = 0;
  uint64_t emptied = 0;
  for (BlockNumber b = 0; b < nblocks; ++b) {
    PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file_, b}));
    SlottedPage page(handle.data());
    if (!page.IsInitialized()) continue;
    bool dirtied = false;
    uint64_t live = 0;
    uint16_t nslots = page.NumSlots();
    for (uint16_t s = 0; s < nslots; ++s) {
      Result<Slice> item = page.GetItem(s);
      if (!item.ok()) continue;
      TupleHeader h = TupleHeader::Decode(item.value().data());
      bool dead = false;
      if (clog.GetState(h.xmin) == TxnState::kAborted) {
        dead = true;  // never visible to anyone
      } else if (h.xmax != kInvalidXid &&
                 clog.GetState(h.xmax) == TxnState::kCommitted &&
                 clog.GetCommitTime(h.xmax) <= horizon) {
        dead = true;  // deleted before the retained-history horizon
      }
      if (dead) {
        PGLO_RETURN_IF_ERROR(page.DeleteItem(s));
        dirtied = true;
        ++removed;
      } else {
        ++live;
      }
    }
    if (dirtied) {
      page.Compact();
      handle.MarkDirty();
      if (live == 0) ++emptied;
    }
    // Vacuum is where the free-space map learns about this relation:
    // register (or refresh) every page's usable space so later inserts can
    // fill interior holes instead of only appending.
    pool_->fsm()->RecordFreeSpace(file_, b, page.FreeSpace());
  }
  if (pages_emptied != nullptr) *pages_emptied = emptied;
  return removed;
}

Result<bool> HeapScan::Next(Tid* tid, Bytes* payload) {
  RelLatchGuard latch(heap_->pool_->rel_latches(), heap_->file_, WaitEvent::kLatchRelHeap);
  if (exhausted_) return false;
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, heap_->NumBlocks());
  while (block_ < nblocks) {
    PGLO_ASSIGN_OR_RETURN(PageHandle handle,
                          heap_->pool_->GetPage({heap_->file_, block_}));
    SlottedPage page(handle.data());
    if (page.IsInitialized()) {
      uint16_t nslots = page.NumSlots();
      while (slot_ < nslots) {
        uint16_t s = slot_++;
        Result<Slice> item = page.GetItem(s);
        if (!item.ok()) continue;
        if (item.value().size() < TupleHeader::kSize) {
          return Status::Corruption("tuple shorter than its header");
        }
        TupleHeader header = TupleHeader::Decode(item.value().data());
        if (!txn_->snapshot().IsVisible(header.xmin, header.xmax)) continue;
        *tid = Tid{block_, s};
        *payload =
            item.value().Sub(TupleHeader::kSize, item.value().size()).ToBytes();
        return true;
      }
    }
    ++block_;
    slot_ = 0;
  }
  exhausted_ = true;
  return false;
}

}  // namespace pglo
