#ifndef PGLO_HEAP_TUPLE_H_
#define PGLO_HEAP_TUPLE_H_

#include "common/bytes.h"
#include "txn/xid.h"

namespace pglo {

/// On-page tuple header: the visibility stamps of POSTGRES's no-overwrite
/// storage. Tuples are never physically modified after insertion except to
/// fill in `xmax` when a deleter arrives; an update is a delete plus an
/// insert of the new version elsewhere. That is the entire mechanism behind
/// §6.3's "since POSTGRES does not overwrite data, time travel is
/// automatically available."
struct TupleHeader {
  Xid xmin = kInvalidXid;  ///< inserting transaction
  Xid xmax = kInvalidXid;  ///< deleting transaction (invalid = live)

  static constexpr size_t kSize = 8;

  void EncodeTo(uint8_t* dst) const {
    EncodeFixed32(dst, xmin);
    EncodeFixed32(dst + 4, xmax);
  }
  static TupleHeader Decode(const uint8_t* src) {
    TupleHeader h;
    h.xmin = DecodeFixed32(src);
    h.xmax = DecodeFixed32(src + 4);
    return h;
  }
};

/// Builds the on-page image: header followed by the user payload.
inline Bytes MakeTupleImage(const TupleHeader& header, Slice payload) {
  Bytes image(TupleHeader::kSize + payload.size());
  header.EncodeTo(image.data());
  std::memcpy(image.data() + TupleHeader::kSize, payload.data(),
              payload.size());
  return image;
}

}  // namespace pglo

#endif  // PGLO_HEAP_TUPLE_H_
