#ifndef PGLO_HEAP_HEAP_CLASS_H_
#define PGLO_HEAP_HEAP_CLASS_H_

#include <optional>

#include "common/result.h"
#include "heap/tuple.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "txn/transaction.h"

namespace pglo {

/// A POSTGRES class: a heap of versioned tuples in one relation file.
///
/// All mutation follows the no-overwrite discipline:
///   * Insert appends a version stamped xmin = caller.
///   * Delete stamps xmax = caller on the visible version (the only in-place
///     byte change the heap ever makes).
///   * Update = Delete(old) + Insert(new version); the new Tid is returned.
/// Old versions stay on the pages, so historical snapshots keep working.
///
/// The class does not know its schema — payloads are opaque bytes; the
/// query layer and the large-object implementations impose structure.
///
/// Multi-backend: every public operation holds the relation's exclusive
/// latch (from the pool's RelLatchRegistry) for its duration, so two
/// backends' operations on one class serialize; visibility between their
/// transactions is still decided by snapshots. The insert hint is
/// per-HeapClass-instance and protected by the same latch.
class HeapClass {
 public:
  /// Wraps an existing relation file (create it via Create()).
  HeapClass(BufferPool* pool, RelFileId file) : pool_(pool), file_(file) {}

  /// Creates the backing relation file.
  static Status Create(BufferPool* pool, RelFileId file);

  /// Inserts a tuple version; returns its physical address. Probes the
  /// hint page and the last page, then consults the pool's free-space map
  /// for an interior page with room, then extends the file.
  Result<Tid> Insert(Transaction* txn, Slice payload);

  /// Insert that always appends at the end of the file (last page, else a
  /// fresh page), skipping the hint and the free-space map. The compactor
  /// uses this to lay relocated versions down in strictly increasing block
  /// order — filling interior holes would defeat the point.
  Result<Tid> InsertAppend(Transaction* txn, Slice payload);

  /// Deletes the version at `tid` (it must be visible to `txn`).
  Status Delete(Transaction* txn, Tid tid);

  /// Replaces the tuple at `tid` with `payload`; returns the new version's
  /// address. The old version remains for time travel.
  Result<Tid> Update(Transaction* txn, Tid tid, Slice payload);

  /// Fetches the payload at `tid` if that version is visible to `txn`.
  Result<Bytes> Get(Transaction* txn, Tid tid);

  /// Fetches the payload at `tid` regardless of visibility (returns the
  /// header too); used by vacuum-style maintenance and tests.
  Result<std::pair<TupleHeader, Bytes>> GetAnyVersion(Tid tid);

  /// Reclaims space held by versions that can never become visible again
  /// (inserted by an aborted transaction, or deleted before `horizon`).
  /// Passing horizon = 0 reclaims only aborted versions, preserving all
  /// time travel. Returns the number of versions removed. Registers every
  /// page with usable free space in the pool's free-space map; when
  /// `pages_emptied` is non-null it receives the number of pages the pass
  /// left entirely empty (reclaimable for reuse).
  Result<uint64_t> Vacuum(const CommitLog& clog, CommitTime horizon,
                          uint64_t* pages_emptied = nullptr);

  RelFileId file() const { return file_; }
  BufferPool* pool() const { return pool_; }

  /// Number of blocks currently in the relation file.
  Result<BlockNumber> NumBlocks() const;

  /// Maximum payload that fits in one tuple (page minus headers). This is
  /// what makes byte[8000] chunks one-per-page in §6.3.
  static constexpr uint32_t MaxPayload() {
    return SlottedPage::MaxItemSize() - TupleHeader::kSize;
  }

 private:
  friend class HeapScan;

  /// Shared tail of Insert/InsertAppend: stores `image` into a page chosen
  /// from `candidates` (first fit), consulting the FSM when `use_fsm`,
  /// extending the file as a last resort. Latch already held.
  Result<Tid> InsertImage(Slice image, const BlockNumber* candidates,
                          int ncand, bool use_fsm);

  BufferPool* pool_;
  RelFileId file_;
  // Insertion hint: last page observed to have free space.
  BlockNumber insert_hint_ = kInvalidBlock;
};

/// Forward scan over the versions of a class visible to a transaction's
/// snapshot.
class HeapScan {
 public:
  HeapScan(HeapClass* heap, Transaction* txn) : heap_(heap), txn_(txn) {}

  /// Advances to the next visible tuple. Returns false at end-of-class.
  /// On success fills `tid` and `payload`.
  Result<bool> Next(Tid* tid, Bytes* payload);

 private:
  HeapClass* heap_;
  Transaction* txn_;
  BlockNumber block_ = 0;
  uint16_t slot_ = 0;
  bool exhausted_ = false;
};

}  // namespace pglo

#endif  // PGLO_HEAP_HEAP_CLASS_H_
