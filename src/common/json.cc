#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace pglo {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Prefix() {
  if (pending_value_) {
    pending_value_ = false;
    return;
  }
  if (stack_.empty()) return;
  switch (stack_.back()) {
    case kFirstInObject:
      stack_.back() = kInObject;
      break;
    case kFirstInArray:
      stack_.back() = kInArray;
      break;
    case kInObject:
    case kInArray:
      out_ += ',';
      break;
  }
}

void JsonWriter::Uint(uint64_t v) {
  Prefix();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::Int(int64_t v) {
  Prefix();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::Double(double v) {
  Prefix();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN
    out_ += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips any double; trim to the shortest that still does.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    PGLO_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        PGLO_ASSIGN_OR_RETURN(v.string_value, ParseString());
        return v;
      }
      case 't':
      case 'f':
        return ParseKeyword();
      case 'n':
        return ParseKeyword();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword() {
    JsonValue v;
    auto match = [&](const char* kw) {
      size_t n = std::strlen(kw);
      if (text_.substr(pos_, n) == kw) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      v.type = JsonValue::Type::kBool;
      v.bool_value = true;
    } else if (match("false")) {
      v.type = JsonValue::Type::kBool;
    } else if (match("null")) {
      v.type = JsonValue::Type::kNull;
    } else {
      return Err("invalid literal");
    }
    return v;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("invalid number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Err("invalid number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // none of our producers emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Err("expected '{'");
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return v;
    for (;;) {
      SkipWs();
      PGLO_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      PGLO_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object[std::move(key)] = std::move(member);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Err("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Err("expected '['");
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return v;
    for (;;) {
      PGLO_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Err("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_string() ? v->string_value : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[8192];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseJson(text);
}

}  // namespace pglo
