#ifndef PGLO_COMMON_STATUS_H_
#define PGLO_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace pglo {

/// Error categories used throughout pglo. Modeled after the
/// RocksDB/Arrow Status idiom: functions that can fail return a Status (or
/// a Result<T>, see result.h) instead of throwing; exceptions are not used.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,        ///< A named entity (object, file, key, class) is absent.
  kAlreadyExists,   ///< Creation collided with an existing entity.
  kInvalidArgument, ///< Caller passed an argument that violates the contract.
  kIOError,         ///< A device or backing-store operation failed.
  kCorruption,      ///< Stored data failed a structural or checksum check.
  kNotSupported,    ///< Valid request that this implementation cannot serve.
  kPermissionDenied,///< E.g. writing a read-only descriptor or WORM block.
  kAborted,         ///< The enclosing transaction aborted.
  kOutOfRange,      ///< Offset/sequence number beyond the addressable range.
  kResourceExhausted, ///< No free descriptor/buffer/space.
  kInternal,        ///< Invariant violation inside pglo itself.
  kUnavailable,     ///< Transient device failure; the operation may be retried.
};

/// Returns the canonical lower-case name of `code`, e.g. "not found".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, movable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// human-readable message. Status must be explicitly inspected; it is
/// marked [[nodiscard]] so dropped errors fail the build.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. Keeps the success path allocation-free after a move and
  // the object one pointer wide.
  std::unique_ptr<Rep> rep_;
};

}  // namespace pglo

/// Propagates a non-OK Status to the caller.
#define PGLO_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::pglo::Status _pglo_status = (expr);           \
    if (!_pglo_status.ok()) return _pglo_status;    \
  } while (0)

#endif  // PGLO_COMMON_STATUS_H_
