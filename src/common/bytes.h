#ifndef PGLO_COMMON_BYTES_H_
#define PGLO_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace pglo {

/// Owned byte buffer used for tuple payloads, chunks, and I/O staging.
using Bytes = std::vector<uint8_t>;

/// Non-owning view of a byte range (read side of every I/O interface).
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  Slice(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const char* s) : Slice(std::string_view(s)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Sub-slice [off, off+len); clamps to the end of this slice.
  Slice Sub(size_t off, size_t len) const {
    if (off >= size_) return Slice();
    return Slice(data_ + off, std::min(len, size_ - off));
  }

  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::string_view ToStringView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

// Little-endian fixed-width encoders/decoders used by every on-page format.

inline void EncodeFixed16(uint8_t* dst, uint16_t v) {
  std::memcpy(dst, &v, sizeof(v));
}
inline void EncodeFixed32(uint8_t* dst, uint32_t v) {
  std::memcpy(dst, &v, sizeof(v));
}
inline void EncodeFixed64(uint8_t* dst, uint64_t v) {
  std::memcpy(dst, &v, sizeof(v));
}
inline uint16_t DecodeFixed16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

/// Appends fixed-width little-endian integers to a growable buffer.
void PutFixed16(Bytes* dst, uint16_t v);
void PutFixed32(Bytes* dst, uint32_t v);
void PutFixed64(Bytes* dst, uint64_t v);

/// Appends a 32-bit length prefix followed by the raw bytes.
void PutLengthPrefixed(Bytes* dst, Slice value);

/// Cursor-style decoder over a byte range; Get* methods return false when
/// the input is exhausted or malformed (the cursor is then poisoned).
class ByteReader {
 public:
  explicit ByteReader(Slice input) : input_(input) {}

  bool GetFixed16(uint16_t* v);
  bool GetFixed32(uint32_t* v);
  bool GetFixed64(uint64_t* v);
  bool GetLengthPrefixed(Slice* value);

  size_t remaining() const { return input_.size() - pos_; }
  bool exhausted() const { return pos_ >= input_.size(); }

 private:
  Slice input_;
  size_t pos_ = 0;
};

}  // namespace pglo

#endif  // PGLO_COMMON_BYTES_H_
