#include "common/bytes.h"

namespace pglo {

void PutFixed16(Bytes* dst, uint16_t v) {
  size_t n = dst->size();
  dst->resize(n + sizeof(v));
  EncodeFixed16(dst->data() + n, v);
}

void PutFixed32(Bytes* dst, uint32_t v) {
  size_t n = dst->size();
  dst->resize(n + sizeof(v));
  EncodeFixed32(dst->data() + n, v);
}

void PutFixed64(Bytes* dst, uint64_t v) {
  size_t n = dst->size();
  dst->resize(n + sizeof(v));
  EncodeFixed64(dst->data() + n, v);
}

void PutLengthPrefixed(Bytes* dst, Slice value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->insert(dst->end(), value.data(), value.data() + value.size());
}

bool ByteReader::GetFixed16(uint16_t* v) {
  if (remaining() < sizeof(*v)) return false;
  *v = DecodeFixed16(input_.data() + pos_);
  pos_ += sizeof(*v);
  return true;
}

bool ByteReader::GetFixed32(uint32_t* v) {
  if (remaining() < sizeof(*v)) return false;
  *v = DecodeFixed32(input_.data() + pos_);
  pos_ += sizeof(*v);
  return true;
}

bool ByteReader::GetFixed64(uint64_t* v) {
  if (remaining() < sizeof(*v)) return false;
  *v = DecodeFixed64(input_.data() + pos_);
  pos_ += sizeof(*v);
  return true;
}

bool ByteReader::GetLengthPrefixed(Slice* value) {
  uint32_t len;
  if (!GetFixed32(&len)) return false;
  if (remaining() < len) return false;
  *value = input_.Sub(pos_, len);
  pos_ += len;
  return true;
}

}  // namespace pglo
