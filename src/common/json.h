#ifndef PGLO_COMMON_JSON_H_
#define PGLO_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace pglo {

/// Minimal JSON support for the observability surface: the bench harness
/// emits BENCH_<name>.json files, StatsSnapshot::ToJson feeds tooling, and
/// tools/bench_compare reads both back. Deliberately small — objects,
/// arrays, strings, doubles, bools, null — because every schema we produce
/// or consume fits in that subset.

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

/// Streaming writer with automatic comma placement. Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("schema"); w.String("pglo-bench-v1");
///   w.Key("results"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string out = std::move(w).Take();
/// Misnesting is the caller's bug; the writer just emits what it is told.
class JsonWriter {
 public:
  void BeginObject() { Prefix(); out_ += '{'; stack_.push_back(kFirstInObject); }
  void EndObject() { stack_.pop_back(); out_ += '}'; }
  void BeginArray() { Prefix(); out_ += '['; stack_.push_back(kFirstInArray); }
  void EndArray() { stack_.pop_back(); out_ += ']'; }

  void Key(std::string_view k) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(k);
    out_ += "\":";
    pending_value_ = true;
  }

  void String(std::string_view v) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(v);
    out_ += '"';
  }
  void Uint(uint64_t v);
  void Int(int64_t v);
  void Double(double v);  ///< shortest round-trip representation
  void Bool(bool v) { Prefix(); out_ += v ? "true" : "false"; }
  void Null() { Prefix(); out_ += "null"; }
  /// Splices `doc` verbatim as one value. `doc` must be a complete JSON
  /// document (used to embed output of another serializer, e.g. a
  /// StatsSnapshot, without re-walking it).
  void Raw(std::string_view doc) { Prefix(); out_ += doc; }

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  enum State : uint8_t { kFirstInObject, kInObject, kFirstInArray, kInArray };
  void Prefix();

  std::string out_;
  std::vector<uint8_t> stack_;
  bool pending_value_ = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  // Sorted map: key order is not significant for any schema we read.
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Member lookup; null when absent or not an object.
  const JsonValue* Get(const std::string& key) const;
  /// Convenience typed getters with defaults.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Result<JsonValue> ParseJson(std::string_view text);

/// Reads and parses an entire file.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace pglo

#endif  // PGLO_COMMON_JSON_H_
