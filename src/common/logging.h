#ifndef PGLO_COMMON_LOGGING_H_
#define PGLO_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pglo {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Global minimum level; messages below it are dropped. Default kWarning so
/// tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink. kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pglo

#define PGLO_LOG(level)                                         \
  ::pglo::internal::LogMessage(::pglo::LogLevel::k##level,      \
                               __FILE__, __LINE__)

/// Invariant check that is active in all build types. On failure, logs the
/// condition and aborts: pglo prefers dying loudly to silently corrupting
/// stored data.
#define PGLO_CHECK(cond)                                          \
  if (!(cond))                                                    \
  PGLO_LOG(Fatal) << "Check failed: " #cond " "

#define PGLO_DCHECK(cond) PGLO_CHECK(cond)

#endif  // PGLO_COMMON_LOGGING_H_
