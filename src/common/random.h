#ifndef PGLO_COMMON_RANDOM_H_
#define PGLO_COMMON_RANDOM_H_

#include <cstdint>

#include "common/bytes.h"

namespace pglo {

/// Deterministic xorshift64* PRNG.
///
/// Benchmarks and property tests must be reproducible, so all randomness in
/// pglo flows through this seeded generator rather than std::random_device.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability `percent`/100.
  bool OneInHundred(uint32_t percent) { return Uniform(100) < percent; }

  double NextDouble() {  // in [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53));
  }

  /// Fills `n` bytes of uncompressible noise.
  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(Next());
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace pglo

#endif  // PGLO_COMMON_RANDOM_H_
