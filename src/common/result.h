#ifndef PGLO_COMMON_RESULT_H_
#define PGLO_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace pglo {

/// A value-or-error holder: either an OK value of type T or a non-OK Status.
///
/// Typical use:
///
///   Result<Oid> Create(...);
///   PGLO_ASSIGN_OR_RETURN(Oid oid, Create(...));
///
/// Accessing value() on an error result is a programming error and asserts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}

  /// Constructs from an error status (implicit so `return status;` works).
  /// The status must be non-OK; an OK status here is a contract violation.
  Result(Status status) : rep_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(rep_).ok() && "Result constructed from OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return rep_.index() == 0; }

  /// Returns the error status; OK if this holds a value.
  Status status() const& {
    return ok() ? Status::OK() : std::get<1>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<0>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<0>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace pglo

#define PGLO_INTERNAL_CONCAT2(a, b) a##b
#define PGLO_INTERNAL_CONCAT(a, b) PGLO_INTERNAL_CONCAT2(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status from the
/// enclosing function, otherwise binds the value to `lhs`.
#define PGLO_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  PGLO_ASSIGN_OR_RETURN_IMPL(                                        \
      PGLO_INTERNAL_CONCAT(_pglo_result_, __LINE__), lhs, rexpr)

#define PGLO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // PGLO_COMMON_RESULT_H_
