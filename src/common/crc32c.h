#ifndef PGLO_COMMON_CRC32C_H_
#define PGLO_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace pglo {
namespace crc32c {

/// Returns the CRC-32C (Castagnoli) of data[0, n), extending `init_crc`.
/// Used to checksum pages and log records; a table-driven software
/// implementation (no SSE4.2 dependency).
uint32_t Extend(uint32_t init_crc, const uint8_t* data, size_t n);

inline uint32_t Value(const uint8_t* data, size_t n) {
  return Extend(0, data, n);
}

/// Masks a CRC so that a checksum of data that itself contains checksums
/// does not degenerate (same trick as LevelDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace pglo

#endif  // PGLO_COMMON_CRC32C_H_
