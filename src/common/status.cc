#include "common/status.h"

namespace pglo {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kIOError:
      return "I/O error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kPermissionDenied:
      return "permission denied";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace pglo
