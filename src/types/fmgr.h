#ifndef PGLO_TYPES_FMGR_H_
#define PGLO_TYPES_FMGR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/context.h"
#include "lo/lo_manager.h"
#include "types/datum.h"
#include "types/type_registry.h"

namespace pglo {

/// Everything a user-defined function may touch while executing inside the
/// data manager. Crucially it includes the large-object manager: "functions
/// that operate on the large type could be registered with the database
/// system, and could then be run directly by the data manager" (§3) —
/// functions receive large objects *by name* and stream the chunks they
/// need instead of materializing gigabytes ("Functions using large objects
/// must be able to locate them, and to request small chunks for individual
/// operations").
struct FunctionContext {
  DbContext db;
  LoManager* lo = nullptr;
  TypeRegistry* types = nullptr;
  Transaction* txn = nullptr;
};

/// A registered C++ function callable from the query language.
using CFunction =
    std::function<Result<Datum>(FunctionContext&, const std::vector<Datum>&)>;

/// The function manager: name → implementations, looked up by arity (and
/// optionally by argument types for overloads).
///
/// In POSTGRES these were "dynamically loaded" .o files; here registration
/// is a C++ call, which preserves the architectural point — the DBMS
/// executes user code next to the data — without a dlopen dependency.
class FunctionRegistry {
 public:
  struct FunctionInfo {
    std::string name;
    std::vector<Oid> arg_types;  ///< kInvalidOid entries match any type
    Oid return_type = kInvalidOid;
    bool returns_large = false;  ///< result is a (temporary) large object
    CFunction fn;
  };

  /// Registers a function; overloads on distinct arity are allowed.
  Status Register(FunctionInfo info);

  /// Finds the function matching `name` and the argument types (exact type
  /// match preferred, wildcard entries accepted).
  Result<const FunctionInfo*> Resolve(const std::string& name,
                                      const std::vector<Oid>& args) const;

  bool Has(const std::string& name) const {
    return functions_.count(name) != 0;
  }

  /// Binary operator registration: maps a symbol (e.g. "~=") plus operand
  /// types to a registered function, the "user-defined operators" of the
  /// abstract (resolution falls back to wildcards like Resolve).
  Status RegisterOperator(const std::string& symbol, Oid left, Oid right,
                          const std::string& function);
  Result<const FunctionInfo*> ResolveOperator(const std::string& symbol,
                                              Oid left, Oid right) const;

 private:
  std::multimap<std::string, FunctionInfo> functions_;
  struct OpKey {
    std::string symbol;
    Oid left, right;
    bool operator<(const OpKey& o) const {
      return std::tie(symbol, left, right) <
             std::tie(o.symbol, o.left, o.right);
    }
  };
  std::map<OpKey, std::string> operators_;
};

/// Registers the built-in large-object functions (lo_create, lo_size,
/// lo_read, lo_write, clip, ...). `image_type` is the large type clip()
/// produces; pass the oid returned by RegisterLargeType("image", ...).
void RegisterBuiltinFunctions(FunctionRegistry* fns);

}  // namespace pglo

#endif  // PGLO_TYPES_FMGR_H_
