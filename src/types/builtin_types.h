#ifndef PGLO_TYPES_BUILTIN_TYPES_H_
#define PGLO_TYPES_BUILTIN_TYPES_H_

#include <cstdint>
#include <string_view>

namespace pglo {

/// Exception-free numeric parsing used by type input routines and the
/// query lexer. Each returns false on malformed or out-of-range input.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseUint64(std::string_view text, uint64_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace pglo

#endif  // PGLO_TYPES_BUILTIN_TYPES_H_
