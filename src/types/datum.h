#ifndef PGLO_TYPES_DATUM_H_
#define PGLO_TYPES_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/page.h"

namespace pglo {

/// Well-known type Oids (user-defined types get oids >= 1000 from the
/// allocator).
namespace type_oids {
constexpr Oid kBool = 16;
constexpr Oid kInt4 = 23;
constexpr Oid kFloat8 = 701;
constexpr Oid kText = 25;
constexpr Oid kOid = 26;
constexpr Oid kRect = 603;   ///< example small ADT used by clip()
}  // namespace type_oids

/// Reference to a large object: the "large object name" a query returns
/// for a large ADT field (§4).
struct LoRef {
  Oid oid = kInvalidOid;
  friend bool operator==(const LoRef&, const LoRef&) = default;
};

/// A rectangle value for the §5 example
/// `clip(EMP.picture, "0,0,20,20"::rect)`.
struct RectValue {
  int32_t x = 0, y = 0, w = 0, h = 0;
  friend bool operator==(const RectValue&, const RectValue&) = default;
};

/// A runtime value flowing through the query executor and function
/// manager. Carries its type Oid so user-defined functions can be
/// dispatched on argument types.
class Datum {
 public:
  Datum() = default;  // null, untyped

  static Datum Null(Oid type = kInvalidOid) {
    Datum d;
    d.type_ = type;
    return d;
  }
  static Datum Bool(bool v) { return Datum(type_oids::kBool, v); }
  static Datum Int4(int32_t v) { return Datum(type_oids::kInt4, v); }
  static Datum Float8(double v) { return Datum(type_oids::kFloat8, v); }
  static Datum Text(std::string v) {
    return Datum(type_oids::kText, std::move(v));
  }
  static Datum OidVal(Oid v) { return Datum(type_oids::kOid, v); }
  static Datum Rect(RectValue v) { return Datum(type_oids::kRect, v); }
  /// A large-object value of large type `type`.
  static Datum LargeObject(Oid type, LoRef ref) { return Datum(type, ref); }
  /// Opaque user-ADT bytes of type `type`.
  static Datum UserBytes(Oid type, Bytes bytes) {
    return Datum(type, std::move(bytes));
  }

  Oid type() const { return type_; }
  bool is_null() const {
    return std::holds_alternative<std::monostate>(value_);
  }

  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int4() const { return std::holds_alternative<int32_t>(value_); }
  bool is_float8() const { return std::holds_alternative<double>(value_); }
  bool is_text() const { return std::holds_alternative<std::string>(value_); }
  bool is_oid() const { return std::holds_alternative<Oid>(value_); }
  bool is_rect() const { return std::holds_alternative<RectValue>(value_); }
  bool is_lo() const { return std::holds_alternative<LoRef>(value_); }
  bool is_bytes() const { return std::holds_alternative<Bytes>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  int32_t as_int4() const { return std::get<int32_t>(value_); }
  double as_float8() const { return std::get<double>(value_); }
  const std::string& as_text() const { return std::get<std::string>(value_); }
  Oid as_oid() const { return std::get<Oid>(value_); }
  const RectValue& as_rect() const { return std::get<RectValue>(value_); }
  LoRef as_lo() const { return std::get<LoRef>(value_); }
  const Bytes& as_bytes() const { return std::get<Bytes>(value_); }

  /// Numeric coercion helpers for the executor's arithmetic/comparison.
  Result<double> ToDouble() const;
  Result<int64_t> ToInt64() const;

  friend bool operator==(const Datum& a, const Datum& b) {
    return a.value_ == b.value_;
  }

 private:
  template <typename T>
  Datum(Oid type, T v) : type_(type), value_(std::move(v)) {}

  Oid type_ = kInvalidOid;
  std::variant<std::monostate, bool, int32_t, double, std::string, Oid,
               RectValue, LoRef, Bytes>
      value_;
};

}  // namespace pglo

#endif  // PGLO_TYPES_DATUM_H_
