#include "types/builtin_types.h"

#include <charconv>
#include <cstdlib>
#include <string>

#include "types/type_registry.h"

namespace pglo {

bool ParseInt64(std::string_view text, int64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(std::string_view text, double* out) {
  // std::from_chars for double is not universally available; strtod with a
  // NUL-terminated copy is fine off the hot path.
  std::string copy(text);
  char* endp = nullptr;
  *out = std::strtod(copy.c_str(), &endp);
  return endp == copy.c_str() + copy.size() && !copy.empty();
}

namespace {

Result<Datum> BoolIn(Oid, std::string_view text) {
  if (text == "t" || text == "true" || text == "1") return Datum::Bool(true);
  if (text == "f" || text == "false" || text == "0") {
    return Datum::Bool(false);
  }
  return Status::InvalidArgument("bad bool literal: " + std::string(text));
}

Result<std::string> BoolOut(const Datum& d) {
  return std::string(d.as_bool() ? "t" : "f");
}

Result<Datum> Int4In(Oid, std::string_view text) {
  int64_t v;
  if (!ParseInt64(text, &v) || v < INT32_MIN || v > INT32_MAX) {
    return Status::InvalidArgument("bad int4 literal: " + std::string(text));
  }
  return Datum::Int4(static_cast<int32_t>(v));
}

Result<std::string> Int4Out(const Datum& d) {
  return std::to_string(d.as_int4());
}

Result<Datum> Float8In(Oid, std::string_view text) {
  double v;
  if (!ParseDouble(text, &v)) {
    return Status::InvalidArgument("bad float8 literal: " +
                                   std::string(text));
  }
  return Datum::Float8(v);
}

Result<std::string> Float8Out(const Datum& d) {
  return std::to_string(d.as_float8());
}

Result<Datum> TextIn(Oid, std::string_view text) {
  return Datum::Text(std::string(text));
}

Result<std::string> TextOut(const Datum& d) { return d.as_text(); }

Result<Datum> OidIn(Oid, std::string_view text) {
  uint64_t v;
  if (!ParseUint64(text, &v) || v > ~0u) {
    return Status::InvalidArgument("bad oid literal: " + std::string(text));
  }
  return Datum::OidVal(static_cast<Oid>(v));
}

Result<std::string> OidOut(const Datum& d) { return std::to_string(d.as_oid()); }

/// "x,y,w,h" — the form used by the paper's clip() example:
/// `clip(EMP.picture, "0,0,20,20"::rect)`.
Result<Datum> RectIn(Oid, std::string_view text) {
  RectValue r;
  int32_t* fields[4] = {&r.x, &r.y, &r.w, &r.h};
  size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    size_t comma = text.find(',', pos);
    std::string_view part =
        i < 3 ? text.substr(pos, comma - pos) : text.substr(pos);
    if (i < 3 && comma == std::string_view::npos) {
      return Status::InvalidArgument("bad rect literal: " +
                                     std::string(text));
    }
    int64_t v;
    if (!ParseInt64(part, &v)) {
      return Status::InvalidArgument("bad rect literal: " +
                                     std::string(text));
    }
    *fields[i] = static_cast<int32_t>(v);
    pos = comma + 1;
  }
  return Datum::Rect(r);
}

Result<std::string> RectOut(const Datum& d) {
  const RectValue& r = d.as_rect();
  return std::to_string(r.x) + "," + std::to_string(r.y) + "," +
         std::to_string(r.w) + "," + std::to_string(r.h);
}

}  // namespace

void RegisterBuiltinTypes(TypeRegistry* types) {
  auto check = [](Result<Oid> r) { (void)r; };
  check(types->RegisterType("bool", BoolIn, BoolOut, type_oids::kBool));
  check(types->RegisterType("int4", Int4In, Int4Out, type_oids::kInt4));
  check(types->RegisterType("float8", Float8In, Float8Out,
                            type_oids::kFloat8));
  check(types->RegisterType("text", TextIn, TextOut, type_oids::kText));
  check(types->RegisterType("oid", OidIn, OidOut, type_oids::kOid));
  check(types->RegisterType("rect", RectIn, RectOut, type_oids::kRect));
}

}  // namespace pglo
