#include "types/type_registry.h"

#include "types/builtin_types.h"

namespace pglo {

TypeRegistry::TypeRegistry(OidAllocator* oids) : oids_(oids) {
  RegisterBuiltinTypes(this);
}

Result<Oid> TypeRegistry::RegisterType(const std::string& name, InputFn input,
                                       OutputFn output, Oid fixed_oid) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("type exists: " + name);
  }
  Oid oid = fixed_oid != kInvalidOid ? fixed_oid : oids_->Allocate();
  TypeInfo info;
  info.oid = oid;
  info.name = name;
  info.input = std::move(input);
  info.output = std::move(output);
  by_name_[name] = oid;
  by_oid_[oid] = std::move(info);
  return oid;
}

Result<Oid> TypeRegistry::RegisterLargeType(const std::string& name,
                                            const LoSpec& spec) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("type exists: " + name);
  }
  Oid oid = oids_->Allocate();
  TypeInfo info;
  info.oid = oid;
  info.name = name;
  info.is_large = true;
  info.lo_spec = spec;
  // A large type's textual input is a large object name (oid); output
  // renders the same. The heavy lifting (compression) happens per chunk in
  // the storage layer, not here — that is the whole point of §3.
  info.input = [oid](Oid, std::string_view text) -> Result<Datum> {
    uint64_t lo = 0;
    if (!ParseUint64(text, &lo) || lo > ~0u) {
      return Status::InvalidArgument("bad large object name: " +
                                     std::string(text));
    }
    return Datum::LargeObject(oid, LoRef{static_cast<Oid>(lo)});
  };
  info.output = [](const Datum& d) -> Result<std::string> {
    return std::to_string(d.as_lo().oid);
  };
  by_name_[name] = oid;
  by_oid_[oid] = std::move(info);
  return oid;
}

Result<const TypeRegistry::TypeInfo*> TypeRegistry::ByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("unknown type: " + name);
  return &by_oid_.at(it->second);
}

Result<const TypeRegistry::TypeInfo*> TypeRegistry::ByOid(Oid oid) const {
  auto it = by_oid_.find(oid);
  if (it == by_oid_.end()) {
    return Status::NotFound("unknown type oid " + std::to_string(oid));
  }
  return &it->second;
}

}  // namespace pglo
