#ifndef PGLO_TYPES_TYPE_REGISTRY_H_
#define PGLO_TYPES_TYPE_REGISTRY_H_

#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "db/oid_allocator.h"
#include "lo/large_object.h"
#include "types/datum.h"

namespace pglo {

/// The extensible type collection of §3: "support an extensible collection
/// of data types in the DBMS with user-defined functions."
///
/// A type owns an input routine (external text → Datum) and an output
/// routine (Datum → external text). A *large* type (§4's
/// `create large type`) additionally names its conversion-routine pair —
/// the compression codec applied per chunk/segment — and the storage
/// implementation to use:
///
///   create large type type-name (
///       input = procedure-name-1, output = procedure-name-2,
///       storage = storage-type)
class TypeRegistry {
 public:
  using InputFn = std::function<Result<Datum>(Oid type, std::string_view)>;
  using OutputFn = std::function<Result<std::string>(const Datum&)>;

  struct TypeInfo {
    Oid oid = kInvalidOid;
    std::string name;
    InputFn input;
    OutputFn output;
    bool is_large = false;
    /// For large types: storage clause + conversion-routine (codec) pair.
    LoSpec lo_spec;
  };

  explicit TypeRegistry(OidAllocator* oids);

  /// Registers a small (in-record) type. Returns its type Oid.
  Result<Oid> RegisterType(const std::string& name, InputFn input,
                           OutputFn output, Oid fixed_oid = kInvalidOid);

  /// §4 — registers a large ADT. `spec.codec` holds the conversion routine
  /// pair; `spec.kind` the storage implementation.
  Result<Oid> RegisterLargeType(const std::string& name, const LoSpec& spec);

  Result<const TypeInfo*> ByName(const std::string& name) const;
  Result<const TypeInfo*> ByOid(Oid oid) const;
  bool HasName(const std::string& name) const {
    return by_name_.count(name) != 0;
  }

 private:
  OidAllocator* oids_;
  std::map<std::string, Oid> by_name_;
  std::map<Oid, TypeInfo> by_oid_;
};

/// Registers bool, int4, float8, text, oid, and rect.
void RegisterBuiltinTypes(TypeRegistry* types);

}  // namespace pglo

#endif  // PGLO_TYPES_TYPE_REGISTRY_H_
