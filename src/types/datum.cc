#include "types/datum.h"

namespace pglo {

Result<double> Datum::ToDouble() const {
  if (is_int4()) return static_cast<double>(as_int4());
  if (is_float8()) return as_float8();
  if (is_oid()) return static_cast<double>(as_oid());
  return Status::InvalidArgument("value is not numeric");
}

Result<int64_t> Datum::ToInt64() const {
  if (is_int4()) return static_cast<int64_t>(as_int4());
  if (is_float8()) return static_cast<int64_t>(as_float8());
  if (is_oid()) return static_cast<int64_t>(as_oid());
  return Status::InvalidArgument("value is not numeric");
}

}  // namespace pglo
