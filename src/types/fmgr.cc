#include "types/fmgr.h"

#include <cstring>

namespace pglo {

Status FunctionRegistry::Register(FunctionInfo info) {
  auto range = functions_.equal_range(info.name);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second.arg_types == info.arg_types) {
      return Status::AlreadyExists("function already registered: " +
                                   info.name);
    }
  }
  functions_.emplace(info.name, std::move(info));
  return Status::OK();
}

Result<const FunctionRegistry::FunctionInfo*> FunctionRegistry::Resolve(
    const std::string& name, const std::vector<Oid>& args) const {
  auto range = functions_.equal_range(name);
  const FunctionInfo* wildcard_match = nullptr;
  for (auto it = range.first; it != range.second; ++it) {
    const FunctionInfo& f = it->second;
    if (f.arg_types.size() != args.size()) continue;
    bool exact = true, loose = true;
    for (size_t i = 0; i < args.size(); ++i) {
      if (f.arg_types[i] == kInvalidOid) {
        exact = false;
      } else if (f.arg_types[i] != args[i]) {
        exact = false;
        loose = false;
      }
    }
    if (exact) return &f;
    if (loose && wildcard_match == nullptr) wildcard_match = &f;
  }
  if (wildcard_match != nullptr) return wildcard_match;
  return Status::NotFound("no function " + name + "/" +
                          std::to_string(args.size()));
}

Status FunctionRegistry::RegisterOperator(const std::string& symbol, Oid left,
                                          Oid right,
                                          const std::string& function) {
  OpKey key{symbol, left, right};
  auto [it, inserted] = operators_.emplace(key, function);
  if (!inserted) return Status::AlreadyExists("operator exists: " + symbol);
  return Status::OK();
}

Result<const FunctionRegistry::FunctionInfo*>
FunctionRegistry::ResolveOperator(const std::string& symbol, Oid left,
                                  Oid right) const {
  // Exact, then wildcard operand slots.
  const Oid kAny = kInvalidOid;
  for (const auto& [l, r] : {std::pair{left, right}, {left, kAny},
                             {kAny, right}, {kAny, kAny}}) {
    auto it = operators_.find(OpKey{symbol, l, r});
    if (it != operators_.end()) {
      return Resolve(it->second, {left, right});
    }
  }
  return Status::NotFound("no operator " + symbol);
}

namespace {

Result<Oid> LoOidOf(const Datum& d) {
  if (d.is_lo()) return d.as_lo().oid;
  if (d.is_oid()) return d.as_oid();
  if (d.is_int4()) return static_cast<Oid>(d.as_int4());
  return Status::InvalidArgument("argument is not a large object name");
}

/// lo_create(kind-name) -> oid of a new (permanent) large object.
Result<Datum> LoCreate(FunctionContext& ctx, const std::vector<Datum>& args) {
  PGLO_ASSIGN_OR_RETURN(StorageKind kind,
                        StorageKindFromString(args[0].as_text()));
  LoSpec spec;
  spec.kind = kind;
  if (kind == StorageKind::kUserFile) {
    return Status::InvalidArgument(
        "lo_create(u-file) needs a path; use lo_create_at");
  }
  PGLO_ASSIGN_OR_RETURN(Oid oid, ctx.lo->Create(ctx.txn, spec));
  return Datum::OidVal(oid);
}

/// lo_create_at(kind-name, path) -> oid (u-file placement control, §6.1).
Result<Datum> LoCreateAt(FunctionContext& ctx,
                         const std::vector<Datum>& args) {
  PGLO_ASSIGN_OR_RETURN(StorageKind kind,
                        StorageKindFromString(args[0].as_text()));
  LoSpec spec;
  spec.kind = kind;
  spec.ufile_path = args[1].as_text();
  PGLO_ASSIGN_OR_RETURN(Oid oid, ctx.lo->Create(ctx.txn, spec));
  return Datum::OidVal(oid);
}

/// newfilename() -> text, §6.2: "the user must call the function
/// newfilename in order to have POSTGRES perform the allocation."
Result<Datum> NewFileName(FunctionContext& ctx,
                          const std::vector<Datum>& args) {
  (void)args;
  return Datum::Text(LoManager::NewFileName(ctx.db.oids->Allocate()));
}

/// lo_size(lo) -> int4.
Result<Datum> LoSize(FunctionContext& ctx, const std::vector<Datum>& args) {
  PGLO_ASSIGN_OR_RETURN(Oid oid, LoOidOf(args[0]));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        ctx.lo->Instantiate(ctx.txn, oid));
  PGLO_ASSIGN_OR_RETURN(uint64_t size, lo->Size(ctx.txn));
  return Datum::Int4(static_cast<int32_t>(size));
}

/// lo_read(lo, off, len) -> text.
Result<Datum> LoRead(FunctionContext& ctx, const std::vector<Datum>& args) {
  PGLO_ASSIGN_OR_RETURN(Oid oid, LoOidOf(args[0]));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        ctx.lo->Instantiate(ctx.txn, oid));
  int32_t off = args[1].as_int4();
  int32_t len = args[2].as_int4();
  if (off < 0 || len < 0) {
    return Status::InvalidArgument("negative offset or length");
  }
  Bytes buf(static_cast<size_t>(len));
  PGLO_ASSIGN_OR_RETURN(size_t got,
                        lo->Read(ctx.txn, static_cast<uint64_t>(off),
                                 buf.size(), buf.data()));
  buf.resize(got);
  return Datum::Text(Slice(buf).ToString());
}

/// lo_write(lo, off, text) -> int4 bytes written.
Result<Datum> LoWrite(FunctionContext& ctx, const std::vector<Datum>& args) {
  PGLO_ASSIGN_OR_RETURN(Oid oid, LoOidOf(args[0]));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        ctx.lo->Instantiate(ctx.txn, oid));
  int32_t off = args[1].as_int4();
  if (off < 0) return Status::InvalidArgument("negative offset");
  const std::string& text = args[2].as_text();
  PGLO_RETURN_IF_ERROR(lo->Write(ctx.txn, static_cast<uint64_t>(off),
                                 Slice(text)));
  return Datum::Int4(static_cast<int32_t>(text.size()));
}

/// lo_import(path [, kind]) -> oid: copies a UNIX file into a fresh large
/// object, streaming in 64 KB pieces (never buffering the whole file).
Result<Datum> LoImport(FunctionContext& ctx, const std::vector<Datum>& args) {
  const std::string& path = args[0].as_text();
  LoSpec spec;
  if (args.size() > 1) {
    PGLO_ASSIGN_OR_RETURN(spec.kind,
                          StorageKindFromString(args[1].as_text()));
    if (spec.kind == StorageKind::kUserFile) {
      return Status::InvalidArgument("lo_import cannot target u-file");
    }
  }
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, ctx.db.ufs->Lookup(path));
  PGLO_ASSIGN_OR_RETURN(Oid oid, ctx.lo->Create(ctx.txn, spec));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        ctx.lo->Instantiate(ctx.txn, oid));
  Bytes buf(64 * 1024);
  uint64_t off = 0;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(size_t n,
                          ctx.db.ufs->ReadAt(ino, off, buf.size(),
                                             buf.data()));
    if (n == 0) break;
    PGLO_RETURN_IF_ERROR(lo->Write(ctx.txn, off, Slice(buf).Sub(0, n)));
    off += n;
  }
  return Datum::OidVal(oid);
}

/// lo_export(lo, path) -> int4 bytes copied: writes a large object out to
/// a (new) UNIX file.
Result<Datum> LoExport(FunctionContext& ctx, const std::vector<Datum>& args) {
  PGLO_ASSIGN_OR_RETURN(Oid oid, LoOidOf(args[0]));
  const std::string& path = args[1].as_text();
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        ctx.lo->Instantiate(ctx.txn, oid));
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, ctx.db.ufs->Create(path));
  Bytes buf(64 * 1024);
  uint64_t off = 0;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(size_t n,
                          lo->Read(ctx.txn, off, buf.size(), buf.data()));
    if (n == 0) break;
    PGLO_RETURN_IF_ERROR(
        ctx.db.ufs->WriteAt(ino, off, Slice(buf).Sub(0, n)));
    off += n;
  }
  return Datum::Int4(static_cast<int32_t>(off));
}

// Image layout: width u32 | height u32 | row-major 1-byte pixels.
constexpr size_t kImageHeader = 8;

/// clip(image, rect) -> image — the §5 example. Reads only the rows it
/// needs from the source object and returns a *temporary* large object
/// that the transaction garbage-collects.
Result<Datum> Clip(FunctionContext& ctx, const std::vector<Datum>& args) {
  PGLO_ASSIGN_OR_RETURN(Oid src_oid, LoOidOf(args[0]));
  if (!args[1].is_rect()) {
    return Status::InvalidArgument("clip() expects a rect");
  }
  const RectValue& r = args[1].as_rect();
  if (r.x < 0 || r.y < 0 || r.w <= 0 || r.h <= 0) {
    return Status::InvalidArgument("clip rectangle out of range");
  }
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> src,
                        ctx.lo->Instantiate(ctx.txn, src_oid));
  uint8_t header[kImageHeader];
  PGLO_ASSIGN_OR_RETURN(size_t got,
                        src->Read(ctx.txn, 0, kImageHeader, header));
  if (got != kImageHeader) return Status::Corruption("not an image object");
  uint32_t width = DecodeFixed32(header);
  uint32_t height = DecodeFixed32(header + 4);
  uint32_t cw = std::min<uint32_t>(r.w, width > static_cast<uint32_t>(r.x)
                                            ? width - r.x
                                            : 0);
  uint32_t ch = std::min<uint32_t>(r.h, height > static_cast<uint32_t>(r.y)
                                            ? height - r.y
                                            : 0);
  if (cw == 0 || ch == 0) {
    return Status::InvalidArgument("clip rectangle outside the image");
  }

  // The result must be a temporary large object (§5): "a function
  // returning a large object must create a new large object and then fill
  // in the bytes using a collection of write operations."
  PGLO_ASSIGN_OR_RETURN(const TypeRegistry::TypeInfo* type,
                        ctx.types->ByOid(args[0].type()));
  LoSpec spec = type->is_large ? type->lo_spec : LoSpec{};
  PGLO_ASSIGN_OR_RETURN(Oid dst_oid, ctx.lo->CreateTemp(ctx.txn, spec));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> dst,
                        ctx.lo->Instantiate(ctx.txn, dst_oid));
  uint8_t out_header[kImageHeader];
  EncodeFixed32(out_header, cw);
  EncodeFixed32(out_header + 4, ch);
  PGLO_RETURN_IF_ERROR(
      dst->Write(ctx.txn, 0, Slice(out_header, kImageHeader)));
  Bytes row(cw);
  for (uint32_t y = 0; y < ch; ++y) {
    uint64_t src_off = kImageHeader +
                       static_cast<uint64_t>(r.y + y) * width + r.x;
    PGLO_ASSIGN_OR_RETURN(size_t n,
                          src->Read(ctx.txn, src_off, cw, row.data()));
    if (n != cw) return Status::Corruption("image truncated");
    PGLO_RETURN_IF_ERROR(dst->Write(
        ctx.txn, kImageHeader + static_cast<uint64_t>(y) * cw, Slice(row)));
  }
  return Datum::LargeObject(args[0].type(), LoRef{dst_oid});
}

/// image_width(image) -> int4, image_height(image) -> int4.
Result<Datum> ImageDim(FunctionContext& ctx, const std::vector<Datum>& args,
                       bool want_width) {
  PGLO_ASSIGN_OR_RETURN(Oid oid, LoOidOf(args[0]));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        ctx.lo->Instantiate(ctx.txn, oid));
  uint8_t header[kImageHeader];
  PGLO_ASSIGN_OR_RETURN(size_t got, lo->Read(ctx.txn, 0, kImageHeader,
                                             header));
  if (got != kImageHeader) return Status::Corruption("not an image object");
  return Datum::Int4(static_cast<int32_t>(
      DecodeFixed32(header + (want_width ? 0 : 4))));
}

}  // namespace

void RegisterBuiltinFunctions(FunctionRegistry* fns) {
  const Oid kAny = kInvalidOid;
  auto check = [](Status s) { (void)s; };
  check(fns->Register({"lo_create", {type_oids::kText}, type_oids::kOid,
                       false, LoCreate}));
  check(fns->Register({"lo_create_at",
                       {type_oids::kText, type_oids::kText},
                       type_oids::kOid, false, LoCreateAt}));
  check(fns->Register({"newfilename", {}, type_oids::kText, false,
                       NewFileName}));
  check(fns->Register({"lo_size", {kAny}, type_oids::kInt4, false, LoSize}));
  check(fns->Register({"lo_read",
                       {kAny, type_oids::kInt4, type_oids::kInt4},
                       type_oids::kText, false, LoRead}));
  check(fns->Register({"lo_write",
                       {kAny, type_oids::kInt4, type_oids::kText},
                       type_oids::kInt4, false, LoWrite}));
  check(fns->Register({"lo_import", {type_oids::kText}, type_oids::kOid,
                       false, LoImport}));
  check(fns->Register({"lo_import", {type_oids::kText, type_oids::kText},
                       type_oids::kOid, false, LoImport}));
  check(fns->Register({"lo_export", {kAny, type_oids::kText},
                       type_oids::kInt4, false, LoExport}));
  check(fns->Register({"clip", {kAny, type_oids::kRect}, kAny, true, Clip}));
  check(fns->Register(
      {"image_width", {kAny}, type_oids::kInt4, false,
       [](FunctionContext& ctx, const std::vector<Datum>& args) {
         return ImageDim(ctx, args, true);
       }}));
  check(fns->Register(
      {"image_height", {kAny}, type_oids::kInt4, false,
       [](FunctionContext& ctx, const std::vector<Datum>& args) {
         return ImageDim(ctx, args, false);
       }}));
}

}  // namespace pglo
