#ifndef PGLO_STORAGE_PAGE_H_
#define PGLO_STORAGE_PAGE_H_

#include <cstdint>
#include <functional>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace pglo {

/// POSTGRES page size. §6.3: "The size of the data array is chosen to ensure
/// a single record neatly fills a POSTGRES 8K page."
constexpr uint32_t kPageSize = 8192;

/// Object identifier: names classes, types, functions, and large objects.
using Oid = uint32_t;
constexpr Oid kInvalidOid = 0;

/// Block number within a relation file.
using BlockNumber = uint32_t;
constexpr BlockNumber kInvalidBlock = 0xffffffffu;

/// Tuple identifier: physical address of an item (block, slot).
struct Tid {
  BlockNumber block = kInvalidBlock;
  uint16_t slot = 0;

  bool valid() const { return block != kInvalidBlock; }
  friend bool operator==(const Tid&, const Tid&) = default;
};

/// Identifies a relation file within a particular storage manager.
struct RelFileId {
  uint8_t smgr_id = 0;  ///< which registered storage manager owns the file
  Oid relfile = kInvalidOid;

  friend bool operator==(const RelFileId&, const RelFileId&) = default;
};

struct RelFileIdHash {
  size_t operator()(const RelFileId& id) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(id.smgr_id) << 32) |
                                 id.relfile);
  }
};

/// Global page address: (storage manager, relation file, block).
struct PageId {
  RelFileId file;
  BlockNumber block = kInvalidBlock;

  friend bool operator==(const PageId&, const PageId&) = default;
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    uint64_t lo = (static_cast<uint64_t>(id.file.relfile) << 32) | id.block;
    return std::hash<uint64_t>()(lo * 0x9e3779b97f4a7c15ull + id.file.smgr_id);
  }
};

/// Slotted 8 KB page, PostgreSQL bufpage-style.
///
/// Layout:
///   [PageHeader (24 B)] [line pointers ->] ... free ... [<- tuple data]
///   [special area (special_size bytes, at the very end)]
///
/// Line pointers grow upward from the header; item payloads grow downward
/// from the special area. Items never span pages — the property §6.3's
/// compression analysis depends on ("POSTGRES does not break tuples across
/// pages").
class SlottedPage {
 public:
  /// Per-slot flags.
  enum SlotState : uint16_t { kUnused = 0, kNormal = 1, kDead = 2 };

  static constexpr uint32_t kHeaderSize = 24;
  static constexpr uint32_t kSlotSize = 6;  // offset u16, len u16, state u16

  /// Wraps (does not own) a kPageSize buffer.
  explicit SlottedPage(uint8_t* buf) : buf_(buf) {}

  /// Formats an empty page with `special_size` bytes reserved at the end.
  void Init(uint16_t special_size = 0);

  /// True if the buffer carries a valid page magic.
  bool IsInitialized() const;

  /// Inserts `item`; returns the slot index or ResourceExhausted when the
  /// page lacks room. Reuses dead slots when possible.
  Result<uint16_t> AddItem(Slice item);

  /// Returns the payload of slot `slot` (NotFound for dead/unused slots).
  Result<Slice> GetItem(uint16_t slot) const;

  /// Marks slot dead; its space is reclaimed by the next Compact().
  Status DeleteItem(uint16_t slot);

  /// Replaces the payload of `slot` in place. Only allowed when the new
  /// payload is not longer than the old one (callers needing growth must
  /// delete + re-add).
  Status OverwriteItem(uint16_t slot, Slice item);

  /// Squeezes out space held by dead items. Slot indexes are stable.
  void Compact();

  /// Bytes available for one more item (including its line pointer).
  uint32_t FreeSpace() const;

  /// Free space counting space recoverable by Compact().
  uint32_t FreeSpaceAfterCompact() const;

  /// Number of slots ever allocated (including dead ones).
  uint16_t NumSlots() const;

  /// State of the given slot.
  SlotState GetSlotState(uint16_t slot) const;

  /// Mutable view of the special area.
  uint8_t* SpecialArea();
  const uint8_t* SpecialArea() const;
  uint16_t SpecialSize() const;

  /// Computes and stores the page checksum (call before writing out).
  void UpdateChecksum();
  /// True if the stored checksum matches the contents.
  bool VerifyChecksum() const;

  /// The maximum payload a freshly initialized page (no special area) can
  /// store in a single item.
  static constexpr uint32_t MaxItemSize() {
    return kPageSize - kHeaderSize - kSlotSize;
  }

  uint8_t* raw() { return buf_; }
  const uint8_t* raw() const { return buf_; }

 private:
  uint16_t lower() const;   // end of line-pointer array
  uint16_t upper() const;   // start of item data
  void set_lower(uint16_t v);
  void set_upper(uint16_t v);

  void ReadSlot(uint16_t slot, uint16_t* off, uint16_t* len,
                uint16_t* state) const;
  void WriteSlot(uint16_t slot, uint16_t off, uint16_t len, uint16_t state);

  uint8_t* buf_;
};

}  // namespace pglo

#endif  // PGLO_STORAGE_PAGE_H_
