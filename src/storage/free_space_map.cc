#include "storage/free_space_map.h"

#include <cstring>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "storage/buffer_pool.h"

namespace pglo {

namespace {

// Sidecar record-page layout:
//   [magic u32 "FSM1"] [count u16] [pad u16] [crc u32] [records ...]
// Record (11 bytes): smgr u8 | relfile u32 | block u32 | kind u8 | bucket u8.
// The CRC covers the count field and the record area, so a torn write makes
// the whole page fail verification and its entries are simply dropped.
constexpr uint32_t kFsmPageMagic = 0x314d5346;  // "FSM1"
constexpr uint32_t kFsmHeaderSize = 12;
constexpr uint32_t kRecordSize = 11;
constexpr uint32_t kRecordsPerPage = (kPageSize - kFsmHeaderSize) / kRecordSize;

constexpr uint8_t kKindBucket = 0;
constexpr uint8_t kKindFreePage = 1;

// Stamp written over a B-tree node returned to the free list. Chosen to
// collide with neither the slotted-page magic nor the B-tree node magics.
constexpr uint32_t kFreePageStamp = 0x46534d46;  // "FMSF"

struct FsmRecord {
  RelFileId file;
  BlockNumber block = 0;
  uint8_t kind = kKindBucket;
  uint8_t bucket = 0;
};

void EncodeRecord(uint8_t* dst, const FsmRecord& r) {
  dst[0] = r.file.smgr_id;
  EncodeFixed32(dst + 1, r.file.relfile);
  EncodeFixed32(dst + 5, r.block);
  dst[9] = r.kind;
  dst[10] = r.bucket;
}

FsmRecord DecodeRecord(const uint8_t* src) {
  FsmRecord r;
  r.file.smgr_id = src[0];
  r.file.relfile = DecodeFixed32(src + 1);
  r.block = DecodeFixed32(src + 5);
  r.kind = src[9];
  r.bucket = src[10];
  return r;
}

uint32_t PageCrc(const uint8_t* page, uint16_t count) {
  return crc32c::Mask(crc32c::Extend(
      crc32c::Extend(0, page + 4, 2),  // the count field
      page + kFsmHeaderSize, static_cast<size_t>(count) * kRecordSize));
}

}  // namespace

void FreeSpaceMap::RecordFreeSpace(RelFileId file, BlockNumber block,
                                   uint32_t free_bytes) {
  uint8_t bucket = BucketFor(free_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  FileEntries& fe = files_[file];
  if (bucket == 0) {
    fe.buckets.erase(block);
  } else {
    fe.buckets[block] = bucket;
  }
}

void FreeSpaceMap::UpdateIfTracked(RelFileId file, BlockNumber block,
                                   uint32_t free_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return;
  auto bit = it->second.buckets.find(block);
  if (bit == it->second.buckets.end()) return;
  uint8_t bucket = BucketFor(free_bytes);
  if (bucket == 0) {
    it->second.buckets.erase(bit);
  } else {
    bit->second = bucket;
  }
}

Result<BlockNumber> FreeSpaceMap::FindPage(RelFileId file, uint32_t needed) {
  // Promise >= needed: round the request UP to a bucket count.
  uint32_t want = (needed + kBucketBytes - 1) / kBucketBytes;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no FSM entries for file");
  for (const auto& [block, bucket] : it->second.buckets) {
    if (bucket >= want) return block;
  }
  return Status::NotFound("no FSM page with enough free space");
}

void FreeSpaceMap::RemoveEntry(RelFileId file, BlockNumber block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return;
  it->second.buckets.erase(block);
}

void FreeSpaceMap::RecordFreePage(RelFileId file, BlockNumber block) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[file].free_pages.insert(block);
}

Result<BlockNumber> FreeSpaceMap::TakeFreePage(RelFileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end() || it->second.free_pages.empty()) {
    return Status::NotFound("no free pages for file");
  }
  auto first = it->second.free_pages.begin();
  BlockNumber block = *first;
  it->second.free_pages.erase(first);
  return block;
}

void FreeSpaceMap::StampFreePage(uint8_t* page) {
  std::memset(page, 0, kPageSize);
  EncodeFixed32(page, kFreePageStamp);
  // Bytes 8..11 sit where a B-tree node keeps its right-sibling pointer;
  // leave them "invalid" so a stale reader that lands here sees zero
  // entries and a terminated sibling chain instead of walking into the
  // meta page.
  EncodeFixed32(page + 8, kInvalidBlock);
}

bool FreeSpaceMap::IsFreePage(const uint8_t* page) {
  return DecodeFixed32(page) == kFreePageStamp;
}

void FreeSpaceMap::Forget(RelFileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(file);
}

void FreeSpaceMap::ForgetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
}

size_t FreeSpaceMap::EntryCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [file, fe] : files_) {
    n += fe.buckets.size() + fe.free_pages.size();
  }
  return n;
}

Status FreeSpaceMap::Persist() {
  std::lock_guard<std::mutex> lock(mu_);
  return PersistLocked();
}

Status FreeSpaceMap::PersistLocked() {
  if (!has_backing_) return Status::OK();
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr,
                        pool_->smgrs()->Get(backing_.smgr_id));

  std::vector<FsmRecord> records;
  for (const auto& [file, fe] : files_) {
    // Never persist entries about the sidecar itself.
    if (file == backing_) continue;
    for (const auto& [block, bucket] : fe.buckets) {
      records.push_back({file, block, kKindBucket, bucket});
    }
    for (BlockNumber block : fe.free_pages) {
      records.push_back({file, block, kKindFreePage, 0});
    }
  }
  bool exists = smgr->FileExists(backing_.relfile);
  if (records.empty() && !exists) return Status::OK();  // stay invisible
  if (!exists) PGLO_RETURN_IF_ERROR(smgr->CreateFile(backing_.relfile));

  uint32_t pages_needed = static_cast<uint32_t>(
      (records.size() + kRecordsPerPage - 1) / kRecordsPerPage);
  if (pages_needed == 0) pages_needed = 1;
  PGLO_ASSIGN_OR_RETURN(BlockNumber existing_pages, pool_->NumBlocks(backing_));
  // Rewrite every page the file ever had: files cannot shrink, so pages
  // beyond the live set are overwritten with empty record sets.
  uint32_t total_pages =
      pages_needed > existing_pages ? pages_needed : existing_pages;

  size_t next = 0;
  for (uint32_t p = 0; p < total_pages; ++p) {
    PageHandle handle;
    if (p < existing_pages) {
      PGLO_ASSIGN_OR_RETURN(handle, pool_->GetPage({backing_, p}));
    } else {
      BlockNumber block;
      PGLO_ASSIGN_OR_RETURN(handle, pool_->NewPage(backing_, &block));
    }
    uint8_t* buf = handle.data();
    std::memset(buf, 0, kPageSize);
    uint16_t count = 0;
    while (next < records.size() && count < kRecordsPerPage) {
      EncodeRecord(buf + kFsmHeaderSize +
                       static_cast<size_t>(count) * kRecordSize,
                   records[next]);
      ++next;
      ++count;
    }
    EncodeFixed32(buf, kFsmPageMagic);
    EncodeFixed16(buf + 4, count);
    EncodeFixed32(buf + 8, PageCrc(buf, count));
    handle.MarkDirty();
  }
  return Status::OK();
}

Status FreeSpaceMap::Load() {
  if (!has_backing_) return Status::OK();
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr,
                        pool_->smgrs()->Get(backing_.smgr_id));
  if (!smgr->FileExists(backing_.relfile)) return Status::OK();

  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, pool_->NumBlocks(backing_));
  for (BlockNumber p = 0; p < nblocks; ++p) {
    PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({backing_, p}));
    const uint8_t* buf = handle.data();
    if (DecodeFixed32(buf) != kFsmPageMagic) continue;  // torn: drop page
    uint16_t count = DecodeFixed16(buf + 4);
    if (count > kRecordsPerPage) continue;
    if (DecodeFixed32(buf + 8) != PageCrc(buf, count)) continue;
    for (uint16_t i = 0; i < count; ++i) {
      FsmRecord r = DecodeRecord(buf + kFsmHeaderSize +
                                 static_cast<size_t>(i) * kRecordSize);
      if (r.kind == kKindBucket && r.bucket > 0) {
        files_[r.file].buckets[r.block] = r.bucket;
      } else if (r.kind == kKindFreePage) {
        files_[r.file].free_pages.insert(r.block);
      }
    }
  }
  return Status::OK();
}

Result<FsmCheckReport> FreeSpaceMap::CheckAgainstStorage(bool fix) {
  FsmCheckReport report;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RelFileId> dead_files;
  for (auto& [file, fe] : files_) {
    Result<StorageManager*> smgr = pool_->smgrs()->Get(file.smgr_id);
    if (!smgr.ok() || !smgr.value()->FileExists(file.relfile)) {
      report.entries_checked += fe.buckets.size() + fe.free_pages.size();
      report.entries_dropped += fe.buckets.size() + fe.free_pages.size();
      report.notes.push_back("relation file missing; dropped its entries");
      if (fix) dead_files.push_back(file);
      continue;
    }
    Result<BlockNumber> nblocks = pool_->NumBlocks(file);
    if (!nblocks.ok()) return nblocks.status();

    std::vector<BlockNumber> drop;
    for (auto& [block, bucket] : fe.buckets) {
      ++report.entries_checked;
      uint32_t actual = 0;
      if (block < nblocks.value()) {
        PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file, block}));
        SlottedPage page(handle.data());
        if (page.IsInitialized()) actual = page.FreeSpaceAfterCompact();
      }
      uint8_t truth = BucketFor(actual);
      if (truth == 0) {
        ++report.entries_dropped;
        if (fix) drop.push_back(block);
      } else if (truth < bucket) {
        ++report.entries_repaired;
        if (fix) bucket = truth;
      }
    }
    for (BlockNumber block : drop) fe.buckets.erase(block);

    std::vector<BlockNumber> drop_free;
    for (BlockNumber block : fe.free_pages) {
      ++report.entries_checked;
      bool good = false;
      if (block < nblocks.value()) {
        PGLO_ASSIGN_OR_RETURN(PageHandle handle, pool_->GetPage({file, block}));
        good = IsFreePage(handle.data());
      }
      if (!good) {
        ++report.entries_dropped;
        if (fix) drop_free.push_back(block);
      }
    }
    for (BlockNumber block : drop_free) fe.free_pages.erase(block);
  }
  for (const RelFileId& file : dead_files) files_.erase(file);
  return report;
}

}  // namespace pglo
