#ifndef PGLO_STORAGE_BUFFER_POOL_H_
#define PGLO_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "device/cpu_cost.h"
#include "obs/event_log.h"
#include "obs/stats.h"
#include "obs/wait_event.h"
#include "smgr/smgr_registry.h"
#include "storage/page.h"
#include "storage/rel_latch.h"

namespace pglo {

class BufferPool;
class FreeSpaceMap;

/// RAII pin on a buffered page. While a PageHandle is live the frame cannot
/// be evicted. Call MarkDirty() after mutating the page image.
///
/// A pin also licenses the holder to read and write the page bytes; two
/// backends must not hold handles on the same page without higher-level
/// serialization (the relation latch — see DESIGN.md §13).
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(std::move(other)); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const { return page_id_; }

  /// Marks the frame dirty; it will be written back before eviction or at
  /// the next flush.
  void MarkDirty();

  /// Explicitly unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId id)
      : pool_(pool), frame_(frame), page_id_(id) {}
  void MoveFrom(PageHandle&& other) {
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t readahead_pages = 0;  ///< pages prefetched ahead of a faulting scan
  uint64_t readahead_hits = 0;   ///< hits served from a prefetched frame
  uint64_t flush_pin_waits = 0;  ///< flushes that had to wait out a pin
};

/// Fixed-size page cache over the storage manager switch.
///
/// LRU replacement with pin counts. Safe for concurrent backends: one pool
/// mutex serializes all metadata transitions and miss/writeback I/O, page
/// bytes are touched only under a pin, and flushes wait out pins held by
/// *other* threads (a flush may always write pages pinned by the calling
/// thread, which preserves the single-stream behavior exactly — see
/// DESIGN.md §13 for the full protocol).
class BufferPool {
 public:
  BufferPool(SmgrRegistry* smgrs, size_t num_frames);
  ~BufferPool();

  /// Charges `instructions` of simulated CPU per page access (pin, hash
  /// probe, latch, search) to `cpu`. Zero/null disables charging.
  /// Configuration-time only (not thread-safe against live traffic).
  void SetAccessCost(CpuCostModel* cpu, uint64_t instructions) {
    cpu_ = cpu;
    access_instructions_ = instructions;
  }

  /// Sets the sequential read-ahead window in pages. When a miss lands on
  /// the block a per-file detector expected next, the whole window is
  /// faulted with one vectored ReadBlocks into free/victim frames; the
  /// extra frames enter the LRU unpinned and evictable. Any value > 0 also
  /// turns on run-coalesced write-back (adjacent dirty pages leave in one
  /// WriteBlocks). 0 disables both, restoring the exact per-block command
  /// sequence the pool issued before vectored I/O existed.
  /// Configuration-time only.
  void SetReadAhead(uint32_t pages) { readahead_pages_ = pages; }
  uint32_t readahead_pages() const { return readahead_pages_; }

  /// Mirrors hit/miss/eviction/writeback accounting into `registry`
  /// counters under `bufpool.*`, plus `bufpool.{get,new_page,writeback}`
  /// trace spans with matching `*_ns` histograms, so the profiler can
  /// attribute page-access CPU and fault I/O to the pool rather than its
  /// caller. Null registry = unbound (no overhead). Configuration-time only.
  void BindStats(StatsRegistry* registry) {
    if (registry == nullptr) return;
    registry_ = registry;
    c_hits_ = registry->counter("bufpool.hits");
    c_misses_ = registry->counter("bufpool.misses");
    c_evictions_ = registry->counter("bufpool.evictions");
    c_writebacks_ = registry->counter("bufpool.writebacks");
    c_readahead_pages_ = registry->counter("bufpool.readahead_pages");
    c_readahead_hits_ = registry->counter("bufpool.readahead_hits");
    h_get_ns_ = registry->histogram("bufpool.get_ns");
    h_new_page_ns_ = registry->histogram("bufpool.new_page_ns");
    h_writeback_ns_ = registry->histogram("bufpool.writeback_ns");
  }

  /// Structured-event sink: a kReadAheadRamp event records each vectored
  /// prefetch the sequential detector issues. Null = silent.
  /// Configuration-time only.
  void SetEventLog(EventLog* events) { events_ = events; }

  /// Wait instrumentation (DESIGN.md §14): every acquisition of the pool
  /// latch reports under `latch.bufpool`, the flush loop's pin wait under
  /// `bufpool.pin_wait`, and the commit-time syncfs (mutex + syscall) under
  /// `bufpool.data_sync`. Also binds the hosted relation-latch registry.
  /// Null/unbound = raw paths. Configuration-time only.
  void BindWaits(const WaitStatsTable* waits) {
    if (waits == nullptr) return;
    wp_latch_ = waits->point(WaitEvent::kLatchBufPool);
    wp_pin_wait_ = waits->point(WaitEvent::kBufPoolPinWait);
    wp_data_sync_ = waits->point(WaitEvent::kBufPoolDataSync);
    rel_latches_.BindWaits(waits);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle on the given existing page, reading it from
  /// its storage manager on a miss.
  Result<PageHandle> GetPage(PageId id);

  /// Allocates a new block at the end of `file`, zero-filled and pinned.
  /// The new block number is returned through `block_out`. The block is
  /// materialized in the storage manager lazily, at write-back — callers
  /// must use BufferPool::NumBlocks (not the storage manager's) to see
  /// file sizes that include pending appends.
  Result<PageHandle> NewPage(RelFileId file, BlockNumber* block_out);

  /// File length in blocks, including blocks appended via NewPage that
  /// have not reached the storage manager yet.
  Result<BlockNumber> NumBlocks(RelFileId file);

  /// Writes back all dirty frames, then forces every file written since its
  /// last force to stable storage (smgr Sync) — the durability half of a
  /// commit's force policy: a pwrite alone does not survive power loss.
  /// Snapshot semantics under concurrency: the dirty set is captured on
  /// entry; pages another backend dirties afterwards are its own commit's
  /// problem. Waits for pins held by other threads on captured frames.
  /// The syncs run OUTSIDE the pool latch (they are the longest blocking
  /// syscalls in a commit; other backends keep using the pool meanwhile)
  /// and piggyback per file: a concurrent flush that already covered this
  /// caller's writes makes the fdatasync a no-op. Under group commit one
  /// FlushAll covers the whole batch.
  Status FlushAll();
  /// Writes back only `file`'s dirty frames, without the durability sync
  /// (used on paths that are not commit points).
  Status FlushFile(RelFileId file);

  /// Drops every frame of `file` without writing back (used by drop-class
  /// and by tests that simulate a crash losing volatile state).
  void DiscardFile(RelFileId file, bool discard_dirty = false);

  /// Simulates losing all volatile state: drops clean *and* dirty frames.
  /// Callers must quiesce other backends first.
  void CrashDiscardAll();

  /// Copy, not reference: coherent point-in-time view under concurrency.
  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = BufferPoolStats();
  }
  size_t num_frames() const { return frames_.size(); }
  SmgrRegistry* smgrs() const { return smgrs_; }

  /// Relation-latch registry shared by every access method built on this
  /// pool (heap, B-tree) — the pool is the one object they all already
  /// hold, so it hosts the registry. See rel_latch.h.
  RelLatchRegistry* rel_latches() { return &rel_latches_; }

  /// Free-space map shared by the same access methods (see
  /// free_space_map.h); hosted here for the same reason as the latch
  /// registry. Always non-null.
  FreeSpaceMap* fsm() { return fsm_.get(); }

  /// Installs a file descriptor on the filesystem holding the database
  /// files (typically the database directory). When set, FlushAll's
  /// durability pass issues ONE syncfs(2) covering every file instead of a
  /// per-file fdatasync — with K backends each owning a heap + index file,
  /// a commit batch would otherwise pay 2K serial fdatasyncs and group
  /// commit could never amortize the force. The pool does not own the fd.
  /// Configuration-time only.
  void SetSyncFile(int fd) { sync_fd_ = fd; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id;
    std::unique_ptr<uint8_t[]> data;
    // Pin bookkeeping is mutated only under mu_. The owner is the first
    // pinning thread; `pin_shared` records that a second thread pinned
    // while the count was already non-zero (then no thread may assume
    // exclusive ownership until the count returns to zero).
    uint32_t pin_count = 0;
    std::thread::id pin_owner;
    bool pin_shared = false;
    // Atomic because PageHandle::MarkDirty sets it without mu_ while
    // flush/eviction scans read it under mu_.
    std::atomic<bool> dirty{false};
    bool in_use = false;
    std::list<size_t>::iterator lru_pos;  // valid when unpinned & in_use
    bool on_lru = false;
    bool prefetched = false;  ///< installed by read-ahead, not yet accessed
  };

  /// Per-file sequential-access detector, updated on misses only. A miss
  /// on `next_expected` extends the streak; prefetching starts only on the
  /// third consecutive sequential miss and the window ramps up (2, 4, 8,
  /// ...) toward `readahead_pages_`. The confirmation + ramp keep short
  /// accidental runs — e.g. a random f-chunk frame read touching two
  /// adjacent chunk blocks — from paying for a full window they will never
  /// use.
  struct ReadAheadState {
    BlockNumber next_expected = 0;
    uint32_t streak = 0;  ///< consecutive misses that landed on next_expected
  };

  // All private helpers assume mu_ is held.
  void Unpin(size_t frame);
  void PinLocked(size_t frame);
  void TouchLocked(size_t frame);
  /// True when writing the frame's bytes cannot race a mutator: unpinned,
  /// or pinned exclusively by the calling thread (which is in the pool,
  /// not mutating). The self-pin case is what keeps eviction and flush
  /// behavior identical to the single-stream engine.
  bool SafeToWriteLocked(const Frame& f) const {
    return f.pin_count == 0 ||
           (!f.pin_shared && f.pin_owner == std::this_thread::get_id());
  }
  /// True when every dirty frame of `file` is safe to write — the gate for
  /// eviction-path write-back, which may have to materialize appended
  /// blocks of the file other than the one it is evicting.
  bool FileWritableLocked(RelFileId file) const;
  Result<size_t> FindVictimLocked();
  Status WriteBackLocked(Frame& frame);
  /// Cleans a sorted batch of cold dirty pages, starting with
  /// `victim_frame` (background-writer style clustering).
  Status WriteBackBatchLocked(size_t victim_frame);
  /// Writes back an already-sorted list of dirty frames, coalescing
  /// adjacent (file, block) runs into single WriteBlocks commands when
  /// read-ahead is enabled; falls back to per-frame WriteBack at window 0.
  Status WriteBackSortedLocked(const std::vector<size_t>& sorted);
  /// Stamps checksums and emits one contiguous dirty run (>= 2 frames of
  /// one file, consecutive blocks) as a single vectored write.
  Status WriteRawRunLocked(const std::vector<size_t>& run);
  /// Writes out any resident dirty blocks of `file` below `upto` that the
  /// storage manager does not have yet, so WriteBack never leaves a hole.
  Status EnsureMaterializedLocked(RelFileId file, BlockNumber upto);
  /// Stamps the checksum (when the image is a slotted page) and writes the
  /// raw frame image to its storage manager.
  Status WriteRawLocked(Frame& frame);
  /// Snapshot-flush loop shared by FlushAll/FlushFile; releases the lock
  /// while waiting out other threads' pins.
  Status FlushSnapshotLocked(std::unique_lock<std::mutex>& lk,
                             const RelFileId* only);
  Result<StorageManager*> SmgrFor(RelFileId file) {
    return smgrs_->Get(file.smgr_id);
  }

  SmgrRegistry* smgrs_;
  CpuCostModel* cpu_ = nullptr;
  uint64_t access_instructions_ = 0;
  StatsRegistry* registry_ = nullptr;
  EventLog* events_ = nullptr;
  Counter* c_hits_ = nullptr;
  Counter* c_misses_ = nullptr;
  Counter* c_evictions_ = nullptr;
  Counter* c_writebacks_ = nullptr;
  Counter* c_readahead_pages_ = nullptr;
  Counter* c_readahead_hits_ = nullptr;
  Histogram* h_get_ns_ = nullptr;
  Histogram* h_new_page_ns_ = nullptr;
  Histogram* h_writeback_ns_ = nullptr;
  const WaitPoint* wp_latch_ = nullptr;
  const WaitPoint* wp_pin_wait_ = nullptr;
  const WaitPoint* wp_data_sync_ = nullptr;

  /// The one pool latch. Guards every field below it, including miss and
  /// write-back I/O (misses serialize — acceptable while working sets fit
  /// the pool; hits hold it only for a hash probe and an LRU splice). The
  /// only operations that release it mid-flight are the flush loops, which
  /// cv-wait for other backends' pins; everything else holds it start to
  /// finish, so no other re-validation points exist.
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signaled when a frame's last pin drops

  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t, PageIdHash> page_table_;
  /// Logical file sizes including not-yet-materialized appended blocks.
  std::unordered_map<RelFileId, BlockNumber, RelFileIdHash> pending_size_;
  std::list<size_t> lru_;  // front = least recently used, unpinned frames
  std::vector<size_t> free_frames_;
  uint32_t readahead_pages_ = 0;
  std::unordered_map<RelFileId, ReadAheadState, RelFileIdHash> readahead_;
  /// Durability bookkeeping for FlushAll's sync pass: writes ever issued
  /// per file vs. writes known covered by an fdatasync. A file is due for a
  /// sync when written > synced; after syncing through write count n a
  /// flusher records synced = n. Entries are erased when the file's frames
  /// are discarded (drop), so a commit never tries to sync a dropped file.
  /// Used only when no sync_fd_ is installed; the syncfs path replaces the
  /// per-file maps with one global write epoch.
  std::unordered_map<RelFileId, uint64_t, RelFileIdHash> file_writes_;
  std::unordered_map<RelFileId, uint64_t, RelFileIdHash> file_synced_;
  /// syncfs-path durability epoch: bumped (under mu_) on every smgr write;
  /// synced_epoch_ (under data_sync_mu_) records the highest epoch known
  /// covered by a syncfs. A flusher whose captured epoch is already covered
  /// piggybacks and skips the syscall.
  int sync_fd_ = -1;
  std::atomic<uint64_t> write_epoch_{0};
  std::mutex data_sync_mu_;  ///< serializes syncfs; never nests inside mu_
  uint64_t synced_epoch_ = 0;
  /// Staging buffers for vectored faults and coalesced write-back; sized
  /// lazily to the largest run seen. Only touched under mu_.
  std::vector<uint8_t> read_scratch_;
  std::vector<uint8_t> write_scratch_;
  BufferPoolStats stats_;
  RelLatchRegistry rel_latches_;  ///< self-synchronized, not under mu_
  /// Self-synchronized; may call back into the pool, so the pool only
  /// touches it outside mu_ (see DiscardFile / CrashDiscardAll).
  std::unique_ptr<FreeSpaceMap> fsm_;
};

}  // namespace pglo

#endif  // PGLO_STORAGE_BUFFER_POOL_H_
