#include "storage/page.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/crc32c.h"
#include "common/logging.h"

namespace pglo {

namespace {
constexpr uint16_t kPageMagic = 0x5047;  // "PG"
// Header field offsets.
constexpr uint32_t kOffMagic = 0;
constexpr uint32_t kOffFlags = 2;
constexpr uint32_t kOffLower = 4;
constexpr uint32_t kOffUpper = 6;
constexpr uint32_t kOffSpecial = 8;
constexpr uint32_t kOffLsn = 12;
constexpr uint32_t kOffChecksum = 20;
}  // namespace

void SlottedPage::Init(uint16_t special_size) {
  PGLO_CHECK(special_size < kPageSize - kHeaderSize);
  std::memset(buf_, 0, kPageSize);
  EncodeFixed16(buf_ + kOffMagic, kPageMagic);
  EncodeFixed16(buf_ + kOffFlags, 0);
  set_lower(kHeaderSize);
  uint16_t special_off = static_cast<uint16_t>(kPageSize - special_size);
  EncodeFixed16(buf_ + kOffSpecial, special_off);
  set_upper(special_off);
  EncodeFixed64(buf_ + kOffLsn, 0);
}

bool SlottedPage::IsInitialized() const {
  return DecodeFixed16(buf_ + kOffMagic) == kPageMagic;
}

uint16_t SlottedPage::lower() const { return DecodeFixed16(buf_ + kOffLower); }
uint16_t SlottedPage::upper() const { return DecodeFixed16(buf_ + kOffUpper); }
void SlottedPage::set_lower(uint16_t v) { EncodeFixed16(buf_ + kOffLower, v); }
void SlottedPage::set_upper(uint16_t v) { EncodeFixed16(buf_ + kOffUpper, v); }

uint16_t SlottedPage::SpecialSize() const {
  return static_cast<uint16_t>(kPageSize - DecodeFixed16(buf_ + kOffSpecial));
}

uint8_t* SlottedPage::SpecialArea() {
  return buf_ + DecodeFixed16(buf_ + kOffSpecial);
}
const uint8_t* SlottedPage::SpecialArea() const {
  return buf_ + DecodeFixed16(buf_ + kOffSpecial);
}

uint16_t SlottedPage::NumSlots() const {
  return static_cast<uint16_t>((lower() - kHeaderSize) / kSlotSize);
}

void SlottedPage::ReadSlot(uint16_t slot, uint16_t* off, uint16_t* len,
                           uint16_t* state) const {
  const uint8_t* p = buf_ + kHeaderSize + slot * kSlotSize;
  *off = DecodeFixed16(p);
  *len = DecodeFixed16(p + 2);
  *state = DecodeFixed16(p + 4);
}

void SlottedPage::WriteSlot(uint16_t slot, uint16_t off, uint16_t len,
                            uint16_t state) {
  uint8_t* p = buf_ + kHeaderSize + slot * kSlotSize;
  EncodeFixed16(p, off);
  EncodeFixed16(p + 2, len);
  EncodeFixed16(p + 4, state);
}

SlottedPage::SlotState SlottedPage::GetSlotState(uint16_t slot) const {
  if (slot >= NumSlots()) return kUnused;
  uint16_t off, len, state;
  ReadSlot(slot, &off, &len, &state);
  return static_cast<SlotState>(state);
}

uint32_t SlottedPage::FreeSpace() const {
  uint32_t gap = upper() - lower();
  return gap;
}

uint32_t SlottedPage::FreeSpaceAfterCompact() const {
  uint32_t free = FreeSpace();
  uint16_t n = NumSlots();
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t off, len, state;
    ReadSlot(i, &off, &len, &state);
    if (state == kDead) free += len;
  }
  return free;
}

Result<uint16_t> SlottedPage::AddItem(Slice item) {
  if (item.size() > MaxItemSize()) {
    return Status::InvalidArgument("item larger than page capacity");
  }
  // Prefer to recycle a dead slot's line pointer.
  uint16_t n = NumSlots();
  uint16_t target = n;
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t off, len, state;
    ReadSlot(i, &off, &len, &state);
    if (state == kDead && len == 0) {  // dead and already compacted away
      target = i;
      break;
    }
  }
  uint32_t need = static_cast<uint32_t>(item.size()) +
                  (target == n ? kSlotSize : 0);
  if (FreeSpace() < need) {
    if (FreeSpaceAfterCompact() < need) {
      return Status::ResourceExhausted("page full");
    }
    Compact();
    // Compacting may have zeroed a dead slot we can now recycle.
    if (target == n) {
      for (uint16_t i = 0; i < n; ++i) {
        uint16_t off, len, state;
        ReadSlot(i, &off, &len, &state);
        if (state == kDead && len == 0) {
          target = i;
          need = static_cast<uint32_t>(item.size());
          break;
        }
      }
    }
    if (FreeSpace() < need) {
      return Status::ResourceExhausted("page full");
    }
  }
  uint16_t new_upper = static_cast<uint16_t>(upper() - item.size());
  std::memcpy(buf_ + new_upper, item.data(), item.size());
  set_upper(new_upper);
  if (target == n) {
    set_lower(static_cast<uint16_t>(lower() + kSlotSize));
  }
  WriteSlot(target, new_upper, static_cast<uint16_t>(item.size()), kNormal);
  return target;
}

Result<Slice> SlottedPage::GetItem(uint16_t slot) const {
  if (slot >= NumSlots()) return Status::NotFound("slot out of range");
  uint16_t off, len, state;
  ReadSlot(slot, &off, &len, &state);
  if (state != kNormal) return Status::NotFound("slot not live");
  return Slice(buf_ + off, len);
}

Status SlottedPage::DeleteItem(uint16_t slot) {
  if (slot >= NumSlots()) return Status::NotFound("slot out of range");
  uint16_t off, len, state;
  ReadSlot(slot, &off, &len, &state);
  if (state != kNormal) return Status::NotFound("slot not live");
  WriteSlot(slot, off, len, kDead);
  return Status::OK();
}

Status SlottedPage::OverwriteItem(uint16_t slot, Slice item) {
  if (slot >= NumSlots()) return Status::NotFound("slot out of range");
  uint16_t off, len, state;
  ReadSlot(slot, &off, &len, &state);
  if (state != kNormal) return Status::NotFound("slot not live");
  if (item.size() > len) {
    return Status::InvalidArgument("in-place overwrite cannot grow an item");
  }
  std::memcpy(buf_ + off, item.data(), item.size());
  WriteSlot(slot, off, static_cast<uint16_t>(item.size()), kNormal);
  return Status::OK();
}

void SlottedPage::Compact() {
  struct Live {
    uint16_t slot;
    uint16_t off;
    uint16_t len;
  };
  uint16_t n = NumSlots();
  std::vector<Live> live;
  live.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t off, len, state;
    ReadSlot(i, &off, &len, &state);
    if (state == kNormal) {
      live.push_back({i, off, len});
    } else if (state == kDead && len != 0) {
      WriteSlot(i, 0, 0, kDead);  // release its storage
    }
  }
  // Repack highest-offset first so moves never overlap destructively.
  std::sort(live.begin(), live.end(),
            [](const Live& a, const Live& b) { return a.off > b.off; });
  uint16_t special_off = DecodeFixed16(buf_ + kOffSpecial);
  uint16_t dst = special_off;
  for (const Live& item : live) {
    dst = static_cast<uint16_t>(dst - item.len);
    std::memmove(buf_ + dst, buf_ + item.off, item.len);
    WriteSlot(item.slot, dst, item.len, kNormal);
  }
  set_upper(dst);
}

void SlottedPage::UpdateChecksum() {
  EncodeFixed32(buf_ + kOffChecksum, 0);
  uint32_t crc = crc32c::Value(buf_, kPageSize);
  EncodeFixed32(buf_ + kOffChecksum, crc32c::Mask(crc));
}

bool SlottedPage::VerifyChecksum() const {
  uint32_t stored = DecodeFixed32(buf_ + kOffChecksum);
  if (stored == 0) return true;  // never checksummed (fresh page)
  uint8_t copy[kPageSize];
  std::memcpy(copy, buf_, kPageSize);
  EncodeFixed32(copy + kOffChecksum, 0);
  return crc32c::Unmask(stored) == crc32c::Value(copy, kPageSize);
}

}  // namespace pglo
