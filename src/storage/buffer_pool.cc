#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "fault/retry.h"

namespace pglo {

uint8_t* PageHandle::data() {
  PGLO_CHECK(valid());
  return pool_->frames_[frame_].data.get();
}

const uint8_t* PageHandle::data() const {
  PGLO_CHECK(valid());
  return pool_->frames_[frame_].data.get();
}

void PageHandle::MarkDirty() {
  PGLO_CHECK(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(SmgrRegistry* smgrs, size_t num_frames)
    : smgrs_(smgrs), frames_(num_frames) {
  PGLO_CHECK(num_frames >= 2);
  free_frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(num_frames - 1 - i);
  }
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    PGLO_LOG(Error) << "buffer pool final flush failed: " << s.ToString();
  }
}

void BufferPool::Touch(size_t frame) {
  Frame& f = frames_[frame];
  if (f.on_lru) {
    lru_.erase(f.lru_pos);
    f.on_lru = false;
  }
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  PGLO_CHECK(f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_back(frame);
    f.lru_pos = std::prev(lru_.end());
    f.on_lru = true;
  }
}

Status BufferPool::WriteRaw(Frame& frame) {
  TraceSpan span(registry_, h_writeback_ns_, "bufpool.writeback");
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(frame.id.file));
  // Stamp a checksum into slotted pages on their way to stable storage so
  // that media corruption is detected on the next read. Non-slotted
  // formats (B-tree nodes, meta pages) carry their own magic.
  SlottedPage page(frame.data.get());
  if (page.IsInitialized()) {
    page.UpdateChecksum();
  }
  PGLO_RETURN_IF_ERROR(RetryTransient(smgrs_->retry_policy(), [&] {
    return smgr->WriteBlock(frame.id.file.relfile, frame.id.block,
                            frame.data.get());
  }));
  frame.dirty = false;
  ++stats_.writebacks;
  StatInc(c_writebacks_);
  return Status::OK();
}

Status BufferPool::EnsureMaterialized(RelFileId file, BlockNumber upto) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber cur, smgr->NumBlocks(file.relfile));
  for (BlockNumber b = cur; b < upto; ++b) {
    auto it = page_table_.find(PageId{file, b});
    if (it == page_table_.end()) {
      return Status::Internal(
          "appended block evicted out of order: relfile " +
          std::to_string(file.relfile) + " block " + std::to_string(b));
    }
    PGLO_RETURN_IF_ERROR(WriteRaw(frames_[it->second]));
  }
  return Status::OK();
}

Status BufferPool::WriteBack(Frame& frame) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(frame.id.file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber cur,
                        smgr->NumBlocks(frame.id.file.relfile));
  if (frame.id.block > cur) {
    // Lazily-appended file tail: flush the intervening appended blocks
    // first so the storage manager never sees a hole.
    PGLO_RETURN_IF_ERROR(EnsureMaterialized(frame.id.file, frame.id.block));
  }
  if (!frame.dirty) return Status::OK();  // materialization covered it
  return WriteRaw(frame);
}

Result<size_t> BufferPool::FindVictim() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer pool frames are pinned");
  }
  size_t frame = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[frame];
  f.on_lru = false;
  ++stats_.evictions;
  StatInc(c_evictions_);
  if (f.dirty) {
    // Background-writer behaviour: when eviction hits a dirty page, clean
    // a batch of cold dirty pages in sorted block order, so that a mixed
    // read/append workload pays a few clustered write passes instead of a
    // head seek per evicted page.
    PGLO_RETURN_IF_ERROR(WriteBackBatch(frame));
  }
  page_table_.erase(f.id);
  f.in_use = false;
  return frame;
}

Status BufferPool::WriteBackBatch(size_t victim_frame) {
  constexpr size_t kBatch = 64;
  std::vector<size_t> batch;
  batch.push_back(victim_frame);
  for (auto it = lru_.begin(); it != lru_.end() && batch.size() < kBatch;
       ++it) {
    if (frames_[*it].dirty) batch.push_back(*it);
  }
  std::sort(batch.begin(), batch.end(), [this](size_t a, size_t b) {
    const PageId& x = frames_[a].id;
    const PageId& y = frames_[b].id;
    return std::tie(x.file.smgr_id, x.file.relfile, x.block) <
           std::tie(y.file.smgr_id, y.file.relfile, y.block);
  });
  return WriteBackSorted(batch);
}

Status BufferPool::WriteRawRun(const std::vector<size_t>& run) {
  TraceSpan span(registry_, h_writeback_ns_, "bufpool.writeback");
  span.AddDetail(run.size());
  Frame& first = frames_[run.front()];
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(first.id.file));
  write_scratch_.resize(run.size() * kPageSize);
  for (size_t k = 0; k < run.size(); ++k) {
    Frame& fr = frames_[run[k]];
    SlottedPage page(fr.data.get());
    if (page.IsInitialized()) {
      page.UpdateChecksum();
    }
    std::memcpy(write_scratch_.data() + k * kPageSize, fr.data.get(),
                kPageSize);
  }
  PGLO_RETURN_IF_ERROR(RetryTransient(smgrs_->retry_policy(), [&] {
    return smgr->WriteBlocks(first.id.file.relfile, first.id.block,
                             static_cast<uint32_t>(run.size()),
                             write_scratch_.data());
  }));
  for (size_t idx : run) {
    frames_[idx].dirty = false;
  }
  stats_.writebacks += run.size();
  StatAdd(c_writebacks_, run.size());
  return Status::OK();
}

Status BufferPool::WriteBackSorted(const std::vector<size_t>& sorted) {
  if (readahead_pages_ == 0) {
    // Legacy per-page path, kept bit-identical for the window-0 ablation.
    for (size_t i : sorted) {
      PGLO_RETURN_IF_ERROR(WriteBack(frames_[i]));
    }
    return Status::OK();
  }
  // One device command per up-to-512KB contiguous dirty run.
  constexpr size_t kMaxWriteRun = 64;
  size_t i = 0;
  while (i < sorted.size()) {
    if (!frames_[sorted[i]].dirty) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < sorted.size() && j - i < kMaxWriteRun) {
      const Frame& prev = frames_[sorted[j - 1]];
      const Frame& cur = frames_[sorted[j]];
      if (!(cur.id.file == prev.id.file) ||
          cur.id.block != prev.id.block + 1 || !cur.dirty) {
        break;
      }
      ++j;
    }
    if (j - i == 1) {
      PGLO_RETURN_IF_ERROR(WriteBack(frames_[sorted[i]]));
      i = j;
      continue;
    }
    Frame& first = frames_[sorted[i]];
    PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(first.id.file));
    PGLO_ASSIGN_OR_RETURN(BlockNumber cur_blocks,
                          smgr->NumBlocks(first.id.file.relfile));
    if (first.id.block > cur_blocks) {
      // Lazily-appended tail: fill the gap below the run first so the
      // vectored write extends the file contiguously.
      PGLO_RETURN_IF_ERROR(
          EnsureMaterialized(first.id.file, first.id.block));
    }
    PGLO_RETURN_IF_ERROR(WriteRawRun(
        std::vector<size_t>(sorted.begin() + i, sorted.begin() + j)));
    i = j;
  }
  return Status::OK();
}

Result<PageHandle> BufferPool::GetPage(PageId id) {
  // Spans even the hit path: the page-access CPU charge advances the clock
  // here, and the profiler should bill it to the pool, not the caller.
  TraceSpan span(registry_, h_get_ns_, "bufpool.get");
  if (cpu_ != nullptr && access_instructions_ > 0) {
    cpu_->ChargeInstructions(access_instructions_);
  }
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    StatInc(c_hits_);
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.prefetched) {
      f.prefetched = false;
      ++stats_.readahead_hits;
      StatInc(c_readahead_hits_);
    }
    Touch(frame);
    ++f.pin_count;
    return PageHandle(this, frame, id);
  }
  ++stats_.misses;
  StatInc(c_misses_);
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(id.file));
  // Sequential detector: misses landing on the block this file was
  // expected to fault next build a streak. The second consecutive match
  // confirms a scan and widens the read, ramping the window (2, 4, 8, ...)
  // up to `readahead_pages_`, clipped at the storage manager's end of file
  // and at the first block that is already resident. A single accidental
  // adjacency (common when one logical record straddles two blocks) never
  // triggers a prefetch.
  uint32_t want = 1;
  if (readahead_pages_ > 1) {
    ReadAheadState& ra = readahead_[id.file];
    if (id.block == ra.next_expected) {
      ra.streak = std::min<uint32_t>(ra.streak + 1, 32);
    } else {
      ra.streak = 0;
    }
    if (ra.streak >= 2) {
      Result<BlockNumber> nb = smgr->NumBlocks(id.file.relfile);
      if (nb.ok() && id.block < nb.value()) {
        uint32_t window = 2;
        for (uint32_t s = 2; s < ra.streak && window < readahead_pages_;
             ++s) {
          window *= 2;
        }
        want = static_cast<uint32_t>(std::min<uint64_t>(
            std::min<uint32_t>(window, readahead_pages_),
            nb.value() - id.block));
        for (uint32_t k = 1; k < want; ++k) {
          if (page_table_.count(PageId{id.file, id.block + k}) != 0) {
            want = k;
            break;
          }
        }
      }
    }
  }
  PGLO_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  std::vector<size_t> extras;
  for (uint32_t k = 1; k < want; ++k) {
    Result<size_t> v = FindVictim();
    if (!v.ok()) break;  // pool too hot to prefetch: fault what fits
    extras.push_back(v.value());
  }
  uint32_t run = 1 + static_cast<uint32_t>(extras.size());
  if (readahead_pages_ > 1) {
    readahead_[id.file].next_expected = id.block + run;
  }
  if (run > 1 && events_ != nullptr) {
    events_->Append(EventType::kReadAheadRamp, "bufpool", run, id.block);
  }
  Frame& f = frames_[frame];
  Status s;
  if (run == 1) {
    s = RetryTransient(smgrs_->retry_policy(), [&] {
      return smgr->ReadBlock(id.file.relfile, id.block, f.data.get());
    });
  } else {
    read_scratch_.resize(static_cast<size_t>(run) * kPageSize);
    s = RetryTransient(smgrs_->retry_policy(), [&] {
      return smgr->ReadBlocks(id.file.relfile, id.block, run,
                              read_scratch_.data());
    });
  }
  if (!s.ok()) {
    free_frames_.push_back(frame);
    for (size_t e : extras) free_frames_.push_back(e);
    return s;
  }
  if (run > 1) {
    std::memcpy(f.data.get(), read_scratch_.data(), kPageSize);
  }
  for (uint32_t k = 0; k < run; ++k) {
    uint8_t* img = (run == 1) ? f.data.get()
                              : read_scratch_.data() +
                                    static_cast<size_t>(k) * kPageSize;
    SlottedPage page(img);
    if (page.IsInitialized() && !page.VerifyChecksum()) {
      free_frames_.push_back(frame);
      for (size_t e : extras) free_frames_.push_back(e);
      return Status::Corruption(
          "page checksum mismatch: relfile " +
          std::to_string(id.file.relfile) + " block " +
          std::to_string(id.block + k));
    }
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_use = true;
  f.on_lru = false;
  f.prefetched = false;
  page_table_[id] = frame;
  // Extra frames go straight onto the LRU, unpinned: prefetched pages are
  // always evictable and never pin the pool down.
  for (uint32_t k = 1; k < run; ++k) {
    size_t ef = extras[k - 1];
    Frame& e = frames_[ef];
    std::memcpy(e.data.get(),
                read_scratch_.data() + static_cast<size_t>(k) * kPageSize,
                kPageSize);
    PageId pid{id.file, id.block + k};
    e.id = pid;
    e.pin_count = 0;
    e.dirty = false;
    e.in_use = true;
    e.prefetched = true;
    page_table_[pid] = ef;
    lru_.push_back(ef);
    e.lru_pos = std::prev(lru_.end());
    e.on_lru = true;
    ++stats_.readahead_pages;
    StatInc(c_readahead_pages_);
  }
  return PageHandle(this, frame, id);
}

Result<BlockNumber> BufferPool::NumBlocks(RelFileId file) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber n, smgr->NumBlocks(file.relfile));
  auto it = pending_size_.find(file);
  if (it != pending_size_.end() && it->second > n) return it->second;
  return n;
}

Result<PageHandle> BufferPool::NewPage(RelFileId file,
                                       BlockNumber* block_out) {
  TraceSpan span(registry_, h_new_page_ns_, "bufpool.new_page");
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks(file));
  PGLO_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  // The block is materialized in the storage manager lazily at write-back
  // (WriteBack fills any gap below it first); until then the pool's
  // pending-size overlay makes it visible through NumBlocks().
  PageId id{file, nblocks};
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_use = true;
  f.on_lru = false;
  f.prefetched = false;
  page_table_[id] = frame;
  pending_size_[file] = nblocks + 1;
  *block_out = nblocks;
  return PageHandle(this, frame, id);
}

Status BufferPool::FlushAll() {
  // Sorted write-back: real systems cluster checkpoint writes; issuing in
  // page-table order would charge the disk model a seek per page.
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].dirty) dirty.push_back(i);
  }
  std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
    const PageId& x = frames_[a].id;
    const PageId& y = frames_[b].id;
    return std::tie(x.file.smgr_id, x.file.relfile, x.block) <
           std::tie(y.file.smgr_id, y.file.relfile, y.block);
  });
  return WriteBackSorted(dirty);
}

Status BufferPool::FlushFile(RelFileId file) {
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].dirty && frames_[i].id.file == file) {
      dirty.push_back(i);
    }
  }
  std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
    return frames_[a].id.block < frames_[b].id.block;
  });
  return WriteBackSorted(dirty);
}

void BufferPool::DiscardFile(RelFileId file, bool discard_dirty) {
  if (discard_dirty) pending_size_.erase(file);
  readahead_.erase(file);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use || !(f.id.file == file)) continue;
    if (f.dirty && !discard_dirty) continue;
    PGLO_CHECK(f.pin_count == 0);
    if (f.on_lru) {
      lru_.erase(f.lru_pos);
      f.on_lru = false;
    }
    page_table_.erase(f.id);
    f.in_use = false;
    f.dirty = false;
    f.prefetched = false;
    free_frames_.push_back(i);
  }
}

void BufferPool::CrashDiscardAll() {
  pending_size_.clear();
  readahead_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use) continue;
    PGLO_CHECK(f.pin_count == 0);
    if (f.on_lru) {
      lru_.erase(f.lru_pos);
      f.on_lru = false;
    }
    page_table_.erase(f.id);
    f.in_use = false;
    f.dirty = false;
    f.prefetched = false;
    free_frames_.push_back(i);
  }
}

}  // namespace pglo
