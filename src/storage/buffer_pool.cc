#include "storage/buffer_pool.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "fault/retry.h"
#include "storage/free_space_map.h"

namespace pglo {

uint8_t* PageHandle::data() {
  PGLO_CHECK(valid());
  // Lock-free: frame data pointers are stable for the pool's lifetime and
  // the pin prevents eviction from recycling the frame.
  return pool_->frames_[frame_].data.get();
}

const uint8_t* PageHandle::data() const {
  PGLO_CHECK(valid());
  return pool_->frames_[frame_].data.get();
}

void PageHandle::MarkDirty() {
  PGLO_CHECK(valid());
  pool_->frames_[frame_].dirty.store(true, std::memory_order_release);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(SmgrRegistry* smgrs, size_t num_frames)
    : smgrs_(smgrs), frames_(num_frames) {
  PGLO_CHECK(num_frames >= 2);
  free_frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(num_frames - 1 - i);
  }
  fsm_ = std::make_unique<FreeSpaceMap>(this);
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    PGLO_LOG(Error) << "buffer pool final flush failed: " << s.ToString();
  }
}

void BufferPool::TouchLocked(size_t frame) {
  Frame& f = frames_[frame];
  if (f.on_lru) {
    lru_.erase(f.lru_pos);
    f.on_lru = false;
  }
}

void BufferPool::PinLocked(size_t frame) {
  Frame& f = frames_[frame];
  TouchLocked(frame);
  if (f.pin_count == 0) {
    f.pin_owner = std::this_thread::get_id();
    f.pin_shared = false;
  } else if (f.pin_owner != std::this_thread::get_id()) {
    f.pin_shared = true;
  }
  ++f.pin_count;
}

void BufferPool::Unpin(size_t frame) {
  WaitLockGuard lock(mu_, wp_latch_);
  Frame& f = frames_[frame];
  PGLO_CHECK(f.pin_count > 0);
  if (--f.pin_count == 0) {
    f.pin_shared = false;
    lru_.push_back(frame);
    f.lru_pos = std::prev(lru_.end());
    f.on_lru = true;
    // A flush may be waiting for this pin before it can write the page.
    cv_.notify_all();
  }
}

bool BufferPool::FileWritableLocked(RelFileId file) const {
  for (const Frame& f : frames_) {
    if (f.in_use && f.id.file == file &&
        f.dirty.load(std::memory_order_acquire) && !SafeToWriteLocked(f)) {
      return false;
    }
  }
  return true;
}

Status BufferPool::WriteRawLocked(Frame& frame) {
  TraceSpan span(registry_, h_writeback_ns_, "bufpool.writeback");
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(frame.id.file));
  // Stamp a checksum into slotted pages on their way to stable storage so
  // that media corruption is detected on the next read. Non-slotted
  // formats (B-tree nodes, meta pages) carry their own magic.
  SlottedPage page(frame.data.get());
  if (page.IsInitialized()) {
    page.UpdateChecksum();
  }
  PGLO_RETURN_IF_ERROR(RetryTransient(smgrs_->retry_policy(), [&] {
    return smgr->WriteBlock(frame.id.file.relfile, frame.id.block,
                            frame.data.get());
  }));
  ++file_writes_[frame.id.file];
  write_epoch_.fetch_add(1, std::memory_order_release);
  frame.dirty.store(false, std::memory_order_release);
  ++stats_.writebacks;
  StatInc(c_writebacks_);
  return Status::OK();
}

Status BufferPool::EnsureMaterializedLocked(RelFileId file, BlockNumber upto) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber cur, smgr->NumBlocks(file.relfile));
  for (BlockNumber b = cur; b < upto; ++b) {
    auto it = page_table_.find(PageId{file, b});
    if (it == page_table_.end()) {
      return Status::Internal(
          "appended block evicted out of order: relfile " +
          std::to_string(file.relfile) + " block " + std::to_string(b));
    }
    PGLO_RETURN_IF_ERROR(WriteRawLocked(frames_[it->second]));
  }
  return Status::OK();
}

Status BufferPool::WriteBackLocked(Frame& frame) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(frame.id.file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber cur,
                        smgr->NumBlocks(frame.id.file.relfile));
  if (frame.id.block > cur) {
    // Lazily-appended file tail: flush the intervening appended blocks
    // first so the storage manager never sees a hole.
    PGLO_RETURN_IF_ERROR(
        EnsureMaterializedLocked(frame.id.file, frame.id.block));
  }
  if (!frame.dirty.load(std::memory_order_acquire)) {
    return Status::OK();  // materialization covered it
  }
  return WriteRawLocked(frame);
}

Result<size_t> BufferPool::FindVictimLocked() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Frame& f = frames_[*it];
    // A dirty victim drags the rest of its file's appended tail into the
    // write-back (gap materialization), so it is only eligible when no
    // other backend pins a dirty page of that file. Clean victims are
    // always eligible. Single-stream, every pin is our own, so the first
    // candidate is lru_.front() — the pre-concurrency choice exactly.
    if (f.dirty.load(std::memory_order_acquire) &&
        !FileWritableLocked(f.id.file)) {
      continue;
    }
    size_t frame = *it;
    lru_.erase(it);
    f.on_lru = false;
    ++stats_.evictions;
    StatInc(c_evictions_);
    if (f.dirty.load(std::memory_order_acquire)) {
      // Background-writer behaviour: when eviction hits a dirty page,
      // clean a batch of cold dirty pages in sorted block order, so that a
      // mixed read/append workload pays a few clustered write passes
      // instead of a head seek per evicted page.
      PGLO_RETURN_IF_ERROR(WriteBackBatchLocked(frame));
    }
    page_table_.erase(f.id);
    f.in_use = false;
    return frame;
  }
  // Nothing evictable right now. Fail rather than wait: waiting here with
  // the pool lock's caller stack (possibly holding pins) risks deadlock,
  // and the single-stream engine returned this same error when every frame
  // was pinned.
  return Status::ResourceExhausted("all buffer pool frames are pinned");
}

Status BufferPool::WriteBackBatchLocked(size_t victim_frame) {
  constexpr size_t kBatch = 64;
  std::vector<size_t> batch;
  batch.push_back(victim_frame);
  for (auto it = lru_.begin(); it != lru_.end() && batch.size() < kBatch;
       ++it) {
    Frame& f = frames_[*it];
    if (f.dirty.load(std::memory_order_acquire) &&
        FileWritableLocked(f.id.file)) {
      batch.push_back(*it);
    }
  }
  std::sort(batch.begin(), batch.end(), [this](size_t a, size_t b) {
    const PageId& x = frames_[a].id;
    const PageId& y = frames_[b].id;
    return std::tie(x.file.smgr_id, x.file.relfile, x.block) <
           std::tie(y.file.smgr_id, y.file.relfile, y.block);
  });
  return WriteBackSortedLocked(batch);
}

Status BufferPool::WriteRawRunLocked(const std::vector<size_t>& run) {
  TraceSpan span(registry_, h_writeback_ns_, "bufpool.writeback");
  span.AddDetail(run.size());
  Frame& first = frames_[run.front()];
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(first.id.file));
  write_scratch_.resize(run.size() * kPageSize);
  for (size_t k = 0; k < run.size(); ++k) {
    Frame& fr = frames_[run[k]];
    SlottedPage page(fr.data.get());
    if (page.IsInitialized()) {
      page.UpdateChecksum();
    }
    std::memcpy(write_scratch_.data() + k * kPageSize, fr.data.get(),
                kPageSize);
  }
  PGLO_RETURN_IF_ERROR(RetryTransient(smgrs_->retry_policy(), [&] {
    return smgr->WriteBlocks(first.id.file.relfile, first.id.block,
                             static_cast<uint32_t>(run.size()),
                             write_scratch_.data());
  }));
  ++file_writes_[first.id.file];
  write_epoch_.fetch_add(1, std::memory_order_release);
  for (size_t idx : run) {
    frames_[idx].dirty.store(false, std::memory_order_release);
  }
  stats_.writebacks += run.size();
  StatAdd(c_writebacks_, run.size());
  return Status::OK();
}

Status BufferPool::WriteBackSortedLocked(const std::vector<size_t>& sorted) {
  if (readahead_pages_ == 0) {
    // Legacy per-page path, kept bit-identical for the window-0 ablation.
    for (size_t i : sorted) {
      PGLO_RETURN_IF_ERROR(WriteBackLocked(frames_[i]));
    }
    return Status::OK();
  }
  // One device command per up-to-512KB contiguous dirty run.
  constexpr size_t kMaxWriteRun = 64;
  size_t i = 0;
  while (i < sorted.size()) {
    if (!frames_[sorted[i]].dirty.load(std::memory_order_acquire)) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < sorted.size() && j - i < kMaxWriteRun) {
      const Frame& prev = frames_[sorted[j - 1]];
      const Frame& cur = frames_[sorted[j]];
      if (!(cur.id.file == prev.id.file) ||
          cur.id.block != prev.id.block + 1 ||
          !cur.dirty.load(std::memory_order_acquire)) {
        break;
      }
      ++j;
    }
    if (j - i == 1) {
      PGLO_RETURN_IF_ERROR(WriteBackLocked(frames_[sorted[i]]));
      i = j;
      continue;
    }
    Frame& first = frames_[sorted[i]];
    PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(first.id.file));
    PGLO_ASSIGN_OR_RETURN(BlockNumber cur_blocks,
                          smgr->NumBlocks(first.id.file.relfile));
    if (first.id.block > cur_blocks) {
      // Lazily-appended tail: fill the gap below the run first so the
      // vectored write extends the file contiguously.
      PGLO_RETURN_IF_ERROR(
          EnsureMaterializedLocked(first.id.file, first.id.block));
    }
    PGLO_RETURN_IF_ERROR(WriteRawRunLocked(
        std::vector<size_t>(sorted.begin() + i, sorted.begin() + j)));
    i = j;
  }
  return Status::OK();
}

Result<PageHandle> BufferPool::GetPage(PageId id) {
  // Spans even the hit path: the page-access CPU charge advances the clock
  // here, and the profiler should bill it to the pool, not the caller.
  // Both run before the pool lock — the clock and CPU model are their own
  // synchronization domains and must not serialize behind pool misses.
  TraceSpan span(registry_, h_get_ns_, "bufpool.get");
  if (cpu_ != nullptr && access_instructions_ > 0) {
    cpu_->ChargeInstructions(access_instructions_);
  }
  WaitLockGuard lock(mu_, wp_latch_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    StatInc(c_hits_);
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.prefetched) {
      f.prefetched = false;
      ++stats_.readahead_hits;
      StatInc(c_readahead_hits_);
    }
    PinLocked(frame);
    return PageHandle(this, frame, id);
  }
  ++stats_.misses;
  StatInc(c_misses_);
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(id.file));
  // Sequential detector: misses landing on the block this file was
  // expected to fault next build a streak. The second consecutive match
  // confirms a scan and widens the read, ramping the window (2, 4, 8, ...)
  // up to `readahead_pages_`, clipped at the storage manager's end of file
  // and at the first block that is already resident. A single accidental
  // adjacency (common when one logical record straddles two blocks) never
  // triggers a prefetch.
  uint32_t want = 1;
  if (readahead_pages_ > 1) {
    ReadAheadState& ra = readahead_[id.file];
    if (id.block == ra.next_expected) {
      ra.streak = std::min<uint32_t>(ra.streak + 1, 32);
    } else {
      ra.streak = 0;
    }
    if (ra.streak >= 2) {
      Result<BlockNumber> nb = smgr->NumBlocks(id.file.relfile);
      if (nb.ok() && id.block < nb.value()) {
        uint32_t window = 2;
        for (uint32_t s = 2; s < ra.streak && window < readahead_pages_;
             ++s) {
          window *= 2;
        }
        want = static_cast<uint32_t>(std::min<uint64_t>(
            std::min<uint32_t>(window, readahead_pages_),
            nb.value() - id.block));
        for (uint32_t k = 1; k < want; ++k) {
          if (page_table_.count(PageId{id.file, id.block + k}) != 0) {
            want = k;
            break;
          }
        }
      }
    }
  }
  PGLO_ASSIGN_OR_RETURN(size_t frame, FindVictimLocked());
  std::vector<size_t> extras;
  for (uint32_t k = 1; k < want; ++k) {
    Result<size_t> v = FindVictimLocked();
    if (!v.ok()) break;  // pool too hot to prefetch: fault what fits
    extras.push_back(v.value());
  }
  uint32_t run = 1 + static_cast<uint32_t>(extras.size());
  if (readahead_pages_ > 1) {
    readahead_[id.file].next_expected = id.block + run;
  }
  if (run > 1 && events_ != nullptr) {
    events_->Append(EventType::kReadAheadRamp, "bufpool", run, id.block);
  }
  // The miss read happens under the pool lock: concurrent misses
  // serialize. Device charges are simulated-time, so this costs wall
  // clock, not modeled time; hits (the common case once warm) only probe
  // the hash table.
  Frame& f = frames_[frame];
  Status s;
  if (run == 1) {
    s = RetryTransient(smgrs_->retry_policy(), [&] {
      return smgr->ReadBlock(id.file.relfile, id.block, f.data.get());
    });
  } else {
    read_scratch_.resize(static_cast<size_t>(run) * kPageSize);
    s = RetryTransient(smgrs_->retry_policy(), [&] {
      return smgr->ReadBlocks(id.file.relfile, id.block, run,
                              read_scratch_.data());
    });
  }
  if (!s.ok()) {
    free_frames_.push_back(frame);
    for (size_t e : extras) free_frames_.push_back(e);
    return s;
  }
  if (run > 1) {
    std::memcpy(f.data.get(), read_scratch_.data(), kPageSize);
  }
  for (uint32_t k = 0; k < run; ++k) {
    uint8_t* img = (run == 1) ? f.data.get()
                              : read_scratch_.data() +
                                    static_cast<size_t>(k) * kPageSize;
    SlottedPage page(img);
    if (page.IsInitialized() && !page.VerifyChecksum()) {
      free_frames_.push_back(frame);
      for (size_t e : extras) free_frames_.push_back(e);
      return Status::Corruption(
          "page checksum mismatch: relfile " +
          std::to_string(id.file.relfile) + " block " +
          std::to_string(id.block + k));
    }
  }
  f.id = id;
  f.pin_count = 1;
  f.pin_owner = std::this_thread::get_id();
  f.pin_shared = false;
  f.dirty.store(false, std::memory_order_release);
  f.in_use = true;
  f.on_lru = false;
  f.prefetched = false;
  page_table_[id] = frame;
  // Extra frames go straight onto the LRU, unpinned: prefetched pages are
  // always evictable and never pin the pool down.
  for (uint32_t k = 1; k < run; ++k) {
    size_t ef = extras[k - 1];
    Frame& e = frames_[ef];
    std::memcpy(e.data.get(),
                read_scratch_.data() + static_cast<size_t>(k) * kPageSize,
                kPageSize);
    PageId pid{id.file, id.block + k};
    e.id = pid;
    e.pin_count = 0;
    e.pin_shared = false;
    e.dirty.store(false, std::memory_order_release);
    e.in_use = true;
    e.prefetched = true;
    page_table_[pid] = ef;
    lru_.push_back(ef);
    e.lru_pos = std::prev(lru_.end());
    e.on_lru = true;
    ++stats_.readahead_pages;
    StatInc(c_readahead_pages_);
  }
  return PageHandle(this, frame, id);
}

Result<BlockNumber> BufferPool::NumBlocks(RelFileId file) {
  WaitLockGuard lock(mu_, wp_latch_);
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber n, smgr->NumBlocks(file.relfile));
  auto it = pending_size_.find(file);
  if (it != pending_size_.end() && it->second > n) return it->second;
  return n;
}

Result<PageHandle> BufferPool::NewPage(RelFileId file,
                                       BlockNumber* block_out) {
  TraceSpan span(registry_, h_new_page_ns_, "bufpool.new_page");
  WaitLockGuard lock(mu_, wp_latch_);
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, smgr->NumBlocks(file.relfile));
  auto pit = pending_size_.find(file);
  if (pit != pending_size_.end() && pit->second > nblocks) {
    nblocks = pit->second;
  }
  PGLO_ASSIGN_OR_RETURN(size_t frame, FindVictimLocked());
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  // The block is materialized in the storage manager lazily at write-back
  // (WriteBack fills any gap below it first); until then the pool's
  // pending-size overlay makes it visible through NumBlocks().
  PageId id{file, nblocks};
  f.id = id;
  f.pin_count = 1;
  f.pin_owner = std::this_thread::get_id();
  f.pin_shared = false;
  f.dirty.store(true, std::memory_order_release);
  f.in_use = true;
  f.on_lru = false;
  f.prefetched = false;
  page_table_[id] = frame;
  pending_size_[file] = nblocks + 1;
  *block_out = nblocks;
  return PageHandle(this, frame, id);
}

Status BufferPool::FlushSnapshotLocked(std::unique_lock<std::mutex>& lk,
                                       const RelFileId* only) {
  // Capture the dirty set on entry; pages dirtied afterwards belong to
  // whatever operation dirtied them. Entries are revalidated by page id
  // each round because writing (or waiting) below may let other backends
  // run: a captured frame that another backend's eviction cleaned or
  // recycled is simply done.
  std::vector<std::pair<size_t, PageId>> snap;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (!f.in_use || !f.dirty.load(std::memory_order_acquire)) continue;
    if (only != nullptr && !(f.id.file == *only)) continue;
    snap.emplace_back(i, f.id);
  }
  // Frames this flush has written back once are done even if another
  // backend re-dirties them afterwards (their bytes as of our snapshot are
  // on disk; the re-dirty belongs to that backend's own commit). Without
  // this, a flush behind K active writers chases their tail pages forever.
  std::unordered_set<size_t> written;
  while (true) {
    std::vector<size_t> valid;
    for (const auto& [idx, pid] : snap) {
      const Frame& f = frames_[idx];
      if (written.count(idx) != 0) continue;
      if (f.in_use && f.id == pid &&
          f.dirty.load(std::memory_order_acquire)) {
        valid.push_back(idx);
      }
    }
    if (valid.empty()) return Status::OK();
    // A file is ready when every dirty frame of it is writable right now
    // (write-back may touch more of the file than the captured frame: gap
    // materialization, run coalescing). Never skip a file outright — a
    // commit's force-to-disk must not silently drop a page another backend
    // happens to be pinning, or a crash would lose committed data.
    std::vector<size_t> ready;
    for (size_t idx : valid) {
      if (FileWritableLocked(frames_[idx].id.file)) ready.push_back(idx);
    }
    if (!ready.empty()) {
      // Sorted write-back: real systems cluster checkpoint writes; issuing
      // in page-table order would charge the disk model a seek per page.
      std::sort(ready.begin(), ready.end(), [this](size_t a, size_t b) {
        const PageId& x = frames_[a].id;
        const PageId& y = frames_[b].id;
        return std::tie(x.file.smgr_id, x.file.relfile, x.block) <
               std::tie(y.file.smgr_id, y.file.relfile, y.block);
      });
      PGLO_RETURN_IF_ERROR(WriteBackSortedLocked(ready));
      written.insert(ready.begin(), ready.end());
      continue;  // single-stream: everything was ready, next round is empty
    }
    // Every remaining frame belongs to a file with a dirty page pinned by
    // another backend. Wait for a pin to drop, then re-evaluate. This
    // cannot self-deadlock: the flush holds no pins of its own by the time
    // it waits (LO operations release handles before commit flushes).
    ++stats_.flush_pin_waits;
    {
      WaitGuard wait(wp_pin_wait_);
      cv_.wait(lk);
    }
  }
}

Status BufferPool::FlushAll() {
  // Every file with writes not yet covered by a sync, captured together
  // with its write count AFTER the flush loop — so the targets include the
  // pages this flush just wrote back.
  std::vector<std::pair<RelFileId, uint64_t>> targets;
  uint64_t epoch_target = 0;
  {
    WaitLock(mu_, wp_latch_);
    std::unique_lock<std::mutex> lk(mu_, std::adopt_lock);
    PGLO_RETURN_IF_ERROR(FlushSnapshotLocked(lk, nullptr));
    if (sync_fd_ >= 0) {
      epoch_target = write_epoch_.load(std::memory_order_acquire);
    } else {
      for (const auto& [file, written] : file_writes_) {
        auto it = file_synced_.find(file);
        if (it == file_synced_.end() || it->second < written) {
          targets.emplace_back(file, written);
        }
      }
    }
  }
  if (sync_fd_ >= 0) {
    // One syncfs covers every database file on the filesystem — heap
    // files, indexes, catalogs, however many backends dirtied them — in a
    // single journal commit. Outside mu_, with epoch piggybacking, exactly
    // like the commit log's fdatasync protocol.
    if (epoch_target == 0) return Status::OK();
    WaitLockGuard sync_lock(data_sync_mu_, wp_data_sync_);
    if (synced_epoch_ >= epoch_target) return Status::OK();
    uint64_t upto = write_epoch_.load(std::memory_order_acquire);
    int rc;
    {
      // The syscall itself is a blocking episode worth attributing: the
      // leader of a commit batch spends its force stall here.
      WaitGuard sync_wait(wp_data_sync_, /*count_acquire=*/false);
      rc = ::syncfs(sync_fd_);
    }
    if (rc != 0) {
      return Status::IOError("syncfs failed");
    }
    synced_epoch_ = upto;
    return Status::OK();
  }
  // Durability pass, deliberately outside mu_: fdatasync is the longest
  // blocking syscall in a commit, and other backends must keep faulting
  // and dirtying pages while it runs. Per-file piggyback: if a concurrent
  // flush already synced past our recorded write count, skip the syscall.
  for (const auto& [file, written] : targets) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = file_synced_.find(file);
      if (it != file_synced_.end() && it->second >= written) continue;
    }
    PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
    Status s = smgr->Sync(file.relfile);
    std::lock_guard<std::mutex> lk(mu_);
    if (!s.ok()) {
      // A file dropped while we flushed has nothing left to force; its
      // bookkeeping is gone from file_writes_. Anything still tracked
      // failed a real sync and must fail the commit.
      if (file_writes_.count(file) != 0) return s;
      continue;
    }
    uint64_t& synced = file_synced_[file];
    if (synced < written) synced = written;
  }
  return Status::OK();
}

Status BufferPool::FlushFile(RelFileId file) {
  WaitLock(mu_, wp_latch_);
  std::unique_lock<std::mutex> lk(mu_, std::adopt_lock);
  return FlushSnapshotLocked(lk, &file);
}

void BufferPool::DiscardFile(RelFileId file, bool discard_dirty) {
  // Outside mu_: the FSM may call back into the pool (persist/validate), so
  // the pool never touches it while holding its own latch.
  if (discard_dirty) fsm_->Forget(file);
  WaitLockGuard lock(mu_, wp_latch_);
  if (discard_dirty) pending_size_.erase(file);
  readahead_.erase(file);
  if (discard_dirty) {
    // Dropping the file retires its durability debt: a later FlushAll must
    // not try to fdatasync a possibly-unlinked file. (With discard_dirty
    // false the file stays live and keeps any pending sync debt.)
    file_writes_.erase(file);
    file_synced_.erase(file);
  }
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use || !(f.id.file == file)) continue;
    if (f.dirty.load(std::memory_order_acquire) && !discard_dirty) continue;
    PGLO_CHECK(f.pin_count == 0);
    if (f.on_lru) {
      lru_.erase(f.lru_pos);
      f.on_lru = false;
    }
    page_table_.erase(f.id);
    f.in_use = false;
    f.dirty.store(false, std::memory_order_release);
    f.prefetched = false;
    free_frames_.push_back(i);
  }
}

void BufferPool::CrashDiscardAll() {
  // The in-memory map is volatile state; reload from the sidecar on reopen.
  fsm_->ForgetAll();
  WaitLockGuard lock(mu_, wp_latch_);
  pending_size_.clear();
  readahead_.clear();
  file_writes_.clear();
  file_synced_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use) continue;
    PGLO_CHECK(f.pin_count == 0);
    if (f.on_lru) {
      lru_.erase(f.lru_pos);
      f.on_lru = false;
    }
    page_table_.erase(f.id);
    f.in_use = false;
    f.dirty.store(false, std::memory_order_release);
    f.prefetched = false;
    free_frames_.push_back(i);
  }
}

}  // namespace pglo
