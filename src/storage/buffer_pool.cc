#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/logging.h"

namespace pglo {

uint8_t* PageHandle::data() {
  PGLO_CHECK(valid());
  return pool_->frames_[frame_].data.get();
}

const uint8_t* PageHandle::data() const {
  PGLO_CHECK(valid());
  return pool_->frames_[frame_].data.get();
}

void PageHandle::MarkDirty() {
  PGLO_CHECK(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(SmgrRegistry* smgrs, size_t num_frames)
    : smgrs_(smgrs), frames_(num_frames) {
  PGLO_CHECK(num_frames >= 2);
  free_frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(num_frames - 1 - i);
  }
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    PGLO_LOG(Error) << "buffer pool final flush failed: " << s.ToString();
  }
}

void BufferPool::Touch(size_t frame) {
  Frame& f = frames_[frame];
  if (f.on_lru) {
    lru_.erase(f.lru_pos);
    f.on_lru = false;
  }
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  PGLO_CHECK(f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_back(frame);
    f.lru_pos = std::prev(lru_.end());
    f.on_lru = true;
  }
}

Status BufferPool::WriteRaw(Frame& frame) {
  TraceSpan span(registry_, h_writeback_ns_, "bufpool.writeback");
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(frame.id.file));
  // Stamp a checksum into slotted pages on their way to stable storage so
  // that media corruption is detected on the next read. Non-slotted
  // formats (B-tree nodes, meta pages) carry their own magic.
  SlottedPage page(frame.data.get());
  if (page.IsInitialized()) {
    page.UpdateChecksum();
  }
  PGLO_RETURN_IF_ERROR(
      smgr->WriteBlock(frame.id.file.relfile, frame.id.block,
                       frame.data.get()));
  frame.dirty = false;
  ++stats_.writebacks;
  StatInc(c_writebacks_);
  return Status::OK();
}

Status BufferPool::EnsureMaterialized(RelFileId file, BlockNumber upto) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber cur, smgr->NumBlocks(file.relfile));
  for (BlockNumber b = cur; b < upto; ++b) {
    auto it = page_table_.find(PageId{file, b});
    if (it == page_table_.end()) {
      return Status::Internal(
          "appended block evicted out of order: relfile " +
          std::to_string(file.relfile) + " block " + std::to_string(b));
    }
    PGLO_RETURN_IF_ERROR(WriteRaw(frames_[it->second]));
  }
  return Status::OK();
}

Status BufferPool::WriteBack(Frame& frame) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(frame.id.file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber cur,
                        smgr->NumBlocks(frame.id.file.relfile));
  if (frame.id.block > cur) {
    // Lazily-appended file tail: flush the intervening appended blocks
    // first so the storage manager never sees a hole.
    PGLO_RETURN_IF_ERROR(EnsureMaterialized(frame.id.file, frame.id.block));
  }
  if (!frame.dirty) return Status::OK();  // materialization covered it
  return WriteRaw(frame);
}

Result<size_t> BufferPool::FindVictim() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer pool frames are pinned");
  }
  size_t frame = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[frame];
  f.on_lru = false;
  ++stats_.evictions;
  StatInc(c_evictions_);
  if (f.dirty) {
    // Background-writer behaviour: when eviction hits a dirty page, clean
    // a batch of cold dirty pages in sorted block order, so that a mixed
    // read/append workload pays a few clustered write passes instead of a
    // head seek per evicted page.
    PGLO_RETURN_IF_ERROR(WriteBackBatch(frame));
  }
  page_table_.erase(f.id);
  f.in_use = false;
  return frame;
}

Status BufferPool::WriteBackBatch(size_t victim_frame) {
  constexpr size_t kBatch = 64;
  std::vector<size_t> batch;
  batch.push_back(victim_frame);
  for (auto it = lru_.begin(); it != lru_.end() && batch.size() < kBatch;
       ++it) {
    if (frames_[*it].dirty) batch.push_back(*it);
  }
  std::sort(batch.begin(), batch.end(), [this](size_t a, size_t b) {
    const PageId& x = frames_[a].id;
    const PageId& y = frames_[b].id;
    return std::tie(x.file.smgr_id, x.file.relfile, x.block) <
           std::tie(y.file.smgr_id, y.file.relfile, y.block);
  });
  for (size_t frame : batch) {
    PGLO_RETURN_IF_ERROR(WriteBack(frames_[frame]));
  }
  return Status::OK();
}

Result<PageHandle> BufferPool::GetPage(PageId id) {
  // Spans even the hit path: the page-access CPU charge advances the clock
  // here, and the profiler should bill it to the pool, not the caller.
  TraceSpan span(registry_, h_get_ns_, "bufpool.get");
  if (cpu_ != nullptr && access_instructions_ > 0) {
    cpu_->ChargeInstructions(access_instructions_);
  }
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    StatInc(c_hits_);
    size_t frame = it->second;
    Frame& f = frames_[frame];
    Touch(frame);
    ++f.pin_count;
    return PageHandle(this, frame, id);
  }
  ++stats_.misses;
  StatInc(c_misses_);
  PGLO_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  Frame& f = frames_[frame];
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(id.file));
  Status s = smgr->ReadBlock(id.file.relfile, id.block, f.data.get());
  if (!s.ok()) {
    free_frames_.push_back(frame);
    return s;
  }
  {
    SlottedPage page(f.data.get());
    if (page.IsInitialized() && !page.VerifyChecksum()) {
      free_frames_.push_back(frame);
      return Status::Corruption(
          "page checksum mismatch: relfile " +
          std::to_string(id.file.relfile) + " block " +
          std::to_string(id.block));
    }
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_use = true;
  f.on_lru = false;
  page_table_[id] = frame;
  return PageHandle(this, frame, id);
}

Result<BlockNumber> BufferPool::NumBlocks(RelFileId file) {
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr, SmgrFor(file));
  PGLO_ASSIGN_OR_RETURN(BlockNumber n, smgr->NumBlocks(file.relfile));
  auto it = pending_size_.find(file);
  if (it != pending_size_.end() && it->second > n) return it->second;
  return n;
}

Result<PageHandle> BufferPool::NewPage(RelFileId file,
                                       BlockNumber* block_out) {
  TraceSpan span(registry_, h_new_page_ns_, "bufpool.new_page");
  PGLO_ASSIGN_OR_RETURN(BlockNumber nblocks, NumBlocks(file));
  PGLO_ASSIGN_OR_RETURN(size_t frame, FindVictim());
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  // The block is materialized in the storage manager lazily at write-back
  // (WriteBack fills any gap below it first); until then the pool's
  // pending-size overlay makes it visible through NumBlocks().
  PageId id{file, nblocks};
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_use = true;
  f.on_lru = false;
  page_table_[id] = frame;
  pending_size_[file] = nblocks + 1;
  *block_out = nblocks;
  return PageHandle(this, frame, id);
}

Status BufferPool::FlushAll() {
  // Sorted write-back: real systems cluster checkpoint writes; issuing in
  // page-table order would charge the disk model a seek per page.
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].dirty) dirty.push_back(i);
  }
  std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
    const PageId& x = frames_[a].id;
    const PageId& y = frames_[b].id;
    return std::tie(x.file.smgr_id, x.file.relfile, x.block) <
           std::tie(y.file.smgr_id, y.file.relfile, y.block);
  });
  for (size_t i : dirty) {
    PGLO_RETURN_IF_ERROR(WriteBack(frames_[i]));
  }
  return Status::OK();
}

Status BufferPool::FlushFile(RelFileId file) {
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].dirty && frames_[i].id.file == file) {
      dirty.push_back(i);
    }
  }
  std::sort(dirty.begin(), dirty.end(), [this](size_t a, size_t b) {
    return frames_[a].id.block < frames_[b].id.block;
  });
  for (size_t i : dirty) {
    PGLO_RETURN_IF_ERROR(WriteBack(frames_[i]));
  }
  return Status::OK();
}

void BufferPool::DiscardFile(RelFileId file, bool discard_dirty) {
  if (discard_dirty) pending_size_.erase(file);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use || !(f.id.file == file)) continue;
    if (f.dirty && !discard_dirty) continue;
    PGLO_CHECK(f.pin_count == 0);
    if (f.on_lru) {
      lru_.erase(f.lru_pos);
      f.on_lru = false;
    }
    page_table_.erase(f.id);
    f.in_use = false;
    f.dirty = false;
    free_frames_.push_back(i);
  }
}

void BufferPool::CrashDiscardAll() {
  pending_size_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use) continue;
    PGLO_CHECK(f.pin_count == 0);
    if (f.on_lru) {
      lru_.erase(f.lru_pos);
      f.on_lru = false;
    }
    page_table_.erase(f.id);
    f.in_use = false;
    f.dirty = false;
    free_frames_.push_back(i);
  }
}

}  // namespace pglo
