#ifndef PGLO_STORAGE_FREE_SPACE_MAP_H_
#define PGLO_STORAGE_FREE_SPACE_MAP_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/stats.h"
#include "storage/page.h"

namespace pglo {

class BufferPool;

/// Summary of one FSM validation/repair pass (see CheckAgainstStorage).
struct FsmCheckReport {
  uint64_t entries_checked = 0;
  uint64_t entries_repaired = 0;  ///< bucket lowered to the on-disk truth
  uint64_t entries_dropped = 0;   ///< entry had no backing free space at all
  std::vector<std::string> notes;

  bool clean() const { return entries_repaired == 0 && entries_dropped == 0; }
};

/// Persistent free-space map (DESIGN.md §15).
///
/// Tracks, per relation file, which pages have usable free space so that
/// HeapClass inserts can reuse interior holes opened by Vacuum instead of
/// only probing the hint page and appending. Two kinds of entries:
///
///   * byte buckets — free bytes on a heap page, quantized to 32-byte
///     buckets (bucket b promises >= b*32 free bytes, so a stale entry can
///     only over-promise, never hide space);
///   * whole-free pages — B-tree nodes emptied by page merging, kept on a
///     per-file free list for reuse by the next node allocation.
///
/// The in-memory tables are authoritative during normal operation. The map
/// is *advisory*: every consumer re-verifies the page before using it
/// (inserts attempt AddItem and discard the entry on failure; the B-tree
/// checks the free-page stamp before recycling a node), so a wrong entry
/// costs one wasted probe, never correctness.
///
/// Persistence piggybacks on the no-overwrite discipline's crash story
/// without joining it: the map is serialized into a small sidecar relation
/// (CRC-guarded record pages, written through the buffer pool so the fault
/// injector sees every tick) at Vacuum end and at clean shutdown. After a
/// crash the loaded entries are validated against the actual pages and
/// repaired — drift is a repairable warning, not corruption.
///
/// The FSM learns about a relation only from Vacuum (RecordFreeSpace);
/// ordinary inserts merely refresh entries that already exist. A freshly
/// loaded database that never vacuums therefore keeps the map empty, the
/// sidecar file is never created, and every storage-level benchmark stays
/// bit-identical.
///
/// Thread safety: all public methods are internally synchronized by one
/// mutex. Persist/Load call into the buffer pool while holding it, so the
/// pool must never call the FSM while holding its own latch (see
/// BufferPool::DiscardFile).
class FreeSpaceMap {
 public:
  /// Free bytes are quantized to this granule; bucket 255 caps the range.
  static constexpr uint32_t kBucketBytes = 32;

  explicit FreeSpaceMap(BufferPool* pool) : pool_(pool) {}
  FreeSpaceMap(const FreeSpaceMap&) = delete;
  FreeSpaceMap& operator=(const FreeSpaceMap&) = delete;

  /// Installs the sidecar relation the map persists into. Never set =
  /// purely in-memory (unit tests, ephemeral databases).
  /// Configuration-time only.
  void SetBackingFile(RelFileId file) {
    backing_ = file;
    has_backing_ = true;
  }

  /// Binds heap.fsm.hits / heap.fsm.misses. Null = unbound.
  /// Configuration-time only.
  void BindStats(StatsRegistry* registry) {
    if (registry == nullptr) return;
    c_hits_ = registry->counter("heap.fsm.hits");
    c_misses_ = registry->counter("heap.fsm.misses");
  }

  // --- byte-bucket entries (heap pages) ---------------------------------

  /// Records `free_bytes` available on the page (Vacuum's registration
  /// path). A bucket of zero erases the entry.
  void RecordFreeSpace(RelFileId file, BlockNumber block, uint32_t free_bytes);

  /// Refreshes an entry the map already tracks; pages the map has never
  /// heard of are ignored (keeps fresh-load workloads out of the map).
  void UpdateIfTracked(RelFileId file, BlockNumber block, uint32_t free_bytes);

  /// Returns a page promising at least `needed` free bytes, preferring the
  /// lowest block number (sequential locality), or NotFound. Does not
  /// remove the entry — callers verify and call RemoveEntry on staleness.
  Result<BlockNumber> FindPage(RelFileId file, uint32_t needed);

  void RemoveEntry(RelFileId file, BlockNumber block);

  // --- whole-free pages (B-tree nodes) ----------------------------------

  /// Adds `block` to the file's free-page list. The caller must have
  /// stamped the page image with StampFreePage first.
  void RecordFreePage(RelFileId file, BlockNumber block);

  /// Pops the lowest free page of `file`, or NotFound.
  Result<BlockNumber> TakeFreePage(RelFileId file);

  /// Writes the free-page stamp over a page image (kPageSize bytes). The
  /// stamp is what lets validation tell a recycled-then-reused node from a
  /// genuinely free one after a crash.
  static void StampFreePage(uint8_t* page);
  static bool IsFreePage(const uint8_t* page);

  // --- hit/miss accounting (heap insert path) ---------------------------

  void NoteHit() { StatInc(c_hits_); }
  void NoteMiss() { StatInc(c_misses_); }

  // --- lifecycle --------------------------------------------------------

  /// Drops all entries for `file` (relation dropped).
  void Forget(RelFileId file);

  /// Drops every entry (simulated crash losing volatile state).
  void ForgetAll();

  /// Serializes the map into the sidecar relation via the buffer pool.
  /// No-op without a backing file, or when the map is empty and the
  /// sidecar was never created. Does not flush — callers persist at points
  /// that already flush (Vacuum end, Close).
  Status Persist();

  /// Loads the sidecar relation if it exists. Pages failing magic/CRC are
  /// skipped silently — their entries are simply absent (advisory data).
  Status Load();

  /// Validates every entry against the actual page images: byte buckets
  /// are lowered (or dropped) to the page's true free space, free-page
  /// entries without the stamp are dropped. `fix` = apply the repairs;
  /// false = report only (pglo_fsck --check-fsm).
  Result<FsmCheckReport> CheckAgainstStorage(bool fix);

  /// Total number of entries (both kinds), for tests and fsck reporting.
  size_t EntryCount() const;

 private:
  struct FileEntries {
    std::map<BlockNumber, uint8_t> buckets;  ///< block -> free-space bucket
    std::set<BlockNumber> free_pages;        ///< emptied B-tree nodes
    bool empty() const { return buckets.empty() && free_pages.empty(); }
  };

  static uint8_t BucketFor(uint32_t free_bytes) {
    uint32_t b = free_bytes / kBucketBytes;
    return b > 255 ? 255 : static_cast<uint8_t>(b);
  }

  Status PersistLocked();

  BufferPool* pool_;
  RelFileId backing_;
  bool has_backing_ = false;
  Counter* c_hits_ = nullptr;
  Counter* c_misses_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<RelFileId, FileEntries, RelFileIdHash> files_;
};

}  // namespace pglo

#endif  // PGLO_STORAGE_FREE_SPACE_MAP_H_
