#ifndef PGLO_STORAGE_REL_LATCH_H_
#define PGLO_STORAGE_REL_LATCH_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/wait_event.h"
#include "storage/page.h"

namespace pglo {

/// Per-relation exclusive latches for multi-backend access (DESIGN.md §13).
///
/// The access methods (heap, B-tree) were written single-stream: an
/// operation holds several page pins at once and assumes nobody else
/// mutates the relation under it. Rather than rewrite them with page-level
/// latch crabbing, each public access-method operation takes the relation's
/// exclusive latch for its (short) duration — coarse, but exactly the
/// granularity the 1993 backend got from its lock table, and invisible to
/// single-stream runs (uncontended acquisition is a couple of atomic ops
/// and never advances the simulated clock).
///
/// Latches are re-entrant for their owning thread because operations
/// compose (Update = Delete + Insert; InsertIfAbsent wraps Insert; LO
/// writes walk index and heap through nested calls). They are NOT ordered:
/// a thread may hold several relation latches (heap + its index), always
/// acquired in the same access-method-imposed order (index after heap,
/// catalog outermost), so cycles cannot form between two LO operations on
/// the same object kind. See DESIGN.md §13 for the ordering argument.
class RelLatchRegistry {
 public:
  RelLatchRegistry() = default;
  RelLatchRegistry(const RelLatchRegistry&) = delete;
  RelLatchRegistry& operator=(const RelLatchRegistry&) = delete;

  /// Wait instrumentation for contended latch acquisitions, keyed by the
  /// caller-supplied access-method kind (latch.rel.heap / .btree / .other).
  /// Null or unbound = uninstrumented. Configuration-time only.
  void BindWaits(const WaitStatsTable* waits) { waits_ = waits; }

  void Lock(RelFileId file, WaitEvent kind = WaitEvent::kLatchRelOther) {
    std::unique_lock<std::mutex> lk(mu_);
    LatchState& st = *StateFor(file);
    std::thread::id self = std::this_thread::get_id();
    if (st.depth > 0 && st.owner == self) {
      ++st.depth;  // re-entrant: not a new acquisition for the stats
      return;
    }
    const WaitPoint* wp = waits_ != nullptr ? waits_->point(kind) : nullptr;
    if (wp != nullptr) StatInc(wp->acquires);
    if (st.depth > 0) {
      WaitGuard guard(wp, /*count_acquire=*/false);
      while (st.depth > 0) {
        cv_.wait(lk);
      }
    }
    st.owner = self;
    st.depth = 1;
  }

  void Unlock(RelFileId file) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = latches_.find(file);
    if (it == latches_.end()) return;  // tolerate unlock of never-locked
    LatchState& st = *it->second;
    if (st.depth == 0) return;
    if (--st.depth == 0) {
      cv_.notify_all();
    }
  }

 private:
  struct LatchState {
    std::thread::id owner;
    uint32_t depth = 0;
  };

  LatchState* StateFor(RelFileId file) {
    auto it = latches_.find(file);
    if (it != latches_.end()) return it->second.get();
    auto st = std::make_unique<LatchState>();
    LatchState* raw = st.get();
    latches_.emplace(file, std::move(st));
    return raw;
  }

  std::mutex mu_;
  // One condition variable for the whole registry: wakeups are rare (only
  // contended relations) and backend counts are small, so the thundering
  // herd costs less than a cv per latch.
  std::condition_variable cv_;
  std::unordered_map<RelFileId, std::unique_ptr<LatchState>, RelFileIdHash>
      latches_;
  const WaitStatsTable* waits_ = nullptr;
};

/// RAII scope for one relation latch. Null registry = no-op, so access
/// methods built on a bare BufferPool in unit tests run unchanged.
class RelLatchGuard {
 public:
  RelLatchGuard(RelLatchRegistry* registry, RelFileId file,
                WaitEvent kind = WaitEvent::kLatchRelOther)
      : registry_(registry), file_(file) {
    if (registry_ != nullptr) registry_->Lock(file_, kind);
  }
  ~RelLatchGuard() {
    if (registry_ != nullptr) registry_->Unlock(file_);
  }
  RelLatchGuard(const RelLatchGuard&) = delete;
  RelLatchGuard& operator=(const RelLatchGuard&) = delete;

 private:
  RelLatchRegistry* registry_;
  RelFileId file_;
};

}  // namespace pglo

#endif  // PGLO_STORAGE_REL_LATCH_H_
