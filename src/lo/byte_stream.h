#ifndef PGLO_LO_BYTE_STREAM_H_
#define PGLO_LO_BYTE_STREAM_H_

#include <functional>

#include "lo/large_object.h"
#include "ufs/ufs.h"

namespace pglo {

/// Seek origins for the file-oriented interfaces (§4).
enum class Whence { kSet, kCur, kEnd };

/// §4's portability argument made concrete: "A function can be written and
/// debugged using files, and then moved into the database where it can
/// manage large objects without being rewritten."
///
/// ByteStream is the positional byte surface such a function needs —
/// reads, writes, a size, and truncation. Both a UNIX file and a large
/// object satisfy it, so the same function body runs against either. The
/// write operations default to NotSupported so read-only sources can
/// implement just the read half.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  virtual Result<size_t> ReadAt(uint64_t off, size_t n, uint8_t* buf) = 0;
  virtual Result<uint64_t> Size() = 0;
  virtual Status WriteAt(uint64_t off, Slice data) {
    (void)off;
    (void)data;
    return Status::NotSupported("byte stream is read-only");
  }
  virtual Status Truncate(uint64_t size) {
    (void)size;
    return Status::NotSupported("byte stream is read-only");
  }
};

/// A UNIX file as a ByteStream (the "written and debugged using files"
/// half).
class UfsByteStream : public ByteStream {
 public:
  UfsByteStream(UnixFileSystem* fs, uint32_t inode)
      : fs_(fs), inode_(inode) {}

  Result<size_t> ReadAt(uint64_t off, size_t n, uint8_t* buf) override {
    return fs_->ReadAt(inode_, off, n, buf);
  }
  Result<uint64_t> Size() override { return fs_->FileSize(inode_); }
  Status WriteAt(uint64_t off, Slice data) override {
    return fs_->WriteAt(inode_, off, data);
  }
  Status Truncate(uint64_t size) override {
    return fs_->Truncate(inode_, size);
  }

 private:
  UnixFileSystem* fs_;
  uint32_t inode_;
};

/// A large object as a ByteStream (the "moved into the database" half).
class LoByteStream : public ByteStream {
 public:
  LoByteStream(LargeObject* lo, Transaction* txn) : lo_(lo), txn_(txn) {}

  Result<size_t> ReadAt(uint64_t off, size_t n, uint8_t* buf) override {
    return lo_->Read(txn_, off, n, buf);
  }
  Result<uint64_t> Size() override { return lo_->Size(txn_); }
  Status WriteAt(uint64_t off, Slice data) override {
    return lo_->Write(txn_, off, data);
  }
  Status Truncate(uint64_t size) override { return lo_->Truncate(txn_, size); }

 private:
  LargeObject* lo_;
  Transaction* txn_;
};

/// The seek-pointer half of a file-oriented handle: "the application can
/// then open the large object, seek to any byte location, and read any
/// number of bytes" (§4). Both LoDescriptor and Inversion's open-file
/// handle are a SeekableCursor over their respective ByteStream; the
/// position bookkeeping and Whence arithmetic live here once.
class SeekableCursor {
 public:
  explicit SeekableCursor(ByteStream* stream) : stream_(stream) {}

  /// Reads up to `n` bytes at the cursor, advancing it.
  Result<size_t> Read(size_t n, uint8_t* buf);
  /// Convenience overload returning an owned buffer (shorter at EOF).
  Result<Bytes> Read(size_t n);

  /// Writes at the cursor, advancing it.
  Status Write(Slice data);

  /// Moves the cursor; returns the new absolute position. Seeking past EOF
  /// is legal (a later write leaves a hole).
  Result<uint64_t> Seek(int64_t off, Whence whence);
  uint64_t Tell() const { return pos_; }

  Result<uint64_t> Size() { return stream_->Size(); }
  Status Truncate(uint64_t size) { return stream_->Truncate(size); }

 private:
  ByteStream* stream_;
  uint64_t pos_ = 0;
};

/// Streams `stream` through `fn` in bounded pieces (the §3 requirement
/// that functions "request small chunks for individual operations" rather
/// than materializing gigabytes). Returns the number of bytes visited.
Result<uint64_t> ForEachPiece(
    ByteStream* stream, size_t piece_size,
    const std::function<Status(uint64_t off, Slice piece)>& fn);

}  // namespace pglo

#endif  // PGLO_LO_BYTE_STREAM_H_
