#ifndef PGLO_LO_BYTE_STREAM_H_
#define PGLO_LO_BYTE_STREAM_H_

#include <functional>

#include "lo/large_object.h"
#include "ufs/ufs.h"

namespace pglo {

/// §4's portability argument made concrete: "A function can be written and
/// debugged using files, and then moved into the database where it can
/// manage large objects without being rewritten."
///
/// ByteStream is the minimal read-only surface such a function needs —
/// positional reads and a size. Both a UNIX file and a large object
/// satisfy it, so the same function body runs against either.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  virtual Result<size_t> ReadAt(uint64_t off, size_t n, uint8_t* buf) = 0;
  virtual Result<uint64_t> Size() = 0;
};

/// A UNIX file as a ByteStream (the "written and debugged using files"
/// half).
class UfsByteStream : public ByteStream {
 public:
  UfsByteStream(UnixFileSystem* fs, uint32_t inode)
      : fs_(fs), inode_(inode) {}

  Result<size_t> ReadAt(uint64_t off, size_t n, uint8_t* buf) override {
    return fs_->ReadAt(inode_, off, n, buf);
  }
  Result<uint64_t> Size() override { return fs_->FileSize(inode_); }

 private:
  UnixFileSystem* fs_;
  uint32_t inode_;
};

/// A large object as a ByteStream (the "moved into the database" half).
class LoByteStream : public ByteStream {
 public:
  LoByteStream(LargeObject* lo, Transaction* txn) : lo_(lo), txn_(txn) {}

  Result<size_t> ReadAt(uint64_t off, size_t n, uint8_t* buf) override {
    return lo_->Read(txn_, off, n, buf);
  }
  Result<uint64_t> Size() override { return lo_->Size(txn_); }

 private:
  LargeObject* lo_;
  Transaction* txn_;
};

/// Streams `stream` through `fn` in bounded pieces (the §3 requirement
/// that functions "request small chunks for individual operations" rather
/// than materializing gigabytes). Returns the number of bytes visited.
Result<uint64_t> ForEachPiece(
    ByteStream* stream, size_t piece_size,
    const std::function<Status(uint64_t off, Slice piece)>& fn);

}  // namespace pglo

#endif  // PGLO_LO_BYTE_STREAM_H_
