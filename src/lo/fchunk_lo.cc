#include "lo/fchunk_lo.h"

#include <cstring>

#include "common/logging.h"

namespace pglo {

namespace {
// Chunk record: seqno u32 | flags u8 | raw_len u32 | payload.
constexpr size_t kChunkHeader = 9;
constexpr uint8_t kFlagCompressed = 0x1;
}  // namespace

Result<FChunkLo::Files> FChunkLo::CreateStorage(const DbContext& ctx,
                                                Transaction* txn,
                                                uint8_t smgr) {
  Files files;
  files.data = RelFileId{smgr, ctx.oids->Allocate()};
  files.index = RelFileId{smgr, ctx.oids->Allocate()};
  PGLO_RETURN_IF_ERROR(HeapClass::Create(ctx.pool, files.data));
  PGLO_RETURN_IF_ERROR(Btree::Create(ctx.pool, files.index));
  // Initial size record (size 0).
  FChunkLo lo(ctx, files, nullptr, 8000);
  PGLO_RETURN_IF_ERROR(lo.StoreSize(txn, 0));
  return files;
}

FChunkLo::FChunkLo(const DbContext& ctx, Files files, const Compressor* codec,
                   uint32_t chunk_size, const std::string& stats_prefix)
    : ctx_(ctx),
      files_(files),
      heap_(ctx.pool, files.data),
      index_(ctx.pool, files.index),
      codec_(codec),
      chunk_size_(chunk_size) {
  PGLO_CHECK(chunk_size_ > 0 &&
             chunk_size_ + kChunkHeader <= HeapClass::MaxPayload());
  if (ctx_.stats != nullptr) {
    c_reads_ = ctx_.stats->counter(stats_prefix + ".reads");
    c_writes_ = ctx_.stats->counter(stats_prefix + ".writes");
    c_bytes_read_ = ctx_.stats->counter(stats_prefix + ".bytes_read");
    c_bytes_written_ = ctx_.stats->counter(stats_prefix + ".bytes_written");
    c_compress_ns_ = ctx_.stats->counter(stats_prefix + ".codec_compress_ns");
    c_decompress_ns_ =
        ctx_.stats->counter(stats_prefix + ".codec_decompress_ns");
    c_pages_relocated_ =
        ctx_.stats->counter(stats_prefix + ".pages_relocated");
    c_pages_reclaimed_ =
        ctx_.stats->counter(stats_prefix + ".pages_reclaimed");
    h_read_ = ctx_.stats->histogram(stats_prefix + ".read_ns");
    h_write_ = ctx_.stats->histogram(stats_prefix + ".write_ns");
    span_read_name_ = stats_prefix + ".read";
    span_write_name_ = stats_prefix + ".write";
    index_.BindStats(ctx_.stats);
  }
}

Bytes FChunkLo::EncodeChunk(uint32_t seqno, bool compressed, uint32_t raw_len,
                            Slice payload) {
  Bytes image;
  image.reserve(kChunkHeader + payload.size());
  PutFixed32(&image, seqno);
  image.push_back(compressed ? kFlagCompressed : 0);
  PutFixed32(&image, raw_len);
  image.insert(image.end(), payload.data(), payload.data() + payload.size());
  return image;
}

Result<FChunkLo::ChunkRecord> FChunkLo::DecodeChunk(Slice image) {
  if (image.size() < kChunkHeader) {
    return Status::Corruption("chunk record too short");
  }
  ChunkRecord rec;
  rec.seqno = DecodeFixed32(image.data());
  rec.compressed = (image[4] & kFlagCompressed) != 0;
  rec.raw_len = DecodeFixed32(image.data() + 5);
  rec.payload = image.Sub(kChunkHeader, image.size());
  return rec;
}

Result<std::optional<Tid>> FChunkLo::FindChunk(Transaction* txn,
                                               uint32_t seqno) {
  PGLO_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                        index_.Lookup(seqno));
  for (uint64_t packed : candidates) {
    Tid tid = Btree::UnpackTid(packed);
    Result<Bytes> image = heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;
      return image.status();
    }
    Result<ChunkRecord> rec = DecodeChunk(Slice(image.value()));
    if (!rec.ok() || rec.value().seqno != seqno) continue;  // stale entry
    return std::optional<Tid>(tid);
  }
  return std::optional<Tid>();
}

Result<bool> FChunkLo::LoadChunk(Transaction* txn, uint32_t seqno,
                                 Bytes* out) {
  if (cached_valid_ && cached_seqno_ == seqno) {
    *out = cached_chunk_;
    return true;
  }
  PGLO_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                        index_.Lookup(seqno));
  for (uint64_t packed : candidates) {
    Tid tid = Btree::UnpackTid(packed);
    Result<Bytes> image = heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;  // other version
      return image.status();
    }
    Result<ChunkRecord> decoded = DecodeChunk(Slice(image.value()));
    if (!decoded.ok() || decoded.value().seqno != seqno) {
      // Stale index entry: the slot it points at was physically recycled
      // (an in-place self-update retired the old copy). Skip it.
      continue;
    }
    const ChunkRecord& rec = decoded.value();
    out->clear();
    if (rec.compressed) {
      if (codec_ == nullptr) {
        return Status::Corruption("compressed chunk but no codec configured");
      }
      out->reserve(rec.raw_len);
      PGLO_RETURN_IF_ERROR(
          codec_->Decompress(rec.payload, rec.raw_len, out));
      if (ctx_.cpu != nullptr) {
        uint64_t before =
            ctx_.clock != nullptr ? ctx_.clock->NowNanos() : 0;
        ctx_.cpu->ChargePerByte(codec_->decompress_instr_per_byte(),
                                rec.raw_len);
        if (ctx_.clock != nullptr) {
          StatAdd(c_decompress_ns_, ctx_.clock->NowNanos() - before);
        }
      }
    } else {
      out->assign(rec.payload.data(),
                  rec.payload.data() + rec.payload.size());
    }
    cached_seqno_ = seqno;
    cached_chunk_ = *out;
    cached_valid_ = true;
    return true;
  }
  return false;
}

Status FChunkLo::StoreChunk(Transaction* txn, uint32_t seqno, Slice raw) {
  if (cached_valid_ && cached_seqno_ == seqno) {
    cached_chunk_ = raw.ToBytes();  // keep the cache coherent with writes
  }
  bool compressed = false;
  Bytes compressed_buf;
  Slice payload = raw;
  if (codec_ != nullptr) {
    PGLO_RETURN_IF_ERROR(codec_->Compress(raw, &compressed_buf));
    if (ctx_.cpu != nullptr) {
      uint64_t before = ctx_.clock != nullptr ? ctx_.clock->NowNanos() : 0;
      ctx_.cpu->ChargePerByte(codec_->compress_instr_per_byte(), raw.size());
      if (ctx_.clock != nullptr) {
        StatAdd(c_compress_ns_, ctx_.clock->NowNanos() - before);
      }
    }
    if (compressed_buf.size() < raw.size()) {
      compressed = true;
      payload = Slice(compressed_buf);
    }
  }
  Bytes image = EncodeChunk(seqno, compressed,
                            static_cast<uint32_t>(raw.size()), payload);

  PGLO_ASSIGN_OR_RETURN(std::optional<Tid> existing, FindChunk(txn, seqno));
  Tid new_tid;
  if (existing.has_value()) {
    PGLO_ASSIGN_OR_RETURN(new_tid, heap_.Update(txn, *existing, Slice(image)));
  } else {
    PGLO_ASSIGN_OR_RETURN(new_tid, heap_.Insert(txn, Slice(image)));
  }
  return index_.InsertIfAbsent(seqno, new_tid);
}

Result<uint64_t> FChunkLo::LoadSize(Transaction* txn) {
  if (size_valid_) return cached_size_;
  PGLO_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                        index_.Lookup(kSizeSeqno));
  for (uint64_t packed : candidates) {
    Tid tid = Btree::UnpackTid(packed);
    Result<Bytes> image = heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;
      return image.status();
    }
    Result<ChunkRecord> rec = DecodeChunk(Slice(image.value()));
    if (!rec.ok() || rec.value().seqno != kSizeSeqno ||
        rec.value().payload.size() < 8) {
      continue;  // stale index entry pointing at a recycled slot
    }
    cached_size_ = DecodeFixed64(rec.value().payload.data());
    size_valid_ = true;
    return cached_size_;
  }
  return Status::NotFound("large object has no size record");
}

Status FChunkLo::StoreSize(Transaction* txn, uint64_t size) {
  cached_size_ = size;
  size_valid_ = true;
  Bytes value(8);
  EncodeFixed64(value.data(), size);
  Bytes image = EncodeChunk(kSizeSeqno, false, 8, Slice(value));
  PGLO_ASSIGN_OR_RETURN(std::optional<Tid> existing,
                        FindChunk(txn, kSizeSeqno));
  Tid new_tid;
  if (existing.has_value()) {
    PGLO_ASSIGN_OR_RETURN(new_tid, heap_.Update(txn, *existing, Slice(image)));
  } else {
    PGLO_ASSIGN_OR_RETURN(new_tid, heap_.Insert(txn, Slice(image)));
  }
  return index_.InsertIfAbsent(kSizeSeqno, new_tid);
}

Result<uint64_t> FChunkLo::Size(Transaction* txn) { return LoadSize(txn); }

Result<size_t> FChunkLo::Read(Transaction* txn, uint64_t off, size_t n,
                              uint8_t* buf) {
  TraceSpan span(ctx_.stats, h_read_, span_read_name_);
  StatInc(c_reads_);
  PGLO_ASSIGN_OR_RETURN(uint64_t size, LoadSize(txn));
  if (off >= size) return static_cast<size_t>(0);
  n = static_cast<size_t>(std::min<uint64_t>(n, size - off));
  size_t done = 0;
  Bytes chunk;
  while (done < n) {
    uint64_t pos = off + done;
    uint32_t seqno = static_cast<uint32_t>(pos / chunk_size_);
    uint32_t in_chunk = static_cast<uint32_t>(pos % chunk_size_);
    size_t take = std::min<size_t>(n - done, chunk_size_ - in_chunk);
    PGLO_ASSIGN_OR_RETURN(bool found, LoadChunk(txn, seqno, &chunk));
    if (!found) {
      std::memset(buf + done, 0, take);  // hole in a sparse object
    } else {
      if (chunk.size() < in_chunk + take) {
        // Short final chunk within a hole-y region: zero-fill the tail.
        size_t have = chunk.size() > in_chunk ? chunk.size() - in_chunk : 0;
        size_t copy = std::min(take, have);
        if (copy > 0) std::memcpy(buf + done, chunk.data() + in_chunk, copy);
        std::memset(buf + done + copy, 0, take - copy);
      } else {
        std::memcpy(buf + done, chunk.data() + in_chunk, take);
      }
    }
    done += take;
  }
  StatAdd(c_bytes_read_, done);
  return done;
}

Status FChunkLo::Write(Transaction* txn, uint64_t off, Slice data) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  TraceSpan span(ctx_.stats, h_write_, span_write_name_);
  StatInc(c_writes_);
  StatAdd(c_bytes_written_, data.size());
  PGLO_ASSIGN_OR_RETURN(uint64_t size, LoadSize(txn));
  size_t done = 0;
  Bytes chunk;
  while (done < data.size()) {
    uint64_t pos = off + done;
    uint32_t seqno = static_cast<uint32_t>(pos / chunk_size_);
    uint32_t in_chunk = static_cast<uint32_t>(pos % chunk_size_);
    size_t take = std::min<size_t>(data.size() - done, chunk_size_ - in_chunk);
    if (in_chunk == 0 && take == chunk_size_) {
      // Full-chunk overwrite: no fetch needed.
      PGLO_RETURN_IF_ERROR(
          StoreChunk(txn, seqno, data.Sub(done, chunk_size_)));
    } else {
      PGLO_ASSIGN_OR_RETURN(bool found, LoadChunk(txn, seqno, &chunk));
      if (!found) chunk.clear();
      if (chunk.size() < in_chunk + take) {
        chunk.resize(in_chunk + take, 0);
      }
      std::memcpy(chunk.data() + in_chunk, data.data() + done, take);
      // The final chunk of the object may be partial; do not pad it past
      // the object's new end.
      PGLO_RETURN_IF_ERROR(StoreChunk(txn, seqno, Slice(chunk)));
    }
    done += take;
  }
  if (off + data.size() > size) {
    PGLO_RETURN_IF_ERROR(StoreSize(txn, off + data.size()));
  }
  return Status::OK();
}

Result<uint64_t> FChunkLo::Append(Transaction* txn, Slice data) {
  PGLO_ASSIGN_OR_RETURN(uint64_t size, LoadSize(txn));
  PGLO_RETURN_IF_ERROR(Write(txn, size, data));
  return size;
}

Status FChunkLo::TrimBefore(Transaction* txn, uint64_t offset) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  cached_valid_ = false;
  uint32_t first_live = static_cast<uint32_t>(offset / chunk_size_);
  if (first_live == 0) return Status::OK();
  // Collect the visible version of every chunk below the boundary, then
  // delete — deleting under a live iterator is safe for the heap but the
  // two-phase shape keeps this symmetric with Compact.
  std::vector<Tid> doomed;
  uint64_t last_key = ~0ull;
  PGLO_ASSIGN_OR_RETURN(Btree::Iterator it, index_.SeekFirst());
  while (it.valid() && it.key() < first_live) {
    uint64_t key = it.key();
    Tid tid = it.tid();
    PGLO_RETURN_IF_ERROR(it.Next());
    if (key == last_key) continue;
    Result<Bytes> image = heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;  // invisible version
      return image.status();
    }
    Result<ChunkRecord> rec = DecodeChunk(Slice(image.value()));
    if (!rec.ok() || rec.value().seqno != key) continue;  // stale entry
    doomed.push_back(tid);
    last_key = key;
  }
  for (Tid tid : doomed) {
    PGLO_RETURN_IF_ERROR(heap_.Delete(txn, tid));
  }
  return Status::OK();
}

Status FChunkLo::Truncate(Transaction* txn, uint64_t size) {
  cached_valid_ = false;  // chunks past the new end disappear
  PGLO_ASSIGN_OR_RETURN(uint64_t old_size, LoadSize(txn));
  if (size < old_size) {
    uint32_t first_dead =
        static_cast<uint32_t>((size + chunk_size_ - 1) / chunk_size_);
    uint32_t last =
        static_cast<uint32_t>((old_size + chunk_size_ - 1) / chunk_size_);
    for (uint32_t seqno = first_dead; seqno < last; ++seqno) {
      PGLO_ASSIGN_OR_RETURN(std::optional<Tid> tid, FindChunk(txn, seqno));
      if (tid.has_value()) {
        PGLO_RETURN_IF_ERROR(heap_.Delete(txn, *tid));
      }
    }
    // Trim the chunk straddling the new end, so re-extending the object
    // later reads zeros (not stale bytes) beyond `size`.
    if (size % chunk_size_ != 0) {
      uint32_t seqno = static_cast<uint32_t>(size / chunk_size_);
      Bytes chunk;
      PGLO_ASSIGN_OR_RETURN(bool found, LoadChunk(txn, seqno, &chunk));
      if (found && chunk.size() > size % chunk_size_) {
        chunk.resize(static_cast<size_t>(size % chunk_size_));
        PGLO_RETURN_IF_ERROR(StoreChunk(txn, seqno, Slice(chunk)));
      }
    }
  }
  return StoreSize(txn, size);
}

Result<uint64_t> FChunkLo::Vacuum(const CommitLog& clog,
                                  CommitTime horizon) {
  cached_valid_ = false;
  size_valid_ = false;
  uint64_t pages_emptied = 0;
  PGLO_ASSIGN_OR_RETURN(uint64_t removed,
                        heap_.Vacuum(clog, horizon, &pages_emptied));
  // Index sweep: drop entries whose heap slot no longer holds a matching
  // chunk — the version was vacuumed away just now, or the slot was
  // recycled by an in-place self-update. Entries pointing at versions that
  // survived (still reachable by some snapshot) are kept. Collect first,
  // then delete: Delete restructures pages under a live iterator.
  std::vector<std::pair<uint64_t, uint64_t>> stale;
  PGLO_ASSIGN_OR_RETURN(Btree::Iterator it, index_.SeekFirst());
  while (it.valid()) {
    Result<std::pair<TupleHeader, Bytes>> any = heap_.GetAnyVersion(it.tid());
    bool dead;
    if (any.ok()) {
      Result<ChunkRecord> rec = DecodeChunk(Slice(any.value().second));
      dead = !rec.ok() || rec.value().seqno != it.key();
    } else if (any.status().IsNotFound()) {
      dead = true;
    } else {
      return any.status();
    }
    if (dead) stale.push_back({it.key(), it.value()});
    PGLO_RETURN_IF_ERROR(it.Next());
  }
  for (const auto& [key, value] : stale) {
    Status s = index_.Delete(key, value);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  PGLO_ASSIGN_OR_RETURN(uint64_t merged, index_.MergeUnderfull());
  StatAdd(c_pages_reclaimed_, pages_emptied + merged);
  return removed;
}

Result<uint64_t> FChunkLo::Compact(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (txn->read_only()) {
    return Status::PermissionDenied("time-travel transactions are read-only");
  }
  // Pass 1: resolve the visible version of every chunk, in seqno order.
  // (Resolve before mutating — relocation inserts new index entries, which
  // would shift B-tree pages under a live iterator.)
  std::vector<std::pair<uint32_t, Tid>> live;
  uint64_t last_key = ~0ull;
  PGLO_ASSIGN_OR_RETURN(Btree::Iterator it, index_.SeekFirst());
  while (it.valid()) {
    uint64_t key = it.key();
    Tid tid = it.tid();
    PGLO_RETURN_IF_ERROR(it.Next());
    if (key == last_key) continue;  // this chunk is already resolved
    Result<Bytes> image = heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;  // invisible version
      return image.status();
    }
    Result<ChunkRecord> rec = DecodeChunk(Slice(image.value()));
    if (!rec.ok() || rec.value().seqno != key) continue;  // stale entry
    live.push_back({static_cast<uint32_t>(key), tid});
    last_key = key;
  }
  // Pass 2: no-overwrite relocation. Each live chunk is rewritten at the
  // end of the heap (InsertAppend skips the free-space map on purpose:
  // scattering relocated chunks into interior holes would defeat the
  // point), the old copy is MVCC-deleted so snapshot readers still see it
  // until Vacuum, and the index gains an entry for the new address.
  uint64_t moved = 0;
  BlockNumber prev_block = kInvalidBlock;
  for (const auto& [seqno, tid] : live) {
    Result<Bytes> image = heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;
      return image.status();
    }
    PGLO_ASSIGN_OR_RETURN(Tid new_tid,
                          heap_.InsertAppend(txn, Slice(image.value())));
    PGLO_RETURN_IF_ERROR(heap_.Delete(txn, tid));
    PGLO_RETURN_IF_ERROR(index_.InsertIfAbsent(seqno, new_tid));
    ++moved;
    if (new_tid.block != prev_block) {
      StatInc(c_pages_relocated_);
      prev_block = new_tid.block;
    }
  }
  return moved;
}

Status FChunkLo::Destroy(Transaction* txn) {
  (void)txn;
  ctx_.pool->DiscardFile(files_.data, /*discard_dirty=*/true);
  ctx_.pool->DiscardFile(files_.index, /*discard_dirty=*/true);
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr,
                        ctx_.smgrs->Get(files_.data.smgr_id));
  PGLO_RETURN_IF_ERROR(smgr->DropFile(files_.data.relfile));
  return smgr->DropFile(files_.index.relfile);
}

Result<LargeObject::StorageFootprint> FChunkLo::Footprint() {
  StorageFootprint fp;
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr,
                        ctx_.smgrs->Get(files_.data.smgr_id));
  PGLO_ASSIGN_OR_RETURN(fp.data_bytes, smgr->StorageBytes(files_.data.relfile));
  PGLO_ASSIGN_OR_RETURN(fp.index_bytes,
                        smgr->StorageBytes(files_.index.relfile));
  return fp;
}

}  // namespace pglo
