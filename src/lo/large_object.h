#ifndef PGLO_LO_LARGE_OBJECT_H_
#define PGLO_LO_LARGE_OBJECT_H_

#include <string>

#include "common/result.h"
#include "storage/page.h"
#include "txn/transaction.h"

namespace pglo {

/// The four large ADT implementations of §6. "We expect there to be several
/// implementations of large ADTs offering a variety of services at varying
/// performance."
enum class StorageKind : uint8_t {
  kUserFile = 0,      ///< §6.1 u-file: user-placed file, no protection
  kPostgresFile = 1,  ///< §6.2 p-file: DBMS-allocated file
  kFChunk = 2,        ///< §6.3 fixed-length 8K chunks in a POSTGRES class
  kVSegment = 3,      ///< §6.4 variable-length compressed segments
};

std::string_view StorageKindToString(StorageKind kind);
Result<StorageKind> StorageKindFromString(std::string_view name);

/// Creation parameters for a large object (the `storage = ...` clause of
/// `create large type`, §4, plus tuning knobs).
struct LoSpec {
  StorageKind kind = StorageKind::kFChunk;
  /// Storage manager slot holding the object's classes (f-chunk/v-segment
  /// only; the file implementations live in the simulated UNIX FS).
  uint8_t smgr = 0;
  /// Conversion-routine pair ("" or "none" = store uncompressed).
  std::string codec;
  /// Raw bytes per fixed chunk. 8000 fills an 8 KB page after tuple and
  /// page headers (§6.3).
  uint32_t chunk_size = 8000;
  /// Upper bound on one v-segment's raw size; a Write larger than this is
  /// split into several segments.
  uint32_t max_segment = 65536;
  /// For kUserFile: the user-chosen file name ("the user has complete
  /// control over object placement", §6.1). Ignored otherwise.
  std::string ufile_path;
};

/// Byte-addressed accessor over one large object — the common substrate
/// beneath the file-oriented descriptor API (§4). Implementations are
/// stateless with respect to position; LoDescriptor adds the seek pointer.
class LargeObject {
 public:
  virtual ~LargeObject() = default;

  /// Reads up to `n` bytes at `off` into `buf`; returns bytes read (short
  /// only at end of object).
  virtual Result<size_t> Read(Transaction* txn, uint64_t off, size_t n,
                              uint8_t* buf) = 0;

  /// Writes `data` at `off`, extending the object as needed; gaps read as
  /// zeros.
  virtual Status Write(Transaction* txn, uint64_t off, Slice data) = 0;

  /// Current size in bytes (as visible to `txn`'s snapshot).
  virtual Result<uint64_t> Size(Transaction* txn) = 0;

  /// Shrinks (or grows) the object.
  virtual Status Truncate(Transaction* txn, uint64_t size) = 0;

  /// Removes all backing storage (called by LoManager::Unlink / vacuum).
  virtual Status Destroy(Transaction* txn) = 0;

  /// Reclaims space held by versions deleted at or before `horizon` (and
  /// by aborted transactions). Reclaimed history is no longer reachable
  /// by time travel; pass horizon = 0 to reclaim only aborted garbage.
  /// Returns the number of versions removed. File-backed kinds have no
  /// versions and return 0.
  virtual Result<uint64_t> Vacuum(const CommitLog& clog,
                                  CommitTime horizon) = 0;

  /// Online defragmentation: rewrites the live version of every
  /// chunk/segment, in key order, into fresh pages appended at the end of
  /// the relation. Relocation obeys the no-overwrite discipline — the old
  /// copies are MVCC-deleted under `txn`, so concurrent snapshot readers
  /// keep working, and Vacuum later reclaims the vacated interior pages.
  /// Returns the number of versions relocated. File-backed kinds have no
  /// pages to defragment and return 0.
  virtual Result<uint64_t> Compact(Transaction* txn) {
    (void)txn;
    return static_cast<uint64_t>(0);
  }

  /// Total bytes of underlying storage, split by component; Figure 1's
  /// rows come from here.
  struct StorageFootprint {
    uint64_t data_bytes = 0;   ///< chunk/segment payload storage
    uint64_t index_bytes = 0;  ///< B-tree index storage
    uint64_t map_bytes = 0;    ///< v-segment segment-index ("2-level map")
    uint64_t total() const { return data_bytes + index_bytes + map_bytes; }
  };
  virtual Result<StorageFootprint> Footprint() = 0;

  virtual StorageKind kind() const = 0;
};

}  // namespace pglo

#endif  // PGLO_LO_LARGE_OBJECT_H_
