#include "lo/lo_manager.h"

#include "common/logging.h"
#include "lo/fchunk_lo.h"
#include "lo/ufile_lo.h"
#include "lo/vsegment_lo.h"
#include "storage/free_space_map.h"

namespace pglo {

/// Relation file of the LO catalog class (a reserved, well-known Oid).
static constexpr Oid kLoCatalogRelfile = 10;
/// The catalog always lives on the magnetic-disk storage manager.
static constexpr uint8_t kCatalogSmgr = kSmgrDisk;

std::string_view StorageKindToString(StorageKind kind) {
  switch (kind) {
    case StorageKind::kUserFile:
      return "u-file";
    case StorageKind::kPostgresFile:
      return "p-file";
    case StorageKind::kFChunk:
      return "f-chunk";
    case StorageKind::kVSegment:
      return "v-segment";
  }
  return "?";
}

Result<StorageKind> StorageKindFromString(std::string_view name) {
  if (name == "u-file" || name == "ufile") return StorageKind::kUserFile;
  if (name == "p-file" || name == "pfile") return StorageKind::kPostgresFile;
  if (name == "f-chunk" || name == "fchunk") return StorageKind::kFChunk;
  if (name == "v-segment" || name == "vsegment") {
    return StorageKind::kVSegment;
  }
  return Status::InvalidArgument("unknown storage kind: " + std::string(name));
}

// ---------------------------------------------------------------------------
// LoDescriptor

Status LoDescriptor::Write(Slice data) {
  if (!writable_) {
    return Status::PermissionDenied("descriptor opened read-only");
  }
  return cursor_.Write(data);
}

Status LoDescriptor::Truncate(uint64_t size) {
  if (!writable_) {
    return Status::PermissionDenied("descriptor opened read-only");
  }
  return cursor_.Truncate(size);
}

// ---------------------------------------------------------------------------
// LoManager

LoManager::LoManager(const DbContext& ctx)
    : ctx_(ctx), catalog_(ctx.pool, RelFileId{kCatalogSmgr, kLoCatalogRelfile}) {}

Status LoManager::Bootstrap(Transaction* txn) {
  (void)txn;
  return HeapClass::Create(ctx_.pool,
                           RelFileId{kCatalogSmgr, kLoCatalogRelfile});
}

Bytes LoManager::EncodeEntry(const CatalogEntry& e) {
  Bytes out;
  PutFixed32(&out, e.oid);
  out.push_back(static_cast<uint8_t>(e.spec.kind));
  out.push_back(e.spec.smgr);
  out.push_back(e.temp ? 1 : 0);
  PutFixed32(&out, e.spec.chunk_size);
  PutFixed32(&out, e.spec.max_segment);
  PutLengthPrefixed(&out, Slice(e.spec.codec));
  PutLengthPrefixed(&out, Slice(e.spec.ufile_path));
  // Wire order is fixed: data, index, seg_heap, seg_index, inner_data,
  // inner_index (the former files[0..5] layout).
  PutFixed32(&out, e.files.data);
  PutFixed32(&out, e.files.index);
  PutFixed32(&out, e.files.seg_heap);
  PutFixed32(&out, e.files.seg_index);
  PutFixed32(&out, e.files.inner_data);
  PutFixed32(&out, e.files.inner_index);
  return out;
}

Result<LoManager::CatalogEntry> LoManager::DecodeEntry(Slice image) {
  CatalogEntry e;
  ByteReader reader(image);
  uint32_t oid;
  if (!reader.GetFixed32(&oid)) return Status::Corruption("bad LO entry");
  e.oid = oid;
  if (reader.remaining() < 3) return Status::Corruption("bad LO entry");
  e.spec.kind = static_cast<StorageKind>(image[4]);
  e.spec.smgr = image[5];
  e.temp = image[6] != 0;
  // Re-read from offset 7 using a fresh reader.
  ByteReader rest(image.Sub(7, image.size()));
  uint32_t chunk_size, max_segment;
  Slice codec, ufile;
  if (!rest.GetFixed32(&chunk_size) || !rest.GetFixed32(&max_segment) ||
      !rest.GetLengthPrefixed(&codec) || !rest.GetLengthPrefixed(&ufile)) {
    return Status::Corruption("bad LO entry");
  }
  e.spec.chunk_size = chunk_size;
  e.spec.max_segment = max_segment;
  e.spec.codec = codec.ToString();
  e.spec.ufile_path = ufile.ToString();
  for (Oid* f : {&e.files.data, &e.files.index, &e.files.seg_heap,
                 &e.files.seg_index, &e.files.inner_data,
                 &e.files.inner_index}) {
    uint32_t v;
    if (!rest.GetFixed32(&v)) return Status::Corruption("bad LO entry");
    *f = v;
  }
  return e;
}

Result<std::pair<LoManager::CatalogEntry, Tid>> LoManager::FindEntry(
    Transaction* txn, Oid oid) {
  HeapScan scan(&catalog_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(CatalogEntry entry, DecodeEntry(Slice(payload)));
    if (entry.oid == oid) return std::make_pair(entry, tid);
  }
  return Status::NotFound("no large object with oid " + std::to_string(oid));
}

Result<std::unique_ptr<LargeObject>> LoManager::InstantiateEntry(
    const CatalogEntry& entry) {
  PGLO_ASSIGN_OR_RETURN(const Compressor* codec,
                        ctx_.codecs->Get(entry.spec.codec));
  switch (entry.spec.kind) {
    case StorageKind::kUserFile:
    case StorageKind::kPostgresFile:
      return std::unique_ptr<LargeObject>(
          new UfileLo(ctx_, entry.spec.ufile_path, entry.spec.kind));
    case StorageKind::kFChunk: {
      FChunkLo::Files files{RelFileId{entry.spec.smgr, entry.files.data},
                            RelFileId{entry.spec.smgr, entry.files.index}};
      return std::unique_ptr<LargeObject>(
          new FChunkLo(ctx_, files, codec, entry.spec.chunk_size));
    }
    case StorageKind::kVSegment: {
      VSegmentLo::Files files;
      files.seg_heap = RelFileId{entry.spec.smgr, entry.files.seg_heap};
      files.seg_index = RelFileId{entry.spec.smgr, entry.files.seg_index};
      files.inner.data = RelFileId{entry.spec.smgr, entry.files.inner_data};
      files.inner.index = RelFileId{entry.spec.smgr, entry.files.inner_index};
      return std::unique_ptr<LargeObject>(
          new VSegmentLo(ctx_, files, codec, entry.spec.max_segment));
    }
  }
  return Status::Internal("unreachable storage kind");
}

Result<Oid> LoManager::CreateInternal(Transaction* txn, const LoSpec& spec,
                                      bool temp) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  // Validate the codec name up front.
  PGLO_RETURN_IF_ERROR(ctx_.codecs->Get(spec.codec).status());
  CatalogEntry entry;
  entry.oid = ctx_.oids->Allocate();
  entry.spec = spec;
  entry.temp = temp;

  switch (spec.kind) {
    case StorageKind::kUserFile: {
      if (spec.ufile_path.empty()) {
        return Status::InvalidArgument(
            "u-file large object requires ufile_path");
      }
      PGLO_RETURN_IF_ERROR(UfileLo::CreateStorage(ctx_, spec.ufile_path));
      break;
    }
    case StorageKind::kPostgresFile: {
      entry.spec.ufile_path = NewFileName(entry.oid);
      PGLO_RETURN_IF_ERROR(
          UfileLo::CreateStorage(ctx_, entry.spec.ufile_path));
      break;
    }
    case StorageKind::kFChunk: {
      PGLO_ASSIGN_OR_RETURN(FChunkLo::Files files,
                            FChunkLo::CreateStorage(ctx_, txn, spec.smgr));
      entry.files.data = files.data.relfile;
      entry.files.index = files.index.relfile;
      break;
    }
    case StorageKind::kVSegment: {
      PGLO_ASSIGN_OR_RETURN(VSegmentLo::Files files,
                            VSegmentLo::CreateStorage(ctx_, txn, spec.smgr));
      entry.files.seg_heap = files.seg_heap.relfile;
      entry.files.seg_index = files.seg_index.relfile;
      entry.files.inner_data = files.inner.data.relfile;
      entry.files.inner_index = files.inner.index.relfile;
      break;
    }
  }

  Bytes image = EncodeEntry(entry);
  PGLO_RETURN_IF_ERROR(catalog_.Insert(txn, Slice(image)).status());

  // If the creating transaction aborts, the catalog row never becomes
  // visible; reclaim the physical storage. Temporaries are additionally
  // unlinked after a *successful* commit (§5).
  Oid oid = entry.oid;
  txn->OnFinish([this, entry, temp, oid](bool committed) {
    if (!committed) {
      ScheduleDestroy(entry);
    } else if (temp) {
      std::lock_guard<std::mutex> lock(mu_);
      unlink_queue_.push_back(oid);
    }
  });
  return entry.oid;
}

Result<Oid> LoManager::Create(Transaction* txn, const LoSpec& spec) {
  return CreateInternal(txn, spec, /*temp=*/false);
}

Result<Oid> LoManager::CreateTemp(Transaction* txn, const LoSpec& spec) {
  return CreateInternal(txn, spec, /*temp=*/true);
}

Status LoManager::Promote(Transaction* txn, Oid oid) {
  PGLO_ASSIGN_OR_RETURN(auto found, FindEntry(txn, oid));
  CatalogEntry entry = found.first;
  if (!entry.temp) return Status::OK();
  entry.temp = false;
  Bytes image = EncodeEntry(entry);
  PGLO_RETURN_IF_ERROR(
      catalog_.Update(txn, found.second, Slice(image)).status());
  // Only a committed promotion rescues the object from the GC sweep (the
  // promotion must happen inside the transaction that created the temp,
  // before that transaction commits).
  txn->OnFinish([this, oid](bool committed) {
    if (committed) {
      std::lock_guard<std::mutex> lock(mu_);
      promoted_.insert(oid);
    }
  });
  return Status::OK();
}

Status LoManager::Unlink(Transaction* txn, Oid oid, bool destroy_storage) {
  PGLO_ASSIGN_OR_RETURN(auto found, FindEntry(txn, oid));
  PGLO_RETURN_IF_ERROR(catalog_.Delete(txn, found.second));
  if (destroy_storage) {
    CatalogEntry entry = found.first;
    txn->OnFinish([this, entry](bool committed) {
      if (committed) ScheduleDestroy(entry);
    });
  }
  return Status::OK();
}

void LoManager::ScheduleDestroy(const CatalogEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  destroy_queue_.push_back(entry);
}

Result<bool> LoManager::Exists(Transaction* txn, Oid oid) {
  Result<std::pair<CatalogEntry, Tid>> found = FindEntry(txn, oid);
  if (found.ok()) return true;
  if (found.status().IsNotFound()) return false;
  return found.status();
}

Result<std::unique_ptr<LargeObject>> LoManager::Instantiate(Transaction* txn,
                                                            Oid oid) {
  PGLO_ASSIGN_OR_RETURN(auto found, FindEntry(txn, oid));
  return InstantiateEntry(found.first);
}

Result<LoDescriptor*> LoManager::Open(Transaction* txn, Oid oid,
                                      bool writable) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (writable && txn->read_only()) {
    return Status::PermissionDenied(
        "cannot open for write under a time-travel snapshot");
  }
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        Instantiate(txn, oid));
  auto desc = std::unique_ptr<LoDescriptor>(
      new LoDescriptor(this, txn, oid, std::move(lo), writable));
  LoDescriptor* raw = desc.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_[raw] = std::move(desc);
  }
  txn->OnFinish([this, raw](bool) {
    std::lock_guard<std::mutex> lock(mu_);
    open_.erase(raw);
  });
  return raw;
}

Status LoManager::Close(LoDescriptor* desc) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(desc);
  if (it == open_.end()) {
    return Status::InvalidArgument("descriptor not open");
  }
  // Mark closed so the transaction-end callback becomes a no-op.
  open_.erase(it);
  return Status::OK();
}

Status LoManager::CollectGarbage() {
  // 1. Unlink committed temporaries under a fresh system transaction.
  // Queues are swapped out under the lock, then drained without it: the
  // commit below fires OnFinish callbacks that re-enter ScheduleDestroy.
  std::vector<Oid> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(unlink_queue_);
  }
  if (!pending.empty()) {
    Transaction* txn = ctx_.txns->Begin();
    bool any = false;
    for (Oid oid : pending) {
      bool was_promoted;
      {
        std::lock_guard<std::mutex> lock(mu_);
        was_promoted = promoted_.erase(oid) > 0;
      }
      if (was_promoted) continue;  // kept by Promote()
      Status s = Unlink(txn, oid, /*destroy_storage=*/true);
      if (s.ok()) {
        any = true;
      } else if (!s.IsNotFound()) {
        Status abort_status = ctx_.txns->Abort(txn);
        (void)abort_status;
        return s;
      }
    }
    if (any) {
      PGLO_RETURN_IF_ERROR(ctx_.txns->Commit(txn).status());
    } else {
      PGLO_RETURN_IF_ERROR(ctx_.txns->Abort(txn));
    }
  }
  // 2. Physically reclaim queued storage.
  std::vector<CatalogEntry> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(destroy_queue_);
  }
  for (const CatalogEntry& entry : doomed) {
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          InstantiateEntry(entry));
    Status s = lo->Destroy(nullptr);
    if (!s.ok() && !s.IsNotFound()) {
      PGLO_LOG(Warning) << "LO destroy failed: " << s.ToString();
    }
  }
  return Status::OK();
}

Result<std::vector<LoManager::ObjectInfo>> LoManager::List(Transaction* txn) {
  std::vector<ObjectInfo> out;
  HeapScan scan(&catalog_, txn);
  Tid tid;
  Bytes payload;
  for (;;) {
    PGLO_ASSIGN_OR_RETURN(bool more, scan.Next(&tid, &payload));
    if (!more) break;
    PGLO_ASSIGN_OR_RETURN(CatalogEntry entry, DecodeEntry(Slice(payload)));
    ObjectInfo info;
    info.oid = entry.oid;
    info.spec = entry.spec;
    info.temp = entry.temp;
    info.files = entry.files;
    out.push_back(std::move(info));
  }
  return out;
}

Status LoManager::Migrate(Transaction* txn, Oid oid, uint8_t new_smgr) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  PGLO_RETURN_IF_ERROR(ctx_.smgrs->Get(new_smgr).status());
  PGLO_ASSIGN_OR_RETURN(auto found, FindEntry(txn, oid));
  CatalogEntry old_entry = found.first;
  if (old_entry.spec.kind == StorageKind::kUserFile ||
      old_entry.spec.kind == StorageKind::kPostgresFile) {
    return Status::NotSupported(
        "file-backed large objects live in the UNIX file system, not a "
        "storage manager");
  }
  if (old_entry.spec.smgr == new_smgr) return Status::OK();

  // Build fresh storage on the target device.
  CatalogEntry new_entry = old_entry;
  new_entry.spec.smgr = new_smgr;
  switch (old_entry.spec.kind) {
    case StorageKind::kFChunk: {
      PGLO_ASSIGN_OR_RETURN(FChunkLo::Files files,
                            FChunkLo::CreateStorage(ctx_, txn, new_smgr));
      new_entry.files.data = files.data.relfile;
      new_entry.files.index = files.index.relfile;
      break;
    }
    case StorageKind::kVSegment: {
      PGLO_ASSIGN_OR_RETURN(VSegmentLo::Files files,
                            VSegmentLo::CreateStorage(ctx_, txn, new_smgr));
      new_entry.files.seg_heap = files.seg_heap.relfile;
      new_entry.files.seg_index = files.seg_index.relfile;
      new_entry.files.inner_data = files.inner.data.relfile;
      new_entry.files.inner_index = files.inner.index.relfile;
      break;
    }
    default:
      return Status::Internal("unreachable storage kind");
  }

  // Stream the current contents across devices.
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> src,
                        InstantiateEntry(old_entry));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> dst,
                        InstantiateEntry(new_entry));
  PGLO_ASSIGN_OR_RETURN(uint64_t size, src->Size(txn));
  Bytes buf(256 * 1024);
  for (uint64_t off = 0; off < size;) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(buf.size(), size - off));
    PGLO_ASSIGN_OR_RETURN(size_t n, src->Read(txn, off, want, buf.data()));
    if (n == 0) return Status::Internal("short read during migration");
    PGLO_RETURN_IF_ERROR(dst->Write(txn, off, Slice(buf).Sub(0, n)));
    off += n;
  }

  // Swap the catalog row; reclaim the old storage once we commit, and the
  // new storage if we abort.
  Bytes image = EncodeEntry(new_entry);
  PGLO_RETURN_IF_ERROR(
      catalog_.Update(txn, found.second, Slice(image)).status());
  txn->OnFinish([this, old_entry, new_entry](bool committed) {
    ScheduleDestroy(committed ? old_entry : new_entry);
  });
  return Status::OK();
}

Result<uint64_t> LoManager::Vacuum(CommitTime horizon) {
  uint64_t removed = 0;
  // Collect the surviving entries under a read snapshot, then vacuum each
  // object's heaps (vacuum itself operates below the transaction layer).
  std::vector<CatalogEntry> entries;
  {
    Transaction* txn = ctx_.txns->Begin();
    HeapScan scan(&catalog_, txn);
    Tid tid;
    Bytes payload;
    for (;;) {
      Result<bool> more = scan.Next(&tid, &payload);
      if (!more.ok()) {
        Status abort_status = ctx_.txns->Abort(txn);
        (void)abort_status;
        return more.status();
      }
      if (!more.value()) break;
      PGLO_ASSIGN_OR_RETURN(CatalogEntry entry, DecodeEntry(Slice(payload)));
      entries.push_back(std::move(entry));
    }
    PGLO_RETURN_IF_ERROR(ctx_.txns->Abort(txn));
  }
  for (const CatalogEntry& entry : entries) {
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          InstantiateEntry(entry));
    PGLO_ASSIGN_OR_RETURN(uint64_t n, lo->Vacuum(*ctx_.clog, horizon));
    removed += n;
  }
  PGLO_ASSIGN_OR_RETURN(uint64_t catalog_removed,
                        catalog_.Vacuum(*ctx_.clog, horizon));
  removed += catalog_removed;
  // Vacuum refreshed the free-space map for every relation it touched;
  // persist it now so the flush below carries the sidecar to disk and a
  // crash cannot lose what this pass learned.
  PGLO_RETURN_IF_ERROR(ctx_.pool->fsm()->Persist());
  PGLO_RETURN_IF_ERROR(ctx_.pool->FlushAll());
  return removed;
}

Result<uint64_t> LoManager::Compact(Transaction* txn, Oid oid) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        Instantiate(txn, oid));
  return lo->Compact(txn);
}

Result<uint64_t> LoManager::CompactAll() {
  Transaction* txn = ctx_.txns->Begin();
  uint64_t moved = 0;
  Status failed = Status::OK();
  {
    HeapScan scan(&catalog_, txn);
    Tid tid;
    Bytes payload;
    for (;;) {
      Result<bool> more = scan.Next(&tid, &payload);
      if (!more.ok()) {
        failed = more.status();
        break;
      }
      if (!more.value()) break;
      Result<CatalogEntry> entry = DecodeEntry(Slice(payload));
      if (!entry.ok()) {
        failed = entry.status();
        break;
      }
      Result<std::unique_ptr<LargeObject>> lo = InstantiateEntry(entry.value());
      if (!lo.ok()) {
        failed = lo.status();
        break;
      }
      Result<uint64_t> n = lo.value()->Compact(txn);
      if (!n.ok()) {
        failed = n.status();
        break;
      }
      moved += n.value();
    }
  }
  if (!failed.ok()) {
    Status abort_status = ctx_.txns->Abort(txn);
    (void)abort_status;
    return failed;
  }
  PGLO_RETURN_IF_ERROR(ctx_.txns->Commit(txn).status());
  return moved;
}

Result<LargeObject::StorageFootprint> LoManager::Footprint(Transaction* txn,
                                                           Oid oid) {
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        Instantiate(txn, oid));
  return lo->Footprint();
}

}  // namespace pglo
