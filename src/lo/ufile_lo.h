#ifndef PGLO_LO_UFILE_LO_H_
#define PGLO_LO_UFILE_LO_H_

#include <string>

#include "db/context.h"
#include "lo/large_object.h"

namespace pglo {

/// §6.1/§6.2 — a large ADT backed by a plain file in the (simulated) UNIX
/// file system.
///
/// kUserFile: the user picked the file name and "has complete control over
/// object placement". kPostgresFile: the DBMS allocated the name via
/// newfilename(), so the file is updatable by a single user. Either way the
/// drawbacks the paper lists apply and are observable in this
/// implementation: writes bypass the transaction system (no atomicity, no
/// rollback — an aborted transaction's file writes stick), there is no
/// time travel, and access control is shared with the file system.
class UfileLo : public LargeObject {
 public:
  /// Creates the backing file. For kUserFile, `path` is the caller's
  /// name; for kPostgresFile pass the name minted by LoManager.
  static Status CreateStorage(const DbContext& ctx, const std::string& path);

  UfileLo(const DbContext& ctx, std::string path, StorageKind kind);

  Result<size_t> Read(Transaction* txn, uint64_t off, size_t n,
                      uint8_t* buf) override;
  Status Write(Transaction* txn, uint64_t off, Slice data) override;
  Result<uint64_t> Size(Transaction* txn) override;
  Status Truncate(Transaction* txn, uint64_t size) override;
  Status Destroy(Transaction* txn) override;
  Result<uint64_t> Vacuum(const CommitLog& clog, CommitTime horizon) override {
    (void)clog;
    (void)horizon;
    return static_cast<uint64_t>(0);  // files have no versions (§6.1)
  }
  Result<StorageFootprint> Footprint() override;
  StorageKind kind() const override { return kind_; }

  const std::string& path() const { return path_; }

 private:
  Result<uint32_t> Inode();

  DbContext ctx_;
  std::string path_;
  StorageKind kind_;
  uint32_t cached_inode_ = 0;
  bool inode_known_ = false;
  // Observability (null when ctx.stats is null); named lo.ufile.* or
  // lo.pfile.* depending on `kind`.
  Counter* c_reads_ = nullptr;
  Counter* c_writes_ = nullptr;
  Counter* c_bytes_read_ = nullptr;
  Counter* c_bytes_written_ = nullptr;
  Histogram* h_read_ = nullptr;
  Histogram* h_write_ = nullptr;
  std::string span_read_name_;
  std::string span_write_name_;
};

}  // namespace pglo

#endif  // PGLO_LO_UFILE_LO_H_
