#ifndef PGLO_LO_FCHUNK_LO_H_
#define PGLO_LO_FCHUNK_LO_H_

#include <optional>

#include "btree/btree.h"
#include "db/context.h"
#include "heap/heap_class.h"
#include "lo/large_object.h"

namespace pglo {

/// §6.3 — fixed-length data chunks.
///
/// "For each large object, P, a POSTGRES class is constructed of the form
///  create P (sequence-number = int4, data = byte[8000])."
/// The object is split into chunk_size-byte pieces stored as heap tuples;
/// a secondary B-tree maps sequence number → tuple address (that index is
/// the extra cost random access pays in Figure 2). Chunks are never
/// overwritten — a replace is an MVCC update — so transactions and time
/// travel come for free, and the conversion-routine pair (when configured)
/// compresses each chunk independently, giving just-in-time uncompression.
///
/// A chunk only shares a page with its neighbor when its post-compression
/// size is at most half a page — the mechanism behind Figure 1's "30 %
/// compression saves no space, 50 % halves it".
class FChunkLo : public LargeObject {
 public:
  /// Handles to the object's two relation files (recorded in the LO
  /// catalog by LoManager).
  struct Files {
    RelFileId data;
    RelFileId index;
  };

  /// Creates the backing heap + B-tree and writes the initial size record.
  static Result<Files> CreateStorage(const DbContext& ctx, Transaction* txn,
                                     uint8_t smgr);

  /// `stats_prefix` names this instance's observability counters (the
  /// v-segment inner byte store uses "lo.vseg.store" so its traffic is not
  /// conflated with first-class f-chunk objects).
  FChunkLo(const DbContext& ctx, Files files, const Compressor* codec,
           uint32_t chunk_size, const std::string& stats_prefix = "lo.fchunk");

  Result<size_t> Read(Transaction* txn, uint64_t off, size_t n,
                      uint8_t* buf) override;
  Status Write(Transaction* txn, uint64_t off, Slice data) override;
  Result<uint64_t> Size(Transaction* txn) override;
  Status Truncate(Transaction* txn, uint64_t size) override;
  Status Destroy(Transaction* txn) override;
  Result<uint64_t> Vacuum(const CommitLog& clog, CommitTime horizon) override;
  Result<uint64_t> Compact(Transaction* txn) override;
  Result<StorageFootprint> Footprint() override;
  StorageKind kind() const override { return StorageKind::kFChunk; }

  /// Appends `data` at the current end of object — used by v-segment,
  /// whose compressed segment bytes are "chunked into 8K blocks using the
  /// fixed-block storage scheme" (§6.4). Returns the byte offset the data
  /// landed at.
  Result<uint64_t> Append(Transaction* txn, Slice data);

  /// Deletes every chunk lying entirely below byte `offset` — used by
  /// v-segment compaction to retire byte-store regions that no live
  /// segment references anymore. The logical size is unchanged; after
  /// Vacuum reclaims the deleted versions, reads of the trimmed range
  /// return zeros (nobody issues them).
  Status TrimBefore(Transaction* txn, uint64_t offset);

  uint32_t chunk_size() const { return chunk_size_; }

 private:
  friend class FChunkTestPeer;

  // Sequence number reserved for the object-size record.
  static constexpr uint32_t kSizeSeqno = 0xffffffffu;

  struct ChunkRecord {
    uint32_t seqno;
    bool compressed;
    uint32_t raw_len;
    Slice payload;  // points into the fetched tuple image
  };

  static Bytes EncodeChunk(uint32_t seqno, bool compressed, uint32_t raw_len,
                           Slice payload);
  static Result<ChunkRecord> DecodeChunk(Slice image);

  /// Finds the visible version of chunk `seqno`; returns nullopt if the
  /// chunk does not exist (hole or beyond EOF).
  Result<std::optional<Tid>> FindChunk(Transaction* txn, uint32_t seqno);

  /// Fetches and decompresses chunk `seqno` into `out` (raw bytes).
  /// Returns false when the chunk does not exist.
  Result<bool> LoadChunk(Transaction* txn, uint32_t seqno, Bytes* out);

  /// Compresses (when profitable) and inserts/updates chunk `seqno`.
  Status StoreChunk(Transaction* txn, uint32_t seqno, Slice raw);

  Result<uint64_t> LoadSize(Transaction* txn);
  Status StoreSize(Transaction* txn, uint64_t size);

  DbContext ctx_;
  Files files_;
  HeapClass heap_;
  Btree index_;
  const Compressor* codec_;  // nullptr = no conversion routines
  uint32_t chunk_size_;
  // One-chunk read cache: a frame-sized access pattern touches the same
  // chunk repeatedly; without this, every 4 KB read would re-fetch and
  // re-decompress a full chunk ("just-in-time uncompression" needs to
  // uncompress each chunk once per pass, not once per byte range).
  // Valid only within one accessor instance (one transaction).
  uint32_t cached_seqno_ = 0xffffffffu;
  bool cached_valid_ = false;
  Bytes cached_chunk_;
  // Size record cache (same lifetime rules as the chunk cache).
  bool size_valid_ = false;
  uint64_t cached_size_ = 0;
  // Observability (null when ctx.stats is null).
  Counter* c_reads_ = nullptr;
  Counter* c_writes_ = nullptr;
  Counter* c_bytes_read_ = nullptr;
  Counter* c_bytes_written_ = nullptr;
  Counter* c_compress_ns_ = nullptr;
  Counter* c_decompress_ns_ = nullptr;
  Counter* c_pages_relocated_ = nullptr;
  Counter* c_pages_reclaimed_ = nullptr;
  Histogram* h_read_ = nullptr;
  Histogram* h_write_ = nullptr;
  std::string span_read_name_;
  std::string span_write_name_;
};

}  // namespace pglo

#endif  // PGLO_LO_FCHUNK_LO_H_
