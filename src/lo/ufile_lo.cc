#include "lo/ufile_lo.h"

namespace pglo {

Status UfileLo::CreateStorage(const DbContext& ctx, const std::string& path) {
  return ctx.ufs->Create(path).status();
}

UfileLo::UfileLo(const DbContext& ctx, std::string path, StorageKind kind)
    : ctx_(ctx), path_(std::move(path)), kind_(kind) {
  if (ctx_.stats != nullptr) {
    std::string prefix =
        kind_ == StorageKind::kUserFile ? "lo.ufile" : "lo.pfile";
    c_reads_ = ctx_.stats->counter(prefix + ".reads");
    c_writes_ = ctx_.stats->counter(prefix + ".writes");
    c_bytes_read_ = ctx_.stats->counter(prefix + ".bytes_read");
    c_bytes_written_ = ctx_.stats->counter(prefix + ".bytes_written");
    h_read_ = ctx_.stats->histogram(prefix + ".read_ns");
    h_write_ = ctx_.stats->histogram(prefix + ".write_ns");
    span_read_name_ = prefix + ".read";
    span_write_name_ = prefix + ".write";
  }
}

Result<uint32_t> UfileLo::Inode() {
  if (!inode_known_) {
    PGLO_ASSIGN_OR_RETURN(cached_inode_, ctx_.ufs->Lookup(path_));
    inode_known_ = true;
  }
  return cached_inode_;
}

Result<size_t> UfileLo::Read(Transaction* txn, uint64_t off, size_t n,
                             uint8_t* buf) {
  (void)txn;  // file implementations ignore transactions (§6.1)
  TraceSpan span(ctx_.stats, h_read_, span_read_name_);
  StatInc(c_reads_);
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, Inode());
  PGLO_ASSIGN_OR_RETURN(size_t got, ctx_.ufs->ReadAt(ino, off, n, buf));
  StatAdd(c_bytes_read_, got);
  return got;
}

Status UfileLo::Write(Transaction* txn, uint64_t off, Slice data) {
  (void)txn;
  TraceSpan span(ctx_.stats, h_write_, span_write_name_);
  StatInc(c_writes_);
  StatAdd(c_bytes_written_, data.size());
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, Inode());
  return ctx_.ufs->WriteAt(ino, off, data);
}

Result<uint64_t> UfileLo::Size(Transaction* txn) {
  (void)txn;
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, Inode());
  return ctx_.ufs->FileSize(ino);
}

Status UfileLo::Truncate(Transaction* txn, uint64_t size) {
  (void)txn;
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, Inode());
  return ctx_.ufs->Truncate(ino, size);
}

Status UfileLo::Destroy(Transaction* txn) {
  (void)txn;
  inode_known_ = false;
  return ctx_.ufs->Remove(path_);
}

Result<LargeObject::StorageFootprint> UfileLo::Footprint() {
  StorageFootprint fp;
  PGLO_ASSIGN_OR_RETURN(uint32_t ino, Inode());
  // Figure 1 reports the logical size for the file implementations: "the
  // inodes and indirect blocks are owned by the directory containing the
  // file, and not the file itself" (§9.1).
  PGLO_ASSIGN_OR_RETURN(fp.data_bytes, ctx_.ufs->LogicalBytes(ino));
  return fp;
}

}  // namespace pglo
