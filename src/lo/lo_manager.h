#ifndef PGLO_LO_LO_MANAGER_H_
#define PGLO_LO_LO_MANAGER_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/context.h"
#include "heap/heap_class.h"
#include "lo/byte_stream.h"
#include "lo/large_object.h"

namespace pglo {

class LoManager;

/// Names of the relation files backing a chunked large object. Which
/// fields are used depends on the storage kind: f-chunk fills data/index,
/// v-segment fills seg_heap/seg_index plus the inner byte store's
/// inner_data/inner_index. Zero = unused slot.
struct BackingFiles {
  Oid data = 0;         ///< f-chunk heap
  Oid index = 0;        ///< f-chunk seqno B-tree
  Oid seg_heap = 0;     ///< v-segment segment_ndx records
  Oid seg_index = 0;    ///< v-segment locn B-tree
  Oid inner_data = 0;   ///< v-segment inner byte store heap
  Oid inner_index = 0;  ///< v-segment inner byte store B-tree
};

/// An open large object: the paper's file-oriented handle. "The
/// application can then open the large object, seek to any byte location,
/// and read any number of bytes." Bound to the transaction that opened it;
/// closed automatically when that transaction ends. The seek pointer is a
/// SeekableCursor over the object's ByteStream.
class LoDescriptor {
 public:
  LoDescriptor(const LoDescriptor&) = delete;
  LoDescriptor& operator=(const LoDescriptor&) = delete;

  /// Reads up to `n` bytes at the seek pointer, advancing it.
  Result<size_t> Read(size_t n, uint8_t* buf) { return cursor_.Read(n, buf); }
  /// Convenience overload returning an owned buffer (shorter at EOF).
  Result<Bytes> Read(size_t n) { return cursor_.Read(n); }

  /// Writes at the seek pointer, advancing it. Requires write mode.
  Status Write(Slice data);

  /// Moves the seek pointer; returns the new absolute position.
  Result<uint64_t> Seek(int64_t off, Whence whence) {
    return cursor_.Seek(off, whence);
  }
  uint64_t Tell() const { return cursor_.Tell(); }

  Result<uint64_t> Size() { return cursor_.Size(); }
  Status Truncate(uint64_t size);

  Oid oid() const { return oid_; }
  bool writable() const { return writable_; }
  LargeObject* object() { return lo_.get(); }

 private:
  friend class LoManager;
  LoDescriptor(LoManager* mgr, Transaction* txn, Oid oid,
               std::unique_ptr<LargeObject> lo, bool writable)
      : mgr_(mgr), txn_(txn), oid_(oid), lo_(std::move(lo)),
        stream_(lo_.get(), txn), cursor_(&stream_), writable_(writable) {}

  LoManager* mgr_;
  Transaction* txn_;
  Oid oid_;
  std::unique_ptr<LargeObject> lo_;
  LoByteStream stream_;
  SeekableCursor cursor_;
  bool writable_;
};

/// Creates, opens, and destroys large objects of all four storage kinds.
///
/// Each large object has a row in the LO catalog (itself a no-overwrite
/// heap class, so creation and unlinking are transactional and
/// time-travelable). The row records the storage kind, the conversion
/// routine (codec) name, and the relation files / UNIX file backing the
/// object.
///
/// Multi-backend: the catalog heap is serialized by its relation latch
/// (catalog access is the outermost latch a backend takes — see DESIGN.md
/// §13), and the manager's own descriptor table and GC queues sit behind
/// an internal mutex, so concurrent sessions may create/open/unlink
/// freely. A LoDescriptor itself belongs to the one backend whose
/// transaction opened it and is not shared across threads.
class LoManager {
 public:
  explicit LoManager(const DbContext& ctx);

  /// Creates the LO catalog class; call once when a database is first
  /// initialized (under the bootstrap transaction).
  Status Bootstrap(Transaction* txn);

  /// Creates a large object per `spec`; returns its name (an Oid) — what a
  /// query returns for a large ADT field.
  Result<Oid> Create(Transaction* txn, const LoSpec& spec);

  /// §5 — creates a *temporary* large object for a function's return
  /// value; it is garbage-collected after the transaction (query) ends,
  /// unless promoted first.
  Result<Oid> CreateTemp(Transaction* txn, const LoSpec& spec);

  /// Makes a temporary object permanent (e.g. it was stored into a class).
  Status Promote(Transaction* txn, Oid oid);

  /// Removes the object from the catalog. When `destroy_storage` is true
  /// the backing storage is reclaimed at commit — which forfeits time
  /// travel for that object; when false the bytes stay for historical
  /// snapshots until VacuumOrphans.
  Status Unlink(Transaction* txn, Oid oid, bool destroy_storage = true);

  /// Opens a descriptor. The descriptor lives until Close or transaction
  /// end.
  Result<LoDescriptor*> Open(Transaction* txn, Oid oid, bool writable);

  Status Close(LoDescriptor* desc);

  /// True if `oid` names a large object visible to `txn`.
  Result<bool> Exists(Transaction* txn, Oid oid);

  /// Instantiates the accessor without a descriptor (used by Inversion and
  /// the function manager, which manage positions themselves).
  Result<std::unique_ptr<LargeObject>> Instantiate(Transaction* txn, Oid oid);

  /// Runs deferred physical destruction queued by Unlink/temp-GC. Called
  /// by Database after each commit; safe to call any time.
  Status CollectGarbage();

  /// Vacuums every large object: reclaims versions deleted at or before
  /// `horizon` plus all aborted garbage, and compacts the LO catalog
  /// itself. Time travel earlier than `horizon` is forfeited for the
  /// vacuumed data. Returns the number of versions removed.
  Result<uint64_t> Vacuum(CommitTime horizon);

  /// Online defragmentation of one large object: relocates its live
  /// chunk/segment versions, in key order, into fresh contiguous pages
  /// under `txn`. No-overwrite relocation — concurrent snapshot readers
  /// keep seeing the old copies until Vacuum reclaims them. Returns the
  /// number of versions relocated.
  Result<uint64_t> Compact(Transaction* txn, Oid oid);

  /// Compacts every object in the catalog under one system transaction;
  /// returns the total versions relocated. Run Vacuum afterwards to
  /// reclaim the vacated interior pages.
  Result<uint64_t> CompactAll();

  /// Moves a chunked large object (f-chunk / v-segment) to another
  /// storage manager — the [OLSO91] archive/recall operation (e.g. demote
  /// a cold video to the WORM jukebox, promote a hot one to NVRAM). The
  /// object keeps its Oid; its current contents are copied under `txn`
  /// and the old storage is reclaimed at commit. Version history does not
  /// migrate (write-once targets could not hold it anyway).
  Status Migrate(Transaction* txn, Oid oid, uint8_t new_smgr);

  /// The name newfilename() would mint for a POSTGRES file object (§6.2).
  static std::string NewFileName(Oid oid) {
    return "pg_lo_" + std::to_string(oid);
  }

  /// Catalog listing for administrative tools (integrity checks, vacuum
  /// UIs): every large object visible to `txn` with its spec and backing
  /// relation files (interpretation per StorageKind; zero = unused slot).
  struct ObjectInfo {
    Oid oid = kInvalidOid;
    LoSpec spec;
    bool temp = false;
    BackingFiles files;  ///< interpretation per StorageKind
  };
  Result<std::vector<ObjectInfo>> List(Transaction* txn);

  /// Storage accounting for Figure 1.
  Result<LargeObject::StorageFootprint> Footprint(Transaction* txn, Oid oid);

 private:
  struct CatalogEntry {
    Oid oid = kInvalidOid;
    LoSpec spec;
    bool temp = false;
    // Backing relation files in spec.smgr; interpretation per spec.kind.
    BackingFiles files;
  };

  static Bytes EncodeEntry(const CatalogEntry& e);
  static Result<CatalogEntry> DecodeEntry(Slice image);

  Result<std::pair<CatalogEntry, Tid>> FindEntry(Transaction* txn, Oid oid);
  Result<std::unique_ptr<LargeObject>> InstantiateEntry(
      const CatalogEntry& entry);
  Result<Oid> CreateInternal(Transaction* txn, const LoSpec& spec, bool temp);
  void ScheduleDestroy(const CatalogEntry& entry);

  DbContext ctx_;
  HeapClass catalog_;
  // Guards the descriptor table and GC queues (catalog_ is protected by
  // its relation latch). Never held across heap/txn calls — transaction
  // finish callbacks re-enter ScheduleDestroy and the queue pushes.
  mutable std::mutex mu_;
  std::unordered_map<LoDescriptor*, std::unique_ptr<LoDescriptor>> open_;
  std::vector<CatalogEntry> destroy_queue_;
  std::vector<Oid> unlink_queue_;       ///< committed temporaries awaiting GC
  std::unordered_set<Oid> promoted_;    ///< temporaries rescued by Promote
};

}  // namespace pglo

#endif  // PGLO_LO_LO_MANAGER_H_
