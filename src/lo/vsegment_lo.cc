#include "lo/vsegment_lo.h"

#include <cstring>

#include "common/logging.h"

namespace pglo {

namespace {
// Segment record: type u8 | locn u64 | raw_len u32 | flags u8 |
//                 stored_len u32 | byte_ptr u64   (26 bytes)
// Size record:    type u8 | size u64
constexpr uint8_t kTypeSegment = 0;
constexpr uint8_t kTypeSize = 1;
constexpr uint8_t kFlagCompressed = 0x1;
constexpr size_t kSegRecordSize = 26;
}  // namespace

Result<VSegmentLo::Files> VSegmentLo::CreateStorage(const DbContext& ctx,
                                                    Transaction* txn,
                                                    uint8_t smgr) {
  Files files;
  files.seg_heap = RelFileId{smgr, ctx.oids->Allocate()};
  files.seg_index = RelFileId{smgr, ctx.oids->Allocate()};
  PGLO_RETURN_IF_ERROR(HeapClass::Create(ctx.pool, files.seg_heap));
  PGLO_RETURN_IF_ERROR(Btree::Create(ctx.pool, files.seg_index));
  PGLO_ASSIGN_OR_RETURN(files.inner,
                        FChunkLo::CreateStorage(ctx, txn, smgr));
  VSegmentLo lo(ctx, files, nullptr, 65536);
  PGLO_RETURN_IF_ERROR(lo.StoreSize(txn, 0));
  return files;
}

VSegmentLo::VSegmentLo(const DbContext& ctx, Files files,
                       const Compressor* codec, uint32_t max_segment)
    : ctx_(ctx),
      files_(files),
      seg_heap_(ctx.pool, files.seg_heap),
      seg_index_(ctx.pool, files.seg_index),
      store_(ctx, files.inner, /*codec=*/nullptr, /*chunk_size=*/8000,
             /*stats_prefix=*/"lo.vseg.store"),
      codec_(codec),
      max_segment_(max_segment) {
  PGLO_CHECK(max_segment_ > 0);
  if (ctx_.stats != nullptr) {
    c_reads_ = ctx_.stats->counter("lo.vseg.reads");
    c_writes_ = ctx_.stats->counter("lo.vseg.writes");
    c_bytes_read_ = ctx_.stats->counter("lo.vseg.bytes_read");
    c_bytes_written_ = ctx_.stats->counter("lo.vseg.bytes_written");
    c_compress_ns_ = ctx_.stats->counter("lo.vseg.codec_compress_ns");
    c_decompress_ns_ = ctx_.stats->counter("lo.vseg.codec_decompress_ns");
    c_pages_relocated_ = ctx_.stats->counter("lo.vseg.pages_relocated");
    c_pages_reclaimed_ = ctx_.stats->counter("lo.vseg.pages_reclaimed");
    h_read_ = ctx_.stats->histogram("lo.vseg.read_ns");
    h_write_ = ctx_.stats->histogram("lo.vseg.write_ns");
    seg_index_.BindStats(ctx_.stats);
  }
}

Bytes VSegmentLo::EncodeSegment(const SegRecord& rec) {
  Bytes image;
  image.reserve(kSegRecordSize);
  image.push_back(kTypeSegment);
  PutFixed64(&image, rec.locn);
  PutFixed32(&image, rec.raw_len);
  image.push_back(rec.compressed ? kFlagCompressed : 0);
  PutFixed32(&image, rec.stored_len);
  PutFixed64(&image, rec.byte_ptr);
  return image;
}

Result<VSegmentLo::SegRecord> VSegmentLo::DecodeSegment(Slice image) {
  if (image.size() < kSegRecordSize || image[0] != kTypeSegment) {
    return Status::Corruption("bad segment record");
  }
  SegRecord rec;
  rec.locn = DecodeFixed64(image.data() + 1);
  rec.raw_len = DecodeFixed32(image.data() + 9);
  rec.compressed = (image[13] & kFlagCompressed) != 0;
  rec.stored_len = DecodeFixed32(image.data() + 14);
  rec.byte_ptr = DecodeFixed64(image.data() + 18);
  return rec;
}

Result<std::vector<VSegmentLo::SegRecord>> VSegmentLo::FindSegments(
    Transaction* txn, uint64_t off, uint64_t len) {
  std::vector<SegRecord> out;
  if (len == 0) return out;
  uint64_t end = off + len;
  // Segments are at most max_segment_ long, so any segment containing
  // `off` starts after off - max_segment_.
  uint64_t seek_from = off >= max_segment_ ? off - max_segment_ + 1 : 0;
  PGLO_ASSIGN_OR_RETURN(Btree::Iterator it, seg_index_.Seek(seek_from));
  uint64_t last_locn_taken = ~0ull;
  while (it.valid() && it.key() < end && it.key() != kSizeKey) {
    uint64_t locn = it.key();
    Tid tid = it.tid();
    PGLO_RETURN_IF_ERROR(it.Next());
    if (locn == last_locn_taken) continue;  // already resolved this locn
    Result<Bytes> image = seg_heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;  // invisible version
      return image.status();
    }
    Result<SegRecord> decoded = DecodeSegment(Slice(image.value()));
    if (!decoded.ok() || decoded.value().locn != locn) {
      continue;  // stale index entry pointing at a recycled slot
    }
    SegRecord rec = decoded.value();
    if (rec.locn + rec.raw_len <= off) continue;  // ends before the range
    rec.tid = tid;
    out.push_back(rec);
    last_locn_taken = locn;
  }
  return out;
}

Status VSegmentLo::LoadSegmentData(Transaction* txn, const SegRecord& rec,
                                   Bytes* out) {
  Bytes stored(rec.stored_len);
  PGLO_ASSIGN_OR_RETURN(
      size_t n, store_.Read(txn, rec.byte_ptr, rec.stored_len, stored.data()));
  if (n != rec.stored_len) {
    return Status::Corruption("segment byte store truncated");
  }
  out->clear();
  if (rec.compressed) {
    if (codec_ == nullptr) {
      return Status::Corruption("compressed segment but no codec configured");
    }
    PGLO_RETURN_IF_ERROR(codec_->Decompress(Slice(stored), rec.raw_len, out));
    if (ctx_.cpu != nullptr) {
      uint64_t before = ctx_.clock != nullptr ? ctx_.clock->NowNanos() : 0;
      ctx_.cpu->ChargePerByte(codec_->decompress_instr_per_byte(),
                              rec.raw_len);
      if (ctx_.clock != nullptr) {
        StatAdd(c_decompress_ns_, ctx_.clock->NowNanos() - before);
      }
    }
  } else {
    *out = std::move(stored);
  }
  if (out->size() != rec.raw_len) {
    return Status::Corruption("segment raw length mismatch");
  }
  return Status::OK();
}

Status VSegmentLo::AppendSegmentData(Transaction* txn, Slice raw,
                                     SegRecord* rec) {
  rec->raw_len = static_cast<uint32_t>(raw.size());
  rec->compressed = false;
  Slice payload = raw;
  Bytes compressed_buf;
  if (codec_ != nullptr) {
    PGLO_RETURN_IF_ERROR(codec_->Compress(raw, &compressed_buf));
    if (ctx_.cpu != nullptr) {
      uint64_t before = ctx_.clock != nullptr ? ctx_.clock->NowNanos() : 0;
      ctx_.cpu->ChargePerByte(codec_->compress_instr_per_byte(), raw.size());
      if (ctx_.clock != nullptr) {
        StatAdd(c_compress_ns_, ctx_.clock->NowNanos() - before);
      }
    }
    if (compressed_buf.size() < raw.size()) {
      rec->compressed = true;
      payload = Slice(compressed_buf);
    }
  }
  rec->stored_len = static_cast<uint32_t>(payload.size());
  PGLO_ASSIGN_OR_RETURN(rec->byte_ptr, store_.Append(txn, payload));
  return Status::OK();
}

Status VSegmentLo::CreateSegment(Transaction* txn, uint64_t locn, Slice raw) {
  SegRecord rec;
  rec.locn = locn;
  PGLO_RETURN_IF_ERROR(AppendSegmentData(txn, raw, &rec));
  Bytes image = EncodeSegment(rec);
  PGLO_ASSIGN_OR_RETURN(Tid tid, seg_heap_.Insert(txn, Slice(image)));
  return seg_index_.InsertIfAbsent(locn, tid);
}

Status VSegmentLo::ReplaceSegment(Transaction* txn, const SegRecord& old_rec,
                                  Slice new_raw) {
  SegRecord rec;
  rec.locn = old_rec.locn;
  PGLO_RETURN_IF_ERROR(AppendSegmentData(txn, new_raw, &rec));
  Bytes image = EncodeSegment(rec);
  PGLO_ASSIGN_OR_RETURN(Tid tid,
                        seg_heap_.Update(txn, old_rec.tid, Slice(image)));
  return seg_index_.InsertIfAbsent(rec.locn, tid);
}

Result<uint64_t> VSegmentLo::LoadSize(Transaction* txn) {
  if (size_valid_) return cached_size_;
  PGLO_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                        seg_index_.Lookup(kSizeKey));
  for (uint64_t packed : candidates) {
    Tid tid = Btree::UnpackTid(packed);
    Result<Bytes> image = seg_heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;
      return image.status();
    }
    const Bytes& data = image.value();
    if (data.size() < 9 || data[0] != kTypeSize) {
      continue;  // stale index entry pointing at a recycled slot
    }
    cached_size_ = DecodeFixed64(data.data() + 1);
    size_valid_ = true;
    return cached_size_;
  }
  return Status::NotFound("large object has no size record");
}

Status VSegmentLo::StoreSize(Transaction* txn, uint64_t size) {
  cached_size_ = size;
  size_valid_ = true;
  Bytes image;
  image.push_back(kTypeSize);
  PutFixed64(&image, size);
  PGLO_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                        seg_index_.Lookup(kSizeKey));
  for (uint64_t packed : candidates) {
    Tid tid = Btree::UnpackTid(packed);
    Result<Bytes> existing = seg_heap_.Get(txn, tid);
    if (existing.ok()) {
      if (existing.value().size() < 9 ||
          existing.value()[0] != kTypeSize) {
        continue;  // stale index entry pointing at a recycled slot
      }
      PGLO_ASSIGN_OR_RETURN(Tid new_tid,
                            seg_heap_.Update(txn, tid, Slice(image)));
      return seg_index_.InsertIfAbsent(kSizeKey, new_tid);
    }
    if (!existing.status().IsNotFound()) return existing.status();
  }
  PGLO_ASSIGN_OR_RETURN(Tid tid, seg_heap_.Insert(txn, Slice(image)));
  return seg_index_.InsertIfAbsent(kSizeKey, tid);
}

Result<uint64_t> VSegmentLo::Size(Transaction* txn) { return LoadSize(txn); }

Result<size_t> VSegmentLo::Read(Transaction* txn, uint64_t off, size_t n,
                                uint8_t* buf) {
  TraceSpan span(ctx_.stats, h_read_, "lo.vseg.read");
  StatInc(c_reads_);
  PGLO_ASSIGN_OR_RETURN(uint64_t size, LoadSize(txn));
  if (off >= size) return static_cast<size_t>(0);
  n = static_cast<size_t>(std::min<uint64_t>(n, size - off));
  std::memset(buf, 0, n);  // segments cover everything, but be defensive
  PGLO_ASSIGN_OR_RETURN(std::vector<SegRecord> segs,
                        FindSegments(txn, off, n));
  Bytes raw;
  for (const SegRecord& rec : segs) {
    PGLO_RETURN_IF_ERROR(LoadSegmentData(txn, rec, &raw));
    uint64_t seg_end = rec.locn + rec.raw_len;
    uint64_t copy_begin = std::max<uint64_t>(off, rec.locn);
    uint64_t copy_end = std::min<uint64_t>(off + n, seg_end);
    if (copy_begin >= copy_end) continue;
    std::memcpy(buf + (copy_begin - off), raw.data() + (copy_begin - rec.locn),
                copy_end - copy_begin);
  }
  StatAdd(c_bytes_read_, n);
  return n;
}

Status VSegmentLo::Write(Transaction* txn, uint64_t off, Slice data) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (data.empty()) return Status::OK();
  TraceSpan span(ctx_.stats, h_write_, "lo.vseg.write");
  StatInc(c_writes_);
  StatAdd(c_bytes_written_, data.size());
  PGLO_ASSIGN_OR_RETURN(uint64_t size, LoadSize(txn));

  // 1. Fill any gap between the current end and the write with zero
  //    segments, so visible segments always partition [0, size).
  if (off > size) {
    Bytes zeros(std::min<uint64_t>(off - size, max_segment_), 0);
    uint64_t at = size;
    while (at < off) {
      size_t take =
          static_cast<size_t>(std::min<uint64_t>(off - at, max_segment_));
      PGLO_RETURN_IF_ERROR(CreateSegment(txn, at, Slice(zeros).Sub(0, take)));
      at += take;
    }
    size = off;
  }

  // 2. Overlap region: re-version each overlapped segment with merged data.
  uint64_t overlap_end = std::min<uint64_t>(off + data.size(), size);
  if (off < size) {
    PGLO_ASSIGN_OR_RETURN(std::vector<SegRecord> segs,
                          FindSegments(txn, off, overlap_end - off));
    Bytes raw;
    for (const SegRecord& rec : segs) {
      uint64_t seg_end = rec.locn + rec.raw_len;
      uint64_t merge_begin = std::max<uint64_t>(off, rec.locn);
      uint64_t merge_end = std::min<uint64_t>(off + data.size(), seg_end);
      if (merge_begin >= merge_end) continue;
      if (merge_begin == rec.locn && merge_end == seg_end) {
        // Whole-segment replace: skip the read.
        PGLO_RETURN_IF_ERROR(ReplaceSegment(
            txn, rec, data.Sub(merge_begin - off, rec.raw_len)));
      } else {
        PGLO_RETURN_IF_ERROR(LoadSegmentData(txn, rec, &raw));
        std::memcpy(raw.data() + (merge_begin - rec.locn),
                    data.data() + (merge_begin - off),
                    merge_end - merge_begin);
        PGLO_RETURN_IF_ERROR(ReplaceSegment(txn, rec, Slice(raw)));
      }
    }
  }

  // 3. Extension: "each time the large object is extended, a new segment
  //    is created" (§6.4) — one per Write, split at max_segment.
  if (off + data.size() > size) {
    uint64_t at = std::max<uint64_t>(off, size);
    while (at < off + data.size()) {
      size_t take = static_cast<size_t>(
          std::min<uint64_t>(off + data.size() - at, max_segment_));
      PGLO_RETURN_IF_ERROR(
          CreateSegment(txn, at, data.Sub(at - off, take)));
      at += take;
    }
    PGLO_RETURN_IF_ERROR(StoreSize(txn, off + data.size()));
  }
  return Status::OK();
}

Status VSegmentLo::Truncate(Transaction* txn, uint64_t size) {
  PGLO_ASSIGN_OR_RETURN(uint64_t old_size, LoadSize(txn));
  if (size < old_size) {
    PGLO_ASSIGN_OR_RETURN(std::vector<SegRecord> segs,
                          FindSegments(txn, size, old_size - size));
    Bytes raw;
    for (const SegRecord& rec : segs) {
      if (rec.locn >= size) {
        // Entirely beyond the new end: delete the record.
        PGLO_RETURN_IF_ERROR(seg_heap_.Delete(txn, rec.tid));
      } else {
        // Straddles the boundary: re-version with the shortened raw data.
        PGLO_RETURN_IF_ERROR(LoadSegmentData(txn, rec, &raw));
        raw.resize(static_cast<size_t>(size - rec.locn));
        PGLO_RETURN_IF_ERROR(ReplaceSegment(txn, rec, Slice(raw)));
      }
    }
  }
  return StoreSize(txn, size);
}

Result<uint64_t> VSegmentLo::Vacuum(const CommitLog& clog,
                                    CommitTime horizon) {
  size_valid_ = false;
  uint64_t pages_emptied = 0;
  PGLO_ASSIGN_OR_RETURN(uint64_t segs,
                        seg_heap_.Vacuum(clog, horizon, &pages_emptied));
  // Sweep seg_index entries whose heap slot no longer holds a matching
  // record (vacuumed away or recycled). Collect first, then delete —
  // Delete restructures pages under a live iterator.
  std::vector<std::pair<uint64_t, uint64_t>> stale;
  PGLO_ASSIGN_OR_RETURN(Btree::Iterator it, seg_index_.SeekFirst());
  while (it.valid()) {
    Result<std::pair<TupleHeader, Bytes>> any =
        seg_heap_.GetAnyVersion(it.tid());
    bool dead;
    if (any.ok()) {
      const Bytes& image = any.value().second;
      if (it.key() == kSizeKey) {
        dead = image.empty() || image[0] != kTypeSize;
      } else {
        Result<SegRecord> rec = DecodeSegment(Slice(image));
        dead = !rec.ok() || rec.value().locn != it.key();
      }
    } else if (any.status().IsNotFound()) {
      dead = true;
    } else {
      return any.status();
    }
    if (dead) stale.push_back({it.key(), it.value()});
    PGLO_RETURN_IF_ERROR(it.Next());
  }
  for (const auto& [key, value] : stale) {
    Status s = seg_index_.Delete(key, value);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  PGLO_ASSIGN_OR_RETURN(uint64_t merged, seg_index_.MergeUnderfull());
  StatAdd(c_pages_reclaimed_, pages_emptied + merged);
  PGLO_ASSIGN_OR_RETURN(uint64_t chunks, store_.Vacuum(clog, horizon));
  return segs + chunks;
}

Result<uint64_t> VSegmentLo::Compact(Transaction* txn) {
  if (!txn->active()) return Status::Aborted("transaction not active");
  if (txn->read_only()) {
    return Status::PermissionDenied("time-travel transactions are read-only");
  }
  // Pass 1: resolve the visible version of every segment record (and the
  // size record) in locn order, before any mutation shifts index pages.
  std::vector<std::pair<uint64_t, Tid>> live;
  uint64_t last_key = 0;
  bool have_last = false;
  PGLO_ASSIGN_OR_RETURN(Btree::Iterator it, seg_index_.SeekFirst());
  while (it.valid()) {
    uint64_t key = it.key();
    Tid tid = it.tid();
    PGLO_RETURN_IF_ERROR(it.Next());
    if (have_last && key == last_key) continue;  // already resolved
    Result<Bytes> image = seg_heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;  // invisible version
      return image.status();
    }
    bool matches;
    if (key == kSizeKey) {
      matches = !image.value().empty() && image.value()[0] == kTypeSize;
    } else {
      Result<SegRecord> rec = DecodeSegment(Slice(image.value()));
      matches = rec.ok() && rec.value().locn == key;
    }
    if (!matches) continue;  // stale entry
    live.push_back({key, tid});
    last_key = key;
    have_last = true;
  }
  // Pass 2: no-overwrite relocation. Each live segment's *contents* are
  // re-appended to the byte store in locn order (so ascending byte_ptr
  // again matches ascending locn — merely moving the records would leave
  // the store scrambled), and a fresh record pointing at the new bytes is
  // appended to the segment heap. The size record is relocated verbatim.
  PGLO_ASSIGN_OR_RETURN(uint64_t rewrite_start, store_.Size(txn));
  uint64_t moved = 0;
  BlockNumber prev_block = kInvalidBlock;
  Bytes raw;
  for (const auto& [key, tid] : live) {
    Result<Bytes> image = seg_heap_.Get(txn, tid);
    if (!image.ok()) {
      if (image.status().IsNotFound()) continue;
      return image.status();
    }
    Bytes new_image;
    if (key == kSizeKey) {
      new_image = image.value();
    } else {
      PGLO_ASSIGN_OR_RETURN(SegRecord rec, DecodeSegment(Slice(image.value())));
      rec.tid = tid;
      PGLO_RETURN_IF_ERROR(LoadSegmentData(txn, rec, &raw));
      SegRecord relocated;
      relocated.locn = rec.locn;
      PGLO_RETURN_IF_ERROR(AppendSegmentData(txn, Slice(raw), &relocated));
      new_image = EncodeSegment(relocated);
    }
    PGLO_ASSIGN_OR_RETURN(Tid new_tid,
                          seg_heap_.InsertAppend(txn, Slice(new_image)));
    PGLO_RETURN_IF_ERROR(seg_heap_.Delete(txn, tid));
    PGLO_RETURN_IF_ERROR(seg_index_.InsertIfAbsent(key, new_tid));
    ++moved;
    if (new_tid.block != prev_block) {
      StatInc(c_pages_relocated_);
      prev_block = new_tid.block;
    }
  }
  // The store region below `rewrite_start` is now referenced only by the
  // old (MVCC-deleted) record versions: retire its chunks so Vacuum can
  // reclaim the pages, then physically compact the surviving tail.
  PGLO_RETURN_IF_ERROR(store_.TrimBefore(txn, rewrite_start));
  PGLO_ASSIGN_OR_RETURN(uint64_t inner, store_.Compact(txn));
  return moved + inner;
}

Status VSegmentLo::Destroy(Transaction* txn) {
  PGLO_RETURN_IF_ERROR(store_.Destroy(txn));
  ctx_.pool->DiscardFile(files_.seg_heap, /*discard_dirty=*/true);
  ctx_.pool->DiscardFile(files_.seg_index, /*discard_dirty=*/true);
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr,
                        ctx_.smgrs->Get(files_.seg_heap.smgr_id));
  PGLO_RETURN_IF_ERROR(smgr->DropFile(files_.seg_heap.relfile));
  return smgr->DropFile(files_.seg_index.relfile);
}

Result<LargeObject::StorageFootprint> VSegmentLo::Footprint() {
  StorageFootprint fp;
  PGLO_ASSIGN_OR_RETURN(StorageFootprint inner, store_.Footprint());
  fp.data_bytes = inner.data_bytes;
  PGLO_ASSIGN_OR_RETURN(StorageManager * smgr,
                        ctx_.smgrs->Get(files_.seg_heap.smgr_id));
  PGLO_ASSIGN_OR_RETURN(uint64_t heap_bytes,
                        smgr->StorageBytes(files_.seg_heap.relfile));
  // The segment-record heap plus the byte store's own chunk index form the
  // "2-level map" of Figure 1; the locn B-tree is reported separately.
  fp.map_bytes = heap_bytes + inner.index_bytes;
  PGLO_ASSIGN_OR_RETURN(fp.index_bytes,
                        smgr->StorageBytes(files_.seg_index.relfile));
  return fp;
}

}  // namespace pglo
