#include "lo/byte_stream.h"

namespace pglo {

Result<size_t> SeekableCursor::Read(size_t n, uint8_t* buf) {
  PGLO_ASSIGN_OR_RETURN(size_t got, stream_->ReadAt(pos_, n, buf));
  pos_ += got;
  return got;
}

Result<Bytes> SeekableCursor::Read(size_t n) {
  Bytes out(n);
  PGLO_ASSIGN_OR_RETURN(size_t got, Read(n, out.data()));
  out.resize(got);
  return out;
}

Status SeekableCursor::Write(Slice data) {
  PGLO_RETURN_IF_ERROR(stream_->WriteAt(pos_, data));
  pos_ += data.size();
  return Status::OK();
}

Result<uint64_t> SeekableCursor::Seek(int64_t off, Whence whence) {
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = static_cast<int64_t>(pos_);
      break;
    case Whence::kEnd: {
      PGLO_ASSIGN_OR_RETURN(uint64_t size, stream_->Size());
      base = static_cast<int64_t>(size);
      break;
    }
  }
  int64_t target = base + off;
  if (target < 0) return Status::InvalidArgument("seek before start");
  pos_ = static_cast<uint64_t>(target);
  return pos_;
}

Result<uint64_t> ForEachPiece(
    ByteStream* stream, size_t piece_size,
    const std::function<Status(uint64_t off, Slice piece)>& fn) {
  if (piece_size == 0) {
    return Status::InvalidArgument("piece size must be positive");
  }
  PGLO_ASSIGN_OR_RETURN(uint64_t size, stream->Size());
  Bytes buf(piece_size);
  uint64_t off = 0;
  while (off < size) {
    size_t want =
        static_cast<size_t>(std::min<uint64_t>(piece_size, size - off));
    PGLO_ASSIGN_OR_RETURN(size_t n, stream->ReadAt(off, want, buf.data()));
    if (n == 0) break;
    PGLO_RETURN_IF_ERROR(fn(off, Slice(buf).Sub(0, n)));
    off += n;
  }
  return off;
}

}  // namespace pglo
