#include "lo/byte_stream.h"

namespace pglo {

Result<uint64_t> ForEachPiece(
    ByteStream* stream, size_t piece_size,
    const std::function<Status(uint64_t off, Slice piece)>& fn) {
  if (piece_size == 0) {
    return Status::InvalidArgument("piece size must be positive");
  }
  PGLO_ASSIGN_OR_RETURN(uint64_t size, stream->Size());
  Bytes buf(piece_size);
  uint64_t off = 0;
  while (off < size) {
    size_t want =
        static_cast<size_t>(std::min<uint64_t>(piece_size, size - off));
    PGLO_ASSIGN_OR_RETURN(size_t n, stream->ReadAt(off, want, buf.data()));
    if (n == 0) break;
    PGLO_RETURN_IF_ERROR(fn(off, Slice(buf).Sub(0, n)));
    off += n;
  }
  return off;
}

}  // namespace pglo
