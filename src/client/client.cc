#include "client/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pglo {

using wire::Frame;
using wire::FrameType;

Result<std::unique_ptr<PgloClient>> PgloClient::Connect(
    const std::string& host, uint16_t port, const std::string& client_name) {
  PGLO_ASSIGN_OR_RETURN(int fd, net::Dial(host, port));
  std::unique_ptr<PgloClient> client(new PgloClient(fd));
  PGLO_RETURN_IF_ERROR(client->conn_.Send(wire::MakeHello(client_name)));
  PGLO_ASSIGN_OR_RETURN(Frame reply, client->conn_.Recv());
  if (reply.type == FrameType::kReject) {
    return Status::ResourceExhausted(
        "server rejected connection (" + std::to_string(reply.u32_a) + "/" +
        std::to_string(reply.u32_b) + " connections): " + reply.text);
  }
  if (reply.type == FrameType::kError) return wire::ErrorOf(reply);
  if (reply.type != FrameType::kHelloOk) {
    return Status::InvalidArgument(
        std::string("handshake: expected HELLO_OK, got ") +
        FrameTypeName(reply.type));
  }
  if (reply.u32_a != wire::kProtocolVersion) {
    return Status::NotSupported("server speaks protocol version " +
                                std::to_string(reply.u32_a));
  }
  client->backend_id_ = reply.u32_b;
  return client;
}

PgloClient::~PgloClient() = default;

Result<Frame> PgloClient::RoundTrip(const Frame& request) {
  PGLO_RETURN_IF_ERROR(conn_.Send(request));
  return conn_.Recv();
}

Status PgloClient::SendRaw(Slice bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(conn_.fd(), bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

void PgloClient::Kill() {
  conn_.Shutdown();
  conn_.Close();
}

int PgloClient::fd() const { return conn_.fd(); }

Result<Frame> PgloClient::Expect(const Frame& request, FrameType want) {
  PGLO_ASSIGN_OR_RETURN(Frame reply, RoundTrip(request));
  if (reply.type == FrameType::kError) return wire::ErrorOf(reply);
  if (reply.type != want) {
    return Status::InvalidArgument(std::string("expected ") +
                                   FrameTypeName(want) + " reply, got " +
                                   FrameTypeName(reply.type));
  }
  return reply;
}

Status PgloClient::Begin() {
  return Expect(wire::MakeBegin(0), FrameType::kOk).status();
}

Status PgloClient::BeginAsOf(uint64_t as_of) {
  return Expect(wire::MakeBegin(as_of), FrameType::kOk).status();
}

Result<uint64_t> PgloClient::Commit() {
  Frame req;
  req.type = FrameType::kCommit;
  PGLO_ASSIGN_OR_RETURN(Frame reply, Expect(req, FrameType::kU64Reply));
  return reply.u64;
}

Status PgloClient::Abort() {
  Frame req;
  req.type = FrameType::kAbort;
  return Expect(req, FrameType::kOk).status();
}

Result<uint64_t> PgloClient::CreateLo(const LoSpec& spec) {
  PGLO_ASSIGN_OR_RETURN(Frame reply,
                        Expect(wire::MakeLoCreate(spec), FrameType::kU64Reply));
  return reply.u64;
}

Result<uint32_t> PgloClient::OpenLo(uint64_t oid, bool writable) {
  PGLO_ASSIGN_OR_RETURN(
      Frame reply, Expect(wire::MakeLoOpen(oid, writable),
                          FrameType::kHandleReply));
  return reply.u32_a;
}

Result<Bytes> PgloClient::Read(uint32_t handle, uint32_t n) {
  PGLO_ASSIGN_OR_RETURN(
      Frame reply, Expect(wire::MakeLoRead(handle, n), FrameType::kDataReply));
  return std::move(reply.data);
}

Status PgloClient::Write(uint32_t handle, Slice data) {
  return Expect(wire::MakeLoWrite(handle, data), FrameType::kOk).status();
}

Result<uint64_t> PgloClient::Seek(uint32_t handle, int64_t off,
                                  Whence whence) {
  PGLO_ASSIGN_OR_RETURN(
      Frame reply,
      Expect(wire::MakeLoSeek(handle, off, whence), FrameType::kU64Reply));
  return reply.u64;
}

Status PgloClient::CloseLo(uint32_t handle) {
  return Expect(wire::MakeHandleOp(FrameType::kLoClose, handle),
                FrameType::kOk)
      .status();
}

Result<uint64_t> PgloClient::InvCreate(const std::string& path,
                                       const LoSpec& spec) {
  PGLO_ASSIGN_OR_RETURN(
      Frame reply,
      Expect(wire::MakeInvCreate(path, spec), FrameType::kU64Reply));
  return reply.u64;
}

Result<uint32_t> PgloClient::InvOpen(const std::string& path, bool writable) {
  PGLO_ASSIGN_OR_RETURN(
      Frame reply,
      Expect(wire::MakeInvOpen(path, writable), FrameType::kHandleReply));
  return reply.u32_a;
}

Result<uint64_t> PgloClient::InvMkdir(const std::string& path) {
  PGLO_ASSIGN_OR_RETURN(
      Frame reply, Expect(wire::MakePathOp(FrameType::kInvMkdir, path),
                          FrameType::kU64Reply));
  return reply.u64;
}

Status PgloClient::InvRemove(const std::string& path) {
  return Expect(wire::MakePathOp(FrameType::kInvRemove, path), FrameType::kOk)
      .status();
}

Status PgloClient::Bye() {
  Frame req;
  req.type = FrameType::kBye;
  return Expect(req, FrameType::kOk).status();
}

}  // namespace pglo
