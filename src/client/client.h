#ifndef PGLO_CLIENT_CLIENT_H_
#define PGLO_CLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "lo/large_object.h"
#include "server/net.h"
#include "server/wire.h"

namespace pglo {

/// Blocking pglo-wire-v1 client: the remote analogue of a Session, one
/// connection per instance, strictly ping-pong (every request waits for
/// its reply). Engine errors come back as the server's typed Status —
/// codes survive the wire — so remote callers handle failures exactly as
/// embedded ones do. Not thread-safe: one thread per client, like one
/// thread per Session.
///
/// Handles returned by OpenLo/InvOpen are server-side descriptor ids;
/// they die with the transaction (COMMIT/ABORT invalidates them, exactly
/// as LoDescriptors die at transaction end in the embedded API).
class PgloClient {
 public:
  /// Dials host:port and performs the HELLO handshake. A server at its
  /// admission limit answers with a REJECT frame, surfaced here as
  /// kResourceExhausted with the server's load figures in the message.
  static Result<std::unique_ptr<PgloClient>> Connect(
      const std::string& host, uint16_t port,
      const std::string& client_name = "pglo_client");

  ~PgloClient();
  PgloClient(const PgloClient&) = delete;
  PgloClient& operator=(const PgloClient&) = delete;

  // --- transactions ----------------------------------------------------
  Status Begin();
  /// Read-only time-travel transaction as of commit tick `as_of`.
  Status BeginAsOf(uint64_t as_of);
  /// Returns the commit tick. On failure the transaction is still open.
  Result<uint64_t> Commit();
  Status Abort();

  // --- large objects ---------------------------------------------------
  Result<uint64_t> CreateLo(const LoSpec& spec = {});
  Result<uint32_t> OpenLo(uint64_t oid, bool writable);
  Result<Bytes> Read(uint32_t handle, uint32_t n);
  Status Write(uint32_t handle, Slice data);
  Result<uint64_t> Seek(uint32_t handle, int64_t off, Whence whence);
  Status CloseLo(uint32_t handle);

  // --- Inversion paths -------------------------------------------------
  Result<uint64_t> InvCreate(const std::string& path, const LoSpec& spec = {});
  Result<uint32_t> InvOpen(const std::string& path, bool writable);
  Result<uint64_t> InvMkdir(const std::string& path);
  Status InvRemove(const std::string& path);

  /// Polite disconnect (BYE, wait for OK). The destructor just closes.
  Status Bye();

  /// Server-assigned backend id (the row to look for in pglo_top
  /// --activity).
  uint32_t backend_id() const { return backend_id_; }

  // --- low-level access for tests and the traffic generator ------------
  /// Sends a request and returns the reply frame verbatim (kError frames
  /// are returned, not converted). For protocol tests.
  Result<wire::Frame> RoundTrip(const wire::Frame& request);
  /// Writes raw bytes to the socket, bypassing the codec — for feeding
  /// the server garbage in tests.
  Status SendRaw(Slice bytes);
  /// Hard-kills the connection (no BYE): shutdown + close, so the server
  /// sees a peer vanish mid-whatever. The socket-kill fault helper.
  void Kill();
  int fd() const;

 private:
  explicit PgloClient(int fd) : conn_(fd) {}

  /// RoundTrip + map kError replies to Status; expects `want` otherwise.
  Result<wire::Frame> Expect(const wire::Frame& request, wire::FrameType want);

  net::FrameConn conn_;
  uint32_t backend_id_ = 0;
};

}  // namespace pglo

#endif  // PGLO_CLIENT_CLIENT_H_
