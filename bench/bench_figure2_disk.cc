// Reproduces Figure 2, "Disk Performance on the Benchmark": simulated
// elapsed seconds for the six §9.1 operations over the six disk-resident
// implementations. Columns follow the paper:
//   user file | POSTGRES file | f-chunk 0% | f-chunk 30% | v-segment 30% |
//   f-chunk 50%
//
// Each config column is followed by a per-config observability table
// (buffer-pool hit rate, storage-manager block I/O, device seeks and
// transfers) from Database::Stats(). Pass --no-stats to run with the
// registry disabled; simulated times are identical either way, because
// stats never advance the clock.
//
// Run: bench_figure2_disk [--no-stats] [--quick] [--profile]
//                         [--trace=FILE] [--json=FILE] [workdir]
// Results are also written to BENCH_figure2[_quick].json (pglo-bench-v1
// schema; see DESIGN.md §9) unless --no-json is given.

#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"

namespace pglo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, "figure2", "/tmp/pglo_bench_fig2");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  const WorkloadScale scale = ScaleFor(args.quick);
  BenchRun run(args);

  const std::vector<BenchConfig> configs = {
      {"user file", StorageKind::kUserFile, ""},
      {"POSTGRES file", StorageKind::kPostgresFile, ""},
      {"f-chunk 0%", StorageKind::kFChunk, ""},
      {"f-chunk 30%", StorageKind::kFChunk, "rle"},
      {"v-segment 30%", StorageKind::kVSegment, "rle"},
      {"f-chunk 50%", StorageKind::kFChunk, "lzss"},
  };
  const std::vector<Op> ops = {Op::kSeqRead,   Op::kSeqWrite,
                               Op::kRandRead,  Op::kRandWrite,
                               Op::kLocalRead, Op::kLocalWrite};

  std::vector<std::vector<double>> cells(
      ops.size(), std::vector<double>(configs.size(), 0.0));
  std::vector<StatsSnapshot> snapshots(configs.size());

  for (size_t c = 0; c < configs.size(); ++c) {
    std::string dir = workdir + "/" + std::to_string(c);
    Database db;
    DatabaseOptions options = PaperOptions(dir);
    options.enable_stats = args.stats;
    if (args.readahead >= 0) {
      options.readahead_pages = static_cast<uint32_t>(args.readahead);
    }
    Status s = db.Open(options);
    if (!s.ok()) {
      std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    run.StartConfig(configs[c].name, &db, ConfigInfo(configs[c]));
    LoBenchRunner runner(&db, scale);
    SimTimer create_timer(&db.clock());
    Result<Oid> oid = runner.CreateObject(configs[c]);
    if (!oid.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", configs[c].name.c_str(),
                   oid.status().ToString().c_str());
      return 1;
    }
    run.RecordResult("create", create_timer.ElapsedSeconds());
    for (size_t o = 0; o < ops.size(); ++o) {
      Result<double> seconds = runner.RunOp(*oid, ops[o], 1000 + o);
      if (!seconds.ok()) {
        std::fprintf(stderr, "%s / %s failed: %s\n", configs[c].name.c_str(),
                     OpName(ops[o]), seconds.status().ToString().c_str());
        return 1;
      }
      cells[o][c] = *seconds;
      run.RecordResult(OpName(ops[o]), *seconds);
    }
    snapshots[c] = db.Stats();
    run.FinishConfig();
  }

  std::vector<std::string> columns, rows;
  for (const auto& config : configs) columns.push_back(config.name);
  for (Op op : ops) rows.push_back(OpName(op));
  std::printf("%s\n",
              FormatTable("Figure 2: Disk Performance on the Benchmark "
                          "(simulated elapsed seconds)",
                          columns, rows, cells)
                  .c_str());
  if (args.stats) {
    std::printf("%s\n",
                FormatStatsTable("Physical operations per config (object "
                                 "creation + all six operations)",
                                 columns, snapshots)
                    .c_str());
  }

  // The §9.2 shape claims, computed from the measured cells.
  double native_seq = cells[0][0];
  double fchunk_seq = cells[0][2];
  double native_rand = cells[2][0];
  double fchunk_rand = cells[2][2];
  double fchunk30_seq = cells[0][3];
  double vseg_seq = cells[0][4];
  double fchunk50_seq = cells[0][5];
  std::printf("Shape checks (paper's §9.2 claims):\n");
  std::printf("  f-chunk seq read vs native:      %+5.1f%%  (paper: within "
              "~7%%)\n",
              100.0 * (fchunk_seq / native_seq - 1.0));
  std::printf("  f-chunk random throughput/native: %4.2fx  (paper: 0.5-0.75x)"
              "\n",
              native_rand / fchunk_rand);
  std::printf("  f-chunk 30%% vs 0%% seq read:      %+5.1f%%  (paper: ~13%% "
              "slower)\n",
              100.0 * (fchunk30_seq / fchunk_seq - 1.0));
  std::printf("  v-segment 30%% vs f-chunk 0%%:     %+5.1f%%  (paper: ~25%% "
              "slower)\n",
              100.0 * (vseg_seq / fchunk_seq - 1.0));
  std::printf("  f-chunk 50%% seq read vs native:  %+5.1f%%  (paper: beats "
              "native — \"fewer I/Os ... the extra 20 instructions per byte "
              "are more than\n"
              "                                            compensated for "
              "by the reduced disk traffic\")\n",
              100.0 * (fchunk50_seq / native_seq - 1.0));
  Status finish = run.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "results write failed: %s\n",
                 finish.ToString().c_str());
    return 1;
  }
  rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
