#ifndef PGLO_BENCH_HARNESS_H_
#define PGLO_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "db/database.h"
#include "workload/frames.h"

namespace pglo {
namespace bench {

/// §9.1: "a 51.2MB large object was created and then logically considered
/// a group of 12,500 frames, each of size 4096 bytes."
constexpr uint64_t kFrameSize = 4096;
constexpr uint64_t kNumFrames = 12'500;
constexpr uint64_t kObjectSize = kFrameSize * kNumFrames;  // 51,200,000
/// "Read 2,500 frames (10MB) sequentially." / "Read 250 frames (1MB) ..."
constexpr uint64_t kSeqFrames = 2'500;
constexpr uint64_t kRandFrames = 250;

constexpr uint64_t kCreateSeed = 0xBEEF;

/// One column of Figures 1–3: a large-object implementation configuration.
struct BenchConfig {
  std::string name;          ///< column label, paper style
  StorageKind kind = StorageKind::kFChunk;
  std::string codec;         ///< "", "rle" (≈30 %), or "lzss" (≈50 %)
  uint8_t smgr = kSmgrDisk;
  uint32_t chunk_size = 8000;
  /// v-segment: the paper's object was created frame-by-frame, so its
  /// segments are one frame long.
  uint32_t max_segment = static_cast<uint32_t>(kFrameSize);
};

/// The six §9 benchmark operations.
enum class Op {
  kSeqRead,     ///< read 2,500 frames sequentially (10 MB)
  kSeqWrite,    ///< replace 2,500 frames sequentially
  kRandRead,    ///< read 250 random frames (1 MB)
  kRandWrite,   ///< replace 250 random frames
  kLocalRead,   ///< read 250 frames with 80/20 locality
  kLocalWrite,  ///< replace 250 frames with 80/20 locality
};

const char* OpName(Op op);
bool OpIsWrite(Op op);

/// Calibrated 1992-scale options (device models, 10 MB caches, CPU MIPS).
DatabaseOptions PaperOptions(const std::string& dir);

/// Drives one database instance through object creation and the benchmark
/// operations, measuring simulated elapsed time.
class LoBenchRunner {
 public:
  explicit LoBenchRunner(Database* db) : db_(db) {}

  /// Creates the 51.2 MB object frame by frame (one transaction), as the
  /// paper did. Returns its oid.
  Result<Oid> CreateObject(const BenchConfig& config);

  /// Runs one benchmark operation in its own transaction; returns
  /// simulated elapsed seconds.
  Result<double> RunOp(Oid oid, Op op, uint64_t seed);

  /// Storage accounting for Figure 1.
  Result<LargeObject::StorageFootprint> Footprint(Oid oid);

 private:
  Database* db_;
};

/// Renders a Figure 2/3-style table: rows = operations, columns = configs,
/// cells = elapsed seconds with the given precision.
std::string FormatTable(const std::string& title,
                        const std::vector<std::string>& columns,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::vector<double>>& cells);

/// Renders the observability companion to a figure: one column per config,
/// rows for the physical work each layer reported (buffer-pool hit rate,
/// storage-manager block I/O, device seeks/transfers). Snapshots come from
/// Database::Stats(); pass one per config, in column order.
std::string FormatStatsTable(const std::string& title,
                             const std::vector<std::string>& columns,
                             const std::vector<StatsSnapshot>& snapshots);

/// Shared flag handling for the figure benches: `[--no-stats] [workdir]`.
struct BenchArgs {
  std::string workdir;
  bool stats = true;
};
BenchArgs ParseBenchArgs(int argc, char** argv,
                         const std::string& default_workdir);

}  // namespace bench
}  // namespace pglo

#endif  // PGLO_BENCH_HARNESS_H_
