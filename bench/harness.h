#ifndef PGLO_BENCH_HARNESS_H_
#define PGLO_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "workload/frames.h"

namespace pglo {
namespace bench {

/// §9.1: "a 51.2MB large object was created and then logically considered
/// a group of 12,500 frames, each of size 4096 bytes."
constexpr uint64_t kFrameSize = 4096;
constexpr uint64_t kNumFrames = 12'500;
constexpr uint64_t kObjectSize = kFrameSize * kNumFrames;  // 51,200,000
/// "Read 2,500 frames (10MB) sequentially." / "Read 250 frames (1MB) ..."
constexpr uint64_t kSeqFrames = 2'500;
constexpr uint64_t kRandFrames = 250;

constexpr uint64_t kCreateSeed = 0xBEEF;

/// One column of Figures 1–3: a large-object implementation configuration.
struct BenchConfig {
  std::string name;          ///< column label, paper style
  StorageKind kind = StorageKind::kFChunk;
  std::string codec;         ///< "", "rle" (≈30 %), or "lzss" (≈50 %)
  uint8_t smgr = kSmgrDisk;
  uint32_t chunk_size = 8000;
  /// v-segment: the paper's object was created frame-by-frame, so its
  /// segments are one frame long.
  uint32_t max_segment = static_cast<uint32_t>(kFrameSize);
};

/// The six §9 benchmark operations.
enum class Op {
  kSeqRead,     ///< read 2,500 frames sequentially (10 MB)
  kSeqWrite,    ///< replace 2,500 frames sequentially
  kRandRead,    ///< read 250 random frames (1 MB)
  kRandWrite,   ///< replace 250 random frames
  kLocalRead,   ///< read 250 frames with 80/20 locality
  kLocalWrite,  ///< replace 250 frames with 80/20 locality
};

const char* OpName(Op op);
bool OpIsWrite(Op op);

/// Calibrated 1992-scale options (device models, 10 MB caches, CPU MIPS).
DatabaseOptions PaperOptions(const std::string& dir);

/// Workload sizing. Full scale is the paper's; quick scale (1/10th) exists
/// for the CI gate in tools/check.sh, which needs a bench run in seconds,
/// not minutes. Quick results are written to a separate `_quick` JSON so
/// they never collide with the full-run trajectory files.
struct WorkloadScale {
  uint64_t num_frames = kNumFrames;    ///< object size in frames
  uint64_t seq_frames = kSeqFrames;    ///< frames per sequential op
  uint64_t rand_frames = kRandFrames;  ///< frames per random/local op
};
inline WorkloadScale ScaleFor(bool quick) {
  if (!quick) return WorkloadScale{};
  return WorkloadScale{kNumFrames / 10, kSeqFrames / 10, kRandFrames / 10};
}

/// Drives one database instance through object creation and the benchmark
/// operations, measuring simulated elapsed time. The runner connects one
/// backend session and runs every operation through it.
class LoBenchRunner {
 public:
  explicit LoBenchRunner(Database* db, WorkloadScale scale = WorkloadScale{})
      : db_(db), scale_(scale), session_(db->Connect()) {}

  /// Creates the 51.2 MB object frame by frame (one transaction), as the
  /// paper did. Returns its oid.
  Result<Oid> CreateObject(const BenchConfig& config);

  /// Runs one benchmark operation in its own transaction; returns
  /// simulated elapsed seconds.
  Result<double> RunOp(Oid oid, Op op, uint64_t seed);

  /// Storage accounting for Figure 1.
  Result<LargeObject::StorageFootprint> Footprint(Oid oid);

 private:
  Database* db_;
  WorkloadScale scale_;
  std::unique_ptr<Session> session_;
};

/// Renders a Figure 2/3-style table: rows = operations, columns = configs,
/// cells = elapsed seconds with the given precision.
std::string FormatTable(const std::string& title,
                        const std::vector<std::string>& columns,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::vector<double>>& cells);

/// Renders the observability companion to a figure: one column per config,
/// rows for the physical work each layer reported (buffer-pool hit rate,
/// storage-manager block I/O, device seeks/transfers). Snapshots come from
/// Database::Stats(); pass one per config, in column order.
std::string FormatStatsTable(const std::string& title,
                             const std::vector<std::string>& columns,
                             const std::vector<StatsSnapshot>& snapshots);

/// Shared flag handling for the figure benches:
///   [--no-stats] [--quick] [--profile] [--trace=FILE] [--json=FILE]
///   [--no-json] [--readahead=N] [workdir]
struct BenchArgs {
  std::string bench_name;  ///< e.g. "figure1"; names the default JSON file
  std::string workdir;
  bool stats = true;
  bool quick = false;    ///< 1/10th workload (the check.sh gate)
  bool profile = false;  ///< print per-config profiler attribution
  /// Read-ahead window override; -1 = keep DatabaseOptions' default.
  /// `--readahead=0` reproduces the pre-vectored-I/O per-block command
  /// sequence (used to verify simulated-time compatibility).
  int readahead = -1;
  std::string trace_path;  ///< Chrome trace-event output; empty = off
  std::string json_path;   ///< machine-readable results; empty = off
};
BenchArgs ParseBenchArgs(int argc, char** argv, const std::string& bench_name,
                         const std::string& default_workdir);

/// Config metadata for BenchRun::StartConfig, derived from a BenchConfig.
std::map<std::string, std::string> ConfigInfo(const BenchConfig& config);

/// Machine-readable emitter + trace/profiler wiring shared by every bench.
///
/// Usage, per configuration (each one typically a fresh Database):
///   BenchRun run(args);
///   run.StartConfig("f-chunk", &db, {{"kind", "fchunk"}});
///   run.RecordResult("create", seconds);
///   run.RecordValue("create", "data_bytes", fp.data_bytes);
///   run.FinishConfig();
///   ...
///   run.Finish();  // writes BENCH_<name>.json, closes the trace
///
/// StartConfig attaches the trace writer (one Chrome "process" per config,
/// since each config's SimClock restarts at zero) and, with --profile, a
/// fresh Profiler to the database's registry; FinishConfig detaches them,
/// snapshots the config's counters, and prints the attribution report.
/// A null `db` (e.g. Figure 3's special-program baseline, which runs on a
/// bare device model) records results without any sink wiring.
///
/// The JSON schema ("pglo-bench-v1") is documented in DESIGN.md §9 and
/// consumed by tools/bench_compare.
class BenchRun {
 public:
  explicit BenchRun(const BenchArgs& args);
  ~BenchRun();

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  /// Begins a configuration. `info` is free-form metadata emitted with the
  /// config (kind, codec, smgr, chunk_size, ...).
  void StartConfig(const std::string& name, Database* db,
                   const std::map<std::string, std::string>& info = {});

  /// Records one operation's simulated elapsed seconds under the current
  /// config.
  void RecordResult(const std::string& op, double seconds);

  /// Records a named numeric side-value (storage bytes, ratios) on the
  /// (config, op) row, creating the row if RecordResult was not called.
  void RecordValue(const std::string& op, const std::string& key,
                   double value);

  /// Ends the current configuration: detaches sinks, snapshots counters,
  /// prints the profiler report when --profile is on.
  void FinishConfig();

  /// Writes the JSON results file and finalizes the trace. Idempotent; the
  /// destructor calls it best-effort.
  Status Finish();

 private:
  struct ResultRow {
    std::string config;
    std::string op;
    double simulated_seconds = 0.0;
    bool has_seconds = false;
    // Sorted: stable JSON output.
    std::map<std::string, double> values;
  };
  struct ConfigEntry {
    std::string name;
    std::map<std::string, std::string> info;
  };

  ResultRow* RowFor(const std::string& op);
  Status WriteJson() const;

  BenchArgs args_;
  std::unique_ptr<ChromeTraceWriter> trace_;
  std::unique_ptr<Profiler> profiler_;
  TeeSink tee_;
  Database* current_db_ = nullptr;
  std::string current_config_;
  std::vector<ConfigEntry> configs_;
  std::vector<ResultRow> rows_;
  std::vector<std::pair<std::string, StatsSnapshot>> snapshots_;
  bool finished_ = false;
};

}  // namespace bench
}  // namespace pglo

#endif  // PGLO_BENCH_HARNESS_H_
