// Ablation D: codec cost vs. I/O savings. §9.2's crossover — "the extra 20
// instructions per byte are more than compensated for by the reduced disk
// traffic" — depends on the CPU speed. This sweep runs the f-chunk
// sequential read with each codec at several simulated MIPS ratings and
// shows where compression flips from a tax to a win.
//
// Run: bench_ablation_compression [--no-stats] [--quick] [--profile]
//                                 [--trace=FILE] [--json=FILE] [workdir]
// Results are written to BENCH_ablation_compression[_quick].json
// (pglo-bench-v1 schema; see DESIGN.md §9) unless --no-json is given.

#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"

namespace pglo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, "ablation_compression",
                                  "/tmp/pglo_bench_ablD");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  const WorkloadScale scale = ScaleFor(args.quick);
  BenchRun run(args);

  const double kMips[] = {10, 25, 65, 200};
  const char* kCodecs[] = {"", "rle", "lzss"};

  std::printf("Ablation D: compression codec x CPU speed, f-chunk object,\n"
              "10MB sequential read (simulated seconds)\n\n");
  std::printf("%10s %14s %14s %14s\n", "MIPS", "none", "rle (~30%)",
              "lzss (~50%)");

  for (double mips : kMips) {
    double cells[3] = {};
    for (int c = 0; c < 3; ++c) {
      std::string dir = workdir + "/" + std::to_string(int(mips)) + "_" +
                        std::to_string(c);
      Database db;
      DatabaseOptions options = PaperOptions(dir);
      options.cpu_mips = mips;
      options.enable_stats = args.stats;
      if (args.readahead >= 0) {
        options.readahead_pages = static_cast<uint32_t>(args.readahead);
      }
      Status s = db.Open(options);
      if (!s.ok()) {
        std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
        return 1;
      }
      BenchConfig config{"mips=" + std::to_string(int(mips)) + " codec=" +
                             (kCodecs[c][0] != '\0' ? kCodecs[c] : "none"),
                         StorageKind::kFChunk, kCodecs[c]};
      auto info = ConfigInfo(config);
      info["cpu_mips"] = std::to_string(int(mips));
      run.StartConfig(config.name, &db, info);
      LoBenchRunner runner(&db, scale);
      Result<Oid> oid = runner.CreateObject(config);
      if (!oid.ok()) {
        std::fprintf(stderr, "create failed: %s\n",
                     oid.status().ToString().c_str());
        return 1;
      }
      Result<double> seq = runner.RunOp(*oid, Op::kSeqRead, 11);
      if (!seq.ok()) {
        std::fprintf(stderr, "bench failed\n");
        return 1;
      }
      cells[c] = *seq;
      run.RecordResult(OpName(Op::kSeqRead), *seq);
      run.FinishConfig();
    }
    std::printf("%10.0f %14.1f %14.1f %14.1f\n", mips, cells[0], cells[1],
                cells[2]);
  }
  std::printf(
      "\nExpected shape: at low MIPS decompression dominates and "
      "compression loses;\nas MIPS rise the 50%% codec wins outright "
      "(half the pages to read), and the\n30%% codec never wins (it saves "
      "no pages — Figure 1).\n");
  Status finish = run.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "results write failed: %s\n",
                 finish.ToString().c_str());
    return 1;
  }
  rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
