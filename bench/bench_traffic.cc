// Many-client traffic generator (DESIGN.md §16): an in-process PgloServer
// on loopback, driven by hundreds of concurrent pglo-wire-v1 clients
// replaying an open-loop transaction mix against a zipfian-popular object
// population. Sweeps offered load across a fixed ladder of arrival rates
// and reports achieved throughput and p50/p99 response time at each rung,
// then names the measured saturation point — the lowest offered load the
// server fails to keep up with.
//
// Model:
//   - Population: a pre-created mix of small/medium/large objects; every
//     transaction picks its object zipf(s=0.99)-style, so a handful of hot
//     objects absorb most of the traffic (the video-server access pattern
//     from the paper's motivating workloads).
//   - Clients: one TCP connection + one thread each. Arrivals are open
//     loop: each client draws exponential inter-arrival gaps (think
//     times) from its slice of the offered rate and fires on schedule —
//     response time is measured from the SCHEDULED arrival, so queueing
//     delay counts when the server falls behind, exactly how saturation
//     becomes visible as a p99 cliff.
//   - Mix: 70% point reads (seek to a random offset in the object, read
//     4 KB), 30% appends (seek end, write 512 B, commit through the
//     group-commit path). Read transactions ABORT (no commit-log force);
//     appends COMMIT.
//
// Wall-clock latencies are machine-dependent, so — like
// bench_concurrency — the emitted JSON is schema-validated by
// tools/check.sh's server_gate but never numerically compared against a
// baseline. The bench gates its own shape instead: every rung must
// complete transactions without errors, and the bottom rung (far below
// any plausible saturation) must achieve >= 80% of its offered load.
//
// Run: bench_traffic [--quick] [--json=FILE] [workdir]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "client/client.h"
#include "common/random.h"
#include "inversion/inversion_fs.h"
#include "server/server.h"

namespace pglo {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kZipfSkew = 0.99;
constexpr double kReadFraction = 0.7;
constexpr size_t kReadBytes = 4096;
constexpr size_t kAppendBytes = 512;

/// Zipf(s) over [0, n): item 0 is the hottest. CDF built once, sampled by
/// binary search on a uniform double.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  size_t Sample(Random& rng) const {
    double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct ClientResult {
  std::vector<double> latencies_ms;  ///< scheduled arrival -> reply
  uint64_t reads = 0;
  uint64_t appends = 0;
  uint64_t conflicts = 0;  ///< kAborted: write-write collision on a hot object
  uint64_t errors = 0;
  std::string first_error;
};

struct TrafficShape {
  int clients = 0;
  std::vector<double> offered;  ///< txn/s ladder, ascending
  double seconds_per_point = 0;
  size_t objects = 0;
};

TrafficShape ShapeFor(bool quick) {
  TrafficShape shape;
  if (quick) {
    shape.clients = 48;
    shape.offered = {100, 300, 900, 2700};
    shape.seconds_per_point = 1.2;
    shape.objects = 32;
  } else {
    shape.clients = 200;
    shape.offered = {200, 600, 1800, 5400, 16200};
    shape.seconds_per_point = 4.0;
    shape.objects = 96;
  }
  return shape;
}

/// Object population: three size classes, hot-first so the zipf head hits
/// a spread of sizes (index % 3 interleaves classes).
std::vector<size_t> PopulationSizes(size_t n, bool quick) {
  std::vector<size_t> sizes(n);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 3) {
      case 0: sizes[i] = quick ? 4096 : 8192; break;
      case 1: sizes[i] = quick ? 32768 : 65536; break;
      default: sizes[i] = quick ? 131072 : 524288; break;
    }
  }
  return sizes;
}

/// One client's open-loop run: fire transactions on an exponential
/// arrival schedule from `start` until `end`, recording response times
/// against the SCHEDULE (queueing included). A dead connection ends the
/// run (errors carry the reason out).
void RunClient(uint16_t port, const std::vector<uint64_t>* oids,
               const ZipfSampler* zipf, double rate_per_client,
               Clock::time_point start, Clock::time_point end, uint64_t seed,
               ClientResult* out) {
  auto fail = [out](const std::string& what, const Status& s) {
    ++out->errors;
    if (out->first_error.empty()) {
      out->first_error = what + ": " + s.ToString();
    }
  };
  auto attempt = PgloClient::Connect("127.0.0.1", port, "traffic");
  if (!attempt.ok()) return fail("connect", attempt.status());
  std::unique_ptr<PgloClient> client = std::move(attempt).value();
  Random rng(seed);
  Bytes append_data = rng.RandomBytes(kAppendBytes);

  auto next_gap = [&] {
    // Exponential think time with mean 1/rate (clamped away from 0).
    double u = std::max(rng.NextDouble(), 1e-12);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(u) / rate_per_client));
  };

  Clock::time_point arrival = start + next_gap();
  while (arrival < end) {
    std::this_thread::sleep_until(arrival);
    uint64_t oid = (*oids)[zipf->Sample(rng)];
    bool is_read = rng.NextDouble() < kReadFraction;
    Status s = client->Begin();
    if (s.ok()) {
      auto h = client->OpenLo(oid, /*writable=*/!is_read);
      if (!h.ok()) {
        s = h.status();
      } else if (is_read) {
        auto size = client->Seek(h.value(), 0, Whence::kEnd);
        if (!size.ok()) {
          s = size.status();
        } else {
          uint64_t limit = size.value() > kReadBytes
                               ? size.value() - kReadBytes
                               : 0;
          uint64_t off = limit > 0 ? rng.Uniform(limit + 1) : 0;
          s = client->Seek(h.value(), static_cast<int64_t>(off), Whence::kSet)
                  .status();
          if (s.ok()) s = client->Read(h.value(), kReadBytes).status();
        }
        Status fin = client->Abort();  // read txn: no commit-log force
        if (s.ok()) s = fin;
      } else {
        s = client->Seek(h.value(), 0, Whence::kEnd).status();
        if (s.ok()) s = client->Write(h.value(), Slice(append_data));
        if (s.ok()) s = client->Commit().status();
      }
    }
    if (!s.ok()) {
      // Best-effort rollback; the transaction may already be gone (read
      // transactions abort on their own path).
      Status cleanup = client->Abort();
      if (s.IsAborted()) {
        // Write-write conflict on a zipf-hot object: the expected fate of
        // some concurrent appends, not a failure — a real client would
        // retry on its next think-time tick.
        ++out->conflicts;
      } else {
        fail(is_read ? "read txn" : "append txn", s);
      }
      if (s.IsIOError() || cleanup.IsIOError()) break;  // connection gone
    } else {
      double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - arrival)
              .count();
      out->latencies_ms.push_back(ms);
      if (is_read) {
        ++out->reads;
      } else {
        ++out->appends;
      }
    }
    arrival += next_gap();
  }
  (void)client->Bye();
}

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  size_t k = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(k), v.end());
  return v[k];
}

struct LoadPoint {
  double offered = 0;
  double achieved = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  uint64_t completed = 0;
  uint64_t reads = 0;
  uint64_t appends = 0;
  uint64_t conflicts = 0;
  uint64_t errors = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
};

int Main(int argc, char** argv) {
  BenchArgs args =
      ParseBenchArgs(argc, argv, "traffic", "/tmp/pglo_bench_traffic");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  TrafficShape shape = ShapeFor(args.quick);

  DatabaseOptions options;
  options.dir = workdir + "/db";
  options.buffer_pool_frames = 4096;
  options.charge_devices = false;  // wall-clock bench: no 1992 device sim
  options.group_commit = true;     // appends commit through the batch path
  options.enable_stats = true;
  options.enable_flight_recorder = false;
  Database db;
  Status s = db.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }

  // Population: created and committed before any traffic.
  std::vector<size_t> sizes = PopulationSizes(shape.objects, args.quick);
  std::vector<uint64_t> oids;
  {
    Random rng(kCreateSeed);
    auto session = db.Connect();
    for (size_t i = 0; i < shape.objects; ++i) {
      session->Begin();
      auto oid = session->CreateLo(LoSpec{});
      Status cs = oid.status();
      if (cs.ok()) {
        auto fd = session->OpenLo(oid.value(), true);
        cs = fd.status();
        if (cs.ok()) cs = fd.value()->Write(Slice(rng.RandomBytes(sizes[i])));
      }
      if (cs.ok()) cs = session->Commit().status();
      if (!cs.ok()) {
        std::fprintf(stderr, "populate object %zu: %s\n", i,
                     cs.ToString().c_str());
        return 1;
      }
      oids.push_back(oid.value());
    }
  }

  ServerOptions server_options;
  server_options.max_connections = static_cast<uint32_t>(shape.clients + 8);
  PgloServer server(&db, nullptr, server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
    return 1;
  }

  ZipfSampler zipf(shape.objects, kZipfSkew);
  BenchRun run(args);
  std::printf(
      "Traffic generator: %d clients over loopback, %zu objects "
      "(zipf s=%.2f), %.0f%% reads / %.0f%% appends, %.1fs per load point\n\n",
      shape.clients, shape.objects, kZipfSkew, kReadFraction * 100,
      (1 - kReadFraction) * 100, shape.seconds_per_point);
  std::printf("%12s %12s %10s %10s %10s %9s %10s %8s\n", "offered/s",
              "achieved/s", "p50 ms", "p99 ms", "mean ms", "txns",
              "conflicts", "errors");

  std::vector<LoadPoint> points;
  for (size_t pi = 0; pi < shape.offered.size(); ++pi) {
    double offered = shape.offered[pi];
    double per_client = offered / shape.clients;
    std::vector<ClientResult> results(shape.clients);
    uint64_t sim_begin = db.clock().NowNanos();

    // Clients connect first (setup excluded from the measured window),
    // then the schedule opens at `start`.
    Clock::time_point start = Clock::now() + std::chrono::milliseconds(300);
    Clock::time_point end =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(shape.seconds_per_point));
    std::vector<std::thread> threads;
    threads.reserve(shape.clients);
    for (int c = 0; c < shape.clients; ++c) {
      threads.emplace_back(RunClient, server.port(), &oids, &zipf, per_client,
                           start, end,
                           kCreateSeed + pi * 10007 + static_cast<uint64_t>(c),
                           &results[c]);
    }
    for (auto& t : threads) t.join();

    LoadPoint point;
    point.offered = offered;
    point.wall_seconds = shape.seconds_per_point;
    point.sim_seconds =
        static_cast<double>(db.clock().NowNanos() - sim_begin) * 1e-9;
    std::vector<double> latencies;
    for (ClientResult& r : results) {
      latencies.insert(latencies.end(), r.latencies_ms.begin(),
                       r.latencies_ms.end());
      point.reads += r.reads;
      point.appends += r.appends;
      point.conflicts += r.conflicts;
      point.errors += r.errors;
      if (r.errors > 0 && !r.first_error.empty()) {
        std::fprintf(stderr, "client error at %.0f/s: %s\n", offered,
                     r.first_error.c_str());
      }
    }
    point.completed = latencies.size();
    point.achieved =
        static_cast<double>(point.completed) / shape.seconds_per_point;
    double sum = 0;
    for (double v : latencies) sum += v;
    point.mean_ms =
        latencies.empty() ? 0 : sum / static_cast<double>(latencies.size());
    point.p50_ms = Percentile(latencies, 0.50);
    point.p99_ms = Percentile(latencies, 0.99);
    std::printf("%12.0f %12.0f %10.2f %10.2f %10.2f %9llu %10llu %8llu\n",
                point.offered, point.achieved, point.p50_ms, point.p99_ms,
                point.mean_ms,
                static_cast<unsigned long long>(point.completed),
                static_cast<unsigned long long>(point.conflicts),
                static_cast<unsigned long long>(point.errors));

    run.StartConfig("offered_" + std::to_string(static_cast<int>(offered)),
                    &db,
                    {{"offered_txn_per_s",
                      std::to_string(static_cast<int>(offered))},
                     {"clients", std::to_string(shape.clients)},
                     {"objects", std::to_string(shape.objects)},
                     {"zipf_s", "0.99"},
                     {"read_fraction", "0.7"}});
    // The simulated-seconds row keeps the pglo-bench-v1 schema; with
    // device charging off it tracks engine-side clock advances only and,
    // like every wall-clock figure here, is NOT baseline-gated.
    run.RecordResult("traffic", point.sim_seconds);
    run.RecordValue("traffic", "offered_txn_per_s", point.offered);
    run.RecordValue("traffic", "achieved_txn_per_s", point.achieved);
    run.RecordValue("traffic", "p50_ms", point.p50_ms);
    run.RecordValue("traffic", "p99_ms", point.p99_ms);
    run.RecordValue("traffic", "mean_ms", point.mean_ms);
    run.RecordValue("traffic", "completed",
                    static_cast<double>(point.completed));
    run.RecordValue("traffic", "reads", static_cast<double>(point.reads));
    run.RecordValue("traffic", "appends",
                    static_cast<double>(point.appends));
    run.RecordValue("traffic", "conflicts",
                    static_cast<double>(point.conflicts));
    run.RecordValue("traffic", "errors", static_cast<double>(point.errors));
    run.RecordValue("traffic", "wall_seconds", point.wall_seconds);
    run.RecordValue("traffic", "clients",
                    static_cast<double>(shape.clients));
    run.FinishConfig();
    points.push_back(point);
  }

  // Saturation: the lowest offered load where achieved throughput falls
  // short of 90% of offered. Response-time percentiles tell the same
  // story (the p99 cliff), but the throughput shortfall is the crisper
  // binary signal across machines.
  double saturation = 0;
  for (const LoadPoint& p : points) {
    if (p.achieved < 0.9 * p.offered) {
      saturation = p.offered;
      break;
    }
  }
  if (saturation > 0) {
    std::printf("\nsaturation point: %.0f txn/s offered (achieved falls "
                "below 90%% of offered there)\n",
                saturation);
  } else {
    std::printf("\nsaturation point: not reached at <= %.0f txn/s offered "
                "(server kept up at every rung)\n",
                points.back().offered);
  }
  run.StartConfig("summary", nullptr,
                  {{"points", std::to_string(points.size())}});
  run.RecordResult("saturation", 0.0);
  run.RecordValue("saturation", "saturation_offered_txn_per_s", saturation);
  run.RecordValue("saturation", "saturated", saturation > 0 ? 1.0 : 0.0);
  run.RecordValue("saturation", "max_offered_txn_per_s",
                  points.back().offered);
  run.FinishConfig();

  server.Stop();
  StatsSnapshot stats = db.Stats();
  for (const auto& [name, value] : stats.counters) {
    if (name.rfind("server.", 0) == 0 && value > 0) {
      std::printf("  %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  s = db.Close();
  if (!s.ok()) {
    std::fprintf(stderr, "close: %s\n", s.ToString().c_str());
    return 1;
  }

  // Shape gates (machine-independent): no errors anywhere, and the bottom
  // rung — far below any plausible saturation — keeps up.
  uint64_t total_errors = 0;
  for (const LoadPoint& p : points) total_errors += p.errors;
  if (total_errors > 0) {
    std::fprintf(stderr, "FAIL: %llu transaction errors during the sweep\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (points.front().achieved < 0.8 * points.front().offered) {
    std::fprintf(stderr,
                 "FAIL: bottom rung achieved %.0f/s of %.0f/s offered — the "
                 "server cannot keep up with trickle load\n",
                 points.front().achieved, points.front().offered);
    return 1;
  }
  s = run.Finish();
  if (!s.ok()) {
    std::fprintf(stderr, "emit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
