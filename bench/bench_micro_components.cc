// Wall-clock micro-benchmarks of the individual substrates (google
// benchmark). Unlike the figure benches — which report deterministic
// *simulated* seconds — these measure the real CPU cost of this
// implementation's data structures.
//
// Wired into the shared BenchRun harness: accepts the common flags
// (--quick/--json=/--no-json/--trace=/--profile) and emits a
// BENCH_micro[_quick].json whose rows carry wall-clock values only —
// deliberately no "simulated_seconds", so bench_compare never treats
// host-machine noise as a regression.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/harness.h"

#include "btree/btree.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "compress/lzss.h"
#include "compress/rle.h"
#include "db/database.h"
#include "heap/heap_class.h"
#include "smgr/mm_smgr.h"
#include "storage/page.h"
#include "workload/frames.h"

namespace pglo {
namespace {

void BM_SlottedPageAddItem(benchmark::State& state) {
  uint8_t buf[kPageSize];
  Bytes item(static_cast<size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    SlottedPage page(buf);
    page.Init();
    while (page.AddItem(Slice(item)).ok()) {
    }
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_SlottedPageAddItem)->Arg(64)->Arg(512)->Arg(4000);

void BM_SlottedPageCompact(benchmark::State& state) {
  uint8_t buf[kPageSize];
  for (auto _ : state) {
    state.PauseTiming();
    SlottedPage page(buf);
    page.Init();
    Bytes item(128, 1);
    std::vector<uint16_t> slots;
    while (true) {
      Result<uint16_t> slot = page.AddItem(Slice(item));
      if (!slot.ok()) break;
      slots.push_back(slot.value());
    }
    for (size_t i = 0; i < slots.size(); i += 2) {
      Status s = page.DeleteItem(slots[i]);
      benchmark::DoNotOptimize(s.ok());
    }
    state.ResumeTiming();
    page.Compact();
  }
}
BENCHMARK(BM_SlottedPageCompact);

void BM_Crc32c(benchmark::State& state) {
  Bytes data = Random(1).RandomBytes(kPageSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_Crc32c);

void BM_BufferPoolHit(benchmark::State& state) {
  SmgrRegistry smgrs;
  (void)smgrs.Register(0, std::make_unique<MainMemorySmgr>(nullptr));
  BufferPool pool(&smgrs, 64);
  (void)smgrs.Get(0).value()->CreateFile(1);
  BlockNumber block;
  { auto handle = pool.NewPage({0, 1}, &block); }
  for (auto _ : state) {
    auto handle = pool.GetPage({{0, 1}, 0});
    benchmark::DoNotOptimize(handle.value().data());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BtreeInsert(benchmark::State& state) {
  SmgrRegistry smgrs;
  (void)smgrs.Register(0, std::make_unique<MainMemorySmgr>(nullptr));
  BufferPool pool(&smgrs, 4096);
  (void)Btree::Create(&pool, {0, 1});
  Btree tree(&pool, {0, 1});
  uint64_t key = 0;
  for (auto _ : state) {
    Status s = tree.Insert(key, key);
    benchmark::DoNotOptimize(s.ok());
    ++key;
  }
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeLookup(benchmark::State& state) {
  SmgrRegistry smgrs;
  (void)smgrs.Register(0, std::make_unique<MainMemorySmgr>(nullptr));
  BufferPool pool(&smgrs, 4096);
  (void)Btree::Create(&pool, {0, 1});
  Btree tree(&pool, {0, 1});
  for (uint64_t k = 0; k < 100'000; ++k) {
    Status s = tree.Insert(k, k);
    benchmark::DoNotOptimize(s.ok());
  }
  Random rng(3);
  for (auto _ : state) {
    auto values = tree.Lookup(rng.Uniform(100'000));
    benchmark::DoNotOptimize(values.value().size());
  }
}
BENCHMARK(BM_BtreeLookup);

void BM_HeapInsert(benchmark::State& state) {
  SmgrRegistry smgrs;
  (void)smgrs.Register(0, std::make_unique<MainMemorySmgr>(nullptr));
  BufferPool pool(&smgrs, 4096);
  char path[] = "/tmp/pglo_micro_clog_XXXXXX";
  int fd = ::mkstemp(path);
  if (fd >= 0) ::close(fd);
  CommitLog clog;
  (void)clog.Open(path);
  TxnManager txns(&clog, &pool);
  (void)HeapClass::Create(&pool, {0, 1});
  HeapClass heap(&pool, {0, 1});
  Transaction* txn = txns.Begin();
  Bytes payload(200, 7);
  for (auto _ : state) {
    auto tid = heap.Insert(txn, Slice(payload));
    benchmark::DoNotOptimize(tid.ok());
  }
  (void)txns.Abort(txn);
  ::unlink(path);
}
BENCHMARK(BM_HeapInsert);

void BM_RleCompressFrame(benchmark::State& state) {
  Bytes frame = MakeFrame(1, 0, FrameParams{});
  RleCompressor rle;
  for (auto _ : state) {
    Bytes out;
    Status s = rle.Compress(Slice(frame), &out);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(state.iterations() * frame.size());
}
BENCHMARK(BM_RleCompressFrame);

void BM_LzssCompressFrame(benchmark::State& state) {
  Bytes frame = MakeFrame(1, 0, FrameParams{});
  LzssCompressor lzss;
  for (auto _ : state) {
    Bytes out;
    Status s = lzss.Compress(Slice(frame), &out);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(state.iterations() * frame.size());
}
BENCHMARK(BM_LzssCompressFrame);

void BM_LzssDecompressFrame(benchmark::State& state) {
  Bytes frame = MakeFrame(1, 0, FrameParams{});
  LzssCompressor lzss;
  Bytes compressed;
  (void)lzss.Compress(Slice(frame), &compressed);
  for (auto _ : state) {
    Bytes out;
    Status s = lzss.Decompress(Slice(compressed), frame.size(), &out);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(state.iterations() * frame.size());
}
BENCHMARK(BM_LzssDecompressFrame);

// End-to-end large-object throughput (wall clock, devices uncharged): the
// real CPU cost of the f-chunk and v-segment read/write paths.
void BM_LoThroughput(benchmark::State& state) {
  const bool vsegment = state.range(0) == 1;
  const bool write = state.range(1) == 1;

  char tmpl[] = "/tmp/pglo_micro_db_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  Database database;
  DatabaseOptions options;
  options.dir = dir ? dir : "/tmp/pglo_micro_db";
  options.charge_devices = false;
  options.buffer_pool_frames = 2048;
  if (!database.Open(options).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  std::unique_ptr<Session> session = database.Connect();
  Transaction* txn = session->Begin();
  LoSpec spec;
  spec.kind = vsegment ? StorageKind::kVSegment : StorageKind::kFChunk;
  Oid oid = database.large_objects().Create(txn, spec).value();
  auto lo = database.large_objects().Instantiate(txn, oid).value();
  Bytes frame = MakeFrame(1, 0, FrameParams{});
  // Preload 4 MB so reads have something to chew on.
  for (uint64_t i = 0; i < 1024; ++i) {
    benchmark::DoNotOptimize(
        lo->Write(txn, i * frame.size(), Slice(frame)).ok());
  }
  uint64_t pos = 0;
  Bytes buf(frame.size());
  for (auto _ : state) {
    uint64_t off = (pos++ % 1024) * frame.size();
    if (write) {
      Status s = lo->Write(txn, off, Slice(frame));
      benchmark::DoNotOptimize(s.ok());
    } else {
      auto n = lo->Read(txn, off, frame.size(), buf.data());
      benchmark::DoNotOptimize(n.ok());
    }
  }
  state.SetBytesProcessed(state.iterations() * frame.size());
  benchmark::DoNotOptimize(session->Abort().ok());
  session.reset();
  benchmark::DoNotOptimize(database.Close().ok());
  if (dir) {
    int rc = std::system(("rm -rf '" + std::string(dir) + "'").c_str());
    (void)rc;
  }
}
BENCHMARK(BM_LoThroughput)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"vseg", "write"});

// Console reporter that also copies every finished run into the BenchRun
// JSON: one row per benchmark, wall-clock values only.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(bench::BenchRun* run) : run_(run) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred || r.iterations == 0) continue;
      double iters = static_cast<double>(r.iterations);
      run_->RecordValue(r.benchmark_name(), "real_ns_per_op",
                        r.real_accumulated_time / iters * 1e9);
      run_->RecordValue(r.benchmark_name(), "cpu_ns_per_op",
                        r.cpu_accumulated_time / iters * 1e9);
      auto bytes = r.counters.find("bytes_per_second");
      if (bytes != r.counters.end()) {
        run_->RecordValue(r.benchmark_name(), "bytes_per_second",
                          bytes->second.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchRun* run_;
};

}  // namespace
}  // namespace pglo

int main(int argc, char** argv) {
  // Split the command line: --benchmark_* flags go to the google-benchmark
  // runner, everything else to the shared bench harness (--quick/--json=/
  // --no-json/...). --quick shortens each measurement instead of shrinking
  // a workload — these benches have no scale knob.
  std::vector<char*> bench_argv = {argv[0]};
  std::vector<char*> harness_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bench_argv.push_back(argv[i]);
    } else {
      harness_argv.push_back(argv[i]);
    }
  }
  pglo::bench::BenchArgs args = pglo::bench::ParseBenchArgs(
      static_cast<int>(harness_argv.size()), harness_argv.data(), "micro",
      "/tmp/pglo_bench_micro");
  static char min_time[] = "--benchmark_min_time=0.05";
  if (args.quick) bench_argv.push_back(min_time);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }

  pglo::bench::BenchRun run(args);
  // No Database to wire: micro benches build their own substrates, and the
  // rows deliberately carry no simulated_seconds (wall clock is host noise,
  // not a regression signal for bench_compare).
  run.StartConfig("micro", nullptr,
                  {{"kind", "wall-clock"}, {"scale", args.quick ? "quick" : "full"}});
  pglo::JsonCapturingReporter reporter(&run);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  run.FinishConfig();
  pglo::Status s = run.Finish();
  if (!s.ok()) {
    std::fprintf(stderr, "json write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
