// Long-horizon churn benchmark: fragmentation decay and online compaction.
//
// Creates a population of f-chunk and v-segment objects with zipfian sizes,
// then runs create/overwrite/delete churn epochs. After every epoch the
// database is vacuumed (so the free-space map learns the interior holes —
// later writes scatter into them) and reopened cold, and a full sequential
// read of every object is measured: simulated elapsed time, simulated disk
// seeks, and effective bandwidth. Fragmentation shows up as seq-read decay
// across epochs. Finally LoManager::CompactAll() relocates every live
// chunk/segment into fresh contiguous pages, Vacuum reclaims the vacated
// versions, and the sequential read is measured once more — the paper-style
// claim under test is that compaction restores near-fresh bandwidth.
//
// Run: bench_fragmentation [--no-stats] [--quick] [--trace=FILE]
//                          [--json=FILE] [--gate-degradation-pct=N]
//                          [--gate-restore-pct=N] [workdir]
// Results go to BENCH_fragmentation[_quick].json (pglo-bench-v1 schema).
//
// The gate flags make the bench self-checking for CI (tools/check.sh):
//   --gate-degradation-pct=20  fail unless churn degraded sequential reads
//                              by at least 20% (the problem must manifest)
//   --gate-restore-pct=10      fail unless the post-compaction time is
//                              within 10% of the fresh time (the fix works)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace pglo {
namespace bench {
namespace {

/// Churn unit: one full f-chunk chunk / one v-segment segment. Whole-unit
/// overwrites replace a version without read-modify-write noise.
constexpr uint32_t kUnit = 8000;

struct FragScale {
  int objects;            ///< initial population
  int max_units;          ///< zipfian size cap, in kUnit units
  int epochs;             ///< churn rounds
  int recreate_per_epoch; ///< objects unlinked + re-created each round
};

FragScale FragScaleFor(bool quick) {
  if (quick) return {16, 48, 4, 2};
  return {24, 192, 6, 2};
}

/// Deterministic zipf(1) sampler over 1..max: P(k) proportional to 1/k.
/// Hand-rolled inverse CDF — std::discrete_distribution's algorithm is
/// implementation-defined, and this bench's numbers feed a committed
/// baseline.
class Zipf {
 public:
  explicit Zipf(int max) {
    cum_.reserve(max);
    uint64_t total = 0;
    for (int k = 1; k <= max; ++k) {
      total += 1'000'000 / static_cast<uint64_t>(k);
      cum_.push_back(total);
    }
  }
  int Sample(std::mt19937_64& rng) const {
    uint64_t r = rng() % cum_.back();
    size_t lo = 0, hi = cum_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cum_[mid] <= r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo) + 1;
  }

 private:
  std::vector<uint64_t> cum_;
};

uint64_t SumCounter(const StatsSnapshot& snap, const std::string& name) {
  uint64_t total = 0;
  for (const auto& [counter, value] : snap.counters) {
    if (counter == name) total += value;
  }
  return total;
}

struct LiveObject {
  Oid oid = kInvalidOid;
  uint64_t units = 0;  ///< size in kUnit units
};

/// One tracked object creation: zipfian size, unit-at-a-time writes (the
/// paper created its object frame by frame), one transaction.
Result<LiveObject> CreateChurnObject(Database& db, StorageKind kind,
                                     uint64_t units, uint8_t fill) {
  LoSpec spec;
  spec.kind = kind;
  spec.smgr = kSmgrDisk;
  spec.chunk_size = kUnit;
  spec.max_segment = kUnit;
  auto session = db.Connect();
  Transaction* txn = session->Begin();
  PGLO_ASSIGN_OR_RETURN(Oid oid, db.large_objects().Create(txn, spec));
  PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                        db.large_objects().Instantiate(txn, oid));
  Bytes buf(kUnit, fill);
  for (uint64_t u = 0; u < units; ++u) {
    buf[0] = static_cast<uint8_t>(u);  // cheap per-unit variation
    PGLO_RETURN_IF_ERROR(lo->Write(txn, u * kUnit, Slice(buf)));
  }
  PGLO_RETURN_IF_ERROR(session->Commit().status());
  return LiveObject{oid, units};
}

struct PassResult {
  double seconds = 0.0;
  uint64_t seeks = 0;
  uint64_t bytes = 0;
  double mb_per_s() const {
    return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
  }
};

/// Cold sequential read of every object, oldest first, unit at a time.
/// Caller reopens the database first so the pass starts with empty caches.
Result<PassResult> MeasureSeqRead(Database& db,
                                  const std::vector<LiveObject>& objs) {
  PassResult result;
  auto session = db.Connect();
  Transaction* txn = session->Begin();
  uint64_t seeks0 = SumCounter(db.Stats(), "device.disk.seeks");
  SimTimer timer(&db.clock());
  Bytes buf(kUnit);
  for (const LiveObject& obj : objs) {
    PGLO_ASSIGN_OR_RETURN(std::unique_ptr<LargeObject> lo,
                          db.large_objects().Instantiate(txn, obj.oid));
    uint64_t size = obj.units * kUnit;
    for (uint64_t off = 0; off < size; off += kUnit) {
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(kUnit, size - off));
      PGLO_ASSIGN_OR_RETURN(size_t n, lo->Read(txn, off, want, buf.data()));
      result.bytes += n;
    }
  }
  result.seconds = timer.ElapsedSeconds();
  result.seeks = SumCounter(db.Stats(), "device.disk.seeks") - seeks0;
  PGLO_RETURN_IF_ERROR(session->Abort());
  return result;
}

DatabaseOptions FragOptions(const std::string& dir, bool stats,
                            int readahead) {
  DatabaseOptions options = PaperOptions(dir);
  options.enable_stats = stats;
  // A pool smaller than the object population keeps the measured pass
  // device-bound (the cold reopen already empties it; this stops the tail
  // of one pass from hiding in DRAM).
  options.buffer_pool_frames = 96;
  if (readahead >= 0) {
    options.readahead_pages = static_cast<uint32_t>(readahead);
  }
  return options;
}

struct GateSpec {
  double degradation_pct = 0.0;  ///< 0 = gate off
  double restore_pct = 0.0;      ///< 0 = gate off
};

int RunConfig(const char* label, StorageKind kind, BenchRun& run,
              const BenchArgs& args, const FragScale& fs,
              const GateSpec& gate, bool* gate_failed) {
  std::string dir = args.workdir + "/" + label;
  DatabaseOptions options = FragOptions(dir, args.stats, args.readahead);
  Database db;
  Status s = db.Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // The config's counters table snapshots the final open (reopen + the
  // compacted read pass) — the per-epoch deltas live in each row's values.
  // Note this config reopens the database several times, so an attached
  // trace writer only sees spans up to the first reopen.
  std::map<std::string, std::string> info;
  info["kind"] = std::string(StorageKindToString(kind));
  info["objects"] = std::to_string(fs.objects);
  info["max_units"] = std::to_string(fs.max_units);
  info["epochs"] = std::to_string(fs.epochs);
  run.StartConfig(label, &db, info);

  std::mt19937_64 rng(0x5EED0000 + static_cast<uint64_t>(kind));
  Zipf zipf(fs.max_units);

  auto fail = [&](const char* what, const Status& st) {
    std::fprintf(stderr, "%s: %s failed: %s\n", label, what,
                 st.ToString().c_str());
    return 1;
  };

  // Initial population.
  std::vector<LiveObject> objs;
  for (int i = 0; i < fs.objects; ++i) {
    Result<LiveObject> obj = CreateChurnObject(
        db, kind, static_cast<uint64_t>(zipf.Sample(rng)),
        static_cast<uint8_t>(i));
    if (!obj.ok()) return fail("create", obj.status());
    objs.push_back(*obj);
  }
  Result<uint64_t> vac = db.large_objects().Vacuum(db.Now());
  if (!vac.ok()) return fail("vacuum", vac.status());

  auto reopen = [&]() -> Status {
    PGLO_RETURN_IF_ERROR(db.Close());
    return db.Open(options);
  };

  // Fresh baseline.
  if (Status rs = reopen(); !rs.ok()) return fail("reopen", rs);
  Result<PassResult> fresh = MeasureSeqRead(db, objs);
  if (!fresh.ok()) return fail("fresh read", fresh.status());
  run.RecordResult("fresh_read", fresh->seconds);
  run.RecordValue("fresh_read", "seeks", static_cast<double>(fresh->seeks));
  run.RecordValue("fresh_read", "mb_per_s", fresh->mb_per_s());
  std::printf("%12s %-16s %10.3f s %10.1f MB/s %8llu seeks\n", label,
              "fresh", fresh->seconds, fresh->mb_per_s(),
              static_cast<unsigned long long>(fresh->seeks));

  // Churn epochs.
  double churned_s = fresh->seconds;
  for (int epoch = 1; epoch <= fs.epochs; ++epoch) {
    // Overwrite ~25% of every surviving object's units, in random order —
    // cross-transaction updates scatter the new versions into whatever
    // holes the free-space map learned last vacuum.
    for (const LiveObject& obj : objs) {
      auto session = db.Connect();
      Transaction* txn = session->Begin();
      Result<std::unique_ptr<LargeObject>> lo =
          db.large_objects().Instantiate(txn, obj.oid);
      if (!lo.ok()) return fail("instantiate", lo.status());
      uint64_t rewrites = std::max<uint64_t>(1, obj.units / 4);
      Bytes buf(kUnit, static_cast<uint8_t>(epoch));
      for (uint64_t r = 0; r < rewrites; ++r) {
        uint64_t pos = rng() % obj.units;
        buf[0] = static_cast<uint8_t>(pos);
        Status ws = (*lo)->Write(txn, pos * kUnit, Slice(buf));
        if (!ws.ok()) return fail("overwrite", ws);
      }
      Result<CommitTime> cs = session->Commit();
      if (!cs.ok()) return fail("commit", cs.status());
    }
    // Rotate part of the population: unlink the oldest objects, create
    // replacements (their files are new; the churn lives in survivors).
    for (int r = 0; r < fs.recreate_per_epoch && !objs.empty(); ++r) {
      auto session = db.Connect();
      Transaction* txn = session->Begin();
      Status us = db.large_objects().Unlink(txn, objs.front().oid);
      if (!us.ok()) return fail("unlink", us);
      Result<CommitTime> cs = session->Commit();
      if (!cs.ok()) return fail("commit", cs.status());
      objs.erase(objs.begin());
    }
    for (int r = 0; r < fs.recreate_per_epoch; ++r) {
      Result<LiveObject> obj = CreateChurnObject(
          db, kind, static_cast<uint64_t>(zipf.Sample(rng)),
          static_cast<uint8_t>(epoch));
      if (!obj.ok()) return fail("create", obj.status());
      objs.push_back(*obj);
    }
    // Vacuum: reclaim dead versions, teach the FSM this epoch's holes.
    vac = db.large_objects().Vacuum(db.Now());
    if (!vac.ok()) return fail("vacuum", vac.status());

    if (Status rs = reopen(); !rs.ok()) return fail("reopen", rs);
    Result<PassResult> pass = MeasureSeqRead(db, objs);
    if (!pass.ok()) return fail("epoch read", pass.status());
    std::string op = "epoch" + std::to_string(epoch) + "_read";
    run.RecordResult(op, pass->seconds);
    run.RecordValue(op, "seeks", static_cast<double>(pass->seeks));
    run.RecordValue(op, "mb_per_s", pass->mb_per_s());
    std::printf("%12s %-16s %10.3f s %10.1f MB/s %8llu seeks\n", label,
                op.c_str(), pass->seconds, pass->mb_per_s(),
                static_cast<unsigned long long>(pass->seeks));
    churned_s = pass->seconds;
  }

  // Online compaction + vacuum, then the after picture.
  Result<uint64_t> moved = db.large_objects().CompactAll();
  if (!moved.ok()) return fail("compact", moved.status());
  vac = db.large_objects().Vacuum(db.Now());
  if (!vac.ok()) return fail("vacuum", vac.status());
  StatsSnapshot maintenance = db.Stats();
  uint64_t relocated =
      SumCounter(maintenance, "lo.fchunk.pages_relocated") +
      SumCounter(maintenance, "lo.vseg.pages_relocated") +
      SumCounter(maintenance, "lo.vseg.store.pages_relocated");
  uint64_t reclaimed =
      SumCounter(maintenance, "lo.fchunk.pages_reclaimed") +
      SumCounter(maintenance, "lo.vseg.pages_reclaimed") +
      SumCounter(maintenance, "lo.vseg.store.pages_reclaimed");
  uint64_t fsm_hits = SumCounter(maintenance, "heap.fsm.hits");
  uint64_t fsm_misses = SumCounter(maintenance, "heap.fsm.misses");

  if (Status rs = reopen(); !rs.ok()) return fail("reopen", rs);
  Result<PassResult> compacted = MeasureSeqRead(db, objs);
  if (!compacted.ok()) return fail("compacted read", compacted.status());
  run.RecordResult("compacted_read", compacted->seconds);
  run.RecordValue("compacted_read", "seeks",
                  static_cast<double>(compacted->seeks));
  run.RecordValue("compacted_read", "mb_per_s", compacted->mb_per_s());
  run.RecordValue("compacted_read", "versions_relocated",
                  static_cast<double>(*moved));
  run.RecordValue("compacted_read", "pages_relocated",
                  static_cast<double>(relocated));
  run.RecordValue("compacted_read", "pages_reclaimed",
                  static_cast<double>(reclaimed));
  std::printf("%12s %-16s %10.3f s %10.1f MB/s %8llu seeks\n", label,
              "compacted", compacted->seconds, compacted->mb_per_s(),
              static_cast<unsigned long long>(compacted->seeks));

  double degradation_pct =
      fresh->seconds > 0
          ? (churned_s - fresh->seconds) / fresh->seconds * 100.0
          : 0.0;
  double restore_pct =
      fresh->seconds > 0
          ? (compacted->seconds - fresh->seconds) / fresh->seconds * 100.0
          : 0.0;
  run.RecordValue("summary", "degradation_pct", degradation_pct);
  run.RecordValue("summary", "restore_pct", restore_pct);
  run.RecordValue("summary", "fsm_hits", static_cast<double>(fsm_hits));
  run.RecordValue("summary", "fsm_misses", static_cast<double>(fsm_misses));
  std::printf(
      "%12s churn degraded seq read %+.1f%%; post-compaction %+.1f%% vs "
      "fresh\n\n",
      label, degradation_pct, restore_pct);

  if (gate.degradation_pct > 0 && degradation_pct < gate.degradation_pct) {
    std::fprintf(stderr,
                 "GATE FAIL %s: churn degraded seq read by %.1f%% "
                 "(expected >= %.1f%% — fragmentation did not manifest)\n",
                 label, degradation_pct, gate.degradation_pct);
    *gate_failed = true;
  }
  if (gate.restore_pct > 0 && restore_pct > gate.restore_pct) {
    std::fprintf(stderr,
                 "GATE FAIL %s: post-compaction seq read is %.1f%% over "
                 "fresh (expected <= %.1f%% — compaction did not restore "
                 "locality)\n",
                 label, restore_pct, gate.restore_pct);
    *gate_failed = true;
  }

  run.FinishConfig();
  Status cs = db.Close();
  if (!cs.ok()) return fail("close", cs);
  return 0;
}

int Main(int argc, char** argv) {
  // Peel off the gate flags before the shared parser sees them (it warns
  // on flags it does not know).
  GateSpec gate;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--gate-degradation-pct=", 0) == 0) {
      gate.degradation_pct = std::atof(arg.c_str() + 23);
    } else if (arg.rfind("--gate-restore-pct=", 0) == 0) {
      gate.restore_pct = std::atof(arg.c_str() + 19);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchArgs args =
      ParseBenchArgs(static_cast<int>(passthrough.size()),
                     passthrough.data(), "fragmentation",
                     "/tmp/pglo_bench_frag");
  int rc = std::system(("rm -rf '" + args.workdir + "'").c_str());
  (void)rc;
  const FragScale fs = FragScaleFor(args.quick);
  BenchRun run(args);

  std::printf("Fragmentation churn benchmark: %d objects, zipf cap %d "
              "units of %u bytes, %d epochs\n\n",
              fs.objects, fs.max_units, kUnit, fs.epochs);

  bool gate_failed = false;
  if (RunConfig("f-chunk", StorageKind::kFChunk, run, args, fs, gate,
                &gate_failed) != 0) {
    return 1;
  }
  if (RunConfig("v-segment", StorageKind::kVSegment, run, args, fs, gate,
                &gate_failed) != 0) {
    return 1;
  }

  std::printf(
      "Expected shape: seq-read time and device seeks climb epoch over "
      "epoch as\ncross-transaction overwrites scatter versions into "
      "free-space-map holes;\nCompactAll + Vacuum restores near-fresh "
      "times by rewriting live data in key\norder into fresh contiguous "
      "pages.\n");
  Status finish = run.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "results write failed: %s\n",
                 finish.ToString().c_str());
    return 1;
  }
  rc = std::system(("rm -rf '" + args.workdir + "'").c_str());
  (void)rc;
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
