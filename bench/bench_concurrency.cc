// Multi-backend scaling bench (ISSUE 7): K = 1 → 16 sessions, each a
// thread running its own stream of small write transactions against one
// shared Database, with group commit on. Reports committed transactions
// per wall-clock second, per simulated second, and aborts per second at
// each K, plus the wall-clock scaling factor relative to K = 1.
//
// What makes this scale is NOT parallel CPU (CI machines may expose a
// single core): each commit must force the commit log with a real
// fdatasync — ~100 µs+ of blocked wall time on a disk-backed file system,
// dwarfing the transaction's CPU work. Group commit lets one leader pay
// that fdatasync for every concurrently queued committer, so committed
// throughput rises with K until the (serialized) CPU work catches up —
// exactly the 1993 multi-backend story, measurable on one core.
//
// Methodology: per K, every backend runs kTxnsPerBackend transactions
// (total work scales with K), one warmup pass then kPasses measured
// passes back to back — each pass times its own thread group; the
// throughput reported is the best pass (least scheduler perturbation).
// Every 5th transaction aborts instead of committing, keeping the
// concurrent-abort path honest.
//
// Expectations: on one core the ceiling is (CPU + blocked)/CPU per
// transaction — overlap can only hide the blocked fsync time, so ~2x at
// K=8 is a good single-core result (measured 1.6-2.2x depending on
// object size; the gated floor is a conservative 1.5x). On multi-core
// hardware the serialized CPU spreads across cores too and 3x+ is the
// expectation.
//
// Wall-clock numbers are inherently machine-dependent and the simulated
// times at K > 1 depend on thread interleaving (device-model seek charges
// are position-dependent), so there is NO baseline comparison for this
// bench: tools/check.sh runs it --quick, validates the emitted JSON
// schema, and checks the scaling factor printed on stdout. The JSON
// (BENCH_concurrency[_quick].json) is for trend tracking, not gating.
//
// Run: bench_concurrency [--quick] [--json=FILE] [workdir]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"

namespace pglo {
namespace bench {
namespace {

constexpr int kBackendCounts[] = {1, 2, 4, 8, 16};
constexpr uint64_t kPasses = 3;

/// One wait class's movement across the best pass (counter deltas from
/// the `wait.*` families the engine's blocking points report).
struct WaitDelta {
  uint64_t acquires = 0;
  uint64_t contended = 0;
  uint64_t waited_ns = 0;  ///< wall ns blocked (histogram sum delta)
};

struct ScalePoint {
  int backends = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double wall_seconds = 1e300;  ///< best (min) measured pass
  double sim_seconds = 0;       ///< simulated time of the best pass
  uint64_t fsyncs = 0;          ///< commit-log forces in the best pass
  uint64_t batches = 0;         ///< commit groups formed in the best pass
  uint32_t max_batch = 0;
  /// Indexed by WaitEvent; the breakdown that names the bottleneck latch.
  std::vector<WaitDelta> waits;
};

uint64_t CounterValue(const StatsSnapshot& s, const std::string& name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  return 0;
}

uint64_t HistSumNs(const StatsSnapshot& s, const std::string& name) {
  for (const StatsSnapshot::HistogramEntry& h : s.histograms) {
    if (h.name == name) return h.sum_ns;
  }
  return 0;
}

/// `wait.<class>` movement between two snapshots, indexed by WaitEvent.
std::vector<WaitDelta> WaitDeltas(const StatsSnapshot& begin,
                                  const StatsSnapshot& end) {
  std::vector<WaitDelta> out(static_cast<size_t>(WaitEvent::kNumWaitEvents));
  for (size_t i = 1; i < out.size(); ++i) {
    std::string base =
        std::string("wait.") + WaitEventName(static_cast<WaitEvent>(i));
    out[i].acquires = CounterValue(end, base + ".acquires") -
                      CounterValue(begin, base + ".acquires");
    out[i].contended = CounterValue(end, base + ".contended") -
                       CounterValue(begin, base + ".contended");
    out[i].waited_ns =
        HistSumNs(end, base + "_ns") - HistSumNs(begin, base + "_ns");
  }
  return out;
}

struct Totals {
  uint64_t committed = 0;
  uint64_t aborted = 0;
};

/// Bytes appended per transaction. Small on purpose: the workload models
/// commit-bound OLTP (append a record, force the log), where the real
/// fdatasync dominates the transaction's CPU work — the regime group
/// commit exists for. Appends (rather than in-place updates) keep the
/// version chains short, so visibility checks stay O(1) as the run gets
/// longer, and the working set stays buffer-pool-resident at every K.
constexpr size_t kTxnWriteBytes = 512;

/// One backend's stream: append one record to its own object, commit (or
/// abort every 5th transaction). The LargeObject accessor is instantiated
/// once and reused across transactions (it holds only relation handles),
/// and the append offset is tracked locally — an OLTP backend knows where
/// its log ends; re-deriving it per transaction would just measure the
/// catalog, not the commit path. `start` is the object's committed size.
void RunBackend(Database* db, Oid oid, uint64_t start, uint64_t txns,
                int backend, Totals* totals) {
  auto session = db->Connect();
  session->Begin();
  auto lo_or = db->large_objects().Instantiate(session->txn(), oid);
  if (!lo_or.ok() || !session->Abort().ok()) {
    std::fprintf(stderr, "backend %d instantiate failed\n", backend);
    std::exit(1);
  }
  std::unique_ptr<LargeObject> lo = std::move(lo_or).value();
  uint64_t off = start;
  for (uint64_t i = 0; i < txns; ++i) {
    session->Begin();
    Bytes data(kTxnWriteBytes, static_cast<uint8_t>(backend * 16 + i % 16));
    Status s = lo->Write(session->txn(), off, Slice(data));
    if (s.ok() && i % 5 == 4) {
      s = session->Abort();  // the aborted append never became visible
      if (s.ok()) ++totals->aborted;
    } else if (s.ok()) {
      s = session->Commit().status();
      if (s.ok()) {
        ++totals->committed;
        off += kTxnWriteBytes;
      }
    }
    if (!s.ok()) {
      std::fprintf(stderr, "backend %d txn failed: %s\n", backend,
                   s.ToString().c_str());
      std::exit(1);
    }
  }
}

Result<ScalePoint> MeasureAt(const std::string& workdir, int backends,
                             uint64_t txns_per_backend) {
  ScalePoint point;
  point.backends = backends;

  Database db;
  DatabaseOptions options = PaperOptions(workdir);
  options.group_commit = true;
  // Stats stay on: the per-wait-class breakdown (wait.* counters and
  // histograms) is how this bench names its bottleneck latch, and stats
  // are lock-free relaxed increments that never advance the clock. The
  // flight recorder stays off — it funnels every span through shared
  // rings, a cross-backend serialization point that is not the engine's.
  options.enable_stats = true;
  options.enable_flight_recorder = false;
  // Large enough that every K's working set is pool-resident: commit cost
  // must be the fdatasync, not pool-miss I/O.
  options.buffer_pool_frames = 4096;
  PGLO_RETURN_IF_ERROR(db.Open(options));

  // One object per backend (writers never share an object; readers may).
  std::vector<Oid> oids;
  {
    auto session = db.Connect();
    for (int t = 0; t < backends; ++t) {
      session->Begin();
      PGLO_ASSIGN_OR_RETURN(Oid oid, session->CreateLo(LoSpec{}));
      PGLO_ASSIGN_OR_RETURN(LoDescriptor * fd, session->OpenLo(oid, true));
      Bytes seedrec(kTxnWriteBytes, static_cast<uint8_t>(t + 1));
      PGLO_RETURN_IF_ERROR(fd->Write(Slice(seedrec)));
      PGLO_RETURN_IF_ERROR(session->Commit().status());
      oids.push_back(oid);
    }
  }

  // Warmup + measured passes. Each pass launches a fresh thread group.
  std::vector<uint64_t> sizes(backends, kTxnWriteBytes);
  for (uint64_t pass = 0; pass <= kPasses; ++pass) {
    bool measured = pass > 0;
    uint64_t fsyncs_begin = db.txns().commit_log().fsync_count();
    size_t batches_begin = db.txns().group_sizes().size();
    uint64_t sim_begin = db.clock().NowNanos();
    StatsSnapshot stats_begin = db.Stats();  // before the timer starts
    std::vector<Totals> totals(backends);
    auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(backends);
    for (int t = 0; t < backends; ++t) {
      threads.emplace_back(RunBackend, &db, oids[t], sizes[t],
                           txns_per_backend, t, &totals[t]);
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < backends; ++t) {
      sizes[t] += totals[t].committed * kTxnWriteBytes;
    }
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();
    if (!measured || wall >= point.wall_seconds) continue;
    point.waits = WaitDeltas(stats_begin, db.Stats());
    point.wall_seconds = wall;
    point.sim_seconds =
        static_cast<double>(db.clock().NowNanos() - sim_begin) * 1e-9;
    point.fsyncs = db.txns().commit_log().fsync_count() - fsyncs_begin;
    point.committed = 0;
    point.aborted = 0;
    for (const Totals& t : totals) {
      point.committed += t.committed;
      point.aborted += t.aborted;
    }
    const auto& sizes = db.txns().group_sizes();
    point.batches = sizes.size() - batches_begin;
    point.max_batch = 0;
    for (size_t i = batches_begin; i < sizes.size(); ++i) {
      point.max_batch = std::max(point.max_batch, sizes[i]);
    }
  }
  if (std::getenv("PGLO_BENCH_POOLSTATS") != nullptr) {
    BufferPoolStats ps = db.pool().stats();
    std::fprintf(stderr,
                 "  [K=%d pool: hits=%llu misses=%llu evictions=%llu "
                 "writebacks=%llu pin_waits=%llu]\n",
                 backends, static_cast<unsigned long long>(ps.hits),
                 static_cast<unsigned long long>(ps.misses),
                 static_cast<unsigned long long>(ps.evictions),
                 static_cast<unsigned long long>(ps.writebacks),
                 static_cast<unsigned long long>(ps.flush_pin_waits));
  }
  PGLO_RETURN_IF_ERROR(db.Close());
  return point;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, "concurrency",
                                  "/tmp/pglo_bench_conc");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  const uint64_t txns_per_backend = args.quick ? 25 : 150;
  BenchRun run(args);

  std::printf("Multi-backend scaling: group commit on, %llu txns/backend, "
              "best of %llu passes\n\n",
              static_cast<unsigned long long>(txns_per_backend),
              static_cast<unsigned long long>(kPasses));
  std::printf("%9s %10s %8s %11s %12s %11s %8s %9s\n", "backends",
              "committed", "aborts", "wall s", "txn/wall s", "txn/sim s",
              "fsyncs", "max batch");

  std::vector<ScalePoint> points;
  for (int backends : kBackendCounts) {
    auto point = MeasureAt(workdir + "/k" + std::to_string(backends),
                           backends, txns_per_backend);
    if (!point.ok()) {
      std::fprintf(stderr, "K=%d failed: %s\n", backends,
                   point.status().ToString().c_str());
      return 1;
    }
    const ScalePoint& p = point.value();
    double wall_tput = static_cast<double>(p.committed) / p.wall_seconds;
    double sim_tput = p.sim_seconds > 0
                          ? static_cast<double>(p.committed) / p.sim_seconds
                          : 0.0;
    std::printf("%9d %10llu %8llu %11.4f %12.0f %11.1f %8llu %9u\n",
                p.backends, static_cast<unsigned long long>(p.committed),
                static_cast<unsigned long long>(p.aborted), p.wall_seconds,
                wall_tput, sim_tput,
                static_cast<unsigned long long>(p.fsyncs), p.max_batch);

    run.StartConfig("backends_" + std::to_string(backends), nullptr,
                    {{"backends", std::to_string(backends)},
                     {"group_commit", "on"},
                     {"txns_per_backend", std::to_string(txns_per_backend)}});
    // The simulated_seconds row satisfies the pglo-bench-v1 schema; at
    // K > 1 it depends on thread interleaving, hence no baseline gate.
    run.RecordResult("txn_stream", p.sim_seconds);
    run.RecordValue("txn_stream", "backends", p.backends);
    run.RecordValue("txn_stream", "committed",
                    static_cast<double>(p.committed));
    run.RecordValue("txn_stream", "aborted", static_cast<double>(p.aborted));
    run.RecordValue("txn_stream", "wall_seconds", p.wall_seconds);
    run.RecordValue("txn_stream", "txn_per_wall_sec", wall_tput);
    run.RecordValue("txn_stream", "txn_per_sim_sec", sim_tput);
    run.RecordValue("txn_stream", "abort_per_wall_sec",
                    static_cast<double>(p.aborted) / p.wall_seconds);
    run.RecordValue("txn_stream", "fsyncs", static_cast<double>(p.fsyncs));
    run.RecordValue("txn_stream", "commit_batches",
                    static_cast<double>(p.batches));
    run.RecordValue("txn_stream", "max_batch",
                    static_cast<double>(p.max_batch));
    // Per-wait-class breakdown of the best pass: every class always
    // emitted (zeros included) so the JSON schema is stable across runs
    // and machines — trend tooling diffs like keys against like keys.
    for (size_t e = 1; e < p.waits.size(); ++e) {
      std::string cls = WaitEventName(static_cast<WaitEvent>(e));
      for (char& c : cls) {
        if (c == '.') c = '_';
      }
      const WaitDelta& wd = p.waits[e];
      run.RecordValue("txn_stream", "wait_" + cls + "_acquires",
                      static_cast<double>(wd.acquires));
      run.RecordValue("txn_stream", "wait_" + cls + "_contended",
                      static_cast<double>(wd.contended));
      run.RecordValue("txn_stream", "wait_" + cls + "_waited_ns",
                      static_cast<double>(wd.waited_ns));
    }
    run.FinishConfig();
    points.push_back(p);
  }

  // Scaling factor vs the single-backend point, on wall throughput.
  const ScalePoint& base = points.front();
  double base_tput = static_cast<double>(base.committed) / base.wall_seconds;
  std::printf("\nscaling vs 1 backend (committed txn / wall second):\n");
  double at8 = 0;
  for (const ScalePoint& p : points) {
    double tput = static_cast<double>(p.committed) / p.wall_seconds;
    double factor = tput / base_tput;
    if (p.backends == 8) at8 = factor;
    std::printf("  K=%-2d  %5.2fx\n", p.backends, factor);
  }
  std::printf("\ngroup commit turned %llu commits at K=8 into %llu "
              "fsyncs.\n",
              static_cast<unsigned long long>(points[3].committed),
              static_cast<unsigned long long>(points[3].fsyncs));

  // Name the bottleneck: wait classes at the highest K, ranked by total
  // wall time blocked. This is the table that says WHICH latch the K=16
  // backends queued on, not just that they queued.
  {
    const ScalePoint& top = points.back();
    std::vector<size_t> order;
    for (size_t e = 1; e < top.waits.size(); ++e) {
      if (top.waits[e].acquires > 0 || top.waits[e].waited_ns > 0) {
        order.push_back(e);
      }
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return top.waits[a].waited_ns > top.waits[b].waited_ns;
    });
    std::printf("\nwait classes at K=%d (best pass, by wall time blocked):\n",
                top.backends);
    std::printf("  %-26s %10s %10s %12s\n", "class", "acquires", "contended",
                "waited ms");
    for (size_t e : order) {
      const WaitDelta& wd = top.waits[e];
      std::printf("  %-26s %10llu %10llu %12.3f\n",
                  WaitEventName(static_cast<WaitEvent>(e)),
                  static_cast<unsigned long long>(wd.acquires),
                  static_cast<unsigned long long>(wd.contended),
                  static_cast<double>(wd.waited_ns) * 1e-6);
    }
    if (!order.empty()) {
      std::printf("top contended latch at K=%d: %s\n", top.backends,
                  WaitEventName(static_cast<WaitEvent>(order.front())));
    } else {
      std::printf("  (no waits recorded — instrumentation off?)\n");
    }
  }
  // The floor is a wall-clock property on a shared machine, so a single
  // unlucky scheduling window (an unusually fast K=1 best pass, or a
  // stalled K=8 one) can dip below it even when batching works — observed
  // at ~1/5 quick runs on the CI container. Remeasure the two points a
  // bounded number of times before declaring a collapse; a real batching
  // failure stays under the floor on every attempt.
  for (int retry = 0; at8 < 1.5 && retry < 2; ++retry) {
    std::fprintf(stderr,
                 "K=8 wall scaling %.2fx < 1.5x — remeasuring (attempt "
                 "%d/2)\n",
                 at8, retry + 1);
    auto p1 = MeasureAt(workdir + "/retry1_" + std::to_string(retry), 1,
                        txns_per_backend);
    auto p8 = MeasureAt(workdir + "/retry8_" + std::to_string(retry), 8,
                        txns_per_backend);
    if (!p1.ok() || !p8.ok()) break;
    double retry_base = static_cast<double>(p1.value().committed) /
                        p1.value().wall_seconds;
    double retry_tput = static_cast<double>(p8.value().committed) /
                        p8.value().wall_seconds;
    at8 = retry_tput / retry_base;
    std::printf("remeasured K=8 scaling: %.2fx\n", at8);
  }
  if (at8 < 1.5) {
    // A soft floor: the ISSUE 7 target is 3x on typical hardware; under
    // heavily loaded CI even batching has bad days, so only a collapse —
    // no batching benefit at all — fails the bench.
    std::fprintf(stderr, "FAIL: K=8 wall scaling %.2fx < 1.5x — group "
                         "commit is not batching\n", at8);
    return 1;
  }
  Status s = run.Finish();
  if (!s.ok()) {
    std::fprintf(stderr, "emit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
