// Reproduces Figure 3, "WORM Performance on the Benchmark": the read
// operations over the optical jukebox storage manager, against a "special
// purpose program which reads ... the raw device" as the upper-bound
// baseline (§9.3). The special program has no cache management and no
// atomicity guarantees; POSTGRES's WORM storage manager keeps a magnetic
// disk cache of optical blocks, which is what wins the random and 80/20
// tests.
//
// Run: bench_figure3_worm [--no-stats] [--quick] [--profile]
//                         [--trace=FILE] [--json=FILE] [workdir]
// Results are also written to BENCH_figure3[_quick].json (pglo-bench-v1
// schema; see DESIGN.md §9) unless --no-json is given. The special-program
// baseline appears as config "special" with no counters (it bypasses the
// database entirely).

#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"
#include "common/random.h"

namespace pglo {
namespace bench {
namespace {

/// The §9.3 baseline: reads 4096-byte frames straight off the jukebox, no
/// cache, no recovery, "an upper bound on how well an operating system
/// WORM jukebox file system could expect to do."
class SpecialProgram {
 public:
  SpecialProgram() : device_(&clock_, Params()) {}

  static WormModelParams Params() {
    WormModelParams params;
    params.block_size = static_cast<uint32_t>(kFrameSize);
    return params;
  }

  double ReadFrames(const std::vector<uint64_t>& frames) {
    SimTimer timer(&clock_);
    // One raw-device transfer per contiguous record run: with no cache or
    // page layer in the way, nothing stops the special program from
    // streaming an entire sequential request as a single command.
    for (size_t i = 0; i < frames.size();) {
      uint32_t run = 1;
      while (i + run < frames.size() &&
             frames[i + run] == frames[i] + run) {
        ++run;
      }
      device_.ChargeRead(frames[i], run);
      i += run;
    }
    return timer.ElapsedSeconds();
  }

 private:
  SimClock clock_;
  WormJukeboxModel device_;
};

std::vector<uint64_t> OpFrames(Op op, uint64_t seed,
                               const WorkloadScale& scale) {
  Random rng(seed);
  std::vector<uint64_t> frames;
  switch (op) {
    case Op::kSeqRead:
      for (uint64_t i = 0; i < scale.seq_frames; ++i) frames.push_back(i);
      break;
    case Op::kRandRead:
      for (uint64_t i = 0; i < scale.rand_frames; ++i) {
        frames.push_back(rng.Uniform(scale.num_frames));
      }
      break;
    case Op::kLocalRead: {
      uint64_t frame = rng.Uniform(scale.num_frames);
      for (uint64_t i = 0; i < scale.rand_frames; ++i) {
        frames.push_back(frame);
        frame = rng.OneInHundred(80) ? (frame + 1) % scale.num_frames
                                     : rng.Uniform(scale.num_frames);
      }
      break;
    }
    default:
      break;
  }
  return frames;
}

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, "figure3", "/tmp/pglo_bench_fig3");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  const WorkloadScale scale = ScaleFor(args.quick);
  BenchRun run(args);

  const std::vector<BenchConfig> configs = {
      {"f-chunk 0%", StorageKind::kFChunk, "", kSmgrWorm},
      {"f-chunk 30%", StorageKind::kFChunk, "rle", kSmgrWorm},
      {"v-segment 30%", StorageKind::kVSegment, "rle", kSmgrWorm},
      {"f-chunk 50%", StorageKind::kFChunk, "lzss", kSmgrWorm},
  };
  // §9.3 measures only the read portion of the benchmark.
  const std::vector<Op> ops = {Op::kSeqRead, Op::kRandRead, Op::kLocalRead};

  std::vector<std::string> columns = {"special"};
  for (const auto& config : configs) columns.push_back(config.name);
  std::vector<std::string> rows;
  for (Op op : ops) rows.push_back(OpName(op));
  std::vector<std::vector<double>> cells(
      ops.size(), std::vector<double>(columns.size(), 0.0));

  // Column 1: the raw-device special program. No database behind it, so
  // BenchRun records its times without wiring any trace/profiler sinks.
  {
    run.StartConfig("special", nullptr, {{"kind", "raw-device"}});
    SpecialProgram special;
    for (size_t o = 0; o < ops.size(); ++o) {
      cells[o][0] = special.ReadFrames(OpFrames(ops[o], 1000 + o, scale));
      run.RecordResult(OpName(ops[o]), cells[o][0]);
    }
    run.FinishConfig();
  }

  for (size_t c = 0; c < configs.size(); ++c) {
    std::string dir = workdir + "/" + std::to_string(c);
    Database db;
    DatabaseOptions options = PaperOptions(dir);
    // The magnetic-disk cache in front of the jukebox: 35 MB — a cheap
    // magnetic staging area, smaller than the 51.2 MB object. Creating
    // the object warms it with the object's *tail*, so the sequential
    // test over the object's start runs cold (the special program wins
    // there) while the uniform-random and 80/20 tests hit the warm
    // majority (the cache wins there) — the §9.3 asymmetry.
    options.worm_cache_blocks = args.quick ? 448 : 4480;
    options.enable_stats = args.stats;
    if (args.readahead >= 0) {
      options.readahead_pages = static_cast<uint32_t>(args.readahead);
    }
    Status s = db.Open(options);
    if (!s.ok()) {
      std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    run.StartConfig(configs[c].name, &db, ConfigInfo(configs[c]));
    LoBenchRunner runner(&db, scale);
    SimTimer create_timer(&db.clock());
    Result<Oid> oid = runner.CreateObject(configs[c]);
    if (!oid.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", configs[c].name.c_str(),
                   oid.status().ToString().c_str());
      return 1;
    }
    run.RecordResult("create", create_timer.ElapsedSeconds());
    for (size_t o = 0; o < ops.size(); ++o) {
      Result<double> seconds = runner.RunOp(*oid, ops[o], 1000 + o);
      if (!seconds.ok()) {
        std::fprintf(stderr, "%s / %s failed: %s\n", configs[c].name.c_str(),
                     OpName(ops[o]), seconds.status().ToString().c_str());
        return 1;
      }
      cells[o][c + 1] = *seconds;
      run.RecordResult(OpName(ops[o]), *seconds);
    }
    run.FinishConfig();
    const WormSmgrStats& stats = db.worm()->stats();
    std::fprintf(stderr,
                 "# %s: cache hits %llu misses %llu optical reads %llu\n",
                 configs[c].name.c_str(),
                 static_cast<unsigned long long>(stats.cache_hits),
                 static_cast<unsigned long long>(stats.cache_misses),
                 static_cast<unsigned long long>(stats.optical_reads));
  }

  std::printf("%s\n",
              FormatTable("Figure 3: WORM Performance on the Benchmark "
                          "(simulated elapsed seconds)",
                          columns, rows, cells)
                  .c_str());
  std::printf("Shape checks (paper's §9.3 claims):\n");
  std::printf("  special vs f-chunk 0%% seq:   special is %+5.1f%% faster "
              "(paper: ~20%%)\n",
              100.0 * (cells[0][1] / cells[0][0] - 1.0));
  std::printf("  f-chunk 0%% random vs special: %4.2fx faster (paper: "
              "dramatically superior)\n",
              cells[1][0] / cells[1][1]);
  std::printf("  f-chunk 0%% 80/20 vs special:  %4.2fx faster (most requests "
              "from cache)\n",
              cells[2][0] / cells[2][1]);
  std::printf("  compression pays off: f-chunk 50%% seq %.1fs vs 0%% %.1fs "
              "(paper: less optical traffic wins)\n",
              cells[0][4], cells[0][1]);
  Status finish = run.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "results write failed: %s\n",
                 finish.ToString().c_str());
    return 1;
  }
  rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
