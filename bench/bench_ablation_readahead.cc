// Ablation E: sequential read-ahead window. Sweeps the buffer-pool /
// UFS-cache prefetch window over the f-chunk object on both the magnetic
// disk and the WORM drive. Window 0 is the pre-vectored-I/O system (every
// block a separate device command); window 1 enables write coalescing but
// never prefetches; larger windows amortize per-command overhead across
// streaming runs. The interesting shape: sequential ops keep improving
// with the window while random ops stay flat — the streak-confirmed
// detector must not fire on non-sequential access.
//
// Run: bench_ablation_readahead [--no-stats] [--quick] [--profile]
//                               [--trace=FILE] [--json=FILE] [workdir]
// Results are written to BENCH_ablation_readahead[_quick].json
// (pglo-bench-v1 schema; see DESIGN.md §9) unless --no-json is given.

#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"

namespace pglo {
namespace bench {
namespace {

struct Device {
  const char* label;
  uint8_t smgr;
};

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, "ablation_readahead",
                                  "/tmp/pglo_bench_ablE");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  const WorkloadScale scale = ScaleFor(args.quick);
  BenchRun run(args);

  const uint32_t kWindows[] = {0, 1, 4, 8, 32};
  const Device kDevices[] = {{"disk", kSmgrDisk}, {"worm", kSmgrWorm}};

  std::printf("Ablation E: read-ahead window, f-chunk object\n\n");
  std::printf("%12s %8s %12s %12s %12s %12s %14s\n", "device", "window",
              "create s", "seq read s", "rand read s", "80/20 read s",
              "coalesced runs");

  for (const Device& device : kDevices) {
    for (uint32_t window : kWindows) {
      std::string name =
          std::string(device.label) + " window=" + std::to_string(window);
      std::string dir = workdir + "/" + device.label + std::to_string(window);
      Database db;
      DatabaseOptions options = PaperOptions(dir);
      options.enable_stats = args.stats;
      options.readahead_pages = window;
      Status s = db.Open(options);
      if (!s.ok()) {
        std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
        return 1;
      }
      BenchConfig config{name, StorageKind::kFChunk, "", device.smgr};
      auto info = ConfigInfo(config);
      info["readahead"] = std::to_string(window);
      run.StartConfig(config.name, &db, info);
      LoBenchRunner runner(&db, scale);

      SimTimer create_timer(&db.clock());
      Result<Oid> oid = runner.CreateObject(config);
      if (!oid.ok()) {
        std::fprintf(stderr, "create failed: %s\n",
                     oid.status().ToString().c_str());
        return 1;
      }
      double create_s = create_timer.ElapsedSeconds();

      Result<double> seq = runner.RunOp(*oid, Op::kSeqRead, 7);
      Result<double> rand = runner.RunOp(*oid, Op::kRandRead, 8);
      Result<double> local = runner.RunOp(*oid, Op::kLocalRead, 9);
      if (!seq.ok() || !rand.ok() || !local.ok()) {
        std::fprintf(stderr, "bench failed\n");
        return 1;
      }
      uint64_t coalesced = 0;
      if (args.stats) {
        StatsSnapshot snap = db.Stats();
        for (const auto& [counter, value] : snap.counters) {
          if (counter == "smgr.disk.coalesced_runs" ||
              counter == "smgr.worm.coalesced_runs") {
            coalesced += value;
          }
        }
      }
      run.RecordResult("create", create_s);
      run.RecordResult(OpName(Op::kSeqRead), *seq);
      run.RecordResult(OpName(Op::kRandRead), *rand);
      run.RecordResult(OpName(Op::kLocalRead), *local);
      run.RecordValue(OpName(Op::kSeqRead), "readahead_window", window);
      std::printf("%12s %8u %12.1f %12.1f %12.1f %12.1f %14llu\n",
                  device.label, window, create_s, *seq, *rand, *local,
                  static_cast<unsigned long long>(coalesced));
      run.FinishConfig();
    }
  }
  std::printf(
      "\nExpected shape: create and sequential read fall steeply from "
      "window 0 to 8\n(vectored runs amortize per-command overhead) and "
      "flatten after; random and\n80/20 reads are window-insensitive — the "
      "detector demands a confirmed streak\nbefore prefetching, so "
      "non-sequential access never pays for unused blocks.\n");
  Status finish = run.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "results write failed: %s\n",
                 finish.ToString().c_str());
    return 1;
  }
  rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
