// Ablation C: WORM magnetic-disk cache size. §9.3's entire result — the
// DBMS beating a raw-device reader on random and 80/20 access — hinges on
// this cache; the sweep shows the crossover from useless to decisive.
//
// Run: bench_ablation_wormcache [--no-stats] [--quick] [--profile]
//                               [--trace=FILE] [--json=FILE] [workdir]
// Results are written to BENCH_ablation_wormcache[_quick].json
// (pglo-bench-v1 schema; see DESIGN.md §9) unless --no-json is given.

#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"

namespace pglo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, "ablation_wormcache",
                                  "/tmp/pglo_bench_ablC");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  const WorkloadScale scale = ScaleFor(args.quick);
  BenchRun run(args);

  const size_t kCacheBlocks[] = {0, 640, 1250, 3200, 4480, 7000};

  std::printf("Ablation C: WORM magnetic-disk cache size, f-chunk object\n\n");
  std::printf("%10s %14s %14s %14s %14s\n", "cache MB", "seq read s",
              "rand read s", "80/20 read s", "hit rate");

  for (size_t blocks : kCacheBlocks) {
    std::string dir = workdir + "/" + std::to_string(blocks);
    Database db;
    DatabaseOptions options = PaperOptions(dir);
    // Quick mode shrinks the object 10x; shrink the sweep to match so the
    // crossover still happens inside the swept range.
    options.worm_cache_blocks = args.quick ? blocks / 10 : blocks;
    options.enable_stats = args.stats;
    if (args.readahead >= 0) {
      options.readahead_pages = static_cast<uint32_t>(args.readahead);
    }
    Status s = db.Open(options);
    if (!s.ok()) {
      std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    BenchConfig config{"cache=" + std::to_string(blocks),
                       StorageKind::kFChunk, "", kSmgrWorm};
    run.StartConfig(config.name, &db, ConfigInfo(config));
    LoBenchRunner runner(&db, scale);
    Result<Oid> oid = runner.CreateObject(config);
    if (!oid.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   oid.status().ToString().c_str());
      return 1;
    }
    db.worm()->ResetStats();
    Result<double> seq = runner.RunOp(*oid, Op::kSeqRead, 7);
    Result<double> rand = runner.RunOp(*oid, Op::kRandRead, 8);
    Result<double> local = runner.RunOp(*oid, Op::kLocalRead, 9);
    if (!seq.ok() || !rand.ok() || !local.ok()) {
      std::fprintf(stderr, "bench failed\n");
      return 1;
    }
    const WormSmgrStats& stats = db.worm()->stats();
    double hit_rate = static_cast<double>(stats.cache_hits) /
                      static_cast<double>(stats.cache_hits +
                                          stats.cache_misses + 1);
    run.RecordResult(OpName(Op::kSeqRead), *seq);
    run.RecordResult(OpName(Op::kRandRead), *rand);
    run.RecordResult(OpName(Op::kLocalRead), *local);
    run.RecordValue(OpName(Op::kLocalRead), "worm_cache_hit_rate", hit_rate);
    std::printf("%10.1f %14.1f %14.1f %14.1f %13.1f%%\n",
                blocks * 8192.0 / (1024 * 1024), *seq, *rand, *local,
                100.0 * hit_rate);
    run.FinishConfig();
  }
  std::printf(
      "\nExpected shape: sequential time is cache-insensitive (a cold "
      "streaming scan);\nrandom and 80/20 collapse once the cache covers "
      "a majority of the object.\n");
  Status finish = run.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "results write failed: %s\n",
                 finish.ToString().c_str());
    return 1;
  }
  rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
