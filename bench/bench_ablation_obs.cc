// Ablation F: observability overhead (flight recorder + wait
// instrumentation). Runs the identical f-chunk workload (create, then
// repeated sequential-read / random-read / sequential-write passes) under
// three configurations — everything off (no recorder, no wait
// instrumentation); the default always-on settings; and aggressive
// settings (10x-finer snapshot sampling, a slow-op budget low enough to
// capture every single operation's span tree, and a zero wait-event
// threshold so every contended wait hits the event ring) — and checks the
// observability layer's two contracts:
//
//   1. Simulated time is BIT-IDENTICAL across all three. The recorder
//      observes completed spans, and wait instrumentation records WALL
//      time; neither ever advances the SimClock, so every reported
//      simulated duration, and the final clock reading itself, must match
//      to the nanosecond. Any difference is a bug and fails the bench
//      (non-zero exit) — this is the property the check.sh obs gate
//      enforces.
//   2. Wall-clock overhead of the default always-on configuration is small
//      (the ≤5% budget that justifies shipping it enabled). Reported
//      (wall_overhead_pct on the "total" row, with the aggressive config's
//      worst case alongside); gated only when --gate-overhead-pct=N is
//      passed (check.sh does, with N=5): wall time on shared CI is noisy,
//      so the gate uses the best-of-passes estimator.
//
// Wall methodology: all three databases are opened and their objects
// created up front (creation doubles as warmup — allocator, caches, and
// first touch of every recorder ring slot); then measurement passes
// INTERLEAVE the configurations, so a slow system phase taxes all three
// equally instead of whichever config it happened to land on; the reported
// time per config is its fastest pass, the estimator least perturbed by
// the scheduler.
//
// Run: bench_ablation_obs [--no-stats] [--quick] [--json=FILE]
//                         [--gate-overhead-pct=N] [workdir]
// Results are written to BENCH_ablation_obs[_quick].json (pglo-bench-v1
// schema). The committed baseline in bench/baselines/ guards the absolute
// simulated times against behavioural drift.

#include <ctime>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/harness.h"

namespace pglo {
namespace bench {
namespace {

enum class Mode { kOff, kDefault, kMax };

struct ModeSpec {
  Mode mode;
  const char* label;
  const char* subdir;
};

constexpr ModeSpec kModes[] = {
    {Mode::kOff, "recorder-off", "rec_off"},
    {Mode::kDefault, "recorder-on", "rec_on"},
    {Mode::kMax, "recorder-max", "rec_max"},
};
constexpr size_t kNumModes = 3;
constexpr uint64_t kPasses = 4;
constexpr uint64_t kRepsPerPass = 3;

struct ConfigState {
  std::unique_ptr<Database> db;
  std::unique_ptr<LoBenchRunner> runner;
  Oid oid = 0;
  std::vector<double> op_seconds;  // create, seq read, rand read, seq write
  uint64_t final_sim_ns = 0;
  double wall_seconds = 1e300;  // min over passes
  double cpu_seconds = 1e300;   // min over passes
  uint64_t spans = 0;
  uint64_t deltas = 0;
  uint64_t slow_ops = 0;
};

const char* kOpLabels[] = {"create", "seq_read", "rand_read", "seq_write"};

int OpenAndCreate(const BenchArgs& args, const WorkloadScale& scale,
                  const ModeSpec& spec, ConfigState* state) {
  DatabaseOptions options = PaperOptions(args.workdir + "/" + spec.subdir);
  options.enable_stats = args.stats;
  options.enable_flight_recorder = spec.mode != Mode::kOff;
  options.enable_wait_instrumentation = spec.mode != Mode::kOff;
  if (spec.mode == Mode::kMax) {
    // Worst case: sample every 100 simulated ms, capture every operation
    // as "slow" (1 simulated µs budget), and append an event for EVERY
    // contended wait, so the measured overhead includes tree building,
    // delta sampling, and wait-event appends on every op, not just ring
    // appends.
    options.recorder_options.snapshot_interval_ns = 100'000'000;
    options.recorder_options.slow_op_budget_ns = 1'000;
    options.wait_event_threshold_ns = 0;
  }
  state->db = std::make_unique<Database>();
  Status s = state->db->Open(options);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  state->runner = std::make_unique<LoBenchRunner>(state->db.get(), scale);
  BenchConfig config{spec.label, StorageKind::kFChunk, "", kSmgrDisk};
  SimTimer create_timer(&state->db->clock());
  Result<Oid> oid = state->runner->CreateObject(config);
  if (!oid.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 oid.status().ToString().c_str());
    return 1;
  }
  state->oid = *oid;
  state->op_seconds.push_back(create_timer.ElapsedSeconds());
  return 0;
}

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

int MeasurePass(ConfigState* state, uint64_t pass) {
  double cpu_begin = ProcessCpuSeconds();
  auto begin = std::chrono::steady_clock::now();
  for (uint64_t rep = 0; rep < kRepsPerPass; ++rep) {
    uint64_t salt = (pass * kRepsPerPass + rep) * 16;
    Result<double> seq = state->runner->RunOp(state->oid, Op::kSeqRead,
                                              7 + salt);
    Result<double> rand = state->runner->RunOp(state->oid, Op::kRandRead,
                                               8 + salt);
    Result<double> wr = state->runner->RunOp(state->oid, Op::kSeqWrite,
                                             9 + salt);
    if (!seq.ok() || !rand.ok() || !wr.ok()) {
      std::fprintf(stderr, "bench failed\n");
      return 1;
    }
    if (pass == 0 && rep == 0) {
      state->op_seconds.push_back(*seq);
      state->op_seconds.push_back(*rand);
      state->op_seconds.push_back(*wr);
    }
  }
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              begin)
                    .count();
  state->wall_seconds = std::min(state->wall_seconds, secs);
  state->cpu_seconds =
      std::min(state->cpu_seconds, ProcessCpuSeconds() - cpu_begin);
  return 0;
}

int Main(int argc, char** argv) {
  // Extract the gate flag before handing argv to the shared harness
  // parser (which would warn about flags it does not know).
  double gate_overhead_pct = -1.0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gate-overhead-pct=", 20) == 0) {
      gate_overhead_pct = std::atof(argv[i] + 20);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  BenchArgs args = ParseBenchArgs(argc, argv, "ablation_obs",
                                  "/tmp/pglo_bench_ablF");
  const std::string& workdir = args.workdir;
  int rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  const WorkloadScale scale = ScaleFor(args.quick);
  BenchRun run(args);

  std::printf("Ablation F: flight-recorder overhead, f-chunk object\n\n");

  ConfigState state[kNumModes];
  for (size_t m = 0; m < kNumModes; ++m) {
    if (OpenAndCreate(args, scale, kModes[m], &state[m]) != 0) return 1;
  }
  for (uint64_t pass = 0; pass < kPasses; ++pass) {
    for (size_t m = 0; m < kNumModes; ++m) {
      if (MeasurePass(&state[m], pass) != 0) return 1;
    }
  }
  for (size_t m = 0; m < kNumModes; ++m) {
    ConfigState& st = state[m];
    st.final_sim_ns = st.db->clock().NowNanos();
    if (st.db->recorder() != nullptr) {
      st.spans = st.db->recorder()->total_spans();
      st.deltas = st.db->recorder()->total_deltas();
      st.slow_ops = st.db->recorder()->total_slow_ops();
    }
    BenchConfig config{kModes[m].label, StorageKind::kFChunk, "", kSmgrDisk};
    auto info = ConfigInfo(config);
    info["flight_recorder"] = kModes[m].mode == Mode::kOff ? "off" : "on";
    info["wait_instrumentation"] =
        kModes[m].mode == Mode::kOff
            ? "off"
            : (kModes[m].mode == Mode::kMax ? "max" : "default");
    run.StartConfig(kModes[m].label, st.db.get(), info);
    for (size_t i = 0; i < st.op_seconds.size(); ++i) {
      run.RecordResult(kOpLabels[i], st.op_seconds[i]);
    }
    run.FinishConfig();
  }
  const ConfigState& off = state[0];
  const ConfigState& dflt = state[1];
  const ConfigState& max = state[2];

  std::printf("%12s %12s %12s %12s %10s\n", "op", "rec off s", "rec on s",
              "rec max s", "identical");
  bool identical = off.final_sim_ns == dflt.final_sim_ns &&
                   off.final_sim_ns == max.final_sim_ns;
  for (size_t i = 0; i < off.op_seconds.size(); ++i) {
    bool same = off.op_seconds[i] == dflt.op_seconds[i] &&
                off.op_seconds[i] == max.op_seconds[i];
    identical = identical && same;
    std::printf("%12s %12.3f %12.3f %12.3f %10s\n", kOpLabels[i],
                off.op_seconds[i], dflt.op_seconds[i], max.op_seconds[i],
                same ? "yes" : "NO");
  }
  std::printf("%12s %12" PRIu64 " %12" PRIu64 " %12" PRIu64
              " %10s   (final sim ns)\n",
              "", off.final_sim_ns, dflt.final_sim_ns, max.final_sim_ns,
              identical ? "yes" : "NO");

  auto overhead = [&](const ConfigState& o) {
    return off.wall_seconds > 0.0
               ? (o.wall_seconds - off.wall_seconds) / off.wall_seconds * 100.0
               : 0.0;
  };
  double default_pct = overhead(dflt);
  double max_pct = overhead(max);
  std::printf(
      "\ndefault recorder retained %" PRIu64 " spans, %" PRIu64
      " deltas, %" PRIu64 " slow ops; max config %" PRIu64 " slow ops\n"
      "wall (best of %" PRIu64 " interleaved passes): off %.3fs, "
      "default %.3fs (%+.1f%%), max %.3fs (%+.1f%%)\n"
      "cpu:  off %.3fs, default %.3fs (%+.1f%%), max %.3fs (%+.1f%%)\n",
      dflt.spans, dflt.deltas, dflt.slow_ops, max.slow_ops, kPasses,
      off.wall_seconds, dflt.wall_seconds, default_pct, max.wall_seconds,
      max_pct,
      off.cpu_seconds, dflt.cpu_seconds,
      (dflt.cpu_seconds - off.cpu_seconds) / off.cpu_seconds * 100.0,
      max.cpu_seconds,
      (max.cpu_seconds - off.cpu_seconds) / off.cpu_seconds * 100.0);
  // Cross-run numbers live on their own (database-less) config row.
  run.StartConfig("overhead", nullptr);
  run.RecordValue("total", "wall_overhead_pct", default_pct);
  run.RecordValue("total", "wall_overhead_max_pct", max_pct);
  run.RecordValue("total", "cpu_overhead_pct",
                  (dflt.cpu_seconds - off.cpu_seconds) / off.cpu_seconds *
                      100.0);
  run.RecordValue("total", "recorder_spans", static_cast<double>(dflt.spans));
  run.RecordValue("total", "recorder_deltas",
                  static_cast<double>(dflt.deltas));
  run.RecordValue("total", "recorder_slow_ops",
                  static_cast<double>(max.slow_ops));
  run.FinishConfig();

  Status finish = run.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "results write failed: %s\n",
                 finish.ToString().c_str());
    return 1;
  }
  for (size_t m = 0; m < kNumModes; ++m) {
    // The runner's Session releases its activity slot into the database's
    // BackendActivity table — it must go before the database does.
    state[m].runner.reset();
    state[m].db.reset();
  }
  rc = std::system(("rm -rf '" + workdir + "'").c_str());
  (void)rc;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: recorder-on simulated time differs from "
                 "recorder-off — the recorder advanced the clock\n");
    return 1;
  }
  std::printf(
      "\nSimulated time bit-identical with recorder and wait "
      "instrumentation on: the\nblack box is free in simulated time. The "
      "always-on default costs %.1f%% wall\nclock (budget: 5%%); capturing "
      "every op's span tree costs %.1f%%.\n",
      default_pct, max_pct);
  if (gate_overhead_pct >= 0.0 && default_pct > gate_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: default observability wall overhead %.1f%% exceeds "
                 "the %.1f%% gate\n",
                 default_pct, gate_overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pglo

int main(int argc, char** argv) { return pglo::bench::Main(argc, argv); }
